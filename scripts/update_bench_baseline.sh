#!/usr/bin/env bash
# Regenerates the committed bench/baseline.json entries after an
# intentional behaviour change (counters are exact-diffed in CI, so any
# legitimate change to message counts, replica totals or the scale bench's
# footprint must come with a refreshed baseline in the same commit).
#
# Usage: scripts/update_bench_baseline.sh [build-dir]
#
# Runs the bench-smoke set from the given build directory (default:
# build/) and rewrites baseline entries in place. Review the diff before
# committing: an unexplained counter change is a bug, not a baseline
# update.
set -euo pipefail

BUILD="${1:-build}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
COMPARE="$REPO/tools/bench_compare.py"
BASELINE="$REPO/bench/baseline.json"

if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found; build the repo first" >&2
  exit 1
fi

run_bench() {
  local name="$1"
  shift
  local start end wall
  echo "== $name $*"
  start=$(date +%s.%N)
  (cd "$BUILD/bench" && "./$name" "$@" > /dev/null)
  end=$(date +%s.%N)
  wall=$(python3 -c "print(f'{$end - $start:.3f}')")
  echo "   wall: ${wall}s"
  LAST_WALL="$wall"
}

# Deterministic-counter baselines (exact diff in CI). --threads 1 matches
# the CI serial run the baseline is checked against.
run_bench bench_loss_robustness --threads 1
python3 "$COMPARE" baseline update --bench bench_loss_robustness \
  --report "$BUILD/bench/BENCH_bench_loss_robustness.json" \
  --wall "$LAST_WALL" --baseline "$BASELINE"

# Scale smoke point: counters + the machine-dependent perf sidecar
# (peak RSS, per-point wall time; gated with tolerances).
run_bench bench_scale --smoke --threads 1
python3 "$COMPARE" baseline update --bench bench_scale_smoke \
  --report "$BUILD/bench/BENCH_bench_scale.json" \
  --wall "$LAST_WALL" --baseline "$BASELINE"
python3 "$COMPARE" perf update --bench bench_scale_smoke \
  --perf "$BUILD/bench/BENCH_bench_scale.perf.json" \
  --baseline "$BASELINE"

# Overload smoke point (1x/2x/4x overcommit): counters + perf sidecar.
run_bench bench_overload --smoke --threads 1
python3 "$COMPARE" baseline update --bench bench_overload_smoke \
  --report "$BUILD/bench/BENCH_bench_overload.json" \
  --wall "$LAST_WALL" --baseline "$BASELINE"
python3 "$COMPARE" perf update --bench bench_overload_smoke \
  --perf "$BUILD/bench/BENCH_bench_overload.perf.json" \
  --baseline "$BASELINE"

# Multi-tenant smoke point (overlap/renamed/disjoint/independent):
# counters + perf sidecar. The binary itself enforces the marginal-cost
# acceptance; the baseline pins the absolute counters.
run_bench bench_tenancy --smoke --threads 1
python3 "$COMPARE" baseline update --bench bench_tenancy_smoke \
  --report "$BUILD/bench/BENCH_bench_tenancy.json" \
  --wall "$LAST_WALL" --baseline "$BASELINE"
python3 "$COMPARE" perf update --bench bench_tenancy_smoke \
  --perf "$BUILD/bench/BENCH_bench_tenancy.perf.json" \
  --baseline "$BASELINE"

echo "baseline rewritten: $BASELINE"
echo "review 'git diff bench/baseline.json' before committing."
