#include "deduce/datalog/symbol.h"

#include <mutex>

#include "deduce/common/logging.h"

namespace deduce {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolId SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check: another thread may have interned it between the locks.
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.push_back(std::make_unique<std::string>(name));
  index_.emplace(*names_.back(), id);
  return id;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  DEDUCE_CHECK(id >= 0 && static_cast<size_t>(id) < names_.size())
      << "invalid SymbolId " << id;
  return *names_[static_cast<size_t>(id)];
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

}  // namespace deduce
