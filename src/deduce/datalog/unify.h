#ifndef DEDUCE_DATALOG_UNIFY_H_
#define DEDUCE_DATALOG_UNIFY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "deduce/datalog/term.h"

namespace deduce {

/// A substitution: a finite map from variables to terms.
///
/// During bottom-up evaluation every binding is ground (facts are ground),
/// but the class supports general bindings so full unification can be used
/// in tests and in the magic-set transformer.
class Subst {
 public:
  Subst() = default;

  /// Binds `var` to `term`. Returns false (and leaves the substitution
  /// unchanged) if `var` is already bound to a different term.
  bool Bind(SymbolId var, const Term& term);

  /// The binding of `var`, or nullptr.
  const Term* Lookup(SymbolId var) const;

  bool IsBound(SymbolId var) const { return Lookup(var) != nullptr; }

  /// Applies the substitution recursively; unbound variables remain.
  /// Variable→variable chains are chased.
  Term Apply(const Term& term) const;

  std::vector<Term> ApplyAll(const std::vector<Term>& terms) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Deterministic "{X=1, Y=f(2)}" form (sorted by variable name).
  std::string ToString() const;

  const std::unordered_map<SymbolId, Term>& map() const { return map_; }

 private:
  std::unordered_map<SymbolId, Term> map_;
};

/// One-sided matching: extends `subst` so that Apply(pattern) == ground.
/// `ground` must be ground. Returns false if no extension exists; `subst`
/// may then contain partial bindings (callers snapshot or discard).
///
/// This is the "term-matching operator" of the paper (§IV-C): the evaluation
/// of join conditions over terms with function symbols.
bool MatchTerm(const Term& pattern, const Term& ground, Subst* subst);

/// Matches argument lists position-wise.
bool MatchTerms(const std::vector<Term>& patterns,
                const std::vector<Term>& grounds, Subst* subst);

/// Full syntactic unification with occurs check. On success extends `subst`
/// to a most general unifier of the two terms (after applying the incoming
/// substitution). On failure `subst` is unspecified.
bool Unify(const Term& a, const Term& b, Subst* subst);

/// Renames every variable in `t` by appending `suffix` (used to rename
/// rules apart).
Term RenameVariables(const Term& t, const std::string& suffix);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_UNIFY_H_
