#include "deduce/datalog/rule.h"

#include <algorithm>
#include <unordered_set>

#include "deduce/common/strings.h"

namespace deduce {

std::string Atom::ToString() const {
  std::string out = SymbolName(predicate);
  if (args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, const Term& lhs, const Term& rhs) {
  int c;
  if (lhs.is_constant() && rhs.is_constant()) {
    c = lhs.value().Compare(rhs.value());
    // Equality between an int and the numerically equal double holds under
    // Compare but not under operator==; comparisons use numeric semantics.
  } else {
    c = lhs.Compare(rhs);
  }
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

void Literal::CollectVariables(std::vector<SymbolId>* out) const {
  if (kind == Kind::kComparison) {
    lhs.CollectVariables(out);
    rhs.CollectVariables(out);
  } else {
    atom.CollectVariables(out);
  }
}

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kPositive:
      return atom.ToString();
    case Kind::kBuiltin:
      return builtin_negated ? "NOT " + atom.ToString() : atom.ToString();
    case Kind::kNegated:
      return "NOT " + atom.ToString();
    case Kind::kComparison:
      return lhs.ToString() + " " + CmpOpToString(cmp) + " " + rhs.ToString();
  }
  return "?";
}

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

std::string Rule::ToString() const {
  std::string out;
  // Re-wrap aggregate arguments for printing.
  Atom printed = head;
  for (const AggregateSpec& agg : aggregates) {
    Term inner = agg.kind == AggKind::kCount && agg.input.is_constant()
                     ? agg.input
                     : agg.input;
    printed.args[agg.head_position] =
        Term::Function(AggKindToString(agg.kind), {inner});
  }
  out += printed.ToString();
  if (body.empty()) {
    out += ".";
    return out;
  }
  out += " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  out += ".";
  return out;
}

std::vector<SymbolId> Rule::Variables() const {
  std::vector<SymbolId> all;
  head.CollectVariables(&all);
  for (const Literal& l : body) l.CollectVariables(&all);
  std::vector<SymbolId> out;
  std::unordered_set<SymbolId> seen;
  for (SymbolId v : all) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

namespace {

std::optional<AggKind> AggKindFromName(const std::string& name) {
  if (name == "count") return AggKind::kCount;
  if (name == "sum") return AggKind::kSum;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  if (name == "avg") return AggKind::kAvg;
  return std::nullopt;
}

}  // namespace

Status ExtractAggregates(Rule* rule) {
  rule->aggregates.clear();
  for (size_t i = 0; i < rule->head.args.size(); ++i) {
    const Term& arg = rule->head.args[i];
    if (!arg.is_function()) continue;
    std::optional<AggKind> kind = AggKindFromName(SymbolName(arg.functor()));
    if (!kind.has_value()) continue;
    if (arg.args().size() != 1) {
      return Status::InvalidArgument(
          StrFormat("aggregate %s in head of rule must take exactly one "
                    "argument: %s",
                    SymbolName(arg.functor()).c_str(),
                    rule->head.ToString().c_str()));
    }
    AggregateSpec spec;
    spec.kind = *kind;
    spec.head_position = i;
    spec.input = arg.args()[0];
    // Replace the head argument by the input term so variable accounting
    // (safety, planners) sees the aggregated variable.
    rule->head.args[i] = spec.input;
    rule->aggregates.push_back(spec);
  }
  if (rule->aggregates.size() > 1) {
    return Status::Unimplemented(
        "at most one aggregate per rule head is supported: " +
        rule->ToString());
  }
  return Status::OK();
}

Status CheckRuleSafety(const Rule& rule) {
  std::unordered_set<SymbolId> bound;
  // Positive relational subgoals bind their variables.
  for (const Literal& l : rule.body) {
    if (l.kind == Literal::Kind::kPositive) {
      std::vector<SymbolId> vars;
      l.atom.CollectVariables(&vars);
      bound.insert(vars.begin(), vars.end());
    }
  }
  // '=' comparisons can bind one side from the other; iterate to fixpoint.
  auto all_bound = [&bound](const Term& t) {
    std::vector<SymbolId> vars;
    t.CollectVariables(&vars);
    return std::all_of(vars.begin(), vars.end(), [&bound](SymbolId v) {
      return bound.count(v) > 0;
    });
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : rule.body) {
      if (l.kind != Literal::Kind::kComparison || l.cmp != CmpOp::kEq) {
        continue;
      }
      // '=' binds every variable of one side once the other side is fully
      // bound (pattern matching, e.g. P = [Y | _] destructures P).
      auto bind_side = [&](const Term& pattern, const Term& source) {
        if (!all_bound(source)) return;
        std::vector<SymbolId> vars;
        pattern.CollectVariables(&vars);
        for (SymbolId v : vars) {
          if (bound.insert(v).second) changed = true;
        }
      };
      bind_side(l.lhs, l.rhs);
      bind_side(l.rhs, l.lhs);
    }
  }
  auto check_vars = [&bound](const std::vector<SymbolId>& vars,
                             const std::string& where) -> Status {
    for (SymbolId v : vars) {
      if (!bound.count(v)) {
        return Status::InvalidArgument("unsafe rule: variable " +
                                       SymbolName(v) + " in " + where +
                                       " is not bound by a positive subgoal");
      }
    }
    return Status::OK();
  };

  {
    std::vector<SymbolId> vars;
    rule.head.CollectVariables(&vars);
    DEDUCE_RETURN_IF_ERROR(check_vars(vars, "head " + rule.head.ToString()));
  }
  for (const Literal& l : rule.body) {
    if (l.kind == Literal::Kind::kPositive) continue;
    std::vector<SymbolId> vars;
    l.CollectVariables(&vars);
    // For '=' both sides may be binding; skip the variable being defined.
    if (l.kind == Literal::Kind::kComparison && l.cmp == CmpOp::kEq) {
      // Safety for '=' is implied by the fixpoint above: either it bound a
      // variable or all variables were already bound; re-check.
    }
    DEDUCE_RETURN_IF_ERROR(check_vars(vars, l.ToString()));
  }
  return Status::OK();
}

}  // namespace deduce
