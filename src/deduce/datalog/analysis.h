#ifndef DEDUCE_DATALOG_ANALYSIS_H_
#define DEDUCE_DATALOG_ANALYSIS_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/builtins.h"
#include "deduce/datalog/program.h"

namespace deduce {

/// Canonical form of a "stage" expression used by the XY-stratification
/// check (§IV-C): an integer constant, or var + offset.
struct StageExpr {
  bool valid = false;
  bool is_const = false;
  int64_t konst = 0;     // when is_const
  SymbolId var = 0;      // when !is_const
  int64_t offset = 0;    // when !is_const: var + offset
};

/// Parses `t` as a stage expression: integer constant, variable, var + c,
/// var - c, or c + var. Anything else yields .valid == false.
StageExpr CanonStageExpr(const Term& t);

/// Analysis results for one strongly connected component of the predicate
/// dependency graph.
struct SccInfo {
  std::vector<SymbolId> members;  ///< Deterministic order.
  bool recursive = false;         ///< Multi-member or self-loop.
  bool has_internal_negation = false;
  /// Valid XY-stratification found (only meaningful when
  /// has_internal_negation or when staged evaluation is requested).
  bool xy_stratified = false;
  /// Stage argument index per member (when xy_stratified).
  std::unordered_map<SymbolId, size_t> stage_arg;
  /// Same-stage evaluation order per member (when xy_stratified):
  /// lower strata evaluate first within each stage.
  std::unordered_map<SymbolId, int> local_stratum;
  /// Max head-stage offset over the SCC's recursive rules.
  int64_t max_stage_delta = 0;
  /// Why the XY check failed (when it did).
  std::string xy_diagnostic;
};

/// Whole-program analysis: dependency structure, recursion, negation,
/// stratification and XY-stratification. Mirrors the program-class taxonomy
/// of §III/§IV.
struct ProgramAnalysis {
  /// All relational predicates (EDB + IDB), deterministic order.
  std::vector<SymbolId> predicates;
  std::unordered_set<SymbolId> idb;  ///< Heads of rules.
  std::unordered_set<SymbolId> edb;  ///< Everything else relational.

  /// SCCs of the predicate dependency graph in topological order
  /// (dependencies first). Evaluating SCCs in this order makes every
  /// negated subgoal refer to a completed relation, except for negation
  /// internal to an SCC (which requires XY-stratification).
  std::vector<SccInfo> sccs;
  std::unordered_map<SymbolId, int> scc_of;

  /// Classic negation-stratum per predicate: max over paths of the number
  /// of negative edges. Defined for stratified programs; -1 otherwise.
  std::unordered_map<SymbolId, int> stratum_of;

  bool has_negation = false;
  bool is_recursive = false;
  /// No negative edge inside any SCC (classic stratified negation).
  bool is_stratified = false;
  /// Every SCC with internal negation passed the XY-stratification check.
  bool is_xy_stratified = false;

  /// Index of the SCC a rule belongs to (by head predicate).
  int RuleScc(const Rule& rule) const;

  bool IsEdb(SymbolId pred) const { return edb.count(pred) > 0; }
  bool IsRecursivePred(SymbolId pred) const;

  std::string ToString() const;
};

/// Rewrites body literals whose predicate is (a) never a rule head, (b) not
/// declared, and (c) registered in `registry`, into built-in literals
/// (kBuiltin). Negated occurrences set builtin_negated. Must run before
/// AnalyzeProgram.
Status ResolveBuiltins(Program* program, const BuiltinRegistry& registry);

/// Analyzes `program` (after ResolveBuiltins). Fails on structural errors
/// (e.g. a predicate that is both declared input and derived by rules, or
/// arity mismatches). Stratification failures are reported in flags, not as
/// errors: callers decide which classes they support.
StatusOr<ProgramAnalysis> AnalyzeProgram(const Program& program);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_ANALYSIS_H_
