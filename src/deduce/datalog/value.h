#ifndef DEDUCE_DATALOG_VALUE_H_
#define DEDUCE_DATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "deduce/common/hash.h"
#include "deduce/datalog/symbol.h"

namespace deduce {

/// An atomic constant: 64-bit integer, double, or interned symbol (string).
///
/// Ordering: numbers (int and double) compare numerically against each other;
/// symbols compare lexically; numbers sort before symbols. This total order
/// backs the comparison built-ins (<, <=, ...) and deterministic result
/// printing.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kDouble = 1, kSymbol = 2 };

  Value() : kind_(Kind::kInt), int_(0) {}

  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.kind_ = Kind::kDouble;
    out.double_ = v;
    return out;
  }
  /// Interns `name` as a symbolic constant.
  static Value Symbol(std::string_view name) {
    return SymbolFromId(Intern(name));
  }
  static Value SymbolFromId(SymbolId id) {
    Value out;
    out.kind_ = Kind::kSymbol;
    out.sym_ = id;
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }
  bool is_number() const { return is_int() || is_double(); }

  int64_t as_int() const { return int_; }
  double as_double() const { return double_; }
  SymbolId symbol() const { return sym_; }

  /// Numeric value as double (valid for numbers only).
  double AsNumber() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }

  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case Kind::kInt:
        return int_ == other.int_;
      case Kind::kDouble:
        return double_ == other.double_;
      case Kind::kSymbol:
        return sym_ == other.sym_;
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison per the total order documented above.
  int Compare(const Value& other) const;

  size_t Hash() const;

  /// Symbols print bare if identifier-like, quoted otherwise; doubles print
  /// with enough digits to round-trip.
  std::string ToString() const;

 private:
  Kind kind_;
  union {
    int64_t int_;
    double double_;
    SymbolId sym_;
  };
};

}  // namespace deduce

#endif  // DEDUCE_DATALOG_VALUE_H_
