#include "deduce/datalog/fact.h"

#include <ostream>

#include "deduce/common/hash.h"
#include "deduce/common/logging.h"
#include "deduce/common/strings.h"

namespace deduce {

size_t TupleId::Hash() const {
  size_t h = Mix64(static_cast<uint64_t>(source));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(timestamp)));
  return HashCombine(h, Mix64(seq));
}

std::string TupleId::ToString() const {
  return StrFormat("(%d@%lld#%u)", source, static_cast<long long>(timestamp),
                   seq);
}

uint64_t TraceIdFor(const TupleId& id) {
  // splitmix64-style finalization over the three id components. Unlike
  // Hash(), the result is pinned to 64 bits and to this exact mix so trace
  // files compare across builds and platforms.
  uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(id.source)) << 32) |
               id.seq;
  x ^= static_cast<uint64_t>(id.timestamp) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

Fact::Fact(SymbolId predicate, std::vector<Term> args)
    : predicate_(predicate), args_(std::move(args)) {
  for (const Term& t : args_) {
    DEDUCE_CHECK(t.is_ground()) << "Fact argument must be ground: "
                                << t.ToString();
  }
  hash_ = HashCombine(Mix64(static_cast<uint64_t>(predicate_)),
                      HashTerms(args_));
}

std::string Fact::ToString() const {
  std::string out = SymbolName(predicate_);
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

std::string StreamEvent::ToString() const {
  std::string out = op == StreamOp::kInsert ? "+" : "-";
  out += fact.ToString();
  out += " id=";
  out += id.ToString();
  out += StrFormat(" t=%lld", static_cast<long long>(time));
  return out;
}

std::ostream& operator<<(std::ostream& os, const Fact& f) {
  return os << f.ToString();
}

}  // namespace deduce
