#include "deduce/datalog/fact.h"

#include <ostream>

#include "deduce/common/hash.h"
#include "deduce/common/logging.h"
#include "deduce/common/strings.h"
#include "deduce/datalog/arena.h"

namespace deduce {

size_t TupleId::Hash() const {
  size_t h = Mix64(static_cast<uint64_t>(source));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(timestamp)));
  return HashCombine(h, Mix64(seq));
}

std::string TupleId::ToString() const {
  return StrFormat("(%d@%lld#%u)", source, static_cast<long long>(timestamp),
                   seq);
}

uint64_t TraceIdFor(const TupleId& id) {
  // splitmix64-style finalization over the three id components. Unlike
  // Hash(), the result is pinned to 64 bits and to this exact mix so trace
  // files compare across builds and platforms.
  uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(id.source)) << 32) |
               id.seq;
  x ^= static_cast<uint64_t>(id.timestamp) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

namespace {

/// Backing rep of default-constructed facts: predicate 0, no args, hash 0
/// (matching the pre-arena default exactly).
const std::shared_ptr<const detail::FactRep>& EmptyFactRep() {
  static const std::shared_ptr<const detail::FactRep>* rep =
      new std::shared_ptr<const detail::FactRep>(
          std::make_shared<detail::FactRep>());
  return *rep;
}

}  // namespace

Fact::Fact() : rep_(EmptyFactRep()) {}

Fact::Fact(SymbolId predicate, std::vector<Term> args)
    : rep_(FactArena::Global().MakeFact(predicate, std::move(args)).rep_) {}

std::string Fact::ToString() const {
  std::string out = SymbolName(rep_->predicate);
  out += "(";
  for (size_t i = 0; i < rep_->args.size(); ++i) {
    if (i > 0) out += ", ";
    out += rep_->args[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t Fact::StableHash() const {
  uint64_t cached = rep_->stable_hash.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  uint64_t h = Fnv1a(ToString());
  if (h == 0) h = 1;
  rep_->stable_hash.store(h, std::memory_order_relaxed);
  return h;
}

std::string StreamEvent::ToString() const {
  std::string out = op == StreamOp::kInsert ? "+" : "-";
  out += fact.ToString();
  out += " id=";
  out += id.ToString();
  out += StrFormat(" t=%lld", static_cast<long long>(time));
  return out;
}

std::ostream& operator<<(std::ostream& os, const Fact& f) {
  return os << f.ToString();
}

}  // namespace deduce
