#include "deduce/datalog/unify.h"

#include <algorithm>

#include "deduce/common/logging.h"

namespace deduce {

bool Subst::Bind(SymbolId var, const Term& term) {
  auto [it, inserted] = map_.emplace(var, term);
  if (inserted) return true;
  return it->second == term;
}

const Term* Subst::Lookup(SymbolId var) const {
  auto it = map_.find(var);
  return it == map_.end() ? nullptr : &it->second;
}

Term Subst::Apply(const Term& term) const {
  switch (term.kind()) {
    case Term::Kind::kConstant:
      return term;
    case Term::Kind::kVariable: {
      const Term* bound = Lookup(term.var());
      if (bound == nullptr) return term;
      // Chase chains (X -> Y -> t). Cycles cannot occur: Unify uses the
      // occurs check and evaluation only binds to ground terms.
      if (bound->is_variable() || !bound->is_ground()) return Apply(*bound);
      return *bound;
    }
    case Term::Kind::kFunction: {
      if (term.is_ground()) return term;
      std::vector<Term> args;
      args.reserve(term.args().size());
      for (const Term& a : term.args()) args.push_back(Apply(a));
      return Term::Function(term.functor(), std::move(args));
    }
  }
  return term;
}

std::vector<Term> Subst::ApplyAll(const std::vector<Term>& terms) const {
  std::vector<Term> out;
  out.reserve(terms.size());
  for (const Term& t : terms) out.push_back(Apply(t));
  return out;
}

std::string Subst::ToString() const {
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(map_.size());
  for (const auto& [var, term] : map_) {
    entries.emplace_back(SymbolName(var), term.ToString());
  }
  std::sort(entries.begin(), entries.end());
  std::string out = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ", ";
    out += entries[i].first;
    out += "=";
    out += entries[i].second;
  }
  out += "}";
  return out;
}

bool MatchTerm(const Term& pattern, const Term& ground, Subst* subst) {
  DEDUCE_CHECK(ground.is_ground()) << "MatchTerm target must be ground";
  switch (pattern.kind()) {
    case Term::Kind::kConstant:
      return ground.is_constant() && pattern.value() == ground.value();
    case Term::Kind::kVariable:
      return subst->Bind(pattern.var(), ground);
    case Term::Kind::kFunction: {
      if (!ground.is_function()) return false;
      if (pattern.functor() != ground.functor()) return false;
      if (pattern.args().size() != ground.args().size()) return false;
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!MatchTerm(pattern.args()[i], ground.args()[i], subst)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool MatchTerms(const std::vector<Term>& patterns,
                const std::vector<Term>& grounds, Subst* subst) {
  if (patterns.size() != grounds.size()) return false;
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (!MatchTerm(patterns[i], grounds[i], subst)) return false;
  }
  return true;
}

bool Unify(const Term& a_in, const Term& b_in, Subst* subst) {
  Term a = subst->Apply(a_in);
  Term b = subst->Apply(b_in);
  if (a == b) return true;
  if (a.is_variable()) {
    if (b.ContainsVariable(a.var())) return false;  // occurs check
    return subst->Bind(a.var(), b);
  }
  if (b.is_variable()) {
    if (a.ContainsVariable(b.var())) return false;
    return subst->Bind(b.var(), a);
  }
  if (a.is_constant() || b.is_constant()) {
    return a.is_constant() && b.is_constant() && a.value() == b.value();
  }
  // Both functions.
  if (a.functor() != b.functor() || a.args().size() != b.args().size()) {
    return false;
  }
  for (size_t i = 0; i < a.args().size(); ++i) {
    if (!Unify(a.args()[i], b.args()[i], subst)) return false;
  }
  return true;
}

Term RenameVariables(const Term& t, const std::string& suffix) {
  switch (t.kind()) {
    case Term::Kind::kConstant:
      return t;
    case Term::Kind::kVariable:
      return Term::Var(SymbolName(t.var()) + suffix);
    case Term::Kind::kFunction: {
      if (t.is_ground()) return t;
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(RenameVariables(a, suffix));
      return Term::Function(t.functor(), std::move(args));
    }
  }
  return t;
}

}  // namespace deduce
