#include "deduce/datalog/program.h"

#include "deduce/common/strings.h"

namespace deduce {

std::string PredicateDecl::ToString() const {
  std::string out = ".decl " + SymbolName(name) + "/" +
                    StrFormat("%zu", arity);
  if (extensional) out += " input";
  if (window) out += StrFormat(" window %lld", static_cast<long long>(*window));
  if (home_arg) out += StrFormat(" home %zu", *home_arg);
  if (stage_arg) out += StrFormat(" stage %zu", *stage_arg);
  if (!storage_policy.empty()) out += " storage " + storage_policy;
  if (!join_policy.empty()) out += " join " + join_policy;
  out += ".";
  return out;
}

Status Program::AddRule(Rule rule) {
  DEDUCE_RETURN_IF_ERROR(ExtractAggregates(&rule));
  if (rule.body.empty()) {
    // Ground fact.
    for (const Term& t : rule.head.args) {
      if (!t.is_ground()) {
        return Status::InvalidArgument("fact must be ground: " +
                                       rule.head.ToString());
      }
    }
    if (!rule.aggregates.empty()) {
      return Status::InvalidArgument("fact cannot contain aggregates: " +
                                     rule.head.ToString());
    }
    facts_.emplace_back(rule.head.predicate, rule.head.args);
    return Status::OK();
  }
  DEDUCE_RETURN_IF_ERROR(CheckRuleSafety(rule));
  rule.id = static_cast<int>(rules_.size());
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status Program::AddDecl(PredicateDecl decl) {
  auto it = decls_.find(decl.name);
  if (it != decls_.end() && it->second.arity != decl.arity) {
    return Status::InvalidArgument(
        StrFormat("conflicting arity for %s: %zu vs %zu",
                  SymbolName(decl.name).c_str(), it->second.arity,
                  decl.arity));
  }
  decls_[decl.name] = std::move(decl);
  return Status::OK();
}

const PredicateDecl* Program::FindDecl(SymbolId pred) const {
  auto it = decls_.find(pred);
  return it == decls_.end() ? nullptr : &it->second;
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& [name, decl] : decls_) {
    out += decl.ToString();
    out += "\n";
  }
  for (const Fact& f : facts_) {
    out += f.ToString();
    out += ".\n";
  }
  for (const Rule& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace deduce
