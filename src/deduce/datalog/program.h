#ifndef DEDUCE_DATALOG_PROGRAM_H_
#define DEDUCE_DATALOG_PROGRAM_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/fact.h"
#include "deduce/datalog/rule.h"

namespace deduce {

/// Properties of a predicate supplied by `.decl` statements. All fields are
/// optional; the planner picks defaults (see engine/planner.h).
struct PredicateDecl {
  SymbolId name = 0;
  size_t arity = 0;
  /// Declared input stream (extensional) even if it also has rules.
  bool extensional = false;
  /// Sliding-window range τ_w, in the same time unit as tuple timestamps.
  std::optional<Timestamp> window;
  /// Argument index (0-based) holding the node id where tuples of this
  /// predicate should live ("home" placement; used e.g. to store h(_,Y,_)
  /// at node Y as in §V's shortest-path-tree storage discussion).
  std::optional<size_t> home_arg;
  /// Argument index of the XY-stratification stage argument; overrides
  /// inference.
  std::optional<size_t> stage_arg;
  /// Region policy names interpreted by the distributed planner:
  /// "row", "column", "local", "broadcast", "centroid", "spatial:<radius>".
  std::string storage_policy;
  std::string join_policy;

  std::string ToString() const;
};

/// A deductive program: declarations, rules and ground facts given in the
/// program text. Build by hand or via ParseProgram (parser.h).
class Program {
 public:
  Program() = default;

  /// Adds a rule; assigns its id. Fact rules (empty body, ground head) are
  /// routed to facts(). Returns error for non-ground fact rules or malformed
  /// aggregates.
  Status AddRule(Rule rule);

  /// Registers or updates a declaration. Fails if the arity conflicts with
  /// an existing declaration.
  Status AddDecl(PredicateDecl decl);

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  const std::vector<Fact>& facts() const { return facts_; }
  const std::unordered_map<SymbolId, PredicateDecl>& decls() const {
    return decls_;
  }

  /// The declaration for `pred`, or nullptr.
  const PredicateDecl* FindDecl(SymbolId pred) const;

  /// Full program text in parseable syntax.
  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
  std::vector<Fact> facts_;
  std::unordered_map<SymbolId, PredicateDecl> decls_;
};

}  // namespace deduce

#endif  // DEDUCE_DATALOG_PROGRAM_H_
