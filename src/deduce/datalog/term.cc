#include "deduce/datalog/term.h"

#include <mutex>
#include <ostream>
#include <unordered_map>

#include "deduce/common/hash.h"
#include "deduce/common/logging.h"

namespace deduce {

namespace {

constexpr const char kConsName[] = "[|]";
constexpr const char kNilName[] = "[]";

// ---------------------------------------------------------------------
// Constant / variable interning
//
// Every wire decode and workload generator used to allocate a fresh Rep per
// constant; at 100k nodes that is millions of identical small objects.
// Ground constants and variables intern through a sharded global table
// instead: repeated construction returns the shared rep. Interning affects
// only object identity (equality is structural regardless), so it is
// transparent to evaluation and to transcript determinism. The table is
// capacity-capped per shard — once full, constants fall back to fresh
// allocation rather than growing without bound.
// ---------------------------------------------------------------------

constexpr int64_t kSmallIntMin = -256;
constexpr int64_t kSmallIntMax = 4096;
constexpr size_t kTermShards = 16;
constexpr size_t kTermShardCap = 1 << 16;

struct TermShard {
  std::mutex mu;
  std::unordered_map<size_t, std::vector<Term>> constants;
  std::unordered_map<SymbolId, Term> variables;
};

TermShard& ShardFor(size_t hash) {
  static TermShard* shards = new TermShard[kTermShards];
  return shards[hash % kTermShards];
}

}  // namespace

SymbolId Term::ConsFunctor() {
  static const SymbolId id = Intern(kConsName);
  return id;
}

SymbolId Term::NilSymbol() {
  static const SymbolId id = Intern(kNilName);
  return id;
}

Term Term::FromValue(Value v) {
  auto fresh = [](const Value& val) {
    auto rep = std::make_shared<Rep>();
    rep->kind = Kind::kConstant;
    rep->value = val;
    rep->ground = true;
    rep->hash = HashCombine(1, val.Hash());
    return Term(std::move(rep));
  };
  // Lock-free fast path for the small integers that dominate workloads
  // (keys, node ids, sequence numbers).
  if (v.is_int() && v.as_int() >= kSmallIntMin && v.as_int() <= kSmallIntMax) {
    static const std::vector<Term>* small = [&fresh] {
      auto* out = new std::vector<Term>;
      out->reserve(static_cast<size_t>(kSmallIntMax - kSmallIntMin + 1));
      for (int64_t i = kSmallIntMin; i <= kSmallIntMax; ++i) {
        out->push_back(fresh(Value::Int(i)));
      }
      return out;
    }();
    return (*small)[static_cast<size_t>(v.as_int() - kSmallIntMin)];
  }
  size_t vh = v.Hash();
  TermShard& shard = ShardFor(vh);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.constants.find(vh);
  if (it != shard.constants.end()) {
    for (const Term& t : it->second) {
      if (t.value() == v) return t;
    }
  } else if (shard.constants.size() < kTermShardCap) {
    it = shard.constants.emplace(vh, std::vector<Term>()).first;
  }
  Term out = fresh(v);
  if (it != shard.constants.end()) it->second.push_back(out);
  return out;
}

Term Term::Var(std::string_view name) { return VarFromId(Intern(name)); }

Term Term::VarFromId(SymbolId id) {
  TermShard& shard = ShardFor(Mix64(static_cast<uint64_t>(id)));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.variables.find(id);
  if (it != shard.variables.end()) return it->second;
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kVariable;
  rep->sym = id;
  rep->ground = false;
  rep->hash = HashCombine(2, Mix64(static_cast<uint64_t>(id)));
  Term out(std::move(rep));
  shard.variables.emplace(id, out);
  return out;
}

Term Term::Function(SymbolId functor, std::vector<Term> args) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kFunction;
  rep->sym = functor;
  rep->ground = true;
  size_t h = HashCombine(3, Mix64(static_cast<uint64_t>(functor)));
  for (const Term& a : args) {
    rep->ground = rep->ground && a.is_ground();
    h = HashCombine(h, a.Hash());
  }
  rep->hash = h;
  rep->args = std::move(args);
  return Term(std::move(rep));
}

Term Term::Function(std::string_view functor, std::vector<Term> args) {
  return Function(Intern(functor), std::move(args));
}

Term Term::Nil() { return FromValue(Value::SymbolFromId(NilSymbol())); }

Term Term::Cons(Term head, Term tail) {
  return Function(ConsFunctor(), {std::move(head), std::move(tail)});
}

Term Term::MakeList(const std::vector<Term>& elements,
                    std::optional<Term> tail) {
  Term out = tail.has_value() ? *tail : Nil();
  for (auto it = elements.rbegin(); it != elements.rend(); ++it) {
    out = Cons(*it, out);
  }
  return out;
}

bool Term::is_nil() const {
  return is_constant() && value().is_symbol() && value().symbol() == NilSymbol();
}

bool Term::is_cons() const {
  return is_function() && functor() == ConsFunctor() && args().size() == 2;
}

std::optional<std::vector<Term>> Term::AsListElements() const {
  std::vector<Term> out;
  Term cur = *this;
  while (true) {
    if (cur.is_nil()) return out;
    if (!cur.is_cons()) return std::nullopt;
    out.push_back(cur.args()[0]);
    cur = cur.args()[1];
  }
}

bool Term::operator==(const Term& other) const {
  if (rep_ == other.rep_) return true;
  if (rep_->hash != other.rep_->hash) return false;
  if (rep_->kind != other.rep_->kind) return false;
  switch (rep_->kind) {
    case Kind::kConstant:
      return rep_->value == other.rep_->value;
    case Kind::kVariable:
      return rep_->sym == other.rep_->sym;
    case Kind::kFunction: {
      if (rep_->sym != other.rep_->sym) return false;
      if (rep_->args.size() != other.rep_->args.size()) return false;
      for (size_t i = 0; i < rep_->args.size(); ++i) {
        if (!(rep_->args[i] == other.rep_->args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

int Term::Compare(const Term& other) const {
  int ka = static_cast<int>(kind());
  int kb = static_cast<int>(other.kind());
  if (ka != kb) return ka < kb ? -1 : 1;
  switch (kind()) {
    case Kind::kConstant:
      return value().Compare(other.value());
    case Kind::kVariable: {
      const std::string& a = SymbolName(var());
      const std::string& b = SymbolName(other.var());
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Kind::kFunction: {
      if (args().size() != other.args().size()) {
        return args().size() < other.args().size() ? -1 : 1;
      }
      const std::string& a = SymbolName(functor());
      const std::string& b = SymbolName(other.functor());
      if (a != b) return a < b ? -1 : 1;
      for (size_t i = 0; i < args().size(); ++i) {
        int c = args()[i].Compare(other.args()[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

void Term::CollectVariables(std::vector<SymbolId>* out) const {
  switch (kind()) {
    case Kind::kConstant:
      return;
    case Kind::kVariable:
      out->push_back(var());
      return;
    case Kind::kFunction:
      if (is_ground()) return;
      for (const Term& a : args()) a.CollectVariables(out);
      return;
  }
}

bool Term::ContainsVariable(SymbolId v) const {
  switch (kind()) {
    case Kind::kConstant:
      return false;
    case Kind::kVariable:
      return var() == v;
    case Kind::kFunction:
      if (is_ground()) return false;
      for (const Term& a : args()) {
        if (a.ContainsVariable(v)) return true;
      }
      return false;
  }
  return false;
}

size_t Term::Size() const {
  switch (kind()) {
    case Kind::kConstant:
    case Kind::kVariable:
      return 1;
    case Kind::kFunction: {
      size_t n = 1;
      for (const Term& a : args()) n += a.Size();
      return n;
    }
  }
  return 1;
}

std::string Term::ToString() const {
  switch (kind()) {
    case Kind::kConstant:
      if (is_nil()) return "[]";
      return value().ToString();
    case Kind::kVariable:
      return SymbolName(var());
    case Kind::kFunction: {
      // Print cons chains in list syntax.
      if (is_cons()) {
        std::string out = "[";
        Term cur = *this;
        bool first = true;
        while (cur.is_cons()) {
          if (!first) out += ", ";
          out += cur.args()[0].ToString();
          first = false;
          cur = cur.args()[1];
        }
        if (!cur.is_nil()) {
          out += " | ";
          out += cur.ToString();
        }
        out += "]";
        return out;
      }
      std::string out = SymbolName(functor());
      out += "(";
      for (size_t i = 0; i < args().size(); ++i) {
        if (i > 0) out += ", ";
        out += args()[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

size_t HashTerms(const std::vector<Term>& terms) {
  size_t h = 17;
  for (const Term& t : terms) h = HashCombine(h, t.Hash());
  return h;
}

std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}

}  // namespace deduce
