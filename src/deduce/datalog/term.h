#ifndef DEDUCE_DATALOG_TERM_H_
#define DEDUCE_DATALOG_TERM_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "deduce/datalog/value.h"

namespace deduce {

/// A first-order term: constant, variable, or function application
/// f(t1, ..., tn). Lists are sugar over the cons functor '[|]' and the nil
/// constant '[]' (see MakeList / AsListElements).
///
/// Terms are immutable and cheap to copy (shared representation). Hash and
/// groundness are computed once at construction.
class Term {
 public:
  enum class Kind : uint8_t { kConstant = 0, kVariable = 1, kFunction = 2 };

  /// Default-constructed term is the integer constant 0.
  Term() : Term(FromValue(Value::Int(0))) {}

  static Term FromValue(Value v);
  static Term Int(int64_t v) { return FromValue(Value::Int(v)); }
  static Term Real(double v) { return FromValue(Value::Double(v)); }
  static Term Sym(std::string_view name) {
    return FromValue(Value::Symbol(name));
  }
  static Term Var(std::string_view name);
  static Term VarFromId(SymbolId id);
  static Term Function(SymbolId functor, std::vector<Term> args);
  static Term Function(std::string_view functor, std::vector<Term> args);

  /// The empty list '[]'.
  static Term Nil();
  /// Cons cell '[|]'(head, tail).
  static Term Cons(Term head, Term tail);
  /// [e0, e1, ... | tail]; tail defaults to Nil.
  static Term MakeList(const std::vector<Term>& elements,
                       std::optional<Term> tail = std::nullopt);

  Kind kind() const { return rep_->kind; }
  bool is_constant() const { return kind() == Kind::kConstant; }
  bool is_variable() const { return kind() == Kind::kVariable; }
  bool is_function() const { return kind() == Kind::kFunction; }

  /// Valid for constants.
  const Value& value() const { return rep_->value; }
  /// Valid for variables: the interned variable name.
  SymbolId var() const { return rep_->sym; }
  /// Valid for functions: the interned functor name.
  SymbolId functor() const { return rep_->sym; }
  /// Valid for functions.
  const std::vector<Term>& args() const { return rep_->args; }

  bool is_nil() const;
  bool is_cons() const;
  /// If this term is a proper list (cons chain ending in nil), returns its
  /// elements; nullopt otherwise.
  std::optional<std::vector<Term>> AsListElements() const;

  /// True if the term contains no variables.
  bool is_ground() const { return rep_->ground; }

  /// Structural equality.
  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Total order over ground and non-ground terms alike (constants <
  /// variables < functions; recursively). Used for deterministic printing.
  int Compare(const Term& other) const;

  size_t Hash() const { return rep_->hash; }

  /// Appends the ids of all variables occurring in the term (with
  /// duplicates, in left-to-right order).
  void CollectVariables(std::vector<SymbolId>* out) const;

  /// True if variable `v` occurs in this term.
  bool ContainsVariable(SymbolId v) const;

  /// Number of nodes in the term tree (constants/variables count 1).
  size_t Size() const;

  /// Prolog-ish syntax; lists print as [a, b | T].
  std::string ToString() const;

  /// The interned functor used for cons cells.
  static SymbolId ConsFunctor();
  /// The interned symbol used for nil.
  static SymbolId NilSymbol();

 private:
  struct Rep {
    Kind kind;
    Value value;      // kConstant
    SymbolId sym = 0; // kVariable: name; kFunction: functor
    std::vector<Term> args;
    size_t hash = 0;
    bool ground = false;
  };

  explicit Term(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

/// Hash of a sequence of terms (used by tuples and join keys).
size_t HashTerms(const std::vector<Term>& terms);

std::ostream& operator<<(std::ostream& os, const Term& t);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_TERM_H_
