#ifndef DEDUCE_DATALOG_FACT_H_
#define DEDUCE_DATALOG_FACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "deduce/datalog/term.h"

namespace deduce {

/// Logical time in microseconds. The simulator's SimTime and node-local
/// clocks use the same unit.
using Timestamp = int64_t;

/// Identifier of a node in the network (also used for "source node" in
/// tuple ids); -1 means "no node" (e.g. facts created centrally).
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

/// Uniquely identifies a tuple in the system (§IV, Definition 2): the source
/// node where the tuple was generated (a derived tuple is generated at its
/// hashed home node), the node-local generation timestamp, and a per-node
/// sequence number to disambiguate same-instant generations.
struct TupleId {
  NodeId source = kNoNode;
  Timestamp timestamp = 0;
  uint32_t seq = 0;

  bool operator==(const TupleId& o) const {
    return source == o.source && timestamp == o.timestamp && seq == o.seq;
  }
  bool operator!=(const TupleId& o) const { return !(*this == o); }
  bool operator<(const TupleId& o) const {
    if (source != o.source) return source < o.source;
    if (timestamp != o.timestamp) return timestamp < o.timestamp;
    return seq < o.seq;
  }
  size_t Hash() const;
  std::string ToString() const;
};

/// The 64-bit provenance trace id of a tuple: a strong deterministic mix of
/// its TupleId. Because every wire message already carries the TupleIds of
/// the tuples it transports (store replicas, partial supports, result
/// supports, aggregate contributors, repair entries), the trace-id sets the
/// provenance layer needs are derivable from the existing wire formats —
/// nothing extra is serialized, so enabling provenance changes no simulated
/// counter. 0 is never returned (it is the "no trace id" sentinel).
uint64_t TraceIdFor(const TupleId& id);

/// A ground atom: predicate applied to ground terms. Value type with a
/// cached hash; equality is structural on (predicate, args).
class Fact {
 public:
  Fact() : predicate_(0), hash_(0) {}
  Fact(SymbolId predicate, std::vector<Term> args);

  SymbolId predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  size_t arity() const { return args_.size(); }
  size_t Hash() const { return hash_; }

  bool operator==(const Fact& o) const {
    if (hash_ != o.hash_ || predicate_ != o.predicate_ ||
        args_.size() != o.args_.size()) {
      return false;
    }
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!(args_[i] == o.args_[i])) return false;
    }
    return true;
  }
  bool operator!=(const Fact& o) const { return !(*this == o); }

  /// "pred(a, b, c)".
  std::string ToString() const;

 private:
  SymbolId predicate_;
  std::vector<Term> args_;
  size_t hash_;
};

struct FactHash {
  size_t operator()(const Fact& f) const { return f.Hash(); }
};

/// Stream update kinds (§IV-A): insertion of a new tuple or deletion of an
/// existing one (deletions carry the id of the tuple being deleted).
enum class StreamOp : uint8_t { kInsert = 0, kDelete = 1 };

/// One update to a base or derived data stream.
struct StreamEvent {
  StreamOp op = StreamOp::kInsert;
  Fact fact;
  TupleId id;           ///< Id of the tuple inserted / being deleted.
  Timestamp time = 0;   ///< Update timestamp (local time at the source).

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Fact& f);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_FACT_H_
