#ifndef DEDUCE_DATALOG_FACT_H_
#define DEDUCE_DATALOG_FACT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deduce/datalog/term.h"

namespace deduce {

class FactArena;

/// Logical time in microseconds. The simulator's SimTime and node-local
/// clocks use the same unit.
using Timestamp = int64_t;

/// Identifier of a node in the network (also used for "source node" in
/// tuple ids); -1 means "no node" (e.g. facts created centrally).
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

/// Uniquely identifies a tuple in the system (§IV, Definition 2): the source
/// node where the tuple was generated (a derived tuple is generated at its
/// hashed home node), the node-local generation timestamp, and a per-node
/// sequence number to disambiguate same-instant generations.
struct TupleId {
  NodeId source = kNoNode;
  Timestamp timestamp = 0;
  uint32_t seq = 0;

  bool operator==(const TupleId& o) const {
    return source == o.source && timestamp == o.timestamp && seq == o.seq;
  }
  bool operator!=(const TupleId& o) const { return !(*this == o); }
  bool operator<(const TupleId& o) const {
    if (source != o.source) return source < o.source;
    if (timestamp != o.timestamp) return timestamp < o.timestamp;
    return seq < o.seq;
  }
  size_t Hash() const;
  std::string ToString() const;
};

/// The 64-bit provenance trace id of a tuple: a strong deterministic mix of
/// its TupleId. Because every wire message already carries the TupleIds of
/// the tuples it transports (store replicas, partial supports, result
/// supports, aggregate contributors, repair entries), the trace-id sets the
/// provenance layer needs are derivable from the existing wire formats —
/// nothing extra is serialized, so enabling provenance changes no simulated
/// counter. 0 is never returned (it is the "no trace id" sentinel).
uint64_t TraceIdFor(const TupleId& id);

namespace detail {

/// Shared immutable representation of a ground atom. Reps live either in a
/// FactArena chunk (arena-allocated, interned) or on the heap (loose facts);
/// a Fact is one shared_ptr to a rep either way.
struct FactRep {
  SymbolId predicate = 0;
  size_t hash = 0;
  std::vector<Term> args;
  /// Memoized GeoHash::StableFactHash (0 = not yet computed). Interning
  /// makes this pay: the per-tuple home lookup used to re-stringify the
  /// fact on every hop; now each distinct fact is stringified once.
  mutable std::atomic<uint64_t> stable_hash{0};
};

}  // namespace detail

/// A ground atom: predicate applied to ground terms. Cheap to copy (one
/// shared pointer; no per-copy allocation): facts constructed through the
/// global FactArena are interned, so equal facts usually share one
/// representation and equality is a pointer compare. Equality is structural
/// on (predicate, args) either way.
class Fact {
 public:
  Fact();
  Fact(SymbolId predicate, std::vector<Term> args);

  SymbolId predicate() const { return rep_->predicate; }
  const std::vector<Term>& args() const { return rep_->args; }
  size_t arity() const { return rep_->args.size(); }
  size_t Hash() const { return rep_->hash; }

  bool operator==(const Fact& o) const {
    if (rep_ == o.rep_) return true;
    if (rep_->hash != o.rep_->hash || rep_->predicate != o.rep_->predicate ||
        rep_->args.size() != o.rep_->args.size()) {
      return false;
    }
    for (size_t i = 0; i < rep_->args.size(); ++i) {
      if (!(rep_->args[i] == o.rep_->args[i])) return false;
    }
    return true;
  }
  bool operator!=(const Fact& o) const { return !(*this == o); }

  /// "pred(a, b, c)".
  std::string ToString() const;

  /// Deterministic content hash, stable across processes (derived from the
  /// printed form, not interning order); memoized on the shared rep. Never
  /// returns 0.
  uint64_t StableHash() const;

  /// Observer of the shared representation's lifetime (tests): expires when
  /// the arena chunk (or heap rep) backing this fact is destroyed.
  std::weak_ptr<const void> weak_rep() const { return rep_; }

 private:
  friend class FactArena;
  explicit Fact(std::shared_ptr<const detail::FactRep> rep)
      : rep_(std::move(rep)) {}

  std::shared_ptr<const detail::FactRep> rep_;
};

struct FactHash {
  size_t operator()(const Fact& f) const { return f.Hash(); }
};

/// Stream update kinds (§IV-A): insertion of a new tuple or deletion of an
/// existing one (deletions carry the id of the tuple being deleted).
enum class StreamOp : uint8_t { kInsert = 0, kDelete = 1 };

/// One update to a base or derived data stream.
struct StreamEvent {
  StreamOp op = StreamOp::kInsert;
  Fact fact;
  TupleId id;           ///< Id of the tuple inserted / being deleted.
  Timestamp time = 0;   ///< Update timestamp (local time at the source).

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Fact& f);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_FACT_H_
