#ifndef DEDUCE_DATALOG_SYMBOL_H_
#define DEDUCE_DATALOG_SYMBOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace deduce {

/// Interned identifier for predicate names, function symbols, variable
/// names and symbolic constants. Equal strings always intern to the same id,
/// so symbol comparison is integer comparison.
using SymbolId = int32_t;

/// Process-wide string interner.
///
/// Fully thread-safe: concurrent trial threads (common/parallel.h) intern
/// through the same global table. Lookups of already-interned names take a
/// shared (reader) lock and perform no allocation; only a first-time intern
/// takes the exclusive lock. Ids are assigned in interning order, which is
/// deterministic for any single-threaded interning sequence; concurrent
/// first-time interns of *distinct* names may be id-ordered either way, so
/// parallel trial runners intern shared vocabulary up front (parsing the
/// program on the main thread does this naturally).
class SymbolTable {
 public:
  /// The single global table.
  static SymbolTable& Global();

  /// Returns the id of `name`, interning it if necessary.
  SymbolId Intern(std::string_view name);

  /// Returns the string for an id. The reference is stable for the process
  /// lifetime. Aborts on an invalid id.
  const std::string& Name(SymbolId id) const;

  /// Number of interned symbols.
  size_t size() const;

 private:
  SymbolTable() = default;

  /// Transparent hashing so lookups take string_view without building a
  /// temporary std::string.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, SymbolId, Hash, std::equal_to<>> index_;
  // Deque-like stable storage: pointers into strings held by unique_ptr.
  std::vector<std::unique_ptr<std::string>> names_;
};

/// Shorthand: interns `name` in the global table.
inline SymbolId Intern(std::string_view name) {
  return SymbolTable::Global().Intern(name);
}

/// Shorthand: resolves `id` in the global table.
inline const std::string& SymbolName(SymbolId id) {
  return SymbolTable::Global().Name(id);
}

}  // namespace deduce

#endif  // DEDUCE_DATALOG_SYMBOL_H_
