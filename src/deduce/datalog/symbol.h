#ifndef DEDUCE_DATALOG_SYMBOL_H_
#define DEDUCE_DATALOG_SYMBOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace deduce {

/// Interned identifier for predicate names, function symbols, variable
/// names and symbolic constants. Equal strings always intern to the same id,
/// so symbol comparison is integer comparison.
using SymbolId = int32_t;

/// Process-wide string interner.
///
/// Thread-safe. Ids are assigned in interning order, which is deterministic
/// for a deterministic program (the whole library is single-threaded in
/// practice; the lock only guards against concurrent test runners).
class SymbolTable {
 public:
  /// The single global table.
  static SymbolTable& Global();

  /// Returns the id of `name`, interning it if necessary.
  SymbolId Intern(std::string_view name);

  /// Returns the string for an id. The reference is stable for the process
  /// lifetime. Aborts on an invalid id.
  const std::string& Name(SymbolId id) const;

  /// Number of interned symbols.
  size_t size() const;

 private:
  SymbolTable() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, SymbolId> index_;
  // Deque-like stable storage: pointers into strings held by unique_ptr.
  std::vector<std::unique_ptr<std::string>> names_;
};

/// Shorthand: interns `name` in the global table.
inline SymbolId Intern(std::string_view name) {
  return SymbolTable::Global().Intern(name);
}

/// Shorthand: resolves `id` in the global table.
inline const std::string& SymbolName(SymbolId id) {
  return SymbolTable::Global().Name(id);
}

}  // namespace deduce

#endif  // DEDUCE_DATALOG_SYMBOL_H_
