#ifndef DEDUCE_DATALOG_PARSER_H_
#define DEDUCE_DATALOG_PARSER_H_

#include <string_view>

#include "deduce/common/statusor.h"
#include "deduce/datalog/program.h"

namespace deduce {

/// Parses a deductive program in the `.dlog` syntax:
///
/// \code
///   % Declarations (all properties optional):
///   .decl veh(type, x, y, t) input window 30 storage row join column.
///   .decl h(src, dst, d) home dst stage d storage local.
///
///   % Facts:
///   edge(1, 2).
///
///   % Rules — NOT for negation, infix comparisons, arithmetic in terms,
///   % lists with [H | T] notation, function symbols, head aggregates:
///   cov(L1, T) :- veh("enemy", L1, T), veh("friendly", L2, T),
///                 dist(L1, L2) <= 5.
///   uncov(L, T) :- veh("enemy", L, T), NOT cov(L, T).
///   traj([R1, R2]) :- report(R1), report(R2), close(R1, R2).
///   mind(Y, min(D)) :- h(X, Y, D).
/// \endcode
///
/// Variables start with an uppercase letter or '_'; '_' alone is an
/// anonymous variable (fresh per occurrence). Symbols are lowercase
/// identifiers or quoted strings. Comments: %, //, /* */.
StatusOr<Program> ParseProgram(std::string_view text);

/// Parses a single term (for tests and tools).
StatusOr<Term> ParseTerm(std::string_view text);

/// Parses a single rule or fact (must end with '.').
StatusOr<Rule> ParseRule(std::string_view text);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_PARSER_H_
