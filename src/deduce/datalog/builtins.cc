#include "deduce/datalog/builtins.h"

#include <algorithm>
#include <cmath>

#include "deduce/common/strings.h"

namespace deduce {

namespace {

Status TypeError(const char* what, const std::vector<Term>& args) {
  std::string s = what;
  s += " applied to (";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) s += ", ";
    s += args[i].ToString();
  }
  s += ")";
  return Status::InvalidArgument(s);
}

StatusOr<Term> NumericBinary(const char* name, const std::vector<Term>& args,
                             int64_t (*fi)(int64_t, int64_t),
                             double (*fd)(double, double)) {
  const Term& a = args[0];
  const Term& b = args[1];
  if (!a.is_constant() || !b.is_constant() || !a.value().is_number() ||
      !b.value().is_number()) {
    return TypeError(name, args);
  }
  if (a.value().is_int() && b.value().is_int()) {
    return Term::Int(fi(a.value().as_int(), b.value().as_int()));
  }
  return Term::Real(fd(a.value().AsNumber(), b.value().AsNumber()));
}

StatusOr<double> GetNumber(const char* name, const Term& t,
                           const std::vector<Term>& args) {
  if (!t.is_constant() || !t.value().is_number()) {
    return StatusOr<double>(TypeError(name, args));
  }
  return t.value().AsNumber();
}

// Extracts an (x, y) pair from either loc(X, Y) or a 2-element list.
StatusOr<std::pair<double, double>> GetPoint(const Term& t) {
  static const SymbolId kLoc = Intern("loc");
  std::vector<Term> coords;
  if (t.is_function() && t.functor() == kLoc && t.args().size() == 2) {
    coords = t.args();
  } else if (auto list = t.AsListElements();
             list.has_value() && list->size() == 2) {
    coords = *list;
  } else {
    return StatusOr<std::pair<double, double>>(Status::InvalidArgument(
        "dist expects loc(X, Y) or [X, Y] points, got " + t.ToString()));
  }
  for (const Term& c : coords) {
    if (!c.is_constant() || !c.value().is_number()) {
      return StatusOr<std::pair<double, double>>(Status::InvalidArgument(
          "non-numeric point coordinate in " + t.ToString()));
    }
  }
  return std::make_pair(coords[0].value().AsNumber(),
                        coords[1].value().AsNumber());
}

}  // namespace

void BuiltinRegistry::RegisterPredicate(std::string_view name, size_t arity,
                                        BuiltinPredicateFn fn) {
  predicates_[Key{Intern(name), arity}] = std::move(fn);
}

void BuiltinRegistry::RegisterFunction(std::string_view name, size_t arity,
                                       BuiltinFunctionFn fn) {
  functions_[Key{Intern(name), arity}] = std::move(fn);
}

const BuiltinPredicateFn* BuiltinRegistry::FindPredicate(SymbolId name,
                                                         size_t arity) const {
  auto it = predicates_.find(Key{name, arity});
  return it == predicates_.end() ? nullptr : &it->second;
}

const BuiltinFunctionFn* BuiltinRegistry::FindFunction(SymbolId name,
                                                       size_t arity) const {
  auto it = functions_.find(Key{name, arity});
  return it == functions_.end() ? nullptr : &it->second;
}

BuiltinRegistry BuiltinRegistry::Default() {
  BuiltinRegistry r;

  r.RegisterFunction("+", 2, [](const std::vector<Term>& a) {
    return NumericBinary(
        "+", a, [](int64_t x, int64_t y) { return x + y; },
        [](double x, double y) { return x + y; });
  });
  r.RegisterFunction("-", 2, [](const std::vector<Term>& a) {
    return NumericBinary(
        "-", a, [](int64_t x, int64_t y) { return x - y; },
        [](double x, double y) { return x - y; });
  });
  r.RegisterFunction("*", 2, [](const std::vector<Term>& a) {
    return NumericBinary(
        "*", a, [](int64_t x, int64_t y) { return x * y; },
        [](double x, double y) { return x * y; });
  });
  r.RegisterFunction("/", 2, [](const std::vector<Term>& a) -> StatusOr<Term> {
    DEDUCE_ASSIGN_OR_RETURN(double x, GetNumber("/", a[0], a));
    DEDUCE_ASSIGN_OR_RETURN(double y, GetNumber("/", a[1], a));
    if (y == 0.0) return Status::InvalidArgument("division by zero");
    if (a[0].value().is_int() && a[1].value().is_int()) {
      return Term::Int(a[0].value().as_int() / a[1].value().as_int());
    }
    return Term::Real(x / y);
  });
  r.RegisterFunction("mod", 2, [](const std::vector<Term>& a)
                                   -> StatusOr<Term> {
    if (!a[0].is_constant() || !a[1].is_constant() ||
        !a[0].value().is_int() || !a[1].value().is_int()) {
      return TypeError("mod", a);
    }
    int64_t y = a[1].value().as_int();
    if (y == 0) return Status::InvalidArgument("mod by zero");
    return Term::Int(a[0].value().as_int() % y);
  });
  r.RegisterFunction("abs", 1, [](const std::vector<Term>& a)
                                   -> StatusOr<Term> {
    DEDUCE_ASSIGN_OR_RETURN(double x, GetNumber("abs", a[0], a));
    if (a[0].value().is_int()) return Term::Int(std::abs(a[0].value().as_int()));
    return Term::Real(std::fabs(x));
  });
  r.RegisterFunction("min", 2, [](const std::vector<Term>& a) {
    return NumericBinary(
        "min", a, [](int64_t x, int64_t y) { return std::min(x, y); },
        [](double x, double y) { return std::min(x, y); });
  });
  r.RegisterFunction("max", 2, [](const std::vector<Term>& a) {
    return NumericBinary(
        "max", a, [](int64_t x, int64_t y) { return std::max(x, y); },
        [](double x, double y) { return std::max(x, y); });
  });

  auto dist2 = [](const std::vector<Term>& a) -> StatusOr<Term> {
    DEDUCE_ASSIGN_OR_RETURN(auto p, GetPoint(a[0]));
    DEDUCE_ASSIGN_OR_RETURN(auto q, GetPoint(a[1]));
    double dx = p.first - q.first;
    double dy = p.second - q.second;
    return Term::Real(std::sqrt(dx * dx + dy * dy));
  };
  r.RegisterFunction("dist", 2, dist2);
  r.RegisterFunction("dist", 4, [](const std::vector<Term>& a)
                                    -> StatusOr<Term> {
    double c[4];
    for (int i = 0; i < 4; ++i) {
      DEDUCE_ASSIGN_OR_RETURN(c[i], GetNumber("dist", a[i], a));
    }
    double dx = c[0] - c[2];
    double dy = c[1] - c[3];
    return Term::Real(std::sqrt(dx * dx + dy * dy));
  });

  // --- list functions ---
  r.RegisterFunction("length", 1, [](const std::vector<Term>& a)
                                      -> StatusOr<Term> {
    auto list = a[0].AsListElements();
    if (!list) return TypeError("length", a);
    return Term::Int(static_cast<int64_t>(list->size()));
  });
  r.RegisterFunction("append", 2, [](const std::vector<Term>& a)
                                      -> StatusOr<Term> {
    auto l1 = a[0].AsListElements();
    auto l2 = a[1].AsListElements();
    if (!l1 || !l2) return TypeError("append", a);
    std::vector<Term> all = *l1;
    all.insert(all.end(), l2->begin(), l2->end());
    return Term::MakeList(all);
  });
  r.RegisterFunction("head", 1, [](const std::vector<Term>& a)
                                    -> StatusOr<Term> {
    if (!a[0].is_cons()) return TypeError("head", a);
    return a[0].args()[0];
  });
  r.RegisterFunction("tail", 1, [](const std::vector<Term>& a)
                                    -> StatusOr<Term> {
    if (!a[0].is_cons()) return TypeError("tail", a);
    return a[0].args()[1];
  });
  r.RegisterFunction("last", 1, [](const std::vector<Term>& a)
                                    -> StatusOr<Term> {
    auto list = a[0].AsListElements();
    if (!list || list->empty()) return TypeError("last", a);
    return list->back();
  });
  r.RegisterFunction("reverse", 1, [](const std::vector<Term>& a)
                                       -> StatusOr<Term> {
    auto list = a[0].AsListElements();
    if (!list) return TypeError("reverse", a);
    std::reverse(list->begin(), list->end());
    return Term::MakeList(*list);
  });
  r.RegisterFunction("nth", 2, [](const std::vector<Term>& a)
                                   -> StatusOr<Term> {
    auto list = a[0].AsListElements();
    if (!list || !a[1].is_constant() || !a[1].value().is_int()) {
      return TypeError("nth", a);
    }
    int64_t i = a[1].value().as_int();
    if (i < 0 || static_cast<size_t>(i) >= list->size()) {
      return Status::OutOfRange(StrFormat("nth index %lld out of range",
                                          static_cast<long long>(i)));
    }
    return (*list)[static_cast<size_t>(i)];
  });

  // --- list predicates ---
  r.RegisterPredicate("member", 2, [](const std::vector<Term>& a)
                                       -> StatusOr<bool> {
    auto list = a[1].AsListElements();
    if (!list) return TypeError("member", a);
    for (const Term& e : *list) {
      if (e == a[0]) return true;
    }
    return false;
  });
  r.RegisterPredicate("prefix", 2, [](const std::vector<Term>& a)
                                       -> StatusOr<bool> {
    auto p = a[0].AsListElements();
    auto l = a[1].AsListElements();
    if (!p || !l) return TypeError("prefix", a);
    if (p->size() > l->size()) return false;
    for (size_t i = 0; i < p->size(); ++i) {
      if (!((*p)[i] == (*l)[i])) return false;
    }
    return true;
  });

  return r;
}

StatusOr<Term> EvalTerm(const Term& term, const BuiltinRegistry& registry) {
  switch (term.kind()) {
    case Term::Kind::kConstant:
    case Term::Kind::kVariable:
      return term;
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(term.args().size());
      bool all_ground = true;
      for (const Term& a : term.args()) {
        DEDUCE_ASSIGN_OR_RETURN(Term e, EvalTerm(a, registry));
        all_ground = all_ground && e.is_ground();
        args.push_back(std::move(e));
      }
      const BuiltinFunctionFn* fn =
          registry.FindFunction(term.functor(), args.size());
      if (fn != nullptr && all_ground) {
        return (*fn)(args);
      }
      return Term::Function(term.functor(), std::move(args));
    }
  }
  return term;
}

}  // namespace deduce
