#include "deduce/datalog/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "deduce/common/strings.h"

namespace deduce {

namespace {

enum class TokKind {
  kEnd,
  kIdent,      // lowercase identifier
  kVariable,   // Uppercase or _ identifier
  kInt,
  kFloat,
  kString,     // quoted symbol
  kDirective,  // .decl etc.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kPipe,
  kColonDash,  // :-
  kEq,         // =
  kNe,         // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kBang,       // ! (negation)
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      DEDUCE_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.line = line_;
      tok.col = col_;
      if (AtEnd()) {
        tok.kind = TokKind::kEnd;
        out.push_back(tok);
        return out;
      }
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        DEDUCE_RETURN_IF_ERROR(LexNumber(&tok));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdent(&tok);
      } else if (c == '"' || c == '\'') {
        DEDUCE_RETURN_IF_ERROR(LexString(&tok));
      } else {
        DEDUCE_RETURN_IF_ERROR(LexPunct(&tok));
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("parse error at %d:%d: %s", line_, col_, msg.c_str()));
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status LexNumber(Token* tok) {
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
    bool is_float = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      digits += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      std::string exp;
      exp += Advance();
      if (Peek() == '+' || Peek() == '-') exp += Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_float = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          exp += Advance();
        }
        digits += exp;
      } else {
        pos_ = save;  // 'e' belongs to a following identifier
      }
    }
    tok->text = digits;
    if (is_float) {
      tok->kind = TokKind::kFloat;
      tok->float_value = std::strtod(digits.c_str(), nullptr);
    } else {
      tok->kind = TokKind::kInt;
      tok->int_value = std::strtoll(digits.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  void LexIdent(Token* tok) {
    std::string name;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      name += Advance();
    }
    tok->text = name;
    char first = name[0];
    tok->kind = (std::isupper(static_cast<unsigned char>(first)) ||
                 first == '_')
                    ? TokKind::kVariable
                    : TokKind::kIdent;
  }

  Status LexString(Token* tok) {
    char quote = Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      char c = Advance();
      if (c == '\\' && !AtEnd()) {
        char e = Advance();
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          default:
            value += e;
        }
      } else {
        value += c;
      }
    }
    if (AtEnd()) return Error("unterminated string");
    Advance();  // closing quote
    tok->kind = TokKind::kString;
    tok->text = value;
    return Status::OK();
  }

  Status LexPunct(Token* tok) {
    char c = Advance();
    switch (c) {
      case '(':
        tok->kind = TokKind::kLParen;
        return Status::OK();
      case ')':
        tok->kind = TokKind::kRParen;
        return Status::OK();
      case '[':
        tok->kind = TokKind::kLBracket;
        return Status::OK();
      case ']':
        tok->kind = TokKind::kRBracket;
        return Status::OK();
      case ',':
        tok->kind = TokKind::kComma;
        return Status::OK();
      case '|':
        tok->kind = TokKind::kPipe;
        return Status::OK();
      case '+':
        tok->kind = TokKind::kPlus;
        return Status::OK();
      case '-':
        tok->kind = TokKind::kMinus;
        return Status::OK();
      case '*':
        tok->kind = TokKind::kStar;
        return Status::OK();
      case '/':
        tok->kind = TokKind::kSlash;
        return Status::OK();
      case '=':
        if (Peek() == '=') Advance();  // '==' accepted as '='
        tok->kind = TokKind::kEq;
        return Status::OK();
      case '!':
        if (Peek() == '=') {
          Advance();
          tok->kind = TokKind::kNe;
        } else {
          tok->kind = TokKind::kBang;
        }
        return Status::OK();
      case '<':
        if (Peek() == '=') {
          Advance();
          tok->kind = TokKind::kLe;
        } else if (Peek() == '>') {
          Advance();
          tok->kind = TokKind::kNe;
        } else {
          tok->kind = TokKind::kLt;
        }
        return Status::OK();
      case '>':
        if (Peek() == '=') {
          Advance();
          tok->kind = TokKind::kGe;
        } else {
          tok->kind = TokKind::kGt;
        }
        return Status::OK();
      case ':':
        if (Peek() == '-') {
          Advance();
          tok->kind = TokKind::kColonDash;
          return Status::OK();
        }
        return Error("expected ':-'");
      case '.':
        if (std::isalpha(static_cast<unsigned char>(Peek()))) {
          std::string name = ".";
          while (!AtEnd() &&
                 std::isalnum(static_cast<unsigned char>(Peek()))) {
            name += Advance();
          }
          tok->kind = TokKind::kDirective;
          tok->text = name;
          return Status::OK();
        }
        tok->kind = TokKind::kDot;
        return Status::OK();
      default:
        return Error(StrFormat("unexpected character '%c'", c));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Program> ParseProgram() {
    Program program;
    while (Cur().kind != TokKind::kEnd) {
      if (Cur().kind == TokKind::kDirective) {
        DEDUCE_RETURN_IF_ERROR(ParseDirective(&program));
      } else {
        DEDUCE_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
        DEDUCE_RETURN_IF_ERROR(program.AddRule(std::move(rule)));
      }
    }
    return program;
  }

  StatusOr<Term> ParseSingleTerm() {
    DEDUCE_ASSIGN_OR_RETURN(Term t, ParseTermExpr());
    DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kEnd, "end of input"));
    return t;
  }

  StatusOr<Rule> ParseSingleRule() {
    DEDUCE_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
    DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kEnd, "end of input"));
    return rule;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Next() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  Token Take() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(StrFormat("parse error at %d:%d: %s",
                                             Cur().line, Cur().col,
                                             msg.c_str()));
  }

  Status Expect(TokKind kind, const char* what) {
    if (Cur().kind != kind) {
      return Error(StrFormat("expected %s", what));
    }
    Take();
    return Status::OK();
  }

  bool Accept(TokKind kind) {
    if (Cur().kind == kind) {
      Take();
      return true;
    }
    return false;
  }

  // --- terms ---

  StatusOr<Term> ParseTermExpr() { return ParseAdd(); }

  StatusOr<Term> ParseAdd() {
    DEDUCE_ASSIGN_OR_RETURN(Term lhs, ParseMul());
    while (Cur().kind == TokKind::kPlus || Cur().kind == TokKind::kMinus) {
      const char* op = Cur().kind == TokKind::kPlus ? "+" : "-";
      Take();
      DEDUCE_ASSIGN_OR_RETURN(Term rhs, ParseMul());
      lhs = Term::Function(op, {lhs, rhs});
    }
    return lhs;
  }

  StatusOr<Term> ParseMul() {
    DEDUCE_ASSIGN_OR_RETURN(Term lhs, ParsePrimary());
    while (Cur().kind == TokKind::kStar || Cur().kind == TokKind::kSlash) {
      const char* op = Cur().kind == TokKind::kStar ? "*" : "/";
      Take();
      DEDUCE_ASSIGN_OR_RETURN(Term rhs, ParsePrimary());
      lhs = Term::Function(op, {lhs, rhs});
    }
    return lhs;
  }

  StatusOr<Term> ParsePrimary() {
    switch (Cur().kind) {
      case TokKind::kInt: {
        Token t = Take();
        return Term::Int(t.int_value);
      }
      case TokKind::kFloat: {
        Token t = Take();
        return Term::Real(t.float_value);
      }
      case TokKind::kMinus: {
        Take();
        if (Cur().kind == TokKind::kInt) {
          Token t = Take();
          return Term::Int(-t.int_value);
        }
        if (Cur().kind == TokKind::kFloat) {
          Token t = Take();
          return Term::Real(-t.float_value);
        }
        DEDUCE_ASSIGN_OR_RETURN(Term inner, ParsePrimary());
        return Term::Function("-", {Term::Int(0), inner});
      }
      case TokKind::kString: {
        Token t = Take();
        return Term::Sym(t.text);
      }
      case TokKind::kVariable: {
        Token t = Take();
        if (t.text == "_") {
          return Term::Var(StrFormat("_G%d", anon_counter_++));
        }
        return Term::Var(t.text);
      }
      case TokKind::kIdent: {
        Token t = Take();
        if (Accept(TokKind::kLParen)) {
          std::vector<Term> args;
          if (Cur().kind != TokKind::kRParen) {
            while (true) {
              DEDUCE_ASSIGN_OR_RETURN(Term a, ParseTermExpr());
              args.push_back(std::move(a));
              if (!Accept(TokKind::kComma)) break;
            }
          }
          DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
          return Term::Function(t.text, std::move(args));
        }
        return Term::Sym(t.text);
      }
      case TokKind::kLBracket:
        return ParseList();
      case TokKind::kLParen: {
        Take();
        DEDUCE_ASSIGN_OR_RETURN(Term inner, ParseTermExpr());
        DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return inner;
      }
      default:
        return StatusOr<Term>(Error("expected a term"));
    }
  }

  StatusOr<Term> ParseList() {
    DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    std::vector<Term> elements;
    std::optional<Term> tail;
    if (Cur().kind != TokKind::kRBracket) {
      while (true) {
        DEDUCE_ASSIGN_OR_RETURN(Term e, ParseTermExpr());
        elements.push_back(std::move(e));
        if (Accept(TokKind::kComma)) continue;
        if (Accept(TokKind::kPipe)) {
          DEDUCE_ASSIGN_OR_RETURN(Term t, ParseTermExpr());
          tail = t;
        }
        break;
      }
    }
    DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    return Term::MakeList(elements, tail);
  }

  // --- literals & rules ---

  StatusOr<Atom> TermToAtom(const Term& t) {
    if (t.is_function()) {
      return Atom(t.functor(), t.args());
    }
    if (t.is_constant() && t.value().is_symbol()) {
      return Atom(t.value().symbol(), {});
    }
    return StatusOr<Atom>(Error("expected a predicate atom, got term '" +
                                t.ToString() + "'"));
  }

  std::optional<CmpOp> CurCmpOp() const {
    switch (Cur().kind) {
      case TokKind::kEq:
        return CmpOp::kEq;
      case TokKind::kNe:
        return CmpOp::kNe;
      case TokKind::kLt:
        return CmpOp::kLt;
      case TokKind::kLe:
        return CmpOp::kLe;
      case TokKind::kGt:
        return CmpOp::kGt;
      case TokKind::kGe:
        return CmpOp::kGe;
      default:
        return std::nullopt;
    }
  }

  StatusOr<Literal> ParseLiteral() {
    bool negated = false;
    if (Cur().kind == TokKind::kBang) {
      Take();
      negated = true;
    } else if (Cur().kind == TokKind::kIdent &&
               (Cur().text == "not" || Cur().text == "NOT")) {
      // 'not' only counts as negation when followed by something that can
      // start a literal (otherwise it is a symbol).
      if (Next().kind == TokKind::kIdent || Next().kind == TokKind::kBang) {
        Take();
        negated = true;
      }
    } else if (Cur().kind == TokKind::kVariable && Cur().text == "NOT") {
      Take();
      negated = true;
    }

    DEDUCE_ASSIGN_OR_RETURN(Term first, ParseTermExpr());
    std::optional<CmpOp> cmp = CurCmpOp();
    if (cmp.has_value()) {
      if (negated) return StatusOr<Literal>(Error("cannot negate comparison"));
      Take();
      DEDUCE_ASSIGN_OR_RETURN(Term rhs, ParseTermExpr());
      return Literal::Comparison(*cmp, first, rhs);
    }
    DEDUCE_ASSIGN_OR_RETURN(Atom atom, TermToAtom(first));
    return negated ? Literal::Negated(std::move(atom))
                   : Literal::Positive(std::move(atom));
  }

  StatusOr<Rule> ParseOneRule() {
    DEDUCE_ASSIGN_OR_RETURN(Term head_term, ParseTermExpr());
    DEDUCE_ASSIGN_OR_RETURN(Atom head, TermToAtom(head_term));
    Rule rule;
    rule.head = std::move(head);
    if (Accept(TokKind::kColonDash)) {
      while (true) {
        DEDUCE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        rule.body.push_back(std::move(lit));
        if (!Accept(TokKind::kComma)) break;
      }
    }
    DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.' at end of rule"));
    return rule;
  }

  // --- declarations ---

  Status ParseDirective(Program* program) {
    Token dir = Take();
    if (dir.text != ".decl") {
      return Error("unknown directive '" + dir.text + "'");
    }
    if (Cur().kind != TokKind::kIdent) {
      return Error("expected predicate name after .decl");
    }
    PredicateDecl decl;
    Token name = Take();
    decl.name = Intern(name.text);
    std::vector<std::string> attr_names;
    if (Accept(TokKind::kSlash)) {
      if (Cur().kind != TokKind::kInt) return Error("expected arity");
      decl.arity = static_cast<size_t>(Take().int_value);
    } else {
      DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'(' or '/arity'"));
      if (Cur().kind != TokKind::kRParen) {
        while (true) {
          if (Cur().kind != TokKind::kIdent &&
              Cur().kind != TokKind::kVariable) {
            return Error("expected attribute name");
          }
          attr_names.push_back(Take().text);
          if (!Accept(TokKind::kComma)) break;
        }
      }
      DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      decl.arity = attr_names.size();
    }

    auto attr_index = [&](const std::string& ref) -> StatusOr<size_t> {
      for (size_t i = 0; i < attr_names.size(); ++i) {
        if (attr_names[i] == ref) return i;
      }
      // Allow a numeric index given as identifier? No: handled by kInt.
      return StatusOr<size_t>(
          Error("unknown attribute '" + ref + "' in .decl " + name.text));
    };
    auto parse_arg_ref = [&]() -> StatusOr<size_t> {
      if (Cur().kind == TokKind::kInt) {
        return static_cast<size_t>(Take().int_value);
      }
      if (Cur().kind == TokKind::kIdent || Cur().kind == TokKind::kVariable) {
        return attr_index(Take().text);
      }
      return StatusOr<size_t>(Error("expected attribute name or index"));
    };

    while (Cur().kind == TokKind::kIdent) {
      std::string prop = Take().text;
      if (prop == "input") {
        decl.extensional = true;
      } else if (prop == "window") {
        if (Cur().kind != TokKind::kInt) return Error("expected window size");
        decl.window = Take().int_value;
      } else if (prop == "home") {
        DEDUCE_ASSIGN_OR_RETURN(size_t idx, parse_arg_ref());
        decl.home_arg = idx;
      } else if (prop == "stage") {
        DEDUCE_ASSIGN_OR_RETURN(size_t idx, parse_arg_ref());
        decl.stage_arg = idx;
      } else if (prop == "storage" || prop == "join") {
        if (Cur().kind != TokKind::kIdent) {
          return Error("expected policy name after '" + prop + "'");
        }
        std::string policy = Take().text;
        if (policy == "spatial") {
          if (Cur().kind != TokKind::kInt) {
            return Error("expected radius after 'spatial'");
          }
          policy += ":" + Take().text;
        }
        if (prop == "storage") {
          decl.storage_policy = policy;
        } else {
          decl.join_policy = policy;
        }
      } else {
        return Error("unknown .decl property '" + prop + "'");
      }
    }
    DEDUCE_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.' at end of .decl"));
    if (decl.home_arg && *decl.home_arg >= decl.arity) {
      return Error("home attribute index out of range in .decl " + name.text);
    }
    if (decl.stage_arg && *decl.stage_arg >= decl.arity) {
      return Error("stage attribute index out of range in .decl " + name.text);
    }
    return program->AddDecl(std::move(decl));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view text) {
  Lexer lexer(text);
  DEDUCE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

StatusOr<Term> ParseTerm(std::string_view text) {
  Lexer lexer(text);
  DEDUCE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.ParseSingleTerm();
}

StatusOr<Rule> ParseRule(std::string_view text) {
  Lexer lexer(text);
  DEDUCE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  StatusOr<Rule> rule = parser.ParseSingleRule();
  if (!rule.ok()) return rule;
  Rule r = std::move(rule).value();
  DEDUCE_RETURN_IF_ERROR(ExtractAggregates(&r));
  return r;
}

}  // namespace deduce
