#include "deduce/datalog/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace deduce {

namespace {

bool IsIdentifierLike(const std::string& s) {
  if (s.empty()) return false;
  if (!std::islower(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (is_number() && other.is_number()) {
    // Exact comparison when both are ints, numeric otherwise.
    if (is_int() && other.is_int()) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = AsNumber();
    double b = other.AsNumber();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_number() != other.is_number()) {
    return is_number() ? -1 : 1;  // numbers sort before symbols
  }
  // Both symbols: lexical order on names (not ids) for determinism.
  const std::string& a = SymbolName(sym_);
  const std::string& b = SymbolName(other.sym_);
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

size_t Value::Hash() const {
  switch (kind_) {
    case Kind::kInt:
      return Mix64(static_cast<uint64_t>(int_) * 3 + 1);
    case Kind::kDouble: {
      // Hash doubles that are exactly integral like the equivalent... no:
      // kInt and kDouble are distinct values (1 != 1.0 under operator==),
      // so they may hash differently.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      __builtin_memcpy(&bits, &double_, sizeof(bits));
      return Mix64(bits * 3 + 2);
    }
    case Kind::kSymbol:
      return Mix64(static_cast<uint64_t>(sym_) * 3);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      return buf;
    }
    case Kind::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      // Ensure it reads back as a double (has '.', 'e' or similar).
      std::string s(buf);
      if (s.find_first_of(".eE") == std::string::npos &&
          s.find_first_of("nN") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Kind::kSymbol: {
      const std::string& name = SymbolName(sym_);
      if (IsIdentifierLike(name)) return name;
      std::string out = "\"";
      for (char c : name) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "?";
}

}  // namespace deduce
