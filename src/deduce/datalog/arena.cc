#include "deduce/datalog/arena.h"

#include <new>

#include "deduce/common/hash.h"
#include "deduce/common/logging.h"

namespace deduce {

/// Bump storage for FactReps. The chunk is the shared_ptr control-block
/// owner; facts alias into it, so a chunk stays alive (and its reps stay
/// constructed) until the last fact referencing it is gone.
struct FactArena::Chunk {
  static constexpr size_t kCapacity = 256;

  alignas(detail::FactRep) unsigned char
      storage[kCapacity * sizeof(detail::FactRep)];
  size_t used = 0;

  detail::FactRep* At(size_t i) {
    return reinterpret_cast<detail::FactRep*>(storage) + i;
  }

  ~Chunk() {
    for (size_t i = 0; i < used; ++i) At(i)->~FactRep();
  }
};

struct FactArena::Shard {
  mutable std::mutex mu;
  /// hash -> reps with that hash (almost always one entry).
  std::unordered_map<size_t,
                     std::vector<std::shared_ptr<const detail::FactRep>>>
      table;
  std::shared_ptr<Chunk> chunk;
  uint64_t facts = 0;
  uint64_t hits = 0;
  uint64_t bytes = 0;
  uint64_t chunks = 0;
};

FactArena::FactArena(Mode mode)
    : mode_(mode), shards_(new Shard[kShards]) {}

FactArena::~FactArena() = default;

FactArena& FactArena::Global() {
  static FactArena* arena = new FactArena(Mode::kIntern);
  return *arena;
}

std::shared_ptr<const detail::FactRep> FactArena::Allocate(
    Shard* shard, SymbolId predicate, std::vector<Term> args, size_t hash) {
  ++shard->facts;
  shard->bytes += sizeof(detail::FactRep) + args.capacity() * sizeof(Term);
  if (mode_ == Mode::kHeap) {
    auto rep = std::make_shared<detail::FactRep>();
    rep->predicate = predicate;
    rep->hash = hash;
    rep->args = std::move(args);
    // make_shared: control block rides along with the rep.
    shard->bytes += 2 * sizeof(void*);
    return rep;
  }
  if (shard->chunk == nullptr || shard->chunk->used == Chunk::kCapacity) {
    shard->chunk = std::make_shared<Chunk>();
    ++shard->chunks;
    shard->bytes += sizeof(Chunk) + 2 * sizeof(void*) -
                    Chunk::kCapacity * sizeof(detail::FactRep);
  }
  detail::FactRep* rep = new (shard->chunk->At(shard->chunk->used))
      detail::FactRep{predicate, hash, std::move(args)};
  ++shard->chunk->used;
  return std::shared_ptr<const detail::FactRep>(shard->chunk, rep);
}

Fact FactArena::MakeFact(SymbolId predicate, std::vector<Term> args) {
  for (const Term& t : args) {
    DEDUCE_CHECK(t.is_ground())
        << "Fact argument must be ground: " << t.ToString();
  }
  size_t hash = HashCombine(Mix64(static_cast<uint64_t>(predicate)),
                            HashTerms(args));
  Shard& shard = shards_[hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (mode_ == Mode::kIntern) {
    auto& candidates = shard.table[hash];
    for (const auto& rep : candidates) {
      if (rep->predicate != predicate || rep->args.size() != args.size()) {
        continue;
      }
      bool equal = true;
      for (size_t i = 0; i < args.size(); ++i) {
        if (!(rep->args[i] == args[i])) {
          equal = false;
          break;
        }
      }
      if (equal) {
        ++shard.hits;
        return Fact(rep);
      }
    }
    auto rep = Allocate(&shard, predicate, std::move(args), hash);
    candidates.push_back(rep);
    return Fact(std::move(rep));
  }
  return Fact(Allocate(&shard, predicate, std::move(args), hash));
}

Fact FactArena::Canonical(const Fact& fact) {
  if (mode_ != Mode::kIntern) return fact;
  size_t hash = fact.Hash();
  Shard& shard = shards_[hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& candidates = shard.table[hash];
  for (const auto& rep : candidates) {
    if (rep == fact.rep_) {
      ++shard.hits;
      return fact;  // Already canonical here.
    }
    Fact candidate(rep);
    if (candidate == fact) {
      ++shard.hits;
      return candidate;
    }
  }
  // Adopt the existing rep as this arena's canonical one: no copy, and the
  // foreign rep's chunk stays alive exactly as long as it is referenced.
  candidates.push_back(fact.rep_);
  ++shard.facts;
  shard.bytes +=
      sizeof(detail::FactRep) + fact.args().capacity() * sizeof(Term);
  return fact;
}

void FactArena::Reset() {
  for (size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].table.clear();
    shards_[i].chunk.reset();
  }
}

FactArena::Stats FactArena::stats() const {
  Stats out;
  for (size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    out.facts += shards_[i].facts;
    out.hits += shards_[i].hits;
    out.bytes += shards_[i].bytes;
    out.chunks += shards_[i].chunks;
  }
  return out;
}

}  // namespace deduce
