#ifndef DEDUCE_DATALOG_ARENA_H_
#define DEDUCE_DATALOG_ARENA_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "deduce/datalog/fact.h"

namespace deduce {

/// Arena allocator + interner for fact representations.
///
/// Facts are the dominant per-object allocation at scale: every stored
/// replica, wire decode and derived result used to carry its own
/// (predicate, args-vector, hash) copy. The arena packs FactReps into bump
/// chunks and dedups by content, so constructing an already-seen fact costs
/// one hash lookup and copying a fact costs one refcount.
///
/// Lifetime: a Fact holds a shared_ptr aliased onto its chunk, so Reset()
/// only drops the arena's own references — chunks with live facts outlive
/// the reset (ASan-verified in tests/term_test.cc), chunks without are
/// freed. Reset() forgets the intern table, so it is the right call between
/// independent workloads (bench sweep points, trial boundaries).
///
/// Thread safety: fully thread-safe; the table is sharded by fact hash so
/// parallel trial threads rarely contend. Interning affects only object
/// identity, never observable values, so parallel runs stay deterministic.
class FactArena {
 public:
  enum class Mode {
    kIntern,  ///< Chunked storage, content-deduplicated (the default).
    kArena,   ///< Chunked storage, no dedup.
    kHeap,    ///< One heap allocation per rep (the pre-arena behaviour).
  };

  explicit FactArena(Mode mode = Mode::kIntern);
  ~FactArena();

  FactArena(const FactArena&) = delete;
  FactArena& operator=(const FactArena&) = delete;

  /// The process-global arena Fact's constructor interns through.
  static FactArena& Global();

  /// Builds (or finds) the fact (predicate, args). Arguments must be ground.
  Fact MakeFact(SymbolId predicate, std::vector<Term> args);

  /// Re-interns a fact constructed elsewhere (another arena, a kHeap arena)
  /// so that store-resident copies share one rep. O(1) identity-return when
  /// `fact` is already this arena's canonical rep.
  Fact Canonical(const Fact& fact);

  /// Drops the intern table and the arena's chunk references. Live facts
  /// keep their chunks alive; everything unreferenced is freed.
  void Reset();

  struct Stats {
    uint64_t facts = 0;      ///< Reps allocated (post-dedup).
    uint64_t hits = 0;       ///< Constructions answered by the intern table.
    uint64_t bytes = 0;      ///< Approx. resident bytes (reps + args + chunks).
    uint64_t chunks = 0;     ///< Chunks allocated.
  };
  Stats stats() const;

 private:
  struct Chunk;
  struct Shard;
  static constexpr size_t kShards = 16;

  std::shared_ptr<const detail::FactRep> Allocate(Shard* shard,
                                                  SymbolId predicate,
                                                  std::vector<Term> args,
                                                  size_t hash);

  Mode mode_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace deduce

#endif  // DEDUCE_DATALOG_ARENA_H_
