#include "deduce/datalog/analysis.h"

#include <algorithm>
#include <functional>
#include <map>

#include "deduce/common/strings.h"

namespace deduce {

StageExpr CanonStageExpr(const Term& t) {
  StageExpr out;
  if (t.is_constant() && t.value().is_int()) {
    out.valid = true;
    out.is_const = true;
    out.konst = t.value().as_int();
    return out;
  }
  if (t.is_variable()) {
    out.valid = true;
    out.var = t.var();
    out.offset = 0;
    return out;
  }
  if (t.is_function() && t.args().size() == 2) {
    const std::string& f = SymbolName(t.functor());
    const Term& a = t.args()[0];
    const Term& b = t.args()[1];
    auto is_int = [](const Term& x) {
      return x.is_constant() && x.value().is_int();
    };
    if (f == "+") {
      if (a.is_variable() && is_int(b)) {
        out.valid = true;
        out.var = a.var();
        out.offset = b.value().as_int();
        return out;
      }
      if (is_int(a) && b.is_variable()) {
        out.valid = true;
        out.var = b.var();
        out.offset = a.value().as_int();
        return out;
      }
    } else if (f == "-") {
      if (a.is_variable() && is_int(b)) {
        out.valid = true;
        out.var = a.var();
        out.offset = -b.value().as_int();
        return out;
      }
    }
  }
  return out;
}

Status ResolveBuiltins(Program* program, const BuiltinRegistry& registry) {
  // Predicates that are rule heads or declared are relational.
  std::unordered_set<SymbolId> relational;
  for (const Rule& r : program->rules()) relational.insert(r.head.predicate);
  for (const Fact& f : program->facts()) relational.insert(f.predicate());
  for (const auto& [name, decl] : program->decls()) relational.insert(name);

  for (Rule& rule : program->mutable_rules()) {
    for (Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kPositive &&
          lit.kind != Literal::Kind::kNegated) {
        continue;
      }
      if (relational.count(lit.atom.predicate)) continue;
      if (registry.HasPredicate(lit.atom.predicate, lit.atom.arity())) {
        lit.builtin_negated = (lit.kind == Literal::Kind::kNegated);
        lit.kind = Literal::Kind::kBuiltin;
      }
    }
  }
  // Re-check safety: builtins do not bind variables, so a rule that was safe
  // when the literal was (mis)classified as relational may now be unsafe.
  for (const Rule& rule : program->rules()) {
    DEDUCE_RETURN_IF_ERROR(CheckRuleSafety(rule));
  }
  return Status::OK();
}

namespace {

struct Edge {
  SymbolId from;  // head
  SymbolId to;    // body predicate
  bool negated;
};

/// Tarjan SCC over predicate ids. Emits SCCs dependencies-first (an SCC is
/// emitted only after every distinct SCC it can reach).
class SccFinder {
 public:
  SccFinder(const std::vector<SymbolId>& nodes,
            const std::unordered_map<SymbolId, std::vector<SymbolId>>& adj)
      : nodes_(nodes), adj_(adj) {}

  std::vector<std::vector<SymbolId>> Run() {
    for (SymbolId n : nodes_) {
      if (!index_.count(n)) Visit(n);
    }
    return components_;
  }

 private:
  void Visit(SymbolId v) {
    index_[v] = lowlink_[v] = counter_++;
    stack_.push_back(v);
    on_stack_.insert(v);
    auto it = adj_.find(v);
    if (it != adj_.end()) {
      for (SymbolId w : it->second) {
        if (!index_.count(w)) {
          Visit(w);
          lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
        } else if (on_stack_.count(w)) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
    }
    if (lowlink_[v] == index_[v]) {
      std::vector<SymbolId> comp;
      while (true) {
        SymbolId w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        comp.push_back(w);
        if (w == v) break;
      }
      std::sort(comp.begin(), comp.end(), [](SymbolId a, SymbolId b) {
        return SymbolName(a) < SymbolName(b);
      });
      components_.push_back(std::move(comp));
    }
  }

  const std::vector<SymbolId>& nodes_;
  const std::unordered_map<SymbolId, std::vector<SymbolId>>& adj_;
  int counter_ = 0;
  std::unordered_map<SymbolId, int> index_;
  std::unordered_map<SymbolId, int> lowlink_;
  std::vector<SymbolId> stack_;
  std::unordered_set<SymbolId> on_stack_;
  std::vector<std::vector<SymbolId>> components_;
};

/// Upper bound U such that (v_b - v_h) <= U can be proven from the rule's
/// comparisons; nullopt if none.
std::optional<int64_t> BoundVarDiff(
    SymbolId v_b, SymbolId v_h,
    const std::vector<std::tuple<StageExpr, StageExpr, CmpOp>>& cmps) {
  std::optional<int64_t> best;
  auto consider = [&best](int64_t u) {
    if (!best.has_value() || u < *best) best = u;
  };
  for (const auto& [lhs, rhs, op] : cmps) {
    if (lhs.is_const || rhs.is_const) continue;
    // Normalize to x + a OP y + b.
    SymbolId x = lhs.var;
    int64_t a = lhs.offset;
    SymbolId y = rhs.var;
    int64_t b = rhs.offset;
    // Derive constraints of the form v_b - v_h <= U.
    auto apply = [&](SymbolId p, int64_t pa, SymbolId q, int64_t qb,
                     bool strict) {
      // p + pa <= q + qb (- 1 if strict)  =>  p - q <= qb - pa (- 1).
      if (p == v_b && q == v_h) consider(qb - pa - (strict ? 1 : 0));
    };
    switch (op) {
      case CmpOp::kLt:
        apply(x, a, y, b, true);
        break;
      case CmpOp::kLe:
        apply(x, a, y, b, false);
        break;
      case CmpOp::kGt:
        apply(y, b, x, a, true);
        break;
      case CmpOp::kGe:
        apply(y, b, x, a, false);
        break;
      case CmpOp::kEq:
        apply(x, a, y, b, false);
        apply(y, b, x, a, false);
        break;
      case CmpOp::kNe:
        break;
    }
  }
  return best;
}

/// Minimum provable value of stage(head) - stage(body); nullopt = unbounded
/// below.
std::optional<int64_t> MinDelta(
    const StageExpr& e_h, const StageExpr& e_b,
    const std::vector<std::tuple<StageExpr, StageExpr, CmpOp>>& cmps) {
  if (e_h.is_const && e_b.is_const) return e_h.konst - e_b.konst;
  if (!e_h.is_const && !e_b.is_const) {
    if (e_h.var == e_b.var) return e_h.offset - e_b.offset;
    std::optional<int64_t> u = BoundVarDiff(e_b.var, e_h.var, cmps);
    if (!u.has_value()) return std::nullopt;
    return e_h.offset - e_b.offset - *u;
  }
  return std::nullopt;  // mixed const/var: cannot bound in general
}

}  // namespace

int ProgramAnalysis::RuleScc(const Rule& rule) const {
  auto it = scc_of.find(rule.head.predicate);
  return it == scc_of.end() ? -1 : it->second;
}

bool ProgramAnalysis::IsRecursivePred(SymbolId pred) const {
  auto it = scc_of.find(pred);
  if (it == scc_of.end()) return false;
  return sccs[static_cast<size_t>(it->second)].recursive;
}

std::string ProgramAnalysis::ToString() const {
  std::string out;
  out += StrFormat("predicates=%zu idb=%zu edb=%zu sccs=%zu\n",
                   predicates.size(), idb.size(), edb.size(), sccs.size());
  out += StrFormat(
      "has_negation=%d is_recursive=%d is_stratified=%d is_xy_stratified=%d\n",
      has_negation, is_recursive, is_stratified, is_xy_stratified);
  for (size_t i = 0; i < sccs.size(); ++i) {
    const SccInfo& s = sccs[i];
    out += StrFormat("scc %zu:", i);
    for (SymbolId m : s.members) out += " " + SymbolName(m);
    if (s.recursive) out += " [recursive]";
    if (s.has_internal_negation) out += " [neg]";
    if (s.xy_stratified) out += " [xy]";
    if (!s.xy_diagnostic.empty()) out += " (" + s.xy_diagnostic + ")";
    out += "\n";
  }
  return out;
}

namespace {

/// Tries to establish XY-stratification for one SCC; fills stage args and
/// local strata on success.
void CheckXYStratified(const Program& program, const std::vector<int>& scc_of_rule,
                       int scc_index, SccInfo* scc) {
  // Candidate stage positions per member.
  std::vector<SymbolId> members = scc->members;
  std::vector<std::vector<size_t>> candidates(members.size());
  std::unordered_map<SymbolId, size_t> arity;
  for (const Rule& r : program.rules()) {
    arity[r.head.predicate] = r.head.arity();
    for (const Literal& l : r.body) {
      if (l.is_relational()) arity[l.atom.predicate] = l.atom.arity();
    }
  }
  size_t combos = 1;
  for (size_t i = 0; i < members.size(); ++i) {
    const PredicateDecl* decl = program.FindDecl(members[i]);
    if (decl != nullptr && decl->stage_arg.has_value()) {
      candidates[i] = {*decl->stage_arg};
    } else {
      size_t n = arity.count(members[i]) ? arity[members[i]] : 0;
      for (size_t p = 0; p < n; ++p) candidates[i].push_back(p);
    }
    if (candidates[i].empty()) {
      scc->xy_diagnostic = "predicate " + SymbolName(members[i]) +
                           " has no candidate stage argument";
      return;
    }
    combos *= candidates[i].size();
    if (combos > 4096) {
      scc->xy_diagnostic =
          "too many stage-argument combinations; add .decl ... stage N";
      return;
    }
  }

  std::unordered_map<SymbolId, size_t> member_index;
  for (size_t i = 0; i < members.size(); ++i) member_index[members[i]] = i;

  // Enumerate assignments (odometer).
  std::vector<size_t> pick(members.size(), 0);
  std::string last_failure;
  while (true) {
    std::unordered_map<SymbolId, size_t> assign;
    for (size_t i = 0; i < members.size(); ++i) {
      assign[members[i]] = candidates[i][pick[i]];
    }

    bool ok = true;
    std::string failure;
    // Same-stage dependency edges (to_pred depends on from_pred at the same
    // stage): pair<from, to> with negation flag.
    std::vector<std::tuple<SymbolId, SymbolId, bool>> same_stage;
    int64_t max_delta = 0;

    for (size_t ri = 0; ri < program.rules().size() && ok; ++ri) {
      const Rule& rule = program.rules()[ri];
      if (scc_of_rule[ri] != scc_index) continue;
      SymbolId head_pred = rule.head.predicate;
      StageExpr e_h = CanonStageExpr(rule.head.args[assign[head_pred]]);
      if (!e_h.valid) {
        ok = false;
        failure = "head stage of rule " + rule.ToString() +
                  " is not var+const/int";
        break;
      }
      // Canonicalized comparisons available in the rule.
      std::vector<std::tuple<StageExpr, StageExpr, CmpOp>> cmps;
      for (const Literal& l : rule.body) {
        if (l.kind != Literal::Kind::kComparison) continue;
        StageExpr a = CanonStageExpr(l.lhs);
        StageExpr b = CanonStageExpr(l.rhs);
        if (a.valid && b.valid) cmps.emplace_back(a, b, l.cmp);
      }
      for (const Literal& l : rule.body) {
        if (!l.is_relational()) continue;
        if (!member_index.count(l.atom.predicate)) continue;
        StageExpr e_b = CanonStageExpr(l.atom.args[assign[l.atom.predicate]]);
        if (!e_b.valid) {
          ok = false;
          failure = "body stage of " + l.ToString() + " is not canonical";
          break;
        }
        std::optional<int64_t> dmin = MinDelta(e_h, e_b, cmps);
        if (!dmin.has_value()) {
          ok = false;
          failure = "cannot bound stage delta for " + l.ToString() +
                    " in rule " + rule.ToString();
          break;
        }
        if (*dmin < 0) {
          ok = false;
          failure = "stage may decrease from " + l.ToString() + " to head in " +
                    rule.ToString();
          break;
        }
        max_delta = std::max(max_delta, *dmin);
        if (*dmin == 0) {
          same_stage.emplace_back(l.atom.predicate, head_pred,
                                  l.kind == Literal::Kind::kNegated);
        }
      }
    }

    if (ok) {
      // Local strata: SCCs of the same-stage graph must not contain a
      // negative edge.
      std::unordered_map<SymbolId, std::vector<SymbolId>> adj;
      for (const auto& [from, to, neg] : same_stage) {
        adj[to].push_back(from);  // "to" depends on "from"
      }
      SccFinder finder(members, adj);
      std::vector<std::vector<SymbolId>> locals = finder.Run();
      std::unordered_map<SymbolId, int> local_of;
      for (size_t i = 0; i < locals.size(); ++i) {
        for (SymbolId m : locals[i]) local_of[m] = static_cast<int>(i);
      }
      bool neg_cycle = false;
      for (const auto& [from, to, neg] : same_stage) {
        if (neg && local_of[from] == local_of[to]) {
          neg_cycle = true;
          failure = "same-stage negative cycle through " + SymbolName(from) +
                    " and " + SymbolName(to);
          break;
        }
      }
      if (!neg_cycle) {
        scc->xy_stratified = true;
        scc->stage_arg = assign;
        scc->local_stratum = local_of;
        scc->max_stage_delta = max_delta;
        scc->xy_diagnostic.clear();
        return;
      }
    }
    last_failure = failure;

    // Next assignment.
    size_t i = 0;
    while (i < pick.size()) {
      if (++pick[i] < candidates[i].size()) break;
      pick[i] = 0;
      ++i;
    }
    if (i == pick.size()) break;
  }
  scc->xy_diagnostic = last_failure.empty()
                           ? "no stage assignment found"
                           : last_failure;
}

}  // namespace

StatusOr<ProgramAnalysis> AnalyzeProgram(const Program& program) {
  ProgramAnalysis out;

  // Collect predicates in deterministic order and check arity consistency.
  std::unordered_map<SymbolId, size_t> arity;
  auto note = [&](SymbolId pred, size_t a) -> Status {
    auto [it, inserted] = arity.emplace(pred, a);
    if (!inserted && it->second != a) {
      return Status::InvalidArgument(
          StrFormat("predicate %s used with arities %zu and %zu",
                    SymbolName(pred).c_str(), it->second, a));
    }
    if (inserted) out.predicates.push_back(pred);
    return Status::OK();
  };
  for (const Rule& r : program.rules()) {
    DEDUCE_RETURN_IF_ERROR(note(r.head.predicate, r.head.arity()));
    out.idb.insert(r.head.predicate);
    for (const Literal& l : r.body) {
      if (l.is_relational()) {
        DEDUCE_RETURN_IF_ERROR(note(l.atom.predicate, l.atom.arity()));
        if (l.kind == Literal::Kind::kNegated) out.has_negation = true;
      }
    }
  }
  for (const Fact& f : program.facts()) {
    DEDUCE_RETURN_IF_ERROR(note(f.predicate(), f.arity()));
  }
  {
    // Declarations, sorted by name for determinism.
    std::vector<const PredicateDecl*> decls;
    for (const auto& [name, d] : program.decls()) decls.push_back(&d);
    std::sort(decls.begin(), decls.end(),
              [](const PredicateDecl* a, const PredicateDecl* b) {
                return SymbolName(a->name) < SymbolName(b->name);
              });
    for (const PredicateDecl* d : decls) {
      DEDUCE_RETURN_IF_ERROR(note(d->name, d->arity));
      if (d->extensional && out.idb.count(d->name)) {
        return Status::InvalidArgument(
            "predicate " + SymbolName(d->name) +
            " is declared input but derived by rules");
      }
    }
  }
  for (SymbolId p : out.predicates) {
    if (!out.idb.count(p)) out.edb.insert(p);
  }

  // Dependency graph: head -> body predicate.
  std::unordered_map<SymbolId, std::vector<SymbolId>> adj;
  std::vector<Edge> edges;
  for (const Rule& r : program.rules()) {
    for (const Literal& l : r.body) {
      if (!l.is_relational()) continue;
      adj[r.head.predicate].push_back(l.atom.predicate);
      edges.push_back(
          {r.head.predicate, l.atom.predicate,
           l.kind == Literal::Kind::kNegated});
    }
  }

  SccFinder finder(out.predicates, adj);
  std::vector<std::vector<SymbolId>> comps = finder.Run();
  for (size_t i = 0; i < comps.size(); ++i) {
    SccInfo info;
    info.members = comps[i];
    for (SymbolId m : info.members) out.scc_of[m] = static_cast<int>(i);
    out.sccs.push_back(std::move(info));
  }
  // Recursive flags and internal negation.
  for (const Edge& e : edges) {
    if (out.scc_of[e.from] == out.scc_of[e.to]) {
      SccInfo& s = out.sccs[static_cast<size_t>(out.scc_of[e.from])];
      s.recursive = true;
      if (e.negated) s.has_internal_negation = true;
    }
  }
  for (SccInfo& s : out.sccs) {
    if (s.members.size() > 1) s.recursive = true;
    if (s.recursive) out.is_recursive = true;
  }
  out.is_stratified = true;
  for (const SccInfo& s : out.sccs) {
    if (s.has_internal_negation) out.is_stratified = false;
  }

  // Classic strata (stratified programs only).
  if (out.is_stratified) {
    for (SymbolId p : out.predicates) out.stratum_of[p] = 0;
    // SCCs are in topological (dependencies-first) order; propagate.
    for (const SccInfo& s : out.sccs) {
      int stratum = 0;
      for (const Rule& r : program.rules()) {
        if (out.scc_of[r.head.predicate] != out.scc_of[s.members[0]]) continue;
        for (const Literal& l : r.body) {
          if (!l.is_relational()) continue;
          int dep = out.stratum_of[l.atom.predicate];
          if (l.kind == Literal::Kind::kNegated) dep += 1;
          stratum = std::max(stratum, dep);
        }
      }
      for (SymbolId m : s.members) out.stratum_of[m] = stratum;
    }
  } else {
    for (SymbolId p : out.predicates) out.stratum_of[p] = -1;
  }

  // XY-stratification for SCCs with internal negation (and for recursive
  // SCCs in general, so the staged evaluator can be used when available).
  std::vector<int> scc_of_rule;
  scc_of_rule.reserve(program.rules().size());
  for (const Rule& r : program.rules()) {
    scc_of_rule.push_back(out.scc_of[r.head.predicate]);
  }
  out.is_xy_stratified = true;
  for (size_t i = 0; i < out.sccs.size(); ++i) {
    SccInfo& s = out.sccs[i];
    if (!s.recursive) continue;
    CheckXYStratified(program, scc_of_rule, static_cast<int>(i), &s);
    if (s.has_internal_negation && !s.xy_stratified) {
      out.is_xy_stratified = false;
    }
  }

  return out;
}

}  // namespace deduce
