#ifndef DEDUCE_DATALOG_RULE_H_
#define DEDUCE_DATALOG_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "deduce/common/status.h"
#include "deduce/datalog/term.h"

namespace deduce {

/// A (possibly non-ground) atom: predicate applied to terms.
struct Atom {
  SymbolId predicate = 0;
  std::vector<Term> args;

  Atom() = default;
  Atom(SymbolId predicate, std::vector<Term> args)
      : predicate(predicate), args(std::move(args)) {}
  Atom(std::string_view predicate, std::vector<Term> args)
      : predicate(Intern(predicate)), args(std::move(args)) {}

  size_t arity() const { return args.size(); }
  void CollectVariables(std::vector<SymbolId>* out) const {
    for (const Term& t : args) t.CollectVariables(out);
  }
  std::string ToString() const;
  bool operator==(const Atom& o) const {
    return predicate == o.predicate && args == o.args;
  }
};

/// Comparison operators usable between terms in rule bodies.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);
/// Evaluates `lhs op rhs` over the total term order (numeric for numbers).
bool EvalCmp(CmpOp op, const Term& lhs, const Term& rhs);

/// One body element of a rule.
struct Literal {
  enum class Kind : uint8_t {
    kPositive,    ///< Relational subgoal p(t...).
    kNegated,     ///< NOT p(t...).
    kBuiltin,     ///< Built-in boolean predicate, evaluated locally.
    kComparison,  ///< t1 op t2 (op may be '=' which can bind a variable).
  };

  Kind kind = Kind::kPositive;
  Atom atom;      // kPositive / kNegated / kBuiltin
  CmpOp cmp = CmpOp::kEq;  // kComparison
  Term lhs, rhs;           // kComparison
  /// For kBuiltin: the predicate appeared under NOT (evaluate and negate).
  bool builtin_negated = false;

  static Literal Positive(Atom a) {
    Literal l;
    l.kind = Kind::kPositive;
    l.atom = std::move(a);
    return l;
  }
  static Literal Negated(Atom a) {
    Literal l;
    l.kind = Kind::kNegated;
    l.atom = std::move(a);
    return l;
  }
  static Literal Builtin(Atom a) {
    Literal l;
    l.kind = Kind::kBuiltin;
    l.atom = std::move(a);
    return l;
  }
  static Literal Comparison(CmpOp op, Term lhs, Term rhs) {
    Literal l;
    l.kind = Kind::kComparison;
    l.cmp = op;
    l.lhs = std::move(lhs);
    l.rhs = std::move(rhs);
    return l;
  }

  bool is_relational() const {
    return kind == Kind::kPositive || kind == Kind::kNegated;
  }
  void CollectVariables(std::vector<SymbolId>* out) const;
  std::string ToString() const;
};

/// Aggregate functions allowed in rule heads, e.g.
///   minhop(Y, min(D)) :- h(X, Y, D).
enum class AggKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* AggKindToString(AggKind kind);

/// Describes one aggregate argument of a rule head. All other head
/// arguments form the group-by key.
struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  size_t head_position = 0;  ///< Index of the aggregate argument in the head.
  Term input;                ///< The aggregated expression (ignored by count).
};

/// A deductive rule `head :- body.` A rule with an empty body is a fact rule.
struct Rule {
  Atom head;
  std::vector<Literal> body;
  std::vector<AggregateSpec> aggregates;  ///< Filled by ExtractAggregates.
  int id = -1;  ///< Index of the rule within its program.

  std::string ToString() const;

  /// Variables occurring anywhere in the rule, deduplicated, in first-
  /// occurrence order.
  std::vector<SymbolId> Variables() const;
};

/// Recognizes aggregate terms (min/max/sum/count/avg applied to one
/// argument) in the head of `rule`, fills rule->aggregates, and replaces the
/// aggregate position args with their input terms for variable accounting.
/// Returns InvalidArgument for nested or malformed aggregates.
Status ExtractAggregates(Rule* rule);

/// Checks range restriction (§IV footnote 3, extended with '='-binding):
/// every variable of the head, of negated subgoals, of built-ins and of
/// comparisons must be bound by a positive relational subgoal or by an
/// equality with an expression over bound variables. Returns
/// InvalidArgument naming the offending variable otherwise.
Status CheckRuleSafety(const Rule& rule);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_RULE_H_
