#ifndef DEDUCE_DATALOG_BUILTINS_H_
#define DEDUCE_DATALOG_BUILTINS_H_

#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/term.h"

namespace deduce {

/// A built-in boolean predicate. Receives ground argument terms; returns
/// whether the predicate holds. Used for locally-evaluated conditions such
/// as close(R1, R2) or isParallel(L1, L2) from the paper's Example 2.
using BuiltinPredicateFn =
    std::function<StatusOr<bool>(const std::vector<Term>&)>;

/// A built-in evaluable function. Receives ground argument terms; returns
/// the resulting term (e.g. arithmetic, dist(...)).
using BuiltinFunctionFn =
    std::function<StatusOr<Term>(const std::vector<Term>&)>;

/// Registry of built-in predicates and evaluable functions (§II-B:
/// "Embedding Arithmetic Computations in Built-in Predicates").
///
/// Function symbols not present in the registry are *constructors*: they are
/// never evaluated and act as uninterpreted terms (lists, records). A
/// registered function name shadows the constructor interpretation at that
/// arity.
class BuiltinRegistry {
 public:
  BuiltinRegistry() = default;

  /// A registry pre-populated with:
  ///  - arithmetic functions: + - * / mod abs min max (numeric promotion);
  ///  - dist(loc(X1,Y1), loc(X2,Y2)) and dist(X1,Y1,X2,Y2): Euclidean;
  ///  - list functions: length, append, head, tail, last, reverse, nth;
  ///  - list predicates: member(X, L), prefix(P, L).
  static BuiltinRegistry Default();

  /// Registers a boolean predicate; replaces any previous registration with
  /// the same name/arity.
  void RegisterPredicate(std::string_view name, size_t arity,
                         BuiltinPredicateFn fn);
  /// Registers an evaluable function.
  void RegisterFunction(std::string_view name, size_t arity,
                        BuiltinFunctionFn fn);

  const BuiltinPredicateFn* FindPredicate(SymbolId name, size_t arity) const;
  const BuiltinFunctionFn* FindFunction(SymbolId name, size_t arity) const;

  bool HasPredicate(SymbolId name, size_t arity) const {
    return FindPredicate(name, arity) != nullptr;
  }

 private:
  struct Key {
    SymbolId name;
    size_t arity;
    bool operator==(const Key& o) const {
      return name == o.name && arity == o.arity;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.name) * 1315423911u + k.arity;
    }
  };

  std::unordered_map<Key, BuiltinPredicateFn, KeyHash> predicates_;
  std::unordered_map<Key, BuiltinFunctionFn, KeyHash> functions_;
};

/// Normalizes a ground term by evaluating every function application whose
/// functor is registered as a function in `registry`, innermost-first.
/// Unregistered functors are left as constructors. Returns an error if a
/// registered function fails (e.g. type error, division by zero).
StatusOr<Term> EvalTerm(const Term& term, const BuiltinRegistry& registry);

}  // namespace deduce

#endif  // DEDUCE_DATALOG_BUILTINS_H_
