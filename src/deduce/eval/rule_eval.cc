#include "deduce/eval/rule_eval.h"

#include <algorithm>

#include "deduce/common/logging.h"

namespace deduce {

namespace {

/// Normalizes a term under a substitution: apply bindings, then evaluate
/// registered functions over ground arguments.
StatusOr<Term> Normalize(const Term& t, const Subst& subst,
                         const BuiltinRegistry& registry) {
  return EvalTerm(subst.Apply(t), registry);
}

}  // namespace

/// Matches `pattern` against a ground term like MatchTerm, but additionally
/// solves simple arithmetic patterns: Var+c, Var-c, c+Var against an integer
/// constant. This is what lets an update to a stream bind *through* a
/// subgoal such as h1(Y, D+1) (§IV-B: the update tuple is pinned to a body
/// literal whose arguments may carry arithmetic).
bool SolveMatchTerm(const Term& pattern, const Term& ground, Subst* subst,
                    const BuiltinRegistry& registry) {
  Term p = subst->Apply(pattern);
  StatusOr<Term> normalized = EvalTerm(p, registry);
  if (normalized.ok()) p = std::move(normalized).value();
  if (p.is_ground()) return p == ground;
  if (p.is_variable()) return subst->Bind(p.var(), ground);
  // Function pattern. Try exact structural match first.
  if (ground.is_function() && p.functor() == ground.functor() &&
      p.args().size() == ground.args().size()) {
    Subst saved = *subst;
    bool ok = true;
    for (size_t i = 0; i < p.args().size(); ++i) {
      if (!SolveMatchTerm(p.args()[i], ground.args()[i], subst, registry)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
    *subst = std::move(saved);
  }
  // Linear inversion against an integer constant.
  if (ground.is_constant() && ground.value().is_int() && p.is_function() &&
      p.args().size() == 2) {
    const std::string& f = SymbolName(p.functor());
    const Term& a = p.args()[0];
    const Term& b = p.args()[1];
    int64_t g = ground.value().as_int();
    auto is_int = [](const Term& t) {
      return t.is_constant() && t.value().is_int();
    };
    if (f == "+") {
      if (a.is_variable() && is_int(b)) {
        return subst->Bind(a.var(), Term::Int(g - b.value().as_int()));
      }
      if (is_int(a) && b.is_variable()) {
        return subst->Bind(b.var(), Term::Int(g - a.value().as_int()));
      }
    } else if (f == "-") {
      if (a.is_variable() && is_int(b)) {
        return subst->Bind(a.var(), Term::Int(g + b.value().as_int()));
      }
      if (is_int(a) && b.is_variable()) {
        return subst->Bind(b.var(), Term::Int(a.value().as_int() - g));
      }
    }
  }
  return false;
}

bool SolveMatchTerms(const std::vector<Term>& patterns,
                     const std::vector<Term>& grounds, Subst* subst,
                     const BuiltinRegistry& registry) {
  if (patterns.size() != grounds.size()) return false;
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (!SolveMatchTerm(patterns[i], grounds[i], subst, registry)) {
      return false;
    }
  }
  return true;
}

struct RuleBodyEvaluator::Frame {
  Subst subst;
  std::vector<bool> done;                 // per body literal
  std::vector<MatchedFact> matched;       // positive matches so far
  size_t remaining = 0;
};

RuleBodyEvaluator::RuleBodyEvaluator(const Rule* rule,
                                     const BuiltinRegistry* registry)
    : rule_(rule), registry_(registry) {
  literal_vars_.reserve(rule_->body.size());
  for (const Literal& l : rule_->body) {
    std::vector<SymbolId> vars;
    l.CollectVariables(&vars);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    literal_vars_.push_back(std::move(vars));
  }
}

Status RuleBodyEvaluator::Evaluate(
    const RelationReader& db, const RuleEvalOptions& opts,
    const std::function<Status(const Subst&, const std::vector<MatchedFact>&)>&
        emit,
    RuleEvalStats* stats) const {
  Frame frame;
  frame.done.assign(rule_->body.size(), false);
  frame.remaining = rule_->body.size();
  if (opts.pin_index.has_value()) {
    DEDUCE_CHECK(*opts.pin_index < rule_->body.size());
    DEDUCE_CHECK(opts.pin_facts != nullptr);
    const Literal& pinned = rule_->body[*opts.pin_index];
    DEDUCE_CHECK(pinned.is_relational())
        << "only relational literals can be pinned";
    frame.done[*opts.pin_index] = true;
    --frame.remaining;
    for (const auto& [fact, id] : *opts.pin_facts) {
      if (fact.predicate() != pinned.atom.predicate ||
          fact.arity() != pinned.atom.arity()) {
        continue;
      }
      Frame child = frame;
      if (!SolveMatchTerms(pinned.atom.args, fact.args(), &child.subst,
                           *registry_)) {
        continue;
      }
      if (pinned.kind == Literal::Kind::kPositive) {
        child.matched.push_back(MatchedFact{fact, id, *opts.pin_index});
      }
      DEDUCE_RETURN_IF_ERROR(Step(db, opts, &child, emit, stats));
    }
    return Status::OK();
  }
  return Step(db, opts, &frame, emit, stats);
}

Status RuleBodyEvaluator::Step(
    const RelationReader& db, const RuleEvalOptions& opts, Frame* frame,
    const std::function<Status(const Subst&, const std::vector<MatchedFact>&)>&
        emit,
    RuleEvalStats* stats) const {
  if (stats != nullptr && stats->emitted >= opts.max_results) {
    return Status::FailedPrecondition("rule evaluation exceeded max_results");
  }
  if (frame->remaining == 0) {
    if (stats != nullptr) ++stats->emitted;
    return emit(frame->subst, frame->matched);
  }

  auto bound_count = [&](size_t i) {
    size_t n = 0;
    for (SymbolId v : literal_vars_[i]) {
      if (frame->subst.IsBound(v)) ++n;
    }
    return n;
  };
  auto fully_bound = [&](size_t i) {
    return bound_count(i) == literal_vars_[i].size();
  };

  // 1. Fully bound filters first (cheap, prune early).
  for (size_t i = 0; i < rule_->body.size(); ++i) {
    if (frame->done[i]) continue;
    const Literal& lit = rule_->body[i];
    if (lit.kind == Literal::Kind::kPositive) continue;
    bool evaluable = false;
    if (lit.kind == Literal::Kind::kComparison) {
      // '=' with one unbound variable side is a binding assignment.
      if (fully_bound(i)) {
        evaluable = true;
      } else if (lit.cmp == CmpOp::kEq) {
        auto side_bound = [&](const Term& t) {
          std::vector<SymbolId> vars;
          t.CollectVariables(&vars);
          return std::all_of(vars.begin(), vars.end(), [&](SymbolId v) {
            return frame->subst.IsBound(v);
          });
        };
        bool lb = side_bound(lit.lhs);
        bool rb = side_bound(lit.rhs);
        if (lb != rb) {
          // One side ground: match (or solve) the other side's pattern
          // against it, binding its variables. Handles assignments
          // (Y = X + 1), destructuring (P = [H | T]) and inversion
          // (5 = D + 1).
          DEDUCE_ASSIGN_OR_RETURN(
              Term src, Normalize(lb ? lit.lhs : lit.rhs, frame->subst,
                                  *registry_));
          const Term& pattern = lb ? lit.rhs : lit.lhs;
          if (!src.is_ground()) {
            return Status::Internal("assignment source not ground in " +
                                    lit.ToString());
          }
          Frame saved = *frame;
          if (SolveMatchTerm(pattern, src, &frame->subst, *registry_)) {
            frame->done[i] = true;
            --frame->remaining;
            DEDUCE_RETURN_IF_ERROR(Step(db, opts, frame, emit, stats));
          }
          *frame = std::move(saved);
          return Status::OK();
        }
      }
    } else {
      evaluable = fully_bound(i);
    }
    if (!evaluable) continue;

    bool holds = false;
    switch (lit.kind) {
      case Literal::Kind::kComparison: {
        DEDUCE_ASSIGN_OR_RETURN(Term lhs,
                                Normalize(lit.lhs, frame->subst, *registry_));
        DEDUCE_ASSIGN_OR_RETURN(Term rhs,
                                Normalize(lit.rhs, frame->subst, *registry_));
        holds = EvalCmp(lit.cmp, lhs, rhs);
        break;
      }
      case Literal::Kind::kBuiltin: {
        const BuiltinPredicateFn* fn = registry_->FindPredicate(
            lit.atom.predicate, lit.atom.arity());
        if (fn == nullptr) {
          return Status::NotFound("built-in predicate not registered: " +
                                  lit.atom.ToString());
        }
        std::vector<Term> args;
        args.reserve(lit.atom.args.size());
        for (const Term& a : lit.atom.args) {
          DEDUCE_ASSIGN_OR_RETURN(Term n, Normalize(a, frame->subst,
                                                    *registry_));
          args.push_back(std::move(n));
        }
        DEDUCE_ASSIGN_OR_RETURN(bool v, (*fn)(args));
        holds = v != lit.builtin_negated;
        break;
      }
      case Literal::Kind::kNegated: {
        std::vector<Term> args;
        args.reserve(lit.atom.args.size());
        for (const Term& a : lit.atom.args) {
          DEDUCE_ASSIGN_OR_RETURN(Term n, Normalize(a, frame->subst,
                                                    *registry_));
          if (!n.is_ground()) {
            return Status::Internal("negated subgoal not ground: " +
                                    lit.ToString());
          }
          args.push_back(std::move(n));
        }
        holds = !db.Contains(Fact(lit.atom.predicate, std::move(args)));
        break;
      }
      case Literal::Kind::kPositive:
        break;
    }
    if (!holds) return Status::OK();  // prune this branch
    frame->done[i] = true;
    --frame->remaining;
    Status st = Step(db, opts, frame, emit, stats);
    frame->done[i] = false;
    ++frame->remaining;
    return st;
  }

  // 2. Best positive literal: most bound variables, then lowest index.
  int best = -1;
  size_t best_bound = 0;
  for (size_t i = 0; i < rule_->body.size(); ++i) {
    if (frame->done[i]) continue;
    if (rule_->body[i].kind != Literal::Kind::kPositive) continue;
    size_t b = bound_count(i);
    if (best == -1 || b > best_bound) {
      best = static_cast<int>(i);
      best_bound = b;
    }
  }
  if (best == -1) {
    // Only unresolvable filters remain: the rule is effectively unsafe for
    // this evaluation order (e.g. arithmetic over unbound variables).
    std::string pending;
    for (size_t i = 0; i < rule_->body.size(); ++i) {
      if (!frame->done[i]) pending += " " + rule_->body[i].ToString();
    }
    return Status::InvalidArgument(
        "cannot order body literals (unbound filters remain):" + pending +
        " in rule " + rule_->ToString());
  }

  const Literal& lit = rule_->body[static_cast<size_t>(best)];
  // Normalize the pattern under current bindings (evaluates arithmetic over
  // bound variables in subgoal arguments).
  std::vector<Term> pattern;
  pattern.reserve(lit.atom.args.size());
  for (const Term& a : lit.atom.args) {
    DEDUCE_ASSIGN_OR_RETURN(Term n, Normalize(a, frame->subst, *registry_));
    pattern.push_back(std::move(n));
  }
  frame->done[static_cast<size_t>(best)] = true;
  --frame->remaining;

  Status status = Status::OK();
  auto visit = [&](const Fact& fact, const TupleId& id) {
    if (!status.ok()) return;
    if (stats != nullptr) ++stats->probes;
    if (fact.arity() != pattern.size()) return;
    Subst saved = frame->subst;
    if (MatchTerms(pattern, fact.args(), &frame->subst)) {
      frame->matched.push_back(
          MatchedFact{fact, id, static_cast<size_t>(best)});
      status = Step(db, opts, frame, emit, stats);
      frame->matched.pop_back();
    }
    frame->subst = std::move(saved);
  };
  // Use an indexed scan on the first ground argument position, if any.
  int index_pos = -1;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i].is_ground()) {
      index_pos = static_cast<int>(i);
      break;
    }
  }
  if (index_pos >= 0) {
    db.ScanBound(lit.atom.predicate, static_cast<size_t>(index_pos),
                 pattern[static_cast<size_t>(index_pos)], visit);
  } else {
    db.Scan(lit.atom.predicate, visit);
  }

  frame->done[static_cast<size_t>(best)] = false;
  ++frame->remaining;
  return status;
}

StatusOr<Fact> RuleBodyEvaluator::BuildHead(const Subst& subst) const {
  std::vector<Term> args;
  args.reserve(rule_->head.args.size());
  for (const Term& a : rule_->head.args) {
    DEDUCE_ASSIGN_OR_RETURN(Term n, Normalize(a, subst, *registry_));
    if (!n.is_ground()) {
      return StatusOr<Fact>(Status::Internal(
          "head not ground after substitution: " + rule_->head.ToString()));
    }
    args.push_back(std::move(n));
  }
  return Fact(rule_->head.predicate, std::move(args));
}

}  // namespace deduce
