#ifndef DEDUCE_EVAL_SEMINAIVE_H_
#define DEDUCE_EVAL_SEMINAIVE_H_

#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/analysis.h"
#include "deduce/datalog/program.h"
#include "deduce/eval/database.h"

namespace deduce {

/// Options for centralized evaluation.
struct EvalOptions {
  /// Built-in registry; nullptr uses BuiltinRegistry::Default().
  const BuiltinRegistry* registry = nullptr;
  /// Safety valve: abort if the database grows beyond this.
  uint64_t max_facts = 5'000'000;
  /// Safety valve on fixpoint iterations (guards non-terminating recursion
  /// through function symbols, §IV-C).
  uint64_t max_iterations = 1'000'000;
};

/// Counters from one evaluation.
struct EvalStats {
  uint64_t facts_derived = 0;
  uint64_t rule_firings = 0;   ///< Derivations emitted (before dedup).
  uint64_t probes = 0;         ///< Facts examined by join matching.
  uint64_t iterations = 0;     ///< Semi-naive rounds + stages processed.
};

/// Computes the full bottom-up model of `program` over the given input
/// facts. This is the *centralized reference evaluator*: the distributed
/// engine's results are tested against it.
///
/// Supported classes (§III, §IV-C):
///  - arbitrary non-recursive programs with negation (stratified by SCC),
///  - recursive programs without internal negation (semi-naive),
///  - XY-stratified recursion+negation (staged evaluation by stage value),
///  - head aggregates on non-recursive predicates.
/// Rejects general recursion through negation with kUnimplemented, matching
/// the paper's scope.
///
/// The returned database contains EDB facts, program facts, and all derived
/// facts.
StatusOr<Database> EvaluateProgram(const Program& program,
                                   const std::vector<Fact>& input_facts,
                                   const EvalOptions& opts = {},
                                   EvalStats* stats = nullptr);

/// Like EvaluateProgram but with builtin resolution and analysis already
/// done by the caller (the program must have been passed through
/// ResolveBuiltins with the same registry).
StatusOr<Database> EvaluateAnalyzedProgram(const Program& program,
                                           const ProgramAnalysis& analysis,
                                           const std::vector<Fact>& input_facts,
                                           const EvalOptions& opts,
                                           EvalStats* stats);

}  // namespace deduce

#endif  // DEDUCE_EVAL_SEMINAIVE_H_
