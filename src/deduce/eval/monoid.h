#ifndef DEDUCE_EVAL_MONOID_H_
#define DEDUCE_EVAL_MONOID_H_

#include <optional>

#include "deduce/datalog/rule.h"  // AggKind
#include "deduce/datalog/term.h"

namespace deduce {

/// Mergeable-monoid state for the engine's aggregate kinds (count, sum,
/// min, max, avg). One state representation serves every kind, so a
/// partial state computed anywhere — a centralized fold (seminaive.cc), a
/// per-group home node (runtime.cc HandleAgg), a TAG tree interior node
/// (aggregation.cc), or one tenant's shard of a shared sub-plan — can be
/// merged with any other partial state of the same group.
///
/// The monoid laws the engine relies on (property-tested per kind in
/// tests/tenancy_test.cc):
///   - AggIdentity() is a two-sided identity for AggCombine.
///   - AggCombine is associative. For kSum/kAvg over non-integer reals
///     this holds up to floating-point reassociation; over integers (the
///     common sensor case) it is exact, tracked separately in `isum`.
///   - A left-to-right AggCombine fold over singleton states (one
///     AggAccumulate each) equals the sequential AggAccumulate fold —
///     ties between equal min/max candidates keep the earlier (left)
///     operand, exactly the first-wins semantics of the original inline
///     folds, so refactored call sites stay byte-identical.
struct AggState {
  int64_t count = 0;
  /// Sum of the numeric contributions (non-numeric terms contribute only
  /// to `count`/`best`; whether that is an error is the caller's policy).
  double sum = 0;
  /// True while every numeric contribution was an integer: integer sums
  /// are emitted from `isum`, exactly and associativity-safe.
  bool sum_is_int = true;
  int64_t isum = 0;
  /// Extremum candidate under the total term order: the minimum for kMin,
  /// the maximum for kMax (first contribution wins ties). Also seeded by
  /// the other kinds (harmlessly) so one Accumulate serves every kind.
  std::optional<Term> best;

  bool empty() const { return count == 0; }
};

/// The monoid identity: the state of an empty group.
inline AggState AggIdentity() { return AggState{}; }

/// Folds one contributed value into `acc`: acc <- acc (+) lift(value).
void AggAccumulate(AggKind kind, const Term& value, AggState* acc);

/// Merges `right` into `left`: left <- left (+) right.
void AggCombine(AggKind kind, const AggState& right, AggState* left);

/// Finalizes the emitted aggregate term. kMin/kMax/kAvg require a
/// non-empty state (groups are only extracted once they have a live
/// contribution); kCount/kSum of the identity are 0.
Term AggExtract(AggKind kind, const AggState& acc);

}  // namespace deduce

#endif  // DEDUCE_EVAL_MONOID_H_
