#ifndef DEDUCE_EVAL_INCREMENTAL_H_
#define DEDUCE_EVAL_INCREMENTAL_H_

#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/analysis.h"
#include "deduce/datalog/program.h"
#include "deduce/eval/database.h"
#include "deduce/eval/rule_eval.h"

namespace deduce {

/// How derived results are maintained under deletions (§IV-A discusses all
/// three; the paper adopts the set-of-derivations approach).
enum class MaintenanceStrategy {
  /// Keep the set of derivations of each derived tuple (§IV, Definition 2).
  /// No extra communication; storage proportional to #derivations. Correct
  /// for non-recursive programs, XY-stratified programs, and in general for
  /// locally non-recursive programs (acyclic derivations).
  kDerivations,
  /// Keep a multiplicity counter per derived tuple [Gupta-Mumick-
  /// Subrahmanian '93]. Restricted here to non-recursive programs (counts
  /// diverge under recursion).
  kCounting,
  /// Delete-and-rederive (DRed): over-delete, then recompute survivors.
  /// Costs extra (re)computation — the ablation benchmark quantifies it.
  /// Restricted here to programs without negation.
  kRederivation,
};

/// One derivation of a derived tuple: the rule used plus the ids of the
/// positive body tuples that joined to produce it (§IV, Definition 2).
struct Derivation {
  int rule_id = -1;  ///< -1 marks a program-fact "axiom".
  std::vector<TupleId> support;

  bool operator==(const Derivation& o) const {
    return rule_id == o.rule_id && support == o.support;
  }
  bool operator<(const Derivation& o) const {
    if (rule_id != o.rule_id) return rule_id < o.rule_id;
    return support < o.support;
  }
  std::string ToString() const;
};

struct IncrementalOptions {
  MaintenanceStrategy strategy = MaintenanceStrategy::kDerivations;
  /// nullptr uses BuiltinRegistry::Default().
  const BuiltinRegistry* registry = nullptr;
  /// Window applied to streams without a `.decl ... window N`;
  /// kNoWindow = never expire.
  Timestamp default_window = kNoWindow;
  uint64_t max_facts = 5'000'000;

  static constexpr Timestamp kNoWindow = INT64_MAX;
};

/// Incremental bottom-up maintenance of a deductive program over timestamped
/// stream events. This is the centralized mirror of the distributed engine's
/// per-event processing: every derived predicate behaves as a derived data
/// stream (§III-B) whose insertions/deletions are reported to the caller.
///
/// Apply events in non-decreasing time order. Window expiry is an implicit
/// deletion at gen_ts + window.
class IncrementalEngine {
 public:
  struct Stats {
    uint64_t events = 0;
    uint64_t derivations_added = 0;
    uint64_t derivations_removed = 0;
    uint64_t probes = 0;
    uint64_t rederive_rounds = 0;
    uint64_t rederive_probes = 0;
    /// Peak count of live derivation records (storage-overhead proxy).
    uint64_t peak_derivations = 0;
  };

  /// Validates the program class for the chosen strategy. Program facts act
  /// as permanent axioms.
  static StatusOr<std::unique_ptr<IncrementalEngine>> Create(
      const Program& program, const IncrementalOptions& options);

  /// Processes one base-stream event (and everything it cascades into).
  /// Events must arrive in non-decreasing `event.time` order; expiry due by
  /// that time is processed first. Derived-stream events (inserts/deletes of
  /// IDB tuples, including transient ones) are appended to `out` if
  /// non-null.
  Status Apply(const StreamEvent& event, std::vector<StreamEvent>* out);

  /// Processes window expirations with deadline <= now.
  Status AdvanceTo(Timestamp now, std::vector<StreamEvent>* out);

  /// Snapshot of all currently-alive facts (base + derived).
  Database AliveDatabase() const;

  /// Alive facts of one predicate.
  std::vector<Fact> AliveFacts(SymbolId pred) const;

  /// True if `fact` is alive and (for kDerivations) at least one of its
  /// derivations unfolds into a valid proof tree — the runtime check behind
  /// the "locally non-recursive" program class (§IV-C). Base facts are
  /// always valid.
  StatusOr<bool> HasValidProofTree(const Fact& fact) const;

  /// Runs HasValidProofTree over every alive derived fact; returns the facts
  /// that fail (non-empty result demonstrates the §IV-C limitation on
  /// programs with cyclic derivations).
  StatusOr<std::vector<Fact>> FactsWithoutValidProof() const;

  const Stats& stats() const { return stats_; }
  const ProgramAnalysis& analysis() const { return analysis_; }

 private:
  struct Entry {
    TupleId id;
    Timestamp gen_ts = 0;
    bool alive = false;
    bool base = false;           ///< Inserted by the caller (EDB / axiom).
    std::set<Derivation> derivs; ///< kDerivations / kRederivation.
    int64_t count = 0;           ///< kCounting.
  };

  /// RelationReader over alive entries.
  class AliveView;

  IncrementalEngine(Program program, ProgramAnalysis analysis,
                    const BuiltinRegistry* registry,
                    const IncrementalOptions& options);

  Status ApplyInternal(const StreamEvent& event, std::vector<StreamEvent>* out);
  Status ProcessInsert(const StreamEvent& event, std::vector<StreamEvent>* out,
                       std::deque<StreamEvent>* queue);
  Status ProcessDelete(const StreamEvent& event, std::vector<StreamEvent>* out,
                       std::deque<StreamEvent>* queue);

  Status AddDerivation(const Fact& fact, const Derivation& d, Timestamp t,
                       std::vector<StreamEvent>* out,
                       std::deque<StreamEvent>* queue);
  Status RemoveDerivation(const Fact& fact, const Derivation& d, Timestamp t,
                          std::vector<StreamEvent>* out,
                          std::deque<StreamEvent>* queue);

  /// Rederivation phase of DRed after over-deletion.
  Status Rederive(Timestamp t, std::vector<StreamEvent>* out,
                  std::deque<StreamEvent>* queue);

  Entry* FindEntry(const Fact& fact);
  const Entry* FindEntry(const Fact& fact) const;

  void ScheduleExpiry(SymbolId pred, const Fact& fact, Timestamp gen_ts);
  Timestamp WindowOf(SymbolId pred) const;

  bool ProofDfs(const Fact& fact, std::set<std::string>* visiting,
                std::map<std::string, bool>* memo) const;

  Program program_;
  ProgramAnalysis analysis_;
  const BuiltinRegistry* registry_;
  IncrementalOptions options_;

  /// Positive / negated body occurrences per predicate: (rule idx, literal
  /// idx).
  std::unordered_map<SymbolId, std::vector<std::pair<size_t, size_t>>>
      positive_occurrences_;
  std::unordered_map<SymbolId, std::vector<std::pair<size_t, size_t>>>
      negated_occurrences_;
  std::vector<std::unique_ptr<RuleBodyEvaluator>> evaluators_;

  /// Per-predicate entries with deterministic (insertion-order) iteration.
  struct Rel {
    std::unordered_map<Fact, Entry, FactHash> map;
    std::vector<Fact> order;  ///< Append-only; entries toggle `alive`.
  };
  std::unordered_map<SymbolId, Rel> store_;
  std::map<TupleId, std::pair<SymbolId, Fact>> id_index_;

  struct ExpiryItem {
    Timestamp when;
    uint64_t order;  // tie-break, deterministic
    SymbolId pred;
    Fact fact;
    Timestamp gen_ts;
    bool operator>(const ExpiryItem& o) const {
      if (when != o.when) return when > o.when;
      return order > o.order;
    }
  };
  std::priority_queue<ExpiryItem, std::vector<ExpiryItem>,
                      std::greater<ExpiryItem>>
      expiry_;
  uint64_t expiry_order_ = 0;

  uint32_t seq_ = 0;
  uint64_t live_derivations_ = 0;
  /// Facts tentatively deleted by DRed awaiting rederivation.
  std::vector<std::pair<SymbolId, Fact>> dred_candidates_;
  bool in_dred_delete_ = false;

  Stats stats_;
};

}  // namespace deduce

#endif  // DEDUCE_EVAL_INCREMENTAL_H_
