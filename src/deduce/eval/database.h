#ifndef DEDUCE_EVAL_DATABASE_H_
#define DEDUCE_EVAL_DATABASE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "deduce/datalog/fact.h"

namespace deduce {

/// Read interface over a set of relations, used by the rule evaluator. The
/// same evaluator runs against a static Database (semi-naive evaluation),
/// against the alive-and-in-window view of an incremental engine, and
/// against a sensor node's local replica store in the distributed engine.
class RelationReader {
 public:
  virtual ~RelationReader() = default;

  /// Invokes `fn` for every visible fact of `pred` together with its tuple
  /// id (implementations without ids pass a default TupleId).
  virtual void Scan(SymbolId pred,
                    const std::function<void(const Fact&, const TupleId&)>& fn)
      const = 0;

  /// True if `fact` is visible.
  virtual bool Contains(const Fact& fact) const = 0;

  /// Invokes `fn` for every visible fact of `pred` whose argument at
  /// `position` equals `value`. The default implementation filters a full
  /// Scan; indexed implementations (Database) answer from a hash index.
  virtual void ScanBound(
      SymbolId pred, size_t position, const Term& value,
      const std::function<void(const Fact&, const TupleId&)>& fn) const {
    Scan(pred, [&](const Fact& f, const TupleId& id) {
      if (position < f.args().size() && f.args()[position] == value) {
        fn(f, id);
      }
    });
  }
};

/// A simple in-memory fact store: per-predicate sets with deterministic
/// iteration order (insertion order).
class Database : public RelationReader {
 public:
  Database() = default;

  /// Inserts a fact; returns true if it was new.
  bool Insert(const Fact& fact);

  /// Removes a fact; returns true if it was present.
  bool Erase(const Fact& fact);

  /// Inserts `fact` under predicate `as`, relabeling when they differ —
  /// the read-time view the multi-tenant accessors use to present shared
  /// (deduped or renamed) results under each tenant's own predicate names.
  bool InsertAs(const Fact& fact, SymbolId as) {
    return Insert(fact.predicate() == as ? fact : Fact(as, fact.args()));
  }

  bool Contains(const Fact& fact) const override;

  void Scan(SymbolId pred,
            const std::function<void(const Fact&, const TupleId&)>& fn)
      const override;

  /// All facts of `pred` in insertion order.
  const std::vector<Fact>& Relation(SymbolId pred) const;

  /// Total number of facts.
  size_t size() const { return size_; }
  size_t RelationSize(SymbolId pred) const;

  /// Predicates with at least one fact ever inserted.
  std::vector<SymbolId> Predicates() const;

  /// True if both databases contain exactly the same facts.
  bool SameFacts(const Database& other) const;

  /// Indexed lookup: facts whose argument at `position` equals `value`.
  /// Indexes are built lazily per (predicate, position) on first use and
  /// maintained incrementally afterwards.
  void ScanBound(SymbolId pred, size_t position, const Term& value,
                 const std::function<void(const Fact&, const TupleId&)>& fn)
      const override;

  /// Deterministic multi-line listing (sorted), for tests and goldens.
  std::string ToString() const;

  /// Caps `pred` at `cap` live facts (0 = unlimited, the default). When an
  /// Insert would push the relation past its cap, the OLDEST fact is
  /// evicted first — the bounded-state FIFO discipline the overload budget
  /// layer relies on. Every eviction is counted; callers that must not
  /// lose state silently watch `evictions()`.
  void SetRelationCapacity(SymbolId pred, size_t cap);
  size_t RelationCapacity(SymbolId pred) const;
  uint64_t evictions() const { return evictions_; }

 private:
  /// Struct-of-arrays relation storage. A fact appears once in `ordered`
  /// (one shared-rep pointer); membership is an open-addressed table of
  /// ordinals probed through the parallel `hashes` array (no second Fact
  /// copy, no per-node allocation), and the lazy per-position indexes are
  /// intrusive chains threaded through one `next` array per position
  /// (no per-bucket vectors).
  struct Rel {
    static constexpr uint32_t kNone = 0xffffffffu;

    std::vector<Fact> ordered;    // insertion order, no tombstones
    std::vector<size_t> hashes;   // hashes[i] == ordered[i].Hash()
    /// Open-addressed membership table: power-of-two sized, linear probing,
    /// values are ordinals into `ordered`, kNone = empty.
    std::vector<uint32_t> slots;

    /// One lazy hash index per bound argument position: value-hash ->
    /// chain head/tail/length, chains threaded through `next` in ascending
    /// ordinal (= insertion) order.
    struct Bucket {
      uint32_t first = kNone;
      uint32_t last = kNone;
      uint32_t len = 0;
    };
    struct PosIndex {
      std::unordered_map<size_t, Bucket> buckets;
      std::vector<uint32_t> next;  // per-ordinal chain successor
    };
    mutable std::unordered_map<size_t, PosIndex> indexes;
    /// Bumped whenever the structure of `indexes` changes in a way that can
    /// invalidate an in-flight ScanBound (new bucket key, new position
    /// index, or the erase-path rebuild). ScanBound watches it so a
    /// re-entrant Insert/Erase from the callback cannot leave it walking a
    /// stale chain.
    mutable uint64_t index_epoch = 0;
  };
  /// Ordinal of `fact` in `rel.ordered`, or Rel::kNone.
  uint32_t Lookup(const Rel& rel, size_t hash, const Fact& fact) const;
  /// Adds `ordinal` to the membership table, growing/rehashing as needed.
  void SlotInsert(Rel* rel, uint32_t ordinal);
  /// Rebuilds the membership table from scratch (after an erase shifted
  /// ordinals).
  void RebuildSlots(Rel* rel);
  /// Fills a fresh per-position index over all current ordinals.
  void BuildPosIndex(const Rel& rel, size_t position,
                     Rel::PosIndex* pidx) const;
  void IndexInsert(Rel* rel, const Fact& fact, uint32_t ordinal) const;

  std::unordered_map<SymbolId, Rel> relations_;
  std::unordered_map<SymbolId, size_t> capacity_;
  size_t size_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace deduce

#endif  // DEDUCE_EVAL_DATABASE_H_
