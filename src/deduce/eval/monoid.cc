#include "deduce/eval/monoid.h"

#include "deduce/common/logging.h"

namespace deduce {

void AggAccumulate(AggKind kind, const Term& value, AggState* acc) {
  ++acc->count;
  if (value.is_constant() && value.value().is_number()) {
    acc->sum += value.value().AsNumber();
    if (value.value().is_int()) {
      acc->isum += value.value().as_int();
    } else {
      acc->sum_is_int = false;
    }
  }
  if (!acc->best.has_value() ||
      (kind == AggKind::kMin && value.Compare(*acc->best) < 0) ||
      (kind == AggKind::kMax && value.Compare(*acc->best) > 0)) {
    acc->best = value;
  }
}

void AggCombine(AggKind kind, const AggState& right, AggState* left) {
  left->count += right.count;
  left->sum += right.sum;
  left->isum += right.isum;
  left->sum_is_int = left->sum_is_int && right.sum_is_int;
  if (right.best.has_value() &&
      (!left->best.has_value() ||
       (kind == AggKind::kMin && right.best->Compare(*left->best) < 0) ||
       (kind == AggKind::kMax && right.best->Compare(*left->best) > 0))) {
    left->best = right.best;
  }
}

Term AggExtract(AggKind kind, const AggState& acc) {
  switch (kind) {
    case AggKind::kCount:
      return Term::Int(acc.count);
    case AggKind::kSum:
      return acc.sum_is_int ? Term::Int(acc.isum) : Term::Real(acc.sum);
    case AggKind::kAvg:
      DEDUCE_CHECK(acc.count > 0);
      return Term::Real(acc.sum / static_cast<double>(acc.count));
    case AggKind::kMin:
    case AggKind::kMax:
      DEDUCE_CHECK(acc.best.has_value());
      return *acc.best;
  }
  return Term();
}

}  // namespace deduce
