#ifndef DEDUCE_EVAL_MAGIC_H_
#define DEDUCE_EVAL_MAGIC_H_

#include <string>

#include "deduce/common/statusor.h"
#include "deduce/datalog/program.h"

namespace deduce {

/// Result of the magic-set transformation.
struct MagicProgram {
  Program program;
  /// The adorned predicate holding the query's answers (e.g. anc_bf for
  /// anc(tom, X)); query answers are its facts matching the original goal.
  SymbolId answer_pred = 0;
  /// Human-readable adornment of the goal, e.g. "bf".
  std::string adornment;
};

/// The magic-set transformation (§V Fig. 2: "the user specified
/// logic-program is first optimized using magic-set transformations, used
/// to optimize the bottom-up evaluation strategy").
///
/// Given a query goal with some bound (ground) arguments, rewrites the
/// program so that bottom-up evaluation only derives facts relevant to the
/// goal: each derived predicate p is specialized per adornment (b = bound,
/// f = free), guarded by a magic_p_<ad> predicate seeded from the goal's
/// bindings and propagated through rule bodies left-to-right (the standard
/// SIPS).
///
/// Supported: positive programs (recursive or not) with built-ins and
/// comparisons. Programs with negation are rejected with kUnimplemented —
/// magic sets can unstratify negation; the engine falls back to the
/// untransformed program in that case.
StatusOr<MagicProgram> MagicTransform(const Program& program,
                                      const Atom& query);

/// Convenience: transforms, evaluates bottom-up, and returns the facts of
/// the answer predicate that match the goal.
StatusOr<std::vector<Fact>> MagicEvaluate(const Program& program,
                                          const Atom& query,
                                          const std::vector<Fact>& input_facts);

}  // namespace deduce

#endif  // DEDUCE_EVAL_MAGIC_H_
