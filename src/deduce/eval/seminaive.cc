#include "deduce/eval/seminaive.h"

#include <algorithm>
#include <map>
#include <set>

#include "deduce/common/logging.h"
#include "deduce/common/strings.h"
#include "deduce/eval/monoid.h"
#include "deduce/eval/rule_eval.h"

namespace deduce {

namespace {

const BuiltinRegistry& DefaultRegistry() {
  static const BuiltinRegistry* r =
      new BuiltinRegistry(BuiltinRegistry::Default());
  return *r;
}

/// Evaluates an aggregate rule: groups body derivations by the non-aggregate
/// head arguments and folds the aggregate input.
Status EvaluateAggregateRule(const Rule& rule, const BuiltinRegistry& registry,
                             const Database& db, EvalStats* stats,
                             std::vector<Fact>* out) {
  DEDUCE_CHECK(rule.aggregates.size() == 1);
  const AggregateSpec& agg = rule.aggregates[0];
  RuleBodyEvaluator evaluator(&rule, &registry);

  // Key: head args with the aggregate position blanked.
  std::map<std::string, std::pair<std::vector<Term>, AggState>> groups;

  RuleEvalStats rstats;
  Status st = evaluator.Evaluate(
      db, RuleEvalOptions{},
      [&](const Subst& subst, const std::vector<MatchedFact>&) -> Status {
        std::vector<Term> head_args;
        head_args.reserve(rule.head.args.size());
        for (const Term& a : rule.head.args) {
          DEDUCE_ASSIGN_OR_RETURN(Term n, EvalTerm(subst.Apply(a), registry));
          if (!n.is_ground()) {
            return Status::Internal("aggregate head arg not ground");
          }
          head_args.push_back(std::move(n));
        }
        Term input = head_args[agg.head_position];
        std::string key;
        for (size_t i = 0; i < head_args.size(); ++i) {
          if (i == agg.head_position) continue;
          key += head_args[i].ToString();
          key += "\x1f";
        }
        auto& [args, acc] = groups[key];
        args = head_args;
        if (!(input.is_constant() && input.value().is_number()) &&
            (agg.kind == AggKind::kSum || agg.kind == AggKind::kAvg)) {
          return Status::InvalidArgument(
              "sum/avg aggregate over non-numeric term " + input.ToString());
        }
        AggAccumulate(agg.kind, input, &acc);
        return Status::OK();
      },
      &rstats);
  if (stats != nullptr) {
    stats->probes += rstats.probes;
    stats->rule_firings += rstats.emitted;
  }
  DEDUCE_RETURN_IF_ERROR(st);

  for (auto& [key, entry] : groups) {
    auto& [args, acc] = entry;
    Term result = AggExtract(agg.kind, acc);
    std::vector<Term> final_args = args;
    final_args[agg.head_position] = result;
    out->emplace_back(rule.head.predicate, std::move(final_args));
  }
  return Status::OK();
}

class SccEvaluator {
 public:
  SccEvaluator(const Program& program, const ProgramAnalysis& analysis,
               const BuiltinRegistry& registry, const EvalOptions& opts,
               Database* db, EvalStats* stats)
      : program_(program),
        analysis_(analysis),
        registry_(registry),
        opts_(opts),
        db_(db),
        stats_(stats) {}

  Status Run() {
    for (size_t scc_index = 0; scc_index < analysis_.sccs.size();
         ++scc_index) {
      const SccInfo& scc = analysis_.sccs[scc_index];
      std::vector<const Rule*> rules;
      for (const Rule& r : program_.rules()) {
        if (analysis_.scc_of.at(r.head.predicate) ==
            static_cast<int>(scc_index)) {
          rules.push_back(&r);
        }
      }
      if (rules.empty()) continue;  // EDB

      bool has_aggregates = std::any_of(
          rules.begin(), rules.end(),
          [](const Rule* r) { return !r->aggregates.empty(); });
      if (has_aggregates && scc.recursive) {
        return Status::Unimplemented(
            "aggregates on recursive predicates are not supported (" +
            SymbolName(scc.members[0]) + ")");
      }

      if (!scc.recursive) {
        DEDUCE_RETURN_IF_ERROR(EvaluateNonRecursive(rules));
      } else if (!scc.has_internal_negation) {
        DEDUCE_RETURN_IF_ERROR(EvaluateSemiNaive(scc, rules));
      } else if (scc.xy_stratified) {
        DEDUCE_RETURN_IF_ERROR(EvaluateStaged(scc, rules));
      } else {
        return Status::Unimplemented(
            "recursion through negation is not XY-stratified (" +
            scc.xy_diagnostic + "); general stratified recursion is outside "
            "the supported program classes (paper §IV-C)");
      }
    }
    return Status::OK();
  }

 private:
  Status CheckLimits() const {
    if (db_->size() > opts_.max_facts) {
      return Status::FailedPrecondition(
          StrFormat("database exceeded max_facts=%llu (possible "
                    "non-terminating recursion through function symbols)",
                    static_cast<unsigned long long>(opts_.max_facts)));
    }
    return Status::OK();
  }

  /// Evaluates one rule (optionally with a pinned delta) and inserts heads;
  /// appends newly inserted facts to `new_facts` if non-null.
  Status FireRule(const Rule& rule, const RuleEvalOptions& reopts,
                  std::vector<Fact>* new_facts) {
    if (!rule.aggregates.empty()) {
      std::vector<Fact> outs;
      DEDUCE_RETURN_IF_ERROR(
          EvaluateAggregateRule(rule, registry_, *db_, stats_, &outs));
      for (Fact& f : outs) {
        if (db_->Insert(f)) {
          if (stats_ != nullptr) ++stats_->facts_derived;
          if (new_facts != nullptr) new_facts->push_back(std::move(f));
        }
      }
      return CheckLimits();
    }
    RuleBodyEvaluator evaluator(&rule, &registry_);
    RuleEvalStats rstats;
    Status st = evaluator.Evaluate(
        *db_, reopts,
        [&](const Subst& subst, const std::vector<MatchedFact>&) -> Status {
          DEDUCE_ASSIGN_OR_RETURN(Fact head, evaluator.BuildHead(subst));
          if (db_->Insert(head)) {
            if (stats_ != nullptr) ++stats_->facts_derived;
            if (new_facts != nullptr) new_facts->push_back(std::move(head));
          }
          return CheckLimits();
        },
        &rstats);
    if (stats_ != nullptr) {
      stats_->probes += rstats.probes;
      stats_->rule_firings += rstats.emitted;
    }
    return st;
  }

  Status EvaluateNonRecursive(const std::vector<const Rule*>& rules) {
    for (const Rule* rule : rules) {
      DEDUCE_RETURN_IF_ERROR(FireRule(*rule, RuleEvalOptions{}, nullptr));
    }
    return Status::OK();
  }

  Status EvaluateSemiNaive(const SccInfo& scc,
                           const std::vector<const Rule*>& rules) {
    std::unordered_set<SymbolId> members(scc.members.begin(),
                                         scc.members.end());
    // Round 0: full evaluation.
    std::vector<Fact> delta;
    for (const Rule* rule : rules) {
      DEDUCE_RETURN_IF_ERROR(FireRule(*rule, RuleEvalOptions{}, &delta));
    }
    uint64_t rounds = 0;
    while (!delta.empty()) {
      if (++rounds > opts_.max_iterations) {
        return Status::FailedPrecondition("semi-naive exceeded max_iterations");
      }
      if (stats_ != nullptr) ++stats_->iterations;
      // Pin each recursive body occurrence to the delta in turn.
      std::vector<std::pair<Fact, TupleId>> pinned;
      pinned.reserve(delta.size());
      for (const Fact& f : delta) pinned.emplace_back(f, TupleId{});
      std::vector<Fact> next;
      for (const Rule* rule : rules) {
        for (size_t i = 0; i < rule->body.size(); ++i) {
          const Literal& lit = rule->body[i];
          if (lit.kind != Literal::Kind::kPositive) continue;
          if (!members.count(lit.atom.predicate)) continue;
          RuleEvalOptions reopts;
          reopts.pin_index = i;
          reopts.pin_facts = &pinned;
          DEDUCE_RETURN_IF_ERROR(FireRule(*rule, reopts, &next));
        }
      }
      delta = std::move(next);
    }
    return Status::OK();
  }

  Status EvaluateStaged(const SccInfo& scc,
                        const std::vector<const Rule*>& rules) {
    std::set<int64_t> pending;
    std::set<int64_t> processed;

    auto stage_of = [&](const Fact& f) -> StatusOr<int64_t> {
      size_t pos = scc.stage_arg.at(f.predicate());
      const Term& t = f.args()[pos];
      if (!t.is_constant() || !t.value().is_int()) {
        return StatusOr<int64_t>(Status::InvalidArgument(
            "stage argument of " + f.ToString() + " is not an integer"));
      }
      return t.value().as_int();
    };

    // Seed: discover reachable stages by firing every rule against the
    // current database *without inserting* (schedule only). Facts already
    // present for SCC predicates (program facts) also seed stages, so that
    // same-stage rules re-fire at those stages.
    for (SymbolId m : scc.members) {
      Status st = Status::OK();
      db_->Scan(m, [&](const Fact& f, const TupleId&) {
        if (!st.ok()) return;
        StatusOr<int64_t> v = stage_of(f);
        if (!v.ok()) {
          st = v.status();
          return;
        }
        pending.insert(*v);
      });
      DEDUCE_RETURN_IF_ERROR(st);
    }
    DEDUCE_RETURN_IF_ERROR(ScheduleStages(rules, &pending, stage_of));

    // Local stratum order.
    int max_local = 0;
    for (const auto& [pred, l] : scc.local_stratum) {
      max_local = std::max(max_local, l);
    }

    uint64_t stages_done = 0;
    while (!pending.empty()) {
      if (++stages_done > opts_.max_iterations) {
        return Status::FailedPrecondition(
            "staged evaluation exceeded max_iterations");
      }
      if (stats_ != nullptr) ++stats_->iterations;
      int64_t s = *pending.begin();
      pending.erase(pending.begin());
      if (processed.count(s)) continue;
      processed.insert(s);

      for (int stratum = 0; stratum <= max_local; ++stratum) {
        bool changed = true;
        while (changed) {
          changed = false;
          for (const Rule* rule : rules) {
            if (scc.local_stratum.at(rule->head.predicate) != stratum) {
              continue;
            }
            std::vector<Fact> inserted;
            DEDUCE_RETURN_IF_ERROR(
                FireStaged(*rule, s, stage_of, &pending, &inserted));
            if (!inserted.empty()) changed = true;
          }
        }
      }
      // Discover stages enabled by the facts inserted at this stage (a rule
      // of an early local stratum may fire at a later stage from facts a
      // later stratum just produced; re-scheduling after every stage keeps
      // the stage worklist complete).
      DEDUCE_RETURN_IF_ERROR(ScheduleStages(rules, &pending, stage_of));
      for (int64_t p : processed) pending.erase(p);
    }
    return Status::OK();
  }

  template <typename StageFn>
  Status ScheduleStages(const std::vector<const Rule*>& rules,
                        std::set<int64_t>* pending, const StageFn& stage_of) {
    for (const Rule* rule : rules) {
      RuleBodyEvaluator evaluator(rule, &registry_);
      RuleEvalStats rstats;
      Status st = evaluator.Evaluate(
          *db_, RuleEvalOptions{},
          [&](const Subst& subst, const std::vector<MatchedFact>&) -> Status {
            DEDUCE_ASSIGN_OR_RETURN(Fact head, evaluator.BuildHead(subst));
            DEDUCE_ASSIGN_OR_RETURN(int64_t v, stage_of(head));
            pending->insert(v);
            return Status::OK();
          },
          &rstats);
      if (stats_ != nullptr) stats_->probes += rstats.probes;
      DEDUCE_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  }

  template <typename StageFn>
  Status FireStaged(const Rule& rule, int64_t stage, const StageFn& stage_of,
                    std::set<int64_t>* pending, std::vector<Fact>* inserted) {
    RuleBodyEvaluator evaluator(&rule, &registry_);
    RuleEvalStats rstats;
    Status st = evaluator.Evaluate(
        *db_, RuleEvalOptions{},
        [&](const Subst& subst, const std::vector<MatchedFact>&) -> Status {
          DEDUCE_ASSIGN_OR_RETURN(Fact head, evaluator.BuildHead(subst));
          DEDUCE_ASSIGN_OR_RETURN(int64_t v, stage_of(head));
          if (v == stage) {
            if (db_->Insert(head)) {
              if (stats_ != nullptr) ++stats_->facts_derived;
              inserted->push_back(std::move(head));
            }
          } else if (v > stage) {
            pending->insert(v);
          }
          // v < stage: already derived when stage v was processed (stage
          // deltas are non-negative, so its body facts existed then).
          return CheckLimits();
        },
        &rstats);
    if (stats_ != nullptr) {
      stats_->probes += rstats.probes;
      stats_->rule_firings += rstats.emitted;
    }
    return st;
  }

  const Program& program_;
  const ProgramAnalysis& analysis_;
  const BuiltinRegistry& registry_;
  const EvalOptions& opts_;
  Database* db_;
  EvalStats* stats_;
};

}  // namespace

StatusOr<Database> EvaluateAnalyzedProgram(const Program& program,
                                           const ProgramAnalysis& analysis,
                                           const std::vector<Fact>& input_facts,
                                           const EvalOptions& opts,
                                           EvalStats* stats) {
  const BuiltinRegistry& registry =
      opts.registry != nullptr ? *opts.registry : DefaultRegistry();
  Database db;
  for (const Fact& f : program.facts()) db.Insert(f);
  for (const Fact& f : input_facts) db.Insert(f);
  SccEvaluator evaluator(program, analysis, registry, opts, &db, stats);
  DEDUCE_RETURN_IF_ERROR(evaluator.Run());
  return db;
}

StatusOr<Database> EvaluateProgram(const Program& program,
                                   const std::vector<Fact>& input_facts,
                                   const EvalOptions& opts, EvalStats* stats) {
  const BuiltinRegistry& registry =
      opts.registry != nullptr ? *opts.registry : DefaultRegistry();
  Program copy = program;
  DEDUCE_RETURN_IF_ERROR(ResolveBuiltins(&copy, registry));
  DEDUCE_ASSIGN_OR_RETURN(ProgramAnalysis analysis, AnalyzeProgram(copy));
  return EvaluateAnalyzedProgram(copy, analysis, input_facts, opts, stats);
}

}  // namespace deduce
