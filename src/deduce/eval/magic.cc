#include "deduce/eval/magic.h"

#include <deque>
#include <set>
#include <unordered_set>

#include "deduce/common/strings.h"
#include "deduce/datalog/analysis.h"
#include "deduce/eval/seminaive.h"
#include "deduce/eval/rule_eval.h"

namespace deduce {

namespace {

/// Adornment of an atom given the set of bound variables: 'b' for an
/// argument that is ground or all of whose variables are bound, else 'f'.
std::string AdornmentFor(const Atom& atom,
                         const std::unordered_set<SymbolId>& bound) {
  std::string out;
  for (const Term& arg : atom.args) {
    std::vector<SymbolId> vars;
    arg.CollectVariables(&vars);
    bool all_bound = true;
    for (SymbolId v : vars) {
      if (!bound.count(v)) all_bound = false;
    }
    out += (arg.is_ground() || (all_bound && !vars.empty())) ? 'b' : 'f';
  }
  return out;
}

SymbolId AdornedName(SymbolId pred, const std::string& ad) {
  return Intern(SymbolName(pred) + "_" + (ad.empty() ? "0" : ad));
}

SymbolId MagicName(SymbolId pred, const std::string& ad) {
  return Intern("magic_" + SymbolName(pred) + "_" + (ad.empty() ? "0" : ad));
}

std::vector<Term> BoundArgs(const Atom& atom, const std::string& ad) {
  std::vector<Term> out;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (ad[i] == 'b') out.push_back(atom.args[i]);
  }
  return out;
}

}  // namespace

StatusOr<MagicProgram> MagicTransform(const Program& program,
                                      const Atom& query) {
  for (const Rule& r : program.rules()) {
    for (const Literal& l : r.body) {
      if (l.kind == Literal::Kind::kNegated) {
        return Status::Unimplemented(
            "magic sets with negation can unstratify the program; "
            "evaluate the untransformed program instead");
      }
    }
    if (!r.aggregates.empty()) {
      return Status::Unimplemented("magic sets with aggregates unsupported");
    }
  }

  // Which predicates are derived?
  std::unordered_set<SymbolId> idb;
  for (const Rule& r : program.rules()) idb.insert(r.head.predicate);
  if (!idb.count(query.predicate)) {
    return Status::InvalidArgument("query predicate " +
                                   SymbolName(query.predicate) +
                                   " is not derived by any rule");
  }

  MagicProgram out;
  // Keep declarations and EDB facts.
  for (const auto& [name, decl] : program.decls()) {
    DEDUCE_RETURN_IF_ERROR(out.program.AddDecl(decl));
  }
  for (const Fact& f : program.facts()) {
    Rule fact_rule;
    fact_rule.head = Atom(f.predicate(), f.args());
    if (idb.count(f.predicate())) {
      // Program facts of derived predicates stay as facts of every
      // reachable adornment; handled below via the worklist.
      continue;
    }
    DEDUCE_RETURN_IF_ERROR(out.program.AddRule(fact_rule));
  }

  // Goal adornment: bound where the query argument is ground.
  std::string goal_ad;
  for (const Term& arg : query.args) {
    goal_ad += arg.is_ground() ? 'b' : 'f';
  }
  out.adornment = goal_ad;
  out.answer_pred = AdornedName(query.predicate, goal_ad);

  // Magic seed: magic_query_ad(ground goal args).
  {
    Rule seed;
    seed.head = Atom(MagicName(query.predicate, goal_ad),
                     BoundArgs(query, goal_ad));
    DEDUCE_RETURN_IF_ERROR(out.program.AddRule(seed));
  }

  std::set<std::pair<SymbolId, std::string>> done;
  std::deque<std::pair<SymbolId, std::string>> worklist;
  worklist.emplace_back(query.predicate, goal_ad);

  while (!worklist.empty()) {
    auto [pred, ad] = worklist.front();
    worklist.pop_front();
    if (!done.insert({pred, ad}).second) continue;

    // Derived-predicate program facts survive into every adornment,
    // guarded by the magic predicate (as a rule so only requested facts
    // materialize).
    for (const Fact& f : program.facts()) {
      if (f.predicate() != pred) continue;
      Rule guarded;
      guarded.head = Atom(AdornedName(pred, ad), f.args());
      Atom magic(MagicName(pred, ad),
                 BoundArgs(Atom(pred, f.args()), ad));
      guarded.body.push_back(Literal::Positive(magic));
      DEDUCE_RETURN_IF_ERROR(out.program.AddRule(guarded));
    }

    for (const Rule& rule : program.rules()) {
      if (rule.head.predicate != pred) continue;
      // Bound head variables under this adornment.
      std::unordered_set<SymbolId> bound;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (ad[i] == 'b') {
          std::vector<SymbolId> vars;
          rule.head.args[i].CollectVariables(&vars);
          bound.insert(vars.begin(), vars.end());
        }
      }

      Rule adorned;
      adorned.head = Atom(AdornedName(pred, ad), rule.head.args);
      adorned.body.push_back(
          Literal::Positive(Atom(MagicName(pred, ad),
                                 BoundArgs(rule.head, ad))));

      // Left-to-right SIPS: accumulate bindings, emit magic rules for
      // derived body literals.
      std::vector<Literal> prefix = adorned.body;
      for (const Literal& lit : rule.body) {
        if (lit.is_relational() && idb.count(lit.atom.predicate)) {
          std::string body_ad = AdornmentFor(lit.atom, bound);
          // Magic rule: magic_q_ad(bound args) :- prefix.
          Rule magic_rule;
          magic_rule.head = Atom(MagicName(lit.atom.predicate, body_ad),
                                 BoundArgs(lit.atom, body_ad));
          magic_rule.body = prefix;
          DEDUCE_RETURN_IF_ERROR(out.program.AddRule(magic_rule));
          worklist.emplace_back(lit.atom.predicate, body_ad);

          Literal renamed = lit;
          renamed.atom.predicate = AdornedName(lit.atom.predicate, body_ad);
          adorned.body.push_back(renamed);
          prefix.push_back(renamed);
        } else {
          adorned.body.push_back(lit);
          prefix.push_back(lit);
        }
        // Bindings propagate through every literal.
        std::vector<SymbolId> vars;
        lit.CollectVariables(&vars);
        bound.insert(vars.begin(), vars.end());
      }
      DEDUCE_RETURN_IF_ERROR(out.program.AddRule(adorned));
    }
  }
  return out;
}

StatusOr<std::vector<Fact>> MagicEvaluate(const Program& program,
                                          const Atom& query,
                                          const std::vector<Fact>& input_facts) {
  DEDUCE_ASSIGN_OR_RETURN(MagicProgram magic, MagicTransform(program, query));
  DEDUCE_ASSIGN_OR_RETURN(Database db,
                          EvaluateProgram(magic.program, input_facts));
  std::vector<Fact> out;
  static const BuiltinRegistry* registry =
      new BuiltinRegistry(BuiltinRegistry::Default());
  for (const Fact& f : db.Relation(magic.answer_pred)) {
    Subst subst;
    if (SolveMatchTerms(query.args, f.args(), &subst, *registry)) {
      out.push_back(Fact(query.predicate, f.args()));
    }
  }
  return out;
}

}  // namespace deduce
