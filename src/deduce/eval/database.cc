#include "deduce/eval/database.h"

#include <algorithm>

namespace deduce {

namespace {
constexpr uint32_t kNone = 0xffffffffu;
}  // namespace

uint32_t Database::Lookup(const Rel& rel, size_t hash,
                          const Fact& fact) const {
  if (rel.slots.empty()) return kNone;
  size_t mask = rel.slots.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    uint32_t ordinal = rel.slots[i];
    if (ordinal == kNone) return kNone;
    if (rel.hashes[ordinal] == hash && rel.ordered[ordinal] == fact) {
      return ordinal;
    }
  }
}

void Database::SlotInsert(Rel* rel, uint32_t ordinal) {
  // Keep load factor under 3/4.
  if ((rel->ordered.size() + 1) * 4 > rel->slots.size() * 3) {
    size_t cap = std::max<size_t>(16, rel->slots.size() * 2);
    rel->slots.assign(cap, kNone);
    size_t mask = cap - 1;
    for (uint32_t o = 0; o < rel->ordered.size(); ++o) {
      size_t i = rel->hashes[o] & mask;
      while (rel->slots[i] != kNone) i = (i + 1) & mask;
      rel->slots[i] = o;
    }
  }
  size_t mask = rel->slots.size() - 1;
  size_t i = rel->hashes[ordinal] & mask;
  while (rel->slots[i] != kNone) i = (i + 1) & mask;
  rel->slots[i] = ordinal;
}

void Database::RebuildSlots(Rel* rel) {
  if (rel->slots.empty()) return;
  std::fill(rel->slots.begin(), rel->slots.end(), kNone);
  size_t mask = rel->slots.size() - 1;
  for (uint32_t o = 0; o < rel->ordered.size(); ++o) {
    size_t i = rel->hashes[o] & mask;
    while (rel->slots[i] != kNone) i = (i + 1) & mask;
    rel->slots[i] = o;
  }
}

bool Database::Insert(const Fact& fact) {
  Rel& rel = relations_[fact.predicate()];
  size_t hash = fact.Hash();
  if (Lookup(rel, hash, fact) != kNone) return false;
  if (!capacity_.empty()) {
    auto cit = capacity_.find(fact.predicate());
    if (cit != capacity_.end() && cit->second > 0 &&
        rel.ordered.size() >= cit->second) {
      // At capacity: make room FIFO before admitting the newcomer. Erase
      // rebuilds the slot table and drops the lazy indexes — acceptable,
      // capped relations are small by definition.
      Fact victim = rel.ordered.front();
      Erase(victim);
      ++evictions_;
    }
  }
  uint32_t ordinal = static_cast<uint32_t>(rel.ordered.size());
  rel.ordered.push_back(fact);
  rel.hashes.push_back(hash);
  SlotInsert(&rel, ordinal);
  IndexInsert(&rel, fact, ordinal);
  ++size_;
  return true;
}

bool Database::Erase(const Fact& fact) {
  auto it = relations_.find(fact.predicate());
  if (it == relations_.end()) return false;
  Rel& rel = it->second;
  uint32_t ordinal = Lookup(rel, fact.Hash(), fact);
  if (ordinal == kNone) return false;
  rel.ordered.erase(rel.ordered.begin() + ordinal);
  rel.hashes.erase(rel.hashes.begin() + ordinal);
  // Ordinals after the erased fact shift; rebuilding lazily is simpler and
  // erase is rare on the hot paths (semi-naive only inserts).
  RebuildSlots(&rel);
  rel.indexes.clear();
  ++rel.index_epoch;
  --size_;
  return true;
}

void Database::BuildPosIndex(const Rel& rel, size_t position,
                             Rel::PosIndex* pidx) const {
  pidx->next.assign(rel.ordered.size(), kNone);
  for (uint32_t o = 0; o < rel.ordered.size(); ++o) {
    const Fact& f = rel.ordered[o];
    if (position >= f.args().size()) continue;
    Rel::Bucket& bucket = pidx->buckets[f.args()[position].Hash()];
    if (bucket.first == kNone) {
      bucket.first = o;
    } else {
      pidx->next[bucket.last] = o;
    }
    bucket.last = o;
    ++bucket.len;
  }
}

void Database::IndexInsert(Rel* rel, const Fact& fact,
                           uint32_t ordinal) const {
  for (auto& [position, pidx] : rel->indexes) {
    pidx.next.resize(ordinal + 1, kNone);
    if (position >= fact.args().size()) continue;
    size_t value_hash = fact.args()[position].Hash();
    auto [bit, fresh] =
        pidx.buckets.try_emplace(value_hash, Rel::Bucket{ordinal, ordinal, 1});
    if (!fresh) {
      pidx.next[bit->second.last] = ordinal;
      bit->second.last = ordinal;
      ++bit->second.len;
    } else {
      // A fresh bucket key can rehash the bucket map under an in-flight
      // ScanBound that re-entered us.
      ++rel->index_epoch;
    }
  }
}

void Database::ScanBound(
    SymbolId pred, size_t position, const Term& value,
    const std::function<void(const Fact&, const TupleId&)>& fn) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  const Rel& rel = it->second;
  auto iit = rel.indexes.find(position);
  if (iit == rel.indexes.end()) {
    // Build the index for this position on first use.
    Rel::PosIndex& pidx = rel.indexes[position];
    ++rel.index_epoch;  // new position key: outer-map iterators are stale
    BuildPosIndex(rel, position, &pidx);
    iit = rel.indexes.find(position);
  }
  const size_t value_hash = value.Hash();
  auto bit = iit->second.buckets.find(value_hash);
  if (bit == iit->second.buckets.end()) return;
  TupleId none;
  // Same re-entrancy discipline as Scan: `fn` may insert into this relation,
  // appending to this very chain — and a brand-new hash bucket (or an
  // Erase's index rebuild) restructures the index maps. Watch the epoch and
  // re-resolve the chain instead of walking stale links; only the first `n`
  // entries (the facts visible at scan start) are ever visited.
  size_t n = bit->second.len;
  uint64_t epoch = rel.index_epoch;
  const Rel::PosIndex* pidx = &iit->second;
  uint32_t first = bit->second.first;
  uint32_t cur = kNone;
  for (size_t i = 0; i < n; ++i) {
    if (rel.index_epoch != epoch) {
      epoch = rel.index_epoch;
      auto rit = rel.indexes.find(position);
      if (rit == rel.indexes.end()) return;  // re-entrant Erase dropped it
      pidx = &rit->second;
      auto rbit = pidx->buckets.find(value_hash);
      if (rbit == pidx->buckets.end()) return;
      // An Erase-triggered rebuild shifts ordinals; anything beyond the
      // rebuilt chain is gone for this scan. Resume at the i-th entry of
      // the rebuilt chain.
      n = std::min(n, static_cast<size_t>(rbit->second.len));
      if (i >= n) return;
      cur = rbit->second.first;
      for (size_t k = 0; k < i; ++k) cur = pidx->next[cur];
    } else {
      cur = (i == 0) ? first : pidx->next[cur];
    }
    Fact f = rel.ordered[cur];
    // Hash collisions: confirm equality.
    if (position < f.args().size() && f.args()[position] == value) {
      fn(f, none);
    }
  }
}

bool Database::Contains(const Fact& fact) const {
  auto it = relations_.find(fact.predicate());
  return it != relations_.end() &&
         Lookup(it->second, fact.Hash(), fact) != kNone;
}

void Database::Scan(
    SymbolId pred,
    const std::function<void(const Fact&, const TupleId&)>& fn) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  TupleId none;
  // Index-based with a snapshotted bound and a copied fact: `fn` may insert
  // into this very relation (semi-naive evaluation of recursive rules), and
  // a vector reallocation would invalidate references into `ordered`.
  const Rel& rel = it->second;
  size_t n = rel.ordered.size();
  for (size_t i = 0; i < n; ++i) {
    Fact f = rel.ordered[i];
    fn(f, none);
  }
}

const std::vector<Fact>& Database::Relation(SymbolId pred) const {
  static const std::vector<Fact>* empty = new std::vector<Fact>();
  auto it = relations_.find(pred);
  return it == relations_.end() ? *empty : it->second.ordered;
}

size_t Database::RelationSize(SymbolId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? 0 : it->second.ordered.size();
}

std::vector<SymbolId> Database::Predicates() const {
  std::vector<SymbolId> out;
  for (const auto& [pred, rel] : relations_) {
    if (!rel.ordered.empty()) out.push_back(pred);
  }
  std::sort(out.begin(), out.end(), [](SymbolId a, SymbolId b) {
    return SymbolName(a) < SymbolName(b);
  });
  return out;
}

bool Database::SameFacts(const Database& other) const {
  if (size_ != other.size_) return false;
  for (const auto& [pred, rel] : relations_) {
    for (const Fact& f : rel.ordered) {
      if (!other.Contains(f)) return false;
    }
  }
  return true;
}

void Database::SetRelationCapacity(SymbolId pred, size_t cap) {
  if (cap == 0) {
    capacity_.erase(pred);
    return;
  }
  capacity_[pred] = cap;
  // Shrinking below the current population evicts immediately, oldest
  // first, so the invariant "size <= cap" holds from the call on.
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  while (it->second.ordered.size() > cap) {
    Fact victim = it->second.ordered.front();
    Erase(victim);
    ++evictions_;
  }
}

size_t Database::RelationCapacity(SymbolId pred) const {
  auto it = capacity_.find(pred);
  return it == capacity_.end() ? 0 : it->second;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [pred, rel] : relations_) {
    for (const Fact& f : rel.ordered) lines.push_back(f.ToString());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace deduce
