#include "deduce/eval/database.h"

#include <algorithm>

namespace deduce {

bool Database::Insert(const Fact& fact) {
  Rel& rel = relations_[fact.predicate()];
  if (!rel.set.insert(fact).second) return false;
  rel.ordered.push_back(fact);
  IndexInsert(&rel, fact, rel.ordered.size() - 1);
  ++size_;
  return true;
}

bool Database::Erase(const Fact& fact) {
  auto it = relations_.find(fact.predicate());
  if (it == relations_.end()) return false;
  Rel& rel = it->second;
  if (rel.set.erase(fact) == 0) return false;
  auto pos = std::find(rel.ordered.begin(), rel.ordered.end(), fact);
  rel.ordered.erase(pos);
  // Ordinals after the erased fact shift; rebuilding lazily is simpler and
  // erase is rare on the hot paths (semi-naive only inserts).
  rel.indexes.clear();
  ++rel.index_epoch;
  --size_;
  return true;
}

void Database::IndexInsert(Rel* rel, const Fact& fact, size_t ordinal) const {
  for (auto& [position, buckets] : rel->indexes) {
    if (position < fact.args().size()) {
      size_t before = buckets.size();
      buckets[fact.args()[position].Hash()].push_back(ordinal);
      // A fresh bucket key can rehash the map and invalidate iterators held
      // by an in-flight ScanBound that re-entered us.
      if (buckets.size() != before) ++rel->index_epoch;
    }
  }
}

void Database::ScanBound(
    SymbolId pred, size_t position, const Term& value,
    const std::function<void(const Fact&, const TupleId&)>& fn) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  const Rel& rel = it->second;
  auto iit = rel.indexes.find(position);
  if (iit == rel.indexes.end()) {
    // Build the index for this position on first use.
    auto& buckets = rel.indexes[position];
    ++rel.index_epoch;  // new position key: outer-map iterators are stale
    for (size_t i = 0; i < rel.ordered.size(); ++i) {
      const Fact& f = rel.ordered[i];
      if (position < f.args().size()) {
        buckets[f.args()[position].Hash()].push_back(i);
      }
    }
    iit = rel.indexes.find(position);
  }
  const size_t value_hash = value.Hash();
  auto bit = iit->second.find(value_hash);
  if (bit == iit->second.end()) return;
  TupleId none;
  // Same re-entrancy discipline as Scan: `fn` may insert into this
  // relation, growing both `ordered` and this very bucket — and a brand-new
  // hash bucket (or an Erase's index rebuild) rehashes the bucket map,
  // invalidating `iit`/`bit`. Watch the epoch and re-find instead of
  // dereferencing a possibly-dangling iterator; only the first `n` ordinals
  // (the facts visible at scan start) are ever visited.
  size_t n = bit->second.size();
  uint64_t epoch = rel.index_epoch;
  for (size_t i = 0; i < n; ++i) {
    if (rel.index_epoch != epoch) {
      epoch = rel.index_epoch;
      iit = rel.indexes.find(position);
      if (iit == rel.indexes.end()) return;  // re-entrant Erase dropped it
      bit = iit->second.find(value_hash);
      if (bit == iit->second.end()) return;
      // An Erase-triggered rebuild shifts ordinals; anything beyond the
      // rebuilt bucket is gone for this scan.
      n = std::min(n, bit->second.size());
      if (i >= n) return;
    }
    size_t ordinal = bit->second[i];
    Fact f = rel.ordered[ordinal];
    // Hash collisions: confirm equality.
    if (position < f.args().size() && f.args()[position] == value) {
      fn(f, none);
    }
  }
}

bool Database::Contains(const Fact& fact) const {
  auto it = relations_.find(fact.predicate());
  return it != relations_.end() && it->second.set.count(fact) > 0;
}

void Database::Scan(
    SymbolId pred,
    const std::function<void(const Fact&, const TupleId&)>& fn) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  TupleId none;
  // Index-based with a snapshotted bound and a copied fact: `fn` may insert
  // into this very relation (semi-naive evaluation of recursive rules), and
  // a vector reallocation would invalidate references into `ordered`.
  const Rel& rel = it->second;
  size_t n = rel.ordered.size();
  for (size_t i = 0; i < n; ++i) {
    Fact f = rel.ordered[i];
    fn(f, none);
  }
}

const std::vector<Fact>& Database::Relation(SymbolId pred) const {
  static const std::vector<Fact>* empty = new std::vector<Fact>();
  auto it = relations_.find(pred);
  return it == relations_.end() ? *empty : it->second.ordered;
}

size_t Database::RelationSize(SymbolId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? 0 : it->second.ordered.size();
}

std::vector<SymbolId> Database::Predicates() const {
  std::vector<SymbolId> out;
  for (const auto& [pred, rel] : relations_) {
    if (!rel.ordered.empty()) out.push_back(pred);
  }
  std::sort(out.begin(), out.end(), [](SymbolId a, SymbolId b) {
    return SymbolName(a) < SymbolName(b);
  });
  return out;
}

bool Database::SameFacts(const Database& other) const {
  if (size_ != other.size_) return false;
  for (const auto& [pred, rel] : relations_) {
    for (const Fact& f : rel.ordered) {
      if (!other.Contains(f)) return false;
    }
  }
  return true;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [pred, rel] : relations_) {
    for (const Fact& f : rel.ordered) lines.push_back(f.ToString());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace deduce
