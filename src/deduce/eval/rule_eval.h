#ifndef DEDUCE_EVAL_RULE_EVAL_H_
#define DEDUCE_EVAL_RULE_EVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "deduce/datalog/builtins.h"
#include "deduce/datalog/rule.h"
#include "deduce/datalog/unify.h"
#include "deduce/eval/database.h"

namespace deduce {

/// A positive body fact matched during one derivation, in body order.
struct MatchedFact {
  Fact fact;
  TupleId id;
  size_t body_index = 0;
};

/// Options for one rule-body evaluation.
struct RuleEvalOptions {
  /// If set, the body literal at this index is "pinned": instead of scanning
  /// the database (positive literal) or checking absence (negated literal),
  /// it is matched against the facts in `pin_facts` only. This implements
  /// both semi-naive deltas and the update-driven maintenance of §IV-B
  /// (where an update to a negated stream binds through the negated
  /// subgoal).
  std::optional<size_t> pin_index;
  const std::vector<std::pair<Fact, TupleId>>* pin_facts = nullptr;

  /// Safety valve on emitted derivations.
  uint64_t max_results = UINT64_MAX;
};

/// Counters for one evaluation (accumulated if reused).
struct RuleEvalStats {
  uint64_t probes = 0;   ///< Facts examined while matching positive literals.
  uint64_t emitted = 0;  ///< Derivations emitted.
};

/// Matches `pattern` (after applying `subst`) against a ground term like
/// MatchTerm, additionally solving simple arithmetic patterns (Var+c, Var-c,
/// c+Var against an integer). Lets updates bind *through* subgoals carrying
/// arithmetic, e.g. pinning h1(Y, D+1) to a concrete tuple (§IV-B).
bool SolveMatchTerm(const Term& pattern, const Term& ground, Subst* subst,
                    const BuiltinRegistry& registry);

/// Position-wise SolveMatchTerm over argument lists.
bool SolveMatchTerms(const std::vector<Term>& patterns,
                     const std::vector<Term>& grounds, Subst* subst,
                     const BuiltinRegistry& registry);

/// Evaluates the body of one rule against a RelationReader, emitting every
/// satisfying substitution. This is the single join engine shared by the
/// centralized semi-naive evaluator, the staged XY evaluator, the
/// incremental maintainers, and (on-node) the distributed join component.
///
/// Literals are consumed in a greedy order: the pinned literal first, then
/// fully-bound filters (comparisons, built-ins, negations) as soon as they
/// become evaluable, then the positive literal with the most bound
/// variables. The range-restriction (safety) check guarantees the order
/// always completes.
class RuleBodyEvaluator {
 public:
  /// Both pointers must outlive the evaluator.
  RuleBodyEvaluator(const Rule* rule, const BuiltinRegistry* registry);

  /// Emits each derivation: the final substitution plus the positive body
  /// facts used (pinned negated facts are not included — derivations record
  /// positive support only, per §IV Definition 2). A non-OK status from
  /// `emit` aborts the evaluation and is returned.
  Status Evaluate(
      const RelationReader& db, const RuleEvalOptions& opts,
      const std::function<Status(const Subst&,
                                 const std::vector<MatchedFact>&)>& emit,
      RuleEvalStats* stats = nullptr) const;

  /// Builds the ground head fact for a satisfying substitution (arithmetic
  /// in the head is evaluated). Fails if the head is not ground — cannot
  /// happen for safe rules.
  StatusOr<Fact> BuildHead(const Subst& subst) const;

  const Rule& rule() const { return *rule_; }

 private:
  struct Frame;
  Status Step(const RelationReader& db, const RuleEvalOptions& opts,
              Frame* frame,
              const std::function<Status(const Subst&,
                                         const std::vector<MatchedFact>&)>&
                  emit,
              RuleEvalStats* stats) const;

  const Rule* rule_;
  const BuiltinRegistry* registry_;
  /// Variables of each body literal, precomputed.
  std::vector<std::vector<SymbolId>> literal_vars_;
};

}  // namespace deduce

#endif  // DEDUCE_EVAL_RULE_EVAL_H_
