#include "deduce/eval/incremental.h"

#include <algorithm>

#include "deduce/common/logging.h"
#include "deduce/common/strings.h"

namespace deduce {

namespace {

const BuiltinRegistry& DefaultRegistry() {
  static const BuiltinRegistry* r =
      new BuiltinRegistry(BuiltinRegistry::Default());
  return *r;
}

}  // namespace

std::string Derivation::ToString() const {
  std::string out = StrFormat("r%d[", rule_id);
  for (size_t i = 0; i < support.size(); ++i) {
    if (i > 0) out += ",";
    out += support[i].ToString();
  }
  out += "]";
  return out;
}

/// RelationReader over alive entries, with an optional "phantom": a single
/// fact treated as alive even though its entry is dead. The phantom is the
/// tuple being deleted — per Theorem 3, a tuple deleted at local time τ is
/// still visible to the join that computes the effects of its own deletion.
class IncrementalEngine::AliveView : public RelationReader {
 public:
  explicit AliveView(const IncrementalEngine* engine) : engine_(engine) {}
  AliveView(const IncrementalEngine* engine, const Fact* phantom,
            TupleId phantom_id)
      : engine_(engine), phantom_(phantom), phantom_id_(phantom_id) {}

  void Scan(SymbolId pred,
            const std::function<void(const Fact&, const TupleId&)>& fn)
      const override {
    auto it = engine_->store_.find(pred);
    if (it == engine_->store_.end()) return;
    // `fn` cascades derivations that may insert into this very relation
    // (recursive rules): iterate by index over a snapshotted bound and copy
    // the fact, since push_back can reallocate `order`.
    size_t n = it->second.order.size();
    for (size_t i = 0; i < n; ++i) {
      Fact f = it->second.order[i];
      auto eit = it->second.map.find(f);
      if (eit == it->second.map.end()) continue;
      const Entry& e = eit->second;
      if (e.alive) {
        fn(f, e.id);
      } else if (phantom_ != nullptr && f == *phantom_) {
        fn(f, phantom_id_);
      }
    }
  }

  bool Contains(const Fact& fact) const override {
    const Entry* e = engine_->FindEntry(fact);
    if (e != nullptr && e->alive) return true;
    return phantom_ != nullptr && fact == *phantom_;
  }

 private:
  const IncrementalEngine* engine_;
  const Fact* phantom_ = nullptr;
  TupleId phantom_id_;
};

StatusOr<std::unique_ptr<IncrementalEngine>> IncrementalEngine::Create(
    const Program& program, const IncrementalOptions& options) {
  const BuiltinRegistry* registry =
      options.registry != nullptr ? options.registry : &DefaultRegistry();
  Program copy = program;
  DEDUCE_RETURN_IF_ERROR(ResolveBuiltins(&copy, *registry));
  DEDUCE_ASSIGN_OR_RETURN(ProgramAnalysis analysis, AnalyzeProgram(copy));

  for (const Rule& r : copy.rules()) {
    if (!r.aggregates.empty()) {
      return Status::Unimplemented(
          "incremental maintenance of aggregates is not supported; use the "
          "engine's in-network aggregation path instead (rule: " +
          r.ToString() + ")");
    }
  }
  for (const SccInfo& scc : analysis.sccs) {
    if (scc.recursive && scc.has_internal_negation && !scc.xy_stratified) {
      return Status::Unimplemented(
          "recursion through negation is not XY-stratified: " +
          scc.xy_diagnostic);
    }
  }
  if (options.strategy == MaintenanceStrategy::kCounting &&
      analysis.is_recursive) {
    return Status::Unimplemented(
        "the counting strategy supports non-recursive programs only");
  }
  if (options.strategy == MaintenanceStrategy::kRederivation &&
      analysis.has_negation) {
    return Status::Unimplemented(
        "the rederivation strategy supports programs without negation only");
  }

  auto engine = std::unique_ptr<IncrementalEngine>(new IncrementalEngine(
      std::move(copy), std::move(analysis), registry, options));
  return engine;
}

IncrementalEngine::IncrementalEngine(Program program,
                                     ProgramAnalysis analysis,
                                     const BuiltinRegistry* registry,
                                     const IncrementalOptions& options)
    : program_(std::move(program)),
      analysis_(std::move(analysis)),
      registry_(registry),
      options_(options) {
  for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
    const Rule& rule = program_.rules()[ri];
    evaluators_.push_back(
        std::make_unique<RuleBodyEvaluator>(&rule, registry_));
    for (size_t li = 0; li < rule.body.size(); ++li) {
      const Literal& lit = rule.body[li];
      if (lit.kind == Literal::Kind::kPositive) {
        positive_occurrences_[lit.atom.predicate].emplace_back(ri, li);
      } else if (lit.kind == Literal::Kind::kNegated) {
        negated_occurrences_[lit.atom.predicate].emplace_back(ri, li);
      }
    }
  }
  // Program facts are permanent axioms (alive from the start; never expire).
  for (const Fact& f : program_.facts()) {
    auto& rel = store_[f.predicate()];
    auto [it, inserted] = rel.map.emplace(f, Entry{});
    if (!inserted) continue;
    rel.order.push_back(f);
    Entry& e = it->second;
    e.alive = true;
    e.base = true;
    e.id = TupleId{kNoNode, 0, seq_++};
    id_index_[e.id] = {f.predicate(), f};
  }
}

IncrementalEngine::Entry* IncrementalEngine::FindEntry(const Fact& fact) {
  auto rit = store_.find(fact.predicate());
  if (rit == store_.end()) return nullptr;
  auto it = rit->second.map.find(fact);
  return it == rit->second.map.end() ? nullptr : &it->second;
}

const IncrementalEngine::Entry* IncrementalEngine::FindEntry(
    const Fact& fact) const {
  return const_cast<IncrementalEngine*>(this)->FindEntry(fact);
}

Timestamp IncrementalEngine::WindowOf(SymbolId pred) const {
  const PredicateDecl* decl = program_.FindDecl(pred);
  if (decl != nullptr && decl->window.has_value()) return *decl->window;
  return options_.default_window;
}

void IncrementalEngine::ScheduleExpiry(SymbolId pred, const Fact& fact,
                                       Timestamp gen_ts) {
  Timestamp w = WindowOf(pred);
  if (w == IncrementalOptions::kNoWindow) return;
  expiry_.push(ExpiryItem{gen_ts + w, expiry_order_++, pred, fact, gen_ts});
}

Status IncrementalEngine::Apply(const StreamEvent& event,
                                std::vector<StreamEvent>* out) {
  DEDUCE_RETURN_IF_ERROR(AdvanceTo(event.time, out));
  ++stats_.events;

  std::deque<StreamEvent> queue;
  if (event.op == StreamOp::kInsert) {
    if (analysis_.idb.count(event.fact.predicate())) {
      return Status::InvalidArgument(
          "cannot insert into derived stream " +
          SymbolName(event.fact.predicate()));
    }
    auto& rel = store_[event.fact.predicate()];
    auto [it, inserted] = rel.map.emplace(event.fact, Entry{});
    Entry& e = it->second;
    if (!inserted && e.alive) return Status::OK();  // set semantics: no-op
    if (inserted) rel.order.push_back(event.fact);
    e.alive = true;
    e.base = true;
    e.id = event.id;
    e.gen_ts = event.time;
    id_index_[e.id] = {event.fact.predicate(), event.fact};
    ScheduleExpiry(event.fact.predicate(), event.fact, event.time);
    queue.push_back(event);
  } else {
    Entry* e = FindEntry(event.fact);
    if (e == nullptr || !e->alive) return Status::OK();  // unknown: no-op
    if (!e->base) {
      return Status::InvalidArgument(
          "cannot delete derived fact " + event.fact.ToString() +
          " directly");
    }
    e->alive = false;
    // Derivations the fact may also have accumulated die with it.
    live_derivations_ -= e->derivs.size();
    e->derivs.clear();
    e->count = 0;
    StreamEvent del = event;
    del.id = e->id;
    queue.push_back(del);
  }

  while (!queue.empty()) {
    StreamEvent ev = queue.front();
    queue.pop_front();
    if (ev.op == StreamOp::kInsert) {
      DEDUCE_RETURN_IF_ERROR(ProcessInsert(ev, out, &queue));
    } else {
      DEDUCE_RETURN_IF_ERROR(ProcessDelete(ev, out, &queue));
    }
    if (queue.empty() &&
        options_.strategy == MaintenanceStrategy::kRederivation &&
        !dred_candidates_.empty()) {
      DEDUCE_RETURN_IF_ERROR(Rederive(ev.time, out, &queue));
    }
  }
  return Status::OK();
}

Status IncrementalEngine::AdvanceTo(Timestamp now,
                                    std::vector<StreamEvent>* out) {
  while (!expiry_.empty() && expiry_.top().when <= now) {
    ExpiryItem item = expiry_.top();
    expiry_.pop();
    Entry* e = FindEntry(item.fact);
    if (e == nullptr || !e->alive || e->gen_ts != item.gen_ts) continue;
    e->alive = false;
    live_derivations_ -= e->derivs.size();
    e->derivs.clear();
    e->count = 0;
    StreamEvent del;
    del.op = StreamOp::kDelete;
    del.fact = item.fact;
    del.id = e->id;
    del.time = item.when;
    std::deque<StreamEvent> queue;
    queue.push_back(del);
    if (analysis_.idb.count(item.fact.predicate()) && out != nullptr) {
      out->push_back(del);
    }
    while (!queue.empty()) {
      StreamEvent ev = queue.front();
      queue.pop_front();
      if (ev.op == StreamOp::kInsert) {
        DEDUCE_RETURN_IF_ERROR(ProcessInsert(ev, out, &queue));
      } else {
        DEDUCE_RETURN_IF_ERROR(ProcessDelete(ev, out, &queue));
      }
      if (queue.empty() &&
          options_.strategy == MaintenanceStrategy::kRederivation &&
          !dred_candidates_.empty()) {
        DEDUCE_RETURN_IF_ERROR(Rederive(ev.time, out, &queue));
      }
    }
  }
  return Status::OK();
}

Status IncrementalEngine::ProcessInsert(const StreamEvent& event,
                                        std::vector<StreamEvent>* out,
                                        std::deque<StreamEvent>* queue) {
  AliveView view(this);
  std::vector<std::pair<Fact, TupleId>> pin = {{event.fact, event.id}};

  auto run = [&](size_t rule_idx, size_t lit_idx, bool removing) -> Status {
    const Rule& rule = program_.rules()[rule_idx];
    RuleEvalOptions opts;
    opts.pin_index = lit_idx;
    opts.pin_facts = &pin;
    RuleEvalStats rstats;
    Status st = evaluators_[rule_idx]->Evaluate(
        view, opts,
        [&](const Subst& subst,
            const std::vector<MatchedFact>& matched) -> Status {
          DEDUCE_ASSIGN_OR_RETURN(Fact head,
                                  evaluators_[rule_idx]->BuildHead(subst));
          Derivation d;
          d.rule_id = rule.id;
          std::vector<MatchedFact> sorted = matched;
          std::sort(sorted.begin(), sorted.end(),
                    [](const MatchedFact& a, const MatchedFact& b) {
                      return a.body_index < b.body_index;
                    });
          for (const MatchedFact& m : sorted) d.support.push_back(m.id);
          if (removing) {
            return RemoveDerivation(head, d, event.time, out, queue);
          }
          return AddDerivation(head, d, event.time, out, queue);
        },
        &rstats);
    stats_.probes += rstats.probes;
    return st;
  };

  auto pit = positive_occurrences_.find(event.fact.predicate());
  if (pit != positive_occurrences_.end()) {
    for (auto [ri, li] : pit->second) {
      DEDUCE_RETURN_IF_ERROR(run(ri, li, /*removing=*/false));
    }
  }
  auto nit = negated_occurrences_.find(event.fact.predicate());
  if (nit != negated_occurrences_.end()) {
    for (auto [ri, li] : nit->second) {
      DEDUCE_RETURN_IF_ERROR(run(ri, li, /*removing=*/true));
    }
  }
  return Status::OK();
}

Status IncrementalEngine::ProcessDelete(const StreamEvent& event,
                                        std::vector<StreamEvent>* out,
                                        std::deque<StreamEvent>* queue) {
  std::vector<std::pair<Fact, TupleId>> pin = {{event.fact, event.id}};

  auto run = [&](const RelationReader& view, size_t rule_idx, size_t lit_idx,
                 bool removing) -> Status {
    const Rule& rule = program_.rules()[rule_idx];
    RuleEvalOptions opts;
    opts.pin_index = lit_idx;
    opts.pin_facts = &pin;
    RuleEvalStats rstats;
    Status st = evaluators_[rule_idx]->Evaluate(
        view, opts,
        [&](const Subst& subst,
            const std::vector<MatchedFact>& matched) -> Status {
          DEDUCE_ASSIGN_OR_RETURN(Fact head,
                                  evaluators_[rule_idx]->BuildHead(subst));
          Derivation d;
          d.rule_id = rule.id;
          std::vector<MatchedFact> sorted = matched;
          std::sort(sorted.begin(), sorted.end(),
                    [](const MatchedFact& a, const MatchedFact& b) {
                      return a.body_index < b.body_index;
                    });
          for (const MatchedFact& m : sorted) d.support.push_back(m.id);
          if (removing) {
            return RemoveDerivation(head, d, event.time, out, queue);
          }
          return AddDerivation(head, d, event.time, out, queue);
        },
        &rstats);
    stats_.probes += rstats.probes;
    return st;
  };

  // Phase A: the deleted tuple is visible (phantom) while computing the
  // derivations that die with it.
  {
    AliveView phantom_view(this, &event.fact, event.id);
    auto pit = positive_occurrences_.find(event.fact.predicate());
    if (pit != positive_occurrences_.end()) {
      for (auto [ri, li] : pit->second) {
        DEDUCE_RETURN_IF_ERROR(run(phantom_view, ri, li, /*removing=*/true));
      }
    }
  }
  // Phase B: derivations newly enabled by the absence of the tuple.
  {
    AliveView view(this);
    auto nit = negated_occurrences_.find(event.fact.predicate());
    if (nit != negated_occurrences_.end()) {
      for (auto [ri, li] : nit->second) {
        DEDUCE_RETURN_IF_ERROR(run(view, ri, li, /*removing=*/false));
      }
    }
  }
  return Status::OK();
}

Status IncrementalEngine::AddDerivation(const Fact& fact, const Derivation& d,
                                        Timestamp t,
                                        std::vector<StreamEvent>* out,
                                        std::deque<StreamEvent>* queue) {
  auto& rel = store_[fact.predicate()];
  auto [it, inserted] = rel.map.emplace(fact, Entry{});
  if (inserted) rel.order.push_back(fact);
  Entry& e = it->second;

  switch (options_.strategy) {
    case MaintenanceStrategy::kDerivations:
      if (!e.derivs.insert(d).second) return Status::OK();  // duplicate
      ++live_derivations_;
      ++stats_.derivations_added;
      stats_.peak_derivations =
          std::max(stats_.peak_derivations, live_derivations_);
      break;
    case MaintenanceStrategy::kCounting:
      ++e.count;
      ++stats_.derivations_added;
      break;
    case MaintenanceStrategy::kRederivation:
      ++stats_.derivations_added;
      break;
  }

  // A successful Add always activates a dead entry (the new derivation is
  // valid by construction).
  if (e.alive) return Status::OK();

  if (id_index_.size() > options_.max_facts) {
    return Status::FailedPrecondition("incremental engine exceeded max_facts");
  }
  // New generation of the derived tuple (§III-B: a derived tuple is
  // generated, with a fresh id, at its first instance).
  e.alive = true;
  e.id = TupleId{kNoNode, t, seq_++};
  e.gen_ts = t;
  id_index_[e.id] = {fact.predicate(), fact};
  ScheduleExpiry(fact.predicate(), fact, t);

  StreamEvent ev;
  ev.op = StreamOp::kInsert;
  ev.fact = fact;
  ev.id = e.id;
  ev.time = t;
  queue->push_back(ev);
  if (out != nullptr) out->push_back(ev);
  return Status::OK();
}

Status IncrementalEngine::RemoveDerivation(const Fact& fact,
                                           const Derivation& d, Timestamp t,
                                           std::vector<StreamEvent>* out,
                                           std::deque<StreamEvent>* queue) {
  Entry* e = FindEntry(fact);
  if (e == nullptr) return Status::OK();

  bool dies = false;
  switch (options_.strategy) {
    case MaintenanceStrategy::kDerivations:
      if (e->derivs.erase(d) == 0) return Status::OK();
      --live_derivations_;
      ++stats_.derivations_removed;
      dies = e->derivs.empty();
      break;
    case MaintenanceStrategy::kCounting:
      if (e->count == 0) return Status::OK();
      --e->count;
      ++stats_.derivations_removed;
      dies = e->count == 0;
      break;
    case MaintenanceStrategy::kRederivation:
      // DRed over-deletion: any derivation through the deleted tuple kills
      // the fact tentatively; survivors are recomputed in Rederive().
      ++stats_.derivations_removed;
      dies = true;
      break;
  }
  if (!dies || !e->alive || e->base) return Status::OK();

  e->alive = false;
  if (options_.strategy == MaintenanceStrategy::kRederivation) {
    dred_candidates_.emplace_back(fact.predicate(), fact);
  }
  StreamEvent ev;
  ev.op = StreamOp::kDelete;
  ev.fact = fact;
  ev.id = e->id;
  ev.time = t;
  queue->push_back(ev);
  if (out != nullptr) out->push_back(ev);
  return Status::OK();
}

Status IncrementalEngine::Rederive(Timestamp t, std::vector<StreamEvent>* out,
                                   std::deque<StreamEvent>* queue) {
  // Evaluate every rule whose head predicate has tentative deletions; any
  // candidate that is still derivable from alive facts is revived (its
  // insert event re-cascades via the queue).
  bool changed = true;
  while (changed && !dred_candidates_.empty()) {
    changed = false;
    ++stats_.rederive_rounds;
    std::unordered_set<SymbolId> preds;
    std::unordered_set<Fact, FactHash> candidates;
    for (const auto& [pred, fact] : dred_candidates_) {
      preds.insert(pred);
      candidates.insert(fact);
    }
    std::unordered_set<Fact, FactHash> derivable;
    AliveView view(this);
    for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
      const Rule& rule = program_.rules()[ri];
      if (!preds.count(rule.head.predicate)) continue;
      RuleEvalStats rstats;
      Status st = evaluators_[ri]->Evaluate(
          view, RuleEvalOptions{},
          [&](const Subst& subst, const std::vector<MatchedFact>&) -> Status {
            DEDUCE_ASSIGN_OR_RETURN(Fact head, evaluators_[ri]->BuildHead(subst));
            if (candidates.count(head)) derivable.insert(head);
            return Status::OK();
          },
          &rstats);
      stats_.rederive_probes += rstats.probes;
      DEDUCE_RETURN_IF_ERROR(st);
    }
    std::vector<std::pair<SymbolId, Fact>> remaining;
    for (auto& [pred, fact] : dred_candidates_) {
      if (!derivable.count(fact)) {
        remaining.emplace_back(pred, fact);
        continue;
      }
      changed = true;
      Entry* e = FindEntry(fact);
      DEDUCE_CHECK(e != nullptr);
      if (e->alive) continue;
      e->alive = true;
      e->id = TupleId{kNoNode, t, seq_++};
      e->gen_ts = t;
      id_index_[e->id] = {fact.predicate(), fact};
      ScheduleExpiry(fact.predicate(), fact, t);
      StreamEvent ev;
      ev.op = StreamOp::kInsert;
      ev.fact = fact;
      ev.id = e->id;
      ev.time = t;
      queue->push_back(ev);
      if (out != nullptr) out->push_back(ev);
    }
    dred_candidates_ = std::move(remaining);
    // Drain the cascade produced by revivals before the next round.
    while (!queue->empty()) {
      StreamEvent ev = queue->front();
      queue->pop_front();
      if (ev.op == StreamOp::kInsert) {
        DEDUCE_RETURN_IF_ERROR(ProcessInsert(ev, out, queue));
      } else {
        DEDUCE_RETURN_IF_ERROR(ProcessDelete(ev, out, queue));
      }
    }
  }
  dred_candidates_.clear();
  return Status::OK();
}

Database IncrementalEngine::AliveDatabase() const {
  Database db;
  // Deterministic predicate order.
  std::vector<SymbolId> preds;
  for (const auto& [pred, rel] : store_) preds.push_back(pred);
  std::sort(preds.begin(), preds.end(), [](SymbolId a, SymbolId b) {
    return SymbolName(a) < SymbolName(b);
  });
  for (SymbolId pred : preds) {
    const auto& rel = store_.at(pred);
    for (const Fact& f : rel.order) {
      if (rel.map.at(f).alive) db.Insert(f);
    }
  }
  return db;
}

std::vector<Fact> IncrementalEngine::AliveFacts(SymbolId pred) const {
  std::vector<Fact> out;
  auto it = store_.find(pred);
  if (it == store_.end()) return out;
  for (const Fact& f : it->second.order) {
    if (it->second.map.at(f).alive) out.push_back(f);
  }
  return out;
}

bool IncrementalEngine::ProofDfs(const Fact& fact,
                                 std::set<std::string>* visiting,
                                 std::map<std::string, bool>* memo) const {
  const Entry* e = FindEntry(fact);
  if (e == nullptr || !e->alive) return false;
  if (e->base) return true;
  std::string key = fact.ToString();
  auto mit = memo->find(key);
  if (mit != memo->end()) return mit->second;
  if (visiting->count(key)) return false;  // cycle on this path
  visiting->insert(key);
  bool ok = false;
  for (const Derivation& d : e->derivs) {
    bool all = true;
    for (const TupleId& id : d.support) {
      auto iit = id_index_.find(id);
      if (iit == id_index_.end()) {
        all = false;
        break;
      }
      const Entry* se = FindEntry(iit->second.second);
      if (se == nullptr || !se->alive || se->id != id) {
        all = false;
        break;
      }
      if (!ProofDfs(iit->second.second, visiting, memo)) {
        all = false;
        break;
      }
    }
    if (all) {
      ok = true;
      break;
    }
  }
  visiting->erase(key);
  // Memoize positives always; negatives only at the top of the recursion
  // (a "false" under a visiting set may be a cycle artifact).
  if (ok || visiting->empty()) (*memo)[key] = ok;
  return ok;
}

StatusOr<bool> IncrementalEngine::HasValidProofTree(const Fact& fact) const {
  if (options_.strategy != MaintenanceStrategy::kDerivations) {
    return StatusOr<bool>(Status::FailedPrecondition(
        "proof trees are only tracked by the derivations strategy"));
  }
  std::set<std::string> visiting;
  std::map<std::string, bool> memo;
  return ProofDfs(fact, &visiting, &memo);
}

StatusOr<std::vector<Fact>> IncrementalEngine::FactsWithoutValidProof() const {
  if (options_.strategy != MaintenanceStrategy::kDerivations) {
    return StatusOr<std::vector<Fact>>(Status::FailedPrecondition(
        "proof trees are only tracked by the derivations strategy"));
  }
  std::vector<Fact> bad;
  for (const auto& [pred, rel] : store_) {
    if (!analysis_.idb.count(pred)) continue;
    for (const Fact& f : rel.order) {
      if (!rel.map.at(f).alive) continue;
      std::set<std::string> visiting;
      std::map<std::string, bool> memo;
      if (!ProofDfs(f, &visiting, &memo)) bad.push_back(f);
    }
  }
  std::sort(bad.begin(), bad.end(), [](const Fact& a, const Fact& b) {
    return a.ToString() < b.ToString();
  });
  return bad;
}

}  // namespace deduce
