#ifndef DEDUCE_COMMON_STATUS_H_
#define DEDUCE_COMMON_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>

namespace deduce {

/// Error categories used across the library. Modeled on the RocksDB/Arrow
/// convention: no exceptions cross API boundaries; fallible operations return
/// a Status (or StatusOr<T>, see statusor.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (e.g. parse error, bad option).
  kNotFound,          ///< Entity (predicate, node, tuple) does not exist.
  kAlreadyExists,     ///< Duplicate registration.
  kFailedPrecondition,///< Operation invalid in the current state.
  kUnimplemented,     ///< Feature outside the supported program classes.
  kOutOfRange,        ///< Index/coordinate outside its domain.
  kResourceExhausted, ///< A resource budget refused the operation; retryable.
  kInternal,          ///< Invariant violation; indicates a library bug.
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// An OK status carries no message and allocates nothing. Errors carry a
/// code and a message. Statuses must be checked by the caller; the library
/// never throws.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error Status from a subexpression; requires the enclosing
/// function to return Status.
#define DEDUCE_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::deduce::Status _status = (expr);                 \
    if (!_status.ok()) return _status;                 \
  } while (0)

}  // namespace deduce

#endif  // DEDUCE_COMMON_STATUS_H_
