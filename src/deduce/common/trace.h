#ifndef DEDUCE_COMMON_TRACE_H_
#define DEDUCE_COMMON_TRACE_H_

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "deduce/common/statusor.h"

namespace deduce {

/// One structured trace event, written as a single JSONL line. The schema
/// (docs/OBSERVABILITY.md) is deliberately flat so `jq` and the built-in
/// parser can both consume it:
///
///   kind  "hop"        one link-layer transmission batch (all ARQ attempts
///                      of one unicast/broadcast hop)
///         "inject"     a base-stream update entering the engine at a node
///         "retransmit" an end-to-end transport retransmission decision
///         "deriv"      a provenance event (schema v2): a rule firing, an
///                      aggregate emission, or a tuple generation
///         "cfdiff"     a counterfactual diff entry (schema v3): one
///                      appeared/vanished/flipped tuple with its divergence
///                      attribution, or one per-predicate cost-delta row
///                      (docs/OBSERVABILITY.md)
///   phase "inject" | "store" | "sweep" | "result" | "agg" | "ack" |
///         "repair" | "retransmit" | "other"
///                                  — which engine phase paid for the event;
///         for kind "deriv": "result" (rule firing applied at the fact's
///         home), "agg" (aggregate emitted at the group home), "gen" (a
///         tuple id was generated for the fact);
///         for kind "cfdiff": the divergence class — "inject" | "rule" |
///         "agg" | "lost" | "shed" | "unknown" — or "cost" for delta rows
///   pred  head/stream predicate the bytes were spent on ("" when unknown)
///   seq   transport sequence number or sweep pass index (0 when N/A)
///
/// Schema v2 adds optional provenance fields, only serialized when set so a
/// v1 trace (provenance off) stays byte-identical to PR 2 output:
///
///   schema  2 when any v2 field is present (absent lines are v1)
///   tid     64-bit trace id of the fact's tuple, 16 hex digits as a JSON
///           string (JSON numbers lose precision past 2^53)
///   tids    contributing trace ids, comma-separated hex in one string
///           (the flat scanner has no arrays)
///   fact    canonical fact text, e.g. "uncov(loc(6, 6), 1)"
///   rule    firing rule id (deriv result/agg records only)
///   lat     stream-update-to-apply latency in us (deriv result/agg)
///
/// Schema v3 adds counterfactual-diff fields, again only serialized when
/// set (v1/v2 streams are byte-identical to what older writers emit):
///
///   cf      cfdiff change class: "appeared" | "vanished" | "flipped" for
///           tuple entries, "cost" for per-predicate delta rows
///   dmsgs/dbytes/dretr/dsheds/dlat
///           signed perturbed-minus-base deltas, present on "cost" rows
struct TraceRecord {
  /// Highest schema version this parser understands.
  static constexpr int kSchemaVersion = 3;
  /// Sentinel for "no rule recorded" (rule ids are small non-negatives,
  /// with -1 reserved for axioms).
  static constexpr int32_t kNoRule = INT32_MIN;

  int64_t time = 0;       ///< Simulation time (us, global clock).
  int node = -1;          ///< Reporting node (the sender / injecting node).
  std::string kind;
  std::string phase;
  std::string pred;
  int src = -1;           ///< Hop source (kind == "hop").
  int dst = -1;           ///< Hop destination.
  uint64_t bytes = 0;     ///< Wire bytes per attempt (0 for non-hop kinds).
  uint64_t seq = 0;
  int attempts = 1;       ///< Link-layer transmissions used.
  bool delivered = true;
  int schema = 1;               ///< Serialized only when != 1.
  uint64_t tid = 0;             ///< Trace id of this record's tuple (0 = none).
  std::vector<uint64_t> tids;   ///< Contributing trace ids.
  std::string fact;             ///< Canonical fact text ("" = none).
  int32_t rule = kNoRule;       ///< Rule id, kNoRule when absent.
  int64_t lat = 0;              ///< End-to-end latency us (0 = none).
  std::string cf;               ///< cfdiff change class ("" = not a cfdiff).
  int64_t dmsgs = 0;            ///< cfdiff cost rows: message delta.
  int64_t dbytes = 0;           ///< cfdiff cost rows: byte delta.
  int64_t dretr = 0;            ///< cfdiff cost rows: retransmission delta.
  int64_t dsheds = 0;           ///< cfdiff cost rows: shed delta.
  int64_t dlat = 0;             ///< cfdiff cost rows: mean-latency delta us.

  /// One JSONL line (no trailing newline), fixed key order.
  std::string ToJson() const;
  /// Parses a line produced by ToJson (tolerates unknown extra keys).
  static StatusOr<TraceRecord> FromJson(const std::string& line);

  bool operator==(const TraceRecord& o) const;
};

/// Formats a trace id the way the JSONL schema carries it: 16 lowercase hex
/// digits, zero padded.
std::string TraceIdToHex(uint64_t tid);
/// Inverse of TraceIdToHex; false on malformed input.
bool TraceIdFromHex(const std::string& hex, uint64_t* out);

/// Appends trace records to a stream as JSONL. Inert until opened: an
/// unopened writer's Emit is a single-branch no-op, so tracing costs
/// nothing when off.
///
/// Emit is internally locked, so one open writer may be shared by
/// concurrent trial threads (lines interleave whole, never torn) — though
/// parallel trial runners normally give each trial its own writer to keep
/// line order deterministic (DESIGN.md §11). Open/Close must not race
/// with Emit.
class TraceWriter {
 public:
  TraceWriter() = default;

  /// Starts writing to `path` (truncates). Fails if unwritable.
  Status OpenFile(const std::string& path);
  /// Starts writing to a caller-owned stream (tests, in-memory capture).
  void OpenStream(std::ostream* out);
  void Close();

  bool on() const { return out_ != nullptr; }
  uint64_t lines_written() const { return lines_; }

  void Emit(const TraceRecord& record);

 private:
  std::mutex mu_;                    // serializes Emit across threads
  std::ostream* out_ = nullptr;      // borrowed or == file_.get()
  std::unique_ptr<std::ofstream> file_;
  uint64_t lines_ = 0;
};

/// Aggregation of a trace stream into the per-predicate / per-phase
/// communication-cost tables `dlog stats` prints. Message counts follow
/// NetworkStats conventions: every link-layer attempt is a message and is
/// paid for in bytes.
struct TraceStats {
  struct Cell {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  /// Per-predicate end-to-end numbers from "deriv" records (schema v2).
  struct LatencyCell {
    uint64_t results = 0;        ///< deriv result/agg records (rule firings).
    uint64_t gens = 0;           ///< deriv gen records (tuples materialized).
    int64_t lat_sum = 0;         ///< Sum of `lat` over results.
    int64_t lat_min = 0;         ///< Valid when results > 0.
    int64_t lat_max = 0;
  };

  /// (phase, pred) -> traffic, from "hop" records.
  std::map<std::pair<std::string, std::string>, Cell> by_phase_pred;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t dropped_hops = 0;    ///< Hop records with delivered == false.
  uint64_t injects = 0;         ///< kind == "inject" records.
  uint64_t retransmits = 0;     ///< kind == "retransmit" records.
  uint64_t sheds = 0;           ///< kind == "shed" records (overload).
  uint64_t derivs = 0;          ///< kind == "deriv" records (schema v2).
  uint64_t cfdiffs = 0;         ///< kind == "cfdiff" records (schema v3).
  uint64_t records = 0;         ///< Total records aggregated.
  uint64_t bad_lines = 0;       ///< Unparseable lines skipped.
  uint64_t future_records = 0;  ///< schema > kSchemaVersion, skipped.
  /// Record kinds this parser does not understand, with counts. `dlog
  /// stats` warns once per kind instead of dropping them silently.
  std::map<std::string, uint64_t> unknown_kinds;
  /// pred -> latency/generation rollup from deriv records.
  std::map<std::string, LatencyCell> latency_by_pred;

  void Add(const TraceRecord& r);

  /// Aggregates a JSONL stream; malformed lines are counted in bad_lines
  /// and (up to a cap) described in `errors` when non-null. One warning per
  /// unknown record kind and one for newer-schema records are appended to
  /// `errors` after the scan (warnings do not make a trace "bad").
  static TraceStats Aggregate(std::istream& in,
                              std::vector<std::string>* errors);

  /// Deterministic human-readable tables (the `dlog stats` output).
  std::string ToTable() const;

  /// Per-predicate end-to-end latency and bytes-per-result table (the
  /// `dlog stats --latency` output). Empty string when the trace has no
  /// deriv records.
  std::string LatencyTable() const;
};

}  // namespace deduce

#endif  // DEDUCE_COMMON_TRACE_H_
