#ifndef DEDUCE_COMMON_TRACE_H_
#define DEDUCE_COMMON_TRACE_H_

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "deduce/common/statusor.h"

namespace deduce {

/// One structured trace event, written as a single JSONL line. The schema
/// (docs/OBSERVABILITY.md) is deliberately flat so `jq` and the built-in
/// parser can both consume it:
///
///   kind  "hop"        one link-layer transmission batch (all ARQ attempts
///                      of one unicast/broadcast hop)
///         "inject"     a base-stream update entering the engine at a node
///         "retransmit" an end-to-end transport retransmission decision
///   phase "inject" | "store" | "sweep" | "result" | "agg" | "ack" |
///         "repair" | "retransmit" | "other"
///                                  — which engine phase paid for the event
///   pred  head/stream predicate the bytes were spent on ("" when unknown)
///   seq   transport sequence number or sweep pass index (0 when N/A)
struct TraceRecord {
  int64_t time = 0;       ///< Simulation time (us, global clock).
  int node = -1;          ///< Reporting node (the sender / injecting node).
  std::string kind;
  std::string phase;
  std::string pred;
  int src = -1;           ///< Hop source (kind == "hop").
  int dst = -1;           ///< Hop destination.
  uint64_t bytes = 0;     ///< Wire bytes per attempt (0 for non-hop kinds).
  uint64_t seq = 0;
  int attempts = 1;       ///< Link-layer transmissions used.
  bool delivered = true;

  /// One JSONL line (no trailing newline), fixed key order.
  std::string ToJson() const;
  /// Parses a line produced by ToJson (tolerates unknown extra keys).
  static StatusOr<TraceRecord> FromJson(const std::string& line);

  bool operator==(const TraceRecord& o) const;
};

/// Appends trace records to a stream as JSONL. Inert until opened: an
/// unopened writer's Emit is a single-branch no-op, so tracing costs
/// nothing when off.
///
/// Emit is internally locked, so one open writer may be shared by
/// concurrent trial threads (lines interleave whole, never torn) — though
/// parallel trial runners normally give each trial its own writer to keep
/// line order deterministic (DESIGN.md §11). Open/Close must not race
/// with Emit.
class TraceWriter {
 public:
  TraceWriter() = default;

  /// Starts writing to `path` (truncates). Fails if unwritable.
  Status OpenFile(const std::string& path);
  /// Starts writing to a caller-owned stream (tests, in-memory capture).
  void OpenStream(std::ostream* out);
  void Close();

  bool on() const { return out_ != nullptr; }
  uint64_t lines_written() const { return lines_; }

  void Emit(const TraceRecord& record);

 private:
  std::mutex mu_;                    // serializes Emit across threads
  std::ostream* out_ = nullptr;      // borrowed or == file_.get()
  std::unique_ptr<std::ofstream> file_;
  uint64_t lines_ = 0;
};

/// Aggregation of a trace stream into the per-predicate / per-phase
/// communication-cost tables `dlog stats` prints. Message counts follow
/// NetworkStats conventions: every link-layer attempt is a message and is
/// paid for in bytes.
struct TraceStats {
  struct Cell {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  /// (phase, pred) -> traffic, from "hop" records.
  std::map<std::pair<std::string, std::string>, Cell> by_phase_pred;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t dropped_hops = 0;    ///< Hop records with delivered == false.
  uint64_t injects = 0;         ///< kind == "inject" records.
  uint64_t retransmits = 0;     ///< kind == "retransmit" records.
  uint64_t records = 0;         ///< Total records aggregated.
  uint64_t bad_lines = 0;       ///< Unparseable lines skipped.

  void Add(const TraceRecord& r);

  /// Aggregates a JSONL stream; malformed lines are counted in bad_lines
  /// and (up to a cap) described in `errors` when non-null.
  static TraceStats Aggregate(std::istream& in,
                              std::vector<std::string>* errors);

  /// Deterministic human-readable tables (the `dlog stats` output).
  std::string ToTable() const;
};

}  // namespace deduce

#endif  // DEDUCE_COMMON_TRACE_H_
