#ifndef DEDUCE_COMMON_PARALLEL_H_
#define DEDUCE_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace deduce {

/// Worker count used when the caller does not pass one: the
/// DEDUCE_THREADS environment variable if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (minimum 1).
int DefaultThreadCount();

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// This is the only place the library creates threads. Everything
/// submitted must respect the concurrency contract of DESIGN.md §11:
/// trials share nothing but the interner (thread-safe), logging
/// (thread-safe), and immutable inputs; per-trial state (Network, engines,
/// MetricsRegistry, Rng) is confined to the thread running the trial.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Wait() waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;              // popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n), using up to `threads` workers.
/// Blocks until all iterations finish. threads <= 1 (or n <= 1) runs
/// inline on the caller's thread with no pool.
void ParallelFor(size_t n, int threads, const std::function<void(size_t)>& fn);

/// Executes `n` independent trials concurrently but reduces their results
/// **in submission order**: reduce(0, r0), reduce(1, r1), ... exactly as a
/// serial loop would, regardless of completion order. `trial(i)` runs on a
/// worker thread and must be self-contained (see ThreadPool's contract);
/// `reduce(i, result)` always runs on the calling thread, so it may touch
/// shared sinks (stdout, BenchReport) freely. With threads <= 1 the trials
/// run inline, interleaved with their reductions — byte-identical output
/// to the parallel path as long as trials themselves do not print.
template <typename Trial, typename Reduce>
void RunTrials(size_t n, int threads, Trial&& trial, Reduce&& reduce) {
  using Result = std::invoke_result_t<Trial&, size_t>;
  static_assert(!std::is_void_v<Result>,
                "trial must return a value; use ParallelFor for void work");
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) reduce(i, trial(i));
    return;
  }

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::optional<Result>> results;
  };
  Shared shared;
  shared.results.resize(n);

  {
    ThreadPool pool(threads);
    std::atomic<size_t> next{0};
    int workers = pool.size();
    for (int w = 0; w < workers; ++w) {
      pool.Submit([&shared, &next, &trial, n] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          Result r = trial(i);
          {
            std::lock_guard<std::mutex> lock(shared.mu);
            shared.results[i].emplace(std::move(r));
          }
          shared.cv.notify_one();
        }
      });
    }
    for (size_t i = 0; i < n; ++i) {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.cv.wait(lock, [&shared, i] {
        return shared.results[i].has_value();
      });
      Result r = std::move(*shared.results[i]);
      shared.results[i].reset();
      lock.unlock();
      reduce(i, std::move(r));
    }
    // pool destructor joins the workers before `shared` goes out of scope.
  }
}

}  // namespace deduce

#endif  // DEDUCE_COMMON_PARALLEL_H_
