#include "deduce/common/logging.h"

#include <atomic>

namespace deduce {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal
}  // namespace deduce
