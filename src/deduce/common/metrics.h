#ifndef DEDUCE_COMMON_METRICS_H_
#define DEDUCE_COMMON_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>

namespace deduce {

/// A fixed-bucket histogram with power-of-two bucket boundaries: bucket 0
/// counts values <= 0, bucket i (i >= 1) counts values in [2^(i-1), 2^i),
/// and the last bucket absorbs everything larger. Fixed buckets keep
/// observation O(1) with zero allocation — the discipline a mote-class
/// runtime (and a deterministic simulator) needs.
struct HistogramData {
  static constexpr size_t kBuckets = 26;

  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};

  void Observe(int64_t value);
  /// Inclusive upper bound of bucket `i` (INT64_MAX for the overflow bucket).
  static int64_t BucketUpperBound(size_t i);
};

/// Engine-wide observability registry: named counters, gauges, and
/// fixed-bucket histograms keyed by (node, component, name). `node` is -1
/// for process-global metrics. Deterministic by construction: entries live
/// in an ordered map, so same-seed runs produce byte-identical snapshots
/// (wall-clock span timers land under the reserved "timing" component,
/// which comparisons should exclude — see ScopedSpan).
///
/// Zero-cost-when-off contract: a disabled registry (or, at call sites, a
/// null registry pointer) records nothing and allocates nothing; every
/// mutator early-outs on one branch.
///
/// Concurrency contract (DESIGN.md §11): a registry instance is NOT
/// internally locked — it is confined to the thread of the trial that owns
/// it. Parallel trial runners give each trial its own registry and combine
/// them afterwards with MergeFrom, which is deterministic when applied in
/// submission order.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind = Kind::kCounter;
    uint64_t counter = 0;
    int64_t gauge = 0;
    HistogramData histogram;
  };

  /// (node, component, name); ordered so snapshots iterate deterministically.
  using Key = std::tuple<int, std::string, std::string>;

  MetricsRegistry() = default;

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  /// Adds `delta` to the counter, creating it at zero on first touch.
  void Add(int node, const std::string& component, const std::string& name,
           uint64_t delta = 1);
  /// Sets the gauge's current value.
  void Set(int node, const std::string& component, const std::string& name,
           int64_t value);
  /// Records one observation into the histogram.
  void Observe(int node, const std::string& component,
               const std::string& name, int64_t value);

  /// Drops every entry (the enabled flag is unchanged).
  void Clear() { entries_.clear(); }

  /// Folds `other` into this registry: counters add, histograms pool
  /// (count/sum/min/max/buckets), and gauges take `other`'s value
  /// (last-merged wins). Merging per-trial registries in trial submission
  /// order therefore yields the same result on every run — the reduction
  /// side of the parallel-trials contract. A kind clash (same key, two
  /// kinds) keeps `other`'s kind, matching what re-recording would do.
  /// Ignores the enabled flag on both sides.
  void MergeFrom(const MetricsRegistry& other);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::map<Key, Entry>& entries() const { return entries_; }

  /// Counter value, or 0 if absent.
  uint64_t CounterValue(int node, const std::string& component,
                        const std::string& name) const;
  /// Sum of a counter over all nodes (including the -1 global slot).
  uint64_t CounterTotal(const std::string& component,
                        const std::string& name) const;

  /// One JSON object: {"metrics": [{node, component, name, kind, ...}]}.
  /// Deterministic (ordered by key). Histograms carry count/sum/min/max and
  /// the non-empty bucket list. With include_timing == false the reserved
  /// wall-clock "timing" component is dropped, making the snapshot a pure
  /// function of the seed — the form BENCH_*.json reports and the
  /// bench-smoke CI gate compare byte-for-byte.
  std::string ToJson(bool include_timing = true) const;

  /// One time-resolved JSONL snapshot row:
  /// {"time": <time_us>, "metrics": [...]}. The row carries the registry's
  /// live counters as of `time_us` (simulated time). Used by the periodic
  /// snapshotter (`dlog simulate --metrics-interval`, bench_util's
  /// RunWithSnapshots) so churn/recovery runs can plot convergence over
  /// time instead of only end-of-run totals.
  std::string ToJsonRow(int64_t time_us, bool include_timing = false) const;

 private:
  bool enabled_ = true;
  std::map<Key, Entry> entries_;
};

/// Span-style phase timer: measures the wall-clock time between
/// construction and destruction and records it (in microseconds) as a
/// histogram observation under the reserved "timing" component. Wall time
/// is inherently nondeterministic, which is why "timing" is segregated from
/// the deterministic counters — tooling that diffs same-seed snapshots
/// skips that component. Near-zero cost when the registry is null or
/// disabled (a single branch; the clock is never read).
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, int node, const char* name)
      : registry_(registry), node_(node), name_(name) {
    if (registry_ != nullptr && registry_->enabled()) {
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }
  ~ScopedSpan() {
    if (!armed_) return;
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    registry_->Observe(node_, "timing", name_, static_cast<int64_t>(us));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  MetricsRegistry* registry_;
  int node_;
  const char* name_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace deduce

#endif  // DEDUCE_COMMON_METRICS_H_
