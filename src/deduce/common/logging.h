#ifndef DEDUCE_COMMON_LOGGING_H_
#define DEDUCE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace deduce {

/// Log severities, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kWarning
/// so tests/benches stay quiet; examples raise it to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message and aborts. Used by DEDUCE_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define DEDUCE_LOG(level)                                               \
  if (::deduce::LogLevel::level >= ::deduce::GetLogLevel())             \
  ::deduce::internal::LogMessage(::deduce::LogLevel::level, __FILE__,   \
                                 __LINE__)                              \
      .stream()

/// Unconditional invariant check; aborts with a message on failure. Used for
/// library-internal invariants that must hold in release builds too (the
/// simulator's correctness arguments rely on them).
#define DEDUCE_CHECK(cond)                                          \
  if (!(cond))                                                      \
  ::deduce::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

}  // namespace deduce

#endif  // DEDUCE_COMMON_LOGGING_H_
