#include "deduce/common/parallel.h"

#include <cstdlib>

namespace deduce {

int DefaultThreadCount() {
  const char* env = std::getenv("DEDUCE_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  std::atomic<size_t> next{0};
  int workers = pool.size();
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&next, &fn, n] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace deduce
