#ifndef DEDUCE_COMMON_HASH_H_
#define DEDUCE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace deduce {

/// Mixes `v` into the running hash `seed` (boost::hash_combine recipe with a
/// 64-bit constant). Deterministic across platforms and runs; geographic
/// hashing (routing/geo_hash.h) depends on that stability.
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// FNV-1a over bytes; deterministic (unlike std::hash<std::string> which may
/// be salted on some standard libraries).
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finalizer: turns a 64-bit value into a well-distributed hash.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace deduce

#endif  // DEDUCE_COMMON_HASH_H_
