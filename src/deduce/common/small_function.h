#ifndef DEDUCE_COMMON_SMALL_FUNCTION_H_
#define DEDUCE_COMMON_SMALL_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace deduce {

/// A move-only type-erased callable with a small-buffer optimization sized
/// for simulator events: callables up to kInlineBytes (with nothrow move)
/// live inside the object — no heap allocation per event, the cost that
/// dominated the old std::function-based event queue. Larger callables
/// fall back to the heap. A single pointer to a per-type vtable keeps
/// sizeof(SmallFunction) at kInlineBytes + 2 * sizeof(void*), so a
/// simulator Event (time + seq + callback) fills one cache line.
///
/// Differences from std::function, on purpose:
///   - move-only (accepts move-only captures, e.g. unique_ptr);
///   - no target()/target_type() RTTI;
///   - calling an empty SmallFunction is undefined (callers check bool).
template <typename Signature>
class SmallFunction;

template <typename R, typename... Args>
class SmallFunction<R(Args...)> {
 public:
  /// Inline capture budget. 32 bytes holds the library's event lambdas —
  /// the widest hot one is the network delivery callback (this pointer,
  /// node id, byte count, shared_ptr payload: exactly 32 bytes).
  static constexpr size_t kInlineBytes = 32;

  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      obj_ = new (buf_) D(std::forward<F>(f));
      static constexpr VTable vt = {
          [](void* obj, Args&&... args) -> R {
            return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
          },
          [](void* from, void* to) noexcept {
            D* d = static_cast<D*>(from);
            new (to) D(std::move(*d));
            d->~D();
          },
          [](void* obj) noexcept { static_cast<D*>(obj)->~D(); },
          /*inlined=*/true,
      };
      vt_ = &vt;
    } else {
      obj_ = new D(std::forward<F>(f));
      static constexpr VTable vt = {
          [](void* obj, Args&&... args) -> R {
            return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
          },
          /*relocate=*/nullptr,  // heap objects move by pointer steal
          [](void* obj) noexcept { delete static_cast<D*>(obj); },
          /*inlined=*/false,
      };
      vt_ = &vt;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { MoveFrom(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { Reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(obj_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* obj, Args&&... args);
    /// Move-constructs the inline object at `from` into `to` and destroys
    /// the source. Null for heap-allocated targets: their pointer is
    /// stolen instead, so they never relocate.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* obj) noexcept;
    bool inlined;
  };

  void Reset() {
    if (vt_ != nullptr) {
      vt_->destroy(obj_);
      vt_ = nullptr;
      obj_ = nullptr;
    }
  }

  void MoveFrom(SmallFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ == nullptr) return;
    if (vt_->inlined) {
      vt_->relocate(other.obj_, buf_);
      obj_ = buf_;
    } else {
      obj_ = other.obj_;  // heap case: steal the pointer.
    }
    other.vt_ = nullptr;
    other.obj_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* obj_ = nullptr;
  const VTable* vt_ = nullptr;
};

}  // namespace deduce

#endif  // DEDUCE_COMMON_SMALL_FUNCTION_H_
