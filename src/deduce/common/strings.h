#ifndef DEDUCE_COMMON_STRINGS_H_
#define DEDUCE_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace deduce {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True if `s` starts with / ends with `prefix`/`suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view s);

}  // namespace deduce

#endif  // DEDUCE_COMMON_STRINGS_H_
