#include "deduce/common/trace.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <set>

#include "deduce/common/strings.h"

namespace deduce {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        // Escape control bytes and anything non-ASCII: predicate and fact
        // strings can carry arbitrary bytes (e.g. a corrupted symbol
        // decoded off the wire), and raw high bytes would make the JSONL
        // invalid UTF-8. Each byte escapes as its Latin-1 codepoint.
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) > 0x7e) {
          *out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          *out += c;
        }
    }
  }
}

/// Minimal scanner for the flat one-line JSON objects ToJson emits:
/// string, integer, and boolean values only — no nesting, no arrays.
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(const std::string& s) : s_(s), i_(0) {}

  /// Walks the object, invoking Visit(key, raw_value, is_string) per member.
  /// `raw_value` has quotes stripped and escapes decoded for strings.
  template <typename Visit>
  Status Parse(const Visit& visit) {
    SkipWs();
    if (!Consume('{')) return Err("expected '{'");
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return Err("expected member key");
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      std::string value;
      bool is_string = false;
      if (Peek() == '"') {
        if (!ParseString(&value)) return Err("bad string value");
        is_string = true;
      } else {
        while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}' &&
               !IsWs(s_[i_])) {
          value += s_[i_++];
        }
        if (value.empty()) return Err("empty value");
      }
      visit(key, value, is_string);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Err("expected ',' or '}'");
    }
  }

 private:
  static bool IsWs(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  }
  void SkipWs() {
    while (i_ < s_.size() && IsWs(s_[i_])) ++i_;
  }
  char Peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++i_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (i_ < s_.size()) {
      char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        char e = s_[i_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) return false;
            char* end = nullptr;
            std::string hex = s_.substr(i_, 4);
            long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return false;
            i_ += 4;
            // Trace strings are ASCII; anything else round-trips as '?'.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }
  Status Err(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("trace json: %s at offset %zu", what, i_));
  }

  const std::string& s_;
  size_t i_;
};

bool ParseI64(const std::string& raw, int64_t* out) {
  if (raw.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(raw.c_str(), &end, 10);
  if (errno != 0 || end != raw.c_str() + raw.size()) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& raw, uint64_t* out) {
  if (raw.empty() || raw[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (errno != 0 || end != raw.c_str() + raw.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::string TraceIdToHex(uint64_t tid) {
  return StrFormat("%016llx", static_cast<unsigned long long>(tid));
}

bool TraceIdFromHex(const std::string& hex, uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  uint64_t v = 0;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

std::string TraceRecord::ToJson() const {
  std::string out = StrFormat("{\"time\":%lld,\"node\":%d,\"kind\":\"",
                              static_cast<long long>(time), node);
  AppendEscaped(kind, &out);
  out += "\",\"phase\":\"";
  AppendEscaped(phase, &out);
  out += "\",\"pred\":\"";
  AppendEscaped(pred, &out);
  out += StrFormat(
      "\",\"src\":%d,\"dst\":%d,\"bytes\":%llu,\"seq\":%llu,"
      "\"attempts\":%d,\"delivered\":%s",
      src, dst, static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(seq), attempts,
      delivered ? "true" : "false");
  // Schema-v2 fields are appended only when set: a record with none of them
  // serializes byte-identically to schema v1.
  if (schema != 1) out += StrFormat(",\"schema\":%d", schema);
  if (tid != 0) out += ",\"tid\":\"" + TraceIdToHex(tid) + "\"";
  if (!tids.empty()) {
    out += ",\"tids\":\"";
    for (size_t i = 0; i < tids.size(); ++i) {
      if (i > 0) out += ',';
      out += TraceIdToHex(tids[i]);
    }
    out += "\"";
  }
  if (!fact.empty()) {
    out += ",\"fact\":\"";
    AppendEscaped(fact, &out);
    out += "\"";
  }
  if (rule != kNoRule) out += StrFormat(",\"rule\":%d", rule);
  if (lat != 0) out += StrFormat(",\"lat\":%lld", static_cast<long long>(lat));
  // Schema-v3 counterfactual fields. The five deltas ride only on "cost"
  // rows and are always written there (a zero delta is a finding, not an
  // absent field), keeping cost rows self-describing for jq.
  if (!cf.empty()) {
    out += ",\"cf\":\"";
    AppendEscaped(cf, &out);
    out += "\"";
    if (cf == "cost") {
      out += StrFormat(
          ",\"dmsgs\":%lld,\"dbytes\":%lld,\"dretr\":%lld,"
          "\"dsheds\":%lld,\"dlat\":%lld",
          static_cast<long long>(dmsgs), static_cast<long long>(dbytes),
          static_cast<long long>(dretr), static_cast<long long>(dsheds),
          static_cast<long long>(dlat));
    }
  }
  out += "}";
  return out;
}

StatusOr<TraceRecord> TraceRecord::FromJson(const std::string& line) {
  TraceRecord r;
  r.attempts = 1;
  std::string bad;
  FlatJsonScanner scanner(line);
  Status s = scanner.Parse([&](const std::string& key,
                               const std::string& value, bool is_string) {
    auto want_string = [&](std::string* field) {
      if (!is_string) {
        bad = key;
        return;
      }
      *field = value;
    };
    if (key == "kind") {
      want_string(&r.kind);
    } else if (key == "phase") {
      want_string(&r.phase);
    } else if (key == "pred") {
      want_string(&r.pred);
    } else if (key == "delivered") {
      if (value == "true") {
        r.delivered = true;
      } else if (value == "false") {
        r.delivered = false;
      } else {
        bad = key;
      }
    } else if (key == "time") {
      if (!ParseI64(value, &r.time)) bad = key;
    } else if (key == "bytes") {
      if (!ParseU64(value, &r.bytes)) bad = key;
    } else if (key == "seq") {
      if (!ParseU64(value, &r.seq)) bad = key;
    } else if (key == "node" || key == "src" || key == "dst" ||
               key == "attempts") {
      int64_t v = 0;
      if (!ParseI64(value, &v)) {
        bad = key;
        return;
      }
      if (key == "node") r.node = static_cast<int>(v);
      if (key == "src") r.src = static_cast<int>(v);
      if (key == "dst") r.dst = static_cast<int>(v);
      if (key == "attempts") r.attempts = static_cast<int>(v);
    } else if (key == "schema") {
      int64_t v = 0;
      if (!ParseI64(value, &v)) {
        bad = key;
        return;
      }
      r.schema = static_cast<int>(v);
    } else if (key == "tid") {
      if (!is_string || !TraceIdFromHex(value, &r.tid)) bad = key;
    } else if (key == "tids") {
      if (!is_string) {
        bad = key;
        return;
      }
      size_t start = 0;
      while (start <= value.size()) {
        size_t comma = value.find(',', start);
        std::string piece = value.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        uint64_t t = 0;
        if (!TraceIdFromHex(piece, &t)) {
          bad = key;
          return;
        }
        r.tids.push_back(t);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (key == "fact") {
      want_string(&r.fact);
    } else if (key == "rule") {
      int64_t v = 0;
      if (!ParseI64(value, &v)) {
        bad = key;
        return;
      }
      r.rule = static_cast<int32_t>(v);
    } else if (key == "lat") {
      if (!ParseI64(value, &r.lat)) bad = key;
    } else if (key == "cf") {
      want_string(&r.cf);
    } else if (key == "dmsgs") {
      if (!ParseI64(value, &r.dmsgs)) bad = key;
    } else if (key == "dbytes") {
      if (!ParseI64(value, &r.dbytes)) bad = key;
    } else if (key == "dretr") {
      if (!ParseI64(value, &r.dretr)) bad = key;
    } else if (key == "dsheds") {
      if (!ParseI64(value, &r.dsheds)) bad = key;
    } else if (key == "dlat") {
      if (!ParseI64(value, &r.dlat)) bad = key;
    }
    // Unknown keys are ignored for forward compatibility.
  });
  if (!s.ok()) return s;
  if (!bad.empty()) {
    return Status::InvalidArgument(
        StrFormat("trace json: bad value for \"%s\"", bad.c_str()));
  }
  if (r.kind.empty()) {
    return Status::InvalidArgument("trace json: missing \"kind\"");
  }
  return r;
}

bool TraceRecord::operator==(const TraceRecord& o) const {
  return time == o.time && node == o.node && kind == o.kind &&
         phase == o.phase && pred == o.pred && src == o.src && dst == o.dst &&
         bytes == o.bytes && seq == o.seq && attempts == o.attempts &&
         delivered == o.delivered && schema == o.schema && tid == o.tid &&
         tids == o.tids && fact == o.fact && rule == o.rule && lat == o.lat &&
         cf == o.cf && dmsgs == o.dmsgs && dbytes == o.dbytes &&
         dretr == o.dretr && dsheds == o.dsheds && dlat == o.dlat;
}

Status TraceWriter::OpenFile(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!file->is_open()) {
    return Status::InvalidArgument(
        StrFormat("cannot open trace output '%s'", path.c_str()));
  }
  file_ = std::move(file);
  out_ = file_.get();
  lines_ = 0;
  return Status::OK();
}

void TraceWriter::OpenStream(std::ostream* out) {
  file_.reset();
  out_ = out;
  lines_ = 0;
}

void TraceWriter::Close() {
  if (file_ != nullptr) file_->flush();
  file_.reset();
  out_ = nullptr;
}

void TraceWriter::Emit(const TraceRecord& record) {
  if (out_ == nullptr) return;
  // Serialize formatting + write so concurrent emitters never tear lines.
  std::string line = record.ToJson();
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
  ++lines_;
}

void TraceStats::Add(const TraceRecord& r) {
  ++records;
  if (r.schema > TraceRecord::kSchemaVersion) {
    // A newer producer may have changed field meanings; skip the record
    // rather than misaggregate it. Older (v1) records have schema == 1 and
    // always parse.
    ++future_records;
    return;
  }
  if (r.kind == "hop") {
    // NetworkStats counts every link-layer attempt as a sent message and
    // charges bytes per attempt; mirror that so totals line up exactly.
    uint64_t attempts = r.attempts > 0 ? static_cast<uint64_t>(r.attempts) : 1;
    Cell& cell = by_phase_pred[{r.phase.empty() ? "other" : r.phase, r.pred}];
    cell.messages += attempts;
    cell.bytes += attempts * r.bytes;
    total_messages += attempts;
    total_bytes += attempts * r.bytes;
    if (!r.delivered) ++dropped_hops;
  } else if (r.kind == "inject") {
    ++injects;
  } else if (r.kind == "retransmit") {
    ++retransmits;
  } else if (r.kind == "shed") {
    ++sheds;
  } else if (r.kind == "deriv") {
    ++derivs;
    LatencyCell& cell = latency_by_pred[r.pred];
    if (r.phase == "gen") {
      ++cell.gens;
    } else {
      if (cell.results == 0 || r.lat < cell.lat_min) cell.lat_min = r.lat;
      if (cell.results == 0 || r.lat > cell.lat_max) cell.lat_max = r.lat;
      ++cell.results;
      cell.lat_sum += r.lat;
    }
  } else if (r.kind == "cfdiff") {
    // Counterfactual diff entries (schema v3) describe *two* runs; they
    // carry no traffic of their own, so they only count as records here.
    ++cfdiffs;
  } else {
    ++unknown_kinds[r.kind];
  }
}

TraceStats TraceStats::Aggregate(std::istream& in,
                                 std::vector<std::string>* errors) {
  TraceStats stats;
  constexpr size_t kMaxErrors = 10;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (StrTrim(line).empty()) continue;
    StatusOr<TraceRecord> r = TraceRecord::FromJson(line);
    if (!r.ok()) {
      ++stats.bad_lines;
      if (errors != nullptr && errors->size() < kMaxErrors) {
        errors->push_back(StrFormat("line %zu: %s", lineno,
                                    r.status().message().c_str()));
      }
      continue;
    }
    stats.Add(*r);
  }
  if (errors != nullptr) {
    // Warn once per unknown kind (not once per record) and once for
    // newer-schema records; both are forward-compatibility signals, not
    // parse failures, so they do not count as bad_lines.
    for (const auto& [kind, count] : stats.unknown_kinds) {
      errors->push_back(StrFormat(
          "warning: %llu record(s) of unknown kind \"%s\" ignored",
          static_cast<unsigned long long>(count), kind.c_str()));
    }
    if (stats.future_records > 0) {
      errors->push_back(StrFormat(
          "warning: %llu record(s) with schema > %d skipped "
          "(produced by a newer writer)",
          static_cast<unsigned long long>(stats.future_records),
          TraceRecord::kSchemaVersion));
    }
  }
  return stats;
}

std::string TraceStats::ToTable() const {
  std::string out;
  out += StrFormat("trace records:   %llu\n",
                   static_cast<unsigned long long>(records));
  out += StrFormat("total messages:  %llu\n",
                   static_cast<unsigned long long>(total_messages));
  out += StrFormat("total bytes:     %llu\n",
                   static_cast<unsigned long long>(total_bytes));
  out += StrFormat("injected tuples: %llu\n",
                   static_cast<unsigned long long>(injects));
  out += StrFormat("retransmissions: %llu\n",
                   static_cast<unsigned long long>(retransmits));
  out += StrFormat("dropped hops:    %llu\n",
                   static_cast<unsigned long long>(dropped_hops));
  if (sheds > 0) {
    out += StrFormat("sheds:           %llu\n",
                     static_cast<unsigned long long>(sheds));
  }
  if (derivs > 0) {
    out += StrFormat("deriv records:   %llu\n",
                     static_cast<unsigned long long>(derivs));
  }
  if (cfdiffs > 0) {
    out += StrFormat("cfdiff records:  %llu\n",
                     static_cast<unsigned long long>(cfdiffs));
  }
  if (bad_lines > 0) {
    out += StrFormat("bad lines:       %llu\n",
                     static_cast<unsigned long long>(bad_lines));
  }
  if (by_phase_pred.empty()) return out;

  // Per-phase rollup, then the full (phase, pred) breakdown.
  std::map<std::string, Cell> by_phase;
  for (const auto& [key, cell] : by_phase_pred) {
    Cell& p = by_phase[key.first];
    p.messages += cell.messages;
    p.bytes += cell.bytes;
  }
  out += "\nper-phase traffic:\n";
  out += StrFormat("  %-12s %12s %14s\n", "phase", "messages", "bytes");
  for (const auto& [phase, cell] : by_phase) {
    out += StrFormat("  %-12s %12llu %14llu\n", phase.c_str(),
                     static_cast<unsigned long long>(cell.messages),
                     static_cast<unsigned long long>(cell.bytes));
  }
  out += "\nper-predicate traffic:\n";
  out += StrFormat("  %-12s %-16s %12s %14s\n", "phase", "predicate",
                   "messages", "bytes");
  for (const auto& [key, cell] : by_phase_pred) {
    const std::string& pred = key.second.empty() ? "-" : key.second;
    out += StrFormat("  %-12s %-16s %12llu %14llu\n", key.first.c_str(),
                     pred.c_str(),
                     static_cast<unsigned long long>(cell.messages),
                     static_cast<unsigned long long>(cell.bytes));
  }
  return out;
}

std::string TraceStats::LatencyTable() const {
  if (latency_by_pred.empty()) return "";

  // Bytes-per-result denominators: all hop bytes attributed to a predicate,
  // split over the tuples actually materialized for it (falling back to
  // rule firings when the trace has no gen records for the predicate).
  std::map<std::string, uint64_t> bytes_by_pred;
  for (const auto& [key, cell] : by_phase_pred) {
    bytes_by_pred[key.second] += cell.bytes;
  }

  std::string out = "per-predicate latency (deriv records):\n";
  out += StrFormat("  %-16s %8s %8s %12s %12s %12s %14s\n", "predicate",
                   "results", "tuples", "lat avg us", "lat min us",
                   "lat max us", "bytes/result");
  for (const auto& [pred, cell] : latency_by_pred) {
    std::string avg = "-", lo = "-", hi = "-", bpr = "-";
    if (cell.results > 0) {
      avg = StrFormat("%lld", static_cast<long long>(
                                  cell.lat_sum /
                                  static_cast<int64_t>(cell.results)));
      lo = StrFormat("%lld", static_cast<long long>(cell.lat_min));
      hi = StrFormat("%lld", static_cast<long long>(cell.lat_max));
    }
    uint64_t denom = cell.gens > 0 ? cell.gens : cell.results;
    auto bit = bytes_by_pred.find(pred);
    if (denom > 0 && bit != bytes_by_pred.end()) {
      bpr = StrFormat("%llu",
                      static_cast<unsigned long long>(bit->second / denom));
    }
    out += StrFormat("  %-16s %8llu %8llu %12s %12s %12s %14s\n",
                     pred.empty() ? "-" : pred.c_str(),
                     static_cast<unsigned long long>(cell.results),
                     static_cast<unsigned long long>(cell.gens), avg.c_str(),
                     lo.c_str(), hi.c_str(), bpr.c_str());
  }
  return out;
}

}  // namespace deduce
