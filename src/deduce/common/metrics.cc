#include "deduce/common/metrics.h"

#include <algorithm>
#include <limits>

#include "deduce/common/strings.h"

namespace deduce {

namespace {

size_t BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  size_t i = 1;
  uint64_t bound = 1;  // bucket i covers [2^(i-1), 2^i)
  while (i + 1 < HistogramData::kBuckets &&
         static_cast<uint64_t>(value) >= (bound << 1)) {
    bound <<= 1;
    ++i;
  }
  if (static_cast<uint64_t>(value) >= (bound << 1)) {
    return HistogramData::kBuckets - 1;
  }
  return i;
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        // Escape control bytes and anything non-ASCII: names can carry
        // arbitrary bytes (e.g. a corrupted predicate symbol decoded off
        // the wire), and raw high bytes would make the JSON invalid
        // UTF-8. Each byte escapes as its Latin-1 codepoint.
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) > 0x7e) {
          *out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void HistogramData::Observe(int64_t value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[BucketIndex(value)];
}

int64_t HistogramData::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i + 1 >= kBuckets) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << i) - 1;
}

void MetricsRegistry::Add(int node, const std::string& component,
                          const std::string& name, uint64_t delta) {
  if (!enabled_) return;
  Entry& e = entries_[Key{node, component, name}];
  e.kind = Kind::kCounter;
  e.counter += delta;
}

void MetricsRegistry::Set(int node, const std::string& component,
                          const std::string& name, int64_t value) {
  if (!enabled_) return;
  Entry& e = entries_[Key{node, component, name}];
  e.kind = Kind::kGauge;
  e.gauge = value;
}

void MetricsRegistry::Observe(int node, const std::string& component,
                              const std::string& name, int64_t value) {
  if (!enabled_) return;
  Entry& e = entries_[Key{node, component, name}];
  e.kind = Kind::kHistogram;
  e.histogram.Observe(value);
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [key, theirs] : other.entries_) {
    Entry& mine = entries_[key];
    if (mine.kind != theirs.kind && mine.counter == 0 && mine.gauge == 0 &&
        mine.histogram.count == 0) {
      // Freshly created (or never written): adopt their kind wholesale.
      mine = theirs;
      continue;
    }
    mine.kind = theirs.kind;
    switch (theirs.kind) {
      case Kind::kCounter:
        mine.counter += theirs.counter;
        break;
      case Kind::kGauge:
        mine.gauge = theirs.gauge;
        break;
      case Kind::kHistogram: {
        HistogramData& h = mine.histogram;
        const HistogramData& o = theirs.histogram;
        if (o.count == 0) break;
        if (h.count == 0) {
          h.min = o.min;
          h.max = o.max;
        } else {
          h.min = std::min(h.min, o.min);
          h.max = std::max(h.max, o.max);
        }
        h.count += o.count;
        h.sum += o.sum;
        for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
          h.buckets[i] += o.buckets[i];
        }
        break;
      }
    }
  }
}

uint64_t MetricsRegistry::CounterValue(int node, const std::string& component,
                                       const std::string& name) const {
  auto it = entries_.find(Key{node, component, name});
  if (it == entries_.end() || it->second.kind != Kind::kCounter) return 0;
  return it->second.counter;
}

uint64_t MetricsRegistry::CounterTotal(const std::string& component,
                                       const std::string& name) const {
  uint64_t total = 0;
  for (const auto& [key, e] : entries_) {
    if (e.kind == Kind::kCounter && std::get<1>(key) == component &&
        std::get<2>(key) == name) {
      total += e.counter;
    }
  }
  return total;
}

std::string MetricsRegistry::ToJson(bool include_timing) const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!include_timing && std::get<1>(key) == "timing") continue;
    if (!first) out += ",";
    first = false;
    out += StrFormat("{\"node\":%d,\"component\":\"", std::get<0>(key));
    AppendEscaped(std::get<1>(key), &out);
    out += "\",\"name\":\"";
    AppendEscaped(std::get<2>(key), &out);
    out += "\",";
    switch (e.kind) {
      case Kind::kCounter:
        out += StrFormat("\"kind\":\"counter\",\"value\":%llu",
                         static_cast<unsigned long long>(e.counter));
        break;
      case Kind::kGauge:
        out += StrFormat("\"kind\":\"gauge\",\"value\":%lld",
                         static_cast<long long>(e.gauge));
        break;
      case Kind::kHistogram: {
        const HistogramData& h = e.histogram;
        out += StrFormat(
            "\"kind\":\"histogram\",\"count\":%llu,\"sum\":%lld,"
            "\"min\":%lld,\"max\":%lld,\"buckets\":[",
            static_cast<unsigned long long>(h.count),
            static_cast<long long>(h.sum), static_cast<long long>(h.min),
            static_cast<long long>(h.max));
        bool bfirst = true;
        for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
          if (h.buckets[i] == 0) continue;
          if (!bfirst) out += ",";
          bfirst = false;
          out += StrFormat("{\"le\":%lld,\"count\":%llu}",
                           static_cast<long long>(
                               HistogramData::BucketUpperBound(i)),
                           static_cast<unsigned long long>(h.buckets[i]));
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::ToJsonRow(int64_t time_us,
                                       bool include_timing) const {
  return StrFormat("{\"time\":%lld,", static_cast<long long>(time_us)) +
         ToJson(include_timing).substr(1);
}

}  // namespace deduce
