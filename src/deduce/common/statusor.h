#ifndef DEDUCE_COMMON_STATUSOR_H_
#define DEDUCE_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "deduce/common/status.h"

namespace deduce {

/// Holds either a value of type T or an error Status.
///
/// Typical use:
/// \code
///   StatusOr<Program> p = ParseProgram(text);
///   if (!p.ok()) return p.status();
///   Use(p.value());
/// \endcode
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }
  /// Constructs from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a StatusOr), propagating an error or assigning the
/// value to `lhs`. Requires the enclosing function to return Status (or a
/// StatusOr).
#define DEDUCE_ASSIGN_OR_RETURN(lhs, expr)            \
  DEDUCE_ASSIGN_OR_RETURN_IMPL(                       \
      DEDUCE_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)

#define DEDUCE_STATUS_CONCAT_INNER(a, b) a##b
#define DEDUCE_STATUS_CONCAT(a, b) DEDUCE_STATUS_CONCAT_INNER(a, b)

#define DEDUCE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace deduce

#endif  // DEDUCE_COMMON_STATUSOR_H_
