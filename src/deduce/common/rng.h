#ifndef DEDUCE_COMMON_RNG_H_
#define DEDUCE_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace deduce {

/// Deterministic random number generator used everywhere randomness is
/// needed (simulator delays, losses, workload generators, property tests).
///
/// All experiments are reproducible from a single seed: the simulator,
/// topology builders and workload generators each derive child RNGs via
/// Fork() so that adding randomness in one component does not perturb the
/// stream seen by another.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed double with the given mean.
  double Exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Raw 64 random bits.
  uint64_t NextUint64() { return engine_(); }

  /// Derives an independent child generator; deterministic given this
  /// generator's current state.
  Rng Fork() { return Rng(engine_()); }

  /// The underlying engine, for use with <random> distributions/shuffles.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace deduce

#endif  // DEDUCE_COMMON_RNG_H_
