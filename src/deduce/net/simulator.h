#ifndef DEDUCE_NET_SIMULATOR_H_
#define DEDUCE_NET_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "deduce/common/small_function.h"
#include "deduce/datalog/fact.h"  // Timestamp

namespace deduce {

/// Simulated time in microseconds (same unit as tuple Timestamps).
using SimTime = Timestamp;

/// A deterministic single-threaded discrete-event scheduler.
///
/// Events fire in (time, insertion order) order, so two events scheduled for
/// the same instant run in the order they were scheduled — runs replay
/// exactly given the same seed.
///
/// Implementation: a calendar queue. Simulated link delays put almost every
/// event within a few milliseconds of `now`, so the pending set is kept in a
/// ring of fixed-width time slots addressed by slot = time >> kSlotBits;
/// only the slot currently being drained needs a real ordering. That slot's
/// events stay put in a flat vector while a parallel array of small POD
/// sort keys (time, seq, index) is sorted once — events are never moved by
/// the ordering step, and draining is an index walk. Events beyond the ring
/// horizon (rare: fault plans, long timers) wait in an overflow heap and
/// migrate as the cursor reaches them. Callbacks are stored in a
/// SmallFunction and slot/key storage is recycled between slots, so a
/// typical event performs no heap allocation — together this replaces the
/// old global std::priority_queue<std::function> whose per-event allocation
/// and log(pending) comparisons dominated the event loop. Ordering is
/// bit-for-bit identical to the old queue (see the
/// CalendarMatchesReferenceHeap property test).
class Simulator {
 public:
  using EventFn = SmallFunction<void()>;

  Simulator();

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void ScheduleAt(SimTime t, EventFn fn);

  /// Schedules `fn` after a delay (>= 0).
  void ScheduleAfter(SimTime delay, EventFn fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with firing time <= deadline.
  uint64_t RunUntil(SimTime deadline);

  size_t pending() const {
    return (active_keys_.size() - active_pos_) + ring_pending_ +
           overflow_.size();
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    EventFn fn;
  };

  /// Sort key for the engaged slot: `idx` points into active_events_, or
  /// into active_extra_ when the kExtraBit flag is set. Ordering the
  /// 24-byte keys instead of the Events themselves keeps the per-slot sort
  /// memcpy-cheap and never moves a SmallFunction.
  struct Key {
    SimTime time;
    uint64_t seq;
    uint32_t idx;
  };
  static constexpr uint32_t kExtraBit = uint32_t{1} << 31;
  /// Functor (not a function pointer) so sort/lower_bound inline the
  /// comparisons — the per-slot sort is the hottest ordering step.
  struct KeyBefore {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  /// (time, seq) min-ordering for the overflow heap.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Slot geometry. Link delays and MAC/transport timers land within a few
  /// milliseconds of now, so a short ring suffices; a small slot count also
  /// keeps the ring warm (bucket capacities are recycled every wrap, ~8 ms
  /// of simulated time) and the occupancy bitmap in a single word. Longer
  /// timers (sweep periods, fault plans) take the overflow heap and migrate
  /// into the ring as the cursor approaches them.
  static constexpr int kSlotBits = 7;           ///< 128 us per slot.
  static constexpr size_t kNumSlots = 64;       ///< ~8.2 ms ring horizon.
  static constexpr size_t kSlotMask = kNumSlots - 1;
  static constexpr size_t kBitmapWords = kNumSlots / 64;

  static uint64_t SlotOf(SimTime t) {
    return static_cast<uint64_t>(t) >> kSlotBits;
  }

  /// True if the earliest pending event fires at or before `deadline`
  /// (SimTime max = no bound), after engaging its slot into the active
  /// arrays. Returns false when the queue is empty or the next event is
  /// later.
  bool EngageNext(SimTime deadline);

  /// Adds an event to the engaged slot, keeping active_keys_ sorted.
  void InsertActive(Event ev);
  /// Advances now_ to `key` and invokes its callback. By value: firing can
  /// reallocate active_keys_.
  void Fire(Key key);
  void MarkSlot(size_t index) {
    bitmap_[index >> 6] |= uint64_t{1} << (index & 63);
  }
  void ClearSlot(size_t index) {
    bitmap_[index >> 6] &= ~(uint64_t{1} << (index & 63));
  }
  /// Smallest slot > cursor_slot_ with a non-empty ring bucket, or
  /// UINT64_MAX if the ring is empty.
  uint64_t NextRingSlot() const;

  SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t cursor_slot_ = 0;   ///< Slot whose events are engaged.
  size_t ring_pending_ = 0;    ///< Events stored in ring slots.

  /// The engaged slot: events of slots <= cursor_slot_, unordered, fired
  /// by walking active_keys_ from active_pos_. (Slots < cursor_slot_ only
  /// occur transiently: RunUntil can leave the cursor ahead of now_, and
  /// later insertions at t >= now_ still order correctly because
  /// everything else is in strictly later slots.) Storage rotates with the
  /// ring buckets, so steady-state slot churn does not allocate.
  ///
  /// active_events_ is frozen while the slot drains, so its callbacks are
  /// invoked in place (no move per fire). Events scheduled into the
  /// engaged slot *during* the drain land in active_extra_ instead, which
  /// can reallocate while one of its own callbacks runs — those are moved
  /// out before invocation.
  std::vector<Event> active_events_;
  std::vector<Event> active_extra_;
  std::vector<Key> active_keys_;   ///< Sorted (time, seq); see KeyBefore.
  size_t active_pos_ = 0;          ///< Next key to fire.
  /// Ring of future slots: slots_[s & kSlotMask] holds the (unordered)
  /// events of slot s for s in (cursor_slot_, cursor_slot_ + kNumSlots).
  std::vector<std::vector<Event>> slots_;
  uint64_t bitmap_[kBitmapWords] = {};  ///< Non-empty ring buckets.
  /// Events at or beyond the ring horizon, as a (time, seq) min-heap.
  std::vector<Event> overflow_;
};

}  // namespace deduce

#endif  // DEDUCE_NET_SIMULATOR_H_
