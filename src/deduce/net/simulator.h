#ifndef DEDUCE_NET_SIMULATOR_H_
#define DEDUCE_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "deduce/datalog/fact.h"  // Timestamp

namespace deduce {

/// Simulated time in microseconds (same unit as tuple Timestamps).
using SimTime = Timestamp;

/// A deterministic single-threaded discrete-event scheduler.
///
/// Events fire in (time, insertion order) order, so two events scheduled for
/// the same instant run in the order they were scheduled — runs replay
/// exactly given the same seed.
class Simulator {
 public:
  Simulator() = default;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after a delay (>= 0).
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with firing time <= deadline.
  uint64_t RunUntil(SimTime deadline);

  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
};

}  // namespace deduce

#endif  // DEDUCE_NET_SIMULATOR_H_
