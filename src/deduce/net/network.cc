#include "deduce/net/network.h"

#include <algorithm>

#include "deduce/common/logging.h"
#include "deduce/common/metrics.h"

namespace deduce {

uint64_t NetworkStats::TotalMessages() const {
  uint64_t n = 0;
  for (const PerNode& p : per_node) n += p.sent_messages;
  return n;
}

uint64_t NetworkStats::TotalBytes() const {
  uint64_t n = 0;
  for (const PerNode& p : per_node) n += p.sent_bytes;
  return n;
}

uint64_t NetworkStats::MaxNodeMessages() const {
  uint64_t n = 0;
  for (const PerNode& p : per_node) {
    n = std::max(n, p.sent_messages + p.received_messages);
  }
  return n;
}

double NetworkStats::TotalEnergyMicroJ() const {
  // CC2420-ish at 3V, 250kbps: tx ~0.6 uJ/byte, rx ~0.67 uJ/byte.
  constexpr double kTxPerByte = 0.60;
  constexpr double kRxPerByte = 0.67;
  double e = 0;
  for (const PerNode& p : per_node) {
    e += kTxPerByte * static_cast<double>(p.sent_bytes) +
         kRxPerByte * static_cast<double>(p.received_bytes);
  }
  return e;
}

void NetworkStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr || !registry->enabled()) return;
  for (size_t i = 0; i < per_node.size(); ++i) {
    const PerNode& p = per_node[i];
    int node = static_cast<int>(i);
    registry->Add(node, "net", "sent_messages", p.sent_messages);
    registry->Add(node, "net", "sent_bytes", p.sent_bytes);
    registry->Add(node, "net", "received_messages", p.received_messages);
    registry->Add(node, "net", "received_bytes", p.received_bytes);
    registry->Add(node, "net", "dropped_messages", p.dropped_messages);
  }
  registry->Add(-1, "net", "mac_ack_failures", mac_ack_failures);
  registry->Add(-1, "net", "nodes_failed", nodes_failed);
  registry->Add(-1, "net", "nodes_recovered", nodes_recovered);
  registry->Add(-1, "net", "frames_coalesced", frames_coalesced);
  registry->Add(-1, "chaos", "links_cut", links_cut);
  registry->Add(-1, "chaos", "corrupted_delivered", corrupted_delivered);
  registry->Add(-1, "chaos", "duplicated", duplicated);
  registry->Add(-1, "chaos", "reordered", reordered);
  registry->Add(-1, "chaos", "deliveries_stalled", deliveries_stalled);
}

const Location& NodeContext::location() const {
  return network_->topology_.location(id_);
}

const std::vector<NodeId>& NodeContext::neighbors() const {
  return network_->topology_.neighbors(id_);
}

const Topology& NodeContext::topology() const { return network_->topology_; }

SimTime NodeContext::LocalTime() const {
  return network_->sim_.now() + network_->skews_[static_cast<size_t>(id_)];
}

bool NodeContext::Send(NodeId to, Message msg) {
  return network_->Deliver(id_, to, std::move(msg));
}

void NodeContext::SetTimer(SimTime delay, int timer_id) {
  Network* net = network_;
  NodeId id = id_;
  uint64_t inc = net->incarnations_[static_cast<size_t>(id)];
  net->sim_.ScheduleAfter(delay, [net, id, inc, timer_id]() {
    if (net->failed_[static_cast<size_t>(id)]) return;
    if (net->incarnations_[static_cast<size_t>(id)] != inc) return;
    net->apps_[static_cast<size_t>(id)]->OnTimer(
        net->contexts_[static_cast<size_t>(id)].get(), timer_id);
  });
}

Rng& NodeContext::rng() {
  return *network_->node_rngs_[static_cast<size_t>(id_)];
}

Network::Network(Topology topology, LinkModel link, uint64_t seed)
    : topology_(std::move(topology)), link_(link), rng_(seed) {
  int n = topology_.node_count();
  apps_.resize(static_cast<size_t>(n));
  contexts_.reserve(static_cast<size_t>(n));
  node_rngs_.reserve(static_cast<size_t>(n));
  skews_.reserve(static_cast<size_t>(n));
  failed_.assign(static_cast<size_t>(n), false);
  incarnations_.assign(static_cast<size_t>(n), 0);
  stall_.assign(static_cast<size_t>(n), 0);
  stats_.per_node.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    contexts_.push_back(std::make_unique<NodeContext>(this, i));
    node_rngs_.push_back(std::make_unique<Rng>(rng_.Fork()));
    skews_.push_back(link_.max_clock_skew > 0
                         ? rng_.Uniform(0, link_.max_clock_skew)
                         : 0);
  }
}

void Network::SetApp(NodeId id, std::unique_ptr<NodeApp> app) {
  apps_[static_cast<size_t>(id)] = std::move(app);
}

void Network::Start() {
  for (int i = 0; i < node_count(); ++i) {
    DEDUCE_CHECK(apps_[static_cast<size_t>(i)] != nullptr)
        << "node " << i << " has no app";
    NodeId id = i;
    sim_.ScheduleAt(sim_.now(), [this, id]() {
      if (failed_[static_cast<size_t>(id)]) return;
      apps_[static_cast<size_t>(id)]->Start(
          contexts_[static_cast<size_t>(id)].get());
    });
  }
}

void Network::FailNode(NodeId id) {
  if (failed_[static_cast<size_t>(id)]) return;
  failed_[static_cast<size_t>(id)] = true;
  ++incarnations_[static_cast<size_t>(id)];
  ++stats_.nodes_failed;
}

void Network::RecoverNode(NodeId id) {
  if (!failed_[static_cast<size_t>(id)]) return;
  failed_[static_cast<size_t>(id)] = false;
  ++stats_.nodes_recovered;
  apps_[static_cast<size_t>(id)]->OnRestart(
      contexts_[static_cast<size_t>(id)].get());
}

void Network::ApplyFaultPlan(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) {
    sim_.ScheduleAt(ev.time, [this, ev]() {
      switch (ev.kind) {
        case FaultEvent::Kind::kFail:
          FailNode(ev.node);
          break;
        case FaultEvent::Kind::kRecover:
          RecoverNode(ev.node);
          break;
        case FaultEvent::Kind::kAddLinkFault:
          AddLinkFault(ev.rule);
          break;
        case FaultEvent::Kind::kHealLinks:
          HealLinks(ev.rule.src, ev.rule.dst);
          break;
        case FaultEvent::Kind::kSlowNode:
          SetNodeStall(ev.node, ev.magnitude);
          break;
        case FaultEvent::Kind::kMemSqueeze:
        case FaultEvent::Kind::kInjectStorm:
          // Not network-level faults: the engine (budget squeeze) and the
          // scenario harness (storm expansion) own these. Hooks let them
          // observe the firing without the network knowing their types.
          for (const auto& hook : fault_hooks_) hook(ev);
          break;
      }
    });
  }
}

void Network::SetNodeStall(NodeId id, SimTime stall) {
  stall_[static_cast<size_t>(id)] = stall < 0 ? 0 : stall;
}

void Network::AddLinkFault(LinkFaultRule rule) {
  link_faults_.push_back(std::move(rule));
}

void Network::HealLinks(const std::vector<NodeId>& src,
                        const std::vector<NodeId>& dst) {
  link_faults_.erase(
      std::remove_if(link_faults_.begin(), link_faults_.end(),
                     [&](const LinkFaultRule& r) {
                       return r.src == src && r.dst == dst;
                     }),
      link_faults_.end());
}

namespace {

bool InSet(const std::vector<NodeId>& set, NodeId n) {
  return set.empty() || std::find(set.begin(), set.end(), n) != set.end();
}

FaultEvent LinkFaultEvent(SimTime time, FaultEvent::Kind kind,
                          LinkFaultRule rule) {
  FaultEvent ev;
  ev.time = time;
  ev.kind = kind;
  ev.rule = std::move(rule);
  return ev;
}

}  // namespace

const LinkFaultRule* Network::MatchLinkFault(LinkFaultRule::Kind kind,
                                             NodeId from, NodeId to) {
  for (const LinkFaultRule& r : link_faults_) {
    if (r.kind != kind || !InSet(r.src, from) || !InSet(r.dst, to)) continue;
    if (r.rate >= 1.0 || rng_.Bernoulli(r.rate)) return &r;
  }
  return nullptr;
}

FaultPlan& FaultPlan::CutLinks(SimTime time, std::vector<NodeId> src,
                               std::vector<NodeId> dst) {
  LinkFaultRule r;
  r.kind = LinkFaultRule::Kind::kCut;
  r.src = std::move(src);
  r.dst = std::move(dst);
  events.push_back(
      LinkFaultEvent(time, FaultEvent::Kind::kAddLinkFault, std::move(r)));
  return *this;
}

FaultPlan& FaultPlan::HealLinks(SimTime time, std::vector<NodeId> src,
                                std::vector<NodeId> dst) {
  LinkFaultRule r;
  r.src = std::move(src);
  r.dst = std::move(dst);
  events.push_back(
      LinkFaultEvent(time, FaultEvent::Kind::kHealLinks, std::move(r)));
  return *this;
}

FaultPlan& FaultPlan::CorruptLinks(SimTime time, std::vector<NodeId> src,
                                   std::vector<NodeId> dst, double rate) {
  LinkFaultRule r;
  r.kind = LinkFaultRule::Kind::kCorrupt;
  r.src = std::move(src);
  r.dst = std::move(dst);
  r.rate = rate;
  events.push_back(
      LinkFaultEvent(time, FaultEvent::Kind::kAddLinkFault, std::move(r)));
  return *this;
}

FaultPlan& FaultPlan::DuplicateLinks(SimTime time, std::vector<NodeId> src,
                                     std::vector<NodeId> dst, double rate) {
  LinkFaultRule r;
  r.kind = LinkFaultRule::Kind::kDuplicate;
  r.src = std::move(src);
  r.dst = std::move(dst);
  r.rate = rate;
  events.push_back(
      LinkFaultEvent(time, FaultEvent::Kind::kAddLinkFault, std::move(r)));
  return *this;
}

FaultPlan& FaultPlan::DelayLinks(SimTime time, std::vector<NodeId> src,
                                 std::vector<NodeId> dst, double rate,
                                 SimTime extra_delay) {
  LinkFaultRule r;
  r.kind = LinkFaultRule::Kind::kDelay;
  r.src = std::move(src);
  r.dst = std::move(dst);
  r.rate = rate;
  r.extra_delay = extra_delay;
  events.push_back(
      LinkFaultEvent(time, FaultEvent::Kind::kAddLinkFault, std::move(r)));
  return *this;
}

FaultPlan FaultPlan::Churn(const std::vector<NodeId>& nodes,
                           SimTime first_fail, SimTime downtime,
                           SimTime stagger) {
  FaultPlan plan;
  SimTime t = first_fail;
  for (NodeId n : nodes) {
    plan.Fail(t, n);
    if (downtime >= 0) plan.Recover(t + downtime, n);
    t += stagger;
  }
  return plan;
}

FaultPlan& FaultPlan::SlowNode(SimTime time, NodeId node, SimTime stall) {
  FaultEvent ev;
  ev.time = time;
  ev.node = node;
  ev.kind = FaultEvent::Kind::kSlowNode;
  ev.magnitude = stall;
  events.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::MemSqueeze(SimTime time, double factor) {
  FaultEvent ev;
  ev.time = time;
  ev.kind = FaultEvent::Kind::kMemSqueeze;
  // Stored as an integer percentage so fault plans stay exactly
  // serializable in the scenario text format.
  ev.magnitude = static_cast<int64_t>(factor * 100.0 + 0.5);
  events.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::InjectStorm(SimTime time, NodeId node,
                                  const std::string& pred, int64_t count) {
  FaultEvent ev;
  ev.time = time;
  ev.node = node;
  ev.kind = FaultEvent::Kind::kInjectStorm;
  ev.magnitude = count;
  ev.arg = pred;
  events.push_back(std::move(ev));
  return *this;
}

FaultPlan FaultPlan::RebootStorm(const std::vector<NodeId>& nodes,
                                 SimTime first_fail, SimTime downtime,
                                 SimTime stagger, int waves,
                                 SimTime wave_gap) {
  FaultPlan plan;
  for (int w = 0; w < waves; ++w) {
    FaultPlan wave = Churn(nodes, first_fail + wave_gap * w, downtime,
                           stagger);
    plan.events.insert(plan.events.end(), wave.events.begin(),
                       wave.events.end());
  }
  return plan;
}

bool Network::Deliver(NodeId from, NodeId to, Message msg) {
  DEDUCE_CHECK(topology_.AreNeighbors(from, to))
      << "node " << from << " cannot reach non-neighbor " << to;
  if (failed_[static_cast<size_t>(from)]) return false;
  msg.src = from;
  msg.dst = to;
  size_t bytes = msg.WireSize();

  auto& sender = stats_.per_node[static_cast<size_t>(from)];
  ++stats_.sent_by_type[msg.type];

  // Simplified link-layer ARQ: up to 1 + retries attempts, each an
  // independent loss trial and a real transmission (counted and paid for).
  // A dead receiver never acks, so the sender burns every attempt. A cut
  // link looks exactly like a dead receiver to the sender.
  bool receiver_up = !failed_[static_cast<size_t>(to)];
  if (!link_faults_.empty() &&
      MatchLinkFault(LinkFaultRule::Kind::kCut, from, to) != nullptr) {
    receiver_up = false;
    ++stats_.links_cut;
  }
  int attempts = 0;
  bool delivered = false;
  for (int a = 0; a <= link_.retries; ++a) {
    ++attempts;
    if (!(link_.loss_rate > 0 && rng_.Bernoulli(link_.loss_rate)) &&
        receiver_up) {
      delivered = true;
      break;
    }
  }
  sender.sent_messages += static_cast<uint64_t>(attempts);
  sender.sent_bytes += bytes * static_cast<uint64_t>(attempts);
  if (!traces_.empty()) {
    TraceEvent ev;
    ev.time = sim_.now();
    ev.src = from;
    ev.dst = to;
    ev.type = msg.type;
    ev.bytes = bytes;
    ev.attempts = attempts;
    ev.delivered = delivered;
    ev.msg = &msg;
    for (const auto& sink : traces_) sink(ev);
  }
  if (!delivered) {
    ++sender.dropped_messages;
    ++stats_.mac_ack_failures;
    return false;
  }
  SimTime per_attempt =
      link_.base_delay +
      (link_.jitter > 0 ? rng_.Uniform(0, link_.jitter) : 0) +
      link_.per_byte_delay * static_cast<SimTime>(bytes);
  SimTime delay = per_attempt * static_cast<SimTime>(attempts);
  bool duplicate = false;
  if (!link_faults_.empty()) {
    // In-flight corruption: flip 1-3 payload bytes. The receiver still
    // pays for the reception; whether it detects the damage is up to the
    // engine's decoders (see EngineStats::decode_errors).
    if (!msg.payload.empty() &&
        MatchLinkFault(LinkFaultRule::Kind::kCorrupt, from, to) != nullptr) {
      int flips = static_cast<int>(rng_.Uniform(1, 3));
      for (int i = 0; i < flips; ++i) {
        size_t pos = static_cast<size_t>(rng_.Uniform(
            0, static_cast<int64_t>(msg.payload.size()) - 1));
        msg.payload[pos] ^= static_cast<uint8_t>(rng_.Uniform(1, 255));
      }
      ++stats_.corrupted_delivered;
    }
    if (MatchLinkFault(LinkFaultRule::Kind::kDuplicate, from, to) !=
        nullptr) {
      duplicate = true;
      ++stats_.duplicated;
    }
    const LinkFaultRule* slow =
        MatchLinkFault(LinkFaultRule::Kind::kDelay, from, to);
    if (slow != nullptr && slow->extra_delay > 0) {
      delay += rng_.Uniform(0, slow->extra_delay);
      ++stats_.reordered;
    }
  }
  // Straggler receiver (SlowNode): its radio queue drains late. A fixed
  // stall, no RNG draw — runs without stalls stay bit-identical.
  if (stall_[static_cast<size_t>(to)] > 0) {
    delay += stall_[static_cast<size_t>(to)];
    ++stats_.deliveries_stalled;
  }
  auto shared = std::make_shared<Message>(std::move(msg));
  if (batched_delivery_) {
    SimTime at = sim_.now() + delay;
    ScheduleBatched(from, to, at, bytes, shared);
    // A duplicated frame arrives a further hop-delay later — a different
    // tick, so it lands in its own batch.
    if (duplicate) ScheduleBatched(from, to, at + per_attempt, bytes, shared);
    return true;
  }
  auto deliver = [this, to, bytes, shared]() {
    if (failed_[static_cast<size_t>(to)]) return;
    auto& receiver = stats_.per_node[static_cast<size_t>(to)];
    ++receiver.received_messages;
    receiver.received_bytes += bytes;
    apps_[static_cast<size_t>(to)]->OnMessage(
        contexts_[static_cast<size_t>(to)].get(), *shared);
  };
  sim_.ScheduleAfter(delay, deliver);
  // A duplicated frame arrives a further hop-delay later: enough to land
  // behind other traffic and exercise receiver-side dedup.
  if (duplicate) sim_.ScheduleAfter(delay + per_attempt, deliver);
  return true;
}

void Network::ScheduleBatched(NodeId from, NodeId to, SimTime at,
                              size_t bytes, std::shared_ptr<Message> msg) {
  BatchKey key{at, from, to};
  auto it = pending_batches_.find(key);
  if (it != pending_batches_.end()) {
    // An event for this edge+tick is already in the calendar queue; ride it.
    it->second.push_back(PendingFrame{bytes, std::move(msg)});
    ++stats_.frames_coalesced;
    return;
  }
  pending_batches_.emplace(key,
                           std::vector<PendingFrame>{{bytes, std::move(msg)}});
  sim_.ScheduleAt(at, [this, key]() {
    auto node = pending_batches_.extract(key);
    if (node.empty()) return;
    size_t dst = static_cast<size_t>(key.to);
    for (const PendingFrame& f : node.mapped()) {
      if (failed_[dst]) return;
      auto& receiver = stats_.per_node[dst];
      ++receiver.received_messages;
      receiver.received_bytes += f.bytes;
      apps_[dst]->OnMessage(contexts_[dst].get(), *f.msg);
    }
  });
}

}  // namespace deduce
