#ifndef DEDUCE_NET_TOPOLOGY_H_
#define DEDUCE_NET_TOPOLOGY_H_

#include <cmath>
#include <optional>
#include <vector>

#include "deduce/common/rng.h"
#include "deduce/datalog/fact.h"  // NodeId

namespace deduce {

/// Position of a node in the plane (grid coordinates are unit-spaced).
struct Location {
  double x = 0;
  double y = 0;

  double DistanceTo(const Location& o) const {
    double dx = x - o.x;
    double dy = y - o.y;
    return std::sqrt(dx * dx + dy * dy);
  }
};

/// Node placement + unit-disk connectivity. The paper's grid model (§III-A):
/// "a node of unit transmission radius at each location (p, q)"; two nodes
/// communicate iff within the radio range.
class Topology {
 public:
  /// m x m grid with unit spacing; radio range 1 (4-neighborhood). Node id
  /// = q * m + p for column p, row q (0-based).
  static Topology Grid(int m);

  /// Horizontal line of n nodes with unit spacing.
  static Topology Line(int n);

  /// n nodes uniform in [0,width] x [0,height], unit-disk with the given
  /// range. Deterministic from *rng.
  static Topology RandomGeometric(int n, double width, double height,
                                  double range, Rng* rng);

  int node_count() const { return static_cast<int>(locations_.size()); }
  const Location& location(NodeId id) const {
    return locations_[static_cast<size_t>(id)];
  }
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_[static_cast<size_t>(id)];
  }
  double radio_range() const { return range_; }

  bool AreNeighbors(NodeId a, NodeId b) const;

  /// True if the unit-disk graph is connected.
  bool IsConnected() const;

  /// Grid side length when built by Grid(); nullopt otherwise.
  std::optional<int> grid_side() const { return grid_side_; }

  /// Grid helpers (valid for Grid topologies).
  NodeId GridNode(int p, int q) const;
  std::pair<int, int> GridCoord(NodeId id) const;

  /// The node whose location is closest to (x, y) (Euclidean; ties broken
  /// by lower id).
  NodeId ClosestNode(double x, double y) const;

  /// Network diameter in hops (BFS from node 0; -1 if disconnected).
  int DiameterHops() const;

 private:
  void BuildAdjacency();
  void BuildCells();
  size_t CellIndex(int cx, int cy) const {
    return static_cast<size_t>(cy) * static_cast<size_t>(cells_x_) +
           static_cast<size_t>(cx);
  }

  std::vector<Location> locations_;
  std::vector<std::vector<NodeId>> adjacency_;
  double range_ = 1.0;
  std::optional<int> grid_side_;

  /// Spatial bucket grid over the bounding box, cell size = radio range:
  /// adjacency construction scans 3x3 neighborhoods instead of all pairs,
  /// and ClosestNode (the geo-hash home lookup, called per tuple) does an
  /// expanding ring search instead of a linear scan.
  double cell_size_ = 1.0;
  double cells_min_x_ = 0, cells_min_y_ = 0;
  int cells_x_ = 0, cells_y_ = 0;
  std::vector<std::vector<NodeId>> cells_;
};

}  // namespace deduce

#endif  // DEDUCE_NET_TOPOLOGY_H_
