#ifndef DEDUCE_NET_CODEC_H_
#define DEDUCE_NET_CODEC_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/fact.h"
#include "deduce/datalog/term.h"

namespace deduce {

/// Binary writer for message payloads. Every tuple that crosses a hop in
/// the simulator is really serialized through this codec, so the byte
/// counts the benchmarks report reflect actual wire sizes.
///
/// Encoding: varints (zigzag for signed), length-prefixed strings, tagged
/// terms. Symbols travel as strings (a deployment would negotiate a static
/// dictionary at compile time; string form is the conservative upper bound).
class PayloadWriter {
 public:
  void WriteUint(uint64_t v);
  void WriteInt(int64_t v);
  void WriteDouble(double v);
  void WriteBytes(std::string_view bytes);
  void WriteSymbol(SymbolId id);
  void WriteTerm(const Term& term);
  void WriteFact(const Fact& fact);
  void WriteTupleId(const TupleId& id);

  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Binary reader; every Read* validates bounds and tags.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  PayloadReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  StatusOr<uint64_t> ReadUint();
  StatusOr<int64_t> ReadInt();
  StatusOr<double> ReadDouble();
  StatusOr<std::string> ReadBytes();
  StatusOr<SymbolId> ReadSymbol();
  StatusOr<Term> ReadTerm();
  StatusOr<Fact> ReadFact();
  StatusOr<TupleId> ReadTupleId();

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace deduce

#endif  // DEDUCE_NET_CODEC_H_
