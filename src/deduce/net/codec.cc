#include "deduce/net/codec.h"

#include <cstring>

namespace deduce {

namespace {

constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagSymbol = 2;
constexpr uint8_t kTagVariable = 3;
constexpr uint8_t kTagFunction = 4;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

void PayloadWriter::WriteUint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void PayloadWriter::WriteInt(int64_t v) { WriteUint(ZigZag(v)); }

void PayloadWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

void PayloadWriter::WriteBytes(std::string_view bytes) {
  WriteUint(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void PayloadWriter::WriteSymbol(SymbolId id) { WriteBytes(SymbolName(id)); }

void PayloadWriter::WriteTerm(const Term& term) {
  switch (term.kind()) {
    case Term::Kind::kConstant: {
      const Value& v = term.value();
      switch (v.kind()) {
        case Value::Kind::kInt:
          buffer_.push_back(kTagInt);
          WriteInt(v.as_int());
          return;
        case Value::Kind::kDouble:
          buffer_.push_back(kTagDouble);
          WriteDouble(v.as_double());
          return;
        case Value::Kind::kSymbol:
          buffer_.push_back(kTagSymbol);
          WriteSymbol(v.symbol());
          return;
      }
      return;
    }
    case Term::Kind::kVariable:
      buffer_.push_back(kTagVariable);
      WriteSymbol(term.var());
      return;
    case Term::Kind::kFunction:
      buffer_.push_back(kTagFunction);
      WriteSymbol(term.functor());
      WriteUint(term.args().size());
      for (const Term& a : term.args()) WriteTerm(a);
      return;
  }
}

void PayloadWriter::WriteFact(const Fact& fact) {
  WriteSymbol(fact.predicate());
  WriteUint(fact.args().size());
  for (const Term& a : fact.args()) WriteTerm(a);
}

void PayloadWriter::WriteTupleId(const TupleId& id) {
  WriteInt(id.source);
  WriteInt(id.timestamp);
  WriteUint(id.seq);
}

StatusOr<uint64_t> PayloadReader::ReadUint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) {
      return StatusOr<uint64_t>(
          Status::InvalidArgument("truncated varint in payload"));
    }
    uint8_t b = data_[pos_++];
    if (shift >= 64) {
      return StatusOr<uint64_t>(
          Status::InvalidArgument("overlong varint in payload"));
    }
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

StatusOr<int64_t> PayloadReader::ReadInt() {
  DEDUCE_ASSIGN_OR_RETURN(uint64_t v, ReadUint());
  return UnZigZag(v);
}

StatusOr<double> PayloadReader::ReadDouble() {
  if (pos_ + 8 > size_) {
    return StatusOr<double>(
        Status::InvalidArgument("truncated double in payload"));
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
  }
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> PayloadReader::ReadBytes() {
  DEDUCE_ASSIGN_OR_RETURN(uint64_t len, ReadUint());
  if (pos_ + len > size_) {
    return StatusOr<std::string>(
        Status::InvalidArgument("truncated string in payload"));
  }
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

StatusOr<SymbolId> PayloadReader::ReadSymbol() {
  DEDUCE_ASSIGN_OR_RETURN(std::string name, ReadBytes());
  return Intern(name);
}

StatusOr<Term> PayloadReader::ReadTerm() {
  if (pos_ >= size_) {
    return StatusOr<Term>(Status::InvalidArgument("truncated term tag"));
  }
  uint8_t tag = data_[pos_++];
  switch (tag) {
    case kTagInt: {
      DEDUCE_ASSIGN_OR_RETURN(int64_t v, ReadInt());
      return Term::Int(v);
    }
    case kTagDouble: {
      DEDUCE_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Term::Real(v);
    }
    case kTagSymbol: {
      DEDUCE_ASSIGN_OR_RETURN(SymbolId s, ReadSymbol());
      return Term::FromValue(Value::SymbolFromId(s));
    }
    case kTagVariable: {
      DEDUCE_ASSIGN_OR_RETURN(SymbolId s, ReadSymbol());
      return Term::VarFromId(s);
    }
    case kTagFunction: {
      DEDUCE_ASSIGN_OR_RETURN(SymbolId f, ReadSymbol());
      DEDUCE_ASSIGN_OR_RETURN(uint64_t n, ReadUint());
      if (n > remaining()) {
        return StatusOr<Term>(
            Status::InvalidArgument("function arity exceeds payload"));
      }
      std::vector<Term> args;
      args.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DEDUCE_ASSIGN_OR_RETURN(Term a, ReadTerm());
        args.push_back(std::move(a));
      }
      return Term::Function(f, std::move(args));
    }
    default:
      return StatusOr<Term>(
          Status::InvalidArgument("unknown term tag in payload"));
  }
}

StatusOr<Fact> PayloadReader::ReadFact() {
  DEDUCE_ASSIGN_OR_RETURN(SymbolId pred, ReadSymbol());
  DEDUCE_ASSIGN_OR_RETURN(uint64_t n, ReadUint());
  if (n > remaining()) {
    return StatusOr<Fact>(
        Status::InvalidArgument("fact arity exceeds payload"));
  }
  std::vector<Term> args;
  args.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DEDUCE_ASSIGN_OR_RETURN(Term a, ReadTerm());
    if (!a.is_ground()) {
      return StatusOr<Fact>(
          Status::InvalidArgument("non-ground term in serialized fact"));
    }
    args.push_back(std::move(a));
  }
  return Fact(pred, std::move(args));
}

StatusOr<TupleId> PayloadReader::ReadTupleId() {
  TupleId id;
  DEDUCE_ASSIGN_OR_RETURN(int64_t src, ReadInt());
  DEDUCE_ASSIGN_OR_RETURN(int64_t ts, ReadInt());
  DEDUCE_ASSIGN_OR_RETURN(uint64_t seq, ReadUint());
  id.source = static_cast<NodeId>(src);
  id.timestamp = ts;
  id.seq = static_cast<uint32_t>(seq);
  return id;
}

}  // namespace deduce
