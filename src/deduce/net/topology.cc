#include "deduce/net/topology.h"

#include <algorithm>
#include <queue>

#include "deduce/common/logging.h"

namespace deduce {

Topology Topology::Grid(int m) {
  DEDUCE_CHECK(m >= 1);
  Topology t;
  t.range_ = 1.0;
  t.grid_side_ = m;
  t.locations_.reserve(static_cast<size_t>(m) * static_cast<size_t>(m));
  for (int q = 0; q < m; ++q) {
    for (int p = 0; p < m; ++p) {
      t.locations_.push_back(
          Location{static_cast<double>(p), static_cast<double>(q)});
    }
  }
  t.BuildAdjacency();
  return t;
}

Topology Topology::Line(int n) {
  DEDUCE_CHECK(n >= 1);
  Topology t;
  t.range_ = 1.0;
  for (int i = 0; i < n; ++i) {
    t.locations_.push_back(Location{static_cast<double>(i), 0.0});
  }
  t.BuildAdjacency();
  return t;
}

Topology Topology::RandomGeometric(int n, double width, double height,
                                   double range, Rng* rng) {
  DEDUCE_CHECK(n >= 1);
  Topology t;
  t.range_ = range;
  for (int i = 0; i < n; ++i) {
    t.locations_.push_back(Location{rng->UniformDouble(0, width),
                                    rng->UniformDouble(0, height)});
  }
  t.BuildAdjacency();
  return t;
}

void Topology::BuildCells() {
  size_t n = locations_.size();
  cells_.clear();
  cells_x_ = cells_y_ = 0;
  if (n == 0) return;
  double min_x = locations_[0].x, max_x = locations_[0].x;
  double min_y = locations_[0].y, max_y = locations_[0].y;
  for (const Location& l : locations_) {
    min_x = std::min(min_x, l.x);
    max_x = std::max(max_x, l.x);
    min_y = std::min(min_y, l.y);
    max_y = std::max(max_y, l.y);
  }
  cell_size_ = std::max(range_, 1e-9);
  cells_min_x_ = min_x;
  cells_min_y_ = min_y;
  cells_x_ = static_cast<int>((max_x - min_x) / cell_size_) + 1;
  cells_y_ = static_cast<int>((max_y - min_y) / cell_size_) + 1;
  cells_.assign(static_cast<size_t>(cells_x_) * static_cast<size_t>(cells_y_),
                {});
  for (size_t i = 0; i < n; ++i) {
    int cx = std::min(cells_x_ - 1,
                      static_cast<int>((locations_[i].x - min_x) / cell_size_));
    int cy = std::min(cells_y_ - 1,
                      static_cast<int>((locations_[i].y - min_y) / cell_size_));
    cells_[CellIndex(cx, cy)].push_back(static_cast<NodeId>(i));
  }
}

void Topology::BuildAdjacency() {
  const double eps = 1e-9;
  size_t n = locations_.size();
  BuildCells();
  adjacency_.assign(n, {});
  // Cell size >= range, so every neighbor of a node lives in its 3x3 cell
  // neighborhood: O(n * density) instead of all pairs.
  for (size_t i = 0; i < n; ++i) {
    const Location& li = locations_[i];
    int cx = std::min(cells_x_ - 1,
                      static_cast<int>((li.x - cells_min_x_) / cell_size_));
    int cy = std::min(cells_y_ - 1,
                      static_cast<int>((li.y - cells_min_y_) / cell_size_));
    for (int dy = -1; dy <= 1; ++dy) {
      int yy = cy + dy;
      if (yy < 0 || yy >= cells_y_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        int xx = cx + dx;
        if (xx < 0 || xx >= cells_x_) continue;
        for (NodeId j : cells_[CellIndex(xx, yy)]) {
          if (static_cast<size_t>(j) == i) continue;
          if (li.DistanceTo(locations_[static_cast<size_t>(j)]) <=
              range_ + eps) {
            adjacency_[i].push_back(j);
          }
        }
      }
    }
  }
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  const auto& adj = adjacency_[static_cast<size_t>(a)];
  return std::binary_search(adj.begin(), adj.end(), b);
}

bool Topology::IsConnected() const {
  if (locations_.empty()) return true;
  std::vector<bool> seen(locations_.size(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  size_t count = 1;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (NodeId v : adjacency_[static_cast<size_t>(u)]) {
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        ++count;
        q.push(v);
      }
    }
  }
  return count == locations_.size();
}

NodeId Topology::GridNode(int p, int q) const {
  DEDUCE_CHECK(grid_side_.has_value());
  DEDUCE_CHECK(p >= 0 && p < *grid_side_ && q >= 0 && q < *grid_side_);
  return q * *grid_side_ + p;
}

std::pair<int, int> Topology::GridCoord(NodeId id) const {
  DEDUCE_CHECK(grid_side_.has_value());
  int m = *grid_side_;
  return {static_cast<int>(id) % m, static_cast<int>(id) / m};
}

NodeId Topology::ClosestNode(double x, double y) const {
  Location target{x, y};
  if (cells_.empty()) {
    NodeId best = 0;
    double best_d = locations_[0].DistanceTo(target);
    for (size_t i = 1; i < locations_.size(); ++i) {
      double d = locations_[i].DistanceTo(target);
      if (d < best_d) {
        best_d = d;
        best = static_cast<NodeId>(i);
      }
    }
    return best;
  }
  // Expanding ring search over the bucket grid. Equivalent to the linear
  // scan: the running best is kept by (distance, id), matching the linear
  // scan's lowest-id tie-break, and the search only stops once no unscanned
  // cell can hold a strictly closer node.
  int ccx = std::clamp(
      static_cast<int>(std::floor((x - cells_min_x_) / cell_size_)), 0,
      cells_x_ - 1);
  int ccy = std::clamp(
      static_cast<int>(std::floor((y - cells_min_y_) / cell_size_)), 0,
      cells_y_ - 1);
  int k_max = std::max(std::max(ccx, cells_x_ - 1 - ccx),
                       std::max(ccy, cells_y_ - 1 - ccy));
  NodeId best = kNoNode;
  double best_d = 0;
  for (int k = 0; k <= k_max; ++k) {
    for (int yy = ccy - k; yy <= ccy + k; ++yy) {
      if (yy < 0 || yy >= cells_y_) continue;
      bool edge_row = (yy == ccy - k || yy == ccy + k);
      int step = edge_row ? 1 : 2 * k;
      for (int xx = ccx - k; xx <= ccx + k; xx += (step == 0 ? 1 : step)) {
        if (xx < 0 || xx >= cells_x_) continue;
        for (NodeId id : cells_[CellIndex(xx, yy)]) {
          double d = locations_[static_cast<size_t>(id)].DistanceTo(target);
          if (best == kNoNode || d < best_d || (d == best_d && id < best)) {
            best_d = d;
            best = id;
          }
        }
        if (k == 0) break;  // center ring is a single cell
      }
    }
    if (best != kNoNode) {
      // Everything not yet scanned lies outside the box covered by rings
      // 0..k; stop once the best candidate beats the closest possible
      // unscanned point.
      double left = cells_min_x_ + static_cast<double>(ccx - k) * cell_size_;
      double right =
          cells_min_x_ + static_cast<double>(ccx + k + 1) * cell_size_;
      double bottom = cells_min_y_ + static_cast<double>(ccy - k) * cell_size_;
      double top = cells_min_y_ + static_cast<double>(ccy + k + 1) * cell_size_;
      double margin = std::min(std::min(x - left, right - x),
                               std::min(y - bottom, top - y));
      if (best_d < margin) break;
    }
  }
  return best;
}

int Topology::DiameterHops() const {
  // Eccentricity from BFS over all sources would be O(n^2); for our network
  // sizes that is fine and exact.
  int n = node_count();
  int diameter = 0;
  for (int s = 0; s < n; ++s) {
    std::vector<int> dist(static_cast<size_t>(n), -1);
    std::queue<NodeId> q;
    dist[static_cast<size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      for (NodeId v : adjacency_[static_cast<size_t>(u)]) {
        if (dist[static_cast<size_t>(v)] == -1) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
          q.push(v);
        }
      }
    }
    for (int d : dist) {
      if (d == -1) return -1;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

}  // namespace deduce
