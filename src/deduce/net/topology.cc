#include "deduce/net/topology.h"

#include <algorithm>
#include <queue>

#include "deduce/common/logging.h"

namespace deduce {

Topology Topology::Grid(int m) {
  DEDUCE_CHECK(m >= 1);
  Topology t;
  t.range_ = 1.0;
  t.grid_side_ = m;
  t.locations_.reserve(static_cast<size_t>(m) * static_cast<size_t>(m));
  for (int q = 0; q < m; ++q) {
    for (int p = 0; p < m; ++p) {
      t.locations_.push_back(
          Location{static_cast<double>(p), static_cast<double>(q)});
    }
  }
  t.BuildAdjacency();
  return t;
}

Topology Topology::Line(int n) {
  DEDUCE_CHECK(n >= 1);
  Topology t;
  t.range_ = 1.0;
  for (int i = 0; i < n; ++i) {
    t.locations_.push_back(Location{static_cast<double>(i), 0.0});
  }
  t.BuildAdjacency();
  return t;
}

Topology Topology::RandomGeometric(int n, double width, double height,
                                   double range, Rng* rng) {
  DEDUCE_CHECK(n >= 1);
  Topology t;
  t.range_ = range;
  for (int i = 0; i < n; ++i) {
    t.locations_.push_back(Location{rng->UniformDouble(0, width),
                                    rng->UniformDouble(0, height)});
  }
  t.BuildAdjacency();
  return t;
}

void Topology::BuildAdjacency() {
  const double eps = 1e-9;
  size_t n = locations_.size();
  adjacency_.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (locations_[i].DistanceTo(locations_[j]) <= range_ + eps) {
        adjacency_[i].push_back(static_cast<NodeId>(j));
        adjacency_[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  const auto& adj = adjacency_[static_cast<size_t>(a)];
  return std::binary_search(adj.begin(), adj.end(), b);
}

bool Topology::IsConnected() const {
  if (locations_.empty()) return true;
  std::vector<bool> seen(locations_.size(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  size_t count = 1;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (NodeId v : adjacency_[static_cast<size_t>(u)]) {
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        ++count;
        q.push(v);
      }
    }
  }
  return count == locations_.size();
}

NodeId Topology::GridNode(int p, int q) const {
  DEDUCE_CHECK(grid_side_.has_value());
  DEDUCE_CHECK(p >= 0 && p < *grid_side_ && q >= 0 && q < *grid_side_);
  return q * *grid_side_ + p;
}

std::pair<int, int> Topology::GridCoord(NodeId id) const {
  DEDUCE_CHECK(grid_side_.has_value());
  int m = *grid_side_;
  return {static_cast<int>(id) % m, static_cast<int>(id) / m};
}

NodeId Topology::ClosestNode(double x, double y) const {
  Location target{x, y};
  NodeId best = 0;
  double best_d = locations_[0].DistanceTo(target);
  for (size_t i = 1; i < locations_.size(); ++i) {
    double d = locations_[i].DistanceTo(target);
    if (d < best_d) {
      best_d = d;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

int Topology::DiameterHops() const {
  // Eccentricity from BFS over all sources would be O(n^2); for our network
  // sizes that is fine and exact.
  int n = node_count();
  int diameter = 0;
  for (int s = 0; s < n; ++s) {
    std::vector<int> dist(static_cast<size_t>(n), -1);
    std::queue<NodeId> q;
    dist[static_cast<size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      for (NodeId v : adjacency_[static_cast<size_t>(u)]) {
        if (dist[static_cast<size_t>(v)] == -1) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
          q.push(v);
        }
      }
    }
    for (int d : dist) {
      if (d == -1) return -1;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

}  // namespace deduce
