#include "deduce/net/simulator.h"

#include "deduce/common/logging.h"

namespace deduce {

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  DEDUCE_CHECK(t >= now_) << "cannot schedule in the past: " << t << " < "
                          << now_;
  queue_.push(Event{t, seq_++, std::move(fn)});
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  return executed;
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace deduce
