#include "deduce/net/simulator.h"

#include <algorithm>
#include <limits>

#include "deduce/common/logging.h"

namespace deduce {

namespace {
constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();
}  // namespace

Simulator::Simulator() : slots_(kNumSlots) {}

void Simulator::ScheduleAt(SimTime t, EventFn fn) {
  DEDUCE_CHECK(t >= now_) << "cannot schedule in the past: " << t << " < "
                          << now_;
  uint64_t slot = SlotOf(t);
  if (slot <= cursor_slot_) {
    // The slot being drained (or, after RunUntil advanced past empty
    // slots, an earlier one). Everything in the ring and overflow is in a
    // strictly later slot, so the active arrays alone order it correctly.
    InsertActive(Event{t, seq_++, std::move(fn)});
  } else if (slot < cursor_slot_ + kNumSlots) {
    size_t index = slot & kSlotMask;
    // Construct in place (C++20 parenthesized aggregate init): the event
    // is built directly in the bucket instead of moved into it.
    slots_[index].emplace_back(t, seq_++, std::move(fn));
    MarkSlot(index);
    ++ring_pending_;
  } else {
    overflow_.emplace_back(t, seq_++, std::move(fn));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void Simulator::InsertActive(Event ev) {
  Key key{ev.time, ev.seq,
          static_cast<uint32_t>(active_extra_.size()) | kExtraBit};
  active_extra_.push_back(std::move(ev));
  // New events always have the highest seq, so among equal times the
  // insertion point lands after existing keys — preserving insertion
  // order. Keys before active_pos_ have already fired and stay put.
  auto it = std::lower_bound(active_keys_.begin() +
                                 static_cast<ptrdiff_t>(active_pos_),
                             active_keys_.end(), key, KeyBefore{});
  active_keys_.insert(it, key);
}

void Simulator::Fire(Key key) {
  now_ = key.time;
  if (key.idx & kExtraBit) {
    // Extras can reallocate while one of their own callbacks schedules
    // more work, so move the callback out before invoking.
    EventFn fn = std::move(active_extra_[key.idx & ~kExtraBit].fn);
    fn();
  } else {
    // The engaged bucket is frozen during the drain: invoke in place.
    active_events_[key.idx].fn();
  }
}

uint64_t Simulator::NextRingSlot() const {
  if (ring_pending_ == 0) return UINT64_MAX;
  // Scan the ring in slot order starting after the cursor, skipping whole
  // 64-slot words that are empty.
  for (size_t i = 1; i <= kNumSlots; ++i) {
    size_t index = (cursor_slot_ + i) & kSlotMask;
    if ((index & 63) == 0 && bitmap_[index >> 6] == 0 &&
        i + 63 <= kNumSlots) {
      i += 63;
      continue;
    }
    if (bitmap_[index >> 6] & (uint64_t{1} << (index & 63))) {
      return cursor_slot_ + i;
    }
  }
  return UINT64_MAX;  // unreachable while ring_pending_ > 0
}

bool Simulator::EngageNext(SimTime deadline) {
  for (;;) {
    if (active_pos_ < active_keys_.size()) {
      return active_keys_[active_pos_].time <= deadline;
    }
    uint64_t ring_slot = NextRingSlot();
    uint64_t overflow_slot =
        overflow_.empty() ? UINT64_MAX : SlotOf(overflow_.front().time);
    uint64_t target = std::min(ring_slot, overflow_slot);
    if (target == UINT64_MAX) return false;            // queue empty
    if (target > SlotOf(deadline)) return false;       // next event too late
    cursor_slot_ = target;
    size_t index = target & kSlotMask;
    // Swap the drained active storage with the target bucket: the bucket's
    // events become the engaged slot, and the old active vector (capacity
    // intact) becomes the bucket's empty storage — no allocation churn.
    active_events_.clear();
    active_extra_.clear();
    active_keys_.clear();
    active_pos_ = 0;
    std::swap(active_events_, slots_[index]);
    ring_pending_ -= active_events_.size();
    ClearSlot(index);
    while (!overflow_.empty() && SlotOf(overflow_.front().time) <= target) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      active_events_.push_back(std::move(overflow_.back()));
      overflow_.pop_back();
    }
    for (size_t i = 0; i < active_events_.size(); ++i) {
      active_keys_.push_back({active_events_[i].time, active_events_[i].seq,
                              static_cast<uint32_t>(i)});
    }
    std::sort(active_keys_.begin(), active_keys_.end(), KeyBefore{});
  }
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t executed = 0;
  while (executed < max_events && EngageNext(kNoDeadline)) {
    Fire(active_keys_[active_pos_++]);
    ++executed;
  }
  return executed;
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  uint64_t executed = 0;
  while (EngageNext(deadline)) {
    Fire(active_keys_[active_pos_++]);
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace deduce
