#ifndef DEDUCE_NET_NETWORK_H_
#define DEDUCE_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "deduce/common/hash.h"
#include "deduce/common/rng.h"
#include "deduce/net/simulator.h"
#include "deduce/net/topology.h"

namespace deduce {

class MetricsRegistry;

/// A single-hop radio message. `type` is application-defined; the payload
/// is opaque bytes (see codec.h).
struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  uint16_t type = 0;
  std::vector<uint8_t> payload;

  /// Bytes on the wire: payload + a fixed link header (src, dst, type,
  /// length — 8 bytes, in the ballpark of an 802.15.4 compressed header).
  static constexpr size_t kHeaderBytes = 8;
  size_t WireSize() const { return payload.size() + kHeaderBytes; }
};

/// Link-layer model: per-hop delays, per-byte transmission time, loss.
struct LinkModel {
  SimTime base_delay = 2'000;       ///< Fixed per-hop latency (2 ms).
  SimTime jitter = 1'000;           ///< Uniform extra delay in [0, jitter].
  SimTime per_byte_delay = 32;      ///< ~250 kbps: 32 us per byte.
  double loss_rate = 0.0;           ///< Probability a unicast hop is lost.
  /// Link-layer retransmissions per hop (simplified ARQ): each attempt is
  /// an independent loss trial and costs a message; delivery fails only if
  /// all 1 + retries attempts are lost. Real mote MACs retry 3-5 times.
  int retries = 0;
  SimTime max_clock_skew = 0;       ///< τ_c: node clocks differ by <= this.

  /// Upper bound on one hop's delay for a message of `bytes` bytes
  /// (including worst-case retransmissions).
  SimTime MaxHopDelay(size_t bytes) const {
    return (base_delay + jitter +
            per_byte_delay * static_cast<SimTime>(bytes)) *
           static_cast<SimTime>(1 + retries);
  }

  /// A "testbed" profile (§VI substitution): lossy, jittery, skewed.
  static LinkModel Testbed() {
    LinkModel m;
    m.base_delay = 3'000;
    m.jitter = 4'000;
    m.per_byte_delay = 40;
    m.loss_rate = 0.05;
    m.retries = 2;
    m.max_clock_skew = 2'000;
    return m;
  }
};

/// Per-node and global traffic counters; the currency of every benchmark.
struct NetworkStats {
  struct PerNode {
    uint64_t sent_messages = 0;
    uint64_t sent_bytes = 0;
    uint64_t received_messages = 0;
    uint64_t received_bytes = 0;
    uint64_t dropped_messages = 0;
  };
  std::vector<PerNode> per_node;
  std::unordered_map<uint16_t, uint64_t> sent_by_type;

  /// Unicasts whose every link-layer attempt was lost (or whose receiver
  /// was dead): the sender saw no MAC ack. Zero in a loss-free,
  /// failure-free run.
  uint64_t mac_ack_failures = 0;
  /// Fault-injection events applied (FailNode / RecoverNode).
  uint64_t nodes_failed = 0;
  uint64_t nodes_recovered = 0;
  /// Chaos (link-fault) counters. Zero unless a LinkFaultRule is active.
  uint64_t links_cut = 0;            ///< Unicasts suppressed by a cut rule.
  uint64_t corrupted_delivered = 0;  ///< Payloads byte-flipped in flight.
  uint64_t duplicated = 0;           ///< Extra deliveries of one unicast.
  uint64_t reordered = 0;            ///< Deliveries given extra delay jitter.
  /// Frames appended to an already-scheduled same-edge same-tick batch
  /// (i.e. event-queue entries saved). Zero unless batched delivery is on.
  uint64_t frames_coalesced = 0;
  /// Deliveries given extra latency because the receiver is a SlowNode
  /// straggler (overload chaos axis). Zero unless a stall is active.
  uint64_t deliveries_stalled = 0;

  uint64_t TotalMessages() const;
  uint64_t TotalBytes() const;
  uint64_t MaxNodeMessages() const;
  /// Simple radio energy proxy in microjoules: tx + rx cost per byte
  /// (CC2420-like constants).
  double TotalEnergyMicroJ() const;

  /// Mirrors these counters into `registry` under the "net" component
  /// (per-node sent/received/dropped, global totals and fault counters),
  /// making the registry the single snapshot the tools serialize. No-op
  /// when `registry` is null or disabled.
  void ExportTo(MetricsRegistry* registry) const;
};

class Network;

/// One transmission record for offline analysis/visualization (see
/// Network::SetTraceSink and `dlog simulate --trace`).
struct TraceEvent {
  SimTime time = 0;      ///< Global send time.
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  uint16_t type = 0;     ///< Message type (EngineMsgType or app-defined).
  size_t bytes = 0;      ///< Wire size per attempt.
  int attempts = 1;      ///< Link-layer transmissions used.
  bool delivered = true;
  /// The full message, for sinks that decode payloads (e.g. the engine's
  /// phase/predicate attribution). Valid only for the duration of the sink
  /// callback — never retain the pointer.
  const Message* msg = nullptr;
};

/// The API surface a node application sees: identity, neighbors, local
/// clock, messaging and timers. Handed to every NodeApp callback.
class NodeContext {
 public:
  NodeContext(Network* network, NodeId id) : network_(network), id_(id) {}

  NodeId id() const { return id_; }
  const Location& location() const;
  const std::vector<NodeId>& neighbors() const;
  const Topology& topology() const;

  /// Node-local clock (global time + this node's fixed skew).
  SimTime LocalTime() const;

  /// Sends to a direct neighbor; non-neighbors are a programming error.
  /// Returns the link-layer (MAC) acknowledgement: true iff some attempt
  /// reached a live receiver. Real mote MACs (802.15.4) expose exactly
  /// this bit; callers that predate it may ignore the result.
  bool Send(NodeId to, Message msg);

  /// Schedules OnTimer(timer_id) after `delay` (local == global duration).
  void SetTimer(SimTime delay, int timer_id);

  /// Node-private deterministic RNG.
  Rng& rng();

 private:
  Network* network_;
  NodeId id_;
};

/// A node application: the distributed engine's per-node runtime implements
/// this (engine/runtime.h), as do the procedural baselines.
class NodeApp {
 public:
  virtual ~NodeApp() = default;
  /// Called once at simulation start.
  virtual void Start(NodeContext* ctx) { (void)ctx; }
  /// Called for each delivered message.
  virtual void OnMessage(NodeContext* ctx, const Message& msg) = 0;
  /// Called for timers set via NodeContext::SetTimer.
  virtual void OnTimer(NodeContext* ctx, int timer_id) {
    (void)ctx;
    (void)timer_id;
  }
  /// Called when the node reboots after a crash (Network::RecoverNode).
  /// Volatile state must be treated as lost; pending timers from the
  /// previous incarnation never fire.
  virtual void OnRestart(NodeContext* ctx) { (void)ctx; }
};

/// A directed link-level fault rule: applies to unicasts whose sender is in
/// `src` and receiver is in `dst` (an empty set matches every node). Rules
/// are intentionally asymmetric — cutting A→B leaves B→A intact — matching
/// the formal sensor-network models where radio links are directed.
struct LinkFaultRule {
  enum class Kind {
    kCut,        ///< Suppress delivery (no MAC ack ever reaches the sender).
    kCorrupt,    ///< Flip 1-3 payload bytes before delivery.
    kDuplicate,  ///< Deliver a second copy after an extra hop delay.
    kDelay,      ///< Add uniform extra delay in [0, extra_delay] (reorders).
  };
  Kind kind = Kind::kCut;
  std::vector<NodeId> src;   ///< Senders the rule matches; empty = any.
  std::vector<NodeId> dst;   ///< Receivers the rule matches; empty = any.
  double rate = 1.0;         ///< Probability the rule fires per message.
  SimTime extra_delay = 0;   ///< kDelay only: max extra latency (us).
};

/// One scheduled fault-injection event. `kFail`/`kRecover` use `node`;
/// the link-fault kinds carry a LinkFaultRule installed (or, for
/// kHealLinks, removed) at `time`. The overload axes use `magnitude`
/// (kSlowNode: stall in us, 0 clears; kMemSqueeze: percent of each budget
/// cap kept, e.g. 50 halves; kInjectStorm: burst tuple count) and `arg`
/// (kInjectStorm: target predicate name) — kMemSqueeze and kInjectStorm
/// are not handled by the network itself but dispatched to fault hooks /
/// expanded by the scenario harness.
struct FaultEvent {
  enum class Kind {
    kFail,
    kRecover,
    kAddLinkFault,
    kHealLinks,
    kSlowNode,
    kMemSqueeze,
    kInjectStorm,
  };
  SimTime time = 0;
  NodeId node = kNoNode;
  Kind kind = Kind::kFail;
  LinkFaultRule rule;  ///< kAddLinkFault: rule to install; kHealLinks:
                       ///< src/dst sets whose rules (all kinds) to remove.
  int64_t magnitude = 0;  ///< Overload axes; see kind docs above.
  std::string arg;        ///< kInjectStorm: predicate name.
};

/// A deterministic schedule of fault events driven by the simulator
/// (crash-reboot churn, partitions, corruption, duplication, delay
/// jitter). Apply with Network::ApplyFaultPlan before (or while) running.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& Fail(SimTime time, NodeId node) {
    FaultEvent ev;
    ev.time = time;
    ev.node = node;
    ev.kind = FaultEvent::Kind::kFail;
    events.push_back(std::move(ev));
    return *this;
  }
  FaultPlan& Recover(SimTime time, NodeId node) {
    FaultEvent ev;
    ev.time = time;
    ev.node = node;
    ev.kind = FaultEvent::Kind::kRecover;
    events.push_back(std::move(ev));
    return *this;
  }
  /// Cuts every link from a node in `src` to a node in `dst` (directed;
  /// empty set = all nodes). Cut both directions with two calls.
  FaultPlan& CutLinks(SimTime time, std::vector<NodeId> src,
                      std::vector<NodeId> dst);
  /// Removes every link-fault rule (any kind) whose src/dst sets equal
  /// these, restoring normal delivery.
  FaultPlan& HealLinks(SimTime time, std::vector<NodeId> src,
                       std::vector<NodeId> dst);
  /// Byte-flips payloads on matching links with probability `rate`.
  FaultPlan& CorruptLinks(SimTime time, std::vector<NodeId> src,
                          std::vector<NodeId> dst, double rate);
  /// Duplicates delivered unicasts on matching links with probability
  /// `rate`.
  FaultPlan& DuplicateLinks(SimTime time, std::vector<NodeId> src,
                            std::vector<NodeId> dst, double rate);
  /// Adds uniform extra delay in [0, extra_delay] to matching deliveries
  /// with probability `rate` (bounded reordering).
  FaultPlan& DelayLinks(SimTime time, std::vector<NodeId> src,
                        std::vector<NodeId> dst, double rate,
                        SimTime extra_delay);
  /// Crash-reboot churn: node i of `nodes` fails at
  /// `first_fail + i * stagger` and reboots `downtime` later
  /// (downtime < 0: never).
  static FaultPlan Churn(const std::vector<NodeId>& nodes, SimTime first_fail,
                         SimTime downtime, SimTime stagger);
  /// Reboot storm: `waves` successive churn rounds over the same nodes,
  /// each wave starting `wave_gap` after the previous one began.
  static FaultPlan RebootStorm(const std::vector<NodeId>& nodes,
                               SimTime first_fail, SimTime downtime,
                               SimTime stagger, int waves, SimTime wave_gap);
  /// Straggler: every delivery INTO `node` gets `stall` extra latency from
  /// `time` on (stall = 0 restores normal speed). Models a node whose CPU
  /// is saturated — packets queue at its radio.
  FaultPlan& SlowNode(SimTime time, NodeId node, SimTime stall);
  /// Shrinks every enabled budget cap to `factor` (0 < factor <= 1) of its
  /// current value at `time`, via the engine's fault hook. No-op when
  /// budgets are off.
  FaultPlan& MemSqueeze(SimTime time, double factor);
  /// Burst injection flood: the scenario harness expands this into `count`
  /// deterministic insertions of predicate `pred` at `node` starting at
  /// `time` (see engine/scenario.h). The network dispatches it to fault
  /// hooks only; outside the harness it is inert.
  FaultPlan& InjectStorm(SimTime time, NodeId node, const std::string& pred,
                         int64_t count);
};

/// The simulated sensor network: topology + link model + per-node apps,
/// driven by a Simulator. This is the repo's TOSSIM substitute (see
/// DESIGN.md §2): it exposes exactly the knobs the paper's correctness
/// arguments use — bounded per-hop delay, bounded clock skew, loss — and
/// measures what §VI reports (per-node message/byte counts).
class Network {
 public:
  Network(Topology topology, LinkModel link, uint64_t seed);

  /// Installs the app for a node (before Start()).
  void SetApp(NodeId id, std::unique_ptr<NodeApp> app);

  /// Calls Start() on every app (as a time-0 event per node).
  void Start();

  Simulator& sim() { return sim_; }
  SimTime now() const { return sim_.now(); }
  const Topology& topology() const { return topology_; }
  const LinkModel& link() const { return link_; }
  int node_count() const { return topology_.node_count(); }

  NodeContext& context(NodeId id) {
    return *contexts_[static_cast<size_t>(id)];
  }
  NodeApp* app(NodeId id) { return apps_[static_cast<size_t>(id)].get(); }

  const NetworkStats& stats() const { return stats_; }
  SimTime clock_skew(NodeId id) const {
    return skews_[static_cast<size_t>(id)];
  }

  /// Replaces all trace sinks with `sink` (nullptr clears). Sinks are
  /// invoked for every transmission (send time, hop endpoints, type, size,
  /// ARQ attempts, delivery outcome).
  void SetTraceSink(std::function<void(const TraceEvent&)> sink) {
    traces_.clear();
    if (sink) traces_.push_back(std::move(sink));
  }

  /// Adds a sink alongside any already installed (the engine's JSONL trace
  /// and a tool's CSV trace can observe the same run).
  void AddTraceSink(std::function<void(const TraceEvent&)> sink) {
    if (sink) traces_.push_back(std::move(sink));
  }

  /// Registers a callback invoked when a fault event the network does not
  /// handle natively fires (currently kMemSqueeze and kInjectStorm). Lets
  /// the engine react to fault-plan events without the network knowing
  /// engine types. Hooks run at the event's scheduled time, in
  /// registration order.
  void AddFaultHook(std::function<void(const FaultEvent&)> hook) {
    if (hook) fault_hooks_.push_back(std::move(hook));
  }

  /// Sets the per-delivery stall for `node` (kSlowNode; 0 clears).
  void SetNodeStall(NodeId id, SimTime stall);
  SimTime node_stall(NodeId id) const {
    return stall_[static_cast<size_t>(id)];
  }

  /// Kills a node: it stops receiving and sending (fault injection).
  /// Timers scheduled before the crash never fire, even after recovery
  /// (volatile state is lost with the incarnation).
  void FailNode(NodeId id);
  /// Reboots a failed node: it resumes receiving and sending with a fresh
  /// incarnation. The app's OnRestart runs so it can drop volatile state.
  void RecoverNode(NodeId id);
  bool IsFailed(NodeId id) const { return failed_[static_cast<size_t>(id)]; }
  /// Incremented on every FailNode; stale timers check it.
  uint64_t incarnation(NodeId id) const {
    return incarnations_[static_cast<size_t>(id)];
  }

  /// Schedules every event of `plan` on the simulator.
  void ApplyFaultPlan(const FaultPlan& plan);

  /// Installs a link-fault rule, effective immediately. Rules are
  /// consulted in insertion order on every unicast; with no rules active
  /// the delivery path draws no extra randomness, so fault-free runs are
  /// bit-identical to pre-chaos builds.
  void AddLinkFault(LinkFaultRule rule);
  /// Removes every rule (any kind) whose src/dst sets equal these.
  void HealLinks(const std::vector<NodeId>& src,
                 const std::vector<NodeId>& dst);
  const std::vector<LinkFaultRule>& link_faults() const {
    return link_faults_;
  }

  /// Opt-in delivery batching for large-scale runs: frames crossing the same
  /// directed edge that land on the same simulator tick are coalesced into
  /// ONE scheduled event that hands them to the receiver back to back. Every
  /// RNG draw (loss trials, chaos faults), every counter, and every trace
  /// record stays per-frame at send time — only the number of calendar-queue
  /// entries shrinks. Coalescing runs a batch at the queue position of its
  /// FIRST frame, which can reorder deliveries relative to other events on
  /// the same tick, so this is off by default: corpus scenario replays and
  /// committed baselines stay byte-identical. bench_scale turns it on.
  void EnableBatchedDelivery(bool on) { batched_delivery_ = on; }
  bool batched_delivery() const { return batched_delivery_; }

 private:
  friend class NodeContext;

  bool Deliver(NodeId from, NodeId to, Message msg);
  /// First active rule of `kind` matching from→to that passes its rate
  /// trial (a Bernoulli draw only for rules with rate < 1).
  const LinkFaultRule* MatchLinkFault(LinkFaultRule::Kind kind, NodeId from,
                                      NodeId to);

  /// One directed edge at one delivery instant — the coalescing unit.
  struct BatchKey {
    SimTime time = 0;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    bool operator==(const BatchKey& o) const {
      return time == o.time && from == o.from && to == o.to;
    }
  };
  struct BatchKeyHash {
    size_t operator()(const BatchKey& k) const {
      size_t h = Mix64(static_cast<uint64_t>(k.time));
      return HashCombine(
          h, Mix64((static_cast<uint64_t>(static_cast<uint32_t>(k.from))
                    << 32) |
                   static_cast<uint32_t>(k.to)));
    }
  };
  struct PendingFrame {
    size_t bytes = 0;
    std::shared_ptr<Message> msg;
  };
  void ScheduleBatched(NodeId from, NodeId to, SimTime at, size_t bytes,
                       std::shared_ptr<Message> msg);

  Topology topology_;
  LinkModel link_;
  Simulator sim_;
  Rng rng_;
  std::vector<std::unique_ptr<NodeApp>> apps_;
  std::vector<std::unique_ptr<NodeContext>> contexts_;
  std::vector<std::unique_ptr<Rng>> node_rngs_;
  std::vector<SimTime> skews_;
  std::vector<bool> failed_;
  std::vector<uint64_t> incarnations_;
  NetworkStats stats_;
  std::vector<LinkFaultRule> link_faults_;
  std::vector<SimTime> stall_;  ///< Per-node delivery stall (kSlowNode).
  std::vector<std::function<void(const TraceEvent&)>> traces_;
  std::vector<std::function<void(const FaultEvent&)>> fault_hooks_;
  bool batched_delivery_ = false;
  std::unordered_map<BatchKey, std::vector<PendingFrame>, BatchKeyHash>
      pending_batches_;
};

}  // namespace deduce

#endif  // DEDUCE_NET_NETWORK_H_
