#ifndef DEDUCE_BASELINES_PROCEDURAL_SPT_H_
#define DEDUCE_BASELINES_PROCEDURAL_SPT_H_

#include <vector>

#include "deduce/net/network.h"

namespace deduce {

/// Hand-written distributed shortest-path-tree construction — the
/// procedural baseline the paper compares the compiled logicH/logicJ
/// programs against (§II-B Example 3: "the 20 lines of procedural code
/// written in Kairos").
///
/// Classic asynchronous BFS/Bellman-Ford: the root announces distance 0;
/// every node keeps its best known distance and re-announces improvements
/// to its neighbors. The communication pattern (one announcement per
/// improvement per neighborhood) is what a competent systems programmer
/// would write by hand; the benchmark measures how close the compiled
/// deductive program comes.
class ProceduralSptApp : public NodeApp {
 public:
  ProceduralSptApp(NodeId root, SimTime announce_delay = 5'000)
      : root_(root), announce_delay_(announce_delay) {}

  void Start(NodeContext* ctx) override;
  void OnMessage(NodeContext* ctx, const Message& msg) override;
  void OnTimer(NodeContext* ctx, int timer_id) override;

  /// Best distance found (-1 = unreached) and tree parent.
  int distance() const { return distance_; }
  NodeId parent() const { return parent_; }

 private:
  void Announce(NodeContext* ctx);

  NodeId root_;
  SimTime announce_delay_;
  int distance_ = -1;
  NodeId parent_ = kNoNode;
  bool announce_pending_ = false;
};

/// Result of a procedural SPT run.
struct ProceduralSptResult {
  std::vector<int> distance;    ///< Per node; -1 unreached.
  std::vector<NodeId> parent;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
};

/// Runs the protocol to quiescence on a fresh app set over `network`
/// (which must not have apps installed yet).
ProceduralSptResult RunProceduralSpt(Network* network, NodeId root);

}  // namespace deduce

#endif  // DEDUCE_BASELINES_PROCEDURAL_SPT_H_
