#include "deduce/baselines/procedural_spt.h"

#include "deduce/net/codec.h"

namespace deduce {

namespace {
constexpr uint16_t kAnnounceMsg = 100;
constexpr int kAnnounceTimer = 1;
}  // namespace

void ProceduralSptApp::Start(NodeContext* ctx) {
  if (ctx->id() == root_) {
    distance_ = 0;
    parent_ = root_;
    Announce(ctx);
  }
}

void ProceduralSptApp::Announce(NodeContext* ctx) {
  if (announce_pending_) return;
  announce_pending_ = true;
  // Small randomized delay batches bursts of improvements (standard
  // suppression trick; also what TinyOS code does to avoid collisions).
  ctx->SetTimer(announce_delay_ + ctx->rng().Uniform(0, announce_delay_),
                kAnnounceTimer);
}

void ProceduralSptApp::OnTimer(NodeContext* ctx, int timer_id) {
  if (timer_id != kAnnounceTimer) return;
  announce_pending_ = false;
  PayloadWriter w;
  w.WriteInt(distance_);
  Message m;
  m.type = kAnnounceMsg;
  m.payload = w.Take();
  for (NodeId v : ctx->neighbors()) ctx->Send(v, m);
}

void ProceduralSptApp::OnMessage(NodeContext* ctx, const Message& msg) {
  if (msg.type != kAnnounceMsg) return;
  PayloadReader r(msg.payload);
  StatusOr<int64_t> d = r.ReadInt();
  if (!d.ok()) return;
  int candidate = static_cast<int>(*d) + 1;
  if (distance_ == -1 || candidate < distance_) {
    distance_ = candidate;
    parent_ = msg.src;
    Announce(ctx);
  }
}

ProceduralSptResult RunProceduralSpt(Network* network, NodeId root) {
  std::vector<ProceduralSptApp*> apps;
  for (int i = 0; i < network->node_count(); ++i) {
    auto app = std::make_unique<ProceduralSptApp>(root);
    apps.push_back(app.get());
    network->SetApp(i, std::move(app));
  }
  network->Start();
  network->sim().Run();

  ProceduralSptResult out;
  for (ProceduralSptApp* app : apps) {
    out.distance.push_back(app->distance());
    out.parent.push_back(app->parent());
  }
  out.total_messages = network->stats().TotalMessages();
  out.total_bytes = network->stats().TotalBytes();
  return out;
}

}  // namespace deduce
