#ifndef DEDUCE_ENGINE_RUNTIME_H_
#define DEDUCE_ENGINE_RUNTIME_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "deduce/common/logging.h"
#include "deduce/common/metrics.h"
#include "deduce/common/trace.h"
#include "deduce/datalog/unify.h"
#include "deduce/engine/plan.h"
#include "deduce/engine/provenance.h"
#include "deduce/engine/regions.h"
#include "deduce/engine/repair.h"
#include "deduce/engine/wire.h"
#include "deduce/eval/incremental.h"  // Derivation
#include "deduce/routing/geo_hash.h"
#include "deduce/routing/routing.h"

namespace deduce {

/// Engine-level counters, shared by all node runtimes (single-process
/// simulation; the distributed system would aggregate these offline).
struct EngineStats {
  uint64_t tuples_injected = 0;
  uint64_t join_passes = 0;
  uint64_t pass_messages = 0;
  uint64_t results_emitted = 0;
  uint64_t derivations_added = 0;
  uint64_t derivations_removed = 0;
  uint64_t derived_generations = 0;
  uint64_t derived_deletions = 0;
  uint64_t replicas_stored = 0;
  uint64_t max_partials_in_message = 0;

  // --- fault-tolerance counters (reliable transport + repair). All of
  //     these except the ack counters are exactly zero in a loss-free,
  //     failure-free run; the ack counters are zero unless the transport
  //     is enabled. ---
  /// Envelope retransmissions after an RTO expiry.
  uint64_t retransmissions = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;
  /// Envelopes received more than once (a retransmit raced a lost ack).
  uint64_t duplicates_suppressed = 0;
  /// Envelopes abandoned after the retry budget ran out; the destination
  /// becomes suspected-down.
  uint64_t gave_up_messages = 0;
  /// Hops chosen differently from plain geo routing to detour around
  /// suspected-down nodes.
  uint64_t rerouted_hops = 0;
  /// Sweep-path nodes skipped or replaced because they were suspected down.
  uint64_t skipped_sweep_nodes = 0;
  /// Storage-walk nodes skipped because they were suspected down.
  uint64_t skipped_store_nodes = 0;
  /// Given-up messages salvaged by path repair (sweep or storage walk).
  uint64_t repaired_messages = 0;
  /// Frames dropped because they failed to decode (or failed the optional
  /// end-to-end checksum): truncated, bit-flipped or unknown-type payloads.
  /// Zero unless the network corrupts traffic; a malformed frame is
  /// counted and discarded, never a fault (see EngineOptions::checksum).
  uint64_t decode_errors = 0;
  /// Deletion-critical give-ups (deletion-mark stores, removal results /
  /// aggregates) requeued as point-to-point retries by the retraction
  /// protocol (TransportOptions::retraction).
  uint64_t retraction_requeues = 0;
  /// Direct tombstone sends queued for storage-walk nodes that were
  /// skipped while suspected down (a skipped insert is re-derivable from
  /// the rest of the band; a skipped deletion mark is not).
  uint64_t retraction_obligations = 0;

  // --- overload counters (EngineOptions::budget). All zero when budgets
  //     are off. ---
  /// Load-shedding actions of any kind: replica-store refusals/evictions,
  /// dropped transport envelopes, dropped join partials. Every shed also
  /// taints the shedding node so downstream results carry the degraded
  /// bit (docs/FAULTS.md "Overload and shedding").
  uint64_t sheds = 0;
  /// Injections refused at the front door (bounded ingress queue full, or
  /// the reject-injection policy refusing a full replica store). The
  /// sender sees a non-OK Status; nothing entered, nothing is tainted.
  uint64_t ingress_rejects = 0;
  /// Replica-store evictions under the shed-farthest-window policy (the
  /// oldest live replica is early-expired via a deletion mark, keeping
  /// retraction sound).
  uint64_t budget_evictions = 0;
  /// MemSqueeze chaos events applied (budget caps shrunk mid-run).
  uint64_t budget_squeezes = 0;

  // --- state-repair counters (EngineOptions::repair; repair.h). All zero
  //     when both repair modes are off. ---
  /// Digest exchanges started (reboot resyncs + anti-entropy rounds).
  uint64_t repair_digest_rounds = 0;
  /// Digest requests served.
  uint64_t repair_digest_replies = 0;
  /// Replica records merged into a store from repair pushes.
  uint64_t repair_replicas_pulled = 0;
  /// Replica records shipped while serving repair pulls.
  uint64_t repair_replicas_pushed = 0;
  /// Reboot resyncs begun (one per OnRestart with repair enabled).
  uint64_t resyncs_started = 0;
  uint64_t resyncs_completed = 0;
  /// Resyncs given up (no alive band peer / attempt budget exhausted).
  uint64_t resyncs_abandoned = 0;
  /// Total local time spent degraded between reboot and resync completion.
  uint64_t resync_time_us = 0;
  /// Results whose producing pass ran through a degraded node.
  uint64_t degraded_results = 0;
  /// Mirror of LivenessView::version (gauge): bumps once per suspicion
  /// change, making liveness churn visible in metrics snapshots.
  uint64_t liveness_epoch = 1;

  /// Runtime faults (decode failures, unroutable homes, ...). Non-empty
  /// means a bug or an injected fault; equivalence tests assert empty.
  std::vector<std::string> errors;

  /// Mirrors every counter into `registry` under the "engine" component
  /// (node -1: these are engine-global in the single-process simulation),
  /// making the registry snapshot self-contained. No-op when `registry` is
  /// null or disabled.
  void ExportTo(MetricsRegistry* registry) const;
};

/// End-to-end transport knobs. Off by default: engine messages are
/// best-effort unicasts exactly as before. When `reliable` is set, every
/// unicast engine message travels in a ReliableWire envelope that the
/// destination acknowledges; the origin retransmits on an RTO with
/// exponential backoff and gives up (marking the destination
/// suspected-down and attempting path repair) after `max_retries`
/// retransmissions.
struct TransportOptions {
  bool reliable = false;
  int max_retries = 4;
  /// Initial retransmit timeout; -1 = auto, computed per message from the
  /// link model's worst-case hop delay and the hop distance so that a
  /// loss-free run never retransmits spuriously.
  SimTime rto = -1;
  double rto_backoff = 2.0;  ///< RTO multiplier per retransmission.
  /// Ceiling on the backed-off RTO. -1 = auto: 64x the message's initial
  /// RTO — beyond the reach of the default retry budget (2^4 < 64), so
  /// the auto cap never changes historical schedules, but a raised
  /// `max_retries` no longer grows the timeout unboundedly (a healed peer
  /// would otherwise wait hours for the next probe). 0 = uncapped.
  SimTime rto_max = -1;
  /// Randomized slack added to each armed RTO: the timer fires after
  /// rto * (1 + U[0, rto_jitter]), desynchronizing retransmit bursts from
  /// origins that gave up on the same dead hop simultaneously. 0 keeps
  /// the historical fixed schedule (and existing baselines) bit-exact;
  /// the chaos harness runs with 0.1.
  double rto_jitter = 0.0;
  /// Retraction protocol (docs/FAULTS.md): deletion-critical messages
  /// (deletion-mark stores, removal results/aggregates) that exhaust the
  /// retry budget are requeued point-to-point on a backoff timer instead
  /// of being dropped — a lost deletion otherwise leaves a phantom result
  /// standing forever (tests/scenarios/phantom-after-lost-delete). Also
  /// queues direct tombstone sends for storage-walk nodes skipped while
  /// suspected down, and numbers tombstones by deletion timestamp in the
  /// anti-entropy digests. Off by default: requires `reliable`.
  bool retraction = false;
  /// Requeue rounds per deletion-critical message; each round is a full
  /// fresh reliable send (1 + max_retries attempts), so quiescence stays
  /// guaranteed even toward a permanently dead destination.
  int retraction_rounds = 8;
};

/// What a node does when a resource budget is exceeded (BudgetOptions).
enum class ShedPolicy {
  /// Drop the arriving item: the replica store keeps what it has, the
  /// newest tuple is never recorded here.
  kShedNewest,
  /// Early-expire the oldest live replica (the one farthest into its
  /// window) to admit the new one. The victim keeps a deletion mark so
  /// removal sweeps still find it — shedding must never lose a
  /// retraction (docs/FAULTS.md).
  kShedFarthestWindow,
  /// Refuse new injections at the full node with a sender-visible error;
  /// stored state and in-flight work are never shed.
  kRejectInjection,
};

/// Per-node resource budgets (EngineOptions::budget). Off by default:
/// every cap unlimited, zero overhead, bit-identical schedules. When
/// enabled, a node that runs out of a budget sheds load under `policy`
/// instead of growing without bound; every shed is counted
/// (EngineStats::sheds), traced (phase "shed") and taints the node so
/// results produced through it carry the degraded bit — consumers can
/// distinguish "sound but possibly partial" from "complete". Shedding
/// never drops deletion-critical or aggregate traffic: a lost retraction
/// would leave an undegradable phantom standing, which would break the
/// shedding-soundness invariant (invariants.h).
struct BudgetOptions {
  bool enabled = false;
  /// Cap on live (undeleted, insert-seen) replicas a node stores per
  /// predicate; 0 = unlimited.
  size_t max_replicas_per_pred = 0;
  /// Cap on unacked reliable-transport envelopes a node keeps in flight;
  /// 0 = unlimited. Only sheddable (additive) envelopes are dropped.
  size_t max_inflight = 0;
  /// Cap on join partials one rule-evaluation step may expand; 0 =
  /// unlimited. Work beyond the cap is shed, not deferred.
  size_t max_eval_work = 0;
  /// Bounded ingress queue: cap on injections admitted at a node whose
  /// storage/join launch has not fired yet; 0 = unlimited. An injection
  /// over the cap is rejected with a sender-visible Status — the
  /// backpressure signal a resident `dlogd` front door needs.
  size_t max_ingress = 0;
  ShedPolicy policy = ShedPolicy::kShedNewest;

  /// MemSqueeze chaos axis: shrinks every active cap by `factor`
  /// (floored at 1) — the mid-run budget cut a co-tenant or a dying
  /// battery would impose.
  void Squeeze(double factor) {
    auto shrink = [factor](size_t cap) -> size_t {
      if (cap == 0) return 0;
      double scaled = static_cast<double>(cap) * factor;
      return scaled < 1.0 ? 1 : static_cast<size_t>(scaled);
    };
    max_replicas_per_pred = shrink(max_replicas_per_pred);
    max_inflight = shrink(max_inflight);
    max_eval_work = shrink(max_eval_work);
    max_ingress = shrink(max_ingress);
  }
};

/// Suspected-failure view shared by all node runtimes of one engine.
/// Sharing one view is the single-process simplification of a gossiped
/// liveness protocol (every suspicion is "instantly gossiped"; see
/// docs/FAULTS.md). Suspicions come from MAC-ack failures and transport
/// give-ups; a node is cleared the moment anyone hears a message from it.
struct LivenessView {
  std::vector<char> down;
  /// Bumped on every change; keys the routing layer's avoid-BFS cache.
  uint64_t version = 1;

  bool IsDown(NodeId n) const {
    size_t i = static_cast<size_t>(n);
    return i < down.size() && down[i] != 0;
  }
  /// Sets node `n`'s suspicion bit; returns true if the view changed.
  /// Out-of-range ids are rejected loudly: they mean a corrupted NodeId
  /// escaped wire decoding, and silently dropping the suspicion would let
  /// routing keep trusting a node the transport just proved unreachable.
  bool Mark(NodeId n, bool is_down) {
    size_t i = static_cast<size_t>(n);
    if (i >= down.size()) {
      DEDUCE_LOG(kWarning) << "LivenessView::Mark(" << n
                           << "): node id out of range (view size "
                           << down.size() << ")";
      return false;
    }
    if ((down[i] != 0) == is_down) return false;
    down[i] = is_down ? 1 : 0;
    ++version;
    return true;
  }
};

/// Timing discipline parameters (§IV-B / Theorem 3), computed from the
/// topology and link model at engine creation.
struct EngineTiming {
  SimTime tau_s = 0;  ///< Upper bound on a storage phase.
  SimTime tau_j = 0;  ///< Upper bound on a join-computation phase.
  SimTime tau_c = 0;  ///< Max clock skew between any two nodes.

  /// Delay between storage-phase start and join-computation start.
  SimTime JoinDelay() const { return tau_s + tau_c; }
  /// §IV-C: "we need to wait for an appropriate time before actually
  /// finalizing a derived fact (since it may be retracted/deleted later)".
  /// A home entry whose derivation set becomes non-empty waits this long
  /// before generating the derived-stream update; retractions within the
  /// window are absorbed with zero network traffic.
  SimTime finalize_delay = 0;
  /// Extra lifetime of a replica beyond its window: (τs+τc)+τj+τc.
  SimTime ExpirySlack() const { return tau_s + tau_c + tau_j + tau_c; }
};

/// State shared (read-mostly) by all node runtimes of one engine.
struct EngineShared {
  QueryPlan plan;
  /// Multi-tenant result fan-out (CompileMultiPlan): results of a deduped
  /// canonical sub-plan are re-shipped, relabeled, to each tenant's alias
  /// store. Empty for single-tenant engines — the fan-out path is then
  /// never taken and behavior is byte-identical to the pre-tenancy engine.
  ResultFanout result_fanout;
  /// Transitive body-predicate closure per derived head (computed at
  /// engine creation from the plan's rules, each head included in its own
  /// set). Shed taint is scoped through it: a node that shed state of
  /// pred p degrades only results whose head depends on p — so one
  /// tenant's overload never taints a disjoint tenant's results
  /// (tests/tenancy_test.cc) while staying exactly as conservative as the
  /// old node-global bit for everything the shed could actually reach.
  std::unordered_map<SymbolId, std::unordered_set<SymbolId>> taint_deps;
  BuiltinRegistry registry;
  const Topology* topology = nullptr;
  std::unique_ptr<RegionMapper> regions;
  std::unique_ptr<RoutingTable> routing;
  std::unique_ptr<GeoHash> geohash;
  EngineTiming timing;
  EngineStats stats;
  TransportOptions transport;
  /// Mutable at runtime: the MemSqueeze chaos axis shrinks caps mid-run.
  BudgetOptions budget;
  RepairOptions repair;
  /// Per-hop frame checksum (EngineOptions::checksum): senders append a
  /// 4-byte FNV-1a of the payload, receivers verify and strip it before
  /// decoding; a mismatch is dropped and counted as a decode error.
  bool checksum = false;
  LivenessView liveness;
  /// The network's link model (RTO computation); owned by the Network.
  const LinkModel* link = nullptr;

  /// Observability sinks (EngineOptions::metrics / ::trace). Both may be
  /// null — the runtimes guard every use, so a run without observers pays
  /// only a pointer test. Owned by the embedder.
  MetricsRegistry* metrics = nullptr;
  TraceWriter* trace = nullptr;
  /// Causal provenance (EngineOptions::provenance): when enabled, runtimes
  /// keep per-node lineage rings and spill "deriv" records to `trace`.
  ProvenanceOptions provenance;

  /// Literals a join pass can resolve at its launch node (data replicated
  /// everywhere / within the rule's spatial scope), per delta plan.
  std::vector<std::vector<char>> launch_evaluable;  // [delta][literal]
  /// Negated literals that must be verified along the whole sweep, per
  /// delta plan.
  std::vector<std::vector<char>> sweep_checked_negation;
  /// Total sweep passes per delta (multipass + trailing negation pass).
  std::vector<uint32_t> total_passes;
};

/// The per-node engine runtime (§V Fig. 3: join component + hashing
/// component + routing component + local tables).
class NodeRuntime : public NodeApp {
 public:
  NodeRuntime(EngineShared* shared, NodeId id);

  void Start(NodeContext* ctx) override;
  void OnMessage(NodeContext* ctx, const Message& msg) override;
  void OnTimer(NodeContext* ctx, int timer_id) override;
  void OnRestart(NodeContext* ctx) override;

  /// Injects a base-stream update at this node (the sensing API).
  /// Insertions assign a fresh TupleId; deletions must name a fact this
  /// node previously generated and not yet deleted.
  Status Inject(NodeContext* ctx, StreamOp op, const Fact& fact);

  /// Alive facts of this node's home store for `pred` (derived stream
  /// tuples whose home is this node).
  std::vector<Fact> HomeFacts(SymbolId pred) const;
  /// Alive home facts for `pred` that no applied derivation ever tagged
  /// degraded — the "complete" subset the shedding-soundness invariant
  /// compares against the fault-free oracle (invariants.h).
  std::vector<Fact> UndegradedHomeFacts(SymbolId pred) const;

  /// Number of replica entries currently held (memory accounting, §V).
  size_t ReplicaCount() const;
  size_t DerivationCount() const;

  /// This node's lineage ring; null when provenance is off.
  const ProvenanceStore* provenance_store() const { return prov_.get(); }

  /// Per-predicate digests of the shareable replicas this node would
  /// exchange with `other` (the repair protocol's fingerprints, §IV-B
  /// lifetime-filtered). The convergence invariant compares them pairwise
  /// across band peers (invariants.h).
  std::vector<PredDigest> ShareableDigests(NodeId other, Timestamp now) const;
  /// True iff `fact` hashes to this node's home store — the placement half
  /// of the dedup invariant (a corrupted frame must not park a result at
  /// the wrong home).
  bool OwnsHome(const Fact& fact) const;
  /// True between a reboot and resync completion/abandonment; invariant
  /// checks skip degraded nodes.
  bool degraded() const { return repair_.degraded(); }

 private:
  /// The repair protocol driver reaches into the replica store and the
  /// send/timer plumbing (repair.h).
  friend class RepairManager;

  /// One replica of a tuple, placed here by a storage phase.
  struct Replica {
    Fact fact;
    Timestamp gen_ts = 0;
    bool have_insert = false;          ///< False: deletion mark arrived first.
    std::optional<Timestamp> del_ts;   ///< Deletion mark (§IV-A: not removed).
  };

  /// Home-store entry for a derived tuple hashed to this node.
  struct HomeEntry {
    TupleId id;
    Timestamp gen_ts = 0;
    bool alive = false;
    /// Generation scheduled but not yet fired (finalization delay).
    bool pending = false;
    /// Invalidates stale finalization timers.
    uint64_t epoch = 0;
    /// Sticky: some applied insert derivation carried the degraded bit
    /// (produced through a repairing or shedding node). Undegraded entries
    /// are what the shedding-soundness invariant holds to the oracle.
    bool degraded = false;
    std::set<Derivation> derivs;
    /// Retraction protocol only (TransportOptions::retraction): permanent
    /// tombstones for retracted derivations. A removal result can beat its
    /// matching insert result to the home (the insert spent longer in
    /// retransmission), and serpentine removal sweeps emit per surviving
    /// band replica, so insert/removal counts for one derivation need not
    /// balance. Support tuple ids are never reused, which makes "once
    /// removed, dead forever" sound for join derivations; aggregate results
    /// (empty support) legitimately oscillate and are exempt.
    std::set<Derivation> anti;
  };

  /// In-memory partial result (wire form: PartialWire).
  struct Partial {
    uint32_t mask = 0;
    Subst subst;
    std::vector<std::pair<uint32_t, TupleId>> support;
  };

  /// An origin-side transmission awaiting its end-to-end ack.
  struct PendingMsg {
    NodeId dest = kNoNode;
    uint32_t seq = 0;
    Message envelope;                    ///< Encoded ReliableWire.
    uint16_t inner_type = 0;
    std::vector<uint8_t> inner_payload;  ///< For path repair on give-up.
    int retries_left = 0;
    SimTime rto = 0;                     ///< Next timeout (backed off).
    SimTime rto_cap = 0;                 ///< Backoff ceiling (0 = none).
    /// Retraction-protocol requeue rounds left on give-up (0 when the
    /// protocol is off or the message is not deletion-critical).
    int retraction_rounds = 0;
  };

  // --- message handlers ---
  void HandleStore(NodeContext* ctx, StoreWire store);
  void HandleJoinPass(NodeContext* ctx, JoinPassWire jp);
  void HandleResult(NodeContext* ctx, ResultWire rw);

  // --- reliable transport (TransportOptions::reliable) ---
  bool transport_on() const { return shared_->transport.reliable; }
  /// Forwards a frame not addressed to this node, or dispatches it.
  void RouteOrDispatch(NodeContext* ctx, const Message& msg);
  /// Dispatches a message addressed to this node to its handler.
  void DispatchEngineMessage(NodeContext* ctx, const Message& msg);
  /// Routes an encoded engine message one hop toward `final_target`,
  /// detouring around suspected-down nodes when the transport is on.
  /// Returns the hop's MAC ack (false also when unroutable).
  bool ForwardEngineMessage(NodeContext* ctx, NodeId final_target,
                            Message msg);
  /// Wraps `inner` in a ReliableWire envelope and transmits it, arming the
  /// retransmission timer. `retraction_rounds` carries the requeue budget
  /// of a retraction-protocol retry; -1 = fresh send (budget from options).
  void SendReliable(NodeContext* ctx, NodeId dest, const Message& inner,
                    int retraction_rounds = -1);
  void TransmitPending(NodeContext* ctx, uint64_t key);
  void HandleReliable(NodeContext* ctx, const ReliableWire& rw);
  void HandleAck(const AckWire& ack);
  /// Retry budget exhausted: suspect the destination and try path repair.
  void GiveUp(NodeContext* ctx, uint64_t key);
  void TryRepair(NodeContext* ctx, const PendingMsg& pm);

  // --- retraction protocol (TransportOptions::retraction) ---
  bool retraction_on() const {
    return shared_->transport.reliable && shared_->transport.retraction;
  }
  /// The point-to-point message to requeue for a deletion-critical
  /// give-up: the deletion-mark store (walk remainder stripped — path
  /// repair already salvaged it) or the removal result/aggregate, aimed
  /// at `pm.dest`. nullopt when `pm` is not deletion-critical.
  std::optional<Message> RetractionPayload(const PendingMsg& pm) const;
  /// Re-sends `inner` reliably to `dest` after a backoff proportional to
  /// the rounds already consumed; `rounds_left` rides in the new
  /// PendingMsg so the budget decreases monotonically.
  void QueueRetractionRetry(NodeContext* ctx, NodeId dest, Message inner,
                            int rounds_left);
  void RepairJoinPass(NodeContext* ctx, JoinPassWire jp);
  /// Auto RTO for a message of `envelope_bytes` to `dest` (worst-case
  /// round trip plus slack; never fires spuriously on a loss-free run).
  SimTime RtoFor(NodeId dest, size_t envelope_bytes) const;
  void MarkDown(NodeId node);
  void MarkUp(NodeId node);
  static uint64_t PendingKey(NodeId dest, uint32_t seq) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(dest)) << 32) | seq;
  }

  // --- failure-aware sweeps / walks ---
  /// SweepPath with suspected-down nodes skipped (serpentine) or replaced
  /// by an alive same-band node (column sweep); identity when the
  /// transport is off.
  std::vector<NodeId> LiveSweepPath(const DeltaPlan& delta, NodeId source,
                                    uint32_t pass_index, bool removal) const;
  std::vector<NodeId> RepairVisitList(const DeltaPlan& delta,
                                      const std::vector<NodeId>& path) const;
  /// Alive node in `dead`'s horizontal band nearest to it (row replication
  /// makes it hold the same sweep data); kNoNode if the band is dead.
  NodeId BandAlternate(NodeId dead) const;
  /// Sends the pass on to visit `visit` in order (empty: the pass ends —
  /// next sweep pass or emission). `jp.partials` must already be set.
  void AdvancePass(NodeContext* ctx, JoinPassWire jp,
                   std::vector<NodeId> visit);
  /// Sends a storage walk to visit `visit` in order, skipping
  /// suspected-down nodes when the transport is on. Returns false when no
  /// node was left to visit.
  bool SendStoreWalk(NodeContext* ctx, StoreWire store,
                     std::vector<NodeId> visit);

  // --- storage phase ---
  void StartStoragePhase(NodeContext* ctx, SymbolId pred, const Fact& fact,
                         const TupleId& id, Timestamp gen_ts, bool deletion,
                         Timestamp del_ts);
  void RecordReplica(NodeContext* ctx, const StoreWire& store);

  // --- join phase ---
  void LaunchJoinPasses(NodeContext* ctx, SymbolId pred, const Fact& fact,
                        const TupleId& id, StreamOp op, Timestamp update_ts);
  /// Processes a pass at this node; forwards / starts next pass / emits.
  void RunPassHere(NodeContext* ctx, JoinPassWire jp);
  void RunRouteStep(NodeContext* ctx, JoinPassWire jp);

  /// Extends/filters `partials` in place against local replicas.
  /// `extend_literal`: -1 = extend by every sweep literal, otherwise only
  /// that literal. Drops killed partials.
  void ProcessPartialsHere(NodeContext* ctx, const DeltaPlan& delta,
                           bool removal, Timestamp update_ts,
                           const TupleId& update_id, int extend_literal,
                           bool at_launch, std::vector<Partial>* partials);

  /// Evaluates ready comparisons/builtins; returns false if the partial
  /// dies. Marks evaluated literals in the mask.
  bool EvalFilters(const DeltaPlan& delta, Partial* p);

  /// True if some visible replica of `pred` matches `ground_atom_args`
  /// (the NOT check). `exclude` skips the tuple being deleted (§IV-B).
  bool NegMatchLocally(SymbolId pred, const std::vector<Term>& args,
                       Timestamp update_ts,
                       const std::optional<TupleId>& exclude) const;

  bool IsPositiveComplete(const DeltaPlan& delta, const Partial& p) const;
  void EmitComplete(NodeContext* ctx, const DeltaPlan& delta, bool removal,
                    Timestamp update_ts, std::vector<Partial> partials,
                    bool degraded);

  // --- incremental aggregates (AggregatePlan) ---
  void LaunchAggregates(NodeContext* ctx, SymbolId pred, const Fact& fact,
                        const TupleId& id, StreamOp op, Timestamp update_ts);
  void HandleAgg(NodeContext* ctx, AggWire aw);
  /// Ships a complete result toward the head fact's home node.
  void ShipResult(NodeContext* ctx, ResultWire rw);

  // --- home store / derived streams ---
  void ApplyResult(NodeContext* ctx, const ResultWire& rw);
  void FinalizeGeneration(NodeContext* ctx, SymbolId pred, const Fact& fact,
                          uint64_t epoch);
  void GenerateDerivedUpdate(NodeContext* ctx, SymbolId pred, const Fact& fact,
                             const TupleId& id, StreamOp op, Timestamp ts);

  // --- resource budgets (EngineOptions::budget) ---
  bool budget_on() const { return shared_->budget.enabled; }
  /// Counts one shed of kind `what` (metrics component "budget", trace
  /// phase "shed") and taints this node: join passes and results whose
  /// head depends on `pred` (EngineShared::taint_deps) carry the degraded
  /// bit from now on, because results computed against a store that shed
  /// state are sound but possibly incomplete — and, under negation, only
  /// trustworthy when flagged. `pred < 0` (shed not attributable to one
  /// predicate, e.g. an in-flight envelope) taints every head.
  void RecordShed(NodeContext* ctx, const char* what, SymbolId pred = -1);
  /// True when results for head `pred` shipped by this node must carry
  /// the degraded bit because of an earlier shed.
  bool ShedTaints(SymbolId pred) const;
  /// Head predicate of the rule a delta plan evaluates.
  SymbolId DeltaHead(const DeltaPlan& delta) const;
  /// True when the envelope for `inner_type`/payload may be shed: only
  /// additive traffic (insert stores, insert join passes, insert
  /// results). Deletion-critical, aggregate, repair and transport-control
  /// messages must never be dropped by the budget.
  static bool SheddableEnvelope(uint16_t inner_type,
                                const std::vector<uint8_t>& payload);
  /// True when this node already stores `max_replicas_per_pred` live
  /// (insert-seen, unmarked) replicas of `pred`.
  bool ReplicaStoreFull(SymbolId pred) const;
  /// Enforces max_replicas_per_pred before recording an insert replica.
  /// Returns false when the arriving replica must not be recorded
  /// (shed-newest / reject-injection at capacity); may instead
  /// early-expire the oldest live replica (shed-farthest-window).
  bool AdmitReplica(NodeContext* ctx, SymbolId pred, Timestamp now);

  // --- helpers ---
  NodeId HomeOf(const PredicatePlan& plan, const Fact& fact) const;
  void SendEngineMessage(NodeContext* ctx, NodeId final_target, Message msg);
  void Fault(const std::string& what);
  bool checksum_on() const { return shared_->checksum; }
  /// Malformed frame: count it and drop it. Corruption is an environment
  /// fault, not an engine bug, so it never lands in EngineStats::errors.
  void DropFrame();
  std::vector<NodeId> SweepPath(const DeltaPlan& delta, NodeId source,
                                uint32_t pass_index, bool removal) const;
  int NewTimer(NodeContext* ctx, SimTime delay, std::function<void()> fn);
  /// Visibility of a replica for a join at update time τ (§IV-B window
  /// predicate): generated in (τ - w, τ], not deleted before τ.
  bool Visible(const Replica& r, Timestamp update_ts, Timestamp window,
               bool for_removal = false) const;

  static Partial FromWire(const PartialWire& w);
  static PartialWire ToWire(const Partial& p);

  EngineShared* shared_;
  NodeId id_;
  RepairManager repair_{this};

  std::unordered_map<SymbolId, std::map<TupleId, Replica>> replicas_;
  struct HomeRel {
    std::unordered_map<Fact, HomeEntry, FactHash> map;
    std::vector<Fact> order;
  };
  std::unordered_map<SymbolId, HomeRel> home_;

  /// Flood dedup: (tuple id, deletion flag) pairs already seen.
  std::set<std::pair<TupleId, bool>> flood_seen_;

  /// Aggregate state at group homes: plan index -> group key -> live
  /// contributions (keyed by source tuple id) + the currently-emitted fact.
  struct AggGroup {
    std::map<TupleId, Term> contributions;
    std::optional<Fact> emitted;
  };
  std::map<uint32_t, std::map<std::string, AggGroup>> agg_state_;

  std::unordered_map<int, std::function<void()>> timers_;
  int next_timer_ = 0;
  uint32_t seq_ = 0;

  // --- budget state (EngineOptions::budget; all idle when budgets off) ---
  /// Sticky shed taint, scoped by predicate: this node discarded state or
  /// work touching these predicates, so passes whose head depends on any
  /// of them (taint_deps) must carry the degraded bit. `shed_all_` covers
  /// sheds not attributable to a predicate (in-flight envelopes). Cleared
  /// on reboot — volatile RAM loses shed and unshed state alike, and the
  /// repair path owns post-reboot degradation.
  std::unordered_set<SymbolId> shed_preds_;
  bool shed_all_ = false;
  /// Injections admitted whose storage/join launch timer has not fired
  /// yet (the bounded ingress queue's occupancy).
  size_t ingress_open_ = 0;

  // --- provenance (EngineOptions::provenance) ---
  bool provenance_on() const { return prov_ != nullptr; }
  /// Pushes a lineage edge into the ring, observes the per-predicate
  /// end-to-end latency histogram, and spills a "deriv" trace record.
  void RecordProvenance(ProvenanceEdge edge);
  /// Whether this node already warned about lineage-ring eviction
  /// (RecordProvenance warns once per node, counts every eviction).
  bool prov_evict_warned_ = false;
  /// Lineage ring; null unless provenance is enabled. Cleared on reboot
  /// (node RAM is volatile; the trace stream is the durable copy).
  std::unique_ptr<ProvenanceStore> prov_;

  // --- reliable-transport state ---
  /// Unacked envelopes by (dest, seq). std::map: deterministic iteration.
  std::map<uint64_t, PendingMsg> pending_;
  /// Per-destination next sequence number. Survives OnRestart: (origin,
  /// seq) keys the receivers' dedup, so it must never repeat.
  std::unordered_map<NodeId, uint32_t> tx_seq_;
  /// Receiver-side dedup: (origin, seq) pairs already delivered.
  std::set<std::pair<NodeId, uint32_t>> rx_seen_;
};

}  // namespace deduce

#endif  // DEDUCE_ENGINE_RUNTIME_H_
