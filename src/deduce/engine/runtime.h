#ifndef DEDUCE_ENGINE_RUNTIME_H_
#define DEDUCE_ENGINE_RUNTIME_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "deduce/datalog/unify.h"
#include "deduce/engine/plan.h"
#include "deduce/engine/regions.h"
#include "deduce/engine/wire.h"
#include "deduce/eval/incremental.h"  // Derivation
#include "deduce/routing/geo_hash.h"
#include "deduce/routing/routing.h"

namespace deduce {

/// Engine-level counters, shared by all node runtimes (single-process
/// simulation; the distributed system would aggregate these offline).
struct EngineStats {
  uint64_t tuples_injected = 0;
  uint64_t join_passes = 0;
  uint64_t pass_messages = 0;
  uint64_t results_emitted = 0;
  uint64_t derivations_added = 0;
  uint64_t derivations_removed = 0;
  uint64_t derived_generations = 0;
  uint64_t derived_deletions = 0;
  uint64_t replicas_stored = 0;
  uint64_t max_partials_in_message = 0;
  /// Runtime faults (decode failures, unroutable homes, ...). Non-empty
  /// means a bug or an injected fault; equivalence tests assert empty.
  std::vector<std::string> errors;
};

/// Timing discipline parameters (§IV-B / Theorem 3), computed from the
/// topology and link model at engine creation.
struct EngineTiming {
  SimTime tau_s = 0;  ///< Upper bound on a storage phase.
  SimTime tau_j = 0;  ///< Upper bound on a join-computation phase.
  SimTime tau_c = 0;  ///< Max clock skew between any two nodes.

  /// Delay between storage-phase start and join-computation start.
  SimTime JoinDelay() const { return tau_s + tau_c; }
  /// §IV-C: "we need to wait for an appropriate time before actually
  /// finalizing a derived fact (since it may be retracted/deleted later)".
  /// A home entry whose derivation set becomes non-empty waits this long
  /// before generating the derived-stream update; retractions within the
  /// window are absorbed with zero network traffic.
  SimTime finalize_delay = 0;
  /// Extra lifetime of a replica beyond its window: (τs+τc)+τj+τc.
  SimTime ExpirySlack() const { return tau_s + tau_c + tau_j + tau_c; }
};

/// State shared (read-mostly) by all node runtimes of one engine.
struct EngineShared {
  QueryPlan plan;
  BuiltinRegistry registry;
  const Topology* topology = nullptr;
  std::unique_ptr<RegionMapper> regions;
  std::unique_ptr<RoutingTable> routing;
  std::unique_ptr<GeoHash> geohash;
  EngineTiming timing;
  EngineStats stats;

  /// Literals a join pass can resolve at its launch node (data replicated
  /// everywhere / within the rule's spatial scope), per delta plan.
  std::vector<std::vector<char>> launch_evaluable;  // [delta][literal]
  /// Negated literals that must be verified along the whole sweep, per
  /// delta plan.
  std::vector<std::vector<char>> sweep_checked_negation;
  /// Total sweep passes per delta (multipass + trailing negation pass).
  std::vector<uint32_t> total_passes;
};

/// The per-node engine runtime (§V Fig. 3: join component + hashing
/// component + routing component + local tables).
class NodeRuntime : public NodeApp {
 public:
  NodeRuntime(EngineShared* shared, NodeId id);

  void Start(NodeContext* ctx) override;
  void OnMessage(NodeContext* ctx, const Message& msg) override;
  void OnTimer(NodeContext* ctx, int timer_id) override;

  /// Injects a base-stream update at this node (the sensing API).
  /// Insertions assign a fresh TupleId; deletions must name a fact this
  /// node previously generated and not yet deleted.
  Status Inject(NodeContext* ctx, StreamOp op, const Fact& fact);

  /// Alive facts of this node's home store for `pred` (derived stream
  /// tuples whose home is this node).
  std::vector<Fact> HomeFacts(SymbolId pred) const;

  /// Number of replica entries currently held (memory accounting, §V).
  size_t ReplicaCount() const;
  size_t DerivationCount() const;

 private:
  /// One replica of a tuple, placed here by a storage phase.
  struct Replica {
    Fact fact;
    Timestamp gen_ts = 0;
    bool have_insert = false;          ///< False: deletion mark arrived first.
    std::optional<Timestamp> del_ts;   ///< Deletion mark (§IV-A: not removed).
  };

  /// Home-store entry for a derived tuple hashed to this node.
  struct HomeEntry {
    TupleId id;
    Timestamp gen_ts = 0;
    bool alive = false;
    /// Generation scheduled but not yet fired (finalization delay).
    bool pending = false;
    /// Invalidates stale finalization timers.
    uint64_t epoch = 0;
    std::set<Derivation> derivs;
  };

  /// In-memory partial result (wire form: PartialWire).
  struct Partial {
    uint32_t mask = 0;
    Subst subst;
    std::vector<std::pair<uint32_t, TupleId>> support;
  };

  // --- message handlers ---
  void HandleStore(NodeContext* ctx, StoreWire store);
  void HandleJoinPass(NodeContext* ctx, JoinPassWire jp);
  void HandleResult(NodeContext* ctx, ResultWire rw);

  // --- storage phase ---
  void StartStoragePhase(NodeContext* ctx, SymbolId pred, const Fact& fact,
                         const TupleId& id, Timestamp gen_ts, bool deletion,
                         Timestamp del_ts);
  void RecordReplica(NodeContext* ctx, const StoreWire& store);

  // --- join phase ---
  void LaunchJoinPasses(NodeContext* ctx, SymbolId pred, const Fact& fact,
                        const TupleId& id, StreamOp op, Timestamp update_ts);
  /// Processes a pass at this node; forwards / starts next pass / emits.
  void RunPassHere(NodeContext* ctx, JoinPassWire jp);
  void RunRouteStep(NodeContext* ctx, JoinPassWire jp);

  /// Extends/filters `partials` in place against local replicas.
  /// `extend_literal`: -1 = extend by every sweep literal, otherwise only
  /// that literal. Drops killed partials.
  void ProcessPartialsHere(NodeContext* ctx, const DeltaPlan& delta,
                           bool removal, Timestamp update_ts,
                           const TupleId& update_id, int extend_literal,
                           bool at_launch, std::vector<Partial>* partials);

  /// Evaluates ready comparisons/builtins; returns false if the partial
  /// dies. Marks evaluated literals in the mask.
  bool EvalFilters(const DeltaPlan& delta, Partial* p);

  /// True if some visible replica of `pred` matches `ground_atom_args`
  /// (the NOT check). `exclude` skips the tuple being deleted (§IV-B).
  bool NegMatchLocally(SymbolId pred, const std::vector<Term>& args,
                       Timestamp update_ts,
                       const std::optional<TupleId>& exclude) const;

  bool IsPositiveComplete(const DeltaPlan& delta, const Partial& p) const;
  void EmitComplete(NodeContext* ctx, const DeltaPlan& delta, bool removal,
                    Timestamp update_ts, std::vector<Partial> partials);

  // --- incremental aggregates (AggregatePlan) ---
  void LaunchAggregates(NodeContext* ctx, SymbolId pred, const Fact& fact,
                        const TupleId& id, StreamOp op, Timestamp update_ts);
  void HandleAgg(NodeContext* ctx, AggWire aw);
  /// Ships a complete result toward the head fact's home node.
  void ShipResult(NodeContext* ctx, ResultWire rw);

  // --- home store / derived streams ---
  void ApplyResult(NodeContext* ctx, const ResultWire& rw);
  void FinalizeGeneration(NodeContext* ctx, SymbolId pred, const Fact& fact,
                          uint64_t epoch);
  void GenerateDerivedUpdate(NodeContext* ctx, SymbolId pred, const Fact& fact,
                             const TupleId& id, StreamOp op, Timestamp ts);

  // --- helpers ---
  NodeId HomeOf(const PredicatePlan& plan, const Fact& fact) const;
  void SendEngineMessage(NodeContext* ctx, NodeId final_target, Message msg);
  void Fault(const std::string& what);
  std::vector<NodeId> SweepPath(const DeltaPlan& delta, NodeId source,
                                uint32_t pass_index) const;
  int NewTimer(NodeContext* ctx, SimTime delay, std::function<void()> fn);
  /// Visibility of a replica for a join at update time τ (§IV-B window
  /// predicate): generated in (τ - w, τ], not deleted before τ.
  bool Visible(const Replica& r, Timestamp update_ts, Timestamp window,
               bool for_removal = false) const;

  static Partial FromWire(const PartialWire& w);
  static PartialWire ToWire(const Partial& p);

  EngineShared* shared_;
  NodeId id_;

  std::unordered_map<SymbolId, std::map<TupleId, Replica>> replicas_;
  struct HomeRel {
    std::unordered_map<Fact, HomeEntry, FactHash> map;
    std::vector<Fact> order;
  };
  std::unordered_map<SymbolId, HomeRel> home_;

  /// Flood dedup: (tuple id, deletion flag) pairs already seen.
  std::set<std::pair<TupleId, bool>> flood_seen_;

  /// Aggregate state at group homes: plan index -> group key -> live
  /// contributions (keyed by source tuple id) + the currently-emitted fact.
  struct AggGroup {
    std::map<TupleId, Term> contributions;
    std::optional<Fact> emitted;
  };
  std::map<uint32_t, std::map<std::string, AggGroup>> agg_state_;

  std::unordered_map<int, std::function<void()>> timers_;
  int next_timer_ = 0;
  uint32_t seq_ = 0;
};

}  // namespace deduce

#endif  // DEDUCE_ENGINE_RUNTIME_H_
