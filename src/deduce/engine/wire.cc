#include "deduce/engine/wire.h"

#include <algorithm>

#include "deduce/net/codec.h"

namespace deduce {

namespace {

void WriteNodeList(PayloadWriter* w, const std::vector<NodeId>& nodes) {
  w->WriteUint(nodes.size());
  for (NodeId n : nodes) w->WriteInt(n);
}

StatusOr<std::vector<NodeId>> ReadNodeList(PayloadReader* r) {
  DEDUCE_ASSIGN_OR_RETURN(uint64_t n, r->ReadUint());
  if (n > r->remaining() + 1) {
    return StatusOr<std::vector<NodeId>>(
        Status::InvalidArgument("node list length exceeds payload"));
  }
  std::vector<NodeId> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DEDUCE_ASSIGN_OR_RETURN(int64_t v, r->ReadInt());
    out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

}  // namespace

Message StoreWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteSymbol(pred);
  w.WriteFact(fact);
  w.WriteTupleId(id);
  w.WriteInt(gen_ts);
  w.WriteUint(deletion ? 1 : 0);
  w.WriteInt(del_ts);
  WriteNodeList(&w, path_remaining);
  w.WriteInt(flood_ttl);
  Message m;
  m.type = kStoreMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<StoreWire> StoreWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  StoreWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(out.pred, r.ReadSymbol());
  DEDUCE_ASSIGN_OR_RETURN(out.fact, r.ReadFact());
  DEDUCE_ASSIGN_OR_RETURN(out.id, r.ReadTupleId());
  DEDUCE_ASSIGN_OR_RETURN(out.gen_ts, r.ReadInt());
  DEDUCE_ASSIGN_OR_RETURN(uint64_t del, r.ReadUint());
  out.deletion = del != 0;
  DEDUCE_ASSIGN_OR_RETURN(out.del_ts, r.ReadInt());
  DEDUCE_ASSIGN_OR_RETURN(out.path_remaining, ReadNodeList(&r));
  DEDUCE_ASSIGN_OR_RETURN(int64_t ttl, r.ReadInt());
  out.flood_ttl = static_cast<int32_t>(ttl);
  return out;
}

Message JoinPassWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteUint(delta_index);
  w.WriteUint(removal ? 1 : 0);
  w.WriteInt(update_ts);
  w.WriteTupleId(update_id);
  w.WriteUint(pass_index);
  WriteNodeList(&w, path_remaining);
  w.WriteUint(partials.size());
  for (const PartialWire& p : partials) {
    w.WriteUint(p.matched_mask);
    w.WriteUint(p.bindings.size());
    for (const auto& [var, term] : p.bindings) {
      w.WriteSymbol(var);
      w.WriteTerm(term);
    }
    w.WriteUint(p.support.size());
    for (const auto& [lit, id] : p.support) {
      w.WriteUint(lit);
      w.WriteTupleId(id);
    }
  }
  w.WriteUint(degraded ? 1 : 0);
  Message m;
  m.type = kJoinPassMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<JoinPassWire> JoinPassWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  JoinPassWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t delta, r.ReadUint());
  out.delta_index = static_cast<uint32_t>(delta);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t removal, r.ReadUint());
  out.removal = removal != 0;
  DEDUCE_ASSIGN_OR_RETURN(out.update_ts, r.ReadInt());
  DEDUCE_ASSIGN_OR_RETURN(out.update_id, r.ReadTupleId());
  DEDUCE_ASSIGN_OR_RETURN(uint64_t pass, r.ReadUint());
  out.pass_index = static_cast<uint32_t>(pass);
  DEDUCE_ASSIGN_OR_RETURN(out.path_remaining, ReadNodeList(&r));
  DEDUCE_ASSIGN_OR_RETURN(uint64_t n, r.ReadUint());
  for (uint64_t i = 0; i < n; ++i) {
    PartialWire p;
    DEDUCE_ASSIGN_OR_RETURN(uint64_t mask, r.ReadUint());
    p.matched_mask = static_cast<uint32_t>(mask);
    DEDUCE_ASSIGN_OR_RETURN(uint64_t nb, r.ReadUint());
    for (uint64_t b = 0; b < nb; ++b) {
      DEDUCE_ASSIGN_OR_RETURN(SymbolId var, r.ReadSymbol());
      DEDUCE_ASSIGN_OR_RETURN(Term term, r.ReadTerm());
      p.bindings.emplace_back(var, std::move(term));
    }
    DEDUCE_ASSIGN_OR_RETURN(uint64_t ns, r.ReadUint());
    for (uint64_t s = 0; s < ns; ++s) {
      DEDUCE_ASSIGN_OR_RETURN(uint64_t lit, r.ReadUint());
      DEDUCE_ASSIGN_OR_RETURN(TupleId id, r.ReadTupleId());
      p.support.emplace_back(static_cast<uint32_t>(lit), id);
    }
    out.partials.push_back(std::move(p));
  }
  DEDUCE_ASSIGN_OR_RETURN(uint64_t degraded, r.ReadUint());
  out.degraded = degraded != 0;
  return out;
}

Message ResultWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteSymbol(pred);
  w.WriteFact(fact);
  w.WriteUint(removal ? 1 : 0);
  w.WriteInt(rule_id);
  w.WriteUint(support.size());
  for (const TupleId& id : support) w.WriteTupleId(id);
  w.WriteInt(update_ts);
  w.WriteUint(degraded ? 1 : 0);
  if (tenant != 0) w.WriteUint(tenant);
  Message m;
  m.type = kResultMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<ResultWire> ResultWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  ResultWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(out.pred, r.ReadSymbol());
  DEDUCE_ASSIGN_OR_RETURN(out.fact, r.ReadFact());
  DEDUCE_ASSIGN_OR_RETURN(uint64_t removal, r.ReadUint());
  out.removal = removal != 0;
  DEDUCE_ASSIGN_OR_RETURN(int64_t rule, r.ReadInt());
  out.rule_id = static_cast<int32_t>(rule);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t n, r.ReadUint());
  for (uint64_t i = 0; i < n; ++i) {
    DEDUCE_ASSIGN_OR_RETURN(TupleId id, r.ReadTupleId());
    out.support.push_back(id);
  }
  DEDUCE_ASSIGN_OR_RETURN(out.update_ts, r.ReadInt());
  DEDUCE_ASSIGN_OR_RETURN(uint64_t degraded, r.ReadUint());
  out.degraded = degraded != 0;
  if (r.remaining() > 0) {
    DEDUCE_ASSIGN_OR_RETURN(uint64_t tenant, r.ReadUint());
    out.tenant = static_cast<uint32_t>(tenant);
  }
  return out;
}

Message AggWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteUint(plan_index);
  w.WriteUint(removal ? 1 : 0);
  w.WriteUint(group.size());
  for (const Term& t : group) w.WriteTerm(t);
  w.WriteTerm(value);
  w.WriteTupleId(contributor);
  w.WriteInt(update_ts);
  Message m;
  m.type = kAggMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<AggWire> AggWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  AggWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t plan, r.ReadUint());
  out.plan_index = static_cast<uint32_t>(plan);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t removal, r.ReadUint());
  out.removal = removal != 0;
  DEDUCE_ASSIGN_OR_RETURN(uint64_t n, r.ReadUint());
  if (n > r.remaining() + 1) {
    return StatusOr<AggWire>(
        Status::InvalidArgument("group size exceeds payload"));
  }
  for (uint64_t i = 0; i < n; ++i) {
    DEDUCE_ASSIGN_OR_RETURN(Term t, r.ReadTerm());
    out.group.push_back(std::move(t));
  }
  DEDUCE_ASSIGN_OR_RETURN(out.value, r.ReadTerm());
  DEDUCE_ASSIGN_OR_RETURN(out.contributor, r.ReadTupleId());
  DEDUCE_ASSIGN_OR_RETURN(out.update_ts, r.ReadInt());
  return out;
}

Message AckWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteInt(acker);
  w.WriteUint(seq);
  Message m;
  m.type = kAckMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<AckWire> AckWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  AckWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(int64_t acker, r.ReadInt());
  out.acker = static_cast<NodeId>(acker);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t seq, r.ReadUint());
  out.seq = static_cast<uint32_t>(seq);
  return out;
}

Message ReliableWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteInt(origin);
  w.WriteUint(seq);
  w.WriteUint(inner_type);
  w.WriteBytes(std::string_view(
      reinterpret_cast<const char*>(inner_payload.data()),
      inner_payload.size()));
  Message m;
  m.type = kReliableMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<ReliableWire> ReliableWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  ReliableWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(int64_t origin, r.ReadInt());
  out.origin = static_cast<NodeId>(origin);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t seq, r.ReadUint());
  out.seq = static_cast<uint32_t>(seq);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t type, r.ReadUint());
  out.inner_type = static_cast<uint16_t>(type);
  DEDUCE_ASSIGN_OR_RETURN(std::string bytes, r.ReadBytes());
  out.inner_payload.assign(bytes.begin(), bytes.end());
  return out;
}

Message DigestRequestWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteInt(requester);
  w.WriteUint(round);
  w.WriteUint(anti_entropy ? 1 : 0);
  Message m;
  m.type = kDigestRequestMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<DigestRequestWire> DigestRequestWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  DigestRequestWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(int64_t requester, r.ReadInt());
  out.requester = static_cast<NodeId>(requester);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t round, r.ReadUint());
  out.round = static_cast<uint32_t>(round);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t ae, r.ReadUint());
  out.anti_entropy = ae != 0;
  return out;
}

Message DigestReplyWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteInt(replier);
  w.WriteUint(round);
  w.WriteUint(digests.size());
  for (const PredDigest& d : digests) {
    w.WriteSymbol(d.pred);
    w.WriteUint(d.count);
    w.WriteUint(d.fingerprint);
  }
  Message m;
  m.type = kDigestReplyMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<DigestReplyWire> DigestReplyWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  DigestReplyWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(int64_t replier, r.ReadInt());
  out.replier = static_cast<NodeId>(replier);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t round, r.ReadUint());
  out.round = static_cast<uint32_t>(round);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t n, r.ReadUint());
  if (n > r.remaining() + 1) {
    return StatusOr<DigestReplyWire>(
        Status::InvalidArgument("digest list length exceeds payload"));
  }
  for (uint64_t i = 0; i < n; ++i) {
    PredDigest d;
    DEDUCE_ASSIGN_OR_RETURN(d.pred, r.ReadSymbol());
    DEDUCE_ASSIGN_OR_RETURN(d.count, r.ReadUint());
    DEDUCE_ASSIGN_OR_RETURN(d.fingerprint, r.ReadUint());
    out.digests.push_back(d);
  }
  return out;
}

Message RepairPullWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteInt(requester);
  w.WriteUint(round);
  w.WriteUint(reverse ? 1 : 0);
  w.WriteUint(preds.size());
  for (SymbolId p : preds) w.WriteSymbol(p);
  w.WriteUint(known.size());
  for (const Known& k : known) {
    w.WriteSymbol(k.pred);
    w.WriteTupleId(k.id);
    w.WriteUint(k.have_insert ? 1 : 0);
    w.WriteUint(k.has_del ? 1 : 0);
  }
  Message m;
  m.type = kRepairPullMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<RepairPullWire> RepairPullWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  RepairPullWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(int64_t requester, r.ReadInt());
  out.requester = static_cast<NodeId>(requester);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t round, r.ReadUint());
  out.round = static_cast<uint32_t>(round);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t reverse, r.ReadUint());
  out.reverse = reverse != 0;
  DEDUCE_ASSIGN_OR_RETURN(uint64_t np, r.ReadUint());
  if (np > r.remaining() + 1) {
    return StatusOr<RepairPullWire>(
        Status::InvalidArgument("pred list length exceeds payload"));
  }
  for (uint64_t i = 0; i < np; ++i) {
    DEDUCE_ASSIGN_OR_RETURN(SymbolId p, r.ReadSymbol());
    out.preds.push_back(p);
  }
  DEDUCE_ASSIGN_OR_RETURN(uint64_t nk, r.ReadUint());
  if (nk > r.remaining() + 1) {
    return StatusOr<RepairPullWire>(
        Status::InvalidArgument("known list length exceeds payload"));
  }
  for (uint64_t i = 0; i < nk; ++i) {
    Known k;
    DEDUCE_ASSIGN_OR_RETURN(k.pred, r.ReadSymbol());
    DEDUCE_ASSIGN_OR_RETURN(k.id, r.ReadTupleId());
    DEDUCE_ASSIGN_OR_RETURN(uint64_t ins, r.ReadUint());
    k.have_insert = ins != 0;
    DEDUCE_ASSIGN_OR_RETURN(uint64_t del, r.ReadUint());
    k.has_del = del != 0;
    out.known.push_back(k);
  }
  return out;
}

Message RepairPushWire::Encode() const {
  PayloadWriter w;
  w.WriteInt(final_target);
  w.WriteInt(replier);
  w.WriteUint(round);
  w.WriteUint(entries.size());
  for (const Entry& e : entries) {
    w.WriteSymbol(e.pred);
    w.WriteFact(e.fact);
    w.WriteTupleId(e.id);
    w.WriteInt(e.gen_ts);
    w.WriteUint(e.have_insert ? 1 : 0);
    w.WriteUint(e.has_del ? 1 : 0);
    w.WriteInt(e.del_ts);
  }
  Message m;
  m.type = kRepairPushMsg;
  m.payload = w.Take();
  return m;
}

StatusOr<RepairPushWire> RepairPushWire::Decode(const Message& msg) {
  PayloadReader r(msg.payload);
  RepairPushWire out;
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  out.final_target = static_cast<NodeId>(target);
  DEDUCE_ASSIGN_OR_RETURN(int64_t replier, r.ReadInt());
  out.replier = static_cast<NodeId>(replier);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t round, r.ReadUint());
  out.round = static_cast<uint32_t>(round);
  DEDUCE_ASSIGN_OR_RETURN(uint64_t n, r.ReadUint());
  if (n > r.remaining() + 1) {
    return StatusOr<RepairPushWire>(
        Status::InvalidArgument("entry list length exceeds payload"));
  }
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    DEDUCE_ASSIGN_OR_RETURN(e.pred, r.ReadSymbol());
    DEDUCE_ASSIGN_OR_RETURN(e.fact, r.ReadFact());
    DEDUCE_ASSIGN_OR_RETURN(e.id, r.ReadTupleId());
    DEDUCE_ASSIGN_OR_RETURN(e.gen_ts, r.ReadInt());
    DEDUCE_ASSIGN_OR_RETURN(uint64_t ins, r.ReadUint());
    e.have_insert = ins != 0;
    DEDUCE_ASSIGN_OR_RETURN(uint64_t del, r.ReadUint());
    e.has_del = del != 0;
    DEDUCE_ASSIGN_OR_RETURN(e.del_ts, r.ReadInt());
    out.entries.push_back(std::move(e));
  }
  return out;
}

StatusOr<NodeId> PeekFinalTarget(const Message& msg) {
  PayloadReader r(msg.payload);
  DEDUCE_ASSIGN_OR_RETURN(int64_t target, r.ReadInt());
  return static_cast<NodeId>(target);
}

namespace {

void CollectTraceIdsInto(const Message& msg, int depth,
                         std::vector<uint64_t>* out) {
  switch (msg.type) {
    case kStoreMsg: {
      StatusOr<StoreWire> w = StoreWire::Decode(msg);
      if (w.ok()) out->push_back(TraceIdFor(w->id));
      break;
    }
    case kJoinPassMsg: {
      StatusOr<JoinPassWire> w = JoinPassWire::Decode(msg);
      if (!w.ok()) break;
      out->push_back(TraceIdFor(w->update_id));
      for (const PartialWire& p : w->partials) {
        for (const auto& [literal, id] : p.support) {
          out->push_back(TraceIdFor(id));
        }
      }
      break;
    }
    case kResultMsg: {
      StatusOr<ResultWire> w = ResultWire::Decode(msg);
      if (!w.ok()) break;
      for (const TupleId& id : w->support) out->push_back(TraceIdFor(id));
      break;
    }
    case kAggMsg: {
      StatusOr<AggWire> w = AggWire::Decode(msg);
      if (w.ok()) out->push_back(TraceIdFor(w->contributor));
      break;
    }
    case kRepairPullMsg: {
      StatusOr<RepairPullWire> w = RepairPullWire::Decode(msg);
      if (!w.ok()) break;
      for (const RepairPullWire::Known& k : w->known) {
        out->push_back(TraceIdFor(k.id));
      }
      break;
    }
    case kRepairPushMsg: {
      StatusOr<RepairPushWire> w = RepairPushWire::Decode(msg);
      if (!w.ok()) break;
      for (const RepairPushWire::Entry& e : w->entries) {
        out->push_back(TraceIdFor(e.id));
      }
      break;
    }
    case kReliableMsg: {
      if (depth > 0) break;  // envelopes never nest; guard anyway
      StatusOr<ReliableWire> w = ReliableWire::Decode(msg);
      if (!w.ok()) break;
      Message inner;
      inner.type = w->inner_type;
      inner.payload = w->inner_payload;
      CollectTraceIdsInto(inner, depth + 1, out);
      break;
    }
    default:
      break;  // acks, digests: no tuples on board
  }
}

}  // namespace

std::vector<uint64_t> CollectTraceIds(const Message& msg) {
  std::vector<uint64_t> out;
  CollectTraceIdsInto(msg, 0, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --- frame integrity --------------------------------------------------------

namespace {

uint32_t Fnv1a(const uint8_t* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

}  // namespace

void SealFrame(Message* msg) {
  uint32_t h = Fnv1a(msg->payload.data(), msg->payload.size());
  for (int i = 0; i < 4; ++i) {
    msg->payload.push_back(static_cast<uint8_t>((h >> (8 * i)) & 0xff));
  }
}

bool CheckAndStripFrame(Message* msg) {
  if (msg->payload.size() < 4) return false;
  size_t n = msg->payload.size() - 4;
  uint32_t want = 0;
  for (int i = 0; i < 4; ++i) {
    want |= static_cast<uint32_t>(msg->payload[n + static_cast<size_t>(i)])
            << (8 * i);
  }
  if (Fnv1a(msg->payload.data(), n) != want) return false;
  msg->payload.resize(n);
  return true;
}

}  // namespace deduce
