#ifndef DEDUCE_ENGINE_OBSERVE_H_
#define DEDUCE_ENGINE_OBSERVE_H_

#include <string>

#include "deduce/common/metrics.h"
#include "deduce/common/trace.h"
#include "deduce/engine/plan.h"
#include "deduce/net/network.h"

namespace deduce {

/// Attributes an engine message to its phase and predicate for traffic
/// accounting: kStoreMsg -> "store", kJoinPassMsg -> "sweep",
/// kResultMsg -> "result", kAggMsg -> "agg", kAckMsg -> "ack". Reliable
/// envelopes are attributed to their inner message (`seq` gets the
/// transport sequence number). Unknown types land in "other". `pred` is
/// the predicate the bytes were spent on (head predicate for passes and
/// aggregates), or "" when the payload does not decode.
void AttributeEngineMessage(const QueryPlan& plan, const Message& msg,
                            std::string* phase, std::string* pred,
                            uint64_t* seq);

/// Installs a Network trace sink (via AddTraceSink) that turns every
/// transmission into a JSONL TraceRecord (kind "hop") in `trace` and live
/// per-phase / per-predicate counters in `metrics` (components "traffic"
/// and "pred"). Either sink target may be null; when both are null nothing
/// is installed, keeping the hot path free of the callback entirely.
///
/// With `provenance` set (EngineOptions::provenance.enabled), hop records
/// additionally carry the contributing trace-id set extracted from the
/// in-flight payload (CollectTraceIds, schema v2) and `metrics` gains a
/// per-predicate "prov" `<pred>.hop_bytes` histogram — the bytes-per-hop
/// distribution of each predicate's attributed traffic.
void InstallEngineObservability(Network* network, const QueryPlan* plan,
                                MetricsRegistry* metrics, TraceWriter* trace,
                                bool provenance = false);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_OBSERVE_H_
