#ifndef DEDUCE_ENGINE_PLAN_H_
#define DEDUCE_ENGINE_PLAN_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/analysis.h"
#include "deduce/datalog/program.h"

namespace deduce {

/// Where tuples of a predicate are replicated in the storage phase
/// (§III-A; the GPA storage region).
enum class StoragePolicy {
  kRow,        ///< Along the source's horizontal path (original PA).
  kBroadcast,  ///< Entire network (Naive Broadcast degenerate case).
  kLocal,      ///< Source node only (Local Storage degenerate case).
  kSpatial,    ///< All nodes within `spatial_radius` hops of the source.
  kCentroid,   ///< The rendezvous node near the network centroid.
};

const char* StoragePolicyToString(StoragePolicy p);

/// How a rule's join computation travels when an update arrives (the GPA
/// join-computation region).
enum class JoinStrategy {
  kLocalOnly,   ///< Everything needed is on the source node (Broadcast
                ///< storage / spatially-covered rules).
  kColumnSweep, ///< Sweep the update's vertical path (original PA).
  kSerpentine,  ///< Sweep the whole network (Local Storage degenerate).
  kCentroid,    ///< Route the update to the centroid and join there.
  kLocalRoute,  ///< Hop partials between data homes (home-placed
                ///< predicates; the shortest-path-tree programs of §V/§VI).
};

const char* JoinStrategyToString(JoinStrategy s);

/// Per-predicate placement decisions.
struct PredicatePlan {
  SymbolId pred = 0;
  bool derived = false;
  StoragePolicy storage = StoragePolicy::kRow;
  int spatial_radius = 0;
  /// Derived predicates: argument whose (integer node-id) value is the home
  /// node; unset = geographic hashing of the fact.
  std::optional<size_t> home_arg;
  /// Sliding-window range; IncrementalOptions::kNoWindow = unbounded.
  Timestamp window = INT64_MAX;
};

/// One step of a kLocalRoute plan.
struct RouteStep {
  size_t literal = 0;
  enum class Where {
    kHere,       ///< Data available wherever the partial currently is.
    kAtArgNode,  ///< Move to the node named by a bound argument.
  } where = Where::kHere;
  size_t arg = 0;  ///< For kAtArgNode: which argument of the literal.
};

/// The compiled reaction to one update kind: "when a tuple of body literal
/// `pinned_literal` of rule `rule_index` changes, run this join" (§IV-B:
/// one maintenance join per body stream occurrence).
struct DeltaPlan {
  size_t rule_index = 0;
  size_t pinned_literal = 0;
  JoinStrategy strategy = JoinStrategy::kColumnSweep;
  /// Sweeps: run the multiple-pass scheme (§III-A) instead of single-pass.
  bool multipass = false;
  /// Multipass order of positive literals (one pass per literal, then a
  /// final pass completing negation checks).
  std::vector<size_t> pass_literals;
  /// kLocalRoute: ordered evaluation steps.
  std::vector<RouteStep> steps;

  std::string ToString(const Program& program) const;
};

/// Global options for planning (benchmarks switch approaches here).
struct PlannerOptions {
  StoragePolicy default_storage = StoragePolicy::kRow;  ///< Base streams.
  /// Derived predicates default to the same policy as base streams.
  /// Multipass scheme for sweeps.
  bool multipass = false;
  /// Default sliding window for undeclared stream predicates.
  Timestamp default_window = INT64_MAX;
  /// Multi-tenant compilation (CompileMultiPlan): two tenants may use the
  /// same derived predicate name only when their sub-plans are identical
  /// (then the name dedups onto one shared evaluation). When a name
  /// collides across tenants with *different* sub-plans, strict mode
  /// rejects the registration with a clear error; non-strict mode renames
  /// the later tenant's predicate to "name@tenant" and keeps going.
  bool strict_tenant_collisions = true;
};

/// Compiled plan for an aggregate rule, e.g. avgt(R, avg(C)) :- temp(R, C).
/// Updates of the source stream are folded incrementally at a per-group
/// home node, which re-emits the aggregate fact whenever the value changes
/// — the engine-integrated version of §IV-C's incremental aggregates
/// (point-to-point rather than TAG's tree; see engine/aggregation.h for the
/// tree variant used for root-destined aggregates).
struct AggregatePlan {
  size_t rule_index = 0;
  size_t source_literal = 0;  ///< The single positive relational literal.
  AggKind kind = AggKind::kCount;
  size_t agg_position = 0;    ///< Aggregate argument index in the head.
  Term input;                 ///< Aggregated expression.
};

/// The compiled program: placements plus delta plans, indexed by predicate.
struct QueryPlan {
  Program program;           ///< Builtins resolved.
  ProgramAnalysis analysis;
  std::unordered_map<SymbolId, PredicatePlan> preds;
  std::vector<DeltaPlan> deltas;
  /// deltas indexes grouped by the pinned literal's predicate.
  std::unordered_map<SymbolId, std::vector<size_t>> deltas_by_pred;
  std::vector<AggregatePlan> aggregates;
  /// aggregate indexes grouped by the source predicate.
  std::unordered_map<SymbolId, std::vector<size_t>> aggregates_by_pred;

  const PredicatePlan& pred_plan(SymbolId pred) const {
    return preds.at(pred);
  }
  std::string ToString() const;
};

/// Compiles `program` into a QueryPlan. Validates the supported program
/// classes (rejects non-XY-stratified recursion through negation) and that
/// every rule is coverable by some join strategy under the chosen
/// placements. Aggregate rules are supported when they have exactly one
/// positive relational body literal plus filters (incremental per-group
/// aggregation); richer aggregate bodies are rejected toward the TAG
/// component (engine/aggregation.h). `.decl` storage/join properties
/// override the defaults.
StatusOr<QueryPlan> CompilePlan(const Program& program,
                                const BuiltinRegistry& registry,
                                const PlannerOptions& options);

// --- multi-tenant compilation ------------------------------------------------

/// One tenant's program, registered under a stable tenant name.
struct TenantProgram {
  std::string tenant;
  Program program;
};

/// Per-tenant read map over the merged evaluation DAG: where the facts the
/// tenant asked for actually live. Identity for predicates the tenant owns
/// (it registered the canonical sub-plan, or got a same-named alias store);
/// "name@tenant" for non-strict collision renames.
struct TenantView {
  std::string tenant;
  /// 1-based wire tenant id; 0 on the wire means "shared traffic" so that
  /// single-tenant frames stay byte-identical.
  uint32_t index = 0;
  /// Tenant predicate -> predicate the merged engine materializes for it.
  std::unordered_map<SymbolId, SymbolId> read;
  /// The tenant's derived / input predicates, deterministic order.
  std::vector<SymbolId> derived;
  std::vector<SymbolId> edb;
};

/// Result fan-out table: results of a canonical (deduped) sub-plan must
/// also be applied under each listed alias predicate, relabeled, so every
/// tenant keeps its own result homes and trace attribution. Keyed by the
/// canonical predicate; entries carry (wire tenant id, alias predicate).
using ResultFanout =
    std::unordered_map<SymbolId,
                       std::vector<std::pair<uint32_t, SymbolId>>>;

/// N tenant programs compiled onto one shared evaluation DAG.
struct MultiPlan {
  QueryPlan plan;               ///< The merged, deduplicated plan.
  std::vector<TenantView> views;
  ResultFanout fanout;
  /// Distinct derived sub-plans the merged DAG evaluates.
  uint64_t subplans_total = 0;
  /// Derived sub-plans requested across all tenants (pre-dedup).
  uint64_t subplans_requested = 0;
  /// requested - total: evaluations saved by cross-tenant sharing.
  uint64_t subplans_shared = 0;
};

/// Compiles N tenant programs into one shared evaluation DAG. Sub-plans are
/// canonicalized per dependency SCC (decl properties + rules with variables
/// and member names normalized, body predicates resolved through earlier
/// tenants) and deduplicated: two tenants whose predicates have identical
/// sub-plans share one evaluation; when the shared sub-plan lives under a
/// different name, its results are fanned out to a per-tenant alias store
/// (ResultFanout). Input streams are shared by name and must be declared
/// consistently across tenants. Name collisions between *different*
/// sub-plans follow PlannerOptions::strict_tenant_collisions.
StatusOr<MultiPlan> CompileMultiPlan(const std::vector<TenantProgram>& tenants,
                                     const BuiltinRegistry& registry,
                                     const PlannerOptions& options);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_PLAN_H_
