#include "deduce/engine/runtime.h"

#include <algorithm>

#include "deduce/common/logging.h"
#include "deduce/common/strings.h"
#include "deduce/eval/monoid.h"
#include "deduce/eval/rule_eval.h"

namespace deduce {

namespace {

constexpr Timestamp kNoWindow = INT64_MAX;

bool IsFilter(const Literal& lit) {
  return lit.kind == Literal::Kind::kComparison ||
         lit.kind == Literal::Kind::kBuiltin;
}

}  // namespace

void EngineStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr || !registry->enabled()) return;
  registry->Add(-1, "engine", "tuples_injected", tuples_injected);
  registry->Add(-1, "engine", "join_passes", join_passes);
  registry->Add(-1, "engine", "pass_messages", pass_messages);
  registry->Add(-1, "engine", "results_emitted", results_emitted);
  registry->Add(-1, "engine", "derivations_added", derivations_added);
  registry->Add(-1, "engine", "derivations_removed", derivations_removed);
  registry->Add(-1, "engine", "derived_generations", derived_generations);
  registry->Add(-1, "engine", "derived_deletions", derived_deletions);
  registry->Add(-1, "engine", "replicas_stored", replicas_stored);
  registry->Set(-1, "engine", "max_partials_in_message",
                static_cast<int64_t>(max_partials_in_message));
  registry->Add(-1, "engine", "retransmissions", retransmissions);
  registry->Add(-1, "engine", "acks_sent", acks_sent);
  registry->Add(-1, "engine", "acks_received", acks_received);
  registry->Add(-1, "engine", "duplicates_suppressed", duplicates_suppressed);
  registry->Add(-1, "engine", "gave_up_messages", gave_up_messages);
  registry->Add(-1, "engine", "rerouted_hops", rerouted_hops);
  registry->Add(-1, "engine", "skipped_sweep_nodes", skipped_sweep_nodes);
  registry->Add(-1, "engine", "skipped_store_nodes", skipped_store_nodes);
  registry->Add(-1, "engine", "repaired_messages", repaired_messages);
  registry->Add(-1, "engine", "retraction_requeues", retraction_requeues);
  registry->Add(-1, "engine", "retraction_obligations",
                retraction_obligations);
  registry->Add(-1, "engine", "repair_digest_rounds", repair_digest_rounds);
  registry->Add(-1, "engine", "repair_digest_replies", repair_digest_replies);
  registry->Add(-1, "engine", "repair_replicas_pulled",
                repair_replicas_pulled);
  registry->Add(-1, "engine", "repair_replicas_pushed",
                repair_replicas_pushed);
  registry->Add(-1, "engine", "resyncs_started", resyncs_started);
  registry->Add(-1, "engine", "resyncs_completed", resyncs_completed);
  registry->Add(-1, "engine", "resyncs_abandoned", resyncs_abandoned);
  registry->Add(-1, "engine", "resync_time_us", resync_time_us);
  registry->Add(-1, "engine", "degraded_results", degraded_results);
  registry->Set(-1, "engine", "liveness_epoch",
                static_cast<int64_t>(liveness_epoch));
  registry->Add(-1, "engine", "decode_errors", decode_errors);
  registry->Add(-1, "engine", "sheds", sheds);
  registry->Add(-1, "engine", "ingress_rejects", ingress_rejects);
  registry->Add(-1, "engine", "budget_evictions", budget_evictions);
  registry->Add(-1, "engine", "budget_squeezes", budget_squeezes);
  registry->Set(-1, "engine", "errors",
                static_cast<int64_t>(errors.size()));
}

NodeRuntime::NodeRuntime(EngineShared* shared, NodeId id)
    : shared_(shared), id_(id) {
  if (shared_->provenance.enabled) {
    prov_ = std::make_unique<ProvenanceStore>(shared_->provenance.ring_capacity);
  }
}

void NodeRuntime::RecordProvenance(ProvenanceEdge edge) {
  if (shared_->metrics != nullptr && edge.kind != ProvenanceEdge::Kind::kGen) {
    shared_->metrics->Observe(-1, "prov", SymbolName(edge.pred) + ".e2e_us",
                              edge.latency_us);
  }
  if (shared_->trace != nullptr && shared_->trace->on()) {
    shared_->trace->Emit(edge.ToTraceRecord());
  }
  uint64_t dropped_before = prov_->dropped();
  prov_->Push(std::move(edge));
  if (prov_->dropped() != dropped_before) {
    // The ring models bounded mote RAM: an eviction means ring-resident
    // lineage (ProvenanceEdges / in-engine explain) is now incomplete.
    // Count every eviction, warn once per node.
    if (shared_->metrics != nullptr) {
      shared_->metrics->Add(-1, "prov", "evictions");
    }
    if (!prov_evict_warned_) {
      prov_evict_warned_ = true;
      DEDUCE_LOG(kWarning)
          << "node " << id_ << ": provenance ring full (capacity "
          << prov_->capacity() << "), evicting lineage; explain trees over "
          << "ring-resident edges will report truncation";
    }
  }
}

void NodeRuntime::Start(NodeContext* ctx) {
  // Program facts are seeded at their home node. Derived-predicate facts
  // (e.g. the SPT root j(0, 0)) become permanent axioms of the home store;
  // input-predicate facts are injected as ordinary generations.
  for (const Fact& f : shared_->plan.program.facts()) {
    const PredicatePlan& pp = shared_->plan.pred_plan(f.predicate());
    if (HomeOf(pp, f) != id_) continue;
    if (!pp.derived) {
      Status st = Inject(ctx, StreamOp::kInsert, f);
      if (!st.ok()) Fault("seeding " + f.ToString() + ": " + st.message());
      continue;
    }
    HomeRel& rel = home_[f.predicate()];
    auto [it, inserted] = rel.map.emplace(f, HomeEntry{});
    if (inserted) rel.order.push_back(f);
    HomeEntry& e = it->second;
    if (e.alive) continue;
    Timestamp now = ctx->LocalTime();
    e.alive = true;
    e.id = TupleId{id_, now, seq_++};
    e.gen_ts = now;
    e.derivs.insert(Derivation{-1, {}});  // permanent axiom
    ++shared_->stats.derived_generations;
    // Multi-tenant fan-out for seeded axioms: alias home relations are
    // co-located with the canonical one (see ApplyResult), so the
    // relabeled copy is a local insert here too.
    if (!shared_->result_fanout.empty()) {
      auto fit = shared_->result_fanout.find(f.predicate());
      if (fit != shared_->result_fanout.end()) {
        for (const auto& [tenant, alias] : fit->second) {
          (void)tenant;
          Fact af(alias, f.args());
          HomeRel& arel = home_[alias];
          auto [ait, ains] = arel.map.emplace(af, HomeEntry{});
          if (ains) arel.order.push_back(af);
          HomeEntry& ae = ait->second;
          if (ae.alive) continue;
          ae.alive = true;
          ae.id = TupleId{id_, now, seq_++};
          ae.gen_ts = now;
          ae.derivs.insert(Derivation{-1, {}});
        }
      }
    }
    if (provenance_on()) {
      ProvenanceEdge pe;
      pe.kind = ProvenanceEdge::Kind::kGen;
      pe.time = now;
      pe.node = id_;
      pe.pred = f.predicate();
      pe.fact = f;
      pe.tid = TraceIdFor(e.id);
      RecordProvenance(std::move(pe));
    }
    GenerateDerivedUpdate(ctx, f.predicate(), f, e.id, StreamOp::kInsert, now);
  }
}

int NodeRuntime::NewTimer(NodeContext* ctx, SimTime delay,
                          std::function<void()> fn) {
  int id = next_timer_++;
  timers_[id] = std::move(fn);
  ctx->SetTimer(delay, id);
  return id;
}

void NodeRuntime::OnTimer(NodeContext* ctx, int timer_id) {
  (void)ctx;
  auto it = timers_.find(timer_id);
  if (it == timers_.end()) return;
  auto fn = std::move(it->second);
  timers_.erase(it);
  fn();
}

void NodeRuntime::Fault(const std::string& what) {
  shared_->stats.errors.push_back(
      StrFormat("node %d: %s", id_, what.c_str()));
}

void NodeRuntime::DropFrame() {
  ++shared_->stats.decode_errors;
  if (shared_->metrics != nullptr) {
    shared_->metrics->Add(id_, "engine", "decode_errors");
  }
}

void NodeRuntime::SendEngineMessage(NodeContext* ctx, NodeId final_target,
                                    Message msg) {
  if (final_target == id_) {
    Fault("SendEngineMessage to self");
    return;
  }
  // A target outside the topology can only come from a damaged frame that
  // decoded anyway (checksum off): drop it before it reaches the routing
  // tables, which index by node id.
  if (final_target < 0 || final_target >= shared_->topology->node_count()) {
    DropFrame();
    return;
  }
  if (transport_on() && msg.type != kAckMsg && msg.type != kReliableMsg) {
    SendReliable(ctx, final_target, msg);
    return;
  }
  ForwardEngineMessage(ctx, final_target, std::move(msg));
}

bool NodeRuntime::ForwardEngineMessage(NodeContext* ctx, NodeId final_target,
                                       Message msg) {
  if (final_target < 0 || final_target >= shared_->topology->node_count()) {
    DropFrame();
    return false;
  }
  NodeId plain = shared_->routing->GeoNextHop(id_, final_target);
  NodeId next = plain;
  if (transport_on()) {
    NodeId detour = shared_->routing->NextHopAvoiding(
        id_, final_target, shared_->liveness.down, shared_->liveness.version);
    if (detour != kNoNode) next = detour;
  }
  if (next == kNoNode) {
    Fault(StrFormat("no route to %d", final_target));
    return false;
  }
  if (next != plain) ++shared_->stats.rerouted_hops;
  if (checksum_on()) SealFrame(&msg);
  bool acked = ctx->Send(next, std::move(msg));
  // No MAC ack: every link-layer attempt toward `next` was lost, or `next`
  // is dead. Suspect it; a pure-loss false suspicion is cleared as soon as
  // anyone hears from it, and in the meantime routing detours around it.
  if (!acked && transport_on()) MarkDown(next);
  return acked;
}

void NodeRuntime::OnMessage(NodeContext* ctx, const Message& msg) {
  // Hearing anything from a node proves it is up (the link header is
  // never corrupted in the fault model, so src is trustworthy even for a
  // frame that fails its checksum).
  if (transport_on()) MarkUp(msg.src);
  if (checksum_on()) {
    Message frame = msg;
    if (!CheckAndStripFrame(&frame)) {
      DropFrame();
      return;
    }
    RouteOrDispatch(ctx, frame);
    return;
  }
  RouteOrDispatch(ctx, msg);
}

void NodeRuntime::RouteOrDispatch(NodeContext* ctx, const Message& msg) {
  // Forward unicast engine messages not addressed to us (routing layer).
  StatusOr<NodeId> target = PeekFinalTarget(msg);
  if (!target.ok()) {
    DropFrame();
    return;
  }
  if (*target != kNoNode && *target != id_) {
    ForwardEngineMessage(ctx, *target, msg);
    return;
  }
  DispatchEngineMessage(ctx, msg);
}

void NodeRuntime::DispatchEngineMessage(NodeContext* ctx,
                                        const Message& msg) {
  // A frame that fails to decode — or decodes to a predicate the plan
  // never compiled — is damaged (or stale garbage), not an engine bug: it
  // is dropped and counted, never Fault()ed. The pred checks matter when
  // the checksum is off: a bit-flipped SymbolId that slipped through
  // decoding must not reach pred_plan(), which indexes by predicate.
  auto known_pred = [this](SymbolId pred) {
    return shared_->plan.preds.count(pred) != 0;
  };
  switch (msg.type) {
    case kAckMsg: {
      StatusOr<AckWire> ack = AckWire::Decode(msg);
      if (!ack.ok()) {
        DropFrame();
        return;
      }
      HandleAck(*ack);
      return;
    }
    case kReliableMsg: {
      StatusOr<ReliableWire> rw = ReliableWire::Decode(msg);
      if (!rw.ok()) {
        DropFrame();
        return;
      }
      HandleReliable(ctx, *rw);
      return;
    }
    case kStoreMsg: {
      StatusOr<StoreWire> store = StoreWire::Decode(msg);
      if (!store.ok() || !known_pred(store->pred)) {
        DropFrame();
        return;
      }
      HandleStore(ctx, std::move(store).value());
      return;
    }
    case kJoinPassMsg: {
      StatusOr<JoinPassWire> jp = JoinPassWire::Decode(msg);
      if (!jp.ok()) {
        DropFrame();
        return;
      }
      HandleJoinPass(ctx, std::move(jp).value());
      return;
    }
    case kResultMsg: {
      StatusOr<ResultWire> rw = ResultWire::Decode(msg);
      if (!rw.ok() || !known_pred(rw->pred)) {
        DropFrame();
        return;
      }
      HandleResult(ctx, std::move(rw).value());
      return;
    }
    case kAggMsg: {
      StatusOr<AggWire> aw = AggWire::Decode(msg);
      if (!aw.ok()) {
        DropFrame();
        return;
      }
      HandleAgg(ctx, std::move(aw).value());
      return;
    }
    case kDigestRequestMsg: {
      StatusOr<DigestRequestWire> req = DigestRequestWire::Decode(msg);
      if (!req.ok()) {
        DropFrame();
        return;
      }
      repair_.HandleDigestRequest(ctx, *req);
      return;
    }
    case kDigestReplyMsg: {
      StatusOr<DigestReplyWire> reply = DigestReplyWire::Decode(msg);
      if (!reply.ok()) {
        DropFrame();
        return;
      }
      for (const PredDigest& d : reply->digests) {
        if (!known_pred(d.pred)) {
          DropFrame();
          return;
        }
      }
      repair_.HandleDigestReply(ctx, *reply);
      return;
    }
    case kRepairPullMsg: {
      StatusOr<RepairPullWire> pull = RepairPullWire::Decode(msg);
      if (!pull.ok()) {
        DropFrame();
        return;
      }
      for (SymbolId p : pull->preds) {
        if (!known_pred(p)) {
          DropFrame();
          return;
        }
      }
      for (const RepairPullWire::Known& k : pull->known) {
        if (!known_pred(k.pred)) {
          DropFrame();
          return;
        }
      }
      repair_.HandleRepairPull(ctx, *pull);
      return;
    }
    case kRepairPushMsg: {
      StatusOr<RepairPushWire> push = RepairPushWire::Decode(msg);
      if (!push.ok()) {
        DropFrame();
        return;
      }
      for (const RepairPushWire::Entry& e : push->entries) {
        if (!known_pred(e.pred)) {
          DropFrame();
          return;
        }
      }
      repair_.HandleRepairPush(ctx, *push);
      return;
    }
    default:
      DropFrame();
  }
}

// --- reliable transport ----------------------------------------------------

SimTime NodeRuntime::RtoFor(NodeId dest, size_t envelope_bytes) const {
  if (shared_->transport.rto > 0) return shared_->transport.rto;
  const LinkModel& link = *shared_->link;
  int hops = shared_->routing->HopDistance(id_, dest);
  if (hops < 1) hops = 1;
  // Worst-case forward hop (the envelope) plus worst-case return hop (a
  // small ack), times the hop count plus slack for detours: on a loss-free
  // run the ack always arrives before this fires.
  SimTime round = link.MaxHopDelay(envelope_bytes) + link.MaxHopDelay(64);
  return round * static_cast<SimTime>(hops + 2);
}

bool NodeRuntime::SheddableEnvelope(uint16_t inner_type,
                                    const std::vector<uint8_t>& payload) {
  Message m;
  m.type = inner_type;
  m.payload = payload;
  switch (inner_type) {
    case kStoreMsg: {
      StatusOr<StoreWire> s = StoreWire::Decode(m);
      return s.ok() && !s->deletion;
    }
    case kJoinPassMsg: {
      StatusOr<JoinPassWire> jp = JoinPassWire::Decode(m);
      return jp.ok() && !jp->removal;
    }
    case kResultMsg: {
      StatusOr<ResultWire> r = ResultWire::Decode(m);
      return r.ok() && !r->removal;
    }
    default:
      // Aggregate, repair and control traffic is never shed: losing a
      // contribution would skew an undegradable aggregate value, and
      // losing a deletion leaves a phantom standing.
      return false;
  }
}

void NodeRuntime::SendReliable(NodeContext* ctx, NodeId dest,
                               const Message& inner, int retraction_rounds) {
  if (budget_on() && shared_->budget.max_inflight > 0 &&
      pending_.size() >= shared_->budget.max_inflight) {
    bool new_sheddable = SheddableEnvelope(inner.type, inner.payload);
    bool evicted = false;
    if (shared_->budget.policy == ShedPolicy::kShedFarthestWindow) {
      // Drop the oldest sheddable unacked envelope to admit the new one
      // (map order: lowest dest, then lowest seq = oldest toward it).
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (SheddableEnvelope(it->second.inner_type,
                              it->second.inner_payload)) {
          pending_.erase(it);
          RecordShed(ctx, "inflight");
          evicted = true;
          break;
        }
      }
    }
    if (!evicted && new_sheddable) {
      RecordShed(ctx, "inflight");
      return;
    }
    // Nothing sheddable (all pending and the newcomer are
    // deletion-critical or aggregate traffic): admit over the cap —
    // correctness outranks the budget.
  }
  ReliableWire rw;
  rw.final_target = dest;
  rw.origin = id_;
  rw.seq = tx_seq_[dest]++;
  rw.inner_type = inner.type;
  rw.inner_payload = inner.payload;
  PendingMsg pm;
  pm.dest = dest;
  pm.seq = rw.seq;
  pm.envelope = rw.Encode();
  pm.inner_type = inner.type;
  pm.inner_payload = inner.payload;
  pm.retries_left = shared_->transport.max_retries;
  pm.rto = RtoFor(dest, pm.envelope.WireSize());
  pm.rto_cap = shared_->transport.rto_max > 0 ? shared_->transport.rto_max
               : shared_->transport.rto_max < 0 ? pm.rto * 64
                                                : 0;
  pm.retraction_rounds =
      retraction_rounds >= 0
          ? retraction_rounds
          : (retraction_on() ? shared_->transport.retraction_rounds : 0);
  uint64_t key = PendingKey(dest, pm.seq);
  pending_.emplace(key, std::move(pm));
  TransmitPending(ctx, key);
}

void NodeRuntime::TransmitPending(NodeContext* ctx, uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;  // acked in the meantime
  PendingMsg& pm = it->second;
  ForwardEngineMessage(ctx, pm.dest, pm.envelope);
  SimTime rto = pm.rto;
  // Randomized slack (TransportOptions::rto_jitter) desynchronizes the
  // retransmit bursts of origins that lost frames to the same event; the
  // draw comes from the node's deterministic RNG, so runs stay
  // reproducible per seed.
  if (shared_->transport.rto_jitter > 0) {
    rto += static_cast<SimTime>(
        static_cast<double>(rto) *
        ctx->rng().UniformDouble(0.0, shared_->transport.rto_jitter));
  }
  SimTime backed_off = static_cast<SimTime>(
      static_cast<double>(pm.rto) * shared_->transport.rto_backoff);
  if (pm.rto_cap > 0 && backed_off > pm.rto_cap) backed_off = pm.rto_cap;
  pm.rto = backed_off;
  NewTimer(ctx, rto, [this, ctx, key]() {
    auto it2 = pending_.find(key);
    if (it2 == pending_.end()) return;  // acked
    if (it2->second.retries_left <= 0) {
      GiveUp(ctx, key);
      return;
    }
    --it2->second.retries_left;
    ++shared_->stats.retransmissions;
    if (shared_->metrics != nullptr) {
      shared_->metrics->Add(id_, "transport", "retransmissions");
    }
    if (shared_->trace != nullptr && shared_->trace->on()) {
      TraceRecord r;
      r.time = ctx->LocalTime();
      r.node = id_;
      r.kind = "retransmit";
      r.phase = "retransmit";
      r.dst = it2->second.dest;
      r.bytes = it2->second.envelope.WireSize();
      r.seq = it2->second.seq;
      shared_->trace->Emit(r);
    }
    TransmitPending(ctx, key);
  });
}

void NodeRuntime::HandleReliable(NodeContext* ctx, const ReliableWire& rw) {
  // Always (re-)ack, even for duplicates — the previous ack may have been
  // lost, and the origin keeps retransmitting until it hears one.
  AckWire ack;
  ack.final_target = rw.origin;
  ack.acker = id_;
  ack.seq = rw.seq;
  ++shared_->stats.acks_sent;
  ForwardEngineMessage(ctx, rw.origin, ack.Encode());
  if (!rx_seen_.insert({rw.origin, rw.seq}).second) {
    ++shared_->stats.duplicates_suppressed;
    return;
  }
  if (rw.inner_type == kReliableMsg || rw.inner_type == kAckMsg) {
    DropFrame();  // nested envelope: only a damaged frame produces one
    return;
  }
  Message inner;
  inner.src = rw.origin;
  inner.dst = id_;
  inner.type = rw.inner_type;
  inner.payload = rw.inner_payload;
  DispatchEngineMessage(ctx, inner);
}

void NodeRuntime::HandleAck(const AckWire& ack) {
  ++shared_->stats.acks_received;
  MarkUp(ack.acker);
  pending_.erase(PendingKey(ack.acker, ack.seq));
}

void NodeRuntime::GiveUp(NodeContext* ctx, uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingMsg pm = std::move(it->second);
  pending_.erase(it);
  ++shared_->stats.gave_up_messages;
  MarkDown(pm.dest);
  TryRepair(ctx, pm);
  // Path repair salvages the *rest* of a walk or sweep, never the failed
  // destination itself. For a deletion that destination matters: a replica
  // that keeps an unmarked tuple (or a home that keeps an unremoved
  // derivation) serves phantom results forever. Keep retrying those
  // point-to-point on a slow bounded-rounds backoff — if the node is merely
  // lossy or briefly partitioned the mark eventually lands; if it is truly
  // dead its state died with it and the budget caps the traffic.
  if (retraction_on() && pm.retraction_rounds > 0) {
    std::optional<Message> inner = RetractionPayload(pm);
    if (inner.has_value()) {
      ++shared_->stats.retraction_requeues;
      QueueRetractionRetry(ctx, pm.dest, std::move(*inner),
                           pm.retraction_rounds - 1);
    }
  }
}

std::optional<Message> NodeRuntime::RetractionPayload(
    const PendingMsg& pm) const {
  Message inner;
  inner.type = pm.inner_type;
  inner.payload = pm.inner_payload;
  switch (pm.inner_type) {
    case kStoreMsg: {
      StatusOr<StoreWire> store = StoreWire::Decode(inner);
      if (!store.ok() || !store->deletion) return std::nullopt;
      // TryRepair already continued the walk behind the failed node; only
      // its own copy of the deletion mark is still owed.
      StoreWire direct = std::move(*store);
      direct.final_target = pm.dest;
      direct.path_remaining.clear();
      return direct.Encode();
    }
    case kJoinPassMsg: {
      StatusOr<JoinPassWire> jp = JoinPassWire::Decode(inner);
      if (!jp.ok() || !jp->removal) return std::nullopt;
      if (jp->delta_index >= shared_->plan.deltas.size()) return std::nullopt;
      // A lost removal pass strands every derivation its join step at the
      // failed node would have retracted. RepairJoinPass re-routes sweeps
      // *around* that node (and cannot re-route centroid/local routes at
      // all), so the failed node's own step is what is still owed.
      JoinPassWire direct = std::move(*jp);
      direct.final_target = pm.dest;
      const DeltaPlan& delta = shared_->plan.deltas[direct.delta_index];
      if (delta.strategy == JoinStrategy::kColumnSweep ||
          delta.strategy == JoinStrategy::kSerpentine) {
        direct.path_remaining.clear();  // tail already salvaged by repair
      }
      return direct.Encode();
    }
    case kResultMsg: {
      StatusOr<ResultWire> rw = ResultWire::Decode(inner);
      if (!rw.ok() || !rw->removal) return std::nullopt;
      return inner;
    }
    case kAggMsg: {
      StatusOr<AggWire> aw = AggWire::Decode(inner);
      if (!aw.ok() || !aw->removal) return std::nullopt;
      return inner;
    }
    default:
      return std::nullopt;
  }
}

void NodeRuntime::QueueRetractionRetry(NodeContext* ctx, NodeId dest,
                                       Message inner, int rounds_left) {
  // Linear backoff on rounds consumed: round k waits 2k worst-case round
  // trips before the fresh send, spacing the retries out far enough for a
  // transient partition or interference burst to clear.
  int used = shared_->transport.retraction_rounds - rounds_left;
  if (used < 1) used = 1;
  SimTime delay = RtoFor(dest, inner.WireSize() + 32) *
                  static_cast<SimTime>(2 * used);
  NewTimer(ctx, delay, [this, ctx, dest, inner, rounds_left]() {
    SendReliable(ctx, dest, inner, rounds_left);
  });
}

void NodeRuntime::TryRepair(NodeContext* ctx, const PendingMsg& pm) {
  Message inner;
  inner.type = pm.inner_type;
  inner.payload = pm.inner_payload;
  switch (pm.inner_type) {
    case kJoinPassMsg: {
      StatusOr<JoinPassWire> jp = JoinPassWire::Decode(inner);
      if (jp.ok()) RepairJoinPass(ctx, std::move(*jp));
      return;
    }
    case kStoreMsg: {
      // The dead node's replica is lost (the rest of its row still holds
      // the tuple); the walk continues at the first alive node behind it.
      StatusOr<StoreWire> store = StoreWire::Decode(inner);
      if (!store.ok() || store->path_remaining.empty()) return;
      std::vector<NodeId> visit = store->path_remaining;
      if (SendStoreWalk(ctx, std::move(*store), std::move(visit))) {
        ++shared_->stats.repaired_messages;
      }
      return;
    }
    default:
      // Result / aggregate messages name a unique home node; nothing can
      // stand in for it. The derivation is lost with the node.
      return;
  }
}

void NodeRuntime::RepairJoinPass(NodeContext* ctx, JoinPassWire jp) {
  if (jp.delta_index >= shared_->plan.deltas.size()) return;
  const DeltaPlan& delta = shared_->plan.deltas[jp.delta_index];
  if (delta.strategy != JoinStrategy::kColumnSweep &&
      delta.strategy != JoinStrategy::kSerpentine) {
    return;  // centroid / local-route targets are not substitutable
  }
  // The failed target plus the rest of the sweep, with down nodes skipped
  // (serpentine) or replaced by same-band alternates (column sweep — row
  // replication makes any band member equivalent).
  std::vector<NodeId> visit;
  visit.reserve(jp.path_remaining.size() + 1);
  visit.push_back(jp.final_target);
  visit.insert(visit.end(), jp.path_remaining.begin(),
               jp.path_remaining.end());
  visit = RepairVisitList(delta, visit);
  ++shared_->stats.repaired_messages;
  AdvancePass(ctx, std::move(jp), std::move(visit));
}

void NodeRuntime::MarkDown(NodeId node) {
  if (node == id_) return;
  if (shared_->liveness.Mark(node, true)) {
    shared_->stats.liveness_epoch = shared_->liveness.version;
  }
}

void NodeRuntime::MarkUp(NodeId node) {
  if (shared_->liveness.Mark(node, false)) {
    shared_->stats.liveness_epoch = shared_->liveness.version;
  }
}

void NodeRuntime::OnRestart(NodeContext* ctx) {
  // Volatile state is lost with the incarnation. tx_seq_, seq_, and
  // flood_seen_ survive: the first two key peers' dedup and tuple
  // identities, and flood_seen_ keys the receivers' flood dedup — wiping it
  // would let a late-arriving duplicate flood re-deliver (and rebroadcast)
  // a tuple this incarnation already consumed. A real mote would keep all
  // three in nonvolatile memory.
  replicas_.clear();
  home_.clear();
  agg_state_.clear();
  timers_.clear();
  pending_.clear();
  rx_seen_.clear();
  shed_preds_.clear();  // shed taint is per-incarnation, like the stores
  shed_all_ = false;
  ingress_open_ = 0;
  if (prov_ != nullptr) prov_->Clear();  // lineage ring is RAM too
  repair_.OnRestart(ctx);
}

// --- injection & storage phase -------------------------------------------

Status NodeRuntime::Inject(NodeContext* ctx, StreamOp op, const Fact& fact) {
  auto it = shared_->plan.preds.find(fact.predicate());
  if (it == shared_->plan.preds.end()) {
    return Status::NotFound("predicate not in program: " +
                            SymbolName(fact.predicate()));
  }
  if (it->second.derived) {
    return Status::InvalidArgument("cannot inject derived stream " +
                                   SymbolName(fact.predicate()));
  }
  // Admission control (EngineOptions::budget): refuse work at the front
  // door while the ingress queue is full, or — under the reject-injection
  // policy — while this node's replica store for the predicate is at
  // capacity. A refused injection never entered: the sender sees the
  // error, nothing is stored, launched or tainted.
  if (budget_on()) {
    const char* refusal = nullptr;
    if (shared_->budget.max_ingress > 0 &&
        ingress_open_ >= shared_->budget.max_ingress) {
      refusal = "ingress budget exhausted";
    } else if (op == StreamOp::kInsert &&
               shared_->budget.policy == ShedPolicy::kRejectInjection &&
               ReplicaStoreFull(fact.predicate())) {
      refusal = "replica budget exhausted";
    }
    if (refusal != nullptr) {
      ++shared_->stats.ingress_rejects;
      if (shared_->metrics != nullptr) {
        shared_->metrics->Add(id_, "budget", "ingress_rejects");
      }
      if (shared_->trace != nullptr && shared_->trace->on()) {
        TraceRecord r;
        r.time = ctx->LocalTime();
        r.node = id_;
        r.kind = "shed";
        r.phase = "shed";
        r.pred = SymbolName(fact.predicate());
        shared_->trace->Emit(r);
      }
      return Status::ResourceExhausted(
          StrFormat("%s at node %d", refusal, id_));
    }
  }
  ++shared_->stats.tuples_injected;
  Timestamp now = ctx->LocalTime();
  if (shared_->metrics != nullptr) {
    shared_->metrics->Add(id_, "engine", "tuples_injected");
  }
  auto emit_inject = [&](uint64_t trace_id) {
    if (shared_->trace == nullptr || !shared_->trace->on()) return;
    TraceRecord r;
    r.time = now;
    r.node = id_;
    r.kind = "inject";
    r.phase = "inject";
    r.pred = SymbolName(fact.predicate());
    r.bytes = 0;
    if (trace_id != 0) {  // provenance on: id the injected tuple (schema v2)
      r.schema = 2;
      r.tid = trace_id;
      r.fact = fact.ToString();
    }
    shared_->trace->Emit(r);
  };
  // With provenance off, the record is emitted here — before the tuple id
  // exists — keeping the v1 stream byte-identical. With provenance on it is
  // emitted once the id (and thus the trace id) is known.
  if (!provenance_on()) emit_inject(0);
  if (op == StreamOp::kInsert) {
    TupleId id{id_, now, seq_++};
    if (provenance_on()) emit_inject(TraceIdFor(id));
    StartStoragePhase(ctx, fact.predicate(), fact, id, now, /*deletion=*/false,
                      0);
    // The injection occupies an ingress slot until its join launch fires
    // (the bounded ingress queue's drain point).
    if (budget_on()) ++ingress_open_;
    NewTimer(ctx, shared_->timing.JoinDelay(),
             [this, ctx, fact, id, now]() {
               if (ingress_open_ > 0) --ingress_open_;
               LaunchJoinPasses(ctx, fact.predicate(), fact, id,
                                StreamOp::kInsert, now);
             });
    return Status::OK();
  }
  // Deletion: find the live tuple this node generated.
  auto rit = replicas_.find(fact.predicate());
  if (rit != replicas_.end()) {
    for (auto& [id, rep] : rit->second) {
      if (id.source != id_ || !rep.have_insert || rep.del_ts.has_value()) {
        continue;
      }
      if (rep.fact != fact) continue;
      TupleId tid = id;
      if (provenance_on()) emit_inject(TraceIdFor(tid));
      StartStoragePhase(ctx, fact.predicate(), fact, tid, rep.gen_ts,
                        /*deletion=*/true, now);
      Fact f = fact;
      if (budget_on()) ++ingress_open_;
      NewTimer(ctx, shared_->timing.JoinDelay(), [this, ctx, f, tid, now]() {
        if (ingress_open_ > 0) --ingress_open_;
        LaunchJoinPasses(ctx, f.predicate(), f, tid, StreamOp::kDelete, now);
      });
      return Status::OK();
    }
  }
  if (provenance_on()) emit_inject(0);  // failed deletion still traced (v1 did)
  return Status::NotFound("no live tuple " + fact.ToString() +
                          " generated at this node");
}

void NodeRuntime::StartStoragePhase(NodeContext* ctx, SymbolId pred,
                                    const Fact& fact, const TupleId& id,
                                    Timestamp gen_ts, bool deletion,
                                    Timestamp del_ts) {
  StoreWire store;
  store.pred = pred;
  store.fact = fact;
  store.id = id;
  store.gen_ts = gen_ts;
  store.deletion = deletion;
  store.del_ts = del_ts;
  RecordReplica(ctx, store);

  const PredicatePlan& pp = shared_->plan.pred_plan(pred);
  switch (pp.storage) {
    case StoragePolicy::kLocal:
      return;
    case StoragePolicy::kRow: {
      const std::vector<NodeId>& path = shared_->regions->HorizontalPath(id_);
      size_t mine = 0;
      while (mine < path.size() && path[mine] != id_) ++mine;
      DEDUCE_CHECK(mine < path.size());
      // Right half.
      if (mine + 1 < path.size()) {
        SendStoreWalk(ctx, store,
                      std::vector<NodeId>(
                          path.begin() + static_cast<long>(mine) + 1,
                          path.end()));
      }
      // Left half (walk outward in reverse order).
      if (mine > 0) {
        std::vector<NodeId> left;
        left.reserve(mine);
        for (size_t i = mine; i-- > 0;) left.push_back(path[i]);
        SendStoreWalk(ctx, store, std::move(left));
      }
      return;
    }
    case StoragePolicy::kBroadcast:
    case StoragePolicy::kSpatial: {
      int ttl = pp.storage == StoragePolicy::kBroadcast
                    ? shared_->topology->node_count()
                    : pp.spatial_radius;
      flood_seen_.insert({id, deletion});
      StoreWire flood = store;
      flood.final_target = kNoNode;
      flood.flood_ttl = ttl - 1;
      if (ttl <= 0) return;
      Message m = flood.Encode();
      if (checksum_on()) SealFrame(&m);
      for (NodeId v : ctx->neighbors()) ctx->Send(v, m);
      return;
    }
    case StoragePolicy::kCentroid: {
      NodeId centroid = shared_->regions->CentroidNode();
      if (centroid == id_) return;  // already recorded locally
      StoreWire c = store;
      c.final_target = centroid;
      SendEngineMessage(ctx, centroid, c.Encode());
      return;
    }
  }
}

void NodeRuntime::RecordShed(NodeContext* ctx, const char* what,
                             SymbolId pred) {
  ++shared_->stats.sheds;
  // Sticky taint: this node's stores/work touching `pred` are now possibly
  // incomplete, so every join pass through here whose head depends on it
  // must carry the degraded bit (§IV-B degraded visibility, same channel
  // the repair protocol uses). Cleared only by reboot, which wipes the
  // shed state along with everything else.
  if (pred < 0) {
    shed_all_ = true;
  } else {
    shed_preds_.insert(pred);
  }
  if (shared_->metrics != nullptr) {
    shared_->metrics->Add(id_, "budget", "sheds");
    shared_->metrics->Add(id_, "budget", std::string("sheds_") + what);
  }
  if (shared_->trace != nullptr && shared_->trace->on()) {
    TraceRecord r;
    r.time = ctx->LocalTime();
    r.node = id_;
    r.kind = "shed";
    r.phase = "shed";
    r.pred = what;
    shared_->trace->Emit(r);
  }
}

bool NodeRuntime::ShedTaints(SymbolId pred) const {
  if (shed_all_) return true;
  if (shed_preds_.empty()) return false;
  auto it = shared_->taint_deps.find(pred);
  // A head with no dependency entry cannot be argued clean — stay as
  // conservative as the old node-global bit.
  if (it == shared_->taint_deps.end()) return true;
  for (SymbolId shed : shed_preds_) {
    if (it->second.count(shed) != 0) return true;
  }
  return false;
}

SymbolId NodeRuntime::DeltaHead(const DeltaPlan& delta) const {
  return shared_->plan.program.rules()[delta.rule_index].head.predicate;
}

bool NodeRuntime::ReplicaStoreFull(SymbolId pred) const {
  size_t cap = shared_->budget.max_replicas_per_pred;
  if (cap == 0) return false;
  auto it = replicas_.find(pred);
  if (it == replicas_.end() || it->second.size() < cap) return false;
  size_t live = 0;
  for (const auto& [id, rep] : it->second) {
    if (rep.have_insert && !rep.del_ts.has_value()) ++live;
  }
  return live >= cap;
}

bool NodeRuntime::AdmitReplica(NodeContext* ctx, SymbolId pred,
                               Timestamp now) {
  size_t cap = shared_->budget.max_replicas_per_pred;
  if (!budget_on() || cap == 0) return true;
  auto it = replicas_.find(pred);
  // Cheap early-out: live replicas never exceed total entries.
  if (it == replicas_.end() || it->second.size() < cap) return true;
  size_t live = 0;
  auto oldest = it->second.end();
  for (auto rit = it->second.begin(); rit != it->second.end(); ++rit) {
    const Replica& rep = rit->second;
    if (!rep.have_insert || rep.del_ts.has_value()) continue;
    ++live;
    if (oldest == it->second.end() ||
        rep.gen_ts < oldest->second.gen_ts) {
      oldest = rit;
    }
  }
  if (live < cap) return true;
  if (shared_->budget.policy == ShedPolicy::kShedFarthestWindow &&
      oldest != it->second.end()) {
    // Early-expire the replica farthest into its window. A deletion mark —
    // not an erase — so removal sweeps still find the tuple and shedding
    // can never strand a retraction (§IV-A: marks are never removed); the
    // entry itself is garbage-collected by its normal expiry timer.
    oldest->second.del_ts = now;
    ++shared_->stats.budget_evictions;
    if (shared_->metrics != nullptr) {
      shared_->metrics->Add(id_, "budget", "budget_evictions");
    }
    RecordShed(ctx, "replica_evict", pred);
    return true;
  }
  // Shed-newest (and reject-injection at non-source nodes, where there is
  // no injector to refuse): the arriving replica is never recorded.
  RecordShed(ctx, "replica", pred);
  return false;
}

void NodeRuntime::RecordReplica(NodeContext* ctx, const StoreWire& store) {
  if (budget_on() && !store.deletion) {
    auto pit = replicas_.find(store.pred);
    bool known = pit != replicas_.end() && pit->second.count(store.id) > 0;
    if (!known && !AdmitReplica(ctx, store.pred, ctx->LocalTime())) return;
  }
  Replica& rep = replicas_[store.pred][store.id];
  bool changed = false;
  if (store.deletion) {
    changed = !rep.del_ts.has_value();
    rep.del_ts = store.del_ts;
    if (!rep.have_insert) rep.fact = store.fact;  // mark overtook insert
  } else {
    rep.fact = store.fact;
    rep.gen_ts = store.gen_ts;
    if (!rep.have_insert) {
      changed = true;
      rep.have_insert = true;
      ++shared_->stats.replicas_stored;
      // Garbage-collect after (τs+τc)+τj+(w+τc) (§IV-B tuple expiry).
      Timestamp window = shared_->plan.pred_plan(store.pred).window;
      if (window != kNoWindow) {
        Timestamp expire_local =
            store.gen_ts + window + shared_->timing.ExpirySlack();
        SimTime delay = std::max<SimTime>(0, expire_local - ctx->LocalTime());
        SymbolId pred = store.pred;
        TupleId id = store.id;
        NewTimer(ctx, delay, [this, pred, id]() {
          ScopedSpan span(shared_->metrics, id_, "window_expiry");
          auto it = replicas_.find(pred);
          if (it != replicas_.end()) it->second.erase(id);
        });
      }
    }
  }
  // Only genuine state changes count as anti-entropy dirt; re-deliveries
  // must not keep the repair timer alive forever.
  if (changed) repair_.OnReplicaActivity(ctx);
}

void NodeRuntime::HandleStore(NodeContext* ctx, StoreWire store) {
  if (store.flood_ttl >= 0) {
    // Flood mode.
    auto key = std::make_pair(store.id, store.deletion);
    if (flood_seen_.count(key)) return;
    flood_seen_.insert(key);
    RecordReplica(ctx, store);
    if (store.flood_ttl > 0) {
      StoreWire next = store;
      next.flood_ttl = store.flood_ttl - 1;
      Message m = next.Encode();
      if (checksum_on()) SealFrame(&m);
      NodeId from = kNoNode;  // rebroadcast to all but nobody in particular
      (void)from;
      for (NodeId v : ctx->neighbors()) ctx->Send(v, m);
    }
    return;
  }
  // Path walk / point-to-point.
  RecordReplica(ctx, store);
  if (!store.path_remaining.empty()) {
    std::vector<NodeId> visit = store.path_remaining;
    SendStoreWalk(ctx, std::move(store), std::move(visit));
  }
}

// --- join phase ------------------------------------------------------------

bool NodeRuntime::Visible(const Replica& r, Timestamp update_ts,
                          Timestamp window, bool for_removal) const {
  if (!r.have_insert) return false;
  if (r.gen_ts > update_ts) return false;
  if (window != kNoWindow && r.gen_ts <= update_ts - window) return false;
  // Removal passes ignore deletion marks: when two supports of a derivation
  // die, each deletion's removal join must still see the other (already
  // marked) support, or the derivation is orphaned. Removals are
  // idempotent, so the superset is safe.
  if (!for_removal && r.del_ts.has_value() && *r.del_ts < update_ts) {
    return false;
  }
  return true;
}

bool NodeRuntime::NegMatchLocally(SymbolId pred,
                                  const std::vector<Term>& args,
                                  Timestamp update_ts,
                                  const std::optional<TupleId>& exclude) const {
  // Negation checks use *current-state* semantics: a tuple blocks iff its
  // replica is present and not deletion-marked (plus the window lower
  // bound). Timestamp-filtered negation (gen <= τ like positive matches)
  // would let a spuriously-derived wave of an XY-stratified program outrun
  // its own retraction wave forever on cyclic graphs: a pass would not see
  // the blocker tuple generated "just after" its update timestamp even
  // though the blocker is already stored. Current-state checks mirror the
  // centralized incremental engine; transiently wrong outcomes are repaired
  // by the blocker's own insertion/deletion pass (§IV-B), so the quiescent
  // state is identical. A deletion-marked tuple never blocks — which also
  // implements the §IV-B rule that a tuple being deleted is excluded from
  // the join that computes the effects of its own deletion.
  auto it = replicas_.find(pred);
  if (it == replicas_.end()) return false;
  Timestamp window = shared_->plan.pred_plan(pred).window;
  Fact ground(pred, args);
  for (const auto& [id, rep] : it->second) {
    if (exclude.has_value() && id == *exclude) continue;
    if (!rep.have_insert) continue;
    if (rep.del_ts.has_value()) continue;
    if (window != INT64_MAX && rep.gen_ts <= update_ts - window) continue;
    if (rep.fact == ground) return true;
  }
  return false;
}

NodeRuntime::Partial NodeRuntime::FromWire(const PartialWire& w) {
  Partial p;
  p.mask = w.matched_mask;
  for (const auto& [var, term] : w.bindings) p.subst.Bind(var, term);
  p.support = w.support;
  return p;
}

PartialWire NodeRuntime::ToWire(const Partial& p) {
  PartialWire w;
  w.matched_mask = p.mask;
  std::vector<std::pair<SymbolId, Term>> bindings(p.subst.map().begin(),
                                                  p.subst.map().end());
  std::sort(bindings.begin(), bindings.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.bindings = std::move(bindings);
  w.support = p.support;
  return w;
}

bool NodeRuntime::EvalFilters(const DeltaPlan& delta, Partial* p) {
  const Rule& rule = shared_->plan.program.rules()[delta.rule_index];
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (p->mask & (1u << i)) continue;
      const Literal& lit = rule.body[i];
      if (!IsFilter(lit)) continue;
      auto side_bound = [&](const Term& t) {
        std::vector<SymbolId> vars;
        t.CollectVariables(&vars);
        return std::all_of(vars.begin(), vars.end(), [&](SymbolId v) {
          return p->subst.IsBound(v);
        });
      };
      if (lit.kind == Literal::Kind::kComparison) {
        bool lb = side_bound(lit.lhs);
        bool rb = side_bound(lit.rhs);
        if (lb && rb) {
          StatusOr<Term> lhs = EvalTerm(p->subst.Apply(lit.lhs),
                                        shared_->registry);
          StatusOr<Term> rhs = EvalTerm(p->subst.Apply(lit.rhs),
                                        shared_->registry);
          if (!lhs.ok() || !rhs.ok()) return false;
          if (!EvalCmp(lit.cmp, *lhs, *rhs)) return false;
          p->mask |= (1u << i);
          changed = true;
        } else if (lit.cmp == CmpOp::kEq && (lb != rb)) {
          StatusOr<Term> src = EvalTerm(
              p->subst.Apply(lb ? lit.lhs : lit.rhs), shared_->registry);
          if (!src.ok() || !src->is_ground()) continue;
          const Term& pattern = lb ? lit.rhs : lit.lhs;
          if (!SolveMatchTerm(pattern, *src, &p->subst, shared_->registry)) {
            return false;
          }
          p->mask |= (1u << i);
          changed = true;
        }
      } else {  // builtin
        std::vector<SymbolId> vars;
        lit.atom.CollectVariables(&vars);
        bool bound = std::all_of(vars.begin(), vars.end(), [&](SymbolId v) {
          return p->subst.IsBound(v);
        });
        if (!bound) continue;
        const BuiltinPredicateFn* fn = shared_->registry.FindPredicate(
            lit.atom.predicate, lit.atom.arity());
        if (fn == nullptr) return false;
        std::vector<Term> args;
        bool args_ok = true;
        for (const Term& a : lit.atom.args) {
          StatusOr<Term> n = EvalTerm(p->subst.Apply(a), shared_->registry);
          if (!n.ok()) {
            args_ok = false;
            break;
          }
          args.push_back(std::move(n).value());
        }
        if (!args_ok) return false;
        StatusOr<bool> holds = (*fn)(args);
        if (!holds.ok()) return false;
        if ((*holds == lit.builtin_negated)) return false;
        p->mask |= (1u << i);
        changed = true;
      }
    }
  }
  return true;
}

bool NodeRuntime::IsPositiveComplete(const DeltaPlan& delta,
                                     const Partial& p) const {
  const Rule& rule = shared_->plan.program.rules()[delta.rule_index];
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (rule.body[i].kind != Literal::Kind::kPositive) continue;
    if (!(p.mask & (1u << i))) return false;
  }
  return true;
}

void NodeRuntime::ProcessPartialsHere(NodeContext* ctx, const DeltaPlan& delta,
                                      bool removal, Timestamp update_ts,
                                      const TupleId& update_id,
                                      int extend_literal, bool at_launch,
                                      std::vector<Partial>* partials) {
  (void)ctx;
  ScopedSpan span(shared_->metrics, id_, "rule_eval");
  const Rule& rule = shared_->plan.program.rules()[delta.rule_index];
  const auto& launch_ok = shared_->launch_evaluable[static_cast<size_t>(
      &delta - shared_->plan.deltas.data())];
  const Literal& pinned = rule.body[delta.pinned_literal];
  // §IV-B: when a tuple is *deleted from a negated stream*, the revived
  // derivations must still fail against any other tuple matching the same
  // ground subgoal — the deleted tuple itself is excluded.
  bool check_pinned_neg =
      pinned.kind == Literal::Kind::kNegated && !removal;

  // extend_literal: -2 = everything is local (centroid / local-only final),
  // -1 = per-mode default, >= 0 = only that literal (multipass).
  auto extendable = [&](size_t i) {
    if (i == delta.pinned_literal) return false;
    if (rule.body[i].kind != Literal::Kind::kPositive) return false;
    if (extend_literal == -2) return true;
    if (extend_literal >= 0) return i == static_cast<size_t>(extend_literal);
    if (at_launch) return launch_ok[i] != 0;
    // Sweep node: literals not resolvable at launch.
    return launch_ok[i] == 0;
  };
  bool all_local = extend_literal == -2;

  std::vector<Partial> out;
  std::vector<Partial> work = std::move(*partials);
  partials->clear();
  // Per-step rule-eval budget (EngineOptions::budget): bound how many
  // partials one evaluation step may expand. Removal passes are exempt —
  // shedding a removal partial would strand the retraction it carries.
  size_t eval_cap =
      budget_on() && !removal ? shared_->budget.max_eval_work : 0;
  size_t evaluated = 0;
  while (!work.empty()) {
    if (eval_cap > 0 && evaluated >= eval_cap) {
      for (size_t i = 0; i < work.size(); ++i) {
        RecordShed(ctx, "eval", DeltaHead(delta));
      }
      work.clear();
      break;
    }
    ++evaluated;
    Partial p = std::move(work.back());
    work.pop_back();
    if (!EvalFilters(delta, &p)) continue;

    // Negation checks. Removal passes skip them entirely: removing a
    // derivation is idempotent (a never-added derivation is a no-op), and
    // filtering removals through negations can orphan derivations whose
    // blocker arrived after they were added.
    bool dead = false;
    for (size_t i = 0; !removal && i < rule.body.size() && !dead; ++i) {
      const Literal& lit = rule.body[i];
      bool is_pinned = (i == delta.pinned_literal);
      if (lit.kind != Literal::Kind::kNegated) continue;
      if (is_pinned && !check_pinned_neg) continue;
      if (!is_pinned && (p.mask & (1u << i))) continue;  // already verified
      // Only check once ground.
      std::vector<SymbolId> vars;
      lit.atom.CollectVariables(&vars);
      bool bound = std::all_of(vars.begin(), vars.end(), [&](SymbolId v) {
        return p.subst.IsBound(v);
      });
      if (!bound) continue;
      std::vector<Term> args;
      bool ok = true;
      for (const Term& a : lit.atom.args) {
        StatusOr<Term> n = EvalTerm(p.subst.Apply(a), shared_->registry);
        if (!n.ok() || !n->is_ground()) {
          ok = false;
          break;
        }
        args.push_back(std::move(n).value());
      }
      if (!ok) continue;
      std::optional<TupleId> exclude;
      if (is_pinned) exclude = update_id;
      if (NegMatchLocally(lit.atom.predicate, args, update_ts, exclude)) {
        dead = true;
        break;
      }
      // Maskable negations (data fully visible here) are done for good.
      if (!is_pinned &&
          (all_local || (at_launch && launch_ok[i] != 0))) {
        p.mask |= (1u << i);
      }
    }
    if (dead) continue;

    // Extensions.
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (p.mask & (1u << i)) continue;
      if (!extendable(i)) continue;
      const Literal& lit = rule.body[i];
      auto rit = replicas_.find(lit.atom.predicate);
      if (rit == replicas_.end()) continue;
      Timestamp window = shared_->plan.pred_plan(lit.atom.predicate).window;
      for (const auto& [rid, rep] : rit->second) {
        if (!Visible(rep, update_ts, window, removal)) continue;
        Partial p2 = p;
        if (!SolveMatchTerms(lit.atom.args, rep.fact.args(), &p2.subst,
                             shared_->registry)) {
          continue;
        }
        p2.mask |= (1u << i);
        p2.support.emplace_back(static_cast<uint32_t>(i), rid);
        work.push_back(std::move(p2));
      }
    }
    out.push_back(std::move(p));
  }
  *partials = std::move(out);
}

std::vector<NodeId> NodeRuntime::SweepPath(const DeltaPlan& delta,
                                           NodeId source, uint32_t pass_index,
                                           bool removal) const {
  // Retraction protocol: removal passes sweep the whole serpentine even for
  // column-sweep deltas. A column sweep touches one node per band, and if
  // that node rebooted away its replicas the deletion's removal join comes
  // up empty and the derived result is stranded; the full sweep finds any
  // surviving band replica. Removals are idempotent, so the duplicate
  // emissions from multi-replica bands are absorbed at the homes.
  bool serpentine = delta.strategy == JoinStrategy::kSerpentine ||
                    (removal && retraction_on());
  std::vector<NodeId> path = serpentine
                                 ? shared_->regions->SerpentinePath()
                                 : shared_->regions->VerticalPath(source);
  if (pass_index % 2 == 1) std::reverse(path.begin(), path.end());
  return path;
}

NodeId NodeRuntime::BandAlternate(NodeId dead) const {
  const std::vector<NodeId>& band = shared_->regions->HorizontalPath(dead);
  const Location& at = shared_->topology->location(dead);
  NodeId best = kNoNode;
  double best_d = 0;
  for (NodeId v : band) {
    if (v == dead) continue;
    if (v != id_ && shared_->liveness.IsDown(v)) continue;
    double d = shared_->topology->location(v).DistanceTo(at);
    if (best == kNoNode || d < best_d - 1e-12) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

std::vector<NodeId> NodeRuntime::RepairVisitList(
    const DeltaPlan& delta, const std::vector<NodeId>& path) const {
  std::vector<NodeId> out;
  out.reserve(path.size());
  for (NodeId v : path) {
    // Never skip ourselves: a node cannot suspect itself, and a false
    // suspicion by others must not make it drop out of its own sweep.
    if (v == id_ || !shared_->liveness.IsDown(v)) {
      out.push_back(v);
      continue;
    }
    ++shared_->stats.skipped_sweep_nodes;
    if (delta.strategy == JoinStrategy::kColumnSweep) {
      NodeId alt = BandAlternate(v);
      if (alt != kNoNode) out.push_back(alt);
    }
    // Serpentine visits every node anyway; a down node is simply skipped
    // (its replicas are unreachable regardless of who we ask).
  }
  return out;
}

std::vector<NodeId> NodeRuntime::LiveSweepPath(const DeltaPlan& delta,
                                               NodeId source,
                                               uint32_t pass_index,
                                               bool removal) const {
  std::vector<NodeId> path = SweepPath(delta, source, pass_index, removal);
  if (!transport_on()) return path;
  return RepairVisitList(delta, path);
}

void NodeRuntime::AdvancePass(NodeContext* ctx, JoinPassWire jp,
                              std::vector<NodeId> visit) {
  if (!visit.empty()) {
    jp.final_target = visit[0];
    jp.path_remaining.assign(visit.begin() + 1, visit.end());
    if (jp.final_target == id_) {
      HandleJoinPass(ctx, std::move(jp));
    } else {
      ++shared_->stats.pass_messages;
      SendEngineMessage(ctx, jp.final_target, jp.Encode());
    }
    return;
  }
  // End of this pass.
  const DeltaPlan& delta = shared_->plan.deltas[jp.delta_index];
  uint32_t total_passes = shared_->total_passes[jp.delta_index];
  if (jp.pass_index + 1 < total_passes) {
    // The next pass's path starts where the previous one ended; this node
    // must process again under the new pass semantics, so it stays in.
    jp.pass_index += 1;
    std::vector<NodeId> path =
        LiveSweepPath(delta, jp.update_id.source, jp.pass_index, jp.removal);
    AdvancePass(ctx, std::move(jp), std::move(path));
    return;
  }
  std::vector<Partial> partials;
  partials.reserve(jp.partials.size());
  for (const PartialWire& w : jp.partials) partials.push_back(FromWire(w));
  EmitComplete(ctx, delta, jp.removal, jp.update_ts, std::move(partials),
               jp.degraded);
}

bool NodeRuntime::SendStoreWalk(NodeContext* ctx, StoreWire store,
                                std::vector<NodeId> visit) {
  if (transport_on()) {
    std::vector<NodeId> live;
    live.reserve(visit.size());
    for (NodeId v : visit) {
      if (v != id_ && shared_->liveness.IsDown(v)) {
        ++shared_->stats.skipped_store_nodes;
        // A skipped *insert* is recoverable — the rest of the band holds
        // the tuple and anti-entropy can refill the gap. A skipped
        // *deletion mark* is not: if the suspicion was false (pure loss),
        // the node keeps serving the tuple as alive. Owe it the mark
        // directly on the retraction-retry schedule.
        if (retraction_on() && store.deletion) {
          ++shared_->stats.retraction_obligations;
          StoreWire direct = store;
          direct.final_target = v;
          direct.path_remaining.clear();
          QueueRetractionRetry(ctx, v, direct.Encode(),
                               shared_->transport.retraction_rounds - 1);
        }
        continue;
      }
      live.push_back(v);
    }
    visit = std::move(live);
  }
  if (visit.empty()) return false;
  store.final_target = visit[0];
  store.path_remaining.assign(visit.begin() + 1, visit.end());
  SendEngineMessage(ctx, store.final_target, store.Encode());
  return true;
}

void NodeRuntime::LaunchJoinPasses(NodeContext* ctx, SymbolId pred,
                                   const Fact& fact, const TupleId& id,
                                   StreamOp op, Timestamp update_ts) {
  LaunchAggregates(ctx, pred, fact, id, op, update_ts);
  auto dit = shared_->plan.deltas_by_pred.find(pred);
  if (dit == shared_->plan.deltas_by_pred.end()) return;
  for (size_t delta_index : dit->second) {
    const DeltaPlan& delta = shared_->plan.deltas[delta_index];
    const Rule& rule = shared_->plan.program.rules()[delta.rule_index];
    const Literal& pinned = rule.body[delta.pinned_literal];
    Partial p0;
    if (!SolveMatchTerms(pinned.atom.args, fact.args(), &p0.subst,
                         shared_->registry)) {
      continue;  // constants in the pinned literal do not match this tuple
    }
    p0.mask = 1u << delta.pinned_literal;
    if (pinned.kind == Literal::Kind::kPositive) {
      p0.support.emplace_back(static_cast<uint32_t>(delta.pinned_literal),
                              id);
    }
    bool removal =
        (pinned.kind == Literal::Kind::kPositive) == (op == StreamOp::kDelete);
    // §IV-B: deleting a tuple of a negated stream only revives derivations
    // if no *other* tuple matches the same ground subgoal. The duplicates
    // live on this node (local/home storage) or are re-checked along the
    // sweep; either way a local hit blocks everything early.
    if (pinned.kind == Literal::Kind::kNegated && op == StreamOp::kDelete &&
        NegMatchLocally(pred, fact.args(), update_ts, id)) {
      continue;
    }
    ++shared_->stats.join_passes;

    std::vector<Partial> partials = {std::move(p0)};
    if (delta.strategy != JoinStrategy::kLocalRoute &&
        delta.strategy != JoinStrategy::kCentroid) {
      // Resolve launch-evaluable literals here.
      ProcessPartialsHere(ctx, delta, removal, update_ts, id,
                          /*extend_literal=*/-1, /*at_launch=*/true,
                          &partials);
    }
    if (partials.empty()) continue;

    JoinPassWire jp;
    jp.delta_index = static_cast<uint32_t>(delta_index);
    jp.removal = removal;
    jp.update_ts = update_ts;
    jp.update_id = id;
    jp.pass_index = 0;
    jp.degraded = repair_.degraded() || ShedTaints(DeltaHead(delta));
    for (const Partial& p : partials) jp.partials.push_back(ToWire(p));

    switch (delta.strategy) {
      case JoinStrategy::kLocalOnly:
        EmitComplete(ctx, delta, removal, update_ts, std::move(partials),
                     jp.degraded);
        break;
      case JoinStrategy::kCentroid: {
        NodeId centroid = shared_->regions->CentroidNode();
        jp.final_target = centroid;
        if (centroid == id_) {
          HandleJoinPass(ctx, std::move(jp));
        } else {
          ++shared_->stats.pass_messages;
          SendEngineMessage(ctx, centroid, jp.Encode());
        }
        break;
      }
      case JoinStrategy::kColumnSweep:
      case JoinStrategy::kSerpentine: {
        AdvancePass(ctx, std::move(jp),
                    LiveSweepPath(delta, id.source, 0, removal));
        break;
      }
      case JoinStrategy::kLocalRoute: {
        jp.final_target = id_;
        HandleJoinPass(ctx, std::move(jp));
        break;
      }
    }
  }
}

void NodeRuntime::HandleJoinPass(NodeContext* ctx, JoinPassWire jp) {
  if (jp.delta_index >= shared_->plan.deltas.size()) {
    DropFrame();  // wire-derived index: damaged frame, not a bug
    return;
  }
  const DeltaPlan& delta = shared_->plan.deltas[jp.delta_index];
  // A rebooted, not-yet-resynced store may be missing band replicas — and
  // so may a store that shed replicas or work under a budget: taint every
  // pass that runs through either so its results are flagged.
  if (repair_.degraded() || ShedTaints(DeltaHead(delta))) jp.degraded = true;
  shared_->stats.max_partials_in_message = std::max(
      shared_->stats.max_partials_in_message,
      static_cast<uint64_t>(jp.partials.size()));
  if (delta.strategy == JoinStrategy::kLocalRoute) {
    RunRouteStep(ctx, std::move(jp));
    return;
  }
  RunPassHere(ctx, std::move(jp));
}

void NodeRuntime::RunPassHere(NodeContext* ctx, JoinPassWire jp) {
  ScopedSpan span(shared_->metrics, id_, "sweep_pass");
  const DeltaPlan& delta = shared_->plan.deltas[jp.delta_index];
  std::vector<Partial> partials;
  partials.reserve(jp.partials.size());
  for (const PartialWire& w : jp.partials) partials.push_back(FromWire(w));

  if (delta.strategy == JoinStrategy::kCentroid ||
      delta.strategy == JoinStrategy::kLocalOnly) {
    // All data is local: extend everything, then emit.
    ProcessPartialsHere(ctx, delta, jp.removal, jp.update_ts, jp.update_id,
                        /*extend_literal=*/-2, /*at_launch=*/false,
                        &partials);
    EmitComplete(ctx, delta, jp.removal, jp.update_ts, std::move(partials),
                 jp.degraded);
    return;
  }

  // Sweep node.
  int extend_literal = -1;
  if (delta.multipass) {
    extend_literal = jp.pass_index < delta.pass_literals.size()
                         ? static_cast<int>(delta.pass_literals[jp.pass_index])
                         : INT32_MAX;  // trailing negation pass: no extension
  } else if (jp.pass_index >= 1) {
    extend_literal = INT32_MAX;  // single-pass negation sweep
  }
  ProcessPartialsHere(ctx, delta, jp.removal, jp.update_ts, jp.update_id,
                      extend_literal, /*at_launch=*/false, &partials);

  if (partials.empty()) return;  // nothing left to carry

  JoinPassWire next = std::move(jp);
  next.partials.clear();
  for (const Partial& p : partials) next.partials.push_back(ToWire(p));
  std::vector<NodeId> visit = std::move(next.path_remaining);
  next.path_remaining.clear();
  if (transport_on()) {
    // Drop/replace sweep nodes that became suspect since the pass started.
    visit = RepairVisitList(delta, visit);
  }
  AdvancePass(ctx, std::move(next), std::move(visit));
}

void NodeRuntime::RunRouteStep(NodeContext* ctx, JoinPassWire jp) {
  const DeltaPlan& delta = shared_->plan.deltas[jp.delta_index];
  const Rule& rule = shared_->plan.program.rules()[delta.rule_index];
  std::vector<Partial> partials;
  partials.reserve(jp.partials.size());
  for (const PartialWire& w : jp.partials) partials.push_back(FromWire(w));

  size_t step_idx = jp.pass_index;
  while (step_idx < delta.steps.size() && !partials.empty()) {
    const RouteStep& step = delta.steps[step_idx];
    const Literal& lit = rule.body[step.literal];

    if (step.where == RouteStep::Where::kAtArgNode) {
      // Partition by target node; keep ours, forward the rest.
      std::map<NodeId, std::vector<Partial>> groups;
      std::vector<Partial> mine;
      for (Partial& p : partials) {
        Term t = p.subst.Apply(lit.atom.args[step.arg]);
        StatusOr<Term> n = EvalTerm(t, shared_->registry);
        if (n.ok()) t = std::move(n).value();
        if (!t.is_constant() || !t.value().is_int()) {
          Fault("route argument is not a node id in " + lit.ToString());
          continue;
        }
        NodeId target = static_cast<NodeId>(t.value().as_int());
        if (target < 0 || target >= shared_->topology->node_count()) {
          Fault(StrFormat("route target %d out of range", target));
          continue;
        }
        if (target == id_) {
          mine.push_back(std::move(p));
        } else {
          groups[target].push_back(std::move(p));
        }
      }
      for (auto& [target, group] : groups) {
        JoinPassWire next = jp;
        next.pass_index = static_cast<uint32_t>(step_idx);
        next.final_target = target;
        next.partials.clear();
        for (const Partial& p : group) next.partials.push_back(ToWire(p));
        ++shared_->stats.pass_messages;
        SendEngineMessage(ctx, target, next.Encode());
      }
      partials = std::move(mine);
      if (partials.empty()) return;
    }

    // Evaluate the step's literal locally.
    std::vector<Partial> out;
    Timestamp window = shared_->plan.pred_plan(lit.atom.predicate).window;
    for (Partial& p : partials) {
      if (!EvalFilters(delta, &p)) continue;
      if (lit.kind == Literal::Kind::kPositive) {
        auto rit = replicas_.find(lit.atom.predicate);
        if (rit == replicas_.end()) continue;
        for (const auto& [rid, rep] : rit->second) {
          if (!Visible(rep, jp.update_ts, window, jp.removal)) continue;
          Partial p2 = p;
          if (!SolveMatchTerms(lit.atom.args, rep.fact.args(), &p2.subst,
                               shared_->registry)) {
            continue;
          }
          p2.mask |= (1u << step.literal);
          p2.support.emplace_back(static_cast<uint32_t>(step.literal), rid);
          if (EvalFilters(delta, &p2)) out.push_back(std::move(p2));
        }
      } else {  // negated step
        if (jp.removal) {
          // Removal passes skip negation filters (see ProcessPartialsHere).
          p.mask |= (1u << step.literal);
          out.push_back(std::move(p));
          continue;
        }
        std::vector<Term> args;
        bool ok = true;
        for (const Term& a : lit.atom.args) {
          StatusOr<Term> n = EvalTerm(p.subst.Apply(a), shared_->registry);
          if (!n.ok() || !n->is_ground()) {
            ok = false;
            break;
          }
          args.push_back(std::move(n).value());
        }
        if (!ok) {
          Fault("negated route step not ground: " + lit.ToString());
          continue;
        }
        if (NegMatchLocally(lit.atom.predicate, args, jp.update_ts,
                            std::nullopt)) {
          continue;  // blocked
        }
        p.mask |= (1u << step.literal);
        out.push_back(std::move(p));
      }
    }
    partials = std::move(out);
    ++step_idx;
  }
  if (partials.empty()) return;

  // Pinned-negated deletion check (§IV-B): done at launch node for
  // local-route (the duplicates live at the update's own home). jp may have
  // travelled, so re-checking here would be incomplete; the launch node did
  // it via LaunchJoinPasses -> ... -> RunRouteStep step 0 at the source.
  EmitComplete(ctx, delta, jp.removal, jp.update_ts, std::move(partials),
               jp.degraded);
}

void NodeRuntime::EmitComplete(NodeContext* ctx, const DeltaPlan& delta,
                               bool removal, Timestamp update_ts,
                               std::vector<Partial> partials, bool degraded) {
  const Rule& rule = shared_->plan.program.rules()[delta.rule_index];
  const auto& sweep_neg =
      shared_->sweep_checked_negation[&delta - shared_->plan.deltas.data()];
  for (Partial& p : partials) {
    if (!EvalFilters(delta, &p)) continue;
    if (!IsPositiveComplete(delta, p)) continue;
    bool ok = true;
    for (size_t i = 0; i < rule.body.size() && ok; ++i) {
      if (p.mask & (1u << i)) continue;
      if (i == delta.pinned_literal) continue;
      const Literal& lit = rule.body[i];
      if (lit.kind == Literal::Kind::kNegated) {
        // Sweep-checked negations were verified along the pass; removal
        // passes skip negation filters altogether; anything else unmasked
        // means the plan failed to place it.
        if (!sweep_neg[i] && !removal) ok = false;
      } else {
        ok = false;  // unresolved filter: should not happen for safe rules
      }
    }
    if (!ok) {
      Fault("incomplete partial at emission for rule " + rule.ToString());
      continue;
    }
    // Build the head.
    std::vector<Term> args;
    bool ground = true;
    for (const Term& a : rule.head.args) {
      StatusOr<Term> n = EvalTerm(p.subst.Apply(a), shared_->registry);
      if (!n.ok() || !n->is_ground()) {
        ground = false;
        break;
      }
      args.push_back(std::move(n).value());
    }
    if (!ground) {
      Fault("non-ground head at emission for rule " + rule.ToString());
      continue;
    }
    Fact head(rule.head.predicate, std::move(args));

    ResultWire rw;
    rw.pred = head.predicate();
    rw.fact = head;
    rw.removal = removal;
    rw.rule_id = rule.id;
    std::sort(p.support.begin(), p.support.end());
    for (const auto& [lit, tid] : p.support) rw.support.push_back(tid);
    rw.update_ts = update_ts;
    rw.degraded = degraded;
    ShipResult(ctx, std::move(rw));
  }
}

void NodeRuntime::ShipResult(NodeContext* ctx, ResultWire rw) {
  // Shed taint rides the existing degraded bit: results shipped by a node
  // that discarded state or work their head depends on (including
  // aggregate emissions from a group home that shed) are flagged "sound
  // but possibly partial".
  if (ShedTaints(rw.pred)) rw.degraded = true;
  NodeId home = HomeOf(shared_->plan.pred_plan(rw.pred), rw.fact);
  rw.final_target = home;
  ++shared_->stats.results_emitted;
  if (home == id_) {
    ApplyResult(ctx, rw);
  } else {
    SendEngineMessage(ctx, home, rw.Encode());
  }
}

void NodeRuntime::LaunchAggregates(NodeContext* ctx, SymbolId pred,
                                   const Fact& fact, const TupleId& id,
                                   StreamOp op, Timestamp update_ts) {
  auto ait = shared_->plan.aggregates_by_pred.find(pred);
  if (ait == shared_->plan.aggregates_by_pred.end()) return;
  for (size_t plan_index : ait->second) {
    const AggregatePlan& plan = shared_->plan.aggregates[plan_index];
    const Rule& rule = shared_->plan.program.rules()[plan.rule_index];
    const Literal& source = rule.body[plan.source_literal];
    Partial p;
    if (!SolveMatchTerms(source.atom.args, fact.args(), &p.subst,
                         shared_->registry)) {
      continue;
    }
    p.mask = 1u << plan.source_literal;
    DeltaPlan filter_plan;  // EvalFilters only consults the rule index
    filter_plan.rule_index = plan.rule_index;
    filter_plan.pinned_literal = plan.source_literal;
    if (!EvalFilters(filter_plan, &p)) continue;
    // Group key: the head arguments except the aggregate position.
    AggWire aw;
    aw.plan_index = static_cast<uint32_t>(plan_index);
    aw.removal = op == StreamOp::kDelete;
    bool ok = true;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (i == plan.agg_position) continue;
      StatusOr<Term> n =
          EvalTerm(p.subst.Apply(rule.head.args[i]), shared_->registry);
      if (!n.ok() || !n->is_ground()) {
        ok = false;
        break;
      }
      aw.group.push_back(std::move(n).value());
    }
    StatusOr<Term> value =
        EvalTerm(p.subst.Apply(plan.input), shared_->registry);
    if (!ok || !value.ok() || !value->is_ground()) {
      Fault("aggregate group/value not ground for rule " + rule.ToString());
      continue;
    }
    aw.value = std::move(value).value();
    aw.contributor = id;
    aw.update_ts = update_ts;
    // Group home: stable hash of (rule, group key).
    std::string key = StrFormat("agg%zu", plan_index);
    for (const Term& t : aw.group) key += "\x1f" + t.ToString();
    NodeId home = shared_->geohash->HomeForKey(Fnv1a(key));
    aw.final_target = home;
    if (home == id_) {
      HandleAgg(ctx, std::move(aw));
    } else {
      SendEngineMessage(ctx, home, aw.Encode());
    }
  }
}

void NodeRuntime::HandleAgg(NodeContext* ctx, AggWire aw) {
  if (aw.plan_index >= shared_->plan.aggregates.size()) {
    DropFrame();  // wire-derived index: damaged frame, not a bug
    return;
  }
  const AggregatePlan& plan = shared_->plan.aggregates[aw.plan_index];
  const Rule& rule = shared_->plan.program.rules()[plan.rule_index];

  std::string key;
  for (const Term& t : aw.group) key += t.ToString() + "\x1f";
  AggGroup& group = agg_state_[aw.plan_index][key];

  if (aw.removal) {
    group.contributions.erase(aw.contributor);
  } else {
    group.contributions.emplace(aw.contributor, aw.value);
    // Windowed source streams: the contribution retires with its tuple.
    Timestamp window =
        shared_->plan.pred_plan(rule.body[plan.source_literal].atom.predicate)
            .window;
    if (window != kNoWindow) {
      AggWire expiry = aw;
      expiry.removal = true;
      SimTime delay =
          std::max<SimTime>(0, aw.update_ts + window - ctx->LocalTime());
      NewTimer(ctx, delay, [this, ctx, expiry]() {
        HandleAgg(ctx, expiry);
      });
    }
  }

  // Recompute the aggregate for this group: a left-to-right monoid fold
  // over the live contributions (window/operator state is an explicit
  // mergeable AggState, eval/monoid.h).
  std::optional<Fact> next;
  if (!group.contributions.empty()) {
    AggState acc = AggIdentity();
    for (const auto& [cid, v] : group.contributions) {
      AggAccumulate(plan.kind, v, &acc);
    }
    Term result = AggExtract(plan.kind, acc);
    std::vector<Term> args;
    size_t gi = 0;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      args.push_back(i == plan.agg_position ? result : aw.group[gi++]);
    }
    next = Fact(rule.head.predicate, std::move(args));
  }

  if (group.emitted == next) return;  // value unchanged
  Timestamp now = ctx->LocalTime();
  Derivation d;
  d.rule_id = rule.id;
  if (group.emitted.has_value()) {
    ResultWire rw;
    rw.pred = group.emitted->predicate();
    rw.fact = *group.emitted;
    rw.removal = true;
    rw.rule_id = rule.id;
    rw.update_ts = now;
    ShipResult(ctx, std::move(rw));
  }
  if (next.has_value()) {
    if (provenance_on()) {
      // The aggregate's lineage lives here at the group home: result wires
      // ship with empty support (the contributor set can be large), so this
      // edge is what ties the emitted fact to its contributors.
      ProvenanceEdge pe;
      pe.kind = ProvenanceEdge::Kind::kAgg;
      pe.time = now;
      pe.node = id_;
      pe.pred = next->predicate();
      pe.fact = *next;
      pe.rule_id = rule.id;
      pe.inputs.reserve(group.contributions.size());
      for (const auto& [cid, value] : group.contributions) {
        pe.inputs.push_back(TraceIdFor(cid));
      }
      pe.latency_us = now - aw.update_ts;
      RecordProvenance(std::move(pe));
    }
    ResultWire rw;
    rw.pred = next->predicate();
    rw.fact = *next;
    rw.removal = false;
    rw.rule_id = rule.id;
    rw.update_ts = now;
    ShipResult(ctx, std::move(rw));
  }
  group.emitted = next;
}

NodeId NodeRuntime::HomeOf(const PredicatePlan& plan, const Fact& fact) const {
  if (plan.home_arg.has_value()) {
    const Term& t = fact.args()[*plan.home_arg];
    if (t.is_constant() && t.value().is_int()) {
      NodeId n = static_cast<NodeId>(t.value().as_int());
      if (n >= 0 && n < shared_->topology->node_count()) return n;
    }
    // Fall through to hashing on malformed home args.
  }
  return shared_->geohash->HomeNode(fact);
}

void NodeRuntime::HandleResult(NodeContext* ctx, ResultWire rw) {
  ApplyResult(ctx, rw);
}

void NodeRuntime::ApplyResult(NodeContext* ctx, const ResultWire& rw) {
  // Multi-tenant fan-out, home side: a result of a deduped canonical
  // sub-plan is also applied, relabeled, into each subscribed tenant's
  // alias home relation — same support, degraded bit, and removal
  // semantics, with the tenant id recorded on the copy. Fanning out here
  // (at the canonical result home) instead of at the deriving node keeps
  // the marginal network cost of an overlapping tenant at zero: the alias
  // relation is co-located with the canonical one and no extra messages
  // are shipped. Copies carry a nonzero tenant id so they never fan out
  // again; single-tenant engines have an empty table and never reach the
  // lookup.
  if (rw.tenant == 0 && !shared_->result_fanout.empty()) {
    auto fit = shared_->result_fanout.find(rw.pred);
    if (fit != shared_->result_fanout.end()) {
      for (const auto& [tenant, alias] : fit->second) {
        ResultWire copy = rw;
        copy.tenant = tenant;
        copy.pred = alias;
        copy.fact = Fact(alias, rw.fact.args());
        copy.final_target = id_;
        ApplyResult(ctx, copy);
      }
    }
  }
  if (rw.degraded) {
    // Observability only: the result is sound, but its producing pass ran
    // through a not-yet-resynced store and siblings may be missing.
    ++shared_->stats.degraded_results;
    if (shared_->metrics != nullptr) {
      shared_->metrics->Add(id_, "repair", "degraded_results");
    }
  }
  HomeRel& rel = home_[rw.pred];
  auto [it, inserted] = rel.map.emplace(rw.fact, HomeEntry{});
  if (inserted) rel.order.push_back(rw.fact);
  HomeEntry& e = it->second;
  // Sticky: once any contributing pass ran degraded (repair or shedding),
  // the reported result stays flagged for the shed-soundness invariant.
  if (rw.degraded) e.degraded = true;

  Derivation d;
  d.rule_id = rw.rule_id;
  d.support = rw.support;

  if (!rw.removal) {
    if (retraction_on() && !d.support.empty() && e.anti.count(d) != 0) {
      // A removal for this exact support set already landed. Support tuple
      // ids are never reused, so the derivation can never legitimately come
      // back — this insert is a retransmission-delayed straggler that would
      // otherwise revive a retracted result.
      return;
    }
    if (!e.derivs.insert(d).second) return;  // duplicate derivation
    ++shared_->stats.derivations_added;
    if (provenance_on()) {
      ProvenanceEdge pe;
      pe.kind = ProvenanceEdge::Kind::kRule;
      pe.time = ctx->LocalTime();
      pe.node = id_;
      pe.pred = rw.pred;
      pe.fact = rw.fact;
      pe.rule_id = rw.rule_id;
      pe.inputs.reserve(rw.support.size());
      for (const TupleId& sid : rw.support) {
        pe.inputs.push_back(TraceIdFor(sid));
      }
      pe.latency_us = pe.time - rw.update_ts;
      RecordProvenance(std::move(pe));
    }
    if (e.alive || e.pending) return;
    // First derivation: the derived tuple will be generated here (§III-B),
    // after the finalization wait of §IV-C — a retraction arriving within
    // the wait silently cancels the generation.
    e.pending = true;
    uint64_t epoch = ++e.epoch;
    SymbolId pred = rw.pred;
    Fact fact = rw.fact;
    NewTimer(ctx, shared_->timing.finalize_delay,
             [this, ctx, pred, fact, epoch]() {
               FinalizeGeneration(ctx, pred, fact, epoch);
             });
  } else {
    if (retraction_on() && !d.support.empty()) e.anti.insert(d);
    if (e.derivs.erase(d) == 0) return;
    ++shared_->stats.derivations_removed;
    if (!e.derivs.empty()) return;
    if (e.pending) {
      // Retracted before generation: absorbed, no traffic.
      e.pending = false;
      ++e.epoch;
      return;
    }
    if (!e.alive) return;
    e.alive = false;
    Timestamp now = ctx->LocalTime();
    ++shared_->stats.derived_deletions;
    GenerateDerivedUpdate(ctx, rw.pred, rw.fact, e.id, StreamOp::kDelete, now);
  }
}

void NodeRuntime::FinalizeGeneration(NodeContext* ctx, SymbolId pred,
                                     const Fact& fact, uint64_t epoch) {
  auto hit = home_.find(pred);
  if (hit == home_.end()) return;
  auto fit = hit->second.map.find(fact);
  if (fit == hit->second.map.end()) return;
  HomeEntry& e = fit->second;
  if (!e.pending || e.epoch != epoch) return;
  e.pending = false;
  if (e.derivs.empty()) return;
  Timestamp now = ctx->LocalTime();
  e.alive = true;
  e.id = TupleId{id_, now, seq_++};
  e.gen_ts = now;
  ++shared_->stats.derived_generations;
  if (provenance_on()) {
    ProvenanceEdge pe;
    pe.kind = ProvenanceEdge::Kind::kGen;
    pe.time = now;
    pe.node = id_;
    pe.pred = pred;
    pe.fact = fact;
    pe.tid = TraceIdFor(e.id);
    RecordProvenance(std::move(pe));
  }
  GenerateDerivedUpdate(ctx, pred, fact, e.id, StreamOp::kInsert, now);
  // Windowed derived streams expire (generating a deletion update).
  Timestamp window = shared_->plan.pred_plan(pred).window;
  if (window != kNoWindow) {
    TupleId gen_id = e.id;
    NewTimer(ctx, window, [this, ctx, pred, fact, gen_id]() {
      auto hit2 = home_.find(pred);
      if (hit2 == home_.end()) return;
      auto fit2 = hit2->second.map.find(fact);
      if (fit2 == hit2->second.map.end()) return;
      HomeEntry& entry = fit2->second;
      if (!entry.alive || entry.id != gen_id) return;
      entry.alive = false;
      entry.derivs.clear();
      Timestamp now2 = ctx->LocalTime();
      ++shared_->stats.derived_deletions;
      GenerateDerivedUpdate(ctx, pred, fact, gen_id, StreamOp::kDelete, now2);
    });
  }
}

void NodeRuntime::GenerateDerivedUpdate(NodeContext* ctx, SymbolId pred,
                                        const Fact& fact, const TupleId& id,
                                        StreamOp op, Timestamp ts) {
  StartStoragePhase(ctx, pred, fact, id, op == StreamOp::kInsert ? ts : 0,
                    /*deletion=*/op == StreamOp::kDelete, ts);
  Fact f = fact;
  TupleId tid = id;
  NewTimer(ctx, shared_->timing.JoinDelay(), [this, ctx, pred, f, tid, op,
                                              ts]() {
    LaunchJoinPasses(ctx, pred, f, tid, op, ts);
  });
}

std::vector<Fact> NodeRuntime::HomeFacts(SymbolId pred) const {
  std::vector<Fact> out;
  auto it = home_.find(pred);
  if (it == home_.end()) return out;
  for (const Fact& f : it->second.order) {
    if (it->second.map.at(f).alive) out.push_back(f);
  }
  return out;
}

std::vector<Fact> NodeRuntime::UndegradedHomeFacts(SymbolId pred) const {
  std::vector<Fact> out;
  auto it = home_.find(pred);
  if (it == home_.end()) return out;
  for (const Fact& f : it->second.order) {
    const HomeEntry& e = it->second.map.at(f);
    if (e.alive && !e.degraded) out.push_back(f);
  }
  return out;
}

std::vector<PredDigest> NodeRuntime::ShareableDigests(NodeId other,
                                                      Timestamp now) const {
  return repair_.ComputeDigests(other, now);
}

bool NodeRuntime::OwnsHome(const Fact& fact) const {
  return HomeOf(shared_->plan.pred_plan(fact.predicate()), fact) == id_;
}

size_t NodeRuntime::ReplicaCount() const {
  size_t n = 0;
  for (const auto& [pred, reps] : replicas_) n += reps.size();
  return n;
}

size_t NodeRuntime::DerivationCount() const {
  size_t n = 0;
  for (const auto& [pred, rel] : home_) {
    for (const auto& [fact, e] : rel.map) n += e.derivs.size();
  }
  return n;
}

}  // namespace deduce
