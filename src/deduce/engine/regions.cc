#include "deduce/engine/regions.h"

#include <algorithm>
#include <cmath>

#include "deduce/common/logging.h"

namespace deduce {

RegionMapper::RegionMapper(const Topology* topology) : topology_(topology) {
  int n = topology_->node_count();
  int band_count;
  if (topology_->grid_side().has_value()) {
    band_count = *topology_->grid_side();
  } else {
    band_count = std::max(1, static_cast<int>(std::lround(
                                 std::sqrt(static_cast<double>(n)))));
  }

  // Sort nodes by y, slice into equal-size bands, order each band by x.
  std::vector<NodeId> by_y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) by_y[static_cast<size_t>(i)] = i;
  std::stable_sort(by_y.begin(), by_y.end(), [&](NodeId a, NodeId b) {
    double ya = topology_->location(a).y;
    double yb = topology_->location(b).y;
    if (ya != yb) return ya < yb;
    return a < b;
  });
  bands_.resize(static_cast<size_t>(band_count));
  band_of_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    int band = std::min(band_count - 1, i * band_count / n);
    bands_[static_cast<size_t>(band)].push_back(by_y[static_cast<size_t>(i)]);
  }
  for (size_t b = 0; b < bands_.size(); ++b) {
    auto& band = bands_[b];
    std::stable_sort(band.begin(), band.end(), [&](NodeId x, NodeId y) {
      double xa = topology_->location(x).x;
      double xb = topology_->location(y).x;
      if (xa != xb) return xa < xb;
      return x < y;
    });
    for (NodeId node : band) band_of_[static_cast<size_t>(node)] = static_cast<int>(b);
  }
  band_xs_.resize(bands_.size());
  for (size_t b = 0; b < bands_.size(); ++b) {
    band_xs_[b].reserve(bands_[b].size());
    for (NodeId node : bands_[b]) {
      band_xs_[b].push_back(topology_->location(node).x);
    }
  }

  // Centroid.
  double cx = 0, cy = 0;
  for (int i = 0; i < n; ++i) {
    cx += topology_->location(i).x;
    cy += topology_->location(i).y;
  }
  centroid_ = topology_->ClosestNode(cx / n, cy / n);
}

const std::vector<NodeId>& RegionMapper::HorizontalPath(NodeId n) const {
  return bands_[static_cast<size_t>(BandOf(n))];
}

std::vector<NodeId> RegionMapper::VerticalPath(NodeId n) const {
  double x = topology_->location(n).x;
  std::vector<NodeId> out;
  out.reserve(bands_.size());
  for (size_t b = 0; b < bands_.size(); ++b) {
    const auto& band = bands_[b];
    if (band.empty()) continue;
    const auto& xs = band_xs_[b];
    // Bands are sorted by (x, id), so the nearest-x member sits next to the
    // insertion point. Equal-x runs keep the run's first (lowest-id) member,
    // and near-ties keep the left one unless the right is closer by more
    // than the tolerance — exactly the band scan this replaces.
    size_t p = static_cast<size_t>(
        std::lower_bound(xs.begin(), xs.end(), x) - xs.begin());
    NodeId best;
    if (p == 0) {
      best = band[0];
    } else {
      // First index of the run containing p-1 (its lowest id).
      size_t l = static_cast<size_t>(
          std::lower_bound(xs.begin(), xs.begin() + static_cast<long>(p),
                           xs[p - 1]) -
          xs.begin());
      if (p == xs.size()) {
        best = band[l];
      } else {
        double dl = std::fabs(xs[l] - x);
        double dr = std::fabs(xs[p] - x);
        best = (dr < dl - 1e-12) ? band[p] : band[l];
      }
    }
    out.push_back(best);
  }
  return out;
}

std::vector<NodeId> RegionMapper::SerpentinePath() const {
  std::vector<NodeId> out;
  for (size_t b = 0; b < bands_.size(); ++b) {
    if (b % 2 == 0) {
      out.insert(out.end(), bands_[b].begin(), bands_[b].end());
    } else {
      out.insert(out.end(), bands_[b].rbegin(), bands_[b].rend());
    }
  }
  return out;
}

NodeId RegionMapper::CentroidNode() const { return centroid_; }

std::vector<NodeId> RegionMapper::BandPeers(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId v : HorizontalPath(n)) {
    if (v != n) out.push_back(v);
  }
  const Location& at = topology_->location(n);
  std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    return topology_->location(a).DistanceTo(at) <
           topology_->location(b).DistanceTo(at);
  });
  return out;
}

}  // namespace deduce
