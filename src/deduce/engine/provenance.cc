#include "deduce/engine/provenance.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "deduce/common/strings.h"
#include "deduce/datalog/symbol.h"

namespace deduce {

TraceRecord ProvenanceEdge::ToTraceRecord() const {
  TraceRecord r;
  r.time = time;
  r.node = node;
  r.kind = "deriv";
  switch (kind) {
    case Kind::kRule: r.phase = "result"; break;
    case Kind::kAgg: r.phase = "agg"; break;
    case Kind::kGen: r.phase = "gen"; break;
  }
  r.pred = SymbolName(pred);
  r.schema = 2;
  r.fact = fact.ToString();
  r.tid = tid;
  r.tids = inputs;
  if (kind != Kind::kGen) {
    r.rule = rule_id;
    r.lat = latency_us;
  }
  return r;
}

void ProvenanceStore::Push(ProvenanceEdge edge) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(edge));
    return;
  }
  ring_[next_] = std::move(edge);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void ProvenanceStore::Clear() {
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::vector<ProvenanceEdge> ProvenanceStore::Edges() const {
  std::vector<ProvenanceEdge> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

namespace {

std::string FormatSimTime(int64_t us) {
  return StrFormat("%lld.%06llds", static_cast<long long>(us / 1000000),
                   static_cast<long long>(us % 1000000));
}

/// Everything the trace knows about one fact string.
struct FactInfo {
  std::vector<const TraceRecord*> gens;     // deriv/gen
  std::vector<const TraceRecord*> edges;    // deriv/result, deriv/agg
  std::vector<const TraceRecord*> injects;  // inject records (base tuples)
};

struct ExplainIndex {
  std::unordered_map<std::string, FactInfo> facts;
  std::unordered_map<uint64_t, std::string> fact_by_tid;
};

ExplainIndex BuildIndex(const std::vector<TraceRecord>& records) {
  ExplainIndex ix;
  for (const TraceRecord& r : records) {
    if (r.kind == "deriv" && !r.fact.empty()) {
      FactInfo& fi = ix.facts[r.fact];
      if (r.phase == "gen") {
        fi.gens.push_back(&r);
        if (r.tid != 0) ix.fact_by_tid.emplace(r.tid, r.fact);
      } else {
        fi.edges.push_back(&r);
      }
    } else if (r.kind == "inject" && !r.fact.empty()) {
      ix.facts[r.fact].injects.push_back(&r);
      if (r.tid != 0) ix.fact_by_tid.emplace(r.tid, r.fact);
    }
  }
  return ix;
}

class ExplainBuilder {
 public:
  ExplainBuilder(const ExplainIndex& ix, const Program& program)
      : ix_(ix), program_(program) {}

  void Visit(const std::string& fact_text, int depth) {
    auto it = ix_.facts.find(fact_text);
    Indent(depth);
    tree_ += fact_text;
    if (it == ix_.facts.end()) {
      tree_ += "   [no trace records]\n";
      return;
    }
    const FactInfo& fi = it->second;
    if (!visited_.insert(fact_text).second) {
      tree_ += "   [shown above]\n";
      return;
    }
    ++report_.cone_facts;
    tree_ += "\n";
    for (const TraceRecord* g : fi.gens) {
      if (g->tid != 0) cone_.insert(g->tid);
      nodes_.insert(g->node);
      Indent(depth);
      tree_ += StrFormat("  generated at node %d @ %s   [tid %s]\n", g->node,
                         FormatSimTime(g->time).c_str(),
                         TraceIdToHex(g->tid).c_str());
    }
    for (const TraceRecord* j : fi.injects) {
      if (j->tid != 0) cone_.insert(j->tid);
      nodes_.insert(j->node);
      Indent(depth);
      tree_ += StrFormat("  injected at node %d @ %s   [tid %s]\n", j->node,
                         FormatSimTime(j->time).c_str(),
                         TraceIdToHex(j->tid).c_str());
    }
    if (fi.gens.empty() && fi.injects.empty() && fi.edges.empty()) {
      Indent(depth);
      tree_ += "  [referenced only; no generation recorded]\n";
    }
    for (const TraceRecord* e : fi.edges) {
      ++report_.cone_firings;
      nodes_.insert(e->node);
      Indent(depth);
      tree_ += StrFormat("  <- %s %s at node %d @ %s (+%lld us after update)\n",
                         e->phase == "agg" ? "aggregate" : "rule",
                         RuleLabel(e->rule).c_str(), e->node,
                         FormatSimTime(e->time).c_str(),
                         static_cast<long long>(e->lat));
      for (uint64_t input : e->tids) {
        cone_.insert(input);
        auto fit = ix_.fact_by_tid.find(input);
        if (fit != ix_.fact_by_tid.end()) {
          Visit(fit->second, depth + 1);
        } else {
          ++report_.unresolved_tids;
          Indent(depth + 1);
          tree_ += StrFormat("[tid %s: fact outside the trace horizon]\n",
                             TraceIdToHex(input).c_str());
        }
      }
    }
  }

  ExplainReport Finish(const std::vector<TraceRecord>& records,
                       const std::string& target) {
    report_.target = target;
    report_.tree = std::move(tree_);

    // Cost attribution: one pass over the trace. A hop belongs to the
    // causal cone when any trace id it carries is in the cone. Totals use
    // the same per-attempt convention as TraceStats/NetworkStats so the
    // grand totals reconcile exactly with `dlog stats`.
    for (const TraceRecord& r : records) {
      if (r.kind == "hop") {
        uint64_t attempts =
            r.attempts > 0 ? static_cast<uint64_t>(r.attempts) : 1;
        report_.trace_total.messages += attempts;
        report_.trace_total.bytes += attempts * r.bytes;
        if (!Attributed(r)) continue;
        std::string phase = r.phase.empty() ? "other" : r.phase;
        TraceStats::Cell& cell = report_.attributed_by_phase[phase];
        cell.messages += attempts;
        cell.bytes += attempts * r.bytes;
        report_.attributed_total.messages += attempts;
        report_.attributed_total.bytes += attempts * r.bytes;
        if (r.src >= 0) nodes_.insert(r.src);
        if (r.dst >= 0) nodes_.insert(r.dst);
      } else if (r.kind == "retransmit") {
        ++report_.trace_retransmits;
        if (Attributed(r)) ++report_.retransmits_attributed;
      } else if (r.kind == "inject") {
        if (r.tid != 0 && cone_.count(r.tid) > 0 &&
            (report_.first_inject_us < 0 ||
             r.time < report_.first_inject_us)) {
          report_.first_inject_us = r.time;
        }
      }
    }

    auto it = ix_.facts.find(target);
    if (it != ix_.facts.end()) {
      for (const TraceRecord* g : it->second.gens) {
        report_.generated_us = std::max(report_.generated_us, g->time);
      }
      if (report_.generated_us < 0) {
        for (const TraceRecord* j : it->second.injects) {
          report_.generated_us = std::max(report_.generated_us, j->time);
        }
      }
    }
    report_.nodes_visited = nodes_.size();
    return std::move(report_);
  }

  bool found_anything() const { return report_.cone_facts > 0; }

 private:
  void Indent(int depth) { tree_.append(static_cast<size_t>(depth) * 4, ' '); }

  bool Attributed(const TraceRecord& r) const {
    for (uint64_t t : r.tids) {
      if (cone_.count(t) > 0) return true;
    }
    return false;
  }

  std::string RuleLabel(int32_t rule_id) const {
    if (rule_id < 0) return "(axiom)";
    const auto& rules = program_.rules();
    for (const Rule& rule : rules) {
      if (rule.id == rule_id) {
        return StrFormat("%d: %s", rule_id, rule.ToString().c_str());
      }
    }
    return StrFormat("%d", rule_id);
  }

  const ExplainIndex& ix_;
  const Program& program_;
  std::string tree_;
  std::set<uint64_t> cone_;
  std::set<std::string> visited_;
  std::set<NodeId> nodes_;
  ExplainReport report_;
};

}  // namespace

std::string ExplainReport::Format() const {
  std::string out = "derivation of " + target + "\n\n";
  out += tree;
  out += StrFormat(
      "\ncausal cone: %zu fact(s), %zu rule firing(s), %zu node(s) visited\n",
      cone_facts, cone_firings, nodes_visited);
  if (unresolved_tids > 0) {
    out += StrFormat(
        "lineage truncated: %zu input tid(s) unresolved (ring eviction, "
        "reboot, or trace horizon); the tree and cone above are lower "
        "bounds\n",
        unresolved_tids);
  }
  out += "\ntraffic attributed to this tuple:\n";
  out += StrFormat("  %-12s %12s %14s\n", "phase", "messages", "bytes");
  for (const auto& [phase, cell] : attributed_by_phase) {
    out += StrFormat("  %-12s %12llu %14llu\n", phase.c_str(),
                     static_cast<unsigned long long>(cell.messages),
                     static_cast<unsigned long long>(cell.bytes));
  }
  out += StrFormat("  %-12s %12llu %14llu\n", "attributed",
                   static_cast<unsigned long long>(attributed_total.messages),
                   static_cast<unsigned long long>(attributed_total.bytes));
  out += StrFormat("  %-12s %12llu %14llu\n", "trace total",
                   static_cast<unsigned long long>(trace_total.messages),
                   static_cast<unsigned long long>(trace_total.bytes));
  if (trace_retransmits > 0 || retransmits_attributed > 0) {
    out += StrFormat("retransmissions: %llu attributed / %llu in trace\n",
                     static_cast<unsigned long long>(retransmits_attributed),
                     static_cast<unsigned long long>(trace_retransmits));
  }
  if (first_inject_us >= 0 && generated_us >= first_inject_us) {
    out += StrFormat("latency: injection %s -> generation %s = %lld us\n",
                     FormatSimTime(first_inject_us).c_str(),
                     FormatSimTime(generated_us).c_str(),
                     static_cast<long long>(generated_us - first_inject_us));
  }
  return out;
}

StatusOr<ExplainReport> ExplainFact(const std::vector<TraceRecord>& records,
                                    const Program& program,
                                    const Fact& target) {
  ExplainIndex ix = BuildIndex(records);
  std::string key = target.ToString();
  auto it = ix.facts.find(key);
  if (it == ix.facts.end()) {
    bool any_deriv = !ix.fact_by_tid.empty();
    return Status::NotFound(StrFormat(
        "no trace records for fact %s%s", key.c_str(),
        any_deriv ? ""
                  : " (was the trace produced with provenance enabled?)"));
  }
  ExplainBuilder builder(ix, program);
  builder.Visit(key, 0);
  return builder.Finish(records, key);
}

}  // namespace deduce
