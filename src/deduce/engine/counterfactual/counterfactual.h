#ifndef DEDUCE_ENGINE_COUNTERFACTUAL_COUNTERFACTUAL_H_
#define DEDUCE_ENGINE_COUNTERFACTUAL_COUNTERFACTUAL_H_

#include <string>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/engine/counterfactual/diff.h"
#include "deduce/engine/counterfactual/perturb.h"
#include "deduce/engine/scenario.h"

namespace deduce {

/// Knobs for a counterfactual run.
struct CounterfactualOptions {
  /// Trial-runner threads for the two worlds (RunTrials ordered reduction:
  /// the ChangeExplanation is byte-identical at any thread count).
  int threads = 1;
  /// Per-node lineage ring capacity override for both runs (0 = default).
  size_t provenance_capacity = 0;
};

/// Everything a counterfactual run yields: both worlds' outcomes + traces
/// and the diff between them.
struct CounterfactualResult {
  Scenario base;                 ///< The base scenario, as run.
  Scenario perturbed;            ///< Base + the perturbation block (v3).
  ScenarioOutcome base_outcome;
  ScenarioOutcome perturbed_outcome;
  std::string base_trace;        ///< Raw provenance-on JSONL of each world
  std::string perturbed_trace;   ///< (reconciles with `dlog stats`).
  ChangeExplanation explanation;
};

/// The tentpole: deterministically re-executes `base` and base+`perturbs`
/// through RunScenario with provenance forced on, and explains the
/// difference — the symmetric diff of undegraded result sets (appeared /
/// vanished / degraded-flipped), each entry attributed to the first
/// divergent derivation edge (attribution.h), plus per-predicate cost
/// deltas that reconcile exactly with `dlog stats` on both traces, and a
/// diff-soundness verdict (CheckDiffSoundness). The two worlds run as two
/// trials of the parallel trial runner, so the result is byte-identical
/// at any `--threads`.
StatusOr<CounterfactualResult> RunCounterfactual(
    const Scenario& base, const std::vector<Perturbation>& perturbs,
    const CounterfactualOptions& options);

/// `dlog replay --diff`: the same machinery over two already-saved
/// scenarios (the perturbed one is typically a v3 file a counterfactual
/// run saved). The spec line of the explanation names the perturbed
/// scenario's perturbation block, or "(scenario diff)" when it has none.
StatusOr<CounterfactualResult> DiffScenarios(
    const Scenario& base, const Scenario& perturbed,
    const CounterfactualOptions& options);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_COUNTERFACTUAL_COUNTERFACTUAL_H_
