#include "deduce/engine/counterfactual/perturb.h"

#include <cstdlib>

#include "deduce/common/strings.h"
#include "deduce/datalog/parser.h"

namespace deduce {

namespace {

bool ParseNode(const std::string& text, NodeId* out) {
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) return false;
  *out = static_cast<NodeId>(v);
  return true;
}

Status Bad(const std::string& clause, const char* what) {
  return Status::InvalidArgument(
      StrFormat("perturbation '%s': %s", clause.c_str(), what));
}

}  // namespace

std::string Perturbation::ToSpec() const {
  switch (kind) {
    case Kind::kNodeDown:
      return StrFormat("node=%d,down", node);
    case Kind::kLinkCut:
      return StrFormat("link=%d-%d,cut", link_a, link_b);
    case Kind::kInjectDrop:
      return "inject=" + fact + ",drop";
    case Kind::kBudget:
      return StrFormat("budget=%s,%llu", budget_kind.c_str(),
                       static_cast<unsigned long long>(budget_value));
    case Kind::kTenantRemove:
      return "tenant=" + tenant + ",remove";
  }
  return "?";
}

bool Perturbation::operator==(const Perturbation& o) const {
  return kind == o.kind && node == o.node && link_a == o.link_a &&
         link_b == o.link_b && fact == o.fact &&
         budget_kind == o.budget_kind && budget_value == o.budget_value &&
         tenant == o.tenant;
}

StatusOr<Perturbation> ParsePerturbation(const std::string& raw) {
  std::string clause(StrTrim(raw));
  size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Bad(clause, "expected '<key>=<value>,<action>'");
  }
  std::string key = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);
  // The action sits after the LAST comma: inject fact text carries commas.
  size_t comma = rest.rfind(',');
  if (comma == std::string::npos || comma == 0) {
    return Bad(clause, "expected '<key>=<value>,<action>'");
  }
  std::string value(StrTrim(rest.substr(0, comma)));
  std::string action(StrTrim(rest.substr(comma + 1)));
  Perturbation p;
  if (key == "node") {
    if (action != "down") return Bad(clause, "node supports only 'down'");
    p.kind = Perturbation::Kind::kNodeDown;
    if (!ParseNode(value, &p.node)) return Bad(clause, "bad node id");
    return p;
  }
  if (key == "link") {
    if (action != "cut") return Bad(clause, "link supports only 'cut'");
    p.kind = Perturbation::Kind::kLinkCut;
    size_t dash = value.find('-');
    if (dash == std::string::npos ||
        !ParseNode(value.substr(0, dash), &p.link_a) ||
        !ParseNode(value.substr(dash + 1), &p.link_b)) {
      return Bad(clause, "expected 'link=<a>-<b>,cut'");
    }
    return p;
  }
  if (key == "inject") {
    if (action != "drop") return Bad(clause, "inject supports only 'drop'");
    p.kind = Perturbation::Kind::kInjectDrop;
    // Canonicalize through the datalog parser so matching against
    // ScenarioEvent::fact.ToString() is text-format-insensitive.
    std::string fact_text = value;
    if (fact_text.empty()) return Bad(clause, "empty fact");
    if (fact_text.back() != '.') fact_text += '.';
    auto rule = ParseRule(fact_text);
    if (!rule.ok() || !rule->body.empty()) {
      return Bad(clause, "bad fact (rules not allowed)");
    }
    p.fact = Fact(rule->head.predicate, rule->head.args).ToString();
    return p;
  }
  if (key == "budget") {
    p.kind = Perturbation::Kind::kBudget;
    p.budget_kind = value;
    if (value != "replicas" && value != "inflight" && value != "eval" &&
        value != "ingress") {
      return Bad(clause,
                 "budget kind must be replicas|inflight|eval|ingress");
    }
    char* end = nullptr;
    unsigned long long cap = std::strtoull(action.c_str(), &end, 10);
    if (end == action.c_str() || *end != '\0' || cap == 0) {
      return Bad(clause, "budget cap must be a positive integer");
    }
    p.budget_value = cap;
    return p;
  }
  if (key == "tenant") {
    if (action != "remove") return Bad(clause, "tenant supports only 'remove'");
    p.kind = Perturbation::Kind::kTenantRemove;
    if (value.empty()) return Bad(clause, "empty tenant name");
    p.tenant = value;
    return p;
  }
  return Bad(clause, ("unknown perturbation kind '" + key + "'").c_str());
}

StatusOr<std::vector<Perturbation>> ParsePerturbationSpec(
    const std::string& spec) {
  std::vector<Perturbation> out;
  for (const std::string& clause : StrSplit(spec, ';')) {
    if (StrTrim(clause).empty()) continue;
    auto p = ParsePerturbation(clause);
    if (!p.ok()) return StatusOr<std::vector<Perturbation>>(p.status());
    out.push_back(std::move(*p));
  }
  if (out.empty()) {
    return StatusOr<std::vector<Perturbation>>(Status::InvalidArgument(
        "empty perturbation spec (expected e.g. 'node=5,down')"));
  }
  return out;
}

std::string FormatPerturbationSpec(const std::vector<Perturbation>& ps) {
  std::string out;
  for (size_t i = 0; i < ps.size(); ++i) {
    if (i > 0) out += ';';
    out += ps[i].ToSpec();
  }
  return out;
}

}  // namespace deduce
