#include "deduce/engine/counterfactual/attribution.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "deduce/common/strings.h"
#include "deduce/engine/provenance.h"

namespace deduce {

namespace {

std::string FormatSimTime(int64_t us) {
  return StrFormat("%lld.%06llds", static_cast<long long>(us / 1000000),
                   static_cast<long long>(us % 1000000));
}

/// Per-fact record buckets of one world's provenance trace.
struct FactRecords {
  std::vector<const TraceRecord*> gens;     // deriv/gen
  std::vector<const TraceRecord*> edges;    // deriv/result, deriv/agg
  std::vector<const TraceRecord*> injects;  // tid'd inject records
};

struct WorldIndex {
  std::unordered_map<std::string, FactRecords> facts;
  std::unordered_map<uint64_t, std::string> fact_by_tid;
};

WorldIndex IndexWorld(const std::vector<TraceRecord>& records) {
  WorldIndex ix;
  for (const TraceRecord& r : records) {
    if (r.kind == "deriv" && !r.fact.empty()) {
      FactRecords& fr = ix.facts[r.fact];
      if (r.phase == "gen") {
        fr.gens.push_back(&r);
        if (r.tid != 0) ix.fact_by_tid.emplace(r.tid, r.fact);
      } else {
        fr.edges.push_back(&r);
      }
    } else if (r.kind == "inject" && !r.fact.empty()) {
      ix.facts[r.fact].injects.push_back(&r);
      if (r.tid != 0) ix.fact_by_tid.emplace(r.tid, r.fact);
    }
  }
  return ix;
}

/// World-invariant identity of one cone record. Trace ids of derived
/// tuples differ across worlds (they encode node/time/seq), so matching
/// goes through canonical fact text instead.
std::string EdgeKey(const TraceRecord& r) {
  if (r.kind == "inject") return "i|" + r.fact + "|" + StrFormat("%d", r.node);
  return "d|" + r.phase + "|" + r.fact + "|" +
         StrFormat("%d|%d", r.node,
                   r.rule == TraceRecord::kNoRule ? -2 : r.rule);
}

/// The causal cone of one fact: every deriv/inject record reachable from
/// it through input trace ids, plus the cone's fact-text set.
struct Cone {
  std::vector<const TraceRecord*> records;
  std::set<std::string> facts;
  /// Input tids the trace could not resolve (lineage truncation).
  size_t unresolved = 0;
};

void WalkCone(const WorldIndex& ix, const std::string& fact_text, Cone* cone,
              std::set<std::string>* visited) {
  if (!visited->insert(fact_text).second) return;
  auto it = ix.facts.find(fact_text);
  if (it == ix.facts.end()) return;
  cone->facts.insert(fact_text);
  const FactRecords& fr = it->second;
  for (const TraceRecord* r : fr.gens) cone->records.push_back(r);
  for (const TraceRecord* r : fr.injects) cone->records.push_back(r);
  for (const TraceRecord* e : fr.edges) {
    cone->records.push_back(e);
    for (uint64_t input : e->tids) {
      auto fit = ix.fact_by_tid.find(input);
      if (fit == ix.fact_by_tid.end()) {
        ++cone->unresolved;
        continue;
      }
      WalkCone(ix, fit->second, cone, visited);
    }
  }
}

bool RecordBefore(const TraceRecord* a, const TraceRecord* b) {
  if (a->time != b->time) return a->time < b->time;
  if (a->node != b->node) return a->node < b->node;
  if (a->fact != b->fact) return a->fact < b->fact;
  return a->phase < b->phase;
}

}  // namespace

void AttributeDivergence(const std::vector<TraceRecord>& have,
                         const std::vector<TraceRecord>& other,
                         DiffEntry* entry) {
  WorldIndex have_ix = IndexWorld(have);
  WorldIndex other_ix = IndexWorld(other);

  Cone cone;
  std::set<std::string> visited;
  WalkCone(have_ix, entry->fact_text, &cone, &visited);
  if (cone.records.empty()) {
    entry->divergence = "unknown";
    entry->detail = "no provenance records for this fact";
    return;
  }
  std::sort(cone.records.begin(), cone.records.end(), RecordBefore);

  // Multiset of other-world edge keys: a retraction re-injects the same
  // fact at the same node, so occurrence *counts* matter (a dropped second
  // injection is a real fork).
  std::map<std::string, int> other_keys;
  for (const TraceRecord& r : other) {
    if ((r.kind == "deriv" || r.kind == "inject") && !r.fact.empty()) {
      ++other_keys[EdgeKey(r)];
    }
  }

  const TraceRecord* fork = nullptr;
  for (const TraceRecord* r : cone.records) {
    auto it = other_keys.find(EdgeKey(*r));
    if (it != other_keys.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fork = r;
    break;
  }
  if (fork == nullptr) {
    entry->divergence = "unknown";
    entry->detail =
        "every derivation edge exists in both worlds (degraded-state "
        "difference only)";
    return;
  }

  entry->time = fork->time;
  entry->node = fork->node;
  entry->tid = fork->tid;
  if (fork->kind == "inject") {
    entry->divergence = "inject";
    entry->detail = "injection of " + fork->fact +
                    " happened only in this world";
    return;
  }
  if (fork->phase == "agg") {
    entry->divergence = "agg";
    entry->rule = fork->rule;
    entry->detail = StrFormat("aggregate emission of %s (rule %d)",
                              fork->fact.c_str(), fork->rule);
  } else {
    entry->divergence = "rule";
    entry->rule = fork->rule == TraceRecord::kNoRule ? -1 : fork->rule;
    entry->detail = fork->phase == "gen"
                        ? "tuple generation of " + fork->fact
                        : StrFormat("firing of rule %d for %s", entry->rule,
                                    fork->fact.c_str());
  }

  // A derivation edge that fired in only one world usually forked earlier:
  // if the other world *dropped* a message carrying one of this cone's
  // facts, the loss — not the silent non-firing — is the explanation.
  const TraceRecord* lost = nullptr;
  for (const TraceRecord& r : other) {
    if (r.kind != "hop" || r.delivered) continue;
    for (uint64_t t : r.tids) {
      auto fit = other_ix.fact_by_tid.find(t);
      if (fit == other_ix.fact_by_tid.end()) continue;
      if (cone.facts.count(fit->second) == 0) continue;
      if (lost == nullptr || RecordBefore(&r, lost)) lost = &r;
      break;
    }
  }
  if (lost != nullptr && lost->time <= fork->time) {
    entry->divergence = "lost";
    entry->time = lost->time;
    entry->node = lost->src >= 0 ? lost->src : lost->node;
    entry->tid = lost->tids.empty() ? 0 : lost->tids[0];
    entry->detail = StrFormat(
        "message on hop %d->%d carrying cone state was lost in the other "
        "world (%s phase)",
        lost->src, lost->dst,
        lost->phase.empty() ? "other" : lost->phase.c_str());
  }
}

std::string AttributeViolation(const std::vector<TraceRecord>& records,
                               const Program& program, const Fact& fact) {
  auto report = ExplainFact(records, program, fact);
  std::string out;
  if (!report.ok()) {
    out = "  causal chain for " + fact.ToString() + ": " +
          report.status().message() + "\n";
    return out;
  }
  out = "  causal chain for " + fact.ToString() + ":\n";
  // Indent the derivation tree under the header.
  std::istringstream tree(report->tree);
  std::string line;
  while (std::getline(tree, line)) {
    out += "    " + line + "\n";
  }
  if (report->unresolved_tids > 0) {
    out += StrFormat("    [lineage truncated: %zu unresolved tid(s)]\n",
                     report->unresolved_tids);
  }

  // Retraction detection: a second inject record with the same trace id is
  // a deletion of that tuple entering the system. If the dependent fact is
  // still alive (it is — we are explaining it as a violation), that
  // retraction never took effect: name it.
  WorldIndex ix = IndexWorld(records);
  Cone cone;
  std::set<std::string> visited;
  WalkCone(ix, fact.ToString(), &cone, &visited);
  std::vector<std::string> notes;
  for (const std::string& cone_fact : cone.facts) {
    auto it = ix.facts.find(cone_fact);
    if (it == ix.facts.end()) continue;
    std::map<uint64_t, std::vector<const TraceRecord*>> by_tid;
    for (const TraceRecord* j : it->second.injects) {
      if (j->tid != 0) by_tid[j->tid].push_back(j);
    }
    for (auto& [tid, injs] : by_tid) {
      if (injs.size() < 2) continue;
      std::sort(injs.begin(), injs.end(), RecordBefore);
      const TraceRecord* retraction = injs.back();
      notes.push_back(StrFormat(
          "  retraction of %s entered at node %d @ %s but never took "
          "effect here   [tid %s]",
          cone_fact.c_str(), retraction->node,
          FormatSimTime(retraction->time).c_str(),
          TraceIdToHex(tid).c_str()));
    }
  }
  std::sort(notes.begin(), notes.end());
  for (const std::string& n : notes) {
    out += n;
    out += '\n';
  }
  return out;
}

}  // namespace deduce
