#include "deduce/engine/counterfactual/diff.h"

#include "deduce/common/strings.h"

namespace deduce {

namespace {

std::string FormatSimTime(int64_t us) {
  return StrFormat("%lld.%06llds", static_cast<long long>(us / 1000000),
                   static_cast<long long>(us % 1000000));
}

void AppendEntries(const std::string& title,
                   const std::vector<DiffEntry>& entries, std::string* out) {
  *out += StrFormat("%s (%zu):\n", title.c_str(), entries.size());
  for (const DiffEntry& e : entries) {
    *out += "  " + e.fact_text;
    if (e.change == DiffEntry::Change::kFlippedDegraded) {
      *out += "   [now degraded]";
    } else if (e.change == DiffEntry::Change::kFlippedUndegraded) {
      *out += "   [now undegraded]";
    }
    *out += '\n';
    *out += "    fork: " + e.divergence;
    if (e.node >= 0) *out += StrFormat(" at node %d", e.node);
    if (e.time >= 0) *out += " @ " + FormatSimTime(e.time);
    if (e.tid != 0) *out += "   [tid " + TraceIdToHex(e.tid) + "]";
    *out += '\n';
    if (!e.detail.empty()) *out += "      " + e.detail + "\n";
  }
}

}  // namespace

const char* DiffEntry::ChangeName() const {
  switch (change) {
    case Change::kAppeared:
      return "appeared";
    case Change::kVanished:
      return "vanished";
    case Change::kFlippedDegraded:
    case Change::kFlippedUndegraded:
      return "flipped";
  }
  return "?";
}

TraceRecord DiffEntry::ToTraceRecord() const {
  TraceRecord r;
  r.kind = "cfdiff";
  r.schema = 3;
  r.cf = ChangeName();
  r.phase = divergence;
  r.pred = pred;
  r.fact = fact_text;
  r.time = time >= 0 ? time : 0;
  r.node = node;
  r.tid = tid;
  if (divergence == "rule" || divergence == "agg") r.rule = rule;
  return r;
}

std::string ChangeExplanation::Format() const {
  std::string out = "counterfactual: " + spec + "\n\n";
  if (unchanged()) {
    out += "no result-set difference between the two worlds\n";
  } else {
    AppendEntries("vanished", vanished, &out);
    AppendEntries("appeared", appeared, &out);
    AppendEntries("flipped", flipped, &out);
  }
  out += "\ncost deltas (perturbed - base):\n";
  out += StrFormat("  %-14s %10s %12s %8s %8s %12s\n", "pred", "msgs",
                   "bytes", "retr", "sheds", "mean-lat-us");
  int64_t tmsgs = 0, tbytes = 0, tretr = 0, tsheds = 0;
  for (const auto& [pred, d] : cost_by_pred) {
    out += StrFormat("  %-14s %10lld %12lld %8lld %8lld %12lld\n",
                     pred.empty() ? "(other)" : pred.c_str(),
                     static_cast<long long>(d.messages),
                     static_cast<long long>(d.bytes),
                     static_cast<long long>(d.retransmits),
                     static_cast<long long>(d.sheds),
                     static_cast<long long>(d.mean_latency_us));
    tmsgs += d.messages;
    tbytes += d.bytes;
    tretr += d.retransmits;
    tsheds += d.sheds;
  }
  out += StrFormat("  %-14s %10lld %12lld %8lld %8lld\n", "total",
                   static_cast<long long>(tmsgs),
                   static_cast<long long>(tbytes),
                   static_cast<long long>(tretr),
                   static_cast<long long>(tsheds));
  out += StrFormat(
      "reconciliation: base %llu msgs / %llu bytes, "
      "perturbed %llu msgs / %llu bytes\n",
      static_cast<unsigned long long>(base_messages),
      static_cast<unsigned long long>(base_bytes),
      static_cast<unsigned long long>(perturbed_messages),
      static_cast<unsigned long long>(perturbed_bytes));
  if (soundness.empty()) {
    out += "diff soundness: OK (vanished within base oracle, appeared "
           "within perturbed oracle)\n";
  } else {
    for (const std::string& v : soundness) {
      out += "diff soundness: VIOLATION " + v + "\n";
    }
  }
  return out;
}

std::string ChangeExplanation::ToJsonl() const {
  std::string out;
  for (const std::vector<DiffEntry>* group : {&vanished, &appeared, &flipped}) {
    for (const DiffEntry& e : *group) {
      out += e.ToTraceRecord().ToJson();
      out += '\n';
    }
  }
  for (const auto& [pred, d] : cost_by_pred) {
    TraceRecord r;
    r.kind = "cfdiff";
    r.schema = 3;
    r.cf = "cost";
    r.phase = "cost";
    r.pred = pred;
    r.dmsgs = d.messages;
    r.dbytes = d.bytes;
    r.dretr = d.retransmits;
    r.dsheds = d.sheds;
    r.dlat = d.mean_latency_us;
    out += r.ToJson();
    out += '\n';
  }
  return out;
}

}  // namespace deduce
