#ifndef DEDUCE_ENGINE_COUNTERFACTUAL_ATTRIBUTION_H_
#define DEDUCE_ENGINE_COUNTERFACTUAL_ATTRIBUTION_H_

#include <string>
#include <vector>

#include "deduce/common/trace.h"
#include "deduce/datalog/program.h"
#include "deduce/engine/counterfactual/diff.h"

namespace deduce {

/// Divergence-point extraction (DESIGN.md §14): given the provenance trace
/// of the world that *contains* `entry->fact` (`have`) and the trace of
/// the world that lacks it (`other`), walks the fact's causal cone in
/// `have` chronologically and finds the earliest cone record with no
/// counterpart in `other` — the first derivation edge where the two
/// worlds fork. Matching is by world-invariant edge key (fact text + node
/// + phase + rule), never by raw trace id, since derived tuple ids differ
/// across worlds. When the forking edge is a derivation whose inputs all
/// exist in `other`, the other world is scanned for an undelivered hop
/// carrying a cone fact, reclassifying the divergence as a lost message.
/// Fills entry->divergence/time/node/rule/tid/detail; "unknown" when the
/// cone matches completely (e.g. a pure degraded-flag flip).
void AttributeDivergence(const std::vector<TraceRecord>& have,
                         const std::vector<TraceRecord>& other,
                         DiffEntry* entry);

/// Replay attribution (`dlog replay`): the causal chain of one violating
/// fact from a provenance-on trace — its derivation tree plus detection of
/// retractions that entered the system but never took effect (the
/// signature of a lost/corrupted deletion, e.g. the committed
/// phantom-after-lost-delete reproducer). Deterministic; returns a
/// multi-line block indented two spaces, or a one-line note when the trace
/// has no records for the fact.
std::string AttributeViolation(const std::vector<TraceRecord>& records,
                               const Program& program, const Fact& fact);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_COUNTERFACTUAL_ATTRIBUTION_H_
