#ifndef DEDUCE_ENGINE_COUNTERFACTUAL_DIFF_H_
#define DEDUCE_ENGINE_COUNTERFACTUAL_DIFF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "deduce/common/trace.h"
#include "deduce/datalog/fact.h"

namespace deduce {

/// One tuple that differs between the base world and the perturbed world,
/// attributed to the first divergent derivation edge — the rule firing,
/// injection, or lost/shed message where the two worlds fork
/// (attribution.h). The entry serializes as a schema-v3 "cfdiff" trace
/// record (`cf` = change class, `phase` = divergence class).
struct DiffEntry {
  enum class Change : uint8_t {
    kAppeared = 0,          ///< Undegraded in perturbed, absent from base.
    kVanished = 1,          ///< Undegraded in base, absent from perturbed.
    kFlippedDegraded = 2,   ///< Alive in both; undegraded only in base.
    kFlippedUndegraded = 3, ///< Alive in both; undegraded only in perturbed.
  };

  Change change = Change::kVanished;
  Fact fact;                    ///< The differing tuple.
  std::string fact_text;        ///< fact.ToString(), the sort key.
  std::string pred;             ///< Predicate name.

  /// Divergence attribution: where the worlds fork.
  /// "inject" — a base-stream injection present in one world only;
  /// "rule"/"agg" — a derivation edge that fired in one world only;
  /// "lost"/"shed" — a cone message the other world dropped or shed;
  /// "unknown" — no divergent edge recorded (e.g. a pure degraded flip).
  std::string divergence = "unknown";
  int64_t time = -1;            ///< Divergence sim time (us), -1 unknown.
  int node = -1;                ///< Divergence node, -1 unknown.
  int32_t rule = TraceRecord::kNoRule;  ///< Divergent rule id when "rule".
  uint64_t tid = 0;             ///< Trace id at the divergence, 0 unknown.
  std::string detail;           ///< Human-readable one-liner.

  const char* ChangeName() const;
  /// The schema-v3 "cfdiff" JSONL record for this entry.
  TraceRecord ToTraceRecord() const;
};

/// Per-predicate cost deltas (perturbed minus base), reconciling exactly
/// with `dlog stats` over the two runs' traces: messages/bytes sum the
/// TraceStats (phase, pred) cells per predicate with the same per-attempt
/// convention, so the per-pred deltas total to the difference of the two
/// `dlog stats` grand totals by construction.
struct CostDelta {
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t retransmits = 0;
  int64_t sheds = 0;
  /// Mean end-to-end latency delta (us) over deriv result records; 0 when
  /// either side recorded none.
  int64_t mean_latency_us = 0;
};

/// The full counterfactual verdict `dlog explain --counterfactual` emits:
/// what changed, why, and what it cost.
struct ChangeExplanation {
  std::string spec;             ///< Canonical perturbation spec.
  std::vector<DiffEntry> appeared;   ///< Sorted by fact text.
  std::vector<DiffEntry> vanished;
  std::vector<DiffEntry> flipped;

  /// pred -> cost delta ("" aggregates traffic not attributed to any
  /// predicate, so columns sum exactly to the totals below).
  std::map<std::string, CostDelta> cost_by_pred;

  /// Reconciliation anchors: the TraceStats grand totals of each world's
  /// trace — byte-identical to what `dlog stats` prints for those files.
  uint64_t base_messages = 0, base_bytes = 0;
  uint64_t perturbed_messages = 0, perturbed_bytes = 0;
  uint64_t base_retransmits = 0, perturbed_retransmits = 0;
  uint64_t base_sheds = 0, perturbed_sheds = 0;

  /// Diff-soundness verdict (invariants.h CheckDiffSoundness): empty = OK.
  std::vector<std::string> soundness;

  bool unchanged() const {
    return appeared.empty() && vanished.empty() && flipped.empty();
  }

  /// Deterministic human-readable report (the `dlog explain
  /// --counterfactual` stdout).
  std::string Format() const;

  /// Machine-readable form: one schema-v3 "cfdiff" JSONL record per diff
  /// entry plus one "cost" row per predicate (trailing newline included;
  /// empty diffs still emit the cost rows).
  std::string ToJsonl() const;
};

}  // namespace deduce

#endif  // DEDUCE_ENGINE_COUNTERFACTUAL_DIFF_H_
