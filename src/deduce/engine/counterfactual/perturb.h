#ifndef DEDUCE_ENGINE_COUNTERFACTUAL_PERTURB_H_
#define DEDUCE_ENGINE_COUNTERFACTUAL_PERTURB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/fact.h"

namespace deduce {

/// One counterfactual perturbation of a scenario — the "what if the world
/// were different" half of `dlog explain --counterfactual`. The grammar is
/// one clause per perturbation, `key=value,action`:
///
///   node=5,down            fail node 5 at t=0 (never recovers)
///   link=2-7,cut           cut the 2->7 and 7->2 links at t=0
///   inject=r(1, 3, 7),drop drop every base-stream event carrying that fact
///   budget=replicas,4      enable budgets, cap live replicas/pred/node at 4
///   tenant=alice,remove    remove a tenant (parsed for forward compat;
///                          single-program scenarios reject it at apply time)
///
/// Clauses compose with ';' in a spec string and serialize one per line in
/// a scenario-v3 `[perturb]` block, so a counterfactual run is itself a
/// replayable scenario file. An unknown key or action is a parse error,
/// never best-effort (matching the fault-kind precedent: a perturbation
/// this build does not understand cannot be trusted to reproduce).
struct Perturbation {
  enum class Kind : uint8_t {
    kNodeDown = 0,
    kLinkCut = 1,
    kInjectDrop = 2,
    kBudget = 3,
    kTenantRemove = 4,
  };

  Kind kind = Kind::kNodeDown;
  NodeId node = kNoNode;        ///< kNodeDown.
  NodeId link_a = kNoNode;      ///< kLinkCut endpoints.
  NodeId link_b = kNoNode;
  std::string fact;             ///< kInjectDrop: canonical fact text.
  std::string budget_kind;      ///< kBudget: replicas|inflight|eval|ingress.
  uint64_t budget_value = 0;    ///< kBudget: the cap.
  std::string tenant;           ///< kTenantRemove.

  /// The clause text this perturbation round-trips through
  /// (ParsePerturbation(ToSpec()) == *this).
  std::string ToSpec() const;

  bool operator==(const Perturbation& o) const;
};

/// Parses one clause. The action is found at the *last* ',' of the clause
/// (fact text in `inject=...` legitimately contains commas).
StatusOr<Perturbation> ParsePerturbation(const std::string& clause);

/// Parses a ';'-separated spec string ("node=5,down;budget=replicas,4").
/// Empty clauses are skipped; an empty spec is an error (a counterfactual
/// with no perturbation explains nothing).
StatusOr<std::vector<Perturbation>> ParsePerturbationSpec(
    const std::string& spec);

/// Canonical ';'-joined spec for a perturbation list.
std::string FormatPerturbationSpec(const std::vector<Perturbation>& ps);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_COUNTERFACTUAL_PERTURB_H_
