#include "deduce/engine/counterfactual/counterfactual.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "deduce/common/parallel.h"
#include "deduce/common/strings.h"
#include "deduce/datalog/symbol.h"
#include "deduce/engine/counterfactual/attribution.h"

namespace deduce {

namespace {

/// One world's run artifacts, produced on a trial-runner thread.
struct WorldRun {
  Status status = Status::OK();
  ScenarioOutcome outcome;
  std::string trace;
};

WorldRun RunWorld(const Scenario& scenario,
                  const CounterfactualOptions& options) {
  WorldRun w;
  std::ostringstream sink;
  TraceWriter writer;
  writer.OpenStream(&sink);
  ScenarioRunOptions run;
  run.provenance = true;
  run.provenance_capacity = options.provenance_capacity;
  run.trace = &writer;
  auto outcome = RunScenario(scenario, run);
  writer.Close();
  if (!outcome.ok()) {
    w.status = outcome.status();
    return w;
  }
  w.outcome = std::move(*outcome);
  w.trace = sink.str();
  return w;
}

std::vector<TraceRecord> ParseTrace(const std::string& jsonl) {
  std::vector<TraceRecord> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (StrTrim(line).empty()) continue;
    auto r = TraceRecord::FromJson(line);
    if (r.ok()) out.push_back(std::move(*r));
  }
  return out;
}

/// fact text -> Fact for every alive tuple of a database.
std::map<std::string, Fact> Facts(const Database& db) {
  std::map<std::string, Fact> out;
  for (SymbolId pred : db.Predicates()) {
    for (const Fact& f : db.Relation(pred)) {
      out.emplace(f.ToString(), f);
    }
  }
  return out;
}

void AddCosts(const std::vector<TraceRecord>& records, int sign,
              std::map<std::string, CostDelta>* by_pred) {
  TraceStats stats;
  for (const TraceRecord& r : records) stats.Add(r);
  for (const auto& [key, cell] : stats.by_phase_pred) {
    CostDelta& d = (*by_pred)[key.second];
    d.messages += sign * static_cast<int64_t>(cell.messages);
    d.bytes += sign * static_cast<int64_t>(cell.bytes);
  }
  for (const TraceRecord& r : records) {
    if (r.kind == "retransmit") {
      (*by_pred)[r.pred].retransmits += sign;
    } else if (r.kind == "shed") {
      (*by_pred)[r.pred].sheds += sign;
    }
  }
  for (const auto& [pred, cell] : stats.latency_by_pred) {
    if (cell.results == 0) continue;
    (*by_pred)[pred].mean_latency_us +=
        sign * (cell.lat_sum / static_cast<int64_t>(cell.results));
  }
}

StatusOr<CounterfactualResult> Explain(Scenario base, Scenario perturbed,
                                       const std::string& spec,
                                       const CounterfactualOptions& options) {
  CounterfactualResult result;
  result.base = std::move(base);
  result.perturbed = std::move(perturbed);

  // The two worlds are two trials: same pool, ordered reduction, so the
  // explanation is byte-identical at any --threads (DESIGN.md §11).
  const Scenario* worlds[2] = {&result.base, &result.perturbed};
  WorldRun runs[2];
  RunTrials(
      2, options.threads,
      [&](size_t i) { return RunWorld(*worlds[i], options); },
      [&](size_t i, WorldRun r) { runs[i] = std::move(r); });
  if (!runs[0].status.ok()) {
    return StatusOr<CounterfactualResult>(runs[0].status);
  }
  if (!runs[1].status.ok()) {
    return StatusOr<CounterfactualResult>(runs[1].status);
  }
  result.base_outcome = std::move(runs[0].outcome);
  result.perturbed_outcome = std::move(runs[1].outcome);
  result.base_trace = std::move(runs[0].trace);
  result.perturbed_trace = std::move(runs[1].trace);

  std::vector<TraceRecord> base_records = ParseTrace(result.base_trace);
  std::vector<TraceRecord> pert_records = ParseTrace(result.perturbed_trace);

  ChangeExplanation& diff = result.explanation;
  diff.spec = spec;

  // Symmetric diff of the undegraded result sets. A tuple that survives in
  // the other world's *degraded* set did not vanish — its trust flipped.
  std::map<std::string, Fact> base_u = Facts(result.base_outcome.undegraded);
  std::map<std::string, Fact> pert_u =
      Facts(result.perturbed_outcome.undegraded);
  std::map<std::string, Fact> base_r = Facts(result.base_outcome.results);
  std::map<std::string, Fact> pert_r = Facts(result.perturbed_outcome.results);
  for (const auto& [text, fact] : base_u) {
    if (pert_u.count(text) > 0) continue;
    DiffEntry e;
    e.fact = fact;
    e.fact_text = text;
    e.pred = SymbolName(fact.predicate());
    if (pert_r.count(text) > 0) {
      e.change = DiffEntry::Change::kFlippedDegraded;
      AttributeDivergence(base_records, pert_records, &e);
      diff.flipped.push_back(std::move(e));
    } else {
      e.change = DiffEntry::Change::kVanished;
      AttributeDivergence(base_records, pert_records, &e);
      diff.vanished.push_back(std::move(e));
    }
  }
  for (const auto& [text, fact] : pert_u) {
    if (base_u.count(text) > 0) continue;
    DiffEntry e;
    e.fact = fact;
    e.fact_text = text;
    e.pred = SymbolName(fact.predicate());
    if (base_r.count(text) > 0) {
      e.change = DiffEntry::Change::kFlippedUndegraded;
      AttributeDivergence(pert_records, base_records, &e);
      diff.flipped.push_back(std::move(e));
    } else {
      e.change = DiffEntry::Change::kAppeared;
      AttributeDivergence(pert_records, base_records, &e);
      diff.appeared.push_back(std::move(e));
    }
  }
  auto by_fact = [](const DiffEntry& a, const DiffEntry& b) {
    return a.fact_text < b.fact_text;
  };
  std::sort(diff.appeared.begin(), diff.appeared.end(), by_fact);
  std::sort(diff.vanished.begin(), diff.vanished.end(), by_fact);
  std::sort(diff.flipped.begin(), diff.flipped.end(), by_fact);

  // Per-predicate cost deltas: perturbed minus base, built from the same
  // TraceStats cells `dlog stats` prints, so the per-pred columns sum to
  // the difference of the two grand totals exactly.
  AddCosts(base_records, -1, &diff.cost_by_pred);
  AddCosts(pert_records, +1, &diff.cost_by_pred);
  {
    TraceStats bs, ps;
    for (const TraceRecord& r : base_records) bs.Add(r);
    for (const TraceRecord& r : pert_records) ps.Add(r);
    diff.base_messages = bs.total_messages;
    diff.base_bytes = bs.total_bytes;
    diff.perturbed_messages = ps.total_messages;
    diff.perturbed_bytes = ps.total_bytes;
    diff.base_retransmits = bs.retransmits;
    diff.perturbed_retransmits = ps.retransmits;
    diff.base_sheds = bs.sheds;
    diff.perturbed_sheds = ps.sheds;
  }

  diff.soundness = CheckDiffSoundness(diff, result.base_outcome.oracle,
                                      result.perturbed_outcome.oracle);
  return result;
}

}  // namespace

StatusOr<CounterfactualResult> RunCounterfactual(
    const Scenario& base, const std::vector<Perturbation>& perturbs,
    const CounterfactualOptions& options) {
  if (perturbs.empty()) {
    return StatusOr<CounterfactualResult>(
        Status::InvalidArgument("empty perturbation list"));
  }
  Scenario base_clean = base;
  if (!base_clean.perturbations.empty()) {
    // A v3 file as the *base* world runs with its own block materialized;
    // the counterfactual block stacks on top.
    auto materialized = ApplyPerturbations(base_clean);
    if (!materialized.ok()) {
      return StatusOr<CounterfactualResult>(materialized.status());
    }
    base_clean = std::move(*materialized);
  }
  Scenario perturbed = base_clean;
  perturbed.perturbations = perturbs;
  // Materialize now so apply-time errors (unknown node, no matching
  // injection, tenant removal) surface before any simulation runs.
  auto check = ApplyPerturbations(perturbed);
  if (!check.ok()) return StatusOr<CounterfactualResult>(check.status());
  return Explain(std::move(base_clean), std::move(perturbed),
                 FormatPerturbationSpec(perturbs), options);
}

StatusOr<CounterfactualResult> DiffScenarios(
    const Scenario& base, const Scenario& perturbed,
    const CounterfactualOptions& options) {
  std::string spec = perturbed.perturbations.empty()
                         ? "(scenario diff)"
                         : FormatPerturbationSpec(perturbed.perturbations);
  return Explain(base, perturbed, spec, options);
}

}  // namespace deduce
