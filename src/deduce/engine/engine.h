#ifndef DEDUCE_ENGINE_ENGINE_H_
#define DEDUCE_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "deduce/engine/runtime.h"
#include "deduce/eval/database.h"
#include "deduce/eval/incremental.h"

namespace deduce {

/// Options for the distributed deductive engine.
struct EngineOptions {
  PlannerOptions planner;
  /// Built-in registry copied into the engine; nullptr = Default().
  const BuiltinRegistry* registry = nullptr;
  /// Safety factor applied to the computed τ_s / τ_j bounds.
  double timing_margin = 1.5;
  /// Assumed maximum message size for delay bounds (bytes).
  size_t max_message_bytes = 2048;
  /// Finalization wait for derived tuples (§IV-C); -1 = auto (τs + τc).
  SimTime finalize_delay = -1;
  /// End-to-end reliable transport for engine messages (off by default:
  /// best-effort unicasts, exactly the pre-transport behavior).
  TransportOptions transport;
  /// State repair for crash-rebooted / diverged replica stores (both modes
  /// off by default; see repair.h and DESIGN.md §10).
  RepairOptions repair;
  /// Per-hop frame integrity: senders append a 4-byte FNV-1a checksum of
  /// the payload and receivers verify + strip it before decoding, dropping
  /// (and counting, EngineStats::decode_errors) damaged frames — the
  /// engine-level stand-in for an 802.15.4 MAC CRC. Off by default so wire
  /// bytes (and every committed baseline) stay identical; turn it on when
  /// the network injects corruption (docs/FAULTS.md).
  bool checksum = false;
  /// Observability sinks, both off (null) by default. `metrics` receives
  /// live per-phase/per-predicate traffic counters and span timings;
  /// `trace` receives one JSONL record per transmission, injection, and
  /// retransmission. Caller-owned; must outlive the engine.
  MetricsRegistry* metrics = nullptr;
  TraceWriter* trace = nullptr;
  /// Causal tuple provenance: per-node lineage rings, "deriv" trace
  /// records, trace-id'd hops/injects, per-predicate latency histograms
  /// (off by default; see provenance.h and docs/OBSERVABILITY.md).
  ProvenanceOptions provenance;
  /// When nonzero, overrides ProvenanceOptions::ring_capacity — the
  /// per-node lineage ring size (`dlog --provenance-capacity`). Evictions
  /// from a too-small ring are counted (metrics "prov.evictions") and
  /// warned about once per node; `dlog explain` over ring-resident lineage
  /// then reports "lineage truncated" instead of a silently wrong tree.
  size_t provenance_capacity = 0;
  /// Per-node resource budgets + load-shedding policy (off by default; see
  /// runtime.h BudgetOptions and docs/FAULTS.md "Overload and shedding").
  /// With budgets off every path below is byte-identical to the
  /// pre-budget engine.
  BudgetOptions budget;
};

/// The distributed deductive query engine (the paper's contribution):
/// compiles a program onto a simulated sensor network; each node runs the
/// §V architecture (generic join component, hashing component, routing).
///
/// Usage:
/// \code
///   Network net(Topology::Grid(10), LinkModel{}, seed);
///   auto engine = DistributedEngine::Create(&net, program, options);
///   engine->Inject(node, StreamOp::kInsert, fact);
///   net.sim().Run();                       // quiesce
///   auto alerts = engine->ResultFacts(Intern("uncov"));
/// \endcode
class DistributedEngine {
 public:
  /// Compiles the program and installs a runtime on every node of
  /// `network` (which must not have apps yet). Starts the network.
  static StatusOr<std::unique_ptr<DistributedEngine>> Create(
      Network* network, const Program& program, const EngineOptions& options);

  /// Installs a runtime for an already-compiled plan (the multi-tenant
  /// path: MultiTenantEngine compiles N programs into one shared plan with
  /// CompileMultiPlan and hands the merged plan plus the per-tenant result
  /// fan-out table here). With an empty fanout this is exactly the tail of
  /// Create() — single-program behavior is byte-identical.
  static StatusOr<std::unique_ptr<DistributedEngine>> CreateFromPlan(
      Network* network, QueryPlan plan, ResultFanout fanout,
      const EngineOptions& options);

  /// Injects a base-stream update at `node`, at the current simulation
  /// time (the sensing API). Run the simulator to propagate.
  Status Inject(NodeId node, StreamOp op, const Fact& fact);

  /// Runs the simulation to quiescence.
  void Run() { network_->sim().Run(); }

  /// Alive derived facts of `pred`, unioned over all home nodes.
  std::vector<Fact> ResultFacts(SymbolId pred) const;

  /// All alive derived facts.
  Database ResultDatabase() const;

  /// Alive derived facts whose reporting result-home entry was never
  /// touched by a degraded (repair-resync or shedding) pass. The
  /// shed-soundness invariant checks this set — and only this set —
  /// against the fault-free oracle: a shed may lose results or degrade
  /// them, but must never let a wrong result through undegraded.
  Database UndegradedResultDatabase() const;

  /// Per-node memory accounting (§V): replicas and derivation records.
  size_t TotalReplicas() const;
  size_t TotalDerivations() const;
  size_t MaxNodeReplicas() const;

  /// Lineage edges currently held in the per-node provenance rings, nodes
  /// in id order, insertion order within a node. Empty when
  /// EngineOptions::provenance is off (rebooted nodes restart empty; the
  /// trace stream keeps the durable copy).
  std::vector<ProvenanceEdge> ProvenanceEdges() const;

  const EngineStats& stats() const { return shared_->stats; }
  const QueryPlan& plan() const { return shared_->plan; }
  const EngineTiming& timing() const { return shared_->timing; }
  Network* network() { return network_; }
  const Network* network() const { return network_; }

  /// The per-node runtime (home stores, shareable digests, degraded
  /// flags) — read-only access for the invariant suite (invariants.h).
  const NodeRuntime& runtime(NodeId id) const {
    return *runtimes_[static_cast<size_t>(id)];
  }

 private:
  DistributedEngine() = default;

  Network* network_ = nullptr;
  std::unique_ptr<EngineShared> shared_;
  std::vector<NodeRuntime*> runtimes_;  // owned by the network
};

/// N tenant programs multiplexed onto one shared engine (DESIGN.md §13).
/// Register every tenant's program with AddProgram, then Start: the
/// programs are compiled together (CompileMultiPlan), identical sub-plans
/// are evaluated once, and each tenant reads its own results — per-tenant
/// result homes, dedup-aware — through the tenant-scoped accessors.
///
/// Usage:
/// \code
///   MultiTenantEngine mte(options);
///   mte.AddProgram("alice", program_a);
///   mte.AddProgram("bob", program_b);
///   auto st = mte.Start(&net);          // compiles + installs + starts
///   mte.Inject(node, StreamOp::kInsert, fact);
///   mte.Run();
///   auto db = mte.ResultDatabase("bob");
/// \endcode
class MultiTenantEngine {
 public:
  explicit MultiTenantEngine(const EngineOptions& options)
      : options_(options) {}

  /// Registers `program` under `tenant` (a stable, unique tenant name).
  /// Must be called before Start.
  Status AddProgram(const std::string& tenant, const Program& program);

  /// Compiles all registered programs into one shared evaluation DAG and
  /// installs it on `network`. Exports tenancy counters ("tenant"
  /// component) to EngineOptions::metrics when configured.
  Status Start(Network* network);

  /// Injects a base-stream update (input streams are shared by name
  /// across tenants; see CompileMultiPlan).
  Status Inject(NodeId node, StreamOp op, const Fact& fact);

  /// Runs the simulation to quiescence.
  void Run();

  /// Alive derived facts of `pred` as `tenant` sees them (relabeled back
  /// to the tenant's own predicate names where the plan renamed them).
  StatusOr<std::vector<Fact>> ResultFacts(const std::string& tenant,
                                          SymbolId pred) const;
  /// All alive derived facts of `tenant`, under the tenant's names.
  StatusOr<Database> ResultDatabase(const std::string& tenant) const;
  /// The undegraded subset (see DistributedEngine), per tenant.
  StatusOr<Database> UndegradedResultDatabase(const std::string& tenant) const;

  size_t tenant_count() const { return programs_.size(); }
  /// Valid after Start.
  const MultiPlan& multi_plan() const { return multi_; }
  DistributedEngine* engine() { return engine_.get(); }
  const DistributedEngine* engine() const { return engine_.get(); }
  const EngineStats& stats() const { return engine_->stats(); }

 private:
  const TenantView* FindView(const std::string& tenant) const;

  EngineOptions options_;
  std::vector<TenantProgram> programs_;
  MultiPlan multi_;
  std::unique_ptr<DistributedEngine> engine_;
};

/// The naive external/centralized baseline (§III-A: "send each generated
/// tuple to some central server"): every update is routed hop-by-hop to a
/// sink node which maintains the program with the centralized incremental
/// engine. Communication cost scales with distance-to-sink and the sink's
/// neighborhood melts — the comparison every in-network approach is
/// measured against.
class CentralizedEngine {
 public:
  static StatusOr<std::unique_ptr<CentralizedEngine>> Create(
      Network* network, const Program& program, NodeId sink,
      const IncrementalOptions& options);

  Status Inject(NodeId node, StreamOp op, const Fact& fact);
  void Run() { network_->sim().Run(); }

  std::vector<Fact> ResultFacts(SymbolId pred) const;

  IncrementalEngine* sink_engine() { return sink_engine_.get(); }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  class ForwarderApp;

  CentralizedEngine() = default;

  Network* network_ = nullptr;
  NodeId sink_ = 0;
  std::shared_ptr<RoutingTable> routing_;
  std::unique_ptr<IncrementalEngine> sink_engine_;
  std::vector<std::string> errors_;
  uint32_t seq_ = 0;
};

}  // namespace deduce

#endif  // DEDUCE_ENGINE_ENGINE_H_
