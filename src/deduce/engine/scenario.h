#ifndef DEDUCE_ENGINE_SCENARIO_H_
#define DEDUCE_ENGINE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "deduce/common/metrics.h"
#include "deduce/common/status.h"
#include "deduce/common/trace.h"
#include "deduce/datalog/fact.h"
#include "deduce/engine/counterfactual/perturb.h"
#include "deduce/engine/invariants.h"
#include "deduce/eval/database.h"
#include "deduce/net/network.h"

namespace deduce {

/// One base-stream injection of a chaos scenario.
struct ScenarioEvent {
  SimTime time = 0;
  NodeId node = 0;
  StreamOp op = StreamOp::kInsert;
  Fact fact;
};

/// A self-contained, replayable chaos run: engine configuration, program
/// text, the injection trace and the fault schedule. Everything a run
/// depends on is in here (plus the code version), so `dlog replay` of a
/// saved scenario is bit-exact. Serialized as a small text format
/// (docs/FAULTS.md):
///
///     # deduce chaos scenario v2
///     seed 42
///     grid 4
///     ...
///     [program]
///     t(K, A, B) :- r(K, A), s(K, B).
///     [events]
///     1000 3 + r(1, 3, 7).
///     [faults]
///     cut 200000 0,1 -> 2,3
///     heal 500000 0,1 -> 2,3
///     corrupt 100000 * -> * rate=0.2
///     slow 100000 5 stall=20000
///     squeeze 300000 factor=0.5
///     storm 150000 7 count=40 pred=r
///     [end]
///
/// Format v3 adds an optional `[perturb]` section of counterfactual
/// perturbation clauses (counterfactual/perturb.h). Perturbations are
/// *declarative*: RunScenario materializes them (ApplyPerturbations)
/// before running, so a saved perturbed world replays standalone and the
/// text form never double-applies. ToText emits the v3 header only when
/// perturbations are present, keeping every committed v1/v2 reproducer
/// byte-identical.
///
/// FromText accepts v1 (pre-overload, no budget header keys), v2, and v3
/// files; an unknown future version, unknown fault kind, or unknown
/// perturbation kind is a parse error, never best-effort (`dlog replay`
/// exits 2).
struct Scenario {
  uint64_t seed = 1;        ///< Network RNG seed.
  int grid = 4;             ///< Grid side; topology is grid x grid.
  double loss = 0.0;        ///< LinkModel Bernoulli per-hop loss.
  int retries = 0;          ///< LinkModel MAC retries.
  bool reliable = false;    ///< End-to-end reliable transport.
  bool repair = false;      ///< Reboot-resync repair.
  SimTime anti_entropy_period = 0;
  bool checksum = false;    ///< Per-hop frame checksums.
  double rto_jitter = 0.0;  ///< TransportOptions::rto_jitter.
  /// TransportOptions::retraction (deletion-critical requeue protocol).
  /// Absent from pre-protocol scenario files; FromText defaults it off,
  /// so committed reproducers keep replaying bit-exactly.
  bool retraction = false;
  std::string storage = "row";  ///< row|broadcast|local|centroid.
  /// Overload budgets (format v2; see EngineOptions::budget). All off /
  /// zero in v1 files, keeping committed reproducers bit-exact.
  bool budget = false;
  uint64_t budget_replicas = 0;   ///< Live replicas per predicate per node.
  uint64_t budget_inflight = 0;   ///< In-flight reliable envelopes per node.
  uint64_t budget_eval = 0;       ///< Join-pass launches per storage event.
  uint64_t budget_ingress = 0;    ///< Open injection admissions per node.
  std::string shed_policy = "newest";  ///< newest|farthest|reject.
  std::string program;          ///< Datalog source text.
  std::vector<ScenarioEvent> events;
  FaultPlan faults;
  /// Counterfactual perturbations (format v3 `[perturb]` section), applied
  /// by RunScenario via ApplyPerturbations. Empty for v1/v2 files.
  std::vector<Perturbation> perturbations;

  /// Deterministic text form: same scenario -> byte-identical text.
  std::string ToText() const;
  static StatusOr<Scenario> FromText(const std::string& text);
  Status Save(const std::string& path) const;
  static StatusOr<Scenario> Load(const std::string& path);
};

/// Everything a finished scenario run yields: the invariant verdict, the
/// distributed result set, the fault-free oracle, and the counters the
/// replay report prints.
struct ScenarioOutcome {
  InvariantReport report;
  Database results;  ///< Alive derived facts of the chaos run.
  Database oracle;   ///< Centralized fault-free results (soundness bound).
  /// The undegraded subset of `results` (never touched by a repair-resync
  /// or shedding pass) — the set counterfactual diffs compare.
  Database undegraded;
  NetworkStats net;
  uint64_t decode_errors = 0;
  uint64_t retransmissions = 0;
  uint64_t gave_up = 0;
  uint64_t repaired = 0;
  SimTime quiesce_time = 0;
  /// Overload counters; reported (and nonzero) only when the scenario ran
  /// with budgets on, so v1 transcripts stay byte-identical.
  bool overload = false;
  uint64_t sheds = 0;
  uint64_t ingress_rejects = 0;
  uint64_t budget_evictions = 0;
  uint64_t budget_squeezes = 0;
  uint64_t deliveries_stalled = 0;
  uint64_t degraded_results = 0;

  /// Deterministic multi-line report (sorted results + counters +
  /// invariant verdict). `dlog replay` prints exactly this, so two runs
  /// of one scenario file diff byte-clean.
  std::string Summary() const;
};

/// Observability knobs for RunScenario. All off by default — the
/// no-options overload is byte-identical to the pre-v3 behavior.
struct ScenarioRunOptions {
  /// Force causal provenance on (counterfactual runs need lineage).
  bool provenance = false;
  /// Per-node lineage ring capacity override (0 = default).
  size_t provenance_capacity = 0;
  /// JSONL trace sink (`dlog replay --trace-out`); null = no tracing.
  TraceWriter* trace = nullptr;
  /// Metrics sink (`dlog replay --metrics-out`); null = no metrics.
  MetricsRegistry* metrics = nullptr;
};

/// Runs a scenario to quiescence and checks the invariant suite against
/// the centralized oracle. Convergence is checked when anti-entropy ran
/// and no link faults are left installed at quiescence. Scenarios with a
/// `[perturb]` block are materialized through ApplyPerturbations first.
StatusOr<ScenarioOutcome> RunScenario(const Scenario& scenario);
StatusOr<ScenarioOutcome> RunScenario(const Scenario& scenario,
                                      const ScenarioRunOptions& run);

/// Materializes a scenario's perturbations into concrete faults / event
/// edits: node=N,down fails N at t=0; link=A-B,cut cuts both directions at
/// t=0; inject=F,drop removes every event carrying F (an error when none
/// matches — a counterfactual that changes nothing explains nothing);
/// budget=kind,K enables budgets with that cap. tenant=T,remove is
/// rejected (scenario files define a single anonymous program). The result
/// has an empty perturbation list.
StatusOr<Scenario> ApplyPerturbations(const Scenario& scenario);

/// Knobs for SampleScenario (the `dlog chaos` flags).
struct ChaosProfile {
  int grid = 4;
  int events = 40;          ///< Injections to sample.
  SimTime horizon = 2000000;  ///< Injections spread over [0, horizon).
  double loss = 0.0;
  bool reliable = true;
  bool repair = false;
  SimTime anti_entropy_period = 0;
  bool checksum = true;
  double rto_jitter = 0.1;
  /// Deletion-critical requeue protocol (`dlog chaos --retraction`).
  bool retraction = false;
  /// Overload sampling (`dlog chaos --overload`): budgets on with tight
  /// caps, shed policy drawn from the seed, and the fault schedule drawn
  /// from the storm/straggler/squeeze axes instead of the link axes.
  /// Implies retraction (the deletion-critical requeue keeps shed runs
  /// phantom-free).
  bool overload = false;
};

/// Samples a random two-stream-join workload plus an adversarial fault
/// schedule (partitions, corruption, duplication, delay jitter, churn,
/// reboot storms), all drawn deterministically from `seed`.
Scenario SampleScenario(uint64_t seed, const ChaosProfile& profile);

/// Result of greedy schedule shrinking.
struct ShrinkResult {
  Scenario scenario;  ///< Minimal scenario still violating an invariant.
  int runs = 0;       ///< Candidate re-executions performed.
  int removed = 0;    ///< Events removed from the original schedule.
};

/// Delta-debugs a violating scenario: repeatedly tries removing each
/// fault event and each injection, keeping any removal that preserves a
/// violation, until a fixpoint (1-minimal under single-event removal).
/// The input must already violate (RunScenario(...).report.ok() false).
StatusOr<ShrinkResult> ShrinkScenario(const Scenario& scenario);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_SCENARIO_H_
