#ifndef DEDUCE_ENGINE_INVARIANTS_H_
#define DEDUCE_ENGINE_INVARIANTS_H_

#include <string>
#include <vector>

#include "deduce/engine/counterfactual/diff.h"
#include "deduce/engine/engine.h"
#include "deduce/eval/database.h"

namespace deduce {

/// Which checks CheckInvariants runs (docs/FAULTS.md). Soundness needs an
/// oracle; the other checks read only the engine under test.
struct InvariantOptions {
  /// Fault-free expectation: the result set a centralized incremental run
  /// over the same program + injections produces. When set, *soundness*
  /// is checked — every alive result of the chaos run must appear here
  /// (faults may lose answers, they must never invent them).
  const Database* oracle = nullptr;

  /// Post-repair *convergence*: for every pair of alive, non-degraded
  /// nodes, the shareable-replica digests each side would present to the
  /// other must agree (count + fingerprint per predicate, §IV-B
  /// lifetime-filtered). Only meaningful when anti-entropy repair ran and
  /// link faults were healed before quiescence, so it is opt-in.
  bool check_convergence = false;

  /// *Dedup monotonicity* + placement: the number of alive home facts
  /// equals derived generations minus derived deletions (a duplicated or
  /// replayed result frame must not double-generate), and every alive
  /// home fact resides at the node its predicate hashes it to (a damaged
  /// frame must not park a result at the wrong home). Skipped
  /// automatically when nodes crashed: a reboot legitimately erases home
  /// entries without a deletion generation.
  bool check_dedup = true;

  /// EngineStats::errors must stay empty: under chaos, malformed traffic
  /// is dropped and counted (decode_errors), so any Fault() entry is an
  /// engine bug the schedule exposed.
  bool check_engine_errors = true;

  /// Shed-tolerant soundness (overload runs with EngineOptions::budget
  /// on): load shedding may legitimately lose answers AND leave surviving
  /// answers flagged degraded, but must never let a result derived from
  /// shed state through *undegraded*. With this set, the oracle check
  /// compares only DistributedEngine::UndegradedResultDatabase() against
  /// the oracle — a phantom that is honestly degraded is tolerated, an
  /// undegraded one is a violation.
  bool shed_tolerant = false;
};

/// Verdict of one invariant sweep. `violations` is deterministic (sorted
/// within each check, checks in a fixed order), so two runs of the same
/// seed produce byte-identical reports.
struct InvariantReport {
  std::vector<std::string> violations;
  bool soundness_checked = false;
  bool shed_soundness_checked = false;
  bool convergence_checked = false;
  bool dedup_checked = false;

  bool ok() const { return violations.empty(); }
  /// "invariants: OK (...)" or one line per violation.
  std::string ToString() const;
};

/// Runs the invariant suite against a quiesced engine. Read-only: safe to
/// call repeatedly (the shrinking loop re-checks every candidate
/// schedule).
InvariantReport CheckInvariants(const DistributedEngine& engine,
                                const InvariantOptions& options);

/// Diff-soundness for a counterfactual explanation: every *vanished* tuple
/// must be derivable by the base world's fault-free oracle, and every
/// *appeared* tuple by the perturbed world's — a diff entry neither oracle
/// supports means the explainer compared phantoms, not real answers.
/// (Flips are membership moves between the two checked sets, so the two
/// rules above already cover them.) Returns deterministic sorted violation
/// strings; empty = sound.
std::vector<std::string> CheckDiffSoundness(const ChangeExplanation& diff,
                                            const Database& base_oracle,
                                            const Database& perturbed_oracle);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_INVARIANTS_H_
