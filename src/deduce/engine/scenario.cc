#include "deduce/engine/scenario.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "deduce/common/rng.h"
#include "deduce/common/strings.h"
#include "deduce/datalog/parser.h"
#include "deduce/datalog/symbol.h"
#include "deduce/engine/engine.h"
#include "deduce/eval/incremental.h"
#include "deduce/eval/seminaive.h"

namespace deduce {

namespace {

// ---------------------------------------------------------------------
// Serialization helpers
// ---------------------------------------------------------------------

std::string NodeList(const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return "*";
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat("%d", nodes[i]);
  }
  return out;
}

bool ParseNodeList(const std::string& text, std::vector<NodeId>* out) {
  out->clear();
  if (text == "*") return true;
  for (const std::string& part : StrSplit(text, ',')) {
    char* end = nullptr;
    long v = std::strtol(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0') return false;
    out->push_back(static_cast<NodeId>(v));
  }
  return !out->empty();
}

const char* FaultKindName(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEvent::Kind::kFail:
      return "fail";
    case FaultEvent::Kind::kRecover:
      return "recover";
    case FaultEvent::Kind::kHealLinks:
      return "heal";
    case FaultEvent::Kind::kSlowNode:
      return "slow";
    case FaultEvent::Kind::kMemSqueeze:
      return "squeeze";
    case FaultEvent::Kind::kInjectStorm:
      return "storm";
    case FaultEvent::Kind::kAddLinkFault:
      switch (ev.rule.kind) {
        case LinkFaultRule::Kind::kCut:
          return "cut";
        case LinkFaultRule::Kind::kCorrupt:
          return "corrupt";
        case LinkFaultRule::Kind::kDuplicate:
          return "dup";
        case LinkFaultRule::Kind::kDelay:
          return "delay";
      }
  }
  return "?";
}

std::string FormatFault(const FaultEvent& ev) {
  std::string out = StrFormat("%s %lld", FaultKindName(ev),
                              static_cast<long long>(ev.time));
  if (ev.kind == FaultEvent::Kind::kFail ||
      ev.kind == FaultEvent::Kind::kRecover) {
    out += StrFormat(" %d", ev.node);
    return out;
  }
  if (ev.kind == FaultEvent::Kind::kSlowNode) {
    out += StrFormat(" %d stall=%lld", ev.node,
                     static_cast<long long>(ev.magnitude));
    return out;
  }
  if (ev.kind == FaultEvent::Kind::kMemSqueeze) {
    // magnitude is an integer percentage; serialize the factor it encodes.
    out += StrFormat(" factor=%g",
                     static_cast<double>(ev.magnitude) / 100.0);
    return out;
  }
  if (ev.kind == FaultEvent::Kind::kInjectStorm) {
    out += StrFormat(" %d count=%lld pred=%s", ev.node,
                     static_cast<long long>(ev.magnitude), ev.arg.c_str());
    return out;
  }
  out += " " + NodeList(ev.rule.src) + " -> " + NodeList(ev.rule.dst);
  if (ev.kind == FaultEvent::Kind::kAddLinkFault &&
      ev.rule.kind != LinkFaultRule::Kind::kCut) {
    out += StrFormat(" rate=%g", ev.rule.rate);
    if (ev.rule.kind == LinkFaultRule::Kind::kDelay) {
      out += StrFormat(" extra=%lld",
                       static_cast<long long>(ev.rule.extra_delay));
    }
  }
  return out;
}

Status ParseFault(const std::string& line, int lineno, FaultPlan* plan) {
  std::istringstream ls(line);
  std::string kind;
  long long time;
  if (!(ls >> kind >> time)) {
    return Status::InvalidArgument(
        StrFormat("faults line %d: expected '<kind> <time> ...'", lineno));
  }
  auto bad = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("faults line %d: %s", lineno, what));
  };
  if (kind == "fail" || kind == "recover") {
    int node;
    if (!(ls >> node)) return bad("expected node id");
    if (kind == "fail") {
      plan->Fail(time, node);
    } else {
      plan->Recover(time, node);
    }
    return Status::OK();
  }
  if (kind == "slow") {
    int node;
    std::string opt;
    if (!(ls >> node >> opt) || opt.rfind("stall=", 0) != 0) {
      return bad("expected '<node> stall=<us>'");
    }
    plan->SlowNode(time, node, std::strtoll(opt.c_str() + 6, nullptr, 10));
    return Status::OK();
  }
  if (kind == "squeeze") {
    std::string opt;
    if (!(ls >> opt) || opt.rfind("factor=", 0) != 0) {
      return bad("expected 'factor=<f>'");
    }
    plan->MemSqueeze(time, std::strtod(opt.c_str() + 7, nullptr));
    return Status::OK();
  }
  if (kind == "storm") {
    int node;
    std::string count_opt, pred_opt;
    if (!(ls >> node >> count_opt >> pred_opt) ||
        count_opt.rfind("count=", 0) != 0 ||
        pred_opt.rfind("pred=", 0) != 0) {
      return bad("expected '<node> count=<n> pred=<name>'");
    }
    plan->InjectStorm(time, node, pred_opt.substr(5),
                      std::strtoll(count_opt.c_str() + 6, nullptr, 10));
    return Status::OK();
  }
  if (kind != "cut" && kind != "heal" && kind != "corrupt" &&
      kind != "dup" && kind != "delay") {
    // Explicitly reject rather than best-effort: a replayed reproducer
    // with a fault this build does not know cannot be trusted to
    // reproduce anything.
    return bad(("unknown fault kind '" + kind + "'").c_str());
  }
  std::string src_text, arrow, dst_text;
  if (!(ls >> src_text >> arrow >> dst_text) || arrow != "->") {
    return bad("expected '<src-list> -> <dst-list>'");
  }
  std::vector<NodeId> src, dst;
  if (!ParseNodeList(src_text, &src)) return bad("bad src node list");
  if (!ParseNodeList(dst_text, &dst)) return bad("bad dst node list");
  double rate = 1.0;
  long long extra = 0;
  std::string opt;
  while (ls >> opt) {
    if (opt.rfind("rate=", 0) == 0) {
      rate = std::strtod(opt.c_str() + 5, nullptr);
    } else if (opt.rfind("extra=", 0) == 0) {
      extra = std::strtoll(opt.c_str() + 6, nullptr, 10);
    } else {
      return bad("unknown fault option");
    }
  }
  if (kind == "cut") {
    plan->CutLinks(time, std::move(src), std::move(dst));
  } else if (kind == "heal") {
    plan->HealLinks(time, std::move(src), std::move(dst));
  } else if (kind == "corrupt") {
    plan->CorruptLinks(time, std::move(src), std::move(dst), rate);
  } else if (kind == "dup") {
    plan->DuplicateLinks(time, std::move(src), std::move(dst), rate);
  } else if (kind == "delay") {
    plan->DelayLinks(time, std::move(src), std::move(dst), rate, extra);
  } else {
    return bad("unknown fault kind");
  }
  return Status::OK();
}

StatusOr<ScenarioEvent> ParseEventLine(const std::string& line, int lineno) {
  std::istringstream ls(line);
  long long time;
  int node;
  std::string op;
  if (!(ls >> time >> node >> op) || (op != "+" && op != "-")) {
    return StatusOr<ScenarioEvent>(Status::InvalidArgument(
        StrFormat("events line %d: expected '<time> <node> +|- <fact>.'",
                  lineno)));
  }
  std::string fact_text;
  std::getline(ls, fact_text);
  auto rule = ParseRule(std::string(StrTrim(fact_text)));
  if (!rule.ok() || !rule->body.empty()) {
    return StatusOr<ScenarioEvent>(Status::InvalidArgument(
        StrFormat("events line %d: bad fact: %s", lineno,
                  rule.ok() ? "rules not allowed"
                            : rule.status().message().c_str())));
  }
  ScenarioEvent ev;
  ev.time = time;
  ev.node = node;
  ev.op = op == "+" ? StreamOp::kInsert : StreamOp::kDelete;
  ev.fact = Fact(rule->head.predicate, rule->head.args);
  return ev;
}

bool StorageFromName(const std::string& name, StoragePolicy* out) {
  if (name == "row" || name.empty()) {
    *out = StoragePolicy::kRow;
  } else if (name == "broadcast") {
    *out = StoragePolicy::kBroadcast;
  } else if (name == "local") {
    *out = StoragePolicy::kLocal;
  } else if (name == "centroid") {
    *out = StoragePolicy::kCentroid;
  } else {
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// Scenario text form
// ---------------------------------------------------------------------

std::string Scenario::ToText() const {
  // The v3 header (and the [perturb] section) appear only when there is a
  // perturbation to record: every pre-counterfactual scenario keeps
  // serializing byte-identically to the v2 writer.
  std::string out = perturbations.empty() ? "# deduce chaos scenario v2\n"
                                          : "# deduce chaos scenario v3\n";
  out += StrFormat("seed %llu\n", static_cast<unsigned long long>(seed));
  out += StrFormat("grid %d\n", grid);
  out += StrFormat("loss %g\n", loss);
  out += StrFormat("retries %d\n", retries);
  out += StrFormat("reliable %d\n", reliable ? 1 : 0);
  out += StrFormat("repair %d\n", repair ? 1 : 0);
  out += StrFormat("anti_entropy_period %lld\n",
                   static_cast<long long>(anti_entropy_period));
  out += StrFormat("checksum %d\n", checksum ? 1 : 0);
  out += StrFormat("rto_jitter %g\n", rto_jitter);
  out += StrFormat("retraction %d\n", retraction ? 1 : 0);
  out += "storage " + storage + "\n";
  out += StrFormat("budget %d\n", budget ? 1 : 0);
  out += StrFormat("budget_replicas %llu\n",
                   static_cast<unsigned long long>(budget_replicas));
  out += StrFormat("budget_inflight %llu\n",
                   static_cast<unsigned long long>(budget_inflight));
  out += StrFormat("budget_eval %llu\n",
                   static_cast<unsigned long long>(budget_eval));
  out += StrFormat("budget_ingress %llu\n",
                   static_cast<unsigned long long>(budget_ingress));
  out += "shed_policy " + shed_policy + "\n";
  out += "[program]\n";
  out += program;
  if (!program.empty() && program.back() != '\n') out += '\n';
  out += "[events]\n";
  for (const ScenarioEvent& ev : events) {
    out += StrFormat("%lld %d %s ", static_cast<long long>(ev.time),
                     ev.node, ev.op == StreamOp::kInsert ? "+" : "-");
    out += ev.fact.ToString();
    out += ".\n";
  }
  out += "[faults]\n";
  for (const FaultEvent& ev : faults.events) {
    out += FormatFault(ev);
    out += '\n';
  }
  if (!perturbations.empty()) {
    out += "[perturb]\n";
    for (const Perturbation& p : perturbations) {
      out += p.ToSpec();
      out += '\n';
    }
  }
  out += "[end]\n";
  return out;
}

StatusOr<Scenario> Scenario::FromText(const std::string& text) {
  Scenario s;
  s.program.clear();
  s.storage = "row";
  enum class Section { kHeader, kProgram, kEvents, kFaults, kPerturb, kDone };
  Section section = Section::kHeader;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    return StatusOr<Scenario>(Status::InvalidArgument(
        StrFormat("scenario line %d: %s", lineno, what.c_str())));
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::string trimmed(StrTrim(line));
    if (section != Section::kProgram &&
        (trimmed.empty() || trimmed[0] == '#')) {
      // Version pragma: "# deduce chaos scenario vN". Files without one
      // predate versioning and parse as v1; an unknown future version is
      // rejected outright (this build cannot replay it faithfully).
      constexpr char kVersionPrefix[] = "# deduce chaos scenario v";
      if (trimmed.rfind(kVersionPrefix, 0) == 0) {
        const char* digits = trimmed.c_str() + sizeof(kVersionPrefix) - 1;
        char* end = nullptr;
        long version = std::strtol(digits, &end, 10);
        if (end == digits || *end != '\0' || version < 1 || version > 3) {
          return fail(StrFormat(
              "unsupported scenario version '%s' (this build reads v1-v3)",
              digits));
        }
      }
      continue;
    }
    if (trimmed == "[program]") {
      section = Section::kProgram;
      continue;
    }
    if (trimmed == "[events]") {
      section = Section::kEvents;
      continue;
    }
    if (trimmed == "[faults]") {
      section = Section::kFaults;
      continue;
    }
    if (trimmed == "[perturb]") {
      section = Section::kPerturb;
      continue;
    }
    if (trimmed == "[end]") {
      section = Section::kDone;
      continue;
    }
    switch (section) {
      case Section::kHeader: {
        std::istringstream ls(trimmed);
        std::string key, value;
        if (!(ls >> key >> value)) return fail("expected '<key> <value>'");
        if (key == "seed") {
          s.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "grid") {
          s.grid = std::atoi(value.c_str());
        } else if (key == "loss") {
          s.loss = std::strtod(value.c_str(), nullptr);
        } else if (key == "retries") {
          s.retries = std::atoi(value.c_str());
        } else if (key == "reliable") {
          s.reliable = value != "0";
        } else if (key == "repair") {
          s.repair = value != "0";
        } else if (key == "anti_entropy_period") {
          s.anti_entropy_period = std::strtoll(value.c_str(), nullptr, 10);
        } else if (key == "checksum") {
          s.checksum = value != "0";
        } else if (key == "rto_jitter") {
          s.rto_jitter = std::strtod(value.c_str(), nullptr);
        } else if (key == "retraction") {
          s.retraction = value != "0";
        } else if (key == "storage") {
          s.storage = value;
        } else if (key == "budget") {
          s.budget = value != "0";
        } else if (key == "budget_replicas") {
          s.budget_replicas = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "budget_inflight") {
          s.budget_inflight = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "budget_eval") {
          s.budget_eval = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "budget_ingress") {
          s.budget_ingress = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "shed_policy") {
          s.shed_policy = value;
        } else {
          return fail("unknown header key '" + key + "'");
        }
        break;
      }
      case Section::kProgram:
        s.program += line;
        s.program += '\n';
        break;
      case Section::kEvents: {
        auto ev = ParseEventLine(trimmed, lineno);
        if (!ev.ok()) return StatusOr<Scenario>(ev.status());
        s.events.push_back(std::move(*ev));
        break;
      }
      case Section::kFaults: {
        Status st = ParseFault(trimmed, lineno, &s.faults);
        if (!st.ok()) return StatusOr<Scenario>(st);
        break;
      }
      case Section::kPerturb: {
        auto p = ParsePerturbation(trimmed);
        if (!p.ok()) {
          return StatusOr<Scenario>(Status::InvalidArgument(StrFormat(
              "scenario line %d: %s", lineno, p.status().message().c_str())));
        }
        s.perturbations.push_back(std::move(*p));
        break;
      }
      case Section::kDone:
        return fail("content after [end]");
    }
  }
  StoragePolicy ignored;
  if (!StorageFromName(s.storage, &ignored)) {
    return StatusOr<Scenario>(Status::InvalidArgument(
        "scenario: unknown storage '" + s.storage + "'"));
  }
  if (s.shed_policy != "newest" && s.shed_policy != "farthest" &&
      s.shed_policy != "reject") {
    return StatusOr<Scenario>(Status::InvalidArgument(
        "scenario: unknown shed_policy '" + s.shed_policy + "'"));
  }
  if (s.grid < 1) {
    return StatusOr<Scenario>(Status::InvalidArgument("scenario: bad grid"));
  }
  return s;
}

Status Scenario::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot write scenario file " + path);
  out << ToText();
  out.close();
  if (!out) return Status::Internal("error writing scenario file " + path);
  return Status::OK();
}

StatusOr<Scenario> Scenario::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return StatusOr<Scenario>(
        Status::NotFound("cannot open scenario file " + path));
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return FromText(ss.str());
}

// ---------------------------------------------------------------------
// Perturbation
// ---------------------------------------------------------------------

StatusOr<Scenario> ApplyPerturbations(const Scenario& scenario) {
  Scenario out = scenario;
  out.perturbations.clear();
  for (const Perturbation& p : scenario.perturbations) {
    auto bad = [&](const std::string& what) {
      return StatusOr<Scenario>(Status::InvalidArgument(
          StrFormat("perturbation '%s': %s", p.ToSpec().c_str(),
                    what.c_str())));
    };
    switch (p.kind) {
      case Perturbation::Kind::kNodeDown: {
        if (p.node < 0 || p.node >= scenario.grid * scenario.grid) {
          return bad(StrFormat("node out of range (grid %d)", scenario.grid));
        }
        out.faults.Fail(0, p.node);
        break;
      }
      case Perturbation::Kind::kLinkCut: {
        NodeId n = scenario.grid * scenario.grid;
        if (p.link_a < 0 || p.link_a >= n || p.link_b < 0 || p.link_b >= n) {
          return bad(StrFormat("link endpoint out of range (grid %d)",
                               scenario.grid));
        }
        out.faults.CutLinks(0, {p.link_a}, {p.link_b});
        out.faults.CutLinks(0, {p.link_b}, {p.link_a});
        break;
      }
      case Perturbation::Kind::kInjectDrop: {
        size_t before = out.events.size();
        out.events.erase(
            std::remove_if(out.events.begin(), out.events.end(),
                           [&](const ScenarioEvent& ev) {
                             return ev.fact.ToString() == p.fact;
                           }),
            out.events.end());
        if (out.events.size() == before) {
          return bad("no scenario event carries this fact");
        }
        break;
      }
      case Perturbation::Kind::kBudget: {
        out.budget = true;
        if (p.budget_kind == "replicas") {
          out.budget_replicas = p.budget_value;
        } else if (p.budget_kind == "inflight") {
          out.budget_inflight = p.budget_value;
        } else if (p.budget_kind == "eval") {
          out.budget_eval = p.budget_value;
        } else if (p.budget_kind == "ingress") {
          out.budget_ingress = p.budget_value;
        } else {
          return bad("unknown budget kind");
        }
        break;
      }
      case Perturbation::Kind::kTenantRemove:
        // Scenario files carry one anonymous program; there is no tenant
        // to remove. The clause parses (a multi-tenant capture format can
        // adopt it without a grammar change) but cannot apply here.
        return bad("scenario defines no tenants");
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Running
// ---------------------------------------------------------------------

StatusOr<ScenarioOutcome> RunScenario(const Scenario& scenario) {
  return RunScenario(scenario, ScenarioRunOptions{});
}

StatusOr<ScenarioOutcome> RunScenario(const Scenario& scenario,
                                      const ScenarioRunOptions& run) {
  if (!scenario.perturbations.empty()) {
    auto materialized = ApplyPerturbations(scenario);
    if (!materialized.ok()) {
      return StatusOr<ScenarioOutcome>(materialized.status());
    }
    return RunScenario(*materialized, run);
  }
  auto program = ParseProgram(scenario.program);
  if (!program.ok()) return StatusOr<ScenarioOutcome>(program.status());

  std::vector<ScenarioEvent> events = scenario.events;

  // InjectStorm expansion: each storm fault becomes a deterministic burst
  // of insertions merged into the ordinary event list. Expanding here (not
  // in the network) means the oracle sees exactly the storm facts that
  // were admitted — Inject's return value per fact feeds the same
  // `happened` bookkeeping as hand-written events. Tuple payloads start at
  // 1'000'000 + storm_index * 100'000 so they can never collide with a
  // sampled workload's sequence numbers.
  {
    int storm_idx = 0;
    for (const FaultEvent& fe : scenario.faults.events) {
      if (fe.kind != FaultEvent::Kind::kInjectStorm) continue;
      SymbolId pred = Intern(fe.arg);
      Rng srng(scenario.seed ^
               (0x5bd1e995ULL * static_cast<uint64_t>(storm_idx + 1)));
      for (int64_t i = 0; i < fe.magnitude; ++i) {
        ScenarioEvent ev;
        ev.time = fe.time + i * 1000;  // 1 ms apart: a flood, not a tie.
        ev.node = fe.node;
        ev.op = StreamOp::kInsert;
        ev.fact = Fact(pred, {Term::Int(srng.Uniform(1, 4)),
                              Term::Int(fe.node),
                              Term::Int(1'000'000 + storm_idx * 100'000 + i)});
        events.push_back(std::move(ev));
      }
      ++storm_idx;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });

  ScenarioOutcome out;

  // The distributed run under faults. It runs before the oracle so the
  // oracle can be restricted to the injections that actually entered the
  // system: an event aimed at a node that is down at injection time (a
  // dead sensor observes nothing and retracts nothing), or a deletion
  // whose tuple the node no longer knows (a reboot wiped it), never
  // happened, and no delivery protocol can be charged with its effects.
  EngineOptions options;
  options.transport.reliable = scenario.reliable;
  options.transport.rto_jitter = scenario.rto_jitter;
  options.transport.retraction = scenario.retraction;
  options.repair.enabled = scenario.repair;
  options.repair.anti_entropy_period = scenario.anti_entropy_period;
  options.checksum = scenario.checksum;
  options.budget.enabled = scenario.budget;
  options.budget.max_replicas_per_pred =
      static_cast<size_t>(scenario.budget_replicas);
  options.budget.max_inflight = static_cast<size_t>(scenario.budget_inflight);
  options.budget.max_eval_work = static_cast<size_t>(scenario.budget_eval);
  options.budget.max_ingress = static_cast<size_t>(scenario.budget_ingress);
  options.budget.policy = scenario.shed_policy == "farthest"
                              ? ShedPolicy::kShedFarthestWindow
                          : scenario.shed_policy == "reject"
                              ? ShedPolicy::kRejectInjection
                              : ShedPolicy::kShedNewest;
  if (!StorageFromName(scenario.storage, &options.planner.default_storage)) {
    return StatusOr<ScenarioOutcome>(
        Status::InvalidArgument("unknown storage " + scenario.storage));
  }
  // Observability plumbing (ScenarioRunOptions): provenance changes no
  // simulated counter (provenance.h), and metrics/trace are pure sinks, so
  // a replay with these on stays bit-exact with the plain replay.
  options.provenance.enabled = run.provenance;
  options.provenance_capacity = run.provenance_capacity;
  options.metrics = run.metrics;
  options.trace = run.trace;
  LinkModel link;
  link.loss_rate = scenario.loss;
  link.retries = scenario.retries;
  Network net(Topology::Grid(scenario.grid), link, scenario.seed);
  net.ApplyFaultPlan(scenario.faults);
  auto engine = DistributedEngine::Create(&net, *program, options);
  if (!engine.ok()) return StatusOr<ScenarioOutcome>(engine.status());
  std::vector<bool> happened(events.size(), false);
  for (size_t i = 0; i < events.size(); ++i) {
    const ScenarioEvent& ev = events[i];
    net.sim().RunUntil(ev.time);
    if (ev.node >= 0 && ev.node < net.node_count() && net.IsFailed(ev.node)) {
      continue;
    }
    happened[i] = (*engine)->Inject(ev.node, ev.op, ev.fact).ok();
  }
  net.sim().Run();

  // The fault-free oracle: the surviving injections through the
  // centralized incremental engine.
  {
    auto reference =
        IncrementalEngine::Create(*program, IncrementalOptions{});
    if (reference.ok()) {
      for (size_t i = 0; i < events.size(); ++i) {
        if (!happened[i]) continue;
        StreamEvent ev;
        ev.op = events[i].op;
        ev.fact = events[i].fact;
        ev.id = TupleId{events[i].node, events[i].time,
                        static_cast<uint32_t>(i)};
        ev.time = events[i].time;
        Status st = (*reference)->Apply(ev, nullptr);
        if (!st.ok()) return StatusOr<ScenarioOutcome>(st);
      }
      const ProgramAnalysis& analysis = (*reference)->analysis();
      for (SymbolId pred : analysis.predicates) {
        if (!analysis.idb.count(pred)) continue;
        for (const Fact& f : (*reference)->AliveFacts(pred)) {
          out.oracle.Insert(f);
        }
      }
    } else {
      // Fallback for program classes the incremental engine rejects (head
      // aggregates): whole-program seminaive evaluation of the final fact
      // set. Only equivalent to a replayed stream when nothing is deleted.
      for (const ScenarioEvent& ev : events) {
        if (ev.op != StreamOp::kInsert) {
          return StatusOr<ScenarioOutcome>(reference.status());
        }
      }
      std::vector<Fact> inputs;
      inputs.reserve(events.size());
      for (size_t i = 0; i < events.size(); ++i) {
        if (happened[i]) inputs.push_back(events[i].fact);
      }
      auto db = EvaluateProgram(*program, inputs);
      if (!db.ok()) return StatusOr<ScenarioOutcome>(db.status());
      for (const Rule& rule : program->rules()) {
        for (const Fact& f : db->Relation(rule.head.predicate)) {
          out.oracle.Insert(f);
        }
      }
    }
  }

  out.results = (*engine)->ResultDatabase();
  out.undegraded = (*engine)->UndegradedResultDatabase();
  out.net = net.stats();
  const EngineStats& stats = (*engine)->stats();
  out.decode_errors = stats.decode_errors;
  out.retransmissions = stats.retransmissions;
  out.gave_up = stats.gave_up_messages;
  out.repaired = stats.repaired_messages;
  out.quiesce_time = net.now();
  out.overload = scenario.budget;
  out.sheds = stats.sheds;
  out.ingress_rejects = stats.ingress_rejects;
  out.budget_evictions = stats.budget_evictions;
  out.budget_squeezes = stats.budget_squeezes;
  out.deliveries_stalled = net.stats().deliveries_stalled;
  out.degraded_results = stats.degraded_results;
  if (run.metrics != nullptr) {
    net.stats().ExportTo(run.metrics);
    stats.ExportTo(run.metrics);
  }

  InvariantOptions inv;
  inv.oracle = &out.oracle;
  // Shedding can legitimately leave peers' replica stores divergent (an
  // evicted replica is gone on one band member, live on another), so
  // convergence is only meaningful with budgets off.
  inv.check_convergence = scenario.anti_entropy_period > 0 &&
                          net.link_faults().empty() && !scenario.budget;
  inv.shed_tolerant = scenario.budget;
  out.report = CheckInvariants(**engine, inv);
  return out;
}

std::string ScenarioOutcome::Summary() const {
  std::vector<std::string> got;
  for (SymbolId pred : results.Predicates()) {
    for (const Fact& f : results.Relation(pred)) {
      got.push_back(f.ToString());
    }
  }
  std::sort(got.begin(), got.end());
  size_t oracle_count = 0;
  for (SymbolId pred : oracle.Predicates()) {
    oracle_count += oracle.Relation(pred).size();
  }
  std::string out = StrFormat("results (%zu):\n", got.size());
  for (const std::string& f : got) {
    out += "  ";
    out += f;
    out += '\n';
  }
  out += StrFormat("oracle results: %zu\n", oracle_count);
  out += StrFormat(
      "network: messages=%llu bytes=%llu links_cut=%llu corrupted=%llu "
      "duplicated=%llu reordered=%llu nodes_failed=%llu\n",
      static_cast<unsigned long long>(net.TotalMessages()),
      static_cast<unsigned long long>(net.TotalBytes()),
      static_cast<unsigned long long>(net.links_cut),
      static_cast<unsigned long long>(net.corrupted_delivered),
      static_cast<unsigned long long>(net.duplicated),
      static_cast<unsigned long long>(net.reordered),
      static_cast<unsigned long long>(net.nodes_failed));
  out += StrFormat(
      "engine: decode_errors=%llu retransmissions=%llu gave_up=%llu "
      "repaired=%llu\n",
      static_cast<unsigned long long>(decode_errors),
      static_cast<unsigned long long>(retransmissions),
      static_cast<unsigned long long>(gave_up),
      static_cast<unsigned long long>(repaired));
  if (overload) {
    // Only overload runs print this line, keeping every pre-v2 committed
    // transcript byte-identical.
    out += StrFormat(
        "overload: sheds=%llu ingress_rejects=%llu evictions=%llu "
        "squeezes=%llu stalled=%llu degraded=%llu\n",
        static_cast<unsigned long long>(sheds),
        static_cast<unsigned long long>(ingress_rejects),
        static_cast<unsigned long long>(budget_evictions),
        static_cast<unsigned long long>(budget_squeezes),
        static_cast<unsigned long long>(deliveries_stalled),
        static_cast<unsigned long long>(degraded_results));
  }
  out += StrFormat("quiesced_at_us %lld\n",
                   static_cast<long long>(quiesce_time));
  out += report.ToString();
  out += '\n';
  return out;
}

// ---------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------

namespace {

constexpr char kChaosProgram[] =
    ".decl r/3 input.\n"
    ".decl s/3 input.\n"
    "t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).\n";

std::vector<NodeId> GridColumns(int grid, int lo, int hi) {
  std::vector<NodeId> out;
  for (int node = 0; node < grid * grid; ++node) {
    int col = node % grid;
    if (col >= lo && col < hi) out.push_back(node);
  }
  return out;
}

}  // namespace

Scenario SampleScenario(uint64_t seed, const ChaosProfile& profile) {
  Scenario s;
  s.seed = seed;
  s.grid = profile.grid;
  s.loss = profile.loss;
  s.retries = profile.loss > 0 ? 2 : 0;
  s.reliable = profile.reliable;
  s.repair = profile.repair;
  s.anti_entropy_period = profile.anti_entropy_period;
  s.checksum = profile.checksum;
  s.rto_jitter = profile.rto_jitter;
  s.retraction = profile.retraction || profile.overload;
  s.program = kChaosProgram;

  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  int n = profile.grid * profile.grid;
  SimTime horizon = profile.horizon;

  if (profile.overload) {
    // Tight budgets so the storm axis actually sheds, the policy drawn
    // from the seed so the sweep covers all three.
    s.budget = true;
    s.budget_replicas = static_cast<uint64_t>(rng.Uniform(6, 12));
    s.budget_inflight = static_cast<uint64_t>(rng.Uniform(12, 24));
    s.budget_eval = static_cast<uint64_t>(rng.Uniform(6, 12));
    s.budget_ingress = static_cast<uint64_t>(rng.Uniform(8, 16));
    switch (rng.Uniform(0, 2)) {
      case 0:
        s.shed_policy = "newest";
        break;
      case 1:
        s.shed_policy = "farthest";
        break;
      default:
        s.shed_policy = "reject";
        break;
    }
  }

  // Workload: a stream of r/s inserts (with occasional deletes of an
  // earlier insert) whose keys collide often enough to produce joins.
  std::vector<SimTime> times;
  times.reserve(static_cast<size_t>(profile.events));
  for (int i = 0; i < profile.events; ++i) {
    times.push_back(rng.Uniform(0, horizon - 1));
  }
  std::sort(times.begin(), times.end());
  SymbolId r = Intern("r"), sym_s = Intern("s");
  std::vector<ScenarioEvent> alive;
  int seq = 0;
  for (SimTime t : times) {
    ScenarioEvent ev;
    ev.time = t;
    if (!alive.empty() && rng.Bernoulli(0.15)) {
      size_t pick =
          static_cast<size_t>(rng.Uniform(0, alive.size() - 1));
      ev.node = alive[pick].node;
      ev.op = StreamOp::kDelete;
      ev.fact = alive[pick].fact;
      alive.erase(alive.begin() + pick);
    } else {
      ev.node = static_cast<NodeId>(rng.Uniform(0, n - 1));
      ev.op = StreamOp::kInsert;
      SymbolId pred = rng.Bernoulli(0.5) ? r : sym_s;
      int64_t key = rng.Uniform(1, 4);
      ev.fact = Fact(pred, {Term::Int(key), Term::Int(ev.node),
                            Term::Int(++seq)});
      alive.push_back(ev);
    }
    s.events.push_back(std::move(ev));
  }

  if (profile.overload) {
    // Overload axes only — storms, stragglers, squeezes. The link axes
    // (loss, corruption, cuts) have their own sweep; mixing them here
    // would blur which robustness layer a violation indicts.
    NodeId hot = static_cast<NodeId>(rng.Uniform(0, n - 1));
    SimTime start = rng.Uniform(horizon / 10, horizon / 3);
    s.faults.InjectStorm(start, hot, rng.Bernoulli(0.5) ? "r" : "s",
                         rng.Uniform(30, 60));
    if (rng.Bernoulli(0.6)) {  // straggler window, later cleared
      NodeId slow = static_cast<NodeId>(rng.Uniform(0, n - 1));
      SimTime at = rng.Uniform(horizon / 10, horizon / 2);
      s.faults.SlowNode(at, slow, rng.Uniform(10, 40) * 1000);
      s.faults.SlowNode(at + rng.Uniform(horizon / 10, horizon / 3), slow,
                        0);
    }
    if (rng.Bernoulli(0.5)) {  // budget squeeze mid-run
      s.faults.MemSqueeze(rng.Uniform(horizon / 4, (horizon * 3) / 4),
                          static_cast<double>(rng.Uniform(4, 8)) / 10.0);
    }
    return s;
  }

  // Fault schedule: 1-3 independent clauses. Every windowed clause heals
  // before 0.9 * horizon so the run can quiesce and converge.
  int clauses = static_cast<int>(rng.Uniform(1, 3));
  for (int c = 0; c < clauses; ++c) {
    SimTime start = rng.Uniform(horizon / 10, horizon / 2);
    SimTime stop =
        start + rng.Uniform(horizon / 10, (horizon * 2) / 5);
    switch (rng.Uniform(0, 5)) {
      case 0: {  // crash-reboot churn
        NodeId node = static_cast<NodeId>(rng.Uniform(0, n - 1));
        s.faults.Fail(start, node).Recover(stop, node);
        break;
      }
      case 1: {  // (possibly asymmetric) partition, later healed
        int cut_col = static_cast<int>(rng.Uniform(1, profile.grid - 1));
        std::vector<NodeId> left = GridColumns(profile.grid, 0, cut_col);
        std::vector<NodeId> right =
            GridColumns(profile.grid, cut_col, profile.grid);
        bool both = rng.Bernoulli(0.5);
        s.faults.CutLinks(start, left, right);
        if (both) s.faults.CutLinks(start, right, left);
        s.faults.HealLinks(stop, left, right);
        if (both) s.faults.HealLinks(stop, right, left);
        break;
      }
      case 2: {  // payload corruption window
        double rate = static_cast<double>(rng.Uniform(1, 6)) / 20.0;
        s.faults.CorruptLinks(start, {}, {}, rate);
        s.faults.HealLinks(stop, {}, {});
        break;
      }
      case 3: {  // duplication window
        double rate = static_cast<double>(rng.Uniform(1, 6)) / 20.0;
        s.faults.DuplicateLinks(start, {}, {}, rate);
        s.faults.HealLinks(stop, {}, {});
        break;
      }
      case 4: {  // delay jitter (bounded reordering) window
        double rate = static_cast<double>(rng.Uniform(2, 10)) / 20.0;
        SimTime extra = rng.Uniform(2, 10) * 1000;
        s.faults.DelayLinks(start, {}, {}, rate, extra);
        s.faults.HealLinks(stop, {}, {});
        break;
      }
      default: {  // reboot storm
        int victims = static_cast<int>(rng.Uniform(2, 4));
        std::vector<NodeId> nodes;
        for (int i = 0; i < victims; ++i) {
          NodeId node = static_cast<NodeId>(rng.Uniform(0, n - 1));
          if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
            nodes.push_back(node);
          }
        }
        FaultPlan storm = FaultPlan::RebootStorm(
            nodes, start, /*downtime=*/horizon / 20,
            /*stagger=*/horizon / 40, /*waves=*/2,
            /*wave_gap=*/horizon / 8);
        s.faults.events.insert(s.faults.events.end(),
                               storm.events.begin(), storm.events.end());
        break;
      }
    }
  }
  return s;
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

namespace {

/// True when the candidate still violates some invariant.
StatusOr<bool> StillViolates(const Scenario& candidate) {
  auto run = RunScenario(candidate);
  if (!run.ok()) return StatusOr<bool>(run.status());
  return !run->report.ok();
}

/// True when `heal` could remove an installed rule: some kAddLinkFault
/// event with identical src/dst sets fires no later than it (HealLinks
/// matches rules by exact set equality).
bool HealHasPartner(const std::vector<FaultEvent>& events,
                    const FaultEvent& heal) {
  for (const FaultEvent& ev : events) {
    if (ev.kind != FaultEvent::Kind::kAddLinkFault) continue;
    if (ev.time > heal.time) continue;
    if (ev.rule.src == heal.rule.src && ev.rule.dst == heal.rule.dst) {
      return true;
    }
  }
  return false;
}

/// Drops kHealLinks events with no earlier matching fault installation.
/// Such a heal erases no rule and draws no randomness — a provable no-op,
/// so no re-execution is needed to remove it. Without this sweep, greedy
/// single-event removal can strand a heal after accepting the removal of
/// its CutLinks partner, leaving a "minimal" reproducer with a fault line
/// that does nothing.
int DropOrphanedHeals(Scenario* s) {
  std::vector<FaultEvent>& evs = s->faults.events;
  int removed = 0;
  for (size_t i = evs.size(); i-- > 0;) {
    if (evs[i].kind != FaultEvent::Kind::kHealLinks) continue;
    if (HealHasPartner(evs, evs[i])) continue;
    evs.erase(evs.begin() + static_cast<long>(i));
    ++removed;
  }
  return removed;
}

}  // namespace

StatusOr<ShrinkResult> ShrinkScenario(const Scenario& scenario) {
  ShrinkResult out;
  out.scenario = scenario;
  out.removed += DropOrphanedHeals(&out.scenario);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < out.scenario.faults.events.size();) {
      Scenario candidate = out.scenario;
      candidate.faults.events.erase(candidate.faults.events.begin() +
                                    static_cast<long>(i));
      // Removing a fault installation can orphan its heal; fold the heal
      // into the same candidate so the pair leaves together.
      int orphaned = DropOrphanedHeals(&candidate);
      auto still = StillViolates(candidate);
      if (!still.ok()) return StatusOr<ShrinkResult>(still.status());
      ++out.runs;
      if (*still) {
        out.scenario = std::move(candidate);
        out.removed += 1 + orphaned;
        progress = true;
      } else {
        ++i;
      }
    }
    for (size_t i = 0; i < out.scenario.events.size();) {
      Scenario candidate = out.scenario;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<long>(i));
      auto still = StillViolates(candidate);
      if (!still.ok()) return StatusOr<ShrinkResult>(still.status());
      ++out.runs;
      if (*still) {
        out.scenario = std::move(candidate);
        ++out.removed;
        progress = true;
      } else {
        ++i;
      }
    }
  }
  return out;
}

}  // namespace deduce
