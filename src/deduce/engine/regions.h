#ifndef DEDUCE_ENGINE_REGIONS_H_
#define DEDUCE_ENGINE_REGIONS_H_

#include <vector>

#include "deduce/net/topology.h"

namespace deduce {

/// Storage / join-computation regions for the Generalized Perpendicular
/// Approach (§III-A).
///
/// On a grid, a node's *horizontal path* is its row and its *vertical path*
/// is its column — the original PA. On arbitrary topologies we use the band
/// decomposition of [44]: nodes are sorted into ~sqrt(n) horizontal bands by
/// y-coordinate; a horizontal path is the band ordered by x, and a vertical
/// path picks, in every band, the node nearest the source's x — so every
/// vertical path intersects every horizontal path, which is the GPA
/// correctness requirement ("every storage region intersects every
/// join-computation region").
///
/// Consecutive nodes on a path need not be radio neighbors off-grid; the
/// engine routes between them (the extra hops are honestly accounted).
class RegionMapper {
 public:
  /// `topology` must outlive the mapper.
  explicit RegionMapper(const Topology* topology);

  /// The storage path of `n`: its full band (row), in x order. Contains n.
  const std::vector<NodeId>& HorizontalPath(NodeId n) const;

  /// The join-computation path of `n`: one node per band, nearest to n's
  /// x-coordinate, in band (y) order. Contains a node of n's own band.
  std::vector<NodeId> VerticalPath(NodeId n) const;

  /// A path visiting every node once (row serpentine): the join region of
  /// the degenerate Local Storage approach.
  std::vector<NodeId> SerpentinePath() const;

  /// The node nearest the network centroid (Centroid Approach rendezvous).
  NodeId CentroidNode() const;

  /// Band members other than `n`, nearest first (Euclidean distance to `n`,
  /// ties kept in band x-order). Candidate peers for sweep repair and for
  /// the state-repair digest exchanges (repair.h).
  std::vector<NodeId> BandPeers(NodeId n) const;

  /// Band index of a node.
  int BandOf(NodeId n) const { return band_of_[static_cast<size_t>(n)]; }
  int band_count() const { return static_cast<int>(bands_.size()); }

 private:
  const Topology* topology_;
  std::vector<std::vector<NodeId>> bands_;  ///< Each sorted by x, then id.
  /// band_xs_[b][i] == location(bands_[b][i]).x: contiguous per-band x
  /// arrays so VerticalPath binary-searches instead of scanning each band.
  std::vector<std::vector<double>> band_xs_;
  std::vector<int> band_of_;
  NodeId centroid_;
};

}  // namespace deduce

#endif  // DEDUCE_ENGINE_REGIONS_H_
