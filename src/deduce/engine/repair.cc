#include "deduce/engine/repair.h"

#include <algorithm>
#include <set>
#include <utility>

#include "deduce/engine/runtime.h"

namespace deduce {

namespace {

constexpr Timestamp kNoWindow = INT64_MAX;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-independent replica fingerprint: mixed so that XOR over a set is
/// sensitive to every TupleId field and to the insert/deletion-mark state.
/// Under the retraction protocol tombstones are additionally numbered by
/// their deletion timestamp (`del_ts`, 0 when absent or when
/// `number_tombstones` is off): two replicas that both carry a mark but
/// disagree on its generation then hash apart, so anti-entropy converges
/// the marks instead of treating the stores as already equal. Gated on the
/// engine-level flag — both ends of an exchange share it, so digests stay
/// comparable without a wire-format change.
uint64_t ReplicaFingerprint(const TupleId& id, bool have_insert,
                            bool has_del, Timestamp del_ts,
                            bool number_tombstones) {
  uint64_t h = Mix64(static_cast<uint64_t>(static_cast<uint32_t>(id.source)));
  h = Mix64(h ^ static_cast<uint64_t>(id.timestamp));
  h = Mix64(h ^ id.seq);
  uint64_t flags = (have_insert ? 1u : 0u) | (has_del ? 2u : 0u);
  uint64_t out = Mix64(h ^ flags);
  if (number_tombstones && has_del) {
    out = Mix64(out ^ static_cast<uint64_t>(del_ts));
  }
  return out;
}

}  // namespace

const RepairOptions& RepairManager::opts() const {
  return rt_->shared_->repair;
}

bool RepairManager::SharedReplica(SymbolId pred, NodeId source, NodeId a,
                                  NodeId b) const {
  auto it = rt_->shared_->plan.preds.find(pred);
  if (it == rt_->shared_->plan.preds.end()) return false;
  const PredicatePlan& pp = it->second;
  const RegionMapper& regions = *rt_->shared_->regions;
  switch (pp.storage) {
    case StoragePolicy::kBroadcast:
      return true;
    case StoragePolicy::kRow: {
      int band = regions.BandOf(source);
      return regions.BandOf(a) == band && regions.BandOf(b) == band;
    }
    case StoragePolicy::kSpatial: {
      const RoutingTable& routing = *rt_->shared_->routing;
      int ra = routing.HopDistance(source, a);
      int rb = routing.HopDistance(source, b);
      return ra >= 0 && ra <= pp.spatial_radius && rb >= 0 &&
             rb <= pp.spatial_radius;
    }
    case StoragePolicy::kLocal:
    case StoragePolicy::kCentroid:
      // Single-holder policies: no peer redundancy to repair from.
      return false;
  }
  return false;
}

bool RepairManager::WithinLifetime(SymbolId pred, Timestamp gen_ts,
                                   Timestamp now) const {
  Timestamp window = rt_->shared_->plan.pred_plan(pred).window;
  if (window == kNoWindow) return true;
  return gen_ts + window + rt_->shared_->timing.ExpirySlack() > now;
}

std::vector<PredDigest> RepairManager::ComputeDigests(NodeId other,
                                                      Timestamp now) const {
  std::vector<SymbolId> preds;
  for (const auto& [pred, reps] : rt_->replicas_) {
    if (!reps.empty()) preds.push_back(pred);
  }
  std::sort(preds.begin(), preds.end());
  std::vector<PredDigest> out;
  for (SymbolId pred : preds) {
    PredDigest d;
    d.pred = pred;
    for (const auto& [id, rep] : rt_->replicas_.at(pred)) {
      if (!SharedReplica(pred, id.source, rt_->id_, other)) continue;
      if (rep.have_insert && !WithinLifetime(pred, rep.gen_ts, now)) continue;
      ++d.count;
      d.fingerprint ^= ReplicaFingerprint(
          id, rep.have_insert, rep.del_ts.has_value(),
          rep.del_ts.value_or(0), rt_->retraction_on());
    }
    if (d.count > 0) out.push_back(d);
  }
  return out;
}

std::vector<RepairPullWire::Known> RepairManager::BuildKnown(
    const std::vector<SymbolId>& preds, NodeId other, Timestamp now) const {
  std::vector<RepairPullWire::Known> out;
  for (SymbolId pred : preds) {
    auto rit = rt_->replicas_.find(pred);
    if (rit == rt_->replicas_.end()) continue;
    for (const auto& [id, rep] : rit->second) {
      if (!SharedReplica(pred, id.source, rt_->id_, other)) continue;
      if (rep.have_insert && !WithinLifetime(pred, rep.gen_ts, now)) continue;
      RepairPullWire::Known k;
      k.pred = pred;
      k.id = id;
      k.have_insert = rep.have_insert;
      k.has_del = rep.del_ts.has_value();
      out.push_back(k);
    }
  }
  return out;
}

NodeId RepairManager::PickResyncPeer() const {
  const LivenessView& live = rt_->shared_->liveness;
  for (NodeId v : rt_->shared_->regions->BandPeers(rt_->id_)) {
    if (!live.IsDown(v)) return v;
  }
  return kNoNode;
}

std::vector<NodeId> RepairManager::AdjacentBandPeers() const {
  const std::vector<NodeId>& band =
      rt_->shared_->regions->HorizontalPath(rt_->id_);
  std::vector<NodeId> out;
  size_t mine = 0;
  while (mine < band.size() && band[mine] != rt_->id_) ++mine;
  if (mine >= band.size()) return out;
  const LivenessView& live = rt_->shared_->liveness;
  for (size_t i = mine; i-- > 0;) {
    if (!live.IsDown(band[i])) {
      out.push_back(band[i]);
      break;
    }
  }
  for (size_t i = mine + 1; i < band.size(); ++i) {
    if (!live.IsDown(band[i])) {
      out.push_back(band[i]);
      break;
    }
  }
  return out;
}

SimTime RepairManager::ResyncTimeout(NodeId peer) const {
  if (opts().resync_timeout > 0) return opts().resync_timeout;
  // Worst case is the full three-leg exchange with replies near the
  // message-size cap; 4x the transport's round-trip bound covers it.
  NodeId target = peer == kNoNode ? rt_->id_ : peer;
  return 4 * rt_->RtoFor(target, 2048);
}

void RepairManager::OnRestart(NodeContext* ctx) {
  // In-flight exchanges died with the incarnation (their timers too).
  active_.clear();
  ae_armed_ = false;
  activity_ = 0;
  consumed_ = 0;
  if (!opts().enabled) return;
  degraded_ = true;
  resync_attempts_ = 0;
  resync_began_ = ctx->LocalTime();
  ++rt_->shared_->stats.resyncs_started;
  if (rt_->shared_->metrics != nullptr) {
    rt_->shared_->metrics->Add(rt_->id_, "repair", "resyncs_started");
  }
  StartResync(ctx);
}

void RepairManager::StartResync(NodeContext* ctx) {
  if (!degraded_) return;
  if (resync_attempts_ >= opts().max_resync_attempts) {
    AbandonResync();
    return;
  }
  ++resync_attempts_;
  NodeId peer = PickResyncPeer();
  if (peer == kNoNode) {
    // Nobody in the band looks alive right now; burn the attempt and retry
    // after a timeout (suspicions may clear in the meantime).
    rt_->NewTimer(ctx, ResyncTimeout(kNoNode),
                  [this, ctx] { StartResync(ctx); });
    return;
  }
  StartExchange(ctx, peer, /*resync=*/true);
}

void RepairManager::AbandonResync() {
  if (!degraded_) return;
  degraded_ = false;
  ++rt_->shared_->stats.resyncs_abandoned;
  if (rt_->shared_->metrics != nullptr) {
    rt_->shared_->metrics->Add(rt_->id_, "repair", "resyncs_abandoned");
  }
}

void RepairManager::StartExchange(NodeContext* ctx, NodeId peer, bool resync) {
  uint32_t round = ++round_;
  Exchange ex;
  ex.peer = peer;
  ex.resync = resync;
  ex.started = ctx->LocalTime();
  active_[round] = ex;
  ++rt_->shared_->stats.repair_digest_rounds;
  if (rt_->shared_->metrics != nullptr) {
    rt_->shared_->metrics->Add(rt_->id_, "repair", "digest_rounds");
  }
  DigestRequestWire req;
  req.final_target = peer;
  req.requester = rt_->id_;
  req.round = round;
  req.anti_entropy = !resync;
  rt_->SendEngineMessage(ctx, peer, req.Encode());
  if (resync) {
    rt_->NewTimer(ctx, ResyncTimeout(peer), [this, ctx, round] {
      if (active_.erase(round) > 0) StartResync(ctx);
    });
  } else {
    // Anti-entropy rounds are best-effort; drop the bookkeeping after two
    // periods so a lost reply cannot leak exchange state forever.
    rt_->NewTimer(ctx, 2 * opts().anti_entropy_period,
                  [this, round] { active_.erase(round); });
  }
}

void RepairManager::FinishExchange(NodeContext* ctx, uint32_t round) {
  auto it = active_.find(round);
  if (it == active_.end()) return;
  bool resync = it->second.resync;
  active_.erase(it);
  if (!resync || !degraded_) return;
  degraded_ = false;
  EngineStats& st = rt_->shared_->stats;
  ++st.resyncs_completed;
  uint64_t duration =
      static_cast<uint64_t>(ctx->LocalTime() - resync_began_);
  st.resync_time_us += duration;
  if (rt_->shared_->metrics != nullptr) {
    rt_->shared_->metrics->Add(rt_->id_, "repair", "resyncs_completed");
    rt_->shared_->metrics->Observe(rt_->id_, "repair", "resync_us",
                                   static_cast<double>(duration));
  }
}

void RepairManager::OnReplicaActivity(NodeContext* ctx) {
  ++activity_;
  if (opts().anti_entropy_period <= 0 || ae_armed_) return;
  ae_armed_ = true;
  // Deterministic per-node stagger so band neighbors don't fire in
  // lockstep.
  SimTime stagger = static_cast<SimTime>(rt_->id_ % 16) * 1013;
  rt_->NewTimer(ctx, opts().anti_entropy_period + stagger,
                [this, ctx] { OnAntiEntropyTimer(ctx); });
}

void RepairManager::OnAntiEntropyTimer(NodeContext* ctx) {
  ae_armed_ = false;
  // No store change since the last round: go quiet (the next replica
  // activity re-arms the timer), letting the simulation quiesce.
  if (consumed_ == activity_) return;
  consumed_ = activity_;
  // Exchange with both adjacent band members: one-sided exchanges strand
  // the far side of the band, hop-by-hop both-ways is what makes a repair
  // propagate across it.
  for (NodeId peer : AdjacentBandPeers()) {
    StartExchange(ctx, peer, /*resync=*/false);
  }
  ae_armed_ = true;
  SimTime stagger = static_cast<SimTime>(rt_->id_ % 16) * 1013;
  rt_->NewTimer(ctx, opts().anti_entropy_period + stagger,
                [this, ctx] { OnAntiEntropyTimer(ctx); });
}

void RepairManager::HandleDigestRequest(NodeContext* ctx,
                                        const DigestRequestWire& req) {
  if (req.requester == kNoNode || req.requester == rt_->id_) return;
  ++rt_->shared_->stats.repair_digest_replies;
  if (rt_->shared_->metrics != nullptr) {
    rt_->shared_->metrics->Add(rt_->id_, "repair", "digest_replies");
  }
  DigestReplyWire reply;
  reply.final_target = req.requester;
  reply.replier = rt_->id_;
  reply.round = req.round;
  reply.digests = ComputeDigests(req.requester, ctx->LocalTime());
  rt_->SendEngineMessage(ctx, req.requester, reply.Encode());
}

void RepairManager::HandleDigestReply(NodeContext* ctx,
                                      const DigestReplyWire& reply) {
  auto it = active_.find(reply.round);
  if (it == active_.end() || it->second.peer != reply.replier) return;
  Timestamp now = ctx->LocalTime();
  std::map<SymbolId, std::pair<uint64_t, uint64_t>> mine;
  for (const PredDigest& d : ComputeDigests(reply.replier, now)) {
    mine[d.pred] = {d.count, d.fingerprint};
  }
  std::set<SymbolId> mismatched;
  for (const PredDigest& d : reply.digests) {
    auto m = mine.find(d.pred);
    if (m == mine.end()) {
      if (d.count > 0) mismatched.insert(d.pred);
    } else if (m->second != std::make_pair(d.count, d.fingerprint)) {
      mismatched.insert(d.pred);
    }
    if (m != mine.end()) mine.erase(m);
  }
  // Whatever is left the peer lacks entirely — it must pull from us, which
  // the pull's `known` set lets it discover.
  for (const auto& [pred, digest] : mine) {
    if (digest.first > 0) mismatched.insert(pred);
  }
  if (mismatched.empty()) {
    FinishExchange(ctx, reply.round);
    return;
  }
  RepairPullWire pull;
  pull.final_target = reply.replier;
  pull.requester = rt_->id_;
  pull.round = reply.round;
  pull.reverse = false;
  pull.preds.assign(mismatched.begin(), mismatched.end());
  pull.known = BuildKnown(pull.preds, reply.replier, now);
  rt_->SendEngineMessage(ctx, reply.replier, pull.Encode());
}

void RepairManager::HandleRepairPull(NodeContext* ctx,
                                     const RepairPullWire& pull) {
  if (pull.requester == kNoNode || pull.requester == rt_->id_) return;
  Timestamp now = ctx->LocalTime();
  std::map<std::pair<SymbolId, TupleId>, const RepairPullWire::Known*> known;
  for (const RepairPullWire::Known& k : pull.known) {
    known[{k.pred, k.id}] = &k;
  }
  RepairPushWire push;
  push.final_target = pull.requester;
  push.replier = rt_->id_;
  push.round = pull.round;
  for (SymbolId pred : pull.preds) {
    auto rit = rt_->replicas_.find(pred);
    if (rit == rt_->replicas_.end()) continue;
    for (const auto& [id, rep] : rit->second) {
      if (!SharedReplica(pred, id.source, rt_->id_, pull.requester)) continue;
      if (rep.have_insert && !WithinLifetime(pred, rep.gen_ts, now)) continue;
      auto kit = known.find({pred, id});
      const RepairPullWire::Known* k =
          kit == known.end() ? nullptr : kit->second;
      bool missing_insert = rep.have_insert && (k == nullptr || !k->have_insert);
      bool missing_del =
          rep.del_ts.has_value() && (k == nullptr || !k->has_del);
      if (k != nullptr && !missing_insert && !missing_del) continue;
      RepairPushWire::Entry e;
      e.pred = pred;
      e.fact = rep.fact;
      e.id = id;
      e.gen_ts = rep.gen_ts;
      e.have_insert = rep.have_insert;
      e.has_del = rep.del_ts.has_value();
      e.del_ts = rep.del_ts.value_or(0);
      push.entries.push_back(std::move(e));
    }
  }
  rt_->shared_->stats.repair_replicas_pushed += push.entries.size();
  if (rt_->shared_->metrics != nullptr && !push.entries.empty()) {
    rt_->shared_->metrics->Add(rt_->id_, "repair", "replicas_pushed",
                               push.entries.size());
  }
  // Always reply, even with nothing to ship: the push completes the
  // requester's round.
  rt_->SendEngineMessage(ctx, pull.requester, push.Encode());

  if (pull.reverse) return;
  // Requester-side surplus: replicas it listed as known that we lack (or
  // hold in a weaker state). Pull them back — flagged reverse, so serving
  // it cannot trigger yet another pull and the exchange terminates.
  bool surplus = false;
  for (const RepairPullWire::Known& k : pull.known) {
    if (!SharedReplica(k.pred, k.id.source, rt_->id_, pull.requester)) {
      continue;
    }
    const NodeRuntime::Replica* rep = nullptr;
    auto rit = rt_->replicas_.find(k.pred);
    if (rit != rt_->replicas_.end()) {
      auto i = rit->second.find(k.id);
      if (i != rit->second.end()) rep = &i->second;
    }
    if (rep == nullptr ? (k.have_insert || k.has_del)
                       : ((k.have_insert && !rep->have_insert) ||
                          (k.has_del && !rep->del_ts.has_value()))) {
      surplus = true;
      break;
    }
  }
  if (!surplus) return;
  RepairPullWire back;
  back.final_target = pull.requester;
  back.requester = rt_->id_;
  back.round = ++round_;  // not registered in active_: push-only round
  back.reverse = true;
  back.preds = pull.preds;
  back.known = BuildKnown(back.preds, pull.requester, now);
  rt_->SendEngineMessage(ctx, pull.requester, back.Encode());
}

void RepairManager::HandleRepairPush(NodeContext* ctx,
                                     const RepairPushWire& push) {
  if (push.replier == kNoNode || push.replier == rt_->id_) return;
  Timestamp now = ctx->LocalTime();
  uint64_t merged = 0;
  for (const RepairPushWire::Entry& e : push.entries) {
    if (rt_->shared_->plan.preds.find(e.pred) ==
        rt_->shared_->plan.preds.end()) {
      continue;
    }
    // Re-check shareability and lifetime on our side: the pusher's view may
    // be stale, and merging an already-expired replica would resurrect it.
    if (!SharedReplica(e.pred, e.id.source, rt_->id_, push.replier)) continue;
    if (e.have_insert && !WithinLifetime(e.pred, e.gen_ts, now)) continue;
    const NodeRuntime::Replica* cur = nullptr;
    auto rit = rt_->replicas_.find(e.pred);
    if (rit != rt_->replicas_.end()) {
      auto i = rit->second.find(e.id);
      if (i != rit->second.end()) cur = &i->second;
    }
    bool need_insert = e.have_insert && (cur == nullptr || !cur->have_insert);
    bool need_del =
        e.has_del && (cur == nullptr || !cur->del_ts.has_value());
    if (need_insert) {
      // Route through RecordReplica so the §IV-B expiry timer is re-armed
      // relative to the original generation timestamp.
      StoreWire sw;
      sw.pred = e.pred;
      sw.fact = e.fact;
      sw.id = e.id;
      sw.gen_ts = e.gen_ts;
      sw.deletion = false;
      rt_->RecordReplica(ctx, sw);
      ++merged;
    }
    if (need_del) {
      StoreWire sw;
      sw.pred = e.pred;
      sw.fact = e.fact;
      sw.id = e.id;
      sw.gen_ts = e.gen_ts;
      sw.deletion = true;
      sw.del_ts = e.del_ts;
      rt_->RecordReplica(ctx, sw);
      if (!need_insert) ++merged;
    }
  }
  rt_->shared_->stats.repair_replicas_pulled += merged;
  if (rt_->shared_->metrics != nullptr && merged > 0) {
    rt_->shared_->metrics->Add(rt_->id_, "repair", "replicas_pulled", merged);
  }
  auto it = active_.find(push.round);
  if (it != active_.end() && it->second.peer == push.replier) {
    FinishExchange(ctx, push.round);
  }
}

}  // namespace deduce
