#ifndef DEDUCE_ENGINE_WIRE_H_
#define DEDUCE_ENGINE_WIRE_H_

#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/datalog/fact.h"
#include "deduce/net/network.h"

namespace deduce {

/// Engine message types (Message::type values).
enum EngineMsgType : uint16_t {
  kStoreMsg = 1,          ///< Storage-phase replication / deletion marking.
  kJoinPassMsg = 2,       ///< Join-computation pass carrying partial results.
  kResultMsg = 3,         ///< Complete result shipped to its home node.
  kAggMsg = 4,            ///< Aggregate contribution heading to its group home.
  kAckMsg = 5,            ///< End-to-end transport acknowledgement.
  kReliableMsg = 6,       ///< Transport envelope around any engine message.
  kDigestRequestMsg = 7,  ///< Repair: ask a band peer for store digests.
  kDigestReplyMsg = 8,    ///< Repair: per-predicate digests of shared replicas.
  kRepairPullMsg = 9,     ///< Repair: request replicas missing from a store.
  kRepairPushMsg = 10,    ///< Repair: replica records answering a pull.
};

/// Storage-phase message (§III-A storage phase; §IV-A deletion marking).
struct StoreWire {
  NodeId final_target = kNoNode;  ///< Next node that must process this.
  SymbolId pred = 0;
  Fact fact;
  TupleId id;
  Timestamp gen_ts = 0;
  bool deletion = false;          ///< Deletion mark, not removal (§IV-A).
  Timestamp del_ts = 0;
  /// Path-walk mode: nodes to visit after final_target. Empty for flood
  /// or point-to-point modes.
  std::vector<NodeId> path_remaining;
  /// Flood mode: remaining hop budget; <0 = not flooding.
  int32_t flood_ttl = -1;

  Message Encode() const;
  static StatusOr<StoreWire> Decode(const Message& msg);
};

/// One partial result traveling with a join pass (§III-A, Fig. 1).
struct PartialWire {
  uint32_t matched_mask = 0;  ///< Body literals already matched/evaluated.
  std::vector<std::pair<SymbolId, Term>> bindings;
  /// Positive supports gathered so far: (body literal index, tuple id).
  std::vector<std::pair<uint32_t, TupleId>> support;
};

/// Join-computation pass (§III-A join-computation phase; §IV-B extension
/// with negated subgoals and deletions).
struct JoinPassWire {
  NodeId final_target = kNoNode;
  uint32_t delta_index = 0;  ///< Index into QueryPlan::deltas.
  bool removal = false;      ///< Results remove derivations (vs add).
  Timestamp update_ts = 0;   ///< Update timestamp τ (source-local).
  TupleId update_id;
  uint32_t pass_index = 0;   ///< Multipass pass / local-route step index.
  std::vector<NodeId> path_remaining;
  std::vector<PartialWire> partials;
  /// Some visited node was rebooted and not yet resynced (repair.h), OR had
  /// shed load under a resource budget (runtime.h BudgetOptions) — either
  /// way the pass may have missed replicas and its answer is partial.
  /// Sticky: once set it travels to the emitted results. Shed taint rides
  /// this same bit so the wire format (and every committed baseline) is
  /// unchanged by the budget layer.
  bool degraded = false;

  Message Encode() const;
  static StatusOr<JoinPassWire> Decode(const Message& msg);
};

/// A complete result heading to its home node (§III-B hashing of derived
/// tuples; §IV-A set-of-derivations maintenance).
struct ResultWire {
  NodeId final_target = kNoNode;
  SymbolId pred = 0;
  Fact fact;
  bool removal = false;
  int32_t rule_id = -1;
  std::vector<TupleId> support;
  Timestamp update_ts = 0;
  /// The producing pass ran through a degraded node — rebooted and
  /// not-yet-resynced (repair.h) or load-shedding under a budget
  /// (runtime.h) — so the result is sound but its generation may be
  /// incomplete. Consumers distinguishing "complete" from "partial" read
  /// this bit (see DistributedEngine::UndegradedResultDatabase).
  bool degraded = false;
  /// Multi-tenant fan-out copy: nonzero marks a result relabeled for a
  /// tenant's alias store (TenantView::index), which must not fan out
  /// again. Encoded as an optional trailing field only when nonzero, so
  /// single-tenant frames — and every committed baseline — stay
  /// byte-identical; old frames decode with tenant == 0.
  uint32_t tenant = 0;

  Message Encode() const;
  static StatusOr<ResultWire> Decode(const Message& msg);
};

/// One contribution to an incrementally-maintained aggregate group
/// (AggregatePlan): the group key, the contributed value, and the source
/// tuple id (the dedup/removal key).
struct AggWire {
  NodeId final_target = kNoNode;
  uint32_t plan_index = 0;
  bool removal = false;
  std::vector<Term> group;  ///< Ground group-key terms (head minus agg arg).
  Term value;               ///< Ground contributed value.
  TupleId contributor;
  Timestamp update_ts = 0;

  Message Encode() const;
  static StatusOr<AggWire> Decode(const Message& msg);
};

/// End-to-end acknowledgement for the reliable transport: `acker` confirms
/// receipt of the envelope (`origin`=final_target, seq). Acks themselves are
/// unreliable; a lost ack is repaired by retransmission + receiver dedup.
struct AckWire {
  NodeId final_target = kNoNode;  ///< The envelope's origin.
  NodeId acker = kNoNode;         ///< The envelope's destination.
  uint32_t seq = 0;

  Message Encode() const;
  static StatusOr<AckWire> Decode(const Message& msg);
};

/// Reliable-transport envelope: any unicast engine message, tagged with the
/// origin node and a per-destination sequence number so the destination can
/// acknowledge and deduplicate. Intermediate nodes forward it untouched.
struct ReliableWire {
  NodeId final_target = kNoNode;
  NodeId origin = kNoNode;
  uint32_t seq = 0;
  uint16_t inner_type = 0;            ///< EngineMsgType of the payload.
  std::vector<uint8_t> inner_payload;

  Message Encode() const;
  static StatusOr<ReliableWire> Decode(const Message& msg);
};

/// Compact per-predicate summary of the replicas two band peers should
/// share: tuple count plus an order-independent XOR fingerprint over the
/// TupleIds (perturbed by the deletion-mark bit). Equal digests mean the
/// two stores agree with overwhelming probability; unequal digests trigger
/// a RepairPull (repair.h).
struct PredDigest {
  SymbolId pred = 0;
  uint64_t count = 0;
  uint64_t fingerprint = 0;
};

/// Repair: opens a digest exchange — asks `final_target` to summarize the
/// replicas the two nodes are both expected to hold.
struct DigestRequestWire {
  NodeId final_target = kNoNode;
  NodeId requester = kNoNode;
  uint32_t round = 0;         ///< Requester-local exchange id.
  bool anti_entropy = false;  ///< Periodic exchange (vs reboot resync).

  Message Encode() const;
  static StatusOr<DigestRequestWire> Decode(const Message& msg);
};

/// Repair: per-predicate digests of the replier's shareable replicas.
struct DigestReplyWire {
  NodeId final_target = kNoNode;
  NodeId replier = kNoNode;
  uint32_t round = 0;  ///< Echoed from the request.
  std::vector<PredDigest> digests;

  Message Encode() const;
  static StatusOr<DigestReplyWire> Decode(const Message& msg);
};

/// Repair: asks the peer to push the replicas of `preds` the requester is
/// missing. `known` lists what the requester already holds so the peer
/// ships only the difference; it doubles as the peer's chance to notice
/// requester-side surplus and pull back (the `reverse` leg).
struct RepairPullWire {
  NodeId final_target = kNoNode;
  NodeId requester = kNoNode;
  uint32_t round = 0;
  /// Pull issued while serving a pull; a reverse pull is never answered
  /// with another reverse pull, so an exchange terminates in ≤ 3 legs.
  bool reverse = false;
  std::vector<SymbolId> preds;  ///< Predicates whose digests disagreed.
  struct Known {
    SymbolId pred = 0;
    TupleId id;
    bool have_insert = false;
    bool has_del = false;
  };
  std::vector<Known> known;

  Message Encode() const;
  static StatusOr<RepairPullWire> Decode(const Message& msg);
};

/// Repair: replica records answering a pull. An empty push is still sent —
/// it is the round-completion signal for the requester.
struct RepairPushWire {
  NodeId final_target = kNoNode;
  NodeId replier = kNoNode;
  uint32_t round = 0;  ///< Echoed from the pull.
  struct Entry {
    SymbolId pred = 0;
    Fact fact;
    TupleId id;
    Timestamp gen_ts = 0;
    bool have_insert = false;
    bool has_del = false;
    Timestamp del_ts = 0;
  };
  std::vector<Entry> entries;

  Message Encode() const;
  static StatusOr<RepairPushWire> Decode(const Message& msg);
};

/// Reads only the final_target field (first field of every engine message)
/// so intermediate nodes can forward without full decoding.
StatusOr<NodeId> PeekFinalTarget(const Message& msg);

// --- frame integrity (EngineOptions::checksum) ---

/// Appends a 4-byte FNV-1a checksum of the payload. Each hop seals the
/// frame it transmits; PeekFinalTarget still works on a sealed frame
/// because the leading bytes are untouched.
void SealFrame(Message* msg);
/// Verifies and strips a sealed frame's trailing checksum. False means
/// the frame is too short or was damaged in flight — drop it.
bool CheckAndStripFrame(Message* msg);

/// The set of provenance trace ids (TraceIdFor over TupleIds) a wire
/// message carries, sorted and deduplicated: the stored/deleted tuple for
/// kStoreMsg, the update tuple plus all partial supports for kJoinPassMsg,
/// the result supports for kResultMsg, the contributor for kAggMsg, the
/// known/pushed replica ids for repair pull/push, and the inner message's
/// ids for kReliableMsg. Acks and digest messages (which carry only
/// fingerprints, not tuples) yield an empty set, as do undecodable
/// payloads. This is how hop records get their contributing-trace-id sets
/// without widening any wire format.
std::vector<uint64_t> CollectTraceIds(const Message& msg);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_WIRE_H_
