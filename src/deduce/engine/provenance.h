#ifndef DEDUCE_ENGINE_PROVENANCE_H_
#define DEDUCE_ENGINE_PROVENANCE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "deduce/common/statusor.h"
#include "deduce/common/trace.h"
#include "deduce/datalog/fact.h"
#include "deduce/datalog/program.h"

namespace deduce {

/// Switches on causal tuple provenance (EngineOptions::provenance). Off by
/// default; when off the engine pays one branch per hook site, records
/// nothing, and — because trace ids are derived from the TupleIds the wire
/// protocol already carries (TraceIdFor) — enabling it changes no simulated
/// counter either. Determinism-tested in tests/provenance_test.cc.
struct ProvenanceOptions {
  bool enabled = false;
  /// Per-node lineage ring capacity. The ring models the bounded RAM a mote
  /// can spend remembering why its tuples exist; older edges are evicted
  /// but survive in the host-side trace stream when tracing is on.
  size_t ring_capacity = 512;
};

/// One lineage edge: `fact` exists at `node` because `rule_id` fired over
/// the tuples with trace ids `inputs` (kRule at the fact's home, kAgg at an
/// aggregate group home), or because a tuple id was generated for it (kGen,
/// which also pins `tid`).
struct ProvenanceEdge {
  enum class Kind : uint8_t { kRule = 0, kAgg = 1, kGen = 2 };

  Kind kind = Kind::kRule;
  Timestamp time = 0;           ///< Node-local (== global) sim time.
  NodeId node = kNoNode;
  SymbolId pred = 0;
  Fact fact;
  int32_t rule_id = -1;         ///< -1 for axioms / kGen records.
  uint64_t tid = 0;             ///< kGen: the generated tuple's trace id.
  std::vector<uint64_t> inputs; ///< kRule/kAgg: input trace ids.
  int64_t latency_us = 0;       ///< kRule/kAgg: update-to-apply latency.

  /// The schema-v2 "deriv" trace record this edge spills as (phase
  /// "result" | "agg" | "gen").
  TraceRecord ToTraceRecord() const;
};

/// Fixed-capacity per-node ring of lineage edges, oldest-first iteration.
/// Cleared on node reboot (RAM is volatile); the trace stream is the
/// durable copy.
class ProvenanceStore {
 public:
  explicit ProvenanceStore(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Push(ProvenanceEdge edge);
  void Clear();

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }

  /// Edges in insertion order (oldest surviving first).
  std::vector<ProvenanceEdge> Edges() const;

 private:
  size_t capacity_;
  size_t next_ = 0;          // overwrite position once full
  uint64_t dropped_ = 0;     // evicted edges
  std::vector<ProvenanceEdge> ring_;
};

/// The reconstructed causal story of one result tuple, built from a
/// schema-v2 trace stream by ExplainFact (`dlog explain`).
struct ExplainReport {
  std::string target;             ///< Canonical fact text.
  std::string tree;               ///< Pretty-printed derivation tree.
  size_t cone_facts = 0;          ///< Distinct facts in the causal cone.
  size_t cone_firings = 0;        ///< Rule firings / aggregate emissions.
  size_t nodes_visited = 0;       ///< Nodes touched by cone facts + hops.
  int64_t first_inject_us = -1;   ///< Earliest contributing injection.
  int64_t generated_us = -1;      ///< When the target tuple materialized.
  uint64_t retransmits_attributed = 0;
  /// Input trace ids the record set could not resolve to a fact — nonzero
  /// when lineage was truncated (ring eviction, node reboot, or a trace
  /// horizon). Format() then flags the tree as a lower bound instead of
  /// presenting a silently wrong one.
  size_t unresolved_tids = 0;

  /// Traffic whose contributing-trace-id set intersects the causal cone,
  /// per phase, plus the whole-trace totals computed with the same
  /// attempts convention as TraceStats — so the grand totals here
  /// reconcile exactly with `dlog stats` on the same file.
  std::map<std::string, TraceStats::Cell> attributed_by_phase;
  TraceStats::Cell attributed_total;
  TraceStats::Cell trace_total;
  uint64_t trace_retransmits = 0;

  /// The full `dlog explain` output (tree + cost tables + latency line).
  std::string Format() const;
};

/// Reconstructs the causal tree of `target` from trace `records` (which
/// must come from a run with provenance enabled: deriv records + tid'd
/// injects + hop tids). `program` supplies rule text for the tree. Fails
/// with NotFound when the trace never generated or injected the fact.
StatusOr<ExplainReport> ExplainFact(const std::vector<TraceRecord>& records,
                                    const Program& program,
                                    const Fact& target);

}  // namespace deduce

#endif  // DEDUCE_ENGINE_PROVENANCE_H_
