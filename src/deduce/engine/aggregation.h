#ifndef DEDUCE_ENGINE_AGGREGATION_H_
#define DEDUCE_ENGINE_AGGREGATION_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "deduce/datalog/rule.h"  // AggKind
#include "deduce/net/network.h"
#include "deduce/routing/routing.h"

namespace deduce {

/// In-network aggregation over a sink tree, in the style of TAG
/// [Madden et al., OSDI'02] — the specialized distributed implementation
/// the paper delegates aggregates to (§IV-C: "We can use specialized
/// distributed techniques such as TAG [32] ... for evaluation of
/// incremental aggregates").
///
/// Nodes are scheduled by tree depth: an epoch of length `epoch` is divided
/// into slots; leaves report first, every interior node merges its
/// children's partial state records with its own reading and forwards one
/// message up — O(n) messages per epoch regardless of group sizes.
class TagAggregation {
 public:
  struct Options {
    AggKind kind = AggKind::kSum;
    SimTime epoch = 1'000'000;   ///< Epoch length (1 s).
    int epochs = 1;              ///< Number of rounds to run.
    NodeId root = 0;
  };

  /// Per-epoch aggregate value at the root.
  struct EpochResult {
    int epoch = 0;
    double value = 0;
    int64_t count = 0;  ///< Contributing readings.
  };

  /// `reader(node, epoch)` supplies the node's reading for an epoch
  /// (nullopt = no reading). Installs apps on `network` (which must not
  /// have apps yet), runs all epochs to quiescence, and returns the root's
  /// per-epoch results.
  static std::vector<EpochResult> Run(
      Network* network, const Options& options,
      const std::function<std::optional<double>(NodeId, int)>& reader);
};

}  // namespace deduce

#endif  // DEDUCE_ENGINE_AGGREGATION_H_
