#include "deduce/engine/engine.h"

#include <algorithm>

#include "deduce/common/strings.h"
#include "deduce/engine/observe.h"

namespace deduce {

namespace {

constexpr Timestamp kNoWindow = INT64_MAX;

/// Total hop length of walking `path` in order.
int WalkHops(const RoutingTable& routing, const std::vector<NodeId>& path) {
  int hops = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    int d = routing.HopDistance(path[i], path[i + 1]);
    if (d < 0) return -1;
    hops += d;
  }
  return hops;
}

}  // namespace

StatusOr<std::unique_ptr<DistributedEngine>> DistributedEngine::Create(
    Network* network, const Program& program, const EngineOptions& options) {
  BuiltinRegistry registry = options.registry != nullptr
                                 ? *options.registry
                                 : BuiltinRegistry::Default();
  DEDUCE_ASSIGN_OR_RETURN(QueryPlan plan,
                          CompilePlan(program, registry, options.planner));
  return CreateFromPlan(network, std::move(plan), ResultFanout(), options);
}

StatusOr<std::unique_ptr<DistributedEngine>> DistributedEngine::CreateFromPlan(
    Network* network, QueryPlan plan, ResultFanout fanout,
    const EngineOptions& options) {
  auto engine = std::unique_ptr<DistributedEngine>(new DistributedEngine());
  engine->network_ = network;
  engine->shared_ = std::make_unique<EngineShared>();
  EngineShared& shared = *engine->shared_;

  shared.registry = options.registry != nullptr ? *options.registry
                                                : BuiltinRegistry::Default();
  shared.plan = std::move(plan);
  shared.result_fanout = std::move(fanout);
  shared.topology = &network->topology();
  shared.regions = std::make_unique<RegionMapper>(shared.topology);
  shared.routing = std::make_unique<RoutingTable>(shared.topology);
  shared.geohash = std::make_unique<GeoHash>(shared.topology);
  shared.transport = options.transport;
  shared.repair = options.repair;
  shared.checksum = options.checksum;
  shared.liveness.down.assign(
      static_cast<size_t>(network->node_count()), 0);
  shared.link = &network->link();
  shared.metrics = options.metrics;
  shared.trace = options.trace;
  shared.provenance = options.provenance;
  if (options.provenance_capacity != 0) {
    shared.provenance.ring_capacity = options.provenance_capacity;
  }
  shared.budget = options.budget;
  if (shared.budget.enabled) {
    // MemSqueeze (chaos axis): the fault plan can shrink every live budget
    // cap mid-run. EngineShared is heap-owned by the engine and the hook
    // is cleared with the apps on the next SetApp cycle, so the capture
    // stays valid for the network's app generation.
    EngineShared* sp = engine->shared_.get();
    network->AddFaultHook([sp](const FaultEvent& ev) {
      if (ev.kind != FaultEvent::Kind::kMemSqueeze) return;
      sp->budget.Squeeze(static_cast<double>(ev.magnitude) / 100.0);
      ++sp->stats.budget_squeezes;
      if (sp->metrics != nullptr) {
        sp->metrics->Add(0, "budget", "budget_squeezes");
      }
    });
  }

  // --- shed-taint dependency closure ---
  // deps(head) = head plus every predicate reachable through rule bodies.
  // NodeRuntime::ShedTaints scopes the sticky shed taint through it, so a
  // shed degrades only results it could actually have made incomplete —
  // which is what keeps one tenant's overload from tainting a disjoint
  // tenant's result homes on a shared engine.
  for (const Rule& rule : shared.plan.program.rules()) {
    auto& deps = shared.taint_deps[rule.head.predicate];
    deps.insert(rule.head.predicate);
    for (const Literal& lit : rule.body) {
      if (lit.is_relational()) deps.insert(lit.atom.predicate);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [head, deps] : shared.taint_deps) {
      std::vector<SymbolId> add;
      for (SymbolId p : deps) {
        if (p == head) continue;
        auto it = shared.taint_deps.find(p);
        if (it == shared.taint_deps.end()) continue;
        for (SymbolId q : it->second) {
          if (deps.count(q) == 0) add.push_back(q);
        }
      }
      if (!add.empty()) {
        changed = true;
        deps.insert(add.begin(), add.end());
      }
    }
  }

  // --- per-delta evaluability tables ---
  size_t n_deltas = shared.plan.deltas.size();
  shared.launch_evaluable.resize(n_deltas);
  shared.sweep_checked_negation.resize(n_deltas);
  shared.total_passes.resize(n_deltas);
  uint32_t max_passes = 1;
  for (size_t di = 0; di < n_deltas; ++di) {
    const DeltaPlan& delta = shared.plan.deltas[di];
    const Rule& rule = shared.plan.program.rules()[delta.rule_index];
    auto& launch = shared.launch_evaluable[di];
    auto& sweep_neg = shared.sweep_checked_negation[di];
    launch.assign(rule.body.size(), 0);
    sweep_neg.assign(rule.body.size(), 0);
    bool has_sweep_neg = false;
    for (size_t li = 0; li < rule.body.size(); ++li) {
      if (li == delta.pinned_literal) continue;
      const Literal& lit = rule.body[li];
      if (!lit.is_relational()) continue;
      StoragePolicy sp = shared.plan.pred_plan(lit.atom.predicate).storage;
      bool local_everywhere = sp == StoragePolicy::kBroadcast ||
                              sp == StoragePolicy::kSpatial;
      switch (delta.strategy) {
        case JoinStrategy::kLocalOnly:
          launch[li] = 1;
          break;
        case JoinStrategy::kColumnSweep:
        case JoinStrategy::kSerpentine:
          launch[li] = local_everywhere ? 1 : 0;
          if (lit.kind == Literal::Kind::kNegated && !local_everywhere) {
            sweep_neg[li] = 1;
            has_sweep_neg = true;
          }
          break;
        case JoinStrategy::kCentroid:
        case JoinStrategy::kLocalRoute:
          break;  // resolved at the centroid / at route steps
      }
    }
    uint32_t passes = 1;
    if (delta.strategy == JoinStrategy::kColumnSweep ||
        delta.strategy == JoinStrategy::kSerpentine) {
      passes = delta.multipass
                   ? static_cast<uint32_t>(delta.pass_literals.size())
                   : 1;
      if (passes == 0) passes = 1;
      if (has_sweep_neg) ++passes;
    }
    shared.total_passes[di] = passes;
    max_passes = std::max(max_passes, passes);
  }

  // --- timing discipline (Theorem 3 bounds) ---
  const LinkModel& link = network->link();
  SimTime hop = link.MaxHopDelay(options.max_message_bytes);
  int diameter = std::max(0, shared.topology->DiameterHops());

  int max_storage_hops = 0;
  int max_sweep_walk = 0;
  bool need_band_walk = false;
  bool need_serpentine = false;
  bool need_vertical = false;
  for (const auto& [pred, pp] : shared.plan.preds) {
    switch (pp.storage) {
      case StoragePolicy::kRow:
        need_band_walk = true;
        break;
      case StoragePolicy::kBroadcast:
      case StoragePolicy::kCentroid:
        max_storage_hops = std::max(max_storage_hops, diameter);
        break;
      case StoragePolicy::kSpatial:
        max_storage_hops = std::max(max_storage_hops, pp.spatial_radius);
        break;
      case StoragePolicy::kLocal:
        break;
    }
  }
  for (const DeltaPlan& d : shared.plan.deltas) {
    if (d.strategy == JoinStrategy::kColumnSweep) need_vertical = true;
    if (d.strategy == JoinStrategy::kSerpentine) need_serpentine = true;
  }
  if (need_band_walk) {
    for (int v = 0; v < shared.topology->node_count(); ++v) {
      if (shared.regions->HorizontalPath(v).empty()) continue;
      if (shared.regions->HorizontalPath(v)[0] != v) continue;
      int w = WalkHops(*shared.routing, shared.regions->HorizontalPath(v));
      if (w >= 0) max_storage_hops = std::max(max_storage_hops, w);
    }
  }
  if (need_vertical) {
    for (int v = 0; v < shared.topology->node_count(); ++v) {
      int w = WalkHops(*shared.routing, shared.regions->VerticalPath(v));
      if (w >= 0) max_sweep_walk = std::max(max_sweep_walk, w);
    }
  }
  if (need_serpentine) {
    int w = WalkHops(*shared.routing, shared.regions->SerpentinePath());
    if (w >= 0) max_sweep_walk = std::max(max_sweep_walk, w);
  }
  max_sweep_walk = std::max(max_sweep_walk, diameter);  // centroid / transit

  shared.timing.tau_c = link.max_clock_skew;
  shared.timing.tau_s = static_cast<SimTime>(
      options.timing_margin *
      static_cast<double>(hop * (max_storage_hops + 2)));
  shared.timing.tau_j = static_cast<SimTime>(
      options.timing_margin *
      static_cast<double>(hop * (diameter + max_sweep_walk + 2) *
                          static_cast<int>(max_passes)));

  shared.timing.finalize_delay =
      options.finalize_delay >= 0 ? options.finalize_delay
                                  : shared.timing.JoinDelay();

  // --- install runtimes ---
  for (int i = 0; i < network->node_count(); ++i) {
    auto runtime = std::make_unique<NodeRuntime>(&shared, i);
    engine->runtimes_.push_back(runtime.get());
    network->SetApp(i, std::move(runtime));
  }
  // `shared.plan` lives in the heap-allocated EngineShared, so the sink's
  // pointer stays valid for the engine's lifetime.
  InstallEngineObservability(network, &shared.plan, options.metrics,
                             options.trace, options.provenance.enabled);
  network->Start();
  return engine;
}

Status DistributedEngine::Inject(NodeId node, StreamOp op, const Fact& fact) {
  if (node < 0 || node >= network_->node_count()) {
    return Status::OutOfRange(StrFormat("no node %d", node));
  }
  return runtimes_[static_cast<size_t>(node)]->Inject(
      &network_->context(node), op, fact);
}

std::vector<Fact> DistributedEngine::ResultFacts(SymbolId pred) const {
  std::vector<Fact> out;
  for (NodeRuntime* rt : runtimes_) {
    std::vector<Fact> local = rt->HomeFacts(pred);
    out.insert(out.end(), local.begin(), local.end());
  }
  return out;
}

Database DistributedEngine::ResultDatabase() const {
  Database db;
  for (SymbolId pred : shared_->plan.analysis.predicates) {
    if (!shared_->plan.analysis.idb.count(pred)) continue;
    for (const Fact& f : ResultFacts(pred)) db.Insert(f);
  }
  return db;
}

Database DistributedEngine::UndegradedResultDatabase() const {
  Database db;
  for (SymbolId pred : shared_->plan.analysis.predicates) {
    if (!shared_->plan.analysis.idb.count(pred)) continue;
    for (NodeRuntime* rt : runtimes_) {
      for (const Fact& f : rt->UndegradedHomeFacts(pred)) db.Insert(f);
    }
  }
  return db;
}

size_t DistributedEngine::TotalReplicas() const {
  size_t n = 0;
  for (NodeRuntime* rt : runtimes_) n += rt->ReplicaCount();
  return n;
}

size_t DistributedEngine::TotalDerivations() const {
  size_t n = 0;
  for (NodeRuntime* rt : runtimes_) n += rt->DerivationCount();
  return n;
}

size_t DistributedEngine::MaxNodeReplicas() const {
  size_t n = 0;
  for (NodeRuntime* rt : runtimes_) n = std::max(n, rt->ReplicaCount());
  return n;
}

std::vector<ProvenanceEdge> DistributedEngine::ProvenanceEdges() const {
  std::vector<ProvenanceEdge> out;
  for (NodeRuntime* rt : runtimes_) {
    const ProvenanceStore* store = rt->provenance_store();
    if (store == nullptr) continue;
    std::vector<ProvenanceEdge> edges = store->Edges();
    out.insert(out.end(), edges.begin(), edges.end());
  }
  return out;
}

// --- multi-tenant engine ----------------------------------------------------

Status MultiTenantEngine::AddProgram(const std::string& tenant,
                                     const Program& program) {
  if (engine_ != nullptr) {
    return Status::FailedPrecondition(
        "MultiTenantEngine: AddProgram after Start");
  }
  if (tenant.empty()) {
    return Status::InvalidArgument("MultiTenantEngine: empty tenant name");
  }
  for (const TenantProgram& tp : programs_) {
    if (tp.tenant == tenant) {
      return Status::InvalidArgument(
          StrFormat("MultiTenantEngine: duplicate tenant '%s'",
                    tenant.c_str()));
    }
  }
  TenantProgram tp;
  tp.tenant = tenant;
  tp.program = program;
  programs_.push_back(std::move(tp));
  return Status::OK();
}

Status MultiTenantEngine::Start(Network* network) {
  if (engine_ != nullptr) {
    return Status::FailedPrecondition("MultiTenantEngine: already started");
  }
  BuiltinRegistry registry = options_.registry != nullptr
                                 ? *options_.registry
                                 : BuiltinRegistry::Default();
  DEDUCE_ASSIGN_OR_RETURN(
      multi_, CompileMultiPlan(programs_, registry, options_.planner));
  DEDUCE_ASSIGN_OR_RETURN(
      engine_, DistributedEngine::CreateFromPlan(network, multi_.plan,
                                                 multi_.fanout, options_));
  if (options_.metrics != nullptr) {
    options_.metrics->Add(-1, "tenant", "tenants", programs_.size());
    options_.metrics->Add(-1, "tenant", "subplans_requested",
                          multi_.subplans_requested);
    options_.metrics->Add(-1, "tenant", "subplans_total",
                          multi_.subplans_total);
    options_.metrics->Add(-1, "tenant", "subplans_shared",
                          multi_.subplans_shared);
    uint64_t fanout_edges = 0;
    for (const auto& [canon, fans] : multi_.fanout) {
      (void)canon;
      fanout_edges += fans.size();
    }
    options_.metrics->Add(-1, "tenant", "fanout_edges", fanout_edges);
  }
  return Status::OK();
}

Status MultiTenantEngine::Inject(NodeId node, StreamOp op, const Fact& fact) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("MultiTenantEngine: not started");
  }
  return engine_->Inject(node, op, fact);
}

void MultiTenantEngine::Run() { engine_->Run(); }

const TenantView* MultiTenantEngine::FindView(
    const std::string& tenant) const {
  for (const TenantView& v : multi_.views) {
    if (v.tenant == tenant) return &v;
  }
  return nullptr;
}

StatusOr<std::vector<Fact>> MultiTenantEngine::ResultFacts(
    const std::string& tenant, SymbolId pred) const {
  const TenantView* view = FindView(tenant);
  if (view == nullptr) {
    return StatusOr<std::vector<Fact>>(Status::NotFound(
        StrFormat("MultiTenantEngine: unknown tenant '%s'", tenant.c_str())));
  }
  auto it = view->read.find(pred);
  if (it == view->read.end()) {
    return StatusOr<std::vector<Fact>>(Status::NotFound(StrFormat(
        "MultiTenantEngine: tenant '%s' has no predicate '%s'",
        tenant.c_str(), SymbolName(pred).c_str())));
  }
  std::vector<Fact> facts = engine_->ResultFacts(it->second);
  if (it->second != pred) {
    // Non-strict collision rename: relabel back to the tenant's own name.
    for (Fact& f : facts) f = Fact(pred, f.args());
  }
  return facts;
}

StatusOr<Database> MultiTenantEngine::ResultDatabase(
    const std::string& tenant) const {
  const TenantView* view = FindView(tenant);
  if (view == nullptr) {
    return StatusOr<Database>(Status::NotFound(
        StrFormat("MultiTenantEngine: unknown tenant '%s'", tenant.c_str())));
  }
  Database db;
  for (SymbolId pred : view->derived) {
    DEDUCE_ASSIGN_OR_RETURN(std::vector<Fact> facts,
                            ResultFacts(tenant, pred));
    for (const Fact& f : facts) db.Insert(f);
  }
  return db;
}

StatusOr<Database> MultiTenantEngine::UndegradedResultDatabase(
    const std::string& tenant) const {
  const TenantView* view = FindView(tenant);
  if (view == nullptr) {
    return StatusOr<Database>(Status::NotFound(
        StrFormat("MultiTenantEngine: unknown tenant '%s'", tenant.c_str())));
  }
  Database db;
  const Network* net = engine_->network();
  for (SymbolId pred : view->derived) {
    SymbolId eval = view->read.at(pred);
    for (int i = 0; i < net->node_count(); ++i) {
      for (const Fact& f : engine_->runtime(i).UndegradedHomeFacts(eval)) {
        db.InsertAs(f, pred);
      }
    }
  }
  return db;
}

// --- centralized baseline ---------------------------------------------------

class CentralizedEngine::ForwarderApp : public NodeApp {
 public:
  ForwarderApp(CentralizedEngine* owner, NodeId id) : owner_(owner), id_(id) {}

  void OnMessage(NodeContext* ctx, const Message& msg) override {
    StatusOr<StoreWire> store = StoreWire::Decode(msg);
    if (!store.ok()) {
      owner_->errors_.push_back("bad message: " + store.status().message());
      return;
    }
    if (store->final_target != id_) {
      NodeId next = owner_->routing_->NextHop(id_, store->final_target);
      if (next == kNoNode) {
        owner_->errors_.push_back(
            StrFormat("no route to sink from %d", id_));
        return;
      }
      ctx->Send(next, msg);
      return;
    }
    // At the sink: apply to the incremental engine in arrival order.
    StreamEvent ev;
    ev.op = store->deletion ? StreamOp::kDelete : StreamOp::kInsert;
    ev.fact = store->fact;
    ev.id = store->id;
    ev.time = ctx->LocalTime();
    Status st = owner_->sink_engine_->Apply(ev, nullptr);
    if (!st.ok()) owner_->errors_.push_back(st.ToString());
  }

 private:
  CentralizedEngine* owner_;
  NodeId id_;
};

StatusOr<std::unique_ptr<CentralizedEngine>> CentralizedEngine::Create(
    Network* network, const Program& program, NodeId sink,
    const IncrementalOptions& options) {
  auto engine = std::unique_ptr<CentralizedEngine>(new CentralizedEngine());
  engine->network_ = network;
  engine->sink_ = sink;
  engine->routing_ = std::make_shared<RoutingTable>(&network->topology());
  DEDUCE_ASSIGN_OR_RETURN(engine->sink_engine_,
                          IncrementalEngine::Create(program, options));
  for (int i = 0; i < network->node_count(); ++i) {
    network->SetApp(i, std::make_unique<ForwarderApp>(engine.get(), i));
  }
  network->Start();
  return engine;
}

Status CentralizedEngine::Inject(NodeId node, StreamOp op, const Fact& fact) {
  NodeContext& ctx = network_->context(node);
  StoreWire store;
  store.final_target = sink_;
  store.pred = fact.predicate();
  store.fact = fact;
  store.id = TupleId{node, ctx.LocalTime(), seq_++};
  store.gen_ts = ctx.LocalTime();
  store.deletion = op == StreamOp::kDelete;
  store.del_ts = ctx.LocalTime();
  if (node == sink_) {
    // Local sensing at the sink: apply directly.
    StreamEvent ev;
    ev.op = op;
    ev.fact = fact;
    ev.id = store.id;
    ev.time = ctx.LocalTime();
    return sink_engine_->Apply(ev, nullptr);
  }
  NodeId next = routing_->NextHop(node, sink_);
  if (next == kNoNode) {
    return Status::FailedPrecondition("sink unreachable");
  }
  ctx.Send(next, store.Encode());
  return Status::OK();
}

std::vector<Fact> CentralizedEngine::ResultFacts(SymbolId pred) const {
  return sink_engine_->AliveFacts(pred);
}

}  // namespace deduce
