#include "deduce/engine/plan.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "deduce/common/strings.h"
#include "deduce/datalog/analysis.h"
#include "deduce/datalog/unify.h"

namespace deduce {

const char* StoragePolicyToString(StoragePolicy p) {
  switch (p) {
    case StoragePolicy::kRow:
      return "row";
    case StoragePolicy::kBroadcast:
      return "broadcast";
    case StoragePolicy::kLocal:
      return "local";
    case StoragePolicy::kSpatial:
      return "spatial";
    case StoragePolicy::kCentroid:
      return "centroid";
  }
  return "?";
}

const char* JoinStrategyToString(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kLocalOnly:
      return "local-only";
    case JoinStrategy::kColumnSweep:
      return "column-sweep";
    case JoinStrategy::kSerpentine:
      return "serpentine";
    case JoinStrategy::kCentroid:
      return "centroid";
    case JoinStrategy::kLocalRoute:
      return "local-route";
  }
  return "?";
}

std::string DeltaPlan::ToString(const Program& program) const {
  const Rule& rule = program.rules()[rule_index];
  std::string out = StrFormat("rule %zu on %s: %s", rule_index,
                              rule.body[pinned_literal].ToString().c_str(),
                              JoinStrategyToString(strategy));
  if (multipass) out += " multipass";
  for (const RouteStep& s : steps) {
    out += StrFormat(" ->%s@%s", rule.body[s.literal].ToString().c_str(),
                     s.where == RouteStep::Where::kHere
                         ? "here"
                         : StrFormat("arg%zu", s.arg).c_str());
  }
  return out;
}

std::string QueryPlan::ToString() const {
  std::string out;
  std::vector<SymbolId> names;
  for (const auto& [pred, p] : preds) names.push_back(pred);
  std::sort(names.begin(), names.end(), [](SymbolId a, SymbolId b) {
    return SymbolName(a) < SymbolName(b);
  });
  for (SymbolId pred : names) {
    const PredicatePlan& p = preds.at(pred);
    out += StrFormat("%s: %s storage=%s", SymbolName(pred).c_str(),
                     p.derived ? "derived" : "input",
                     StoragePolicyToString(p.storage));
    if (p.storage == StoragePolicy::kSpatial) {
      out += StrFormat(":%d", p.spatial_radius);
    }
    if (p.home_arg) out += StrFormat(" home=arg%zu", *p.home_arg);
    if (p.window != INT64_MAX) {
      out += StrFormat(" window=%lld", static_cast<long long>(p.window));
    }
    out += "\n";
  }
  for (const DeltaPlan& d : deltas) {
    out += d.ToString(program) + "\n";
  }
  return out;
}

namespace {

StatusOr<StoragePolicy> ParseStoragePolicy(const std::string& text,
                                           int* radius) {
  if (text == "row" || text == "column") return StoragePolicy::kRow;
  if (text == "broadcast") return StoragePolicy::kBroadcast;
  if (text == "local") return StoragePolicy::kLocal;
  if (text == "centroid") return StoragePolicy::kCentroid;
  if (StartsWith(text, "spatial:")) {
    *radius = std::atoi(text.c_str() + 8);
    if (*radius <= 0) {
      return StatusOr<StoragePolicy>(
          Status::InvalidArgument("bad spatial radius in '" + text + "'"));
    }
    return StoragePolicy::kSpatial;
  }
  return StatusOr<StoragePolicy>(
      Status::InvalidArgument("unknown storage policy '" + text + "'"));
}

/// True if a sweep over vertical paths sees all tuples of this storage kind.
bool SweepCovers(StoragePolicy p) {
  return p == StoragePolicy::kRow || p == StoragePolicy::kBroadcast;
}

}  // namespace

StatusOr<QueryPlan> CompilePlan(const Program& program,
                                const BuiltinRegistry& registry,
                                const PlannerOptions& options) {
  QueryPlan plan;
  plan.program = program;
  DEDUCE_RETURN_IF_ERROR(ResolveBuiltins(&plan.program, registry));
  DEDUCE_ASSIGN_OR_RETURN(plan.analysis, AnalyzeProgram(plan.program));

  // Partial results track matched body literals in a 32-bit mask built with
  // `1u << literal_index`, so index 31 is the last representable literal:
  // a 32nd literal would shift by 32 (undefined behavior) and alias index 0.
  constexpr size_t kMaxBodyLiterals = 31;
  for (const Rule& r : plan.program.rules()) {
    if (r.body.size() > kMaxBodyLiterals) {
      return Status::Unimplemented(
          StrFormat("rule has %zu body literals; the partial-result mask "
                    "is 32 bits, limiting rules to %zu: ",
                    r.body.size(), kMaxBodyLiterals) +
          r.ToString());
    }
  }
  for (const SccInfo& scc : plan.analysis.sccs) {
    if (scc.recursive && scc.has_internal_negation && !scc.xy_stratified) {
      return Status::Unimplemented(
          "recursion through negation is not XY-stratified (" +
          scc.xy_diagnostic + ")");
    }
  }

  // Predicates read by some rule body; derived predicates nobody reads are
  // "sinks": their tuples stay at their home node (no storage replication).
  std::unordered_set<SymbolId> read_preds;
  for (const Rule& r : plan.program.rules()) {
    for (const Literal& l : r.body) {
      if (l.is_relational()) read_preds.insert(l.atom.predicate);
    }
  }

  // Per-predicate placements.
  for (SymbolId pred : plan.analysis.predicates) {
    PredicatePlan p;
    p.pred = pred;
    p.derived = plan.analysis.idb.count(pred) > 0;
    p.storage = p.derived && !read_preds.count(pred)
                    ? StoragePolicy::kLocal
                    : options.default_storage;
    p.window = options.default_window;
    const PredicateDecl* decl = plan.program.FindDecl(pred);
    if (decl != nullptr) {
      if (!decl->storage_policy.empty()) {
        int radius = 0;
        DEDUCE_ASSIGN_OR_RETURN(p.storage,
                                ParseStoragePolicy(decl->storage_policy,
                                                   &radius));
        p.spatial_radius = radius;
      }
      if (decl->window) p.window = *decl->window;
      if (decl->home_arg) p.home_arg = decl->home_arg;
    }
    plan.preds.emplace(pred, p);
  }

  // Aggregate rules compile to per-group incremental aggregation instead
  // of join plans.
  for (size_t ri = 0; ri < plan.program.rules().size(); ++ri) {
    const Rule& rule = plan.program.rules()[ri];
    if (rule.aggregates.empty()) continue;
    size_t positives = 0;
    size_t source = 0;
    for (size_t li = 0; li < rule.body.size(); ++li) {
      const Literal& lit = rule.body[li];
      if (lit.kind == Literal::Kind::kNegated) {
        return Status::Unimplemented(
            "aggregate rules with negation are not supported: " +
            rule.ToString());
      }
      if (lit.kind == Literal::Kind::kPositive) {
        ++positives;
        source = li;
      }
    }
    if (positives != 1) {
      return Status::Unimplemented(
          "aggregate rules must have exactly one positive relational "
          "subgoal (join first into a derived stream, then aggregate): " +
          rule.ToString());
    }
    if (plan.analysis.IsRecursivePred(rule.head.predicate)) {
      return Status::Unimplemented("recursive aggregate: " + rule.ToString());
    }
    AggregatePlan agg;
    agg.rule_index = ri;
    agg.source_literal = source;
    agg.kind = rule.aggregates[0].kind;
    agg.agg_position = rule.aggregates[0].head_position;
    agg.input = rule.aggregates[0].input;
    size_t index = plan.aggregates.size();
    plan.aggregates.push_back(std::move(agg));
    plan.aggregates_by_pred[rule.body[source].atom.predicate].push_back(
        index);
  }

  // Delta plans: one per relational body occurrence.
  for (size_t ri = 0; ri < plan.program.rules().size(); ++ri) {
    const Rule& rule = plan.program.rules()[ri];
    if (!rule.aggregates.empty()) continue;  // handled above
    for (size_t li = 0; li < rule.body.size(); ++li) {
      if (!rule.body[li].is_relational()) continue;
      DeltaPlan delta;
      delta.rule_index = ri;
      delta.pinned_literal = li;

      // Read set: the other relational literals.
      std::vector<size_t> readset;
      bool all_broadcast = true;
      bool sweep_ok = true;
      bool centroid_ok = true;
      for (size_t lj = 0; lj < rule.body.size(); ++lj) {
        if (lj == li || !rule.body[lj].is_relational()) continue;
        readset.push_back(lj);
        StoragePolicy sp = plan.preds.at(rule.body[lj].atom.predicate).storage;
        if (sp != StoragePolicy::kBroadcast) all_broadcast = false;
        if (!SweepCovers(sp)) sweep_ok = false;
        if (sp != StoragePolicy::kCentroid &&
            sp != StoragePolicy::kBroadcast) {
          centroid_ok = false;
        }
      }

      if (readset.empty() || all_broadcast) {
        delta.strategy = JoinStrategy::kLocalOnly;
      } else if (sweep_ok) {
        delta.strategy = JoinStrategy::kColumnSweep;
        delta.multipass = options.multipass;
      } else if (centroid_ok) {
        delta.strategy = JoinStrategy::kCentroid;
      } else {
        // Try local-route: order literals so each is locatable when reached.
        std::unordered_set<SymbolId> bound;
        {
          std::vector<SymbolId> vars;
          rule.body[li].CollectVariables(&vars);
          bound.insert(vars.begin(), vars.end());
        }
        auto site_of = [&](size_t lj) -> std::optional<RouteStep> {
          const Literal& lit = rule.body[lj];
          const PredicatePlan& pp = plan.preds.at(lit.atom.predicate);
          if (pp.storage == StoragePolicy::kBroadcast ||
              pp.storage == StoragePolicy::kSpatial) {
            return RouteStep{lj, RouteStep::Where::kHere, 0};
          }
          if (pp.storage == StoragePolicy::kLocal && pp.home_arg) {
            const Term& arg = lit.atom.args[*pp.home_arg];
            bool arg_bound =
                (arg.is_constant() && arg.value().is_int()) ||
                (arg.is_variable() && bound.count(arg.var()) > 0);
            if (arg_bound) {
              return RouteStep{lj, RouteStep::Where::kAtArgNode,
                               *pp.home_arg};
            }
          }
          return std::nullopt;
        };

        std::vector<size_t> positives, negatives;
        for (size_t lj : readset) {
          (rule.body[lj].kind == Literal::Kind::kPositive ? positives
                                                          : negatives)
              .push_back(lj);
        }
        bool ok = true;
        std::vector<RouteStep> steps;
        std::vector<bool> placed(rule.body.size(), false);
        // Greedy: place any locatable positive (kHere first), rebinding.
        while (steps.size() < positives.size()) {
          std::optional<RouteStep> next;
          for (bool prefer_here : {true, false}) {
            for (size_t lj : positives) {
              if (placed[lj]) continue;
              std::optional<RouteStep> s = site_of(lj);
              if (!s) continue;
              if (prefer_here != (s->where == RouteStep::Where::kHere)) {
                continue;
              }
              next = s;
              break;
            }
            if (next) break;
          }
          if (!next) {
            ok = false;
            break;
          }
          placed[next->literal] = true;
          std::vector<SymbolId> vars;
          rule.body[next->literal].CollectVariables(&vars);
          bound.insert(vars.begin(), vars.end());
          steps.push_back(*next);
        }
        if (ok) {
          for (size_t lj : negatives) {
            std::optional<RouteStep> s = site_of(lj);
            if (!s) {
              ok = false;
              break;
            }
            steps.push_back(*s);
          }
        }
        if (ok) {
          delta.strategy = JoinStrategy::kLocalRoute;
          delta.steps = std::move(steps);
        } else {
          // Last resort: local storage everywhere -> serpentine sweep.
          bool serp_ok = true;
          for (size_t lj : readset) {
            StoragePolicy sp =
                plan.preds.at(rule.body[lj].atom.predicate).storage;
            if (sp != StoragePolicy::kLocal &&
                sp != StoragePolicy::kBroadcast) {
              serp_ok = false;
            }
          }
          if (!serp_ok) {
            return Status::Unimplemented(
                "no join strategy covers rule '" + rule.ToString() +
                "' for update " + rule.body[li].ToString() +
                ": mixed storage placements are not supported");
          }
          delta.strategy = JoinStrategy::kSerpentine;
          delta.multipass = options.multipass;
        }
      }

      if (delta.multipass) {
        for (size_t lj : readset) {
          if (rule.body[lj].kind == Literal::Kind::kPositive) {
            delta.pass_literals.push_back(lj);
          }
        }
        if (delta.pass_literals.empty()) delta.multipass = false;
      }

      size_t index = plan.deltas.size();
      plan.deltas.push_back(std::move(delta));
      plan.deltas_by_pred[rule.body[li].atom.predicate].push_back(index);
    }
  }
  return plan;
}

// --- multi-tenant compilation ------------------------------------------------

namespace {

/// Canonical text of one body literal under the variable renaming `rename`
/// and the predicate naming `pname` (SCC members and resolved dependencies
/// get tenant-independent names).
std::string CanonLiteral(const Literal& lit, const Subst& rename,
                         const std::function<std::string(SymbolId)>& pname) {
  auto args = [&](const std::vector<Term>& ts) {
    std::string s = "(";
    for (size_t i = 0; i < ts.size(); ++i) {
      if (i > 0) s += ",";
      s += rename.Apply(ts[i]).ToString();
    }
    return s + ")";
  };
  switch (lit.kind) {
    case Literal::Kind::kPositive:
      return pname(lit.atom.predicate) + args(lit.atom.args);
    case Literal::Kind::kNegated:
      return "!" + pname(lit.atom.predicate) + args(lit.atom.args);
    case Literal::Kind::kBuiltin:
      return std::string(lit.builtin_negated ? "!#" : "#") +
             SymbolName(lit.atom.predicate) + args(lit.atom.args);
    case Literal::Kind::kComparison:
      return rename.Apply(lit.lhs).ToString() + CmpOpToString(lit.cmp) +
             rename.Apply(lit.rhs).ToString();
  }
  return "?";
}

/// Canonical text of a rule: variables normalized to _v0.._vN in
/// first-occurrence order, predicates named by `pname`. Body literal order
/// is preserved — it drives delta-plan generation, so two rules that
/// differ only in body order are (conservatively) distinct sub-plans.
std::string CanonRule(const Rule& rule,
                      const std::function<std::string(SymbolId)>& pname) {
  Subst rename;
  std::vector<SymbolId> vars = rule.Variables();
  for (size_t i = 0; i < vars.size(); ++i) {
    rename.Bind(vars[i], Term::Var(StrFormat("_v%zu", i)));
  }
  std::string s = pname(rule.head.predicate) + "(";
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (i > 0) s += ",";
    s += rename.Apply(rule.head.args[i]).ToString();
  }
  s += ")";
  for (const AggregateSpec& spec : rule.aggregates) {
    s += StrFormat("{%s@%zu}", AggKindToString(spec.kind),
                   spec.head_position);
  }
  s += ":-";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) s += ",";
    s += CanonLiteral(rule.body[i], rename, pname);
  }
  return s;
}

/// Plan-relevant `.decl` properties of `pred`, as signature text.
std::string DeclSignature(const Program& program, SymbolId pred) {
  const PredicateDecl* d = program.FindDecl(pred);
  if (d == nullptr) return ";nodecl";
  std::string s = ";w=";
  s += d->window ? StrFormat("%lld", static_cast<long long>(*d->window)) : "-";
  s += ";h=";
  s += d->home_arg ? StrFormat("%zu", *d->home_arg) : "-";
  s += ";g=";
  s += d->stage_arg ? StrFormat("%zu", *d->stage_arg) : "-";
  s += ";s=" + d->storage_policy + ";j=" + d->join_policy;
  return s;
}

/// Input streams are shared across tenants by name, so their declarations
/// must agree on everything the planner consumes.
bool SameDeclProps(const PredicateDecl* a, const PredicateDecl* b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  if (a == nullptr) return true;
  return a->arity == b->arity && a->window == b->window &&
         a->home_arg == b->home_arg && a->stage_arg == b->stage_arg &&
         a->storage_policy == b->storage_policy &&
         a->join_policy == b->join_policy;
}

SymbolId Resolve(const std::unordered_map<SymbolId, SymbolId>& final_name,
                 SymbolId pred) {
  auto it = final_name.find(pred);
  return it == final_name.end() ? pred : it->second;
}

}  // namespace

StatusOr<MultiPlan> CompileMultiPlan(const std::vector<TenantProgram>& tenants,
                                     const BuiltinRegistry& registry,
                                     const PlannerOptions& options) {
  if (tenants.empty()) {
    return StatusOr<MultiPlan>(
        Status::InvalidArgument("CompileMultiPlan: no tenant programs"));
  }
  MultiPlan out;
  Program merged;

  /// What a predicate name is already bound to across tenants.
  struct NameClaim {
    bool edb = false;
    std::string sig;     ///< Derived: the owning SCC signature.
    std::string tenant;  ///< First claimant (for error messages).
  };
  std::unordered_map<SymbolId, NameClaim> claims;
  // SCC signature -> final symbol of each member (positional).
  std::unordered_map<std::string, std::vector<SymbolId>> canon_by_sig;
  std::unordered_set<Fact, FactHash> fact_seen;

  for (size_t ti = 0; ti < tenants.size(); ++ti) {
    const TenantProgram& tp = tenants[ti];
    TenantView view;
    view.tenant = tp.tenant;
    view.index = static_cast<uint32_t>(ti + 1);

    Program prog = tp.program;
    DEDUCE_RETURN_IF_ERROR(ResolveBuiltins(&prog, registry));
    DEDUCE_ASSIGN_OR_RETURN(ProgramAnalysis analysis, AnalyzeProgram(prog));

    // Input streams: shared by name, declarations must agree.
    for (SymbolId pred : analysis.predicates) {
      if (!analysis.edb.count(pred)) continue;
      view.edb.push_back(pred);
      view.read.emplace(pred, pred);
      const PredicateDecl* decl = prog.FindDecl(pred);
      auto it = claims.find(pred);
      if (it == claims.end()) {
        claims.emplace(pred, NameClaim{true, "", tp.tenant});
        if (decl != nullptr) DEDUCE_RETURN_IF_ERROR(merged.AddDecl(*decl));
      } else if (!it->second.edb) {
        return StatusOr<MultiPlan>(Status::InvalidArgument(StrFormat(
            "tenant '%s': input stream '%s' collides with a derived "
            "predicate of the same name registered by tenant '%s'",
            tp.tenant.c_str(), SymbolName(pred).c_str(),
            it->second.tenant.c_str())));
      } else if (!SameDeclProps(merged.FindDecl(pred), decl)) {
        return StatusOr<MultiPlan>(Status::InvalidArgument(StrFormat(
            "tenant '%s': input stream '%s' is declared differently than "
            "by tenant '%s'; shared input streams must have identical "
            "declarations",
            tp.tenant.c_str(), SymbolName(pred).c_str(),
            it->second.tenant.c_str())));
      }
    }

    // Tenant predicate -> merged-program predicate, for rule bodies of
    // later SCCs (topological order makes every dependency resolved).
    std::unordered_map<SymbolId, SymbolId> final_name;
    for (SymbolId pred : view.edb) final_name.emplace(pred, pred);

    for (const SccInfo& scc : analysis.sccs) {
      std::vector<SymbolId> members;
      for (SymbolId m : scc.members) {
        if (analysis.idb.count(m)) members.push_back(m);
      }
      if (members.empty()) continue;
      out.subplans_requested += members.size();
      view.derived.insert(view.derived.end(), members.begin(), members.end());

      // Canonicalization is SCC-granular: a recursive component is shared
      // all-or-nothing, so no tenant can alias half of a mutual recursion
      // whose other half differs.
      std::unordered_map<SymbolId, size_t> member_pos;
      for (size_t i = 0; i < members.size(); ++i) {
        member_pos.emplace(members[i], i);
      }
      auto pname = [&](SymbolId p) -> std::string {
        auto mit = member_pos.find(p);
        if (mit != member_pos.end()) return StrFormat("$m%zu", mit->second);
        auto fit = final_name.find(p);
        if (fit != final_name.end() && analysis.idb.count(p)) {
          return "@" + SymbolName(fit->second);
        }
        return SymbolName(p);  // input stream (shared by name)
      };
      std::string sig;
      for (size_t i = 0; i < members.size(); ++i) {
        std::vector<std::string> rule_strs;
        for (const Rule& r : prog.rules()) {
          if (r.head.predicate != members[i]) continue;
          rule_strs.push_back(CanonRule(r, pname));
        }
        std::sort(rule_strs.begin(), rule_strs.end());
        sig += StrFormat("$m%zu", i) + DeclSignature(prog, members[i]) + "|";
        for (const std::string& rs : rule_strs) sig += rs + ";";
      }

      auto cit = canon_by_sig.find(sig);
      if (cit != canon_by_sig.end()) {
        // Shared sub-plan: evaluated once by the canonical owner; this
        // tenant reads the canonical store directly (same name) or gets a
        // per-tenant alias store fed by result fan-out (different name).
        for (size_t i = 0; i < members.size(); ++i) {
          SymbolId mine = members[i];
          SymbolId canon = cit->second[i];
          final_name[mine] = canon;
          if (mine == canon) {
            view.read.emplace(mine, mine);
            continue;
          }
          SymbolId alias = mine;
          auto nit = claims.find(mine);
          if (nit != claims.end() &&
              (nit->second.edb || nit->second.sig != sig)) {
            if (options.strict_tenant_collisions || nit->second.edb) {
              return StatusOr<MultiPlan>(Status::InvalidArgument(StrFormat(
                  "cross-tenant symbol collision: predicate '%s' of tenant "
                  "'%s' does not match the %s already registered under that "
                  "name by tenant '%s' (a shared head predicate must have "
                  "an identical sub-plan; rename the predicate or clear "
                  "PlannerOptions::strict_tenant_collisions)",
                  SymbolName(mine).c_str(), tp.tenant.c_str(),
                  nit->second.edb ? "input stream" : "sub-plan",
                  nit->second.tenant.c_str())));
            }
            alias = Intern(SymbolName(mine) + "@" + tp.tenant);
          }
          if (!claims.count(alias)) {
            claims.emplace(alias, NameClaim{false, sig, tp.tenant});
          }
          auto& fans = out.fanout[canon];
          bool present = false;
          for (const auto& [t, a] : fans) present = present || a == alias;
          // Two tenants may share one alias store (same name, same
          // sub-plan); the recorded wire tenant id is the first taker's —
          // it only marks "fan-out copy", attribution is by predicate.
          if (!present) fans.emplace_back(view.index, alias);
          view.read.emplace(mine, alias);
        }
        continue;
      }

      // New sub-plan: claim names (renaming on non-strict collision),
      // then emit the rewritten rules into the merged program.
      std::vector<SymbolId> finals;
      for (size_t i = 0; i < members.size(); ++i) {
        SymbolId mine = members[i];
        SymbolId fin = mine;
        auto nit = claims.find(mine);
        if (nit != claims.end()) {
          if (options.strict_tenant_collisions || nit->second.edb) {
            return StatusOr<MultiPlan>(Status::InvalidArgument(StrFormat(
                "cross-tenant symbol collision: predicate '%s' of tenant "
                "'%s' does not match the %s already registered under that "
                "name by tenant '%s' (a shared head predicate must have an "
                "identical sub-plan; rename the predicate or clear "
                "PlannerOptions::strict_tenant_collisions)",
                SymbolName(mine).c_str(), tp.tenant.c_str(),
                nit->second.edb ? "input stream" : "sub-plan",
                nit->second.tenant.c_str())));
          }
          fin = Intern(SymbolName(mine) + "@" + tp.tenant);
          if (claims.count(fin)) {
            return StatusOr<MultiPlan>(Status::InvalidArgument(StrFormat(
                "cross-tenant symbol collision: rename target '%s' for "
                "tenant '%s' is itself already registered",
                SymbolName(fin).c_str(), tp.tenant.c_str())));
          }
        }
        claims.emplace(fin, NameClaim{false, sig, tp.tenant});
        finals.push_back(fin);
        final_name[mine] = fin;
        view.read.emplace(mine, fin);
      }
      canon_by_sig.emplace(sig, finals);
      out.subplans_total += members.size();
      for (size_t i = 0; i < members.size(); ++i) {
        const PredicateDecl* decl = prog.FindDecl(members[i]);
        if (decl != nullptr) {
          PredicateDecl d = *decl;
          d.name = finals[i];
          DEDUCE_RETURN_IF_ERROR(merged.AddDecl(std::move(d)));
        }
      }
      for (const Rule& r : prog.rules()) {
        if (!member_pos.count(r.head.predicate)) continue;
        // mutable_rules, not AddRule: the rule already went through
        // aggregate extraction and the safety check in the tenant program,
        // and re-extraction would drop the extracted aggregate specs.
        Rule nr = r;
        nr.head.predicate = Resolve(final_name, nr.head.predicate);
        for (Literal& l : nr.body) {
          if (l.is_relational()) {
            l.atom.predicate = Resolve(final_name, l.atom.predicate);
          }
        }
        nr.id = static_cast<int>(merged.rules().size());
        merged.mutable_rules().push_back(std::move(nr));
      }
    }

    // Ground facts, relabeled and deduplicated across tenants.
    for (const Fact& f : prog.facts()) {
      SymbolId p = Resolve(final_name, f.predicate());
      Fact nf = p == f.predicate() ? f : Fact(p, f.args());
      if (!fact_seen.insert(nf).second) continue;
      Rule fr;
      fr.head = Atom(p, nf.args());
      DEDUCE_RETURN_IF_ERROR(merged.AddRule(std::move(fr)));
    }

    out.views.push_back(std::move(view));
  }

  DEDUCE_ASSIGN_OR_RETURN(out.plan,
                          CompilePlan(merged, registry, options));

  // Alias stores live outside the merged rule graph (nothing reads them, no
  // rule derives them — results arrive by fan-out). Each gets a sink
  // placement mirroring its canonical source so window expiry and home
  // hashing behave identically.
  for (const auto& [canon, fans] : out.fanout) {
    const PredicatePlan& cp = out.plan.pred_plan(canon);
    for (const auto& [tenant, alias] : fans) {
      (void)tenant;
      PredicatePlan ap = cp;
      ap.pred = alias;
      ap.storage = StoragePolicy::kLocal;
      out.plan.preds.emplace(alias, ap);
    }
  }
  out.subplans_shared = out.subplans_requested - out.subplans_total;
  return out;
}

}  // namespace deduce
