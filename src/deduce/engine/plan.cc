#include "deduce/engine/plan.h"

#include <algorithm>
#include <unordered_set>

#include "deduce/common/strings.h"

namespace deduce {

const char* StoragePolicyToString(StoragePolicy p) {
  switch (p) {
    case StoragePolicy::kRow:
      return "row";
    case StoragePolicy::kBroadcast:
      return "broadcast";
    case StoragePolicy::kLocal:
      return "local";
    case StoragePolicy::kSpatial:
      return "spatial";
    case StoragePolicy::kCentroid:
      return "centroid";
  }
  return "?";
}

const char* JoinStrategyToString(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kLocalOnly:
      return "local-only";
    case JoinStrategy::kColumnSweep:
      return "column-sweep";
    case JoinStrategy::kSerpentine:
      return "serpentine";
    case JoinStrategy::kCentroid:
      return "centroid";
    case JoinStrategy::kLocalRoute:
      return "local-route";
  }
  return "?";
}

std::string DeltaPlan::ToString(const Program& program) const {
  const Rule& rule = program.rules()[rule_index];
  std::string out = StrFormat("rule %zu on %s: %s", rule_index,
                              rule.body[pinned_literal].ToString().c_str(),
                              JoinStrategyToString(strategy));
  if (multipass) out += " multipass";
  for (const RouteStep& s : steps) {
    out += StrFormat(" ->%s@%s", rule.body[s.literal].ToString().c_str(),
                     s.where == RouteStep::Where::kHere
                         ? "here"
                         : StrFormat("arg%zu", s.arg).c_str());
  }
  return out;
}

std::string QueryPlan::ToString() const {
  std::string out;
  std::vector<SymbolId> names;
  for (const auto& [pred, p] : preds) names.push_back(pred);
  std::sort(names.begin(), names.end(), [](SymbolId a, SymbolId b) {
    return SymbolName(a) < SymbolName(b);
  });
  for (SymbolId pred : names) {
    const PredicatePlan& p = preds.at(pred);
    out += StrFormat("%s: %s storage=%s", SymbolName(pred).c_str(),
                     p.derived ? "derived" : "input",
                     StoragePolicyToString(p.storage));
    if (p.storage == StoragePolicy::kSpatial) {
      out += StrFormat(":%d", p.spatial_radius);
    }
    if (p.home_arg) out += StrFormat(" home=arg%zu", *p.home_arg);
    if (p.window != INT64_MAX) {
      out += StrFormat(" window=%lld", static_cast<long long>(p.window));
    }
    out += "\n";
  }
  for (const DeltaPlan& d : deltas) {
    out += d.ToString(program) + "\n";
  }
  return out;
}

namespace {

StatusOr<StoragePolicy> ParseStoragePolicy(const std::string& text,
                                           int* radius) {
  if (text == "row" || text == "column") return StoragePolicy::kRow;
  if (text == "broadcast") return StoragePolicy::kBroadcast;
  if (text == "local") return StoragePolicy::kLocal;
  if (text == "centroid") return StoragePolicy::kCentroid;
  if (StartsWith(text, "spatial:")) {
    *radius = std::atoi(text.c_str() + 8);
    if (*radius <= 0) {
      return StatusOr<StoragePolicy>(
          Status::InvalidArgument("bad spatial radius in '" + text + "'"));
    }
    return StoragePolicy::kSpatial;
  }
  return StatusOr<StoragePolicy>(
      Status::InvalidArgument("unknown storage policy '" + text + "'"));
}

/// True if a sweep over vertical paths sees all tuples of this storage kind.
bool SweepCovers(StoragePolicy p) {
  return p == StoragePolicy::kRow || p == StoragePolicy::kBroadcast;
}

}  // namespace

StatusOr<QueryPlan> CompilePlan(const Program& program,
                                const BuiltinRegistry& registry,
                                const PlannerOptions& options) {
  QueryPlan plan;
  plan.program = program;
  DEDUCE_RETURN_IF_ERROR(ResolveBuiltins(&plan.program, registry));
  DEDUCE_ASSIGN_OR_RETURN(plan.analysis, AnalyzeProgram(plan.program));

  // Partial results track matched body literals in a 32-bit mask built with
  // `1u << literal_index`, so index 31 is the last representable literal:
  // a 32nd literal would shift by 32 (undefined behavior) and alias index 0.
  constexpr size_t kMaxBodyLiterals = 31;
  for (const Rule& r : plan.program.rules()) {
    if (r.body.size() > kMaxBodyLiterals) {
      return Status::Unimplemented(
          StrFormat("rule has %zu body literals; the partial-result mask "
                    "is 32 bits, limiting rules to %zu: ",
                    r.body.size(), kMaxBodyLiterals) +
          r.ToString());
    }
  }
  for (const SccInfo& scc : plan.analysis.sccs) {
    if (scc.recursive && scc.has_internal_negation && !scc.xy_stratified) {
      return Status::Unimplemented(
          "recursion through negation is not XY-stratified (" +
          scc.xy_diagnostic + ")");
    }
  }

  // Predicates read by some rule body; derived predicates nobody reads are
  // "sinks": their tuples stay at their home node (no storage replication).
  std::unordered_set<SymbolId> read_preds;
  for (const Rule& r : plan.program.rules()) {
    for (const Literal& l : r.body) {
      if (l.is_relational()) read_preds.insert(l.atom.predicate);
    }
  }

  // Per-predicate placements.
  for (SymbolId pred : plan.analysis.predicates) {
    PredicatePlan p;
    p.pred = pred;
    p.derived = plan.analysis.idb.count(pred) > 0;
    p.storage = p.derived && !read_preds.count(pred)
                    ? StoragePolicy::kLocal
                    : options.default_storage;
    p.window = options.default_window;
    const PredicateDecl* decl = plan.program.FindDecl(pred);
    if (decl != nullptr) {
      if (!decl->storage_policy.empty()) {
        int radius = 0;
        DEDUCE_ASSIGN_OR_RETURN(p.storage,
                                ParseStoragePolicy(decl->storage_policy,
                                                   &radius));
        p.spatial_radius = radius;
      }
      if (decl->window) p.window = *decl->window;
      if (decl->home_arg) p.home_arg = decl->home_arg;
    }
    plan.preds.emplace(pred, p);
  }

  // Aggregate rules compile to per-group incremental aggregation instead
  // of join plans.
  for (size_t ri = 0; ri < plan.program.rules().size(); ++ri) {
    const Rule& rule = plan.program.rules()[ri];
    if (rule.aggregates.empty()) continue;
    size_t positives = 0;
    size_t source = 0;
    for (size_t li = 0; li < rule.body.size(); ++li) {
      const Literal& lit = rule.body[li];
      if (lit.kind == Literal::Kind::kNegated) {
        return Status::Unimplemented(
            "aggregate rules with negation are not supported: " +
            rule.ToString());
      }
      if (lit.kind == Literal::Kind::kPositive) {
        ++positives;
        source = li;
      }
    }
    if (positives != 1) {
      return Status::Unimplemented(
          "aggregate rules must have exactly one positive relational "
          "subgoal (join first into a derived stream, then aggregate): " +
          rule.ToString());
    }
    if (plan.analysis.IsRecursivePred(rule.head.predicate)) {
      return Status::Unimplemented("recursive aggregate: " + rule.ToString());
    }
    AggregatePlan agg;
    agg.rule_index = ri;
    agg.source_literal = source;
    agg.kind = rule.aggregates[0].kind;
    agg.agg_position = rule.aggregates[0].head_position;
    agg.input = rule.aggregates[0].input;
    size_t index = plan.aggregates.size();
    plan.aggregates.push_back(std::move(agg));
    plan.aggregates_by_pred[rule.body[source].atom.predicate].push_back(
        index);
  }

  // Delta plans: one per relational body occurrence.
  for (size_t ri = 0; ri < plan.program.rules().size(); ++ri) {
    const Rule& rule = plan.program.rules()[ri];
    if (!rule.aggregates.empty()) continue;  // handled above
    for (size_t li = 0; li < rule.body.size(); ++li) {
      if (!rule.body[li].is_relational()) continue;
      DeltaPlan delta;
      delta.rule_index = ri;
      delta.pinned_literal = li;

      // Read set: the other relational literals.
      std::vector<size_t> readset;
      bool all_broadcast = true;
      bool sweep_ok = true;
      bool centroid_ok = true;
      for (size_t lj = 0; lj < rule.body.size(); ++lj) {
        if (lj == li || !rule.body[lj].is_relational()) continue;
        readset.push_back(lj);
        StoragePolicy sp = plan.preds.at(rule.body[lj].atom.predicate).storage;
        if (sp != StoragePolicy::kBroadcast) all_broadcast = false;
        if (!SweepCovers(sp)) sweep_ok = false;
        if (sp != StoragePolicy::kCentroid &&
            sp != StoragePolicy::kBroadcast) {
          centroid_ok = false;
        }
      }

      if (readset.empty() || all_broadcast) {
        delta.strategy = JoinStrategy::kLocalOnly;
      } else if (sweep_ok) {
        delta.strategy = JoinStrategy::kColumnSweep;
        delta.multipass = options.multipass;
      } else if (centroid_ok) {
        delta.strategy = JoinStrategy::kCentroid;
      } else {
        // Try local-route: order literals so each is locatable when reached.
        std::unordered_set<SymbolId> bound;
        {
          std::vector<SymbolId> vars;
          rule.body[li].CollectVariables(&vars);
          bound.insert(vars.begin(), vars.end());
        }
        auto site_of = [&](size_t lj) -> std::optional<RouteStep> {
          const Literal& lit = rule.body[lj];
          const PredicatePlan& pp = plan.preds.at(lit.atom.predicate);
          if (pp.storage == StoragePolicy::kBroadcast ||
              pp.storage == StoragePolicy::kSpatial) {
            return RouteStep{lj, RouteStep::Where::kHere, 0};
          }
          if (pp.storage == StoragePolicy::kLocal && pp.home_arg) {
            const Term& arg = lit.atom.args[*pp.home_arg];
            bool arg_bound =
                (arg.is_constant() && arg.value().is_int()) ||
                (arg.is_variable() && bound.count(arg.var()) > 0);
            if (arg_bound) {
              return RouteStep{lj, RouteStep::Where::kAtArgNode,
                               *pp.home_arg};
            }
          }
          return std::nullopt;
        };

        std::vector<size_t> positives, negatives;
        for (size_t lj : readset) {
          (rule.body[lj].kind == Literal::Kind::kPositive ? positives
                                                          : negatives)
              .push_back(lj);
        }
        bool ok = true;
        std::vector<RouteStep> steps;
        std::vector<bool> placed(rule.body.size(), false);
        // Greedy: place any locatable positive (kHere first), rebinding.
        while (steps.size() < positives.size()) {
          std::optional<RouteStep> next;
          for (bool prefer_here : {true, false}) {
            for (size_t lj : positives) {
              if (placed[lj]) continue;
              std::optional<RouteStep> s = site_of(lj);
              if (!s) continue;
              if (prefer_here != (s->where == RouteStep::Where::kHere)) {
                continue;
              }
              next = s;
              break;
            }
            if (next) break;
          }
          if (!next) {
            ok = false;
            break;
          }
          placed[next->literal] = true;
          std::vector<SymbolId> vars;
          rule.body[next->literal].CollectVariables(&vars);
          bound.insert(vars.begin(), vars.end());
          steps.push_back(*next);
        }
        if (ok) {
          for (size_t lj : negatives) {
            std::optional<RouteStep> s = site_of(lj);
            if (!s) {
              ok = false;
              break;
            }
            steps.push_back(*s);
          }
        }
        if (ok) {
          delta.strategy = JoinStrategy::kLocalRoute;
          delta.steps = std::move(steps);
        } else {
          // Last resort: local storage everywhere -> serpentine sweep.
          bool serp_ok = true;
          for (size_t lj : readset) {
            StoragePolicy sp =
                plan.preds.at(rule.body[lj].atom.predicate).storage;
            if (sp != StoragePolicy::kLocal &&
                sp != StoragePolicy::kBroadcast) {
              serp_ok = false;
            }
          }
          if (!serp_ok) {
            return Status::Unimplemented(
                "no join strategy covers rule '" + rule.ToString() +
                "' for update " + rule.body[li].ToString() +
                ": mixed storage placements are not supported");
          }
          delta.strategy = JoinStrategy::kSerpentine;
          delta.multipass = options.multipass;
        }
      }

      if (delta.multipass) {
        for (size_t lj : readset) {
          if (rule.body[lj].kind == Literal::Kind::kPositive) {
            delta.pass_literals.push_back(lj);
          }
        }
        if (delta.pass_literals.empty()) delta.multipass = false;
      }

      size_t index = plan.deltas.size();
      plan.deltas.push_back(std::move(delta));
      plan.deltas_by_pred[rule.body[li].atom.predicate].push_back(index);
    }
  }
  return plan;
}

}  // namespace deduce
