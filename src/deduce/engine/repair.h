#ifndef DEDUCE_ENGINE_REPAIR_H_
#define DEDUCE_ENGINE_REPAIR_H_

#include <map>
#include <vector>

#include "deduce/engine/wire.h"

namespace deduce {

class NodeRuntime;

/// State-repair knobs (DESIGN.md §10). Both modes are off by default: a
/// default-constructed engine never sends a repair message and behaves
/// exactly as before.
///
/// Row replication makes any band member a full copy of the band's sweep
/// data, so a crash-rebooted node can re-seed its wiped replica store from
/// one alive peer (`enabled`), and adjacent band members can repair
/// divergence left by lost best-effort storage messages (`anti_entropy_
/// period`) — in both cases pulling only the replicas still inside their
/// §IV-B visibility lifetime.
struct RepairOptions {
  /// Reboot resync: OnRestart opens a digest exchange with the nearest
  /// alive same-band peer and pulls the still-visible replicas the crash
  /// erased. Until the exchange completes (or is abandoned) the node is
  /// *degraded* and sweep answers computed through it carry a degraded
  /// flag.
  bool enabled = false;

  /// > 0: each node periodically exchanges digests with its adjacent band
  /// neighbors — but only while its replica store keeps changing, so an
  /// idle network stays idle (and the simulation quiesces). 0 = off.
  SimTime anti_entropy_period = 0;

  /// A reboot resync is abandoned after this many attempts (attempt = no
  /// alive band peer found, or an exchange that timed out); the node then
  /// serves with whatever it has and drops the degraded flag.
  int max_resync_attempts = 3;

  /// Per-attempt resync timeout; -1 = auto from the link model's
  /// worst-case round trip to the chosen peer.
  SimTime resync_timeout = -1;

  bool any() const { return enabled || anti_entropy_period > 0; }
};

/// Per-node driver of the repair protocol, owned by (and a friend of) its
/// NodeRuntime. One exchange is: digest request -> digest reply -> compare
/// -> repair pull (with the requester's known set) -> repair push (always
/// sent; completes the requester's round) + an optional *reverse* pull when
/// the replier noticed requester-side surplus. A reverse pull is answered
/// with a push only, so every exchange terminates after at most three
/// message legs in each direction.
class RepairManager {
 public:
  explicit RepairManager(NodeRuntime* rt) : rt_(rt) {}

  /// True between a reboot and resync completion/abandonment: the local
  /// store may be missing replicas the band still holds.
  bool degraded() const { return degraded_; }

  // --- NodeRuntime hooks ---
  /// Reboot resync entry point (no-op unless RepairOptions::enabled).
  void OnRestart(NodeContext* ctx);
  /// Called when a storage message actually changed the replica store;
  /// arms the anti-entropy timer (no-op unless anti_entropy_period > 0).
  void OnReplicaActivity(NodeContext* ctx);

  // --- message handlers (dispatched by NodeRuntime) ---
  void HandleDigestRequest(NodeContext* ctx, const DigestRequestWire& req);
  void HandleDigestReply(NodeContext* ctx, const DigestReplyWire& reply);
  void HandleRepairPull(NodeContext* ctx, const RepairPullWire& pull);
  void HandleRepairPush(NodeContext* ctx, const RepairPushWire& push);

  /// Per-predicate digests of the replicas this node shares with `other`,
  /// in sorted predicate order (deterministic wire bytes). Public because
  /// the invariant suite reuses these fingerprints for its convergence
  /// check (invariants.h).
  std::vector<PredDigest> ComputeDigests(NodeId other, Timestamp now) const;

 private:
  /// A digest exchange this node initiated, keyed by round id.
  struct Exchange {
    NodeId peer = kNoNode;
    bool resync = false;  ///< Reboot resync (vs periodic anti-entropy).
    SimTime started = 0;
  };

  const RepairOptions& opts() const;

  /// True iff a replica of `pred` originating at `source` is stored at
  /// both `a` and `b` under the predicate's storage policy — the symmetric
  /// filter defining what two peers are expected to share.
  bool SharedReplica(SymbolId pred, NodeId source, NodeId a, NodeId b) const;
  /// §IV-B visibility-lifetime filter: false once the replica would have
  /// been garbage-collected (never for unwindowed predicates).
  bool WithinLifetime(SymbolId pred, Timestamp gen_ts, Timestamp now) const;
  /// The requester's still-visible shared state for `preds`, shipped with
  /// a pull so the replier can diff (and notice requester-side surplus).
  std::vector<RepairPullWire::Known> BuildKnown(
      const std::vector<SymbolId>& preds, NodeId other, Timestamp now) const;

  void StartResync(NodeContext* ctx);
  void AbandonResync();
  /// Opens a digest exchange with `peer`; arms the resync timeout when
  /// `resync` is set.
  void StartExchange(NodeContext* ctx, NodeId peer, bool resync);
  void FinishExchange(NodeContext* ctx, uint32_t round);
  void OnAntiEntropyTimer(NodeContext* ctx);
  /// Alive band members adjacent to this node in band x-order (<= 2).
  std::vector<NodeId> AdjacentBandPeers() const;
  /// Nearest alive same-band peer; kNoNode if none looks alive.
  NodeId PickResyncPeer() const;
  SimTime ResyncTimeout(NodeId peer) const;

  NodeRuntime* rt_;
  bool degraded_ = false;
  /// Monotonic exchange id. Never reset (like tx_seq_): stale replies and
  /// pushes from before a crash must not complete a new round.
  uint32_t round_ = 0;
  int resync_attempts_ = 0;
  SimTime resync_began_ = 0;
  std::map<uint32_t, Exchange> active_;
  // Anti-entropy dirt tracking: the timer re-arms only while activity_
  // advances past consumed_, so repair traffic stops when the store does.
  bool ae_armed_ = false;
  uint64_t activity_ = 0;
  uint64_t consumed_ = 0;
};

}  // namespace deduce

#endif  // DEDUCE_ENGINE_REPAIR_H_
