#include "deduce/engine/aggregation.h"

#include <algorithm>
#include <memory>

#include "deduce/eval/monoid.h"
#include "deduce/net/codec.h"

namespace deduce {

namespace {

constexpr uint16_t kPartialMsg = 200;

/// Partial state record (TAG): enough to merge any of the supported
/// aggregates.
struct PartialState {
  double sum = 0;
  int64_t count = 0;
  double min = 0;
  double max = 0;
  bool has_value = false;

  void Add(double v) {
    if (!has_value) {
      min = max = v;
      has_value = true;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    sum += v;
    ++count;
  }
  void Merge(const PartialState& o) {
    if (!o.has_value) return;
    if (!has_value) {
      *this = o;
      return;
    }
    sum += o.sum;
    count += o.count;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  /// Extraction delegates to the shared aggregate monoid (eval/monoid.h);
  /// the TAG record is its double-specialized instance, carrying both
  /// extrema so one wire format serves every kind.
  double Final(AggKind kind) const {
    if (!has_value) return 0;
    AggState s;
    s.count = count;
    s.sum = sum;
    s.sum_is_int = false;
    s.best = Term::Real(kind == AggKind::kMin ? min : max);
    return AggExtract(kind, s).value().AsNumber();
  }
};

struct Shared {
  TagAggregation::Options options;
  SinkTree tree;
  int max_depth = 0;
  std::function<std::optional<double>(NodeId, int)> reader;
  std::map<int, PartialState> root_results;
};

class TagApp : public NodeApp {
 public:
  TagApp(std::shared_ptr<Shared> shared, NodeId id)
      : shared_(std::move(shared)), id_(id) {}

  void Start(NodeContext* ctx) override {
    for (int e = 0; e < shared_->options.epochs; ++e) {
      ctx->SetTimer(SendTime(e), e);
    }
  }

  void OnMessage(NodeContext* ctx, const Message& msg) override {
    (void)ctx;
    if (msg.type != kPartialMsg) return;
    PayloadReader r(msg.payload);
    auto epoch = r.ReadInt();
    auto sum = r.ReadDouble();
    auto count = r.ReadInt();
    auto mn = r.ReadDouble();
    auto mx = r.ReadDouble();
    if (!epoch.ok() || !sum.ok() || !count.ok() || !mn.ok() || !mx.ok()) {
      return;
    }
    PartialState p;
    p.sum = *sum;
    p.count = *count;
    p.min = *mn;
    p.max = *mx;
    p.has_value = *count > 0;
    pending_[static_cast<int>(*epoch)].Merge(p);
  }

  void OnTimer(NodeContext* ctx, int epoch) override {
    // Slot fired: fold in the local reading and push one partial upward.
    PartialState& state = pending_[epoch];
    std::optional<double> reading = shared_->reader(id_, epoch);
    if (reading.has_value()) state.Add(*reading);

    if (id_ == shared_->tree.root) {
      shared_->root_results[epoch] = state;
      return;
    }
    PayloadWriter w;
    w.WriteInt(epoch);
    w.WriteDouble(state.sum);
    w.WriteInt(state.count);
    w.WriteDouble(state.min);
    w.WriteDouble(state.max);
    Message m;
    m.type = kPartialMsg;
    m.payload = w.Take();
    ctx->Send(shared_->tree.parent[static_cast<size_t>(id_)], m);
  }

 private:
  /// Depth-slotted schedule: deeper nodes report earlier in the epoch.
  SimTime SendTime(int epoch) const {
    int depth = shared_->tree.depth[static_cast<size_t>(id_)];
    SimTime slot = shared_->options.epoch /
                   static_cast<SimTime>(shared_->max_depth + 2);
    return static_cast<SimTime>(epoch) * shared_->options.epoch +
           static_cast<SimTime>(shared_->max_depth - depth + 1) * slot;
  }

  std::shared_ptr<Shared> shared_;
  NodeId id_;
  std::map<int, PartialState> pending_;
};

}  // namespace

std::vector<TagAggregation::EpochResult> TagAggregation::Run(
    Network* network, const Options& options,
    const std::function<std::optional<double>(NodeId, int)>& reader) {
  auto shared = std::make_shared<Shared>();
  shared->options = options;
  shared->tree = SinkTree::Build(network->topology(), options.root);
  for (int d : shared->tree.depth) shared->max_depth = std::max(shared->max_depth, d);
  shared->reader = reader;

  for (int i = 0; i < network->node_count(); ++i) {
    network->SetApp(i, std::make_unique<TagApp>(shared, i));
  }
  network->Start();
  network->sim().Run();

  std::vector<EpochResult> out;
  for (const auto& [epoch, state] : shared->root_results) {
    EpochResult r;
    r.epoch = epoch;
    r.value = state.Final(options.kind);
    r.count = state.count;
    out.push_back(r);
  }
  return out;
}

}  // namespace deduce
