#include "deduce/engine/observe.h"

#include "deduce/engine/wire.h"

namespace deduce {

namespace {

std::string HeadPredName(const QueryPlan& plan, size_t rule_index) {
  const auto& rules = plan.program.rules();
  if (rule_index >= rules.size()) return "";
  return SymbolName(rules[rule_index].head.predicate);
}

}  // namespace

void AttributeEngineMessage(const QueryPlan& plan, const Message& msg,
                            std::string* phase, std::string* pred,
                            uint64_t* seq) {
  switch (msg.type) {
    case kStoreMsg: {
      *phase = "store";
      StatusOr<StoreWire> w = StoreWire::Decode(msg);
      if (w.ok()) *pred = SymbolName(w->pred);
      return;
    }
    case kJoinPassMsg: {
      *phase = "sweep";
      StatusOr<JoinPassWire> w = JoinPassWire::Decode(msg);
      if (w.ok() && w->delta_index < plan.deltas.size()) {
        *pred = HeadPredName(plan, plan.deltas[w->delta_index].rule_index);
      }
      return;
    }
    case kResultMsg: {
      *phase = "result";
      StatusOr<ResultWire> w = ResultWire::Decode(msg);
      if (w.ok()) *pred = SymbolName(w->pred);
      return;
    }
    case kAggMsg: {
      *phase = "agg";
      StatusOr<AggWire> w = AggWire::Decode(msg);
      if (w.ok() && w->plan_index < plan.aggregates.size()) {
        *pred = HeadPredName(plan, plan.aggregates[w->plan_index].rule_index);
      }
      return;
    }
    case kAckMsg:
      *phase = "ack";
      return;
    case kDigestRequestMsg:
    case kDigestReplyMsg:
    case kRepairPullMsg:
    case kRepairPushMsg:
      *phase = "repair";
      return;
    case kReliableMsg: {
      StatusOr<ReliableWire> w = ReliableWire::Decode(msg);
      if (!w.ok()) {
        *phase = "other";
        return;
      }
      *seq = w->seq;
      Message inner;
      inner.src = w->origin;
      inner.dst = w->final_target;
      inner.type = w->inner_type;
      inner.payload = std::move(w->inner_payload);
      // Nested envelopes are a protocol fault; one level is all there is.
      if (inner.type == kReliableMsg) {
        *phase = "other";
        return;
      }
      uint64_t inner_seq = 0;
      AttributeEngineMessage(plan, inner, phase, pred, &inner_seq);
      return;
    }
    default:
      *phase = "other";
      return;
  }
}

void InstallEngineObservability(Network* network, const QueryPlan* plan,
                                MetricsRegistry* metrics, TraceWriter* trace,
                                bool provenance) {
  if (metrics == nullptr && (trace == nullptr || !trace->on())) return;
  network->AddTraceSink([plan, metrics, trace,
                         provenance](const TraceEvent& ev) {
    std::string phase = "other";
    std::string pred;
    uint64_t seq = 0;
    if (ev.msg != nullptr) {
      AttributeEngineMessage(*plan, *ev.msg, &phase, &pred, &seq);
    }
    uint64_t attempts = ev.attempts > 0 ? static_cast<uint64_t>(ev.attempts)
                                        : 1;
    if (metrics != nullptr && metrics->enabled()) {
      metrics->Add(ev.src, "traffic", "msgs_" + phase, attempts);
      metrics->Add(ev.src, "traffic", "bytes_" + phase, attempts * ev.bytes);
      if (!pred.empty()) {
        metrics->Add(-1, "pred", pred + ".messages", attempts);
        metrics->Add(-1, "pred", pred + ".bytes", attempts * ev.bytes);
        if (provenance) {
          metrics->Observe(-1, "prov", pred + ".hop_bytes",
                           static_cast<int64_t>(attempts * ev.bytes));
        }
      }
    }
    if (trace != nullptr && trace->on()) {
      TraceRecord r;
      r.time = ev.time;
      r.node = ev.src;
      r.kind = "hop";
      r.phase = phase;
      r.pred = pred;
      r.src = ev.src;
      r.dst = ev.dst;
      r.bytes = ev.bytes;
      r.seq = seq;
      r.attempts = ev.attempts;
      r.delivered = ev.delivered;
      if (provenance && ev.msg != nullptr) {
        r.tids = CollectTraceIds(*ev.msg);
        if (!r.tids.empty()) r.schema = 2;
      }
      trace->Emit(r);
    }
  });
}

}  // namespace deduce
