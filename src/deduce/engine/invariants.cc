#include "deduce/engine/invariants.h"

#include <algorithm>
#include <string>
#include <vector>

#include "deduce/common/strings.h"
#include "deduce/datalog/symbol.h"

namespace deduce {

namespace {

/// Appends `lines` to the report sorted, keeping the overall listing
/// deterministic regardless of home-store iteration order.
void AppendSorted(std::vector<std::string> lines, InvariantReport* report) {
  std::sort(lines.begin(), lines.end());
  report->violations.insert(report->violations.end(), lines.begin(),
                            lines.end());
}

void CheckSoundness(const DistributedEngine& engine, const Database& oracle,
                    InvariantReport* report) {
  std::vector<std::string> bad;
  Database got = engine.ResultDatabase();
  for (SymbolId pred : got.Predicates()) {
    for (const Fact& f : got.Relation(pred)) {
      if (!oracle.Contains(f)) {
        bad.push_back("soundness: phantom result " + f.ToString() +
                      " (not derivable by the fault-free oracle)");
      }
    }
  }
  AppendSorted(std::move(bad), report);
  report->soundness_checked = true;
}

void CheckShedSoundness(const DistributedEngine& engine,
                        const Database& oracle, InvariantReport* report) {
  // Shedding's contract: dropped work may lose results or leave them
  // flagged degraded — but any result still *reported complete* must be
  // one the fault-free oracle derives. Degraded phantoms are the honest
  // outcome of partial evaluation; undegraded ones mean a shed path
  // forgot to taint its descendants.
  std::vector<std::string> bad;
  Database got = engine.UndegradedResultDatabase();
  for (SymbolId pred : got.Predicates()) {
    for (const Fact& f : got.Relation(pred)) {
      if (!oracle.Contains(f)) {
        bad.push_back("shed-soundness: undegraded result " + f.ToString() +
                      " not derivable by the fault-free oracle (derived "
                      "from shed state but reported complete)");
      }
    }
  }
  AppendSorted(std::move(bad), report);
  report->shed_soundness_checked = true;
}

void CheckConvergence(const DistributedEngine& engine,
                      InvariantReport* report) {
  const Network* net = engine.network();
  Timestamp now = net->now();
  int n = net->topology().node_count();
  std::vector<std::string> bad;
  for (NodeId a = 0; a < n; ++a) {
    if (net->IsFailed(a) || engine.runtime(a).degraded()) continue;
    for (NodeId b = a + 1; b < n; ++b) {
      if (net->IsFailed(b) || engine.runtime(b).degraded()) continue;
      std::vector<PredDigest> da = engine.runtime(a).ShareableDigests(b, now);
      std::vector<PredDigest> db = engine.runtime(b).ShareableDigests(a, now);
      size_t i = 0, j = 0;
      while (i < da.size() || j < db.size()) {
        if (i < da.size() && j < db.size() && da[i].pred == db[j].pred) {
          if (da[i].count != db[j].count ||
              da[i].fingerprint != db[j].fingerprint) {
            bad.push_back(StrFormat(
                "convergence: nodes %d/%d disagree on %s (count %llu vs "
                "%llu, fingerprint %llx vs %llx)",
                a, b, SymbolName(da[i].pred).c_str(),
                static_cast<unsigned long long>(da[i].count),
                static_cast<unsigned long long>(db[j].count),
                static_cast<unsigned long long>(da[i].fingerprint),
                static_cast<unsigned long long>(db[j].fingerprint)));
          }
          ++i;
          ++j;
          continue;
        }
        // Digest lists are in sorted predicate order; a predicate present
        // on one side only is a disagreement too (one side holds
        // shareable replicas the other lacks entirely).
        bool a_first =
            j >= db.size() || (i < da.size() && da[i].pred < db[j].pred);
        const PredDigest& d = a_first ? da[i] : db[j];
        bad.push_back(StrFormat(
            "convergence: nodes %d/%d disagree on %s (only node %d holds "
            "shareable replicas)",
            a, b, SymbolName(d.pred).c_str(), a_first ? a : b));
        if (a_first) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  AppendSorted(std::move(bad), report);
  report->convergence_checked = true;
}

void CheckDedup(const DistributedEngine& engine, InvariantReport* report) {
  const EngineStats& stats = engine.stats();
  if (engine.network()->stats().nodes_failed > 0) {
    // A reboot erases home entries without a deletion generation, so the
    // counting identity cannot hold; crash scenarios are covered by the
    // soundness and convergence checks instead.
    return;
  }
  std::vector<std::string> bad;
  int n = engine.network()->topology().node_count();
  uint64_t alive = 0;
  for (NodeId node = 0; node < n; ++node) {
    const NodeRuntime& rt = engine.runtime(node);
    for (SymbolId pred : engine.plan().analysis.predicates) {
      if (!engine.plan().analysis.idb.count(pred)) continue;
      for (const Fact& f : rt.HomeFacts(pred)) {
        ++alive;
        if (!rt.OwnsHome(f)) {
          bad.push_back(StrFormat(
              "dedup: result %s stored at node %d, which is not its home",
              f.ToString().c_str(), node));
        }
      }
    }
  }
  uint64_t expected = stats.derived_generations - stats.derived_deletions;
  if (alive != expected) {
    bad.push_back(StrFormat(
        "dedup: %llu alive home facts but %llu generations - %llu "
        "deletions (a result was generated twice or lost untracked)",
        static_cast<unsigned long long>(alive),
        static_cast<unsigned long long>(stats.derived_generations),
        static_cast<unsigned long long>(stats.derived_deletions)));
  }
  AppendSorted(std::move(bad), report);
  report->dedup_checked = true;
}

}  // namespace

InvariantReport CheckInvariants(const DistributedEngine& engine,
                                const InvariantOptions& options) {
  InvariantReport report;
  if (options.oracle != nullptr) {
    if (options.shed_tolerant) {
      CheckShedSoundness(engine, *options.oracle, &report);
    } else {
      CheckSoundness(engine, *options.oracle, &report);
    }
  }
  if (options.check_convergence) CheckConvergence(engine, &report);
  if (options.check_dedup) CheckDedup(engine, &report);
  if (options.check_engine_errors) {
    std::vector<std::string> bad;
    for (const std::string& e : engine.stats().errors) {
      bad.push_back("engine-error: " + e);
    }
    AppendSorted(std::move(bad), &report);
  }
  return report;
}

std::vector<std::string> CheckDiffSoundness(const ChangeExplanation& diff,
                                            const Database& base_oracle,
                                            const Database& perturbed_oracle) {
  std::vector<std::string> bad;
  for (const DiffEntry& e : diff.vanished) {
    if (!base_oracle.Contains(e.fact)) {
      bad.push_back("diff-soundness: vanished tuple " + e.fact_text +
                    " not derivable by the base oracle");
    }
  }
  for (const DiffEntry& e : diff.appeared) {
    if (!perturbed_oracle.Contains(e.fact)) {
      bad.push_back("diff-soundness: appeared tuple " + e.fact_text +
                    " not derivable by the perturbed oracle");
    }
  }
  std::sort(bad.begin(), bad.end());
  return bad;
}

std::string InvariantReport::ToString() const {
  if (ok()) {
    std::string which;
    if (soundness_checked) which += " soundness";
    if (shed_soundness_checked) which += " shed-soundness";
    if (convergence_checked) which += " convergence";
    if (dedup_checked) which += " dedup";
    if (which.empty()) which = " (none)";
    return "invariants: OK —" + which;
  }
  std::string out =
      StrFormat("invariants: %zu violation(s)", violations.size());
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  return out;
}

}  // namespace deduce
