#ifndef DEDUCE_ROUTING_ROUTING_H_
#define DEDUCE_ROUTING_ROUTING_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "deduce/net/topology.h"

namespace deduce {

/// Hop-by-hop routing over a topology.
///
/// Primary strategy is greedy geographic forwarding (each hop moves strictly
/// closer to the destination's location), which is what the paper's setting
/// assumes for grid networks — on a grid it degenerates to dimension-order
/// routing. When greedy forwarding hits a local minimum (possible on random
/// topologies), it falls back to a precomputed shortest-path next-hop — the
/// stand-in for a full GPSR perimeter mode (see DESIGN.md §2).
///
/// All computations are deterministic (ties broken by lower node id).
class RoutingTable {
 public:
  /// `topology` must outlive the table.
  explicit RoutingTable(const Topology* topology);

  /// Next hop from `from` toward `dest`; kNoNode if unreachable or already
  /// there.
  NodeId NextHop(NodeId from, NodeId dest) const;

  /// Greedy-geographic next hop with shortest-path fallback.
  NodeId GeoNextHop(NodeId from, NodeId dest) const;

  /// Failure-aware next hop: like GeoNextHop, but routes only over nodes
  /// not marked in `avoid`. `dest` is never treated as avoided (a sender
  /// may legitimately target a node it merely suspects); callers whose
  /// `from` is itself marked should expect kNoNode and fall back to
  /// GeoNextHop. Returns kNoNode when every live path is cut. When
  /// `cache_version` > 0, the BFS for `dest` is cached and reused as long
  /// as callers pass the same version (bump it whenever `avoid` changes);
  /// version 0 always recomputes.
  NodeId NextHopAvoiding(NodeId from, NodeId dest,
                         const std::vector<char>& avoid,
                         uint64_t cache_version = 0) const;

  /// Hop distance (BFS); -1 if unreachable.
  int HopDistance(NodeId from, NodeId dest) const;

  /// The full hop sequence from -> ... -> dest (excluding `from`); empty if
  /// unreachable or from == dest.
  std::vector<NodeId> Route(NodeId from, NodeId dest) const;

 private:
  /// BFS tree toward `dest`: parent[v] = next hop from v toward dest.
  struct DestInfo {
    std::vector<NodeId> next_hop;
    std::vector<int> dist;
  };
  const DestInfo& InfoFor(NodeId dest) const;

  const Topology* topology_;
  mutable std::unordered_map<NodeId, std::unique_ptr<DestInfo>> cache_;
  /// Avoid-aware BFS results, keyed by dest and tagged with the liveness
  /// version they were computed under.
  struct AvoidInfo {
    uint64_t version = 0;
    DestInfo info;
  };
  mutable std::unordered_map<NodeId, AvoidInfo> avoid_cache_;
};

/// BFS spanning tree rooted at a sink: parent pointers and depths. Used by
/// the centralized (external-server) baseline, converge-cast aggregation
/// (TAG-style), and the procedural SPT baseline's expected output.
struct SinkTree {
  NodeId root = 0;
  std::vector<NodeId> parent;  ///< parent[root] == root.
  std::vector<int> depth;      ///< depth[root] == 0; -1 if unreachable.

  static SinkTree Build(const Topology& topology, NodeId root);

  /// Children lists (derived from parents).
  std::vector<std::vector<NodeId>> Children() const;
};

}  // namespace deduce

#endif  // DEDUCE_ROUTING_ROUTING_H_
