#ifndef DEDUCE_ROUTING_GEO_HASH_H_
#define DEDUCE_ROUTING_GEO_HASH_H_

#include "deduce/datalog/fact.h"
#include "deduce/net/topology.h"

namespace deduce {

/// Geographic hashing of tuples to home nodes (§III-B: "we can use
/// well-known geographic hashing schemes").
///
/// A fact's content hash is mapped to a virtual coordinate inside the
/// network's bounding box; the node closest to that coordinate is the
/// tuple's home. Identical tuples hash to the same home everywhere, which
/// is what makes derived tables into deduplicated derived streams.
class GeoHash {
 public:
  /// `topology` must outlive the hasher.
  explicit GeoHash(const Topology* topology);

  /// Home node of a fact (content-addressed: same fact -> same home).
  NodeId HomeNode(const Fact& fact) const;

  /// Home node for a raw 64-bit key.
  NodeId HomeForKey(uint64_t key) const;

  /// Deterministic content hash of a fact (stable across processes: based
  /// on the printed form, not on interning order).
  static uint64_t StableFactHash(const Fact& fact);

 private:
  const Topology* topology_;
  double min_x_, min_y_, width_, height_;
};

}  // namespace deduce

#endif  // DEDUCE_ROUTING_GEO_HASH_H_
