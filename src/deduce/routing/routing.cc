#include "deduce/routing/routing.h"

#include <queue>

#include "deduce/common/logging.h"

namespace deduce {

RoutingTable::RoutingTable(const Topology* topology) : topology_(topology) {}

const RoutingTable::DestInfo& RoutingTable::InfoFor(NodeId dest) const {
  auto it = cache_.find(dest);
  if (it != cache_.end()) return *it->second;

  auto info = std::make_unique<DestInfo>();
  size_t n = static_cast<size_t>(topology_->node_count());
  info->next_hop.assign(n, kNoNode);
  info->dist.assign(n, -1);
  // BFS outward from dest; neighbors are sorted by id, so next hops are
  // deterministic.
  std::queue<NodeId> q;
  info->dist[static_cast<size_t>(dest)] = 0;
  info->next_hop[static_cast<size_t>(dest)] = dest;
  q.push(dest);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (NodeId v : topology_->neighbors(u)) {
      if (info->dist[static_cast<size_t>(v)] == -1) {
        info->dist[static_cast<size_t>(v)] =
            info->dist[static_cast<size_t>(u)] + 1;
        info->next_hop[static_cast<size_t>(v)] = u;
        q.push(v);
      }
    }
  }
  const DestInfo& ref = *info;
  cache_.emplace(dest, std::move(info));
  return ref;
}

NodeId RoutingTable::NextHop(NodeId from, NodeId dest) const {
  if (from == dest) return kNoNode;
  const DestInfo& info = InfoFor(dest);
  return info.next_hop[static_cast<size_t>(from)];
}

NodeId RoutingTable::GeoNextHop(NodeId from, NodeId dest) const {
  if (from == dest) return kNoNode;
  // Among neighbors that make hop progress (so delivery is guaranteed —
  // alternating pure greedy with a fallback can livelock around a void),
  // prefer the one geographically closest to the destination. This is the
  // GPSR stand-in documented in DESIGN.md §2.
  const DestInfo& info = InfoFor(dest);
  int here = info.dist[static_cast<size_t>(from)];
  if (here <= 0) return kNoNode;
  const Location& target = topology_->location(dest);
  NodeId best = kNoNode;
  double best_d = 0;
  for (NodeId v : topology_->neighbors(from)) {
    if (info.dist[static_cast<size_t>(v)] != here - 1) continue;
    double d = topology_->location(v).DistanceTo(target);
    if (best == kNoNode || d < best_d - 1e-12) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

NodeId RoutingTable::NextHopAvoiding(NodeId from, NodeId dest,
                                     const std::vector<char>& avoid,
                                     uint64_t cache_version) const {
  if (from == dest) return kNoNode;
  auto avoided = [&](NodeId v) {
    if (v == from || v == dest) return false;
    size_t i = static_cast<size_t>(v);
    return i < avoid.size() && avoid[i] != 0;
  };
  const DestInfo* info = nullptr;
  AvoidInfo* slot = nullptr;
  if (cache_version > 0) {
    slot = &avoid_cache_[dest];
    if (slot->version == cache_version) info = &slot->info;
  }
  DestInfo fresh;
  if (info == nullptr) {
    // BFS outward from dest over non-avoided nodes only. `dest` is always
    // expanded (a message may legitimately target a node the sender merely
    // suspects is down); `from` is handled by the neighbor scan below.
    size_t n = static_cast<size_t>(topology_->node_count());
    fresh.next_hop.assign(n, kNoNode);
    fresh.dist.assign(n, -1);
    std::queue<NodeId> q;
    fresh.dist[static_cast<size_t>(dest)] = 0;
    fresh.next_hop[static_cast<size_t>(dest)] = dest;
    q.push(dest);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      for (NodeId v : topology_->neighbors(u)) {
        size_t vi = static_cast<size_t>(v);
        if (fresh.dist[vi] != -1) continue;
        if (v != dest && vi < avoid.size() && avoid[vi] != 0) continue;
        fresh.dist[vi] = fresh.dist[static_cast<size_t>(u)] + 1;
        fresh.next_hop[vi] = u;
        q.push(v);
      }
    }
    if (slot != nullptr) {
      slot->version = cache_version;
      slot->info = std::move(fresh);
      info = &slot->info;
    } else {
      info = &fresh;
    }
  }
  int here = info->dist[static_cast<size_t>(from)];
  if (here <= 0) return kNoNode;
  const Location& target = topology_->location(dest);
  NodeId best = kNoNode;
  double best_d = 0;
  for (NodeId v : topology_->neighbors(from)) {
    if (avoided(v)) continue;
    if (info->dist[static_cast<size_t>(v)] != here - 1) continue;
    double d = topology_->location(v).DistanceTo(target);
    if (best == kNoNode || d < best_d - 1e-12) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

int RoutingTable::HopDistance(NodeId from, NodeId dest) const {
  if (from == dest) return 0;
  return InfoFor(dest).dist[static_cast<size_t>(from)];
}

std::vector<NodeId> RoutingTable::Route(NodeId from, NodeId dest) const {
  std::vector<NodeId> out;
  if (from == dest) return out;
  NodeId cur = from;
  int guard = topology_->node_count() + 1;
  while (cur != dest && guard-- > 0) {
    NodeId next = NextHop(cur, dest);
    if (next == kNoNode) return {};
    out.push_back(next);
    cur = next;
  }
  DEDUCE_CHECK(cur == dest) << "routing loop from " << from << " to " << dest;
  return out;
}

SinkTree SinkTree::Build(const Topology& topology, NodeId root) {
  SinkTree tree;
  tree.root = root;
  size_t n = static_cast<size_t>(topology.node_count());
  tree.parent.assign(n, kNoNode);
  tree.depth.assign(n, -1);
  std::queue<NodeId> q;
  tree.parent[static_cast<size_t>(root)] = root;
  tree.depth[static_cast<size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (NodeId v : topology.neighbors(u)) {
      if (tree.depth[static_cast<size_t>(v)] == -1) {
        tree.depth[static_cast<size_t>(v)] =
            tree.depth[static_cast<size_t>(u)] + 1;
        tree.parent[static_cast<size_t>(v)] = u;
        q.push(v);
      }
    }
  }
  return tree;
}

std::vector<std::vector<NodeId>> SinkTree::Children() const {
  std::vector<std::vector<NodeId>> children(parent.size());
  for (size_t v = 0; v < parent.size(); ++v) {
    NodeId p = parent[v];
    if (p == kNoNode || static_cast<size_t>(p) == v) continue;
    children[static_cast<size_t>(p)].push_back(static_cast<NodeId>(v));
  }
  return children;
}

}  // namespace deduce
