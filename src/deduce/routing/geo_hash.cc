#include "deduce/routing/geo_hash.h"

#include <algorithm>

#include "deduce/common/hash.h"

namespace deduce {

GeoHash::GeoHash(const Topology* topology) : topology_(topology) {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;
  for (int i = 0; i < topology_->node_count(); ++i) {
    const Location& l = topology_->location(i);
    if (i == 0) {
      min_x = max_x = l.x;
      min_y = max_y = l.y;
    } else {
      min_x = std::min(min_x, l.x);
      max_x = std::max(max_x, l.x);
      min_y = std::min(min_y, l.y);
      max_y = std::max(max_y, l.y);
    }
  }
  min_x_ = min_x;
  min_y_ = min_y;
  width_ = std::max(max_x - min_x, 1e-9);
  height_ = std::max(max_y - min_y, 1e-9);
}

uint64_t GeoHash::StableFactHash(const Fact& fact) {
  // Memoized on the fact's shared rep: interned facts stringify once.
  return fact.StableHash();
}

NodeId GeoHash::HomeForKey(uint64_t key) const {
  uint64_t kx = Mix64(key);
  uint64_t ky = Mix64(key ^ 0x5851f42d4c957f2dULL);
  double fx = static_cast<double>(kx >> 11) /
              static_cast<double>(1ULL << 53);
  double fy = static_cast<double>(ky >> 11) /
              static_cast<double>(1ULL << 53);
  return topology_->ClosestNode(min_x_ + fx * width_, min_y_ + fy * height_);
}

NodeId GeoHash::HomeNode(const Fact& fact) const {
  return HomeForKey(StableFactHash(fact));
}

}  // namespace deduce
