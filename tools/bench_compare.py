#!/usr/bin/env python3
"""Perf-regression gate for the bench-smoke CI job.

Subcommands:

  identical A.json B.json
      Byte-compare two BENCH_<name>.json reports (e.g. --threads 1 vs
      --threads 4 runs of the same bench). The reports are deterministic
      by construction, so any difference is a parallelism bug; on mismatch
      the first differing run/counter is printed.

  baseline check --bench NAME --report BENCH.json --wall SECONDS \
                 [--baseline bench/baseline.json] [--tolerance 0.25]
      Compare a run's counters against the committed baseline (exact
      match: simulation counters are machine-independent), its per-run
      simulated energy (fail when outside baseline * (1 +/-
      energy-tolerance); energy is a float, so it gets the relative-
      tolerance machinery rather than the exact diff), and its wall
      time (fail when > baseline * (1 + tolerance)). Wall-time checking
      is skipped when DEDUCE_BENCH_SKIP_WALLTIME is set or the baseline
      has no wall time recorded; energy checking is skipped for baseline
      entries recorded before energy_uj was captured.

  baseline update --bench NAME --report BENCH.json --wall SECONDS \
                  [--baseline bench/baseline.json]
      Rewrite the baseline entry for NAME from this run. Use after an
      intentional behaviour change, then commit the result.

  perf check --bench NAME --perf BENCH.perf.json \
             [--baseline bench/baseline.json] [--rss-tolerance 0.35] \
             [--wall-tolerance 0.5]
      Gate a bench's machine-dependent sidecar (peak_rss_bytes and
      per-point wall_time_s, e.g. BENCH_bench_scale.perf.json) against
      the committed baseline with relative tolerances. Peak RSS fails
      when above baseline * (1 + rss-tolerance); each point's wall time
      fails when above its baseline * (1 + wall-tolerance). Wall-time
      points are skipped under DEDUCE_BENCH_SKIP_WALLTIME; RSS under
      DEDUCE_BENCH_SKIP_RSS.

  perf update --bench NAME --perf BENCH.perf.json \
              [--baseline bench/baseline.json]
      Rewrite the baseline "perf" entry for NAME from this sidecar.

  speedup BENCH_bench_micro.json [--min-ratio 1.5]
      Check the calendar-queue simulator's event-loop throughput against
      the in-binary heap baseline (google-benchmark JSON output). The
      ratio is within one binary on one machine, so it is
      machine-independent.
"""

import argparse
import json
import os
import sys

# Counters from each report run that are deterministic and cheap to diff.
RUN_COUNTERS = [
    "total_messages",
    "total_bytes",
    "max_node_messages",
    "quiesce_time_us",
    "result_count",
    "total_replicas",
    "total_derivations",
    "errors",
]

# Float run metrics gated with a relative tolerance instead of an exact
# diff (the report prints them rounded, and a radio-model tweak shifts them
# slightly without being a regression).
RUN_FLOAT_METRICS = ["energy_uj"]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def cmd_identical(args):
    with open(args.a, "rb") as f:
        a_bytes = f.read()
    with open(args.b, "rb") as f:
        b_bytes = f.read()
    if a_bytes == b_bytes:
        print(f"OK: {args.a} and {args.b} are byte-identical")
        return 0
    # Not identical: parse both and point at the first difference.
    a, b = load(args.a), load(args.b)
    a_runs, b_runs = a.get("runs", []), b.get("runs", [])
    if len(a_runs) != len(b_runs):
        print(
            f"FAIL: run count differs: {len(a_runs)} vs {len(b_runs)}",
            file=sys.stderr,
        )
        return 1
    for i, (ra, rb) in enumerate(zip(a_runs, b_runs)):
        for key in sorted(set(ra) | set(rb)):
            if ra.get(key) != rb.get(key):
                print(
                    f"FAIL: run {i} field {key!r} differs:\n"
                    f"  {args.a}: {ra.get(key)!r}\n"
                    f"  {args.b}: {rb.get(key)!r}",
                    file=sys.stderr,
                )
                return 1
    print(
        "FAIL: reports differ outside the runs array "
        "(bench name or formatting)",
        file=sys.stderr,
    )
    return 1


def report_counters(report):
    return [
        {k: run.get(k) for k in RUN_COUNTERS + RUN_FLOAT_METRICS}
        for run in report.get("runs", [])
    ]


def cmd_baseline(args):
    baseline = {}
    if os.path.exists(args.baseline):
        baseline = load(args.baseline)
    benches = baseline.setdefault("benches", {})
    report = load(args.report)
    counters = report_counters(report)

    if args.action == "update":
        benches[args.bench] = {
            "wall_time_s": round(args.wall, 3) if args.wall else None,
            "runs": counters,
        }
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"updated {args.baseline} entry for {args.bench}")
        return 0

    entry = benches.get(args.bench)
    if entry is None:
        sys.exit(
            f"bench_compare: no baseline entry for {args.bench!r}; run "
            f"'baseline update' and commit {args.baseline}"
        )
    failures = 0
    expected = entry.get("runs", [])
    if len(expected) != len(counters):
        print(
            f"FAIL: {args.bench}: baseline has {len(expected)} runs, "
            f"report has {len(counters)}",
            file=sys.stderr,
        )
        failures += 1
    else:
        for i, (want, got) in enumerate(zip(expected, counters)):
            for key in RUN_COUNTERS:
                if want.get(key) != got.get(key):
                    print(
                        f"FAIL: {args.bench}: run {i} counter {key!r}: "
                        f"baseline {want.get(key)!r} != current "
                        f"{got.get(key)!r}",
                        file=sys.stderr,
                    )
                    failures += 1
            for key in RUN_FLOAT_METRICS:
                base_v, cur_v = want.get(key), got.get(key)
                if base_v is None:
                    continue  # pre-energy baseline entry: nothing to gate
                if cur_v is None:
                    print(
                        f"FAIL: {args.bench}: run {i} metric {key!r} missing "
                        f"from the report (baseline {base_v!r})",
                        file=sys.stderr,
                    )
                    failures += 1
                    continue
                limit = abs(base_v) * args.energy_tolerance
                if abs(cur_v - base_v) > limit:
                    print(
                        f"FAIL: {args.bench}: run {i} metric {key!r}: "
                        f"current {cur_v} deviates from baseline {base_v} "
                        f"by more than {args.energy_tolerance:.0%}",
                        file=sys.stderr,
                    )
                    failures += 1
    wall_base = entry.get("wall_time_s")
    if os.environ.get("DEDUCE_BENCH_SKIP_WALLTIME"):
        print(f"{args.bench}: wall-time check skipped (env)")
    elif wall_base is None or args.wall is None:
        print(f"{args.bench}: wall-time check skipped (no baseline)")
    else:
        limit = wall_base * (1.0 + args.tolerance)
        if args.wall > limit:
            print(
                f"FAIL: {args.bench}: wall time {args.wall:.2f}s exceeds "
                f"baseline {wall_base:.2f}s by more than "
                f"{args.tolerance:.0%} (limit {limit:.2f}s)",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"{args.bench}: wall time {args.wall:.2f}s within "
                f"{args.tolerance:.0%} of baseline {wall_base:.2f}s"
            )
    if failures == 0:
        print(f"OK: {args.bench}: {len(counters)} runs match the baseline")
    return 1 if failures else 0


def cmd_perf(args):
    baseline = {}
    if os.path.exists(args.baseline):
        baseline = load(args.baseline)
    benches = baseline.setdefault("benches", {})
    sidecar = load(args.perf)
    peak = sidecar.get("peak_rss_bytes")
    points = sidecar.get("points", [])

    if args.action == "update":
        entry = benches.setdefault(args.bench, {})
        entry["perf"] = {
            "peak_rss_bytes": peak,
            "points": [
                {
                    "label": p.get("label"),
                    "wall_time_s": p.get("wall_time_s"),
                }
                for p in points
            ],
        }
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"updated {args.baseline} perf entry for {args.bench}")
        return 0

    entry = benches.get(args.bench, {}).get("perf")
    if entry is None:
        sys.exit(
            f"bench_compare: no perf baseline for {args.bench!r}; run "
            f"'perf update' and commit {args.baseline}"
        )
    failures = 0
    base_peak = entry.get("peak_rss_bytes")
    if os.environ.get("DEDUCE_BENCH_SKIP_RSS"):
        print(f"{args.bench}: peak-RSS check skipped (env)")
    elif base_peak is None or peak is None:
        print(f"{args.bench}: peak-RSS check skipped (no baseline)")
    else:
        limit = base_peak * (1.0 + args.rss_tolerance)
        if peak > limit:
            print(
                f"FAIL: {args.bench}: peak RSS {peak / 2**20:.1f} MiB "
                f"exceeds baseline {base_peak / 2**20:.1f} MiB by more "
                f"than {args.rss_tolerance:.0%}",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"{args.bench}: peak RSS {peak / 2**20:.1f} MiB within "
                f"{args.rss_tolerance:.0%} of baseline "
                f"{base_peak / 2**20:.1f} MiB"
            )
    base_points = {p.get("label"): p for p in entry.get("points", [])}
    if os.environ.get("DEDUCE_BENCH_SKIP_WALLTIME"):
        print(f"{args.bench}: wall-time points skipped (env)")
    else:
        for p in points:
            base = base_points.get(p.get("label"))
            if base is None or base.get("wall_time_s") is None:
                continue
            wall, base_wall = p.get("wall_time_s"), base["wall_time_s"]
            limit = base_wall * (1.0 + args.wall_tolerance)
            if wall is None or wall > limit:
                print(
                    f"FAIL: {args.bench}: point {p.get('label')!r} wall "
                    f"time {wall}s exceeds baseline {base_wall}s by more "
                    f"than {args.wall_tolerance:.0%}",
                    file=sys.stderr,
                )
                failures += 1
            else:
                print(
                    f"{args.bench}: point {p.get('label')} wall "
                    f"{wall:.2f}s within {args.wall_tolerance:.0%} of "
                    f"baseline {base_wall:.2f}s"
                )
    if failures == 0:
        print(f"OK: {args.bench}: perf sidecar within tolerances")
    return 1 if failures else 0


def cmd_speedup(args):
    report = load(args.report)
    perf = {}
    for bench in report.get("benchmarks", []):
        perf[bench.get("name", "")] = bench.get("items_per_second")
    pairs = []
    for name, items in perf.items():
        if "BM_SimulatorEventLoopCalendar/" not in name:
            continue
        arg = name.rsplit("/", 1)[1]
        heap = perf.get(f"BM_SimulatorEventLoopHeap/{arg}")
        if items and heap:
            pairs.append((arg, items / heap))
    if not pairs:
        print(
            "FAIL: no BM_SimulatorEventLoopCalendar/Heap pairs in report",
            file=sys.stderr,
        )
        return 1
    worst = min(r for _, r in pairs)
    for arg, ratio in pairs:
        print(f"event loop sessions={arg}: calendar/heap = {ratio:.2f}x")
    if worst < args.min_ratio:
        print(
            f"FAIL: calendar-queue speedup {worst:.2f}x is below the "
            f"required {args.min_ratio}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: calendar-queue event loop >= {args.min_ratio}x heap baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("identical")
    p.add_argument("a")
    p.add_argument("b")
    p.set_defaults(fn=cmd_identical)

    p = sub.add_parser("baseline")
    p.add_argument("action", choices=["check", "update"])
    p.add_argument("--bench", required=True)
    p.add_argument("--report", required=True)
    p.add_argument("--wall", type=float, default=None)
    p.add_argument("--baseline", default="bench/baseline.json")
    p.add_argument("--tolerance", type=float, default=0.25)
    p.add_argument("--energy-tolerance", type=float, default=0.01)
    p.set_defaults(fn=cmd_baseline)

    p = sub.add_parser("perf")
    p.add_argument("action", choices=["check", "update"])
    p.add_argument("--bench", required=True)
    p.add_argument("--perf", required=True)
    p.add_argument("--baseline", default="bench/baseline.json")
    p.add_argument("--rss-tolerance", type=float, default=0.35)
    p.add_argument("--wall-tolerance", type=float, default=0.5)
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser("speedup")
    p.add_argument("report")
    p.add_argument("--min-ratio", type=float, default=1.5)
    p.set_defaults(fn=cmd_speedup)

    args = parser.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
