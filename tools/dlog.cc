// dlog — command-line front end for the deduce library.
//
//   dlog check <program.dlog>
//       Parse, analyze and compile the program; print the predicate
//       dependency analysis and the distributed query plan.
//
//   dlog eval <program.dlog> [--query 'goal(...)'] [--magic]
//       Centralized bottom-up evaluation; prints every derived relation,
//       or the answers to --query (optionally via the magic-set transform).
//
//   dlog simulate <program.dlog> --events <events file> [--grid N]
//       [--storage row|broadcast|local|centroid] [--loss P] [--seed S]
//       [--seeds N] [--threads N]
//       [--reliable] [--repair] [--anti-entropy-period US]
//       [--trace trace.csv] [--trace-out trace.jsonl]
//       [--metrics-out metrics.json] [--metrics-interval US]
//       [--provenance]
//       Compile onto an N x N simulated sensor grid, inject the event
//       trace, run to quiescence, print derived results and network cost.
//       --trace-out writes the structured JSONL trace (one record per
//       transmission/injection/retransmission, with phase and predicate
//       attribution); --metrics-out writes the metrics-registry snapshot.
//       --provenance threads causal trace ids through the run: the trace
//       gains schema-v2 "deriv" lineage records and tid'd hops/injects
//       (dlog explain's input). --metrics-interval US turns --metrics-out
//       into a JSONL series: one time-resolved registry row every US of
//       simulated time plus a final end-of-run snapshot row.
//       --seeds N sweeps N consecutive seeds starting at --seed and prints
//       one summary row per seed (trials run on --threads workers, rows
//       always in seed order; incompatible with --trace/--trace-out/
//       --metrics-out, which describe a single run).
//       --program extra.dlog (repeatable) and/or --tenants K multiplex
//       several tenant programs onto one shared engine (MultiTenantEngine,
//       DESIGN.md §13): output becomes one "== tenant tN ==" relation
//       section per tenant plus a "% tenancy:" summary line with the
//       shared-sub-plan counters. With one program --tenants K replicates
//       it to K overlapping tenants; with several programs K must match.
//
//   dlog stats <trace.jsonl> [--latency]
//       Aggregate a JSONL trace into per-phase / per-predicate message and
//       byte tables. --latency adds the per-predicate end-to-end latency /
//       bytes-per-result table (needs a --provenance trace).
//
//   dlog stats <metrics.json> --metrics
//       Aggregate a --metrics-out snapshot into a component/name/total
//       table (counters and gauges summed across nodes, sorted) — the
//       greppable form CI counter assertions use.
//
//   dlog explain <program.dlog> --fact 'pred(args)'
//       (--trace-in trace.jsonl | --events <file> [sim flags])
//       Reconstruct and pretty-print the causal tree of a result tuple:
//       rules fired, nodes visited, attributed hops/bytes/retransmissions,
//       and injection-to-generation latency. Reads a --provenance trace
//       (--trace-in), or runs the simulation in-process with provenance
//       forced on (--events plus the usual simulate flags).
//
//   dlog chaos [--seed S] [--grid N] [--injections N] [--horizon US]
//       [--loss P] [--no-reliable] [--repair] [--anti-entropy-period US]
//       [--no-checksum] [--retraction] [--rto-jitter X]
//       [--out scenario.txt] [--no-shrink]
//       Adversarial fault injection: sample a random fault schedule
//       (partitions, corruption, duplication, delay jitter, churn, reboot
//       storms) and workload from --seed, run to quiescence and check the
//       invariant suite against the fault-free oracle (docs/FAULTS.md).
//       On a violation the schedule is delta-debugged down to a minimal
//       reproducer (greedy event removal, re-running each candidate) and,
//       with --out, saved as a replayable scenario file; exit code 3.
//       Output is deterministic: two runs of one seed are byte-identical.
//
//   dlog replay <scenario.txt> [--trace-out trace.jsonl]
//       [--metrics-out m.json] [--provenance]
//       [--provenance-capacity K]
//       Re-execute a saved chaos scenario bit-exactly and re-check the
//       invariant suite; prints the same deterministic report every run.
//       --trace-out / --metrics-out capture the run's JSONL trace and
//       metrics-registry snapshot (same formats as simulate). When the
//       replay violates an invariant, the scenario is re-run with
//       provenance forced on and every violating tuple's causal chain is
//       printed (rules fired, nodes visited, retractions that entered the
//       system but never took effect); exit stays 3.
//
//   dlog replay --diff <base.scn> <perturbed.scn> [--threads N]
//       [--json out.jsonl]
//       Counterfactual diff of two saved scenarios: run both worlds with
//       provenance on and print the ChangeExplanation (appeared / vanished
//       / flipped tuples with divergence attribution, per-predicate cost
//       deltas reconciling with `dlog stats`). --json writes the
//       schema-v3 "cfdiff" JSONL records.
//
//   dlog explain --counterfactual '<spec>' <scenario.scn> [--threads N]
//       [--json out.jsonl] [--out perturbed.scn]
//       [--provenance-capacity K]
//       The counterfactual tentpole (DESIGN.md §14): parse a perturbation
//       spec — ';'-separated clauses 'node=N,down', 'link=A-B,cut',
//       'inject=<fact>,drop', 'budget=<kind>,K', 'tenant=T,remove' —
//       replay the scenario twice (base and perturbed worlds,
//       deterministically, byte-identical at any --threads) and print
//       what changed, why (first divergent derivation edge per tuple),
//       and what it cost. --out saves the perturbed world as a
//       standalone v3 scenario file; --json writes the cfdiff JSONL.
//       Exit 2 on an unparseable spec or scenario, 3 when the diff fails
//       its own soundness check.
//
// Events file: one event per line,
//     <time_us> <node> + <fact>.
//     <time_us> <node> - <fact>.
// '#' starts a comment.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "deduce/common/metrics.h"
#include "deduce/common/parallel.h"
#include "deduce/common/strings.h"
#include "deduce/common/trace.h"
#include "deduce/datalog/analysis.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/counterfactual/attribution.h"
#include "deduce/engine/counterfactual/counterfactual.h"
#include "deduce/engine/counterfactual/perturb.h"
#include "deduce/engine/engine.h"
#include "deduce/engine/provenance.h"
#include "deduce/engine/scenario.h"
#include "deduce/eval/magic.h"
#include "deduce/eval/seminaive.h"

using namespace deduce;

namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return StatusOr<std::string>(
        Status::NotFound("cannot open file: " + path));
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "dlog: %s\n", status.ToString().c_str());
  return 1;
}

void PrintRelations(const Database& db) {
  for (SymbolId pred : db.Predicates()) {
    std::printf("%% %s: %zu facts\n", SymbolName(pred).c_str(),
                db.RelationSize(pred));
    for (const Fact& f : db.Relation(pred)) {
      std::printf("%s.\n", f.ToString().c_str());
    }
  }
}

int CmdCheck(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  auto program = ParseProgram(*text);
  if (!program.ok()) return Fail(program.status());
  Program p = std::move(program).value();
  BuiltinRegistry registry = BuiltinRegistry::Default();
  Status st = ResolveBuiltins(&p, registry);
  if (!st.ok()) return Fail(st);
  auto analysis = AnalyzeProgram(p);
  if (!analysis.ok()) return Fail(analysis.status());
  std::printf("== analysis ==\n%s\n", analysis->ToString().c_str());
  auto plan = CompilePlan(p, registry, PlannerOptions{});
  if (!plan.ok()) {
    std::printf("== distributed plan ==\nnot compilable: %s\n",
                plan.status().ToString().c_str());
    return 0;
  }
  std::printf("== distributed plan ==\n%s", plan->ToString().c_str());
  return 0;
}

int CmdEval(const std::string& path, const std::string& query_text,
            bool use_magic) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  auto program = ParseProgram(*text);
  if (!program.ok()) return Fail(program.status());

  if (!query_text.empty()) {
    auto goal_term = ParseTerm(query_text);
    if (!goal_term.ok()) return Fail(goal_term.status());
    if (!goal_term->is_function()) {
      return Fail(Status::InvalidArgument("query must be an atom"));
    }
    Atom goal(goal_term->functor(), goal_term->args());
    if (use_magic) {
      auto answers = MagicEvaluate(*program, goal, {});
      if (!answers.ok()) return Fail(answers.status());
      for (const Fact& f : *answers) std::printf("%s.\n", f.ToString().c_str());
      return 0;
    }
    auto db = EvaluateProgram(*program, {});
    if (!db.ok()) return Fail(db.status());
    BuiltinRegistry registry = BuiltinRegistry::Default();
    for (const Fact& f : db->Relation(goal.predicate)) {
      Subst subst;
      if (SolveMatchTerms(goal.args, f.args(), &subst, registry)) {
        std::printf("%s.\n", f.ToString().c_str());
      }
    }
    return 0;
  }

  EvalStats stats;
  auto db = EvaluateProgram(*program, {}, {}, &stats);
  if (!db.ok()) return Fail(db.status());
  PrintRelations(*db);
  std::fprintf(stderr,
               "%% derived=%llu firings=%llu probes=%llu iterations=%llu\n",
               static_cast<unsigned long long>(stats.facts_derived),
               static_cast<unsigned long long>(stats.rule_firings),
               static_cast<unsigned long long>(stats.probes),
               static_cast<unsigned long long>(stats.iterations));
  return 0;
}

struct Event {
  SimTime time;
  NodeId node;
  StreamOp op;
  Fact fact;
};

StatusOr<std::vector<Event>> ParseEvents(const std::string& text) {
  std::vector<Event> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string trimmed(StrTrim(line));
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    std::istringstream ls(trimmed);
    long long time;
    int node;
    std::string op;
    if (!(ls >> time >> node >> op) || (op != "+" && op != "-")) {
      return StatusOr<std::vector<Event>>(Status::InvalidArgument(
          StrFormat("events line %d: expected '<time> <node> +|- <fact>.'",
                    lineno)));
    }
    std::string fact_text;
    std::getline(ls, fact_text);
    auto rule = ParseRule(std::string(StrTrim(fact_text)));
    if (!rule.ok() || !rule->body.empty()) {
      return StatusOr<std::vector<Event>>(Status::InvalidArgument(
          StrFormat("events line %d: bad fact: %s", lineno,
                    rule.ok() ? "rules not allowed"
                              : rule.status().message().c_str())));
    }
    Event ev;
    ev.time = time;
    ev.node = node;
    ev.op = op == "+" ? StreamOp::kInsert : StreamOp::kDelete;
    ev.fact = Fact(rule->head.predicate, rule->head.args);
    out.push_back(std::move(ev));
  }
  return out;
}

bool StorageFromFlag(const std::string& storage, StoragePolicy* out) {
  if (storage == "row" || storage.empty()) {
    *out = StoragePolicy::kRow;
  } else if (storage == "broadcast") {
    *out = StoragePolicy::kBroadcast;
  } else if (storage == "local") {
    *out = StoragePolicy::kLocal;
  } else if (storage == "centroid") {
    *out = StoragePolicy::kCentroid;
  } else {
    return false;
  }
  return true;
}

/// Resolves the simulate tenancy flags into the per-tenant program list.
/// `paths` is the positional program plus every repeated --program, in
/// order; tenants are named t0..t(k-1). With --tenants k and a single
/// program the one program is replicated to k tenants (the fully
/// overlapping workload); with multiple programs k must match.
StatusOr<std::vector<TenantProgram>> LoadTenantPrograms(
    const std::vector<std::string>& paths, long tenants) {
  size_t k = tenants > 0 ? static_cast<size_t>(tenants) : paths.size();
  if (paths.size() > 1 && k != paths.size()) {
    return StatusOr<std::vector<TenantProgram>>(Status::InvalidArgument(
        StrFormat("--tenants %zu does not match the %zu programs given",
                  k, paths.size())));
  }
  std::vector<TenantProgram> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const std::string& p = paths.size() == 1 ? paths[0] : paths[i];
    auto text = ReadFile(p);
    if (!text.ok()) {
      return StatusOr<std::vector<TenantProgram>>(text.status());
    }
    auto program = ParseProgram(*text);
    if (!program.ok()) {
      return StatusOr<std::vector<TenantProgram>>(program.status());
    }
    TenantProgram tp;
    tp.tenant = StrFormat("t%zu", i);
    tp.program = std::move(*program);
    out.push_back(std::move(tp));
  }
  return out;
}

int CmdSimulate(const std::string& path, const std::string& events_path,
                int grid, const std::string& storage, double loss,
                bool reliable, const RepairOptions& repair, uint64_t seed,
                bool provenance, size_t prov_capacity, long metrics_interval,
                const std::string& trace_path,
                const std::string& trace_out_path,
                const std::string& metrics_out_path) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  auto program = ParseProgram(*text);
  if (!program.ok()) return Fail(program.status());
  auto events_text = ReadFile(events_path);
  if (!events_text.ok()) return Fail(events_text.status());
  auto events = ParseEvents(*events_text);
  if (!events.ok()) return Fail(events.status());
  if (metrics_interval > 0 && metrics_out_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--metrics-interval requires --metrics-out"));
  }

  EngineOptions options;
  options.transport.reliable = reliable;
  options.repair = repair;
  options.provenance.enabled = provenance;
  options.provenance_capacity = prov_capacity;
  if (!StorageFromFlag(storage, &options.planner.default_storage)) {
    return Fail(Status::InvalidArgument("unknown --storage " + storage));
  }

  LinkModel link;
  link.loss_rate = loss;
  if (loss > 0) link.retries = 2;
  Network net(Topology::Grid(grid), link, seed);
  std::ofstream trace_out;
  if (!trace_path.empty()) {
    trace_out.open(trace_path);
    if (!trace_out) {
      return Fail(Status::NotFound("cannot write trace file " + trace_path));
    }
    trace_out << "time_us,src,dst,type,bytes,attempts,delivered\n";
    net.SetTraceSink([&trace_out](const TraceEvent& ev) {
      trace_out << ev.time << ',' << ev.src << ',' << ev.dst << ','
                << ev.type << ',' << ev.bytes << ',' << ev.attempts << ','
                << (ev.delivered ? 1 : 0) << '\n';
    });
  }
  MetricsRegistry metrics;
  TraceWriter trace_writer;
  if (!trace_out_path.empty()) {
    Status st = trace_writer.OpenFile(trace_out_path);
    if (!st.ok()) return Fail(st);
    options.trace = &trace_writer;
  }
  if (!metrics_out_path.empty()) options.metrics = &metrics;
  auto engine = DistributedEngine::Create(&net, *program, options);
  if (!engine.ok()) return Fail(engine.status());

  // Periodic registry snapshotter: with --metrics-interval the metrics file
  // becomes a JSONL series of {"time":T,"metrics":[...]} rows. Intermediate
  // rows carry the live counters (traffic/pred/transport/repair/prov); the
  // final row (after the stats exports below) is the full end-of-run
  // snapshot. The simulator is driven in interval-sized chunks — no
  // repeating simulator event, so quiescence detection is untouched.
  std::ofstream metrics_series;
  if (metrics_interval > 0) {
    metrics_series.open(metrics_out_path);
    if (!metrics_series) {
      return Fail(
          Status::NotFound("cannot write metrics file " + metrics_out_path));
    }
  }
  SimTime next_snap = metrics_interval;
  auto run_until = [&](SimTime t) {
    while (metrics_interval > 0 && next_snap < t) {
      net.sim().RunUntil(next_snap);
      metrics_series << metrics.ToJsonRow(next_snap) << "\n";
      next_snap += metrics_interval;
    }
    net.sim().RunUntil(t);
  };

  for (const Event& ev : *events) {
    if (ev.node < 0 || ev.node >= net.node_count()) {
      return Fail(Status::OutOfRange(
          StrFormat("event names node %d; grid has %d nodes", ev.node,
                    net.node_count())));
    }
    run_until(ev.time);
    Status st = (*engine)->Inject(ev.node, ev.op, ev.fact);
    if (!st.ok()) {
      std::fprintf(stderr, "dlog: inject %s: %s\n", ev.fact.ToString().c_str(),
                   st.ToString().c_str());
    }
  }
  if (metrics_interval > 0) {
    while (net.sim().pending() > 0) {
      net.sim().RunUntil(next_snap);
      if (net.sim().pending() > 0) {
        metrics_series << metrics.ToJsonRow(next_snap) << "\n";
      }
      next_snap += metrics_interval;
    }
  } else {
    net.sim().Run();
  }

  Database results = (*engine)->ResultDatabase();
  PrintRelations(results);
  std::fprintf(
      stderr,
      "%% network: %llu messages, %llu bytes, %.1f uJ; engine: %llu join "
      "passes, %llu derivations; errors: %zu\n",
      static_cast<unsigned long long>(net.stats().TotalMessages()),
      static_cast<unsigned long long>(net.stats().TotalBytes()),
      net.stats().TotalEnergyMicroJ(),
      static_cast<unsigned long long>((*engine)->stats().join_passes),
      static_cast<unsigned long long>((*engine)->stats().derivations_added),
      (*engine)->stats().errors.size());
  if (reliable) {
    const EngineStats& es = (*engine)->stats();
    std::fprintf(
        stderr,
        "%% transport: %llu acks, %llu retransmissions, %llu duplicates "
        "suppressed, %llu gave up, %llu repaired\n",
        static_cast<unsigned long long>(es.acks_received),
        static_cast<unsigned long long>(es.retransmissions),
        static_cast<unsigned long long>(es.duplicates_suppressed),
        static_cast<unsigned long long>(es.gave_up_messages),
        static_cast<unsigned long long>(es.repaired_messages));
  }
  if (repair.any()) {
    const EngineStats& es = (*engine)->stats();
    std::fprintf(
        stderr,
        "%% repair: %llu digest rounds, %llu replicas pulled, %llu pushed; "
        "resyncs %llu/%llu (%llu abandoned); %llu degraded results\n",
        static_cast<unsigned long long>(es.repair_digest_rounds),
        static_cast<unsigned long long>(es.repair_replicas_pulled),
        static_cast<unsigned long long>(es.repair_replicas_pushed),
        static_cast<unsigned long long>(es.resyncs_completed),
        static_cast<unsigned long long>(es.resyncs_started),
        static_cast<unsigned long long>(es.resyncs_abandoned),
        static_cast<unsigned long long>(es.degraded_results));
  }
  for (const std::string& e : (*engine)->stats().errors) {
    std::fprintf(stderr, "%% error: %s\n", e.c_str());
  }
  trace_writer.Close();
  if (!metrics_out_path.empty()) {
    net.stats().ExportTo(&metrics);
    (*engine)->stats().ExportTo(&metrics);
    if (metrics_interval > 0) {
      metrics_series << metrics.ToJsonRow(net.sim().now()) << "\n";
    } else {
      std::ofstream mo(metrics_out_path);
      if (!mo) {
        return Fail(
            Status::NotFound("cannot write metrics file " + metrics_out_path));
      }
      mo << metrics.ToJson() << "\n";
    }
  }
  return (*engine)->stats().errors.empty() ? 0 : 2;
}

/// Multi-tenant simulate (--program repeated and/or --tenants k): all
/// tenant programs share one engine (MultiTenantEngine); output is one
/// "== tenant tN ==" relation section per tenant, in tenant order, plus a
/// "%% tenancy:" summary line with the shared-sub-plan counters. The
/// single-tenant path does not go through here — its output stays
/// byte-identical to pre-tenancy dlog.
int CmdSimulateTenants(const std::vector<TenantProgram>& tenants,
                       const std::string& events_path, int grid,
                       const std::string& storage, double loss, bool reliable,
                       const RepairOptions& repair, uint64_t seed,
                       bool provenance,
                       const std::string& metrics_out_path) {
  auto events_text = ReadFile(events_path);
  if (!events_text.ok()) return Fail(events_text.status());
  auto events = ParseEvents(*events_text);
  if (!events.ok()) return Fail(events.status());

  EngineOptions options;
  options.transport.reliable = reliable;
  options.repair = repair;
  options.provenance.enabled = provenance;
  if (!StorageFromFlag(storage, &options.planner.default_storage)) {
    return Fail(Status::InvalidArgument("unknown --storage " + storage));
  }
  LinkModel link;
  link.loss_rate = loss;
  if (loss > 0) link.retries = 2;
  Network net(Topology::Grid(grid), link, seed);
  MetricsRegistry metrics;
  if (!metrics_out_path.empty()) options.metrics = &metrics;

  MultiTenantEngine mte(options);
  for (const TenantProgram& tp : tenants) {
    Status st = mte.AddProgram(tp.tenant, tp.program);
    if (!st.ok()) return Fail(st);
  }
  Status st = mte.Start(&net);
  if (!st.ok()) return Fail(st);

  for (const Event& ev : *events) {
    if (ev.node < 0 || ev.node >= net.node_count()) {
      return Fail(Status::OutOfRange(
          StrFormat("event names node %d; grid has %d nodes", ev.node,
                    net.node_count())));
    }
    net.sim().RunUntil(ev.time);
    Status ist = mte.Inject(ev.node, ev.op, ev.fact);
    if (!ist.ok()) {
      std::fprintf(stderr, "dlog: inject %s: %s\n", ev.fact.ToString().c_str(),
                   ist.ToString().c_str());
    }
  }
  net.sim().Run();

  for (const TenantProgram& tp : tenants) {
    std::printf("== tenant %s ==\n", tp.tenant.c_str());
    auto db = mte.ResultDatabase(tp.tenant);
    if (!db.ok()) return Fail(db.status());
    PrintRelations(*db);
  }
  const MultiPlan& mp = mte.multi_plan();
  std::fprintf(
      stderr,
      "%% tenancy: %zu tenants, %llu sub-plans requested, %llu evaluated, "
      "%llu shared\n",
      tenants.size(),
      static_cast<unsigned long long>(mp.subplans_requested),
      static_cast<unsigned long long>(mp.subplans_total),
      static_cast<unsigned long long>(mp.subplans_shared));
  std::fprintf(
      stderr,
      "%% network: %llu messages, %llu bytes, %.1f uJ; engine: %llu join "
      "passes, %llu derivations; errors: %zu\n",
      static_cast<unsigned long long>(net.stats().TotalMessages()),
      static_cast<unsigned long long>(net.stats().TotalBytes()),
      net.stats().TotalEnergyMicroJ(),
      static_cast<unsigned long long>(mte.stats().join_passes),
      static_cast<unsigned long long>(mte.stats().derivations_added),
      mte.stats().errors.size());
  for (const std::string& e : mte.stats().errors) {
    std::fprintf(stderr, "%% error: %s\n", e.c_str());
  }
  if (!metrics_out_path.empty()) {
    net.stats().ExportTo(&metrics);
    mte.stats().ExportTo(&metrics);
    std::ofstream mo(metrics_out_path);
    if (!mo) {
      return Fail(
          Status::NotFound("cannot write metrics file " + metrics_out_path));
    }
    mo << metrics.ToJson() << "\n";
  }
  return mte.stats().errors.empty() ? 0 : 2;
}

/// `--seeds N`: run the same program/events on N consecutive RNG seeds,
/// one summary row per seed. Trials are independent simulations and run
/// on a worker pool; RunTrials reduces (prints) in seed order, so the
/// output is identical for any --threads value. With more than one tenant
/// each trial runs the shared MultiTenantEngine and `results` counts the
/// union of the per-tenant result views.
int CmdSimulateSweep(const std::vector<TenantProgram>& tenants,
                     const std::string& events_path,
                     int grid, const std::string& storage, double loss,
                     bool reliable, const RepairOptions& repair, bool provenance,
                     uint64_t base_seed, uint64_t seeds, int threads) {
  auto events_text = ReadFile(events_path);
  if (!events_text.ok()) return Fail(events_text.status());
  auto events = ParseEvents(*events_text);
  if (!events.ok()) return Fail(events.status());

  EngineOptions options;
  options.transport.reliable = reliable;
  options.repair = repair;
  options.provenance.enabled = provenance;
  if (!StorageFromFlag(storage, &options.planner.default_storage)) {
    return Fail(Status::InvalidArgument("unknown --storage " + storage));
  }
  LinkModel link;
  link.loss_rate = loss;
  if (loss > 0) link.retries = 2;
  Topology topo = Topology::Grid(grid);
  for (const Event& ev : *events) {
    if (ev.node < 0 || ev.node >= topo.node_count()) {
      return Fail(Status::OutOfRange(
          StrFormat("event names node %d; grid has %d nodes", ev.node,
                    topo.node_count())));
    }
  }

  struct SeedResult {
    uint64_t messages = 0;
    uint64_t bytes = 0;
    double energy_uj = 0;
    SimTime quiesce = 0;
    uint64_t derivations = 0;
    size_t results = 0;
    size_t errors = 0;
  };

  std::printf("%12s  %12s  %12s  %12s  %12s  %12s  %12s  %12s\n", "seed",
              "messages", "bytes", "energy_uj", "quiesce_us", "derived",
              "results", "errors");
  size_t total_errors = 0;
  RunTrials(
      static_cast<size_t>(seeds), threads,
      [&](size_t i) {
        SeedResult r;
        Network net(topo, link, base_seed + i);
        if (tenants.size() == 1) {
          auto engine =
              DistributedEngine::Create(&net, tenants[0].program, options);
          if (!engine.ok()) {
            r.errors = 1;
            return r;
          }
          for (const Event& ev : *events) {
            net.sim().RunUntil(ev.time);
            if (!(*engine)->Inject(ev.node, ev.op, ev.fact).ok()) ++r.errors;
          }
          net.sim().Run();
          r.derivations = (*engine)->stats().derivations_added;
          r.results = (*engine)->ResultDatabase().size();
          r.errors += (*engine)->stats().errors.size();
        } else {
          MultiTenantEngine mte(options);
          for (const TenantProgram& tp : tenants) {
            if (!mte.AddProgram(tp.tenant, tp.program).ok()) {
              r.errors = 1;
              return r;
            }
          }
          if (!mte.Start(&net).ok()) {
            r.errors = 1;
            return r;
          }
          for (const Event& ev : *events) {
            net.sim().RunUntil(ev.time);
            if (!mte.Inject(ev.node, ev.op, ev.fact).ok()) ++r.errors;
          }
          net.sim().Run();
          r.derivations = mte.stats().derivations_added;
          for (const TenantProgram& tp : tenants) {
            auto db = mte.ResultDatabase(tp.tenant);
            if (db.ok()) {
              r.results += db->size();
            } else {
              ++r.errors;
            }
          }
          r.errors += mte.stats().errors.size();
        }
        r.messages = net.stats().TotalMessages();
        r.bytes = net.stats().TotalBytes();
        r.energy_uj = net.stats().TotalEnergyMicroJ();
        r.quiesce = net.sim().now();
        return r;
      },
      [&](size_t i, SeedResult r) {
        total_errors += r.errors;
        std::printf(
            "%12llu  %12llu  %12llu  %12.1f  %12lld  %12llu  %12zu  %12zu\n",
            static_cast<unsigned long long>(base_seed + i),
            static_cast<unsigned long long>(r.messages),
            static_cast<unsigned long long>(r.bytes), r.energy_uj,
            static_cast<long long>(r.quiesce),
            static_cast<unsigned long long>(r.derivations), r.results,
            r.errors);
      });
  return total_errors == 0 ? 0 : 2;
}

int CmdStats(const std::string& path, bool latency) {
  std::ifstream in(path);
  if (!in) return Fail(Status::NotFound("cannot open trace file: " + path));
  std::vector<std::string> errors;
  TraceStats stats = TraceStats::Aggregate(in, &errors);
  std::printf("%s", stats.ToTable().c_str());
  if (latency) {
    std::string table = stats.LatencyTable();
    if (table.empty()) {
      std::printf(
          "\nno deriv records in trace (was it produced with "
          "--provenance?)\n");
    } else {
      std::printf("\n%s", table.c_str());
    }
  }
  for (const std::string& e : errors) {
    std::fprintf(stderr, "dlog: %s\n", e.c_str());
  }
  return stats.bad_lines > 0 ? 2 : 0;
}

/// `dlog stats <metrics.json> --metrics`: aggregate a metrics-registry
/// snapshot (the --metrics-out file) into a deterministic
/// component/name/total table, counters and gauges summed across nodes and
/// printed in sorted order. This is what CI greps for its counter
/// assertions (e.g. the tenancy job asserting `tenant subplans_shared`).
/// Reads the single-snapshot form; on a --metrics-interval JSONL series it
/// sums every row.
int CmdStatsMetrics(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  // Entries look like
  //   {"node":N,"component":"c","name":"n","kind":"counter","value":V}
  // (metrics.cc ToJson). A targeted scan keeps the CLI free of a JSON
  // dependency: walk "component" keys, read the quoted component/name and
  // the kind, and take "value" for counters and gauges (histograms carry
  // count/sum/buckets instead and are skipped here).
  std::map<std::pair<std::string, std::string>, long long> totals;
  const std::string& s = *text;
  auto quoted = [&](size_t* pos) -> StatusOr<std::string> {
    size_t start = *pos;
    size_t end = s.find('"', start);
    if (end == std::string::npos) {
      return StatusOr<std::string>(
          Status::InvalidArgument("unterminated string in metrics file"));
    }
    *pos = end + 1;
    return s.substr(start, end - start);
  };
  size_t pos = 0;
  size_t bad = 0;
  while ((pos = s.find("\"component\":\"", pos)) != std::string::npos) {
    pos += std::strlen("\"component\":\"");
    auto component = quoted(&pos);
    if (!component.ok()) return Fail(component.status());
    size_t name_at = s.find("\"name\":\"", pos);
    size_t kind_at = s.find("\"kind\":\"", pos);
    if (name_at == std::string::npos || kind_at == std::string::npos) {
      ++bad;
      break;
    }
    size_t npos_ = name_at + std::strlen("\"name\":\"");
    auto name = quoted(&npos_);
    if (!name.ok()) return Fail(name.status());
    size_t kpos = kind_at + std::strlen("\"kind\":\"");
    auto kind = quoted(&kpos);
    if (!kind.ok()) return Fail(kind.status());
    pos = kpos;
    if (*kind != "counter" && *kind != "gauge") continue;
    size_t value_at = s.find("\"value\":", pos);
    if (value_at == std::string::npos) {
      ++bad;
      break;
    }
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(s.c_str() + value_at +
                                   std::strlen("\"value\":"),
                               &end, 10);
    if (errno != 0) {
      ++bad;
      break;
    }
    pos = static_cast<size_t>(end - s.c_str());
    totals[{*component, *name}] += v;
  }
  if (totals.empty() && bad == 0) {
    std::fprintf(stderr,
                 "dlog: no counters in %s (was it produced with "
                 "--metrics-out?)\n",
                 path.c_str());
    return 2;
  }
  std::printf("%-16s %-32s %14s\n", "component", "name", "total");
  for (const auto& [key, total] : totals) {
    std::printf("%-16s %-32s %14lld\n", key.first.c_str(),
                key.second.c_str(), total);
  }
  if (bad > 0) {
    std::fprintf(stderr, "dlog: malformed metrics entry in %s\n",
                 path.c_str());
    return 2;
  }
  return 0;
}

/// Parses '--fact' text ("pred(args)" with an optional trailing '.') into a
/// ground Fact.
StatusOr<Fact> ParseTargetFact(const std::string& fact_text) {
  std::string ft(StrTrim(fact_text));
  if (ft.empty()) {
    return StatusOr<Fact>(
        Status::InvalidArgument("explain requires --fact 'pred(args)'"));
  }
  if (ft.back() != '.') ft += '.';
  auto rule = ParseRule(ft);
  if (!rule.ok()) return rule.status();
  if (!rule->body.empty()) {
    return StatusOr<Fact>(
        Status::InvalidArgument("--fact must be a fact, not a rule"));
  }
  for (const Term& t : rule->head.args) {
    if (!t.is_ground()) {
      return StatusOr<Fact>(Status::InvalidArgument(
          "--fact must be ground (no variables): " + fact_text));
    }
  }
  return Fact(rule->head.predicate, rule->head.args);
}

int CmdExplain(const std::string& path, const std::string& fact_text,
               const std::string& trace_in, const std::string& events_path,
               int grid, const std::string& storage, double loss,
               bool reliable, const RepairOptions& repair, uint64_t seed,
               size_t prov_capacity) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  auto program = ParseProgram(*text);
  if (!program.ok()) return Fail(program.status());
  auto target = ParseTargetFact(fact_text);
  if (!target.ok()) return Fail(target.status());

  std::vector<TraceRecord> records;
  size_t bad = 0;
  auto parse_lines = [&](std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      if (StrTrim(line).empty()) continue;
      StatusOr<TraceRecord> r = TraceRecord::FromJson(line);
      if (r.ok()) {
        records.push_back(std::move(*r));
      } else {
        ++bad;
      }
    }
  };

  if (!trace_in.empty()) {
    std::ifstream in(trace_in);
    if (!in) {
      return Fail(Status::NotFound("cannot open trace file: " + trace_in));
    }
    parse_lines(in);
  } else {
    if (events_path.empty()) {
      return Fail(Status::InvalidArgument(
          "explain needs --trace-in <trace.jsonl> or --events <file>"));
    }
    auto events_text = ReadFile(events_path);
    if (!events_text.ok()) return Fail(events_text.status());
    auto events = ParseEvents(*events_text);
    if (!events.ok()) return Fail(events.status());

    EngineOptions options;
    options.transport.reliable = reliable;
    options.repair = repair;
    options.provenance.enabled = true;  // explain is the provenance consumer
    options.provenance_capacity = prov_capacity;
    if (!StorageFromFlag(storage, &options.planner.default_storage)) {
      return Fail(Status::InvalidArgument("unknown --storage " + storage));
    }
    LinkModel link;
    link.loss_rate = loss;
    if (loss > 0) link.retries = 2;
    Network net(Topology::Grid(grid), link, seed);
    std::ostringstream trace_stream;
    TraceWriter writer;
    writer.OpenStream(&trace_stream);
    options.trace = &writer;
    auto engine = DistributedEngine::Create(&net, *program, options);
    if (!engine.ok()) return Fail(engine.status());
    for (const Event& ev : *events) {
      if (ev.node < 0 || ev.node >= net.node_count()) {
        return Fail(Status::OutOfRange(
            StrFormat("event names node %d; grid has %d nodes", ev.node,
                      net.node_count())));
      }
      net.sim().RunUntil(ev.time);
      Status st = (*engine)->Inject(ev.node, ev.op, ev.fact);
      if (!st.ok()) {
        std::fprintf(stderr, "dlog: inject %s: %s\n",
                     ev.fact.ToString().c_str(), st.ToString().c_str());
      }
    }
    net.sim().Run();
    writer.Close();
    std::istringstream in(trace_stream.str());
    parse_lines(in);
  }
  if (bad > 0) {
    std::fprintf(stderr, "dlog: %zu unparseable trace line(s) skipped\n", bad);
  }

  auto report = ExplainFact(records, *program, *target);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->Format().c_str());
  return 0;
}

int CmdChaos(uint64_t seed, const ChaosProfile& profile, bool shrink,
             const std::string& out_path) {
  Scenario scenario = SampleScenario(seed, profile);
  auto run = RunScenario(scenario);
  if (!run.ok()) return Fail(run.status());
  std::printf("chaos seed=%llu grid=%d injections=%zu fault_events=%zu\n",
              static_cast<unsigned long long>(seed), scenario.grid,
              scenario.events.size(), scenario.faults.events.size());
  std::printf("%s", run->Summary().c_str());
  if (run->report.ok()) {
    if (!out_path.empty()) {
      Status st = scenario.Save(out_path);
      if (!st.ok()) return Fail(st);
      std::fprintf(stderr, "%% scenario saved to %s\n", out_path.c_str());
    }
    return 0;
  }
  Scenario minimal = scenario;
  if (shrink) {
    auto shrunk = ShrinkScenario(scenario);
    if (!shrunk.ok()) return Fail(shrunk.status());
    minimal = std::move(shrunk->scenario);
    std::printf("shrink: runs=%d removed=%d injections=%zu fault_events=%zu\n",
                shrunk->runs, shrunk->removed, minimal.events.size(),
                minimal.faults.events.size());
  }
  if (!out_path.empty()) {
    Status st = minimal.Save(out_path);
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "%% minimal reproducer saved to %s\n",
                 out_path.c_str());
  }
  return 3;
}

std::vector<TraceRecord> ParseTraceLines(const std::string& jsonl) {
  std::vector<TraceRecord> records;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (StrTrim(line).empty()) continue;
    auto r = TraceRecord::FromJson(line);
    if (r.ok()) records.push_back(std::move(*r));
  }
  return records;
}

/// Pulls the fact text out of an invariant-violation line ("" when the
/// violation names no tuple — convergence and engine-error lines don't).
std::string ViolationFact(const std::string& violation) {
  struct Marker {
    const char* start;
    const char* stop;
  };
  static const Marker kMarkers[] = {
      {"phantom result ", " (not derivable"},
      {"undegraded result ", " not derivable"},
      {"dedup: result ", " stored at node"},
  };
  for (const Marker& m : kMarkers) {
    size_t at = violation.find(m.start);
    if (at == std::string::npos) continue;
    size_t start = at + std::strlen(m.start);
    size_t end = violation.find(m.stop, start);
    if (end == std::string::npos) return "";
    return violation.substr(start, end - start);
  }
  return "";
}

/// On a replay violation: re-run the scenario with provenance forced on
/// (lineage changes no simulated counter, so the violation reproduces
/// bit-exactly) and print each violating tuple's causal chain —
/// AttributeViolation names the rules fired, the nodes visited, and any
/// retraction that entered the system but never took effect.
void PrintViolationAttribution(const Scenario& scenario,
                               const InvariantReport& report) {
  auto program = ParseProgram(scenario.program);
  if (!program.ok()) return;
  std::ostringstream sink;
  TraceWriter writer;
  writer.OpenStream(&sink);
  ScenarioRunOptions run;
  run.provenance = true;
  run.trace = &writer;
  auto outcome = RunScenario(scenario, run);
  writer.Close();
  if (!outcome.ok()) return;
  std::vector<TraceRecord> records = ParseTraceLines(sink.str());
  bool header = false;
  std::set<std::string> seen;
  for (const std::string& v : report.violations) {
    std::string fact_text = ViolationFact(v);
    if (fact_text.empty() || !seen.insert(fact_text).second) continue;
    auto fact = ParseTargetFact(fact_text);
    if (!fact.ok()) continue;
    if (!header) {
      std::printf("violation attribution (provenance replay):\n");
      header = true;
    }
    std::printf("%s", AttributeViolation(records, *program, *fact).c_str());
  }
}

int CmdReplay(const std::string& path, const std::string& trace_out_path,
              const std::string& metrics_out_path, bool provenance,
              size_t prov_capacity) {
  auto scenario = Scenario::Load(path);
  if (!scenario.ok()) {
    // Parse failures (unknown version, unknown fault kind, unknown
    // perturbation kind, malformed lines) exit 2: distinct from a run that
    // violated invariants (3) and from engine errors (1), so CI can tell
    // "file this build cannot replay" apart from "replay found a bug".
    Fail(scenario.status());
    return 2;
  }
  ScenarioRunOptions run;
  run.provenance = provenance;
  run.provenance_capacity = prov_capacity;
  TraceWriter writer;
  if (!trace_out_path.empty()) {
    Status st = writer.OpenFile(trace_out_path);
    if (!st.ok()) return Fail(st);
    run.trace = &writer;
  }
  MetricsRegistry metrics;
  if (!metrics_out_path.empty()) run.metrics = &metrics;
  auto outcome = RunScenario(*scenario, run);
  writer.Close();
  if (!outcome.ok()) return Fail(outcome.status());
  std::printf("%s", outcome->Summary().c_str());
  if (!metrics_out_path.empty()) {
    std::ofstream mo(metrics_out_path);
    if (!mo) {
      return Fail(
          Status::NotFound("cannot write metrics file " + metrics_out_path));
    }
    mo << metrics.ToJson() << "\n";
  }
  if (outcome->report.ok()) return 0;
  PrintViolationAttribution(*scenario, outcome->report);
  return 3;
}

int CmdCounterfactual(const std::string& spec, const std::string& scn_path,
                      int threads, const std::string& json_out,
                      const std::string& save_path, size_t prov_capacity) {
  auto perturbs = ParsePerturbationSpec(spec);
  if (!perturbs.ok()) {
    // An unparseable spec (unknown perturbation kind, malformed clause) is
    // the same failure class as an unreadable scenario file: exit 2.
    Fail(perturbs.status());
    return 2;
  }
  auto scenario = Scenario::Load(scn_path);
  if (!scenario.ok()) {
    Fail(scenario.status());
    return 2;
  }
  CounterfactualOptions options;
  options.threads = threads;
  options.provenance_capacity = prov_capacity;
  auto result = RunCounterfactual(*scenario, *perturbs, options);
  if (!result.ok()) return Fail(result.status());
  std::printf("%s", result->explanation.Format().c_str());
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      return Fail(Status::NotFound("cannot write json file " + json_out));
    }
    out << result->explanation.ToJsonl();
  }
  if (!save_path.empty()) {
    // Saves the *declarative* perturbed world: the base scenario plus the
    // v3 [perturb] block, which RunScenario materializes on replay.
    Status st = result->perturbed.Save(save_path);
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "%% perturbed scenario saved to %s\n",
                 save_path.c_str());
  }
  return result->explanation.soundness.empty() ? 0 : 3;
}

int CmdReplayDiff(const std::string& base_path, const std::string& pert_path,
                  int threads, const std::string& json_out,
                  size_t prov_capacity) {
  auto base = Scenario::Load(base_path);
  if (!base.ok()) {
    Fail(base.status());
    return 2;
  }
  auto perturbed = Scenario::Load(pert_path);
  if (!perturbed.ok()) {
    Fail(perturbed.status());
    return 2;
  }
  CounterfactualOptions options;
  options.threads = threads;
  options.provenance_capacity = prov_capacity;
  auto result = DiffScenarios(*base, *perturbed, options);
  if (!result.ok()) return Fail(result.status());
  std::printf("%s", result->explanation.Format().c_str());
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      return Fail(Status::NotFound("cannot write json file " + json_out));
    }
    out << result->explanation.ToJsonl();
  }
  return result->explanation.soundness.empty() ? 0 : 3;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dlog check <program.dlog>\n"
               "  dlog eval <program.dlog> [--query 'goal(...)'] [--magic]\n"
               "  dlog simulate <program.dlog> --events <file> [--grid N]\n"
               "       [--storage row|broadcast|local|centroid] [--loss P]\n"
               "       [--seed S] [--seeds N] [--threads N]\n"
               "       [--reliable] [--repair]\n"
               "       [--anti-entropy-period US] [--trace trace.csv]\n"
               "       [--trace-out trace.jsonl] [--metrics-out m.json]\n"
               "       [--metrics-interval US] [--provenance]\n"
               "       [--program extra.dlog]... [--tenants K]\n"
               "  dlog stats <trace.jsonl> [--latency]\n"
               "  dlog stats <metrics.json> --metrics\n"
               "  dlog explain <program.dlog> --fact 'pred(args)'\n"
               "       (--trace-in trace.jsonl | --events <file> [sim "
               "flags])\n"
               "  dlog explain --counterfactual '<spec>' <scenario.scn>\n"
               "       [--threads N] [--json out.jsonl] [--out saved.scn]\n"
               "       [--provenance-capacity K]\n"
               "       spec: 'node=N,down' | 'link=A-B,cut' |\n"
               "       'inject=<fact>,drop' | 'budget=<kind>,K' |\n"
               "       'tenant=T,remove', ';'-separated\n"
               "  dlog chaos [--seed S] [--grid N] [--injections N]\n"
               "       [--horizon US] [--loss P] [--no-reliable] [--repair]\n"
               "       [--anti-entropy-period US] [--no-checksum]\n"
               "       [--retraction] [--overload] [--rto-jitter X]\n"
               "       [--out scenario.txt] [--no-shrink]\n"
               "  dlog replay <scenario.txt> [--trace-out trace.jsonl]\n"
               "       [--metrics-out m.json] [--provenance]\n"
               "       [--provenance-capacity K]\n"
               "  dlog replay --diff <base.scn> <perturbed.scn>\n"
               "       [--threads N] [--json out.jsonl]\n");
  return 64;
}

/// strtol/strtod-based flag parsing: the whole value must consume, and it
/// must sit inside [min, max]. std::atoi silently turns "8x8" into 8 and
/// "huge" into 0; these report the bad value and fail instead.
bool ParseIntFlag(const char* flag, const char* v, long min, long max,
                  long* out) {
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  errno = 0;
  long x = std::strtol(v, &end, 10);
  if (errno != 0 || *end != '\0' || x < min || x > max) {
    std::fprintf(stderr, "dlog: invalid value '%s' for %s (expected integer "
                         "in [%ld, %ld])\n", v, flag, min, max);
    return false;
  }
  *out = x;
  return true;
}

bool ParseU64Flag(const char* flag, const char* v, uint64_t* out) {
  if (v == nullptr || *v == '\0' || *v == '-') {
    std::fprintf(stderr, "dlog: invalid value '%s' for %s (expected "
                         "non-negative integer)\n", v ? v : "", flag);
    return false;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long x = std::strtoull(v, &end, 10);
  if (errno != 0 || *end != '\0') {
    std::fprintf(stderr, "dlog: invalid value '%s' for %s (expected "
                         "non-negative integer)\n", v, flag);
    return false;
  }
  *out = x;
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* v, double min, double max,
                     double* out) {
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  errno = 0;
  double x = std::strtod(v, &end);
  if (errno != 0 || *end != '\0' || !(x >= min && x <= max)) {
    std::fprintf(stderr, "dlog: invalid value '%s' for %s (expected number "
                         "in [%g, %g])\n", v, flag, min, max);
    return false;
  }
  *out = x;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];

  if (cmd == "chaos") {
    ChaosProfile profile;
    uint64_t seed = 1;
    bool shrink = true;
    std::string out_path;
    long grid = profile.grid;
    long injections = profile.events;
    long horizon = profile.horizon;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
      if (arg == "--seed") {
        if (!ParseU64Flag("--seed", next(), &seed)) return Usage();
      } else if (arg == "--grid") {
        if (!ParseIntFlag("--grid", next(), 2, 64, &grid)) return Usage();
      } else if (arg == "--injections") {
        if (!ParseIntFlag("--injections", next(), 1, 100'000, &injections)) {
          return Usage();
        }
      } else if (arg == "--horizon") {
        if (!ParseIntFlag("--horizon", next(), 1000, 3'600'000'000L,
                          &horizon)) {
          return Usage();
        }
      } else if (arg == "--loss") {
        if (!ParseDoubleFlag("--loss", next(), 0.0, 1.0, &profile.loss)) {
          return Usage();
        }
      } else if (arg == "--no-reliable") {
        profile.reliable = false;
      } else if (arg == "--repair") {
        profile.repair = true;
      } else if (arg == "--anti-entropy-period") {
        long period = 0;
        if (!ParseIntFlag("--anti-entropy-period", next(), 1,
                          3'600'000'000L, &period)) {
          return Usage();
        }
        profile.anti_entropy_period = period;
      } else if (arg == "--no-checksum") {
        profile.checksum = false;
      } else if (arg == "--retraction") {
        profile.retraction = true;
      } else if (arg == "--overload") {
        profile.overload = true;
      } else if (arg == "--rto-jitter") {
        if (!ParseDoubleFlag("--rto-jitter", next(), 0.0, 1.0,
                             &profile.rto_jitter)) {
          return Usage();
        }
      } else if (arg == "--out") {
        const char* v = next();
        if (!v) return Usage();
        out_path = v;
      } else if (arg == "--no-shrink") {
        shrink = false;
      } else {
        return Usage();
      }
    }
    profile.grid = static_cast<int>(grid);
    profile.events = static_cast<int>(injections);
    profile.horizon = horizon;
    return CmdChaos(seed, profile, shrink, out_path);
  }

  if (argc < 3) return Usage();
  std::string path = argv[2];

  if (cmd == "replay") {
    bool diff = false;
    bool provenance = false;
    std::vector<std::string> paths;
    std::string trace_out, metrics_out, json_out;
    long threads = 1;
    long prov_capacity = 0;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
      if (arg == "--diff") {
        diff = true;
      } else if (arg == "--provenance") {
        provenance = true;
      } else if (arg == "--trace-out") {
        const char* v = next();
        if (!v) return Usage();
        trace_out = v;
      } else if (arg == "--metrics-out") {
        const char* v = next();
        if (!v) return Usage();
        metrics_out = v;
      } else if (arg == "--json") {
        const char* v = next();
        if (!v) return Usage();
        json_out = v;
      } else if (arg == "--threads") {
        if (!ParseIntFlag("--threads", next(), 1, 1024, &threads)) {
          return Usage();
        }
      } else if (arg == "--provenance-capacity") {
        if (!ParseIntFlag("--provenance-capacity", next(), 1,
                          1'000'000'000L, &prov_capacity)) {
          return Usage();
        }
      } else if (!arg.empty() && arg[0] == '-') {
        return Usage();
      } else {
        paths.push_back(arg);
      }
    }
    if (diff) {
      if (paths.size() != 2 || !trace_out.empty() || !metrics_out.empty()) {
        return Usage();
      }
      return CmdReplayDiff(paths[0], paths[1], static_cast<int>(threads),
                           json_out, static_cast<size_t>(prov_capacity));
    }
    if (paths.size() != 1 || !json_out.empty()) return Usage();
    return CmdReplay(paths[0], trace_out, metrics_out, provenance,
                     static_cast<size_t>(prov_capacity));
  }

  if (cmd == "explain" && path == "--counterfactual") {
    if (argc < 5) return Usage();
    std::string spec = argv[3];
    std::string scn = argv[4];
    std::string json_out, save_path;
    long threads = 1;
    long prov_capacity = 0;
    for (int i = 5; i < argc; ++i) {
      std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
      if (arg == "--threads") {
        if (!ParseIntFlag("--threads", next(), 1, 1024, &threads)) {
          return Usage();
        }
      } else if (arg == "--json") {
        const char* v = next();
        if (!v) return Usage();
        json_out = v;
      } else if (arg == "--out") {
        const char* v = next();
        if (!v) return Usage();
        save_path = v;
      } else if (arg == "--provenance-capacity") {
        if (!ParseIntFlag("--provenance-capacity", next(), 1,
                          1'000'000'000L, &prov_capacity)) {
          return Usage();
        }
      } else {
        return Usage();
      }
    }
    return CmdCounterfactual(spec, scn, static_cast<int>(threads), json_out,
                             save_path, static_cast<size_t>(prov_capacity));
  }

  std::string query, events, storage, trace, trace_out, metrics_out;
  std::string fact_text, trace_in;
  std::vector<std::string> extra_programs;
  bool magic = false;
  bool reliable = false;
  bool provenance = false;
  bool latency = false;
  bool metrics_table = false;
  RepairOptions repair;
  long grid = 8;
  double loss = 0;
  long metrics_interval = 0;
  uint64_t seed = 1;
  long seeds = 1;
  long tenants = 0;  // 0 = not set (single-tenant unless --program given)
  long threads = 0;  // 0 = DefaultThreadCount()
  long prov_capacity = 0;  // 0 = ProvenanceOptions default ring size
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--query") {
      const char* v = next();
      if (!v) return Usage();
      query = v;
    } else if (arg == "--magic") {
      magic = true;
    } else if (arg == "--events") {
      const char* v = next();
      if (!v) return Usage();
      events = v;
    } else if (arg == "--grid") {
      if (!ParseIntFlag("--grid", next(), 1, 1024, &grid)) return Usage();
    } else if (arg == "--storage") {
      const char* v = next();
      if (!v) return Usage();
      storage = v;
    } else if (arg == "--reliable") {
      reliable = true;
    } else if (arg == "--repair") {
      repair.enabled = true;
    } else if (arg == "--anti-entropy-period") {
      long period = 0;
      if (!ParseIntFlag("--anti-entropy-period", next(), 1,
                        3'600'000'000L, &period)) {
        return Usage();
      }
      repair.anti_entropy_period = period;
    } else if (arg == "--loss") {
      if (!ParseDoubleFlag("--loss", next(), 0.0, 1.0, &loss)) return Usage();
    } else if (arg == "--seed") {
      if (!ParseU64Flag("--seed", next(), &seed)) return Usage();
    } else if (arg == "--seeds") {
      if (!ParseIntFlag("--seeds", next(), 1, 100'000, &seeds)) {
        return Usage();
      }
    } else if (arg == "--threads") {
      if (!ParseIntFlag("--threads", next(), 1, 1024, &threads)) {
        return Usage();
      }
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return Usage();
      trace = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage();
      trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg == "--metrics-interval") {
      if (!ParseIntFlag("--metrics-interval", next(), 1, 3'600'000'000L,
                        &metrics_interval)) {
        return Usage();
      }
    } else if (arg == "--provenance") {
      provenance = true;
    } else if (arg == "--provenance-capacity") {
      if (!ParseIntFlag("--provenance-capacity", next(), 1, 1'000'000'000L,
                        &prov_capacity)) {
        return Usage();
      }
    } else if (arg == "--latency") {
      latency = true;
    } else if (arg == "--metrics") {
      metrics_table = true;
    } else if (arg == "--program") {
      const char* v = next();
      if (!v) return Usage();
      extra_programs.push_back(v);
    } else if (arg == "--tenants") {
      if (!ParseIntFlag("--tenants", next(), 1, 4096, &tenants)) {
        return Usage();
      }
    } else if (arg == "--fact") {
      const char* v = next();
      if (!v) return Usage();
      fact_text = v;
    } else if (arg == "--trace-in") {
      const char* v = next();
      if (!v) return Usage();
      trace_in = v;
    } else {
      return Usage();
    }
  }

  if (cmd == "check") return CmdCheck(path);
  if (cmd == "eval") return CmdEval(path, query, magic);
  if (cmd == "stats") {
    return metrics_table ? CmdStatsMetrics(path) : CmdStats(path, latency);
  }
  if (cmd == "explain") {
    return CmdExplain(path, fact_text, trace_in, events,
                      static_cast<int>(grid), storage, loss, reliable, repair,
                      seed, static_cast<size_t>(prov_capacity));
  }
  if (cmd == "simulate") {
    if (events.empty()) return Usage();
    bool multi = !extra_programs.empty() || tenants > 1;
    if (seeds > 1) {
      if (!trace.empty() || !trace_out.empty() || !metrics_out.empty()) {
        std::fprintf(stderr,
                     "dlog: --seeds is incompatible with --trace, "
                     "--trace-out and --metrics-out (per-run outputs)\n");
        return 64;
      }
      int t = threads > 0 ? static_cast<int>(threads) : DefaultThreadCount();
      std::vector<std::string> paths;
      paths.push_back(path);
      paths.insert(paths.end(), extra_programs.begin(), extra_programs.end());
      auto tp = LoadTenantPrograms(paths, tenants);
      if (!tp.ok()) return Fail(tp.status());
      return CmdSimulateSweep(*tp, events, static_cast<int>(grid), storage,
                              loss, reliable, repair, provenance, seed,
                              static_cast<uint64_t>(seeds), t);
    }
    if (multi) {
      if (!trace.empty() || !trace_out.empty() || metrics_interval > 0) {
        std::fprintf(stderr,
                     "dlog: --program/--tenants is incompatible with "
                     "--trace, --trace-out and --metrics-interval\n");
        return 64;
      }
      std::vector<std::string> paths;
      paths.push_back(path);
      paths.insert(paths.end(), extra_programs.begin(), extra_programs.end());
      auto tp = LoadTenantPrograms(paths, tenants);
      if (!tp.ok()) return Fail(tp.status());
      return CmdSimulateTenants(*tp, events, static_cast<int>(grid), storage,
                                loss, reliable, repair, seed, provenance,
                                metrics_out);
    }
    return CmdSimulate(path, events, static_cast<int>(grid), storage, loss,
                       reliable, repair, seed, provenance,
                       static_cast<size_t>(prov_capacity), metrics_interval,
                       trace, trace_out, metrics_out);
  }
  return Usage();
}
