// R-Tab-2: program compactness — §II-B: "The given logic program is ...
// more compact than the 20 lines of procedural code written in Kairos".
// We count rules, body literals and source lines of the deductive programs
// and set them against procedural equivalents (the paper's Kairos figure
// for the SPT; this repo's hand-written protocol for the same task).

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

struct Entry {
  const char* name;
  const char* text;
  const char* procedural_note;
  int procedural_loc;
};

int CountLines(const char* text) {
  int lines = 0;
  for (const char* p = text; *p; ++p) {
    if (*p == '\n') ++lines;
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Tab-2: deductive program compactness\n\n");

  const Entry entries[] = {
      {"uncovered-vehicle", R"(cov(L1, T) :- enemy(L1, T, N1), friendly(L2, T, N2), dist(L1, L2) <= 5.0.
uncov(L, T) :- enemy(L, T, N), NOT cov(L, T).)",
       "hand-rolled spatial join + alert tracking", 120},
      {"trajectories", R"(notstartreport(R2) :- report(R1), report(R2), close(R1, R2).
notlastreport(R1) :- report(R1), report(R2), close(R1, R2).
traj([R2, R1]) :- report(R1), report(R2), close(R1, R2), NOT notstartreport(R1).
traj([R2, X | R]) :- traj([X | R]), report(R2), close(X, R2).
completetraj([X | R]) :- traj([X | R]), NOT notlastreport(X).)",
       "distributed path stitching (est.)", 200},
      {"spt-logicJ", R"(j(0, 0).
j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).)",
       "Kairos SPT (paper: ~20 lines) / this repo: 70", 20},
  };

  TablePrinter table({"program", "rules", "literals", "src_lines",
                      "proc_loc", "ratio"});
  for (const Entry& e : entries) {
    Program p = MustParse(e.text);
    int literals = 0;
    for (const Rule& r : p.rules()) {
      literals += static_cast<int>(r.body.size());
    }
    int lines = CountLines(e.text) + 1;
    table.Row({e.name, U64(static_cast<uint64_t>(p.rules().size())),
               U64(static_cast<uint64_t>(literals)),
               U64(static_cast<uint64_t>(lines)),
               U64(static_cast<uint64_t>(e.procedural_loc)),
               Dbl(static_cast<double>(e.procedural_loc) / lines)});
  }
  std::printf("\n# procedural figures: the SPT number is the paper's Kairos\n"
              "# count; this repo's own procedural SPT protocol is 70 lines\n"
              "# of C++ (src/deduce/baselines/procedural_spt.cc) before any\n"
              "# reliability or maintenance handling the engine provides\n"
              "# for free (deletions, windows, retractions).\n");
  return 0;
}
