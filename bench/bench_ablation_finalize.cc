// R-Abl-3: the §IV-C finalization wait ("we need to wait for an appropriate
// time before actually finalizing a derived fact") as an ablation: SPT
// construction cost with the wait disabled, short, and at the default
// (τs + τc). Without the wait, transiently-derived tree entries flood the
// network with derive/retract churn before their blockers arrive.

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kLogicJ[] = R"(
  .decl g/2 input storage spatial 1.
  .decl j(y, d) home y stage d storage local.
  .decl j1(y, d) home y stage d storage local.
  j(0, 0).
  j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
  j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
)";

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Abl-3: finalization wait ablation — logicJ SPT, 6x6 grid\n");
  std::printf("# all edges injected simultaneously (worst-case burst)\n\n");
  TablePrinter table({"finalize", "messages", "bytes", "generations",
                      "retractions", "quiesce_s", "correct"});

  Topology topo = Topology::Grid(6);
  Program program = MustParse(kLogicJ);
  for (SimTime delay : std::vector<SimTime>{0, 20'000, 200'000, -1}) {
    MetricsRegistry registry;
    EngineOptions options;
    options.finalize_delay = delay;
    options.metrics = &registry;
    Network net(topo, LinkModel{}, 6);
    auto engine = DistributedEngine::Create(&net, program, options);
    if (!engine.ok()) return 1;
    net.sim().RunUntil(50'000);
    for (int v = 0; v < topo.node_count(); ++v) {
      for (NodeId u : topo.neighbors(v)) {
        (void)(*engine)->Inject(
            v, StreamOp::kInsert,
            Fact(Intern("g"), {Term::Int(v), Term::Int(u)}));
      }
    }
    net.sim().Run();
    bool correct =
        (*engine)->ResultFacts(Intern("j")).size() ==
        static_cast<size_t>(topo.node_count());
    std::string label = delay < 0 ? "auto(τs+τc)"
                                  : Dbl(static_cast<double>(delay) / 1000.0) +
                                        "ms";
    table.Row({label, U64(net.stats().TotalMessages()),
               U64(net.stats().TotalBytes()),
               U64((*engine)->stats().derived_generations),
               U64((*engine)->stats().derived_deletions),
               Dbl(static_cast<double>(net.sim().now()) / 1e6),
               correct ? "yes" : "NO"});
    ReportCustomRun(net, engine->get(), &registry);
  }
  std::printf(
      "\n# every row converges to the same correct tree; the wait trades a\n"
      "# little latency for an order of magnitude less churn.\n");
  return 0;
}
