// Overload wall: the two-stream join driven 1x / 2x / 4x past the
// capacity the per-node budgets were provisioned for. With budgets off
// the replica stores grow with offered load; with budgets on (this
// bench) the stores clamp at the cap, shedding the excess and tainting
// downstream results with the degraded bit instead of inventing or
// silently dropping them. The sweep shows what overload robustness
// buys: live replicas and peak RSS plateau while offered load keeps
// growing, and the shed/degraded counters account for every tuple the
// engine refused to carry.
//
// Two outputs per run:
//   BENCH_bench_overload.json       deterministic counters + registry
//                                   snapshot (byte-identical across
//                                   --threads; gated by
//                                   `bench_compare.py baseline check`)
//   BENCH_bench_overload.perf.json  wall time per point and process peak
//                                   RSS (machine-dependent; gated with
//                                   tolerances by `bench_compare.py perf
//                                   check`)
//
// Flags: --threads N     parallel sweep points (report order is fixed)
//        --base N        offered tuples at 1x (default 2000)
//        --factors a,b   overcommit factors to sweep (default 1,2,4)
//        --smoke         CI profile: 8x8 grid, 600 tuples at 1x

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024ull;
}

/// Pure-insert load: `total` tuples uniform over the grid, key range
/// scaled with the load so join fan-out stays linear in `total` (about
/// eight tuples share a key at any factor).
std::vector<WorkItem> OfferedLoad(int nodes, int total, uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkItem> out;
  SimTime t = 10'000;
  int key_range = std::max(2, total / 8);
  for (int i = 0; i < total; ++i, t += 40'000) {
    NodeId node = static_cast<NodeId>(rng.Uniform(0, nodes - 1));
    Fact f(Intern(rng.Bernoulli(0.5) ? "r" : "s"),
           {Term::Int(rng.Uniform(0, key_range - 1)), Term::Int(node),
            Term::Int(i)});
    out.push_back({t, node, StreamOp::kInsert, f});
  }
  return out;
}

struct PointResult {
  CollectedRun run;
  EngineStats stats;
  double wall_s = 0;
};

/// One sweep point. The budget is identical at every factor: it is the
/// provisioned capacity, and the sweep varies only the offered load.
PointResult RunPoint(int m, uint64_t replica_cap,
                     const std::vector<WorkItem>& work) {
  PointResult out;
  auto start = std::chrono::steady_clock::now();
  Network net(Topology::Grid(m), LinkModel{}, /*seed=*/1);
  net.EnableBatchedDelivery(true);
  EngineOptions options;
  options.planner.default_storage = StoragePolicy::kRow;
  options.budget.enabled = true;
  options.budget.max_replicas_per_pred = replica_cap;
  options.budget.policy = ShedPolicy::kShedNewest;
  if (BenchReport::Get().enabled()) options.metrics = &out.run.registry;
  Program program = MustParse(kProgram);
  auto engine = DistributedEngine::Create(&net, program, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::abort();
  }
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    Status st = (*engine)->Inject(item.node, item.op, item.fact);
    if (!st.ok()) std::fprintf(stderr, "inject: %s\n", st.ToString().c_str());
  }
  net.sim().Run();
  out.run.metrics = CollectRunMetrics(net, (*engine).get(), options.metrics);
  out.run.metrics.result_count = (*engine)->ResultFacts(Intern("t")).size();
  out.run.reportable = options.metrics != nullptr;
  out.stats = (*engine)->stats();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

std::vector<int> ParseFactors(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    int x = std::atoi(csv.substr(pos, comma - pos).c_str());
    if (x < 1 || x > 64) {
      std::fprintf(stderr, "bad --factors entry: %s\n", csv.c_str());
      std::exit(64);
    }
    out.push_back(x);
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  deduce::bench::OpenBenchReport(argv[0]);
  int threads = ThreadsFromArgs(argc, argv);
  int m = 12;
  int base = 2000;
  std::vector<int> factors = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      m = 8;
      base = 600;
    } else if (arg == "--base" && i + 1 < argc) {
      base = std::atoi(argv[++i]);
      if (base < 16) {
        std::fprintf(stderr, "bad --base value\n");
        return 64;
      }
    } else if (arg == "--factors" && i + 1 < argc) {
      factors = ParseFactors(argv[++i]);
    }
  }
  // Provision the replica budget for the 1x point with ~50% headroom:
  // uniform injections put about base/(2*m) live replicas of each stream
  // on the average row node, and the slack absorbs placement skew, so 1x
  // runs (nearly) shed-free and every factor beyond it overcommits the
  // same fixed budget.
  uint64_t replica_cap =
      static_cast<uint64_t>(base) * 150 / (2 * static_cast<uint64_t>(m)) / 100;

  std::printf("# overload sweep: two-stream join (PA row storage), "
              "budgets on, shed-newest\n");
  std::printf("# grid %dx%d, replica cap %llu per pred per node, offered "
              "load %d tuples at 1x\n\n",
              m, m, static_cast<unsigned long long>(replica_cap), base);

  struct Point {
    int factor;
    int tuples;
    std::vector<WorkItem> work;
  };
  std::vector<Point> points;
  for (int x : factors) {
    int tuples = base * x;
    points.push_back(
        {x, tuples, OfferedLoad(m * m, tuples, 7100 + static_cast<uint64_t>(x))});
  }

  TablePrinter table({"load", "offered", "results", "degraded_pct", "sheds",
                      "evictions", "replicas", "messages", "wall_s"});
  std::vector<double> walls(points.size(), 0);
  RunTrials(
      points.size(), threads,
      [&](size_t i) {
        return RunPoint(m, replica_cap, points[i].work);
      },
      [&](size_t i, PointResult r) {
        const Point& p = points[i];
        ReportCollected(r.run);
        walls[i] = r.wall_s;
        const RunMetrics& rm = r.run.metrics;
        double degraded_pct =
            rm.result_count == 0
                ? 0.0
                : 100.0 * static_cast<double>(r.stats.degraded_results) /
                      static_cast<double>(rm.result_count);
        table.Row({std::to_string(p.factor) + "x",
                   U64(static_cast<uint64_t>(p.tuples)),
                   U64(rm.result_count), Dbl(degraded_pct, 1),
                   U64(r.stats.sheds), U64(r.stats.budget_evictions),
                   U64(rm.total_replicas), U64(rm.total_messages),
                   Dbl(r.wall_s, 2)});
      });

  uint64_t peak = PeakRssBytes();
  std::printf("\npeak RSS: %.1f MiB\n",
              static_cast<double>(peak) / (1024.0 * 1024.0));

  // Machine-dependent sidecar: wall time per point + process peak RSS.
  // Separate file so BENCH_bench_overload.json stays byte-identical
  // across --threads (the parallelism gate byte-compares it).
  std::ofstream perf("BENCH_bench_overload.perf.json");
  if (perf) {
    perf << "{\"bench\":\"bench_overload\",\"peak_rss_bytes\":" << peak
         << ",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"label\":\"%dx\",\"nodes\":%d,\"tuples\":%d,"
                    "\"wall_time_s\":%.3f}",
                    i == 0 ? "" : ",", points[i].factor, m * m,
                    points[i].tuples, walls[i]);
      perf << buf;
    }
    perf << "]}\n";
  }
  return 0;
}
