// R-Fig-6: robustness under message loss — the §VI testbed ran over real
// lossy radios; our "testbed profile" injects per-hop loss and clock skew.
// We measure completeness (fraction of the loss-free result derived) and
// soundness (fraction of derived results that are correct) of a two-stream
// join as the loss rate grows.
//
// Expected shape: completeness degrades gracefully (each tuple is
// replicated along a whole row, so a single lost hop rarely erases a
// result); soundness stays near 1 for positive programs.

#include <set>

#include "bench_util.h"
#include "deduce/eval/incremental.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

}  // namespace

int main() {
  std::printf("# R-Fig-6: join completeness vs per-hop loss rate, 10x10 grid\n");
  std::printf("# testbed profile: jittered delays, 2 ms clock skew\n\n");

  TablePrinter table({"loss", "derived", "expected", "completeness",
                      "soundness", "messages"});
  Topology topo = Topology::Grid(10);
  Program program = MustParse(kProgram);
  std::vector<WorkItem> work =
      UniformJoinWorkload(topo.node_count(), 2, 20, 31337);

  // Loss-free reference.
  auto reference = IncrementalEngine::Create(program, IncrementalOptions{});
  if (!reference.ok()) return 1;
  for (const WorkItem& item : work) {
    StreamEvent ev;
    ev.op = item.op;
    ev.fact = item.fact;
    ev.id = TupleId{item.node, item.time, 0};
    ev.time = item.time;
    (void)(*reference)->Apply(ev, nullptr);
  }
  std::set<std::string> expected;
  for (const Fact& f : (*reference)->AliveFacts(Intern("t"))) {
    expected.insert(f.ToString());
  }

  for (double loss : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3}) {
    LinkModel link = LinkModel::Testbed();
    link.loss_rate = loss;
    Network net(topo, link, 11);
    auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
    if (!engine.ok()) return 1;
    for (const WorkItem& item : work) {
      net.sim().RunUntil(item.time);
      (void)(*engine)->Inject(item.node, item.op, item.fact);
    }
    net.sim().Run();
    std::set<std::string> got;
    for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
      got.insert(f.ToString());
    }
    size_t sound = 0;
    for (const std::string& f : got) {
      if (expected.count(f)) ++sound;
    }
    table.Row({Dbl(loss, 2), U64(got.size()), U64(expected.size()),
               Dbl(expected.empty()
                       ? 1.0
                       : static_cast<double>(sound) /
                             static_cast<double>(expected.size()),
                   3),
               Dbl(got.empty() ? 1.0
                               : static_cast<double>(sound) /
                                     static_cast<double>(got.size()),
                   3),
               U64(net.stats().TotalMessages())});
  }
  return 0;
}
