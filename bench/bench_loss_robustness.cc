// R-Fig-6: robustness under message loss, node failure, partition, and
// payload corruption — the §VI testbed ran over real lossy radios; our
// "testbed profile" injects per-hop loss and clock skew, and the fault
// plan injects crashes, crash-reboot churn, link cuts, and byte-flips.
// We measure completeness (fraction of the loss-free result derived) and
// soundness (fraction of derived results that are correct) of a
// two-stream join, with the end-to-end reliable transport off
// (best-effort, the paper's implicit model) and on.
//
// Expected shape: best-effort completeness degrades gracefully with loss
// (row replication absorbs single lost hops) but falls off a cliff when
// sweep-column nodes die or the grid is split in half; the reliable
// transport holds completeness near 1 in both regimes at the price of
// acks and retransmissions — including across a healed partition, where
// its retry timers carry traffic over the repaired cut. Corruption rows
// show the per-hop frame checksum trading completeness (corrupt frames
// are dropped, then retried or lost) for soundness; with the checksum
// off, bit-flipped payloads decode into phantom tuples and the
// soundness column dips below 1.

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deduce/common/parallel.h"
#include "deduce/eval/incremental.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

/// The loss-free, failure-free reference: run `work` through the
/// centralized incremental engine.
std::set<std::string> Reference(const Program& program,
                                const std::vector<WorkItem>& work) {
  auto reference = IncrementalEngine::Create(program, IncrementalOptions{});
  if (!reference.ok()) std::abort();
  for (const WorkItem& item : work) {
    StreamEvent ev;
    ev.op = item.op;
    ev.fact = item.fact;
    ev.id = TupleId{item.node, item.time, 0};
    ev.time = item.time;
    (void)(*reference)->Apply(ev, nullptr);
  }
  std::set<std::string> expected;
  for (const Fact& f : (*reference)->AliveFacts(Intern("t"))) {
    expected.insert(f.ToString());
  }
  return expected;
}

struct Outcome {
  std::set<std::string> got;
  uint64_t messages = 0;
  uint64_t retransmissions = 0;
  uint64_t gave_up = 0;
  uint64_t repaired = 0;
  CollectedRun report;
};

/// One configured trial. Trials run on worker threads, so Run() must not
/// touch the BenchReport or stdout — the reduce step does both in
/// submission order, keeping output identical to a serial run.
struct Trial {
  std::string scenario;
  bool reliable = false;
  LinkModel link;
  std::vector<WorkItem> work;
  std::optional<FaultPlan> faults;
  std::set<std::string> expected;
  bool checksum = false;
};

Outcome Run(const Topology& topo, const Program& program,
            const LinkModel& link, bool reliable,
            const std::vector<WorkItem>& work, const FaultPlan* faults,
            bool checksum) {
  Network net(topo, link, 11);
  if (faults != nullptr) net.ApplyFaultPlan(*faults);
  Outcome out;
  EngineOptions options;
  options.transport.reliable = reliable;
  options.checksum = checksum;
  options.metrics = &out.report.registry;
  auto engine = DistributedEngine::Create(&net, program, options);
  if (!engine.ok()) std::abort();
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    (void)(*engine)->Inject(item.node, item.op, item.fact);
  }
  net.sim().Run();
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    out.got.insert(f.ToString());
  }
  out.messages = net.stats().TotalMessages();
  out.retransmissions = (*engine)->stats().retransmissions;
  out.gave_up = (*engine)->stats().gave_up_messages;
  out.repaired = (*engine)->stats().repaired_messages;
  out.report.metrics =
      CollectRunMetrics(net, engine->get(), &out.report.registry);
  out.report.reportable = true;
  return out;
}

void PrintRow(TablePrinter& table, const std::string& scenario, bool reliable,
              const Outcome& out, const std::set<std::string>& expected) {
  size_t sound = 0;
  for (const std::string& f : out.got) {
    if (expected.count(f)) ++sound;
  }
  table.Row({scenario, reliable ? "on" : "off", U64(out.got.size()),
             U64(expected.size()),
             Dbl(expected.empty() ? 1.0
                                  : static_cast<double>(sound) /
                                        static_cast<double>(expected.size()),
                 3),
             Dbl(out.got.empty() ? 1.0
                                 : static_cast<double>(sound) /
                                       static_cast<double>(out.got.size()),
                 3),
             U64(out.messages), U64(out.retransmissions),
             U64(out.gave_up + out.repaired)});
}

}  // namespace

int main(int argc, char** argv) {
  deduce::bench::OpenBenchReport(argv[0]);
  int threads = ThreadsFromArgs(argc, argv);
  std::printf(
      "# R-Fig-6: join completeness vs per-hop loss, node failure, churn,\n"
      "# partition, and payload corruption, 10x10 grid, testbed profile\n"
      "# (jittered delays, 2 ms skew, MAC retries=2). transport =\n"
      "# end-to-end ACK/retransmit engine transport (off = best-effort,\n"
      "# the paper's implicit model). corrupt rows run with the per-hop\n"
      "# frame checksum on, except the !ck row.\n\n");

  Topology topo = Topology::Grid(10);
  Program program = MustParse(kProgram);
  std::vector<WorkItem> work =
      UniformJoinWorkload(topo.node_count(), 2, 20, 31337);

  // All trial specs (and their oracle result sets) are built up front on
  // the main thread; the trials themselves are independent and run under
  // RunTrials, which reduces (prints + reports) in submission order.
  std::vector<Trial> trials;

  // --- per-hop loss sweep, no failures ---
  std::set<std::string> expected = Reference(program, work);
  for (double loss : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3}) {
    LinkModel link = LinkModel::Testbed();
    link.loss_rate = loss;
    for (bool reliable : {false, true}) {
      trials.push_back({"loss=" + Dbl(loss, 2), reliable, link, work,
                        std::nullopt, expected});
    }
  }

  // --- dead-node sweep: n interior nodes crashed from t=0, no loss ---
  // Dead sensors generate nothing: the reference excludes their items.
  std::vector<NodeId> victims = {
      topo.GridNode(5, 3), topo.GridNode(5, 5), topo.GridNode(5, 7),
      topo.GridNode(3, 4), topo.GridNode(7, 6)};
  for (size_t n : {size_t{1}, size_t{3}, size_t{5}}) {
    FaultPlan faults;
    std::set<NodeId> dead;
    for (size_t i = 0; i < n; ++i) {
      faults.Fail(0, victims[i]);
      dead.insert(victims[i]);
    }
    std::vector<WorkItem> alive_work;
    for (const WorkItem& item : work) {
      if (!dead.count(item.node)) alive_work.push_back(item);
    }
    std::set<std::string> achievable = Reference(program, alive_work);
    for (bool reliable : {false, true}) {
      trials.push_back({"dead=" + U64(n), reliable, LinkModel::Testbed(),
                        alive_work, faults, achievable});
    }
  }

  // --- crash-reboot churn: 5 interior nodes cycle down for 1 s each,
  // staggered across the run; reboot clears volatile state ---
  FaultPlan churn = FaultPlan::Churn(victims, /*first_fail=*/500'000,
                                     /*downtime=*/1'000'000,
                                     /*stagger=*/1'500'000);
  auto down_at = [&](NodeId node, SimTime t) {
    SimTime fail = 500'000;
    for (NodeId v : victims) {
      if (v == node && t >= fail && t < fail + 1'000'000) return true;
      fail += 1'500'000;
    }
    return false;
  };
  std::vector<WorkItem> churn_work;
  for (const WorkItem& item : work) {
    if (!down_at(item.node, item.time)) churn_work.push_back(item);
  }
  std::set<std::string> achievable = Reference(program, churn_work);
  for (bool reliable : {false, true}) {
    trials.push_back({"churn", reliable, LinkModel::Testbed(), churn_work,
                      churn, achievable});
  }

  // --- network partition: the grid splits into left/right halves, then
  // the cut heals (or never does). The cut lands mid-sweep: §IV-C's
  // join delay (τs+τc) means join sweeps trail injections by seconds,
  // so a cut during the injection phase (before ~9 s) would predate
  // every sweep and zero the result wholesale — cutting at 10–12 s
  // bisects the live sweep traffic instead. All sensors stay up, so the
  // full reference remains the yardstick: completeness shows what the
  // split cost, and the reliable transport's retries carry straddling
  // sweeps across the healed cut.
  int side = *topo.grid_side();
  std::vector<NodeId> left, right;
  for (int p = 0; p < side; ++p) {
    for (int q = 0; q < side; ++q) {
      (q < side / 2 ? left : right).push_back(topo.GridNode(p, q));
    }
  }
  for (bool heal : {true, false}) {
    FaultPlan split;
    SimTime cut_at = heal ? 10'000'000 : 12'000'000;
    split.CutLinks(cut_at, left, right);
    split.CutLinks(cut_at, right, left);
    if (heal) {
      split.HealLinks(14'000'000, left, right);
      split.HealLinks(14'000'000, right, left);
    }
    for (bool reliable : {false, true}) {
      trials.push_back({heal ? "partition(heal)" : "partition(perm)",
                        reliable, LinkModel::Testbed(), work, split,
                        expected});
    }
  }

  // --- payload corruption: byte-flips on every link from 2 s (storage
  // phase of most items) until 15 s (most of the sweep phase), then the
  // radio recovers. (A window, not the whole run: at these rates a
  // multi-hop delivery rarely survives intact, so permanent corruption
  // just measures the retry budget — and with the checksum off, garbled
  // frames decode into garbage storage walks that spawn further
  // corruptible traffic.) With the per-hop frame checksum on, corrupt
  // frames are detected and dropped (extra loss, soundness stays 1);
  // the final no-checksum row lets garbled payloads through to the
  // decoders and phantom tuples show up as soundness < 1.
  for (double rate : {0.05, 0.15, 0.3}) {
    FaultPlan flip;
    flip.CorruptLinks(2'000'000, {}, {}, rate);
    flip.HealLinks(15'000'000, {}, {});
    for (bool reliable : {false, true}) {
      trials.push_back({"corrupt=" + Dbl(rate, 2), reliable,
                        LinkModel::Testbed(), work, flip, expected,
                        /*checksum=*/true});
    }
  }
  {
    FaultPlan flip;
    flip.CorruptLinks(2'000'000, {}, {}, 0.15);
    flip.HealLinks(15'000'000, {}, {});
    for (bool reliable : {false, true}) {
      trials.push_back({"corrupt=0.15!ck", reliable, LinkModel::Testbed(),
                        work, flip, expected, /*checksum=*/false});
    }
  }

  TablePrinter table({"scenario", "transport", "derived", "expected",
                      "completeness", "soundness", "messages", "retx",
                      "giveup+rep"});
  RunTrials(
      trials.size(), threads,
      [&](size_t i) {
        const Trial& t = trials[i];
        return Run(topo, program, t.link, t.reliable, t.work,
                   t.faults ? &*t.faults : nullptr, t.checksum);
      },
      [&](size_t i, Outcome out) {
        ReportCollected(out.report);
        PrintRow(table, trials[i].scenario, trials[i].reliable, out,
                 trials[i].expected);
      });
  return 0;
}
