// R-Fig-6: robustness under message loss and node failure — the §VI
// testbed ran over real lossy radios; our "testbed profile" injects
// per-hop loss and clock skew, and the fault plan injects crashes and
// crash-reboot churn. We measure completeness (fraction of the loss-free
// result derived) and soundness (fraction of derived results that are
// correct) of a two-stream join, with the end-to-end reliable transport
// off (best-effort, the paper's implicit model) and on.
//
// Expected shape: best-effort completeness degrades gracefully with loss
// (row replication absorbs single lost hops) but falls off a cliff when
// sweep-column nodes die; the reliable transport holds completeness near
// 1 in both regimes at the price of acks and retransmissions.

#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deduce/eval/incremental.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

/// The loss-free, failure-free reference: run `work` through the
/// centralized incremental engine.
std::set<std::string> Reference(const Program& program,
                                const std::vector<WorkItem>& work) {
  auto reference = IncrementalEngine::Create(program, IncrementalOptions{});
  if (!reference.ok()) std::abort();
  for (const WorkItem& item : work) {
    StreamEvent ev;
    ev.op = item.op;
    ev.fact = item.fact;
    ev.id = TupleId{item.node, item.time, 0};
    ev.time = item.time;
    (void)(*reference)->Apply(ev, nullptr);
  }
  std::set<std::string> expected;
  for (const Fact& f : (*reference)->AliveFacts(Intern("t"))) {
    expected.insert(f.ToString());
  }
  return expected;
}

struct Outcome {
  std::set<std::string> got;
  uint64_t messages = 0;
  uint64_t retransmissions = 0;
  uint64_t gave_up = 0;
  uint64_t repaired = 0;
};

Outcome Run(const Topology& topo, const Program& program,
            const LinkModel& link, bool reliable,
            const std::vector<WorkItem>& work, const FaultPlan* faults) {
  Network net(topo, link, 11);
  if (faults != nullptr) net.ApplyFaultPlan(*faults);
  MetricsRegistry registry;
  EngineOptions options;
  options.transport.reliable = reliable;
  options.metrics = &registry;
  auto engine = DistributedEngine::Create(&net, program, options);
  if (!engine.ok()) std::abort();
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    (void)(*engine)->Inject(item.node, item.op, item.fact);
  }
  net.sim().Run();
  Outcome out;
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    out.got.insert(f.ToString());
  }
  out.messages = net.stats().TotalMessages();
  out.retransmissions = (*engine)->stats().retransmissions;
  out.gave_up = (*engine)->stats().gave_up_messages;
  out.repaired = (*engine)->stats().repaired_messages;
  ReportCustomRun(net, engine->get(), &registry);
  return out;
}

void PrintRow(TablePrinter& table, const std::string& scenario, bool reliable,
              const Outcome& out, const std::set<std::string>& expected) {
  size_t sound = 0;
  for (const std::string& f : out.got) {
    if (expected.count(f)) ++sound;
  }
  table.Row({scenario, reliable ? "on" : "off", U64(out.got.size()),
             U64(expected.size()),
             Dbl(expected.empty() ? 1.0
                                  : static_cast<double>(sound) /
                                        static_cast<double>(expected.size()),
                 3),
             Dbl(out.got.empty() ? 1.0
                                 : static_cast<double>(sound) /
                                       static_cast<double>(out.got.size()),
                 3),
             U64(out.messages), U64(out.retransmissions),
             U64(out.gave_up + out.repaired)});
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf(
      "# R-Fig-6: join completeness vs per-hop loss, node failure, and\n"
      "# churn, 10x10 grid, testbed profile (jittered delays, 2 ms skew,\n"
      "# MAC retries=2). transport = end-to-end ACK/retransmit engine\n"
      "# transport (off = best-effort, the paper's implicit model).\n\n");

  Topology topo = Topology::Grid(10);
  Program program = MustParse(kProgram);
  std::vector<WorkItem> work =
      UniformJoinWorkload(topo.node_count(), 2, 20, 31337);

  TablePrinter table({"scenario", "transport", "derived", "expected",
                      "completeness", "soundness", "messages", "retx",
                      "giveup+rep"});

  // --- per-hop loss sweep, no failures ---
  std::set<std::string> expected = Reference(program, work);
  for (double loss : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3}) {
    LinkModel link = LinkModel::Testbed();
    link.loss_rate = loss;
    for (bool reliable : {false, true}) {
      Outcome out = Run(topo, program, link, reliable, work, nullptr);
      PrintRow(table, "loss=" + Dbl(loss, 2), reliable, out, expected);
    }
  }

  // --- dead-node sweep: n interior nodes crashed from t=0, no loss ---
  // Dead sensors generate nothing: the reference excludes their items.
  std::vector<NodeId> victims = {
      topo.GridNode(5, 3), topo.GridNode(5, 5), topo.GridNode(5, 7),
      topo.GridNode(3, 4), topo.GridNode(7, 6)};
  for (size_t n : {size_t{1}, size_t{3}, size_t{5}}) {
    FaultPlan faults;
    std::set<NodeId> dead;
    for (size_t i = 0; i < n; ++i) {
      faults.Fail(0, victims[i]);
      dead.insert(victims[i]);
    }
    std::vector<WorkItem> alive_work;
    for (const WorkItem& item : work) {
      if (!dead.count(item.node)) alive_work.push_back(item);
    }
    std::set<std::string> achievable = Reference(program, alive_work);
    for (bool reliable : {false, true}) {
      Outcome out = Run(topo, program, LinkModel::Testbed(), reliable,
                        alive_work, &faults);
      PrintRow(table, "dead=" + U64(n), reliable, out, achievable);
    }
  }

  // --- crash-reboot churn: 5 interior nodes cycle down for 1 s each,
  // staggered across the run; reboot clears volatile state ---
  FaultPlan churn = FaultPlan::Churn(victims, /*first_fail=*/500'000,
                                     /*downtime=*/1'000'000,
                                     /*stagger=*/1'500'000);
  auto down_at = [&](NodeId node, SimTime t) {
    SimTime fail = 500'000;
    for (NodeId v : victims) {
      if (v == node && t >= fail && t < fail + 1'000'000) return true;
      fail += 1'500'000;
    }
    return false;
  };
  std::vector<WorkItem> churn_work;
  for (const WorkItem& item : work) {
    if (!down_at(item.node, item.time)) churn_work.push_back(item);
  }
  std::set<std::string> achievable = Reference(program, churn_work);
  for (bool reliable : {false, true}) {
    Outcome out = Run(topo, program, LinkModel::Testbed(), reliable,
                      churn_work, &churn);
    PrintRow(table, "churn", reliable, out, achievable);
  }
  return 0;
}
