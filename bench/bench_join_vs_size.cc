// R-Fig-1: communication cost of an in-network two-stream join as the
// network grows, comparing the Perpendicular Approach against its GPA
// degenerate cases (Naive Broadcast, Local Storage), the Centroid
// rendezvous, and the external/centralized server baseline (§III-A).
//
// Expected shape (the paper's claim): PA grows ~n^1.5 total (sqrt(n) per
// tuple) and stays within a small constant of the best; Broadcast grows
// ~n^2; Local Storage pays the full network per *update*; Centralized
// concentrates cost near the sink and grows with distance-to-sink.

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Fig-1: two-stream join, total messages vs network size\n");
  std::printf("# workload: 2 tuples per node, key range = nodes/2, no "
              "deletions\n\n");

  struct Approach {
    const char* name;
    std::optional<StoragePolicy> storage;  // nullopt = centralized baseline
  };
  const Approach approaches[] = {
      {"PA", StoragePolicy::kRow},
      {"Broadcast", StoragePolicy::kBroadcast},
      {"LocalStore", StoragePolicy::kLocal},
      {"Centroid", StoragePolicy::kCentroid},
      {"Central", std::nullopt},
  };

  TablePrinter table({"grid", "nodes", "approach", "messages", "bytes",
                      "msg/tuple", "results", "errors"});
  Program program = MustParse(kProgram);
  LinkModel link;

  for (int m : {6, 8, 10, 12, 14}) {
    Topology topo = Topology::Grid(m);
    int nodes = topo.node_count();
    std::vector<WorkItem> work =
        UniformJoinWorkload(nodes, 2, std::max(2, nodes / 2), 1000 + m);
    for (const Approach& a : approaches) {
      RunMetrics metrics;
      if (a.storage.has_value()) {
        EngineOptions options;
        options.planner.default_storage = *a.storage;
        metrics = RunDistributed(topo, program, options, link, work, "t");
      } else {
        metrics = RunCentralized(topo, program, link, work, "t");
      }
      table.Row({std::to_string(m) + "x" + std::to_string(m),
                 U64(static_cast<uint64_t>(nodes)), a.name,
                 U64(metrics.total_messages), U64(metrics.total_bytes),
                 Dbl(static_cast<double>(metrics.total_messages) /
                     static_cast<double>(work.size())),
                 U64(metrics.result_count), U64(metrics.errors)});
    }
  }
  return 0;
}
