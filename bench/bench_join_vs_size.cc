// R-Fig-1: communication cost of an in-network two-stream join as the
// network grows, comparing the Perpendicular Approach against its GPA
// degenerate cases (Naive Broadcast, Local Storage), the Centroid
// rendezvous, and the external/centralized server baseline (§III-A).
//
// Expected shape (the paper's claim): PA grows ~n^1.5 total (sqrt(n) per
// tuple) and stays within a small constant of the best; Broadcast grows
// ~n^2; Local Storage pays the full network per *update*; Centralized
// concentrates cost near the sink and grows with distance-to-sink.

#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deduce/common/parallel.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

}  // namespace

int main(int argc, char** argv) {
  deduce::bench::OpenBenchReport(argv[0]);
  int threads = ThreadsFromArgs(argc, argv);
  std::printf("# R-Fig-1: two-stream join, total messages vs network size\n");
  std::printf("# workload: 2 tuples per node, key range = nodes/2, no "
              "deletions\n\n");

  struct Approach {
    const char* name;
    std::optional<StoragePolicy> storage;  // nullopt = centralized baseline
  };
  const Approach approaches[] = {
      {"PA", StoragePolicy::kRow},
      {"Broadcast", StoragePolicy::kBroadcast},
      {"LocalStore", StoragePolicy::kLocal},
      {"Centroid", StoragePolicy::kCentroid},
      {"Central", std::nullopt},
  };

  Program program = MustParse(kProgram);
  LinkModel link;

  // Trial specs (grid x approach) are laid out up front; workloads are
  // shared per grid size. Trials run on workers, rows/report in order.
  struct Trial {
    int m = 0;
    int nodes = 0;
    const Approach* approach = nullptr;
    const std::vector<WorkItem>* work = nullptr;
    Topology topo;
  };
  std::vector<std::vector<WorkItem>> workloads;
  std::vector<Topology> topos;
  for (int m : {6, 8, 10, 12, 14}) {
    topos.push_back(Topology::Grid(m));
    workloads.push_back(UniformJoinWorkload(
        topos.back().node_count(), 2,
        std::max(2, topos.back().node_count() / 2), 1000 + m));
  }
  std::vector<Trial> trials;
  const int grids[] = {6, 8, 10, 12, 14};
  for (size_t g = 0; g < std::size(grids); ++g) {
    for (const Approach& a : approaches) {
      trials.push_back({grids[g], topos[g].node_count(), &a, &workloads[g],
                        topos[g]});
    }
  }

  TablePrinter table({"grid", "nodes", "approach", "messages", "bytes",
                      "msg/tuple", "results", "errors"});
  RunTrials(
      trials.size(), threads,
      [&](size_t i) {
        const Trial& t = trials[i];
        if (t.approach->storage.has_value()) {
          EngineOptions options;
          options.planner.default_storage = *t.approach->storage;
          return CollectDistributed(t.topo, program, options, link, *t.work,
                                    "t");
        }
        return CollectCentralized(t.topo, program, link, *t.work, "t");
      },
      [&](size_t i, CollectedRun run) {
        const Trial& t = trials[i];
        ReportCollected(run);
        const RunMetrics& metrics = run.metrics;
        table.Row({std::to_string(t.m) + "x" + std::to_string(t.m),
                   U64(static_cast<uint64_t>(t.nodes)), t.approach->name,
                   U64(metrics.total_messages), U64(metrics.total_bytes),
                   Dbl(static_cast<double>(metrics.total_messages) /
                       static_cast<double>(t.work->size())),
                   U64(metrics.result_count), U64(metrics.errors)});
      });
  return 0;
}
