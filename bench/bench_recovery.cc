// R-Fig-6 extension: state recovery for PA storage bands (DESIGN.md §10).
// bench_loss_robustness showed *delivery* robustness (the reliable
// transport); this bench measures *state* robustness: crash-rebooted band
// nodes lose their replica stores, and every later sweep that consults
// them under-reports even though all messages arrive. We compare join
// recall against the no-fault oracle with reboot resync off/on (under
// crash-reboot churn) and with periodic anti-entropy off/on (under heavy
// per-hop loss that truncates storage walks), plus the time a rebooted
// node needs to regain full band coverage.
//
// Expected shape: churn with repair off loses every join that consults a
// wiped node after its reboot; resync restores recall to ~1 for a few
// repair messages per reboot, each completing in single-digit ms. Under
// loss, anti-entropy heals diverged bands between injections, lifting
// recall for later updates at a steady digest-exchange cost.

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deduce/common/parallel.h"
#include "deduce/eval/incremental.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

/// The fault-free reference: run `work` through the centralized
/// incremental engine.
std::set<std::string> Reference(const Program& program,
                                const std::vector<WorkItem>& work) {
  auto reference = IncrementalEngine::Create(program, IncrementalOptions{});
  if (!reference.ok()) std::abort();
  for (const WorkItem& item : work) {
    StreamEvent ev;
    ev.op = item.op;
    ev.fact = item.fact;
    ev.id = TupleId{item.node, item.time, 0};
    ev.time = item.time;
    (void)(*reference)->Apply(ev, nullptr);
  }
  std::set<std::string> expected;
  for (const Fact& f : (*reference)->AliveFacts(Intern("t"))) {
    expected.insert(f.ToString());
  }
  return expected;
}

struct Outcome {
  std::set<std::string> got;
  uint64_t messages = 0;
  EngineStats stats;
  CollectedRun report;
};

/// One configured trial; see bench_loss_robustness for the pattern. Trials
/// run on worker threads, so Run() collects instead of reporting.
struct Trial {
  std::string scenario;
  std::string mode;
  LinkModel link;
  TransportOptions transport;
  RepairOptions repair;
  std::vector<WorkItem> work;
  std::optional<FaultPlan> faults;
  std::set<std::string> expected;
};

Outcome Run(const Topology& topo, const Program& program,
            const LinkModel& link, const TransportOptions& transport,
            const RepairOptions& repair, const std::vector<WorkItem>& work,
            const FaultPlan* faults) {
  Network net(topo, link, 11);
  if (faults != nullptr) net.ApplyFaultPlan(*faults);
  Outcome out;
  EngineOptions options;
  options.transport = transport;
  options.repair = repair;
  options.metrics = &out.report.registry;
  auto engine = DistributedEngine::Create(&net, program, options);
  if (!engine.ok()) std::abort();
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    (void)(*engine)->Inject(item.node, item.op, item.fact);
  }
  net.sim().Run();
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    out.got.insert(f.ToString());
  }
  out.messages = net.stats().TotalMessages();
  out.stats = (*engine)->stats();
  out.report.metrics =
      CollectRunMetrics(net, engine->get(), &out.report.registry);
  out.report.reportable = true;
  return out;
}

void PrintRow(TablePrinter& table, const std::string& scenario,
              const std::string& mode, const Outcome& out,
              const std::set<std::string>& expected) {
  size_t hit = 0;
  for (const std::string& f : out.got) {
    if (expected.count(f)) ++hit;
  }
  const EngineStats& st = out.stats;
  double avg_resync_ms =
      st.resyncs_completed == 0
          ? 0.0
          : static_cast<double>(st.resync_time_us) /
                static_cast<double>(st.resyncs_completed) / 1000.0;
  table.Row({scenario, mode, U64(out.got.size()), U64(expected.size()),
             Dbl(expected.empty() ? 1.0
                                  : static_cast<double>(hit) /
                                        static_cast<double>(expected.size()),
                 3),
             U64(out.messages),
             U64(st.resyncs_completed) + "/" + U64(st.resyncs_started),
             Dbl(avg_resync_ms, 2), U64(st.repair_replicas_pulled),
             U64(st.degraded_results)});
}

}  // namespace

int main(int argc, char** argv) {
  deduce::bench::OpenBenchReport(argv[0]);
  int threads = ThreadsFromArgs(argc, argv);
  std::string series_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--series") series_path = argv[i + 1];
  }
  std::printf(
      "# R-Fig-6 extension: join recall vs the no-fault oracle when band\n"
      "# nodes lose replica state, 10x10 grid, testbed profile.\n"
      "# churn  = 5 interior nodes crash-reboot (1 s down, staggered),\n"
      "#          links lossless: every miss is lost *state*, not delivery.\n"
      "# loss   = per-hop loss 0.15 (1 MAC retry), no crashes: storage\n"
      "#          walks truncate and bands diverge silently.\n"
      "# resync = RepairOptions::enabled (pull at reboot);\n"
      "# ae     = anti_entropy_period = 400 ms (periodic band exchange).\n\n");

  Topology topo = Topology::Grid(10);
  Program program = MustParse(kProgram);
  std::vector<WorkItem> work =
      UniformJoinWorkload(topo.node_count(), 2, 20, 31337);

  // Trial specs and oracle sets are built on the main thread; trials run
  // under RunTrials and are printed/reported in submission order.
  std::vector<Trial> trials;

  // --- crash-reboot churn, lossless links: pure state loss ---
  std::vector<NodeId> victims = {
      topo.GridNode(5, 3), topo.GridNode(5, 5), topo.GridNode(5, 7),
      topo.GridNode(3, 4), topo.GridNode(7, 6)};
  FaultPlan churn = FaultPlan::Churn(victims, /*first_fail=*/500'000,
                                     /*downtime=*/1'000'000,
                                     /*stagger=*/1'500'000);
  // Dead sensors generate nothing: the oracle excludes items injected at a
  // node while it is down.
  auto down_at = [&](NodeId node, SimTime t) {
    SimTime fail = 500'000;
    for (NodeId v : victims) {
      if (v == node && t >= fail && t < fail + 1'000'000) return true;
      fail += 1'500'000;
    }
    return false;
  };
  std::vector<WorkItem> churn_work;
  for (const WorkItem& item : work) {
    if (!down_at(item.node, item.time)) churn_work.push_back(item);
  }
  std::set<std::string> oracle = Reference(program, churn_work);

  LinkModel lossless = LinkModel::Testbed();
  lossless.loss_rate = 0.0;
  for (bool reliable : {false, true}) {
    // none = no repair; resync = reboot resync; ae = anti-entropy only
    // (reboot wipes heal too, but hop-by-hop on the next period instead of
    // immediately at reboot).
    for (const char* mode : {"none", "resync", "ae"}) {
      TransportOptions transport;
      transport.reliable = reliable;
      RepairOptions repair;
      repair.enabled = std::string(mode) == "resync";
      repair.anti_entropy_period =
          std::string(mode) == "ae" ? 400'000 : 0;
      std::string label = std::string("tx=") + (reliable ? "on" : "off") +
                          " repair=" + mode;
      trials.push_back({"churn", label, lossless, transport, repair,
                        churn_work, churn, oracle});
    }
  }

  // --- heavy loss, no crashes: silent band divergence ---
  std::set<std::string> expected = Reference(program, work);
  // MAC retries keep most hops alive (residual hop loss ~2%); the misses
  // that remain are truncated storage walks — silent band divergence,
  // which is exactly what anti-entropy repairs between injections.
  LinkModel lossy = LinkModel::Testbed();
  lossy.loss_rate = 0.15;
  lossy.retries = 1;
  for (bool ae : {false, true}) {
    TransportOptions transport;  // best-effort: isolates the repair effect
    RepairOptions repair;
    repair.anti_entropy_period = ae ? 400'000 : 0;
    trials.push_back({"loss=0.15", std::string("ae=") + (ae ? "on" : "off"),
                      lossy, transport, repair, work, std::nullopt, expected});
  }

  // --series FILE: one extra serial churn+resync run whose registry is
  // snapshotted every 250 ms of simulated time (MetricsSnapshotter), so the
  // repair counters can be plotted as convergence curves instead of only
  // end-of-run totals.
  if (!series_path.empty()) {
    std::ofstream series(series_path);
    if (!series) {
      std::fprintf(stderr, "cannot write --series file %s\n",
                   series_path.c_str());
      return 64;
    }
    Network net(topo, lossless, 11);
    net.ApplyFaultPlan(churn);
    EngineOptions options;
    options.transport.reliable = true;
    options.repair.enabled = true;
    MetricsRegistry registry;
    options.metrics = &registry;
    auto engine = DistributedEngine::Create(&net, program, options);
    if (!engine.ok()) std::abort();
    MetricsSnapshotter snap(&net, &registry, &series, 250'000);
    for (const WorkItem& item : churn_work) {
      snap.RunUntil(item.time);
      (void)(*engine)->Inject(item.node, item.op, item.fact);
    }
    snap.RunToQuiescence();
    std::printf("# --series: churn+resync registry series -> %s\n\n",
                series_path.c_str());
  }

  TablePrinter table({"scenario", "mode", "derived", "expected", "recall",
                      "messages", "resyncs", "avg_resync_ms", "pulled",
                      "degraded"});
  RunTrials(
      trials.size(), threads,
      [&](size_t i) {
        const Trial& t = trials[i];
        return Run(topo, program, t.link, t.transport, t.repair, t.work,
                   t.faults ? &*t.faults : nullptr);
      },
      [&](size_t i, Outcome out) {
        ReportCollected(out.report);
        PrintRow(table, trials[i].scenario, trials[i].mode, out,
                 trials[i].expected);
      });
  return 0;
}
