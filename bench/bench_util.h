#ifndef DEDUCE_BENCH_BENCH_UTIL_H_
#define DEDUCE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "deduce/common/metrics.h"
#include "deduce/common/parallel.h"
#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

namespace deduce::bench {

/// One injected stream update.
struct WorkItem {
  SimTime time;
  NodeId node;
  StreamOp op;
  Fact fact;
};

/// Metrics collected from one run.
struct RunMetrics {
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t max_node_messages = 0;   ///< Hottest node (sent + received).
  double p95_node_messages = 0;
  double avg_node_messages = 0;
  double energy_uj = 0;
  SimTime quiesce_time = 0;         ///< Sim time when the network went idle.
  size_t result_count = 0;
  size_t total_replicas = 0;
  size_t max_node_replicas = 0;
  size_t total_derivations = 0;
  size_t errors = 0;
};

/// Machine-readable bench report: OpenBenchReport(argv[0]) arms it, and
/// every Run* call then appends one entry carrying its RunMetrics plus the
/// full metrics-registry snapshot (per-phase/per-predicate traffic, engine
/// and network counters). Written to BENCH_<basename>.json in the working
/// directory when the process exits.
class BenchReport {
 public:
  static BenchReport& Get() {
    static BenchReport report;
    return report;
  }

  void Open(const char* argv0) {
    std::string name = argv0 == nullptr ? "bench" : argv0;
    size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    path_ = "BENCH_" + name + ".json";
    bench_ = name;
    enabled_ = true;
  }

  bool enabled() const { return enabled_; }

  void AddRun(const RunMetrics& m, const MetricsRegistry& registry) {
    if (!enabled_) return;
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "{\"run\":%zu,\"total_messages\":%llu,\"total_bytes\":%llu,"
        "\"max_node_messages\":%llu,\"p95_node_messages\":%.1f,"
        "\"avg_node_messages\":%.1f,\"energy_uj\":%.1f,"
        "\"quiesce_time_us\":%lld,\"result_count\":%zu,"
        "\"total_replicas\":%zu,\"max_node_replicas\":%zu,"
        "\"total_derivations\":%zu,\"errors\":%zu,\"registry\":",
        runs_.size(), static_cast<unsigned long long>(m.total_messages),
        static_cast<unsigned long long>(m.total_bytes),
        static_cast<unsigned long long>(m.max_node_messages),
        m.p95_node_messages, m.avg_node_messages, m.energy_uj,
        static_cast<long long>(m.quiesce_time), m.result_count,
        m.total_replicas, m.max_node_replicas, m.total_derivations, m.errors);
    // Timing histograms are wall-clock and would make the report differ
    // between otherwise-identical runs; the bench-smoke CI gate byte-compares
    // parallel vs serial reports, so only deterministic entries are emitted.
    runs_.push_back(std::string(buf) +
                    registry.ToJson(/*include_timing=*/false) + "}");
  }

  ~BenchReport() {
    if (!enabled_ || runs_.empty()) return;
    std::ofstream out(path_);
    if (!out) return;
    out << "{\"bench\":\"" << bench_ << "\",\"runs\":[";
    for (size_t i = 0; i < runs_.size(); ++i) {
      out << (i == 0 ? "" : ",") << runs_[i];
    }
    out << "]}\n";
  }

 private:
  bool enabled_ = false;
  std::string path_;
  std::string bench_;
  std::vector<std::string> runs_;
};

/// Call first thing in main(): arms the per-binary BENCH_<name>.json report.
inline void OpenBenchReport(const char* argv0) {
  BenchReport::Get().Open(argv0);
}

inline Program MustParse(const std::string& text) {
  auto p = ParseProgram(text);
  if (!p.ok()) {
    std::fprintf(stderr, "parse error: %s\n", p.status().ToString().c_str());
    std::abort();
  }
  return std::move(p).value();
}

inline void FillNodeLoad(const Network& net, RunMetrics* m) {
  std::vector<uint64_t> loads;
  for (const auto& p : net.stats().per_node) {
    loads.push_back(p.sent_messages + p.received_messages);
  }
  std::sort(loads.begin(), loads.end());
  if (loads.empty()) return;
  m->max_node_messages = loads.back();
  m->p95_node_messages =
      static_cast<double>(loads[loads.size() * 95 / 100]);
  double sum = 0;
  for (uint64_t l : loads) sum += static_cast<double>(l);
  m->avg_node_messages = sum / static_cast<double>(loads.size());
}

/// Everything one trial produces for the report: the summary metrics, the
/// registry snapshot, and whether the trial attached a registry at all
/// (reports are skipped otherwise, matching the legacy inline behaviour).
/// Trials running on worker threads return one of these; the caller reports
/// it from the reduce step so BENCH_<name>.json order matches serial runs.
struct CollectedRun {
  RunMetrics metrics;
  MetricsRegistry registry;
  bool reportable = false;
};

/// Appends a collected trial to the armed bench report. Call only from the
/// reduce step of RunTrials (or any single-threaded context): BenchReport
/// is not thread-safe and report order must match submission order.
inline void ReportCollected(const CollectedRun& run) {
  if (run.reportable) BenchReport::Get().AddRun(run.metrics, run.registry);
}

/// Fills RunMetrics from a finished network/engine and exports their stats
/// into `registry`. Safe to call from worker threads: touches only `net`,
/// `engine`, and `registry`. `engine` may be null (procedural baselines).
inline RunMetrics CollectRunMetrics(Network& net,
                                    const DistributedEngine* engine,
                                    MetricsRegistry* registry) {
  RunMetrics m;
  m.total_messages = net.stats().TotalMessages();
  m.total_bytes = net.stats().TotalBytes();
  m.energy_uj = net.stats().TotalEnergyMicroJ();
  m.quiesce_time = net.sim().now();
  FillNodeLoad(net, &m);
  if (engine != nullptr) {
    m.total_replicas = engine->TotalReplicas();
    m.max_node_replicas = engine->MaxNodeReplicas();
    m.total_derivations = engine->TotalDerivations();
    m.errors = engine->stats().errors.size();
    if (registry != nullptr) engine->stats().ExportTo(registry);
  }
  if (registry != nullptr) net.stats().ExportTo(registry);
  return m;
}

/// For benches with hand-rolled run loops (not using RunDistributed /
/// RunCentralized): attach `registry` via EngineOptions::metrics before
/// DistributedEngine::Create, run, then call this once per run so the
/// BENCH_<name>.json report still carries the registry snapshot.
/// `engine` may be null (e.g. procedural baselines).
inline void ReportCustomRun(Network& net, const DistributedEngine* engine,
                            MetricsRegistry* registry) {
  if (!BenchReport::Get().enabled() || registry == nullptr) return;
  RunMetrics m = CollectRunMetrics(net, engine, registry);
  BenchReport::Get().AddRun(m, *registry);
}

/// Runs `work` through a DistributedEngine and collects metrics without
/// touching the (single-threaded) BenchReport — safe on worker threads.
/// `result_pred` counts final derived facts (empty = skip).
inline CollectedRun CollectDistributed(const Topology& topology,
                                       const Program& program,
                                       const EngineOptions& options,
                                       const LinkModel& link,
                                       const std::vector<WorkItem>& work,
                                       const std::string& result_pred,
                                       uint64_t seed = 1) {
  CollectedRun out;
  Network net(topology, link, seed);
  // When the report is armed, attach a registry so the snapshot carries
  // per-phase/per-predicate traffic. This only adds bookkeeping on the
  // simulated hot path — message counts and sim timings are unchanged.
  EngineOptions run_options = options;
  if (run_options.metrics == nullptr && BenchReport::Get().enabled()) {
    run_options.metrics = &out.registry;
  }
  auto engine = DistributedEngine::Create(&net, program, run_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::abort();
  }
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    Status st = (*engine)->Inject(item.node, item.op, item.fact);
    if (!st.ok()) {
      std::fprintf(stderr, "inject: %s\n", st.ToString().c_str());
    }
  }
  net.sim().Run();

  out.metrics = CollectRunMetrics(net, (*engine).get(), run_options.metrics);
  if (!result_pred.empty()) {
    out.metrics.result_count =
        (*engine)->ResultFacts(Intern(result_pred)).size();
  }
  if (run_options.metrics != nullptr) {
    // Caller-provided registries get the exports too; snapshot them so the
    // report entry matches what the inline path always recorded.
    if (run_options.metrics != &out.registry) {
      out.registry = *run_options.metrics;
    }
    out.reportable = true;
  }
  return out;
}

/// Runs `work` through a DistributedEngine, reports to the armed bench
/// report inline, and returns the metrics. Single-threaded use only.
inline RunMetrics RunDistributed(const Topology& topology,
                                 const Program& program,
                                 const EngineOptions& options,
                                 const LinkModel& link,
                                 const std::vector<WorkItem>& work,
                                 const std::string& result_pred,
                                 uint64_t seed = 1) {
  CollectedRun run = CollectDistributed(topology, program, options, link,
                                        work, result_pred, seed);
  ReportCollected(run);
  return run.metrics;
}

/// Runs `work` through the centralized (external server) baseline without
/// touching the BenchReport — safe on worker threads.
inline CollectedRun CollectCentralized(const Topology& topology,
                                       const Program& program,
                                       const LinkModel& link,
                                       const std::vector<WorkItem>& work,
                                       const std::string& result_pred,
                                       uint64_t seed = 1) {
  CollectedRun out;
  Network net(topology, link, seed);
  auto engine =
      CentralizedEngine::Create(&net, program, /*sink=*/0, IncrementalOptions{});
  if (!engine.ok()) {
    std::fprintf(stderr, "central: %s\n", engine.status().ToString().c_str());
    std::abort();
  }
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    (void)(*engine)->Inject(item.node, item.op, item.fact);
  }
  net.sim().Run();

  out.metrics = CollectRunMetrics(net, /*engine=*/nullptr, /*registry=*/nullptr);
  if (!result_pred.empty()) {
    out.metrics.result_count =
        (*engine)->ResultFacts(Intern(result_pred)).size();
  }
  out.metrics.errors = (*engine)->errors().size();
  if (BenchReport::Get().enabled()) {
    net.stats().ExportTo(&out.registry);
    out.reportable = true;
  }
  return out;
}

/// Runs `work` through the centralized baseline, reporting inline.
inline RunMetrics RunCentralized(const Topology& topology,
                                 const Program& program,
                                 const LinkModel& link,
                                 const std::vector<WorkItem>& work,
                                 const std::string& result_pred,
                                 uint64_t seed = 1) {
  CollectedRun run =
      CollectCentralized(topology, program, link, work, result_pred, seed);
  ReportCollected(run);
  return run.metrics;
}

/// Periodic registry snapshotter for hand-rolled bench loops: drives the
/// simulator in interval-sized chunks and appends one time-resolved
/// {"time":T,"metrics":[...]} row (MetricsRegistry::ToJsonRow) per elapsed
/// interval of *simulated* time. No repeating simulator event is scheduled,
/// so quiescence detection is untouched — the same scheme as
/// `dlog simulate --metrics-interval`. Single-threaded use only.
class MetricsSnapshotter {
 public:
  MetricsSnapshotter(Network* net, const MetricsRegistry* registry,
                     std::ostream* out, SimTime interval_us)
      : net_(net),
        registry_(registry),
        out_(out),
        interval_(interval_us <= 0 ? 1 : interval_us),
        next_(net->sim().now() + interval_) {}

  /// Advances simulated time to `t`, emitting one row per interval crossed.
  void RunUntil(SimTime t) {
    while (next_ < t) {
      net_->sim().RunUntil(next_);
      *out_ << registry_->ToJsonRow(next_) << "\n";
      next_ += interval_;
    }
    net_->sim().RunUntil(t);
  }

  /// Drains the simulator to quiescence (pending() == 0), then emits a
  /// final row stamped with the quiescence time.
  void RunToQuiescence() {
    while (net_->sim().pending() > 0) {
      net_->sim().RunUntil(next_);
      if (net_->sim().pending() > 0) {
        *out_ << registry_->ToJsonRow(next_) << "\n";
      }
      next_ += interval_;
    }
    *out_ << registry_->ToJsonRow(net_->sim().now()) << "\n";
  }

 private:
  Network* net_;
  const MetricsRegistry* registry_;
  std::ostream* out_;
  SimTime interval_;
  SimTime next_;
};

/// Runs the simulation to quiescence, emitting one registry row every
/// `interval_us` of simulated time plus a final quiescence-stamped row.
inline void RunWithSnapshots(Network& net, const MetricsRegistry& registry,
                             std::ostream& out, SimTime interval_us) {
  MetricsSnapshotter snap(&net, &registry, &out, interval_us);
  snap.RunToQuiescence();
}

/// Parses `--threads N` from a bench binary's argv. Defaults to
/// DefaultThreadCount() (hardware concurrency, or $DEDUCE_THREADS).
inline int ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      char* end = nullptr;
      long v = std::strtol(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || v < 1 || v > 1024) {
        std::fprintf(stderr, "bad --threads value: %s\n", argv[i + 1]);
        std::exit(64);
      }
      return static_cast<int>(v);
    }
  }
  return DefaultThreadCount();
}

/// Uniform two-stream join workload: every node generates `per_node`
/// tuples, alternating streams, with values drawn so each tuple joins with
/// ~`selectivity` fraction of the other stream ("uniform generation rates"
/// of §III-A). Facts embed their source so they are source-unique.
inline std::vector<WorkItem> UniformJoinWorkload(
    int nodes, int per_node, int key_range, uint64_t seed,
    double delete_fraction = 0.0, SimTime gap = 40'000,
    const std::vector<std::string>& streams = {"r", "s"}) {
  Rng rng(seed);
  std::vector<WorkItem> out;
  std::vector<std::pair<NodeId, Fact>> alive;
  SimTime t = 10'000;
  int total = nodes * per_node;
  for (int i = 0; i < total; ++i, t += gap) {
    if (!alive.empty() && rng.Bernoulli(delete_fraction)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      out.push_back({t, alive[k].first, StreamOp::kDelete, alive[k].second});
      alive.erase(alive.begin() + static_cast<long>(k));
      continue;
    }
    NodeId node = static_cast<NodeId>(rng.Uniform(0, nodes - 1));
    const std::string& stream =
        streams[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(streams.size()) - 1))];
    Fact f(Intern(stream),
           {Term::Int(rng.Uniform(0, key_range - 1)), Term::Int(node),
            Term::Int(i)});
    out.push_back({t, node, StreamOp::kInsert, f});
    alive.emplace_back(node, f);
  }
  return out;
}

/// Markdown-ish table printer: prints a header once, then rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%*s", i == 0 ? "" : "  ", kWidth, columns_[i].c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%*s", i == 0 ? "" : "  ", kWidth, "---");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%*s", i == 0 ? "" : "  ", kWidth, cells[i].c_str());
    }
    std::printf("\n");
  }

 private:
  static constexpr int kWidth = 12;
  std::vector<std::string> columns_;
};

inline std::string U64(uint64_t v) { return std::to_string(v); }
inline std::string Dbl(double v, int precision = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace deduce::bench

#endif  // DEDUCE_BENCH_BENCH_UTIL_H_
