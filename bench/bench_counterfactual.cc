// Counterfactual replay overhead (DESIGN.md §14): `dlog explain
// --counterfactual` re-executes the scenario twice with provenance forced
// on, then walks each differing tuple's causal cone to the first
// divergent edge. This sweep measures that machinery against the plain
// replay it explains: wall time of one base replay vs the full two-world
// explanation, the provenance-trace volume the diff walks, and the diff
// sizes, as the sampled workload grows.
//
// Perturbation under test is node=<hot>,down where <hot> is the node
// carrying the most injections — the worst case for cone walking, since
// every dependent tuple must be attributed.
//
// No baseline gate: the bench documents the observability tax; it is not
// a win condition.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deduce/common/strings.h"
#include "deduce/engine/counterfactual/counterfactual.h"
#include "deduce/engine/counterfactual/perturb.h"
#include "deduce/engine/scenario.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The injection-heaviest node of a scenario: downing it maximizes the
/// number of tuples the counterfactual must attribute.
NodeId HottestNode(const Scenario& s) {
  std::vector<int> count(static_cast<size_t>(s.grid) * s.grid, 0);
  for (const ScenarioEvent& ev : s.events) {
    if (ev.node >= 0 && ev.node < static_cast<NodeId>(count.size())) {
      ++count[ev.node];
    }
  }
  NodeId hot = 0;
  for (size_t i = 1; i < count.size(); ++i) {
    if (count[i] > count[hot]) hot = static_cast<NodeId>(i);
  }
  return hot;
}

size_t TraceLines(const std::string& jsonl) {
  size_t n = 0;
  for (char c : jsonl) {
    if (c == '\n') ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  OpenBenchReport(argv[0]);
  std::printf("# counterfactual replay overhead — sampled join workloads,\n");
  std::printf("# perturbation node=<hottest>,down, fault-free base\n\n");
  TablePrinter table({"injections", "replay_s", "explain_s", "overhead_x",
                      "trace_lines", "vanished", "appeared", "sound"});

  for (int events : {10, 20, 40, 80}) {
    ChaosProfile profile;
    profile.events = events;
    profile.loss = 0;       // clean base: every difference is the node down
    profile.rto_jitter = 0;
    Scenario scenario = SampleScenario(17, profile);
    scenario.faults = FaultPlan{};  // fault axes off; perturbation only

    auto replay_start = std::chrono::steady_clock::now();
    auto base = RunScenario(scenario);
    if (!base.ok()) {
      std::fprintf(stderr, "replay: %s\n", base.status().ToString().c_str());
      return 1;
    }
    double replay_s = Seconds(replay_start);

    auto perturbs = ParsePerturbationSpec(
        StrFormat("node=%d,down", HottestNode(scenario)));
    if (!perturbs.ok()) return 1;
    auto explain_start = std::chrono::steady_clock::now();
    auto result = RunCounterfactual(scenario, *perturbs, {});
    if (!result.ok()) {
      std::fprintf(stderr, "explain: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    double explain_s = Seconds(explain_start);

    const ChangeExplanation& diff = result->explanation;
    table.Row({StrFormat("%d", events), StrFormat("%.3f", replay_s),
               StrFormat("%.3f", explain_s),
               StrFormat("%.1f", replay_s > 0 ? explain_s / replay_s : 0.0),
               StrFormat("%zu", TraceLines(result->base_trace) +
                                    TraceLines(result->perturbed_trace)),
               StrFormat("%zu", diff.vanished.size()),
               StrFormat("%zu", diff.appeared.size()),
               diff.soundness.empty() ? "yes" : "NO"});
    if (!diff.soundness.empty()) {
      std::fprintf(stderr, "diff soundness violated at %d injections\n",
                   events);
      return 1;
    }
  }
  return 0;
}
