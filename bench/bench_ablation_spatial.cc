// R-Abl-2: the spatial-constraint optimization of §III-A ("Function
// Symbols and Spatial Constraints"): when the join predicate includes a
// spatial constraint — tuples only join if generated within distance R —
// each tuple need only be stored over a neighborhood instead of its whole
// row, and the join evaluates locally.
//
// Expected shape: spatial placement cuts both storage and join traffic by
// a large factor that grows with the grid, at identical results.

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

// Each node reports events carrying its own coordinates; two events
// correlate if within Euclidean distance 2.
constexpr char kRowProgram[] = R"(
  .decl ev(x, y, kind, n) input.
  pair(N1, N2, K) :- ev(X1, Y1, K, N1), ev(X2, Y2, K, N2),
                     dist(X1, Y1, X2, Y2) <= 2.0, N1 < N2.
)";
constexpr char kSpatialProgram[] = R"(
  .decl ev(x, y, kind, n) input storage spatial 2.
  pair(N1, N2, K) :- ev(X1, Y1, K, N1), ev(X2, Y2, K, N2),
                     dist(X1, Y1, X2, Y2) <= 2.0, N1 < N2.
)";

std::vector<WorkItem> SpatialWorkload(const Topology& topo, int per_node,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkItem> out;
  SimTime t = 10'000;
  for (int i = 0; i < topo.node_count() * per_node; ++i, t += 30'000) {
    NodeId node = static_cast<NodeId>(rng.Uniform(0, topo.node_count() - 1));
    const Location& loc = topo.location(node);
    out.push_back(
        {t, node, StreamOp::kInsert,
         Fact(Intern("ev"),
              {Term::Real(loc.x), Term::Real(loc.y),
               Term::Int(rng.Uniform(0, 2)), Term::Int(node)})});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Abl-2: spatially-constrained join — row storage (full PA)\n"
              "# vs spatial:2 storage with local evaluation (§III-A)\n\n");
  TablePrinter table({"grid", "placement", "messages", "bytes", "results",
                      "repl/node"});
  LinkModel link;
  for (int m : {8, 12, 16}) {
    Topology topo = Topology::Grid(m);
    std::vector<WorkItem> work = SpatialWorkload(topo, 2, 100 + static_cast<uint64_t>(m));
    for (bool spatial : {false, true}) {
      Program program = MustParse(spatial ? kSpatialProgram : kRowProgram);
      RunMetrics r = RunDistributed(topo, program, EngineOptions{}, link,
                                    work, "pair");
      table.Row({std::to_string(m) + "x" + std::to_string(m),
                 spatial ? "spatial:2" : "row(PA)", U64(r.total_messages),
                 U64(r.total_bytes), U64(r.result_count),
                 Dbl(static_cast<double>(r.total_replicas) /
                     topo.node_count())});
    }
  }
  std::printf("\n# both placements must report identical 'results'.\n");
  return 0;
}
