// R-Tab-1: per-node memory footprint (§V "Memory Requirements"): replicas
// and derivation records stored per node for each example program. The
// paper's claim for the SPT program: each node stores only tuples of the
// form j(Y, _) / h(_, Y, _) / h1(Y, _) for itself plus its neighbors'
// edges — 2-3 tuples per degree, a single j tuple per node in steady state.

#include "bench_util.h"
#include "deduce/datalog/arena.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kJoin[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

constexpr char kUncov[] = R"(
  .decl enemy/3 input.
  .decl friendly/3 input.
  cov(L1, T) :- enemy(L1, T, N1), friendly(L2, T, N2), dist(L1, L2) <= 5.0.
  uncov(L, T) :- enemy(L, T, N), NOT cov(L, T).
)";

constexpr char kLogicJ[] = R"(
  .decl g/2 input storage spatial 1.
  .decl j(y, d) home y stage d storage local.
  .decl j1(y, d) home y stage d storage local.
  j(0, 0).
  j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
  j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
)";

void Report(TablePrinter* table, const char* name, const Topology& topo,
            DistributedEngine* engine) {
  double n = topo.node_count();
  table->Row({name,
              U64(engine->TotalReplicas()),
              Dbl(engine->TotalReplicas() / n),
              U64(engine->MaxNodeReplicas()),
              U64(engine->TotalDerivations()),
              Dbl(engine->TotalDerivations() / n)});
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Tab-1: per-node storage at quiescence, 8x8 grid\n\n");
  TablePrinter table({"program", "replicas", "repl/node", "max_node",
                      "derivs", "derivs/node"});
  Topology topo = Topology::Grid(8);
  LinkModel link;

  {
    Program program = MustParse(kJoin);
    Network net(topo, link, 1);
    MetricsRegistry registry;
    EngineOptions options;
    options.metrics = &registry;
    auto engine = DistributedEngine::Create(&net, program, options);
    std::vector<WorkItem> work =
        UniformJoinWorkload(topo.node_count(), 2, 16, 61);
    for (const WorkItem& item : work) {
      net.sim().RunUntil(item.time);
      (void)(*engine)->Inject(item.node, item.op, item.fact);
    }
    net.sim().Run();
    Report(&table, "join(PA)", topo, engine->get());
    ReportCustomRun(net, engine->get(), &registry);
  }
  {
    Program program = MustParse(kUncov);
    Network net(topo, link, 2);
    MetricsRegistry registry;
    EngineOptions options;
    options.metrics = &registry;
    auto engine = DistributedEngine::Create(&net, program, options);
    Rng rng(5);
    SimTime t = 10'000;
    for (int i = 0; i < 96; ++i, t += 50'000) {
      NodeId node = static_cast<NodeId>(rng.Uniform(0, topo.node_count() - 1));
      const char* stream = rng.Bernoulli(0.5) ? "enemy" : "friendly";
      net.sim().RunUntil(t);
      (void)(*engine)->Inject(
          node, StreamOp::kInsert,
          Fact(Intern(stream),
               {Term::Function("loc", {Term::Int(rng.Uniform(0, 7)),
                                       Term::Int(rng.Uniform(0, 7))}),
                Term::Int(1), Term::Int(node)}));
    }
    net.sim().Run();
    Report(&table, "uncovered", topo, engine->get());
    ReportCustomRun(net, engine->get(), &registry);
  }
  {
    Program program = MustParse(kLogicJ);
    Network net(topo, link, 3);
    MetricsRegistry registry;
    EngineOptions options;
    options.metrics = &registry;
    auto engine = DistributedEngine::Create(&net, program, options);
    SimTime t = 50'000;
    for (int v = 0; v < topo.node_count(); ++v) {
      for (NodeId u : topo.neighbors(v)) {
        net.sim().RunUntil(t);
        (void)(*engine)->Inject(
            v, StreamOp::kInsert,
            Fact(Intern("g"), {Term::Int(v), Term::Int(u)}));
        t += 5'000;
      }
    }
    net.sim().Run();
    Report(&table, "logicJ(SPT)", topo, engine->get());
    ReportCustomRun(net, engine->get(), &registry);
    std::printf(
        "\n# logicJ footprint check (§V): replicas/node ~= 2 x degree (the\n"
        "# g edges, both directions within 1 hop) + j/j1 home tuples.\n");
  }

  // Fact-storage footprint: the same tuple population built through each
  // FactArena mode. kHeap is the pre-arena behaviour (one allocation per
  // rep); kArena packs reps into bump chunks; kIntern additionally dedups,
  // so replicated row storage (sqrt(n) copies per tuple) pays one rep per
  // distinct fact. The workload replays each fact 4x to model replication.
  std::printf("\n# fact storage: 50k distinct facts, stored 4x each\n\n");
  TablePrinter arena_table(
      {"mode", "reps", "bytes", "bytes/fact", "intern_hits"});
  constexpr int kFacts = 50'000;
  constexpr int kCopies = 4;
  const char* names[] = {"heap", "arena", "intern"};
  const FactArena::Mode modes[] = {FactArena::Mode::kHeap,
                                   FactArena::Mode::kArena,
                                   FactArena::Mode::kIntern};
  for (int mode = 0; mode < 3; ++mode) {
    FactArena arena(modes[mode]);
    std::vector<Fact> live;
    live.reserve(static_cast<size_t>(kFacts) * kCopies);
    for (int copy = 0; copy < kCopies; ++copy) {
      for (int i = 0; i < kFacts; ++i) {
        live.push_back(arena.MakeFact(
            Intern("r"), {Term::Int(i % 997), Term::Int(i % 64),
                          Term::Int(i)}));
      }
    }
    FactArena::Stats st = arena.stats();
    arena_table.Row(
        {names[mode], U64(st.facts), U64(st.bytes),
         Dbl(static_cast<double>(st.bytes) / kFacts), U64(st.hits)});
  }
  return 0;
}
