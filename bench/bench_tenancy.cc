// Tenancy: the marginal cost of the k-th tenant on one shared engine.
// Thousands of concurrent programs only pay for what they do NOT share:
// CompileMultiPlan canonicalizes every SCC sub-plan and evaluates each
// distinct one once, so k tenants running the same two-stream join cost
// the network exactly what one tenant costs (plus per-tenant result
// fan-out when a tenant renamed its heads). The sweep measures that
// directly and compares against the "k independent engines" deployment
// it replaces.
//
// Configs:
//   overlap k      k tenants, byte-identical programs (same predicate
//                  names): full dedup, zero fan-out — the floor.
//   renamed k      tenant 0 plus k-1 tenants with renamed heads: the
//                  sub-plans dedup (alias), results fan out per tenant —
//                  the honest marginal cost of an overlapping tenant.
//   disjoint k     k tenants on disjoint input streams sharing one
//                  engine: nothing dedups; the control.
//   indep k        the same k disjoint tenants on k separate engines /
//                  networks (summed): what disjoint tenancy costs today.
//
// `marginal_pct` is the per-added-tenant message cost relative to a
// single tenant: 100 * (msg(k) - msg(1)) / ((k-1) * msg(1)). The win
// condition (ISSUE 9) is renamed-tenant marginal < 30% at the largest k;
// the bench exits 1 when it does not hold, so CI can gate on it.
//
// Two outputs per run:
//   BENCH_bench_tenancy.json       deterministic counters + registry
//                                  snapshots (byte-identical across
//                                  --threads; gated by `bench_compare.py
//                                  baseline check`)
//   BENCH_bench_tenancy.perf.json  wall time and injection throughput per
//                                  point, process peak RSS (machine-
//                                  dependent; gated with tolerances)
//
// Flags: --threads N   parallel sweep points (report order is fixed)
//        --smoke       CI profile: 8x8 grid, smaller k sweep
//        --per-node N  injected tuples per node per tenant workload

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024ull;
}

/// The shared workload: a two-stream join over streams `r<suffix>` /
/// `s<suffix>`, result head `t<suffix>`.
std::string JoinProgram(const std::string& stream_suffix,
                        const std::string& head_suffix) {
  return "  .decl r" + stream_suffix + "/3 input.\n" +
         "  .decl s" + stream_suffix + "/3 input.\n" +
         "  t" + head_suffix + "(K, N1, N2, I1, I2) :- r" + stream_suffix +
         "(K, N1, I1), s" + stream_suffix + "(K, N2, I2).\n";
}

struct Point {
  std::string config;           // overlap | renamed | disjoint | indep
  int k = 1;                    // tenant count
  std::vector<std::string> programs;
  std::vector<std::vector<WorkItem>> works;  // one stream per tenant
};

struct PointResult {
  CollectedRun run;
  uint64_t subplans_requested = 0;
  uint64_t subplans_total = 0;
  uint64_t subplans_shared = 0;
  size_t tuples = 0;
  double wall_s = 0;
};

/// Time-ordered merge of the per-tenant workloads (stable: tenant order
/// breaks ties, so the injection sequence is deterministic).
std::vector<WorkItem> MergeWorks(const std::vector<std::vector<WorkItem>>& works) {
  std::vector<WorkItem> all;
  for (const auto& w : works) all.insert(all.end(), w.begin(), w.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const WorkItem& a, const WorkItem& b) {
                     return a.time < b.time;
                   });
  return all;
}

/// One shared-engine point: all of the point's programs multiplexed onto
/// one MultiTenantEngine on one network.
PointResult RunShared(int m, const Point& p) {
  PointResult out;
  auto start = std::chrono::steady_clock::now();
  Network net(Topology::Grid(m), LinkModel{}, /*seed=*/1);
  net.EnableBatchedDelivery(true);
  EngineOptions options;
  options.planner.default_storage = StoragePolicy::kRow;
  if (BenchReport::Get().enabled()) options.metrics = &out.run.registry;
  MultiTenantEngine mte(options);
  for (size_t i = 0; i < p.programs.size(); ++i) {
    Status st = mte.AddProgram("t" + std::to_string(i),
                               MustParse(p.programs[i]));
    if (!st.ok()) {
      std::fprintf(stderr, "add program: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  Status st = mte.Start(&net);
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    std::abort();
  }
  std::vector<WorkItem> work = MergeWorks(p.works);
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    Status ist = mte.Inject(item.node, item.op, item.fact);
    if (!ist.ok()) {
      std::fprintf(stderr, "inject: %s\n", ist.ToString().c_str());
    }
  }
  net.sim().Run();
  out.run.metrics = CollectRunMetrics(net, mte.engine(), options.metrics);
  size_t results = 0;
  for (size_t i = 0; i < p.programs.size(); ++i) {
    auto db = mte.ResultDatabase("t" + std::to_string(i));
    if (db.ok()) results += db->size();
  }
  out.run.metrics.result_count = results;
  out.run.reportable = options.metrics != nullptr;
  out.subplans_requested = mte.multi_plan().subplans_requested;
  out.subplans_total = mte.multi_plan().subplans_total;
  out.subplans_shared = mte.multi_plan().subplans_shared;
  out.tuples = work.size();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

/// The independent-deployment baseline: one engine and one network per
/// tenant, metrics summed. This is what the shared engine replaces.
PointResult RunIndependent(int m, const Point& p,
                           const std::vector<std::string>& result_preds) {
  PointResult out;
  auto start = std::chrono::steady_clock::now();
  bool report = BenchReport::Get().enabled();
  for (size_t i = 0; i < p.programs.size(); ++i) {
    Network net(Topology::Grid(m), LinkModel{}, /*seed=*/1);
    net.EnableBatchedDelivery(true);
    EngineOptions options;
    options.planner.default_storage = StoragePolicy::kRow;
    if (report) options.metrics = &out.run.registry;
    auto engine =
        DistributedEngine::Create(&net, MustParse(p.programs[i]), options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
      std::abort();
    }
    for (const WorkItem& item : p.works[i]) {
      net.sim().RunUntil(item.time);
      Status st = (*engine)->Inject(item.node, item.op, item.fact);
      if (!st.ok()) {
        std::fprintf(stderr, "inject: %s\n", st.ToString().c_str());
      }
    }
    net.sim().Run();
    RunMetrics rm = CollectRunMetrics(net, (*engine).get(), options.metrics);
    out.run.metrics.total_messages += rm.total_messages;
    out.run.metrics.total_bytes += rm.total_bytes;
    out.run.metrics.energy_uj += rm.energy_uj;
    out.run.metrics.quiesce_time =
        std::max(out.run.metrics.quiesce_time, rm.quiesce_time);
    out.run.metrics.total_replicas += rm.total_replicas;
    out.run.metrics.total_derivations += rm.total_derivations;
    out.run.metrics.errors += rm.errors;
    out.run.metrics.result_count +=
        (*engine)->ResultFacts(Intern(result_preds[i])).size();
    out.tuples += p.works[i].size();
  }
  out.run.reportable = report;
  out.subplans_requested = static_cast<uint64_t>(p.programs.size());
  out.subplans_total = static_cast<uint64_t>(p.programs.size());
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  deduce::bench::OpenBenchReport(argv[0]);
  int threads = ThreadsFromArgs(argc, argv);
  int m = 12;
  int per_node = 6;
  std::vector<int> overlap_ks = {1, 8, 64};
  std::vector<int> renamed_ks = {8, 64};
  int disjoint_k = 8;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      m = 8;
      per_node = 4;
      overlap_ks = {1, 8};
      renamed_ks = {8};
      disjoint_k = 4;
    } else if (arg == "--per-node" && i + 1 < argc) {
      per_node = std::atoi(argv[++i]);
      if (per_node < 1 || per_node > 1000) {
        std::fprintf(stderr, "bad --per-node value\n");
        return 64;
      }
    }
  }
  int nodes = m * m;
  int total = nodes * per_node;
  int key_range = std::max(2, total / 8);

  std::printf("# tenancy sweep: two-stream join (PA row storage), shared "
              "engine vs independent engines\n");
  std::printf("# grid %dx%d, %d tuples per tenant workload\n\n", m, m, total);

  // Overlapping tenants share one workload (input streams are shared by
  // name); disjoint tenants each get their own.
  std::vector<WorkItem> shared_work =
      UniformJoinWorkload(nodes, per_node, key_range, /*seed=*/9200);

  std::vector<Point> points;
  for (int k : overlap_ks) {
    Point p;
    p.config = "overlap";
    p.k = k;
    p.programs.assign(static_cast<size_t>(k), JoinProgram("", ""));
    p.works.push_back(shared_work);
    points.push_back(std::move(p));
  }
  for (int k : renamed_ks) {
    Point p;
    p.config = "renamed";
    p.k = k;
    p.programs.push_back(JoinProgram("", ""));
    for (int i = 1; i < k; ++i) {
      p.programs.push_back(JoinProgram("", "_v" + std::to_string(i)));
    }
    p.works.push_back(shared_work);
    points.push_back(std::move(p));
  }
  {
    Point pd;
    pd.config = "disjoint";
    pd.k = disjoint_k;
    std::vector<std::string> result_preds;
    for (int i = 0; i < disjoint_k; ++i) {
      std::string sfx = "_d" + std::to_string(i);
      pd.programs.push_back(JoinProgram(sfx, sfx));
      pd.works.push_back(UniformJoinWorkload(
          nodes, per_node, key_range, 9300 + static_cast<uint64_t>(i),
          /*delete_fraction=*/0.0, /*gap=*/40'000,
          {"r" + sfx, "s" + sfx}));
      result_preds.push_back("t" + sfx);
    }
    Point pi = pd;
    pi.config = "indep";
    points.push_back(std::move(pd));
    points.push_back(std::move(pi));
  }

  TablePrinter table({"config", "k", "messages", "bytes", "results",
                      "derivations", "shared", "marginal_pct", "wall_s"});
  uint64_t base_messages = 0;       // overlap k=1 (reduced first)
  double renamed_max_marginal = -1;
  int renamed_max_k = 0;
  std::vector<PointResult> results(points.size());
  RunTrials(
      points.size(), threads,
      [&](size_t i) {
        const Point& p = points[i];
        if (p.config == "indep") {
          std::vector<std::string> preds;
          for (int t = 0; t < p.k; ++t) {
            preds.push_back("t_d" + std::to_string(t));
          }
          return RunIndependent(m, p, preds);
        }
        return RunShared(m, p);
      },
      [&](size_t i, PointResult r) {
        const Point& p = points[i];
        ReportCollected(r.run);
        const RunMetrics& rm = r.run.metrics;
        if (p.config == "overlap" && p.k == 1) base_messages = rm.total_messages;
        std::string marginal = "-";
        if ((p.config == "overlap" || p.config == "renamed") && p.k > 1 &&
            base_messages > 0) {
          double pct = 100.0 *
                       (static_cast<double>(rm.total_messages) -
                        static_cast<double>(base_messages)) /
                       (static_cast<double>(p.k - 1) *
                        static_cast<double>(base_messages));
          marginal = Dbl(pct, 1);
          if (p.config == "renamed" && p.k >= renamed_max_k) {
            renamed_max_k = p.k;
            renamed_max_marginal = pct;
          }
        }
        table.Row({p.config, std::to_string(p.k), U64(rm.total_messages),
                   U64(rm.total_bytes), U64(rm.result_count),
                   U64(rm.total_derivations), U64(r.subplans_shared),
                   marginal, Dbl(r.wall_s, 2)});
        results[i] = std::move(r);
      });

  uint64_t peak = PeakRssBytes();
  std::printf("\npeak RSS: %.1f MiB\n",
              static_cast<double>(peak) / (1024.0 * 1024.0));

  // Machine-dependent sidecar: wall time + injection throughput per point.
  // Separate file so BENCH_bench_tenancy.json stays byte-identical across
  // --threads (the parallelism gate byte-compares it).
  std::ofstream perf("BENCH_bench_tenancy.perf.json");
  if (perf) {
    perf << "{\"bench\":\"bench_tenancy\",\"peak_rss_bytes\":" << peak
         << ",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      char buf[200];
      double qps = results[i].wall_s > 0
                       ? static_cast<double>(results[i].tuples) /
                             results[i].wall_s
                       : 0;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"label\":\"%s_k%d\",\"nodes\":%d,\"tuples\":%zu,"
                    "\"wall_time_s\":%.3f,\"inject_qps\":%.0f}",
                    i == 0 ? "" : ",", points[i].config.c_str(), points[i].k,
                    nodes, results[i].tuples, results[i].wall_s, qps);
      perf << buf;
    }
    perf << "]}\n";
  }

  // The ISSUE 9 win condition: an overlapping (renamed) tenant's marginal
  // message cost stays under 30% of a full tenant even at the largest k.
  if (renamed_max_marginal >= 0) {
    bool pass = renamed_max_marginal < 30.0;
    std::printf("\n# marginal cost of renamed tenant at k=%d: %.1f%% of "
                "tenant 1 (%s, budget 30%%)\n",
                renamed_max_k, renamed_max_marginal,
                pass ? "PASS" : "FAIL");
    if (!pass) return 1;
  }
  return 0;
}
