// R-Fig-3: multi-way joins — cost vs number of operand streams, single-pass
// vs the multiple-pass scheme (§III-A "PA for Multiple Streams", footnote 2).
//
// Expected shape: cost grows with the number of streams (longer partial
// result pipelines); single-pass wins on messages (one column traversal)
// while multiple-pass trades extra traversals for simpler per-node state.

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

std::string ProgramFor(int n_streams) {
  std::string out;
  std::string head = "t(K";
  std::string body;
  for (int i = 0; i < n_streams; ++i) {
    std::string name(1, static_cast<char>('a' + i));
    out += "  .decl " + name + "/3 input.\n";
    head += ", N" + std::to_string(i);
    body += (i ? ", " : "") + name + "(K, N" + std::to_string(i) + ", I" +
            std::to_string(i) + ")";
  }
  out += "  " + head + ") :- " + body + ".\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf(
      "# R-Fig-3: n-way join on an 8x8 grid, single-pass vs multiple-pass\n");
  std::printf("# workload: 2 tuples per node spread across the n streams\n\n");

  TablePrinter table({"streams", "scheme", "messages", "bytes",
                      "max_partials", "results", "errors"});
  Topology topo = Topology::Grid(8);
  LinkModel link;

  for (int n = 2; n <= 4; ++n) {
    std::vector<std::string> streams;
    for (int i = 0; i < n; ++i) {
      streams.emplace_back(1, static_cast<char>('a' + i));
    }
    std::vector<WorkItem> work = UniformJoinWorkload(
        topo.node_count(), 2, 6, 500 + static_cast<uint64_t>(n), 0.0, 40'000,
        streams);
    Program program = MustParse(ProgramFor(n));
    for (bool multipass : {false, true}) {
      MetricsRegistry registry;
      EngineOptions options;
      options.planner.multipass = multipass;
      options.metrics = &registry;
      Network net(topo, link, 1);
      auto engine = DistributedEngine::Create(&net, program, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        return 1;
      }
      for (const WorkItem& item : work) {
        net.sim().RunUntil(item.time);
        (void)(*engine)->Inject(item.node, item.op, item.fact);
      }
      net.sim().Run();
      table.Row({U64(static_cast<uint64_t>(n)),
                 multipass ? "multi" : "single",
                 U64(net.stats().TotalMessages()),
                 U64(net.stats().TotalBytes()),
                 U64((*engine)->stats().max_partials_in_message),
                 U64((*engine)->ResultFacts(Intern("t")).size()),
                 U64((*engine)->stats().errors.size())});
      ReportCustomRun(net, engine->get(), &registry);
    }
  }
  return 0;
}
