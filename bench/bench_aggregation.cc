// R-Fig-8: in-network aggregation — §IV-C delegates aggregates to
// "specialized distributed techniques such as TAG". We compare three ways
// to compute per-epoch aggregates over the whole network:
//   TAG            one partial-state record per node per epoch (tree)
//   agg-rule       the engine's incremental per-group aggregation
//                  (point-to-point to a hashed group home)
//   centralized    raw readings shipped to the sink
//
// Expected shape: TAG's cost is exactly n-1 messages per epoch; the
// aggregate rule costs a few messages per *reading* (storage-free, no tree
// maintenance, works for arbitrary group-by keys); centralized pays
// distance-to-sink per reading.

#include "bench_util.h"
#include "deduce/engine/aggregation.h"
#include "deduce/eval/seminaive.h"

using namespace deduce;
using namespace deduce::bench;

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Fig-8: network-wide max temperature, 8x8 grid, 3 epochs\n\n");
  TablePrinter table({"method", "messages", "bytes", "msgs/reading",
                      "value_ok"});
  Topology topo = Topology::Grid(8);
  const int epochs = 3;
  const int n = topo.node_count();
  auto reading = [&](NodeId id, int epoch) {
    return 20.0 + ((id * 7 + epoch * 13) % 40);
  };
  double expected_max = 0;
  for (int e = 0; e < epochs; ++e) {
    for (int v = 0; v < n; ++v) {
      expected_max = std::max(expected_max, reading(v, e));
    }
  }

  // --- TAG tree ---
  {
    Network net(topo, LinkModel{}, 1);
    TagAggregation::Options options;
    options.kind = AggKind::kMax;
    options.epochs = epochs;
    auto results = TagAggregation::Run(&net, options, [&](NodeId id, int e) {
      return std::optional<double>(reading(id, e));
    });
    bool ok = results.size() == static_cast<size_t>(epochs);
    double maxv = 0;
    for (const auto& r : results) maxv = std::max(maxv, r.value);
    ok = ok && maxv == expected_max;
    table.Row({"TAG", U64(net.stats().TotalMessages()),
               U64(net.stats().TotalBytes()),
               Dbl(static_cast<double>(net.stats().TotalMessages()) /
                   (epochs * n)),
               ok ? "yes" : "NO"});
  }

  // --- engine aggregate rule ---
  {
    Program program = MustParse(R"(
      .decl temp(epoch, celsius, n) input.
      maxt(E, max(C)) :- temp(E, C, N).
    )");
    Network net(topo, LinkModel{}, 1);
    MetricsRegistry registry;
    EngineOptions options;
    options.metrics = &registry;
    auto engine = DistributedEngine::Create(&net, program, options);
    if (!engine.ok()) return 1;
    SimTime t = 10'000;
    for (int e = 0; e < epochs; ++e) {
      for (int v = 0; v < n; ++v, t += 3'000) {
        net.sim().RunUntil(t);
        (void)(*engine)->Inject(
            v, StreamOp::kInsert,
            Fact(Intern("temp"), {Term::Int(e),
                                  Term::Real(reading(v, e)),
                                  Term::Int(v)}));
      }
    }
    net.sim().Run();
    double maxv = 0;
    for (const Fact& f : (*engine)->ResultFacts(Intern("maxt"))) {
      maxv = std::max(maxv, f.args()[1].value().AsNumber());
    }
    table.Row({"agg-rule", U64(net.stats().TotalMessages()),
               U64(net.stats().TotalBytes()),
               Dbl(static_cast<double>(net.stats().TotalMessages()) /
                   (epochs * n)),
               maxv == expected_max ? "yes" : "NO"});
    ReportCustomRun(net, engine->get(), &registry);
  }

  // --- centralized ---
  {
    Program program = MustParse(R"(
      .decl temp(epoch, celsius, n) input.
      maxt(E, max(C)) :- temp(E, C, N).
    )");
    Network net(topo, LinkModel{}, 1);
    // Ship raw readings to node 0 (reusing the centralized baseline's
    // forwarding machinery; the sink evaluates the aggregate centrally).
    auto engine = CentralizedEngine::Create(&net, MustParse(".decl temp/3 input."),
                                            0, IncrementalOptions{});
    if (!engine.ok()) return 1;
    std::vector<Fact> readings;
    SimTime t = 10'000;
    for (int e = 0; e < epochs; ++e) {
      for (int v = 0; v < n; ++v, t += 3'000) {
        net.sim().RunUntil(t);
        Fact f(Intern("temp"), {Term::Int(e), Term::Real(reading(v, e)),
                                Term::Int(v)});
        (void)(*engine)->Inject(v, StreamOp::kInsert, f);
        readings.push_back(f);
      }
    }
    net.sim().Run();
    auto db = EvaluateProgram(program, readings);
    bool ok = db.ok();
    double maxv = 0;
    if (ok) {
      for (const Fact& f : db->Relation(Intern("maxt"))) {
        maxv = std::max(maxv, f.args()[1].value().AsNumber());
      }
    }
    table.Row({"centralized", U64(net.stats().TotalMessages()),
               U64(net.stats().TotalBytes()),
               Dbl(static_cast<double>(net.stats().TotalMessages()) /
                   (epochs * n)),
               ok && maxv == expected_max ? "yes" : "NO"});
    MetricsRegistry registry;
    ReportCustomRun(net, nullptr, &registry);
  }
  return 0;
}
