// R-Fig-7: result latency — time from the last contributing update to
// network quiescence, dominated by the §IV-B timing discipline: the join
// phase starts τ_s + τ_c after the storage phase, and derived tuples wait
// the §IV-C finalization delay before propagating.
//
// Expected shape: latency grows with the grid (τ_s and sweep length scale
// with the side), and shrinking the timing margin trades latency for a
// thinner safety buffer.

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Fig-7: single-result latency vs grid size\n");
  std::printf("# one r tuple at one corner, one matching s at the other\n\n");

  TablePrinter table({"grid", "margin", "tau_s_ms", "tau_j_ms", "latency_ms",
                      "results"});
  Program program = MustParse(kProgram);
  LinkModel link;

  for (int m : {6, 8, 10, 12, 14}) {
    Topology topo = Topology::Grid(m);
    for (double margin : {1.5, 1.1}) {
      MetricsRegistry registry;
      EngineOptions options;
      options.timing_margin = margin;
      options.metrics = &registry;
      Network net(topo, link, 3);
      auto engine = DistributedEngine::Create(&net, program, options);
      if (!engine.ok()) return 1;
      net.sim().RunUntil(10'000);
      (void)(*engine)->Inject(
          0, StreamOp::kInsert,
          Fact(Intern("r"), {Term::Int(1), Term::Int(0), Term::Int(0)}));
      net.sim().RunUntil(20'000);
      SimTime injected = net.sim().now();
      (void)(*engine)->Inject(
          topo.node_count() - 1, StreamOp::kInsert,
          Fact(Intern("s"),
               {Term::Int(1), Term::Int(topo.node_count() - 1), Term::Int(1)}));
      net.sim().Run();
      SimTime latency = net.sim().now() - injected;
      table.Row({std::to_string(m) + "x" + std::to_string(m), Dbl(margin),
                 Dbl(static_cast<double>((*engine)->timing().tau_s) / 1000.0),
                 Dbl(static_cast<double>((*engine)->timing().tau_j) / 1000.0),
                 Dbl(static_cast<double>(latency) / 1000.0),
                 U64((*engine)->ResultFacts(Intern("t")).size())});
      ReportCustomRun(net, engine->get(), &registry);
    }
  }
  std::printf(
      "\n# latency here includes quiescence of all bookkeeping; the first\n"
      "# result lands earlier (storage delay + one column sweep).\n");
  return 0;
}
