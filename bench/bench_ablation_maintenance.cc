// R-Abl-1: the §IV-A trade-off between maintenance strategies under
// deletions — set-of-derivations (the paper's choice) vs counting vs
// delete-and-rederive. The paper argues: counting is fragile under
// non-deterministic duplication (and diverges under recursion);
// rederivation "will result in a lot of communication overhead"; the
// set-of-derivations approach costs only storage.
//
// We run the centralized incremental engine over an insert/delete stream
// and report the operation counts each strategy performs — the
// communication proxy (every derivation add/remove and every rederivation
// probe would be a message in the network) — plus the storage overhead.

#include "bench_util.h"
#include "deduce/eval/incremental.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kNonRecursive[] = R"(
  .decl r/2 input.
  .decl s/2 input.
  t(X, Z) :- r(X, Y), s(Y, Z).
  u(X) :- t(X, Z), r(Z, X2).
)";

constexpr char kRecursive[] = R"(
  .decl edge/2 input.
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- path(X, Y), edge(Y, Z).
)";

std::vector<StreamEvent> MixedWorkload(const char* pred_a, const char* pred_b,
                                       int events, int key_range,
                                       double delete_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<StreamEvent> out;
  std::vector<Fact> alive;
  Timestamp t = 1;
  uint32_t seq = 0;
  for (int i = 0; i < events; ++i, ++t) {
    if (!alive.empty() && rng.Bernoulli(delete_fraction)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      StreamEvent ev;
      ev.op = StreamOp::kDelete;
      ev.fact = alive[k];
      ev.time = t;
      out.push_back(ev);
      alive.erase(alive.begin() + static_cast<long>(k));
      continue;
    }
    const char* pred = (pred_b != nullptr && rng.Bernoulli(0.5)) ? pred_b
                                                                 : pred_a;
    Fact f(Intern(pred), {Term::Int(rng.Uniform(0, key_range - 1)),
                          Term::Int(rng.Uniform(0, key_range - 1))});
    StreamEvent ev;
    ev.op = StreamOp::kInsert;
    ev.fact = f;
    ev.id = TupleId{0, t, seq++};
    ev.time = t;
    out.push_back(ev);
    alive.push_back(f);
  }
  return out;
}

void RunStrategy(TablePrinter* table, const char* program_name,
                 const char* program_text, MaintenanceStrategy strategy,
                 const char* strategy_name,
                 const std::vector<StreamEvent>& events) {
  Program program = MustParse(program_text);
  IncrementalOptions options;
  options.strategy = strategy;
  auto engine = IncrementalEngine::Create(program, options);
  if (!engine.ok()) {
    table->Row({program_name, strategy_name, "-", "-", "-", "-",
                engine.status().code() == StatusCode::kUnimplemented
                    ? "unsupported"
                    : "error"});
    return;
  }
  for (const StreamEvent& ev : events) {
    Status st = (*engine)->Apply(ev, nullptr);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return;
    }
  }
  const auto& s = (*engine)->stats();
  table->Row({program_name, strategy_name, U64(s.derivations_added),
              U64(s.derivations_removed),
              U64(s.probes + s.rederive_probes),
              U64(s.peak_derivations), "ok"});
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Abl-1: maintenance strategies under deletions (§IV-A)\n");
  std::printf("# adds/removes ~ messages; probes ~ join work; peak_derivs ~\n"
              "# storage overhead of the set-of-derivations approach\n\n");
  TablePrinter table({"program", "strategy", "derivs+", "derivs-", "probes",
                      "peak_derivs", "status"});

  std::vector<StreamEvent> nonrec = MixedWorkload("r", "s", 400, 12, 0.3, 9);
  RunStrategy(&table, "join2", kNonRecursive,
              MaintenanceStrategy::kDerivations, "derivations", nonrec);
  RunStrategy(&table, "join2", kNonRecursive, MaintenanceStrategy::kCounting,
              "counting", nonrec);
  RunStrategy(&table, "join2", kNonRecursive,
              MaintenanceStrategy::kRederivation, "rederive", nonrec);

  std::vector<StreamEvent> rec = MixedWorkload("edge", nullptr, 220, 8, 0.35,
                                               10);
  RunStrategy(&table, "tc", kRecursive, MaintenanceStrategy::kDerivations,
              "derivations", rec);
  RunStrategy(&table, "tc", kRecursive, MaintenanceStrategy::kCounting,
              "counting", rec);
  RunStrategy(&table, "tc", kRecursive, MaintenanceStrategy::kRederivation,
              "rederive", rec);

  std::printf(
      "\n# counting rejects the recursive program (counts diverge) — §IV-A;\n"
      "# rederive handles it at the cost of the extra probes column;\n"
      "# derivations handles acyclic-derivation workloads with zero extra\n"
      "# communication (the paper's choice).\n");
  return 0;
}
