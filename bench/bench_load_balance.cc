// R-Fig-4: load balance across nodes — §III-A argues the naive central
// server "may result in quick failure of the nodes close to the server",
// while PA is "load-balanced". We report the hottest node, the 95th
// percentile and the mean per-node message load for each approach.
//
// Expected shape: Central's max load dwarfs its mean (sink hotspot);
// Centroid similarly concentrates at the rendezvous; PA's max stays within
// a small factor of its mean.

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Fig-4: per-node load distribution, 12x12 grid\n");
  std::printf("# workload: 3 tuples per node, uniform generation\n\n");

  TablePrinter table({"approach", "max_load", "p95_load", "avg_load",
                      "max/avg", "messages"});
  Topology topo = Topology::Grid(12);
  LinkModel link;
  Program program = MustParse(kProgram);
  std::vector<WorkItem> work =
      UniformJoinWorkload(topo.node_count(), 3, topo.node_count() / 2, 4242);

  struct Approach {
    const char* name;
    std::optional<StoragePolicy> storage;
  };
  for (const Approach& a :
       std::vector<Approach>{{"PA", StoragePolicy::kRow},
                             {"Broadcast", StoragePolicy::kBroadcast},
                             {"LocalStore", StoragePolicy::kLocal},
                             {"Centroid", StoragePolicy::kCentroid},
                             {"Central", std::nullopt}}) {
    RunMetrics m;
    if (a.storage.has_value()) {
      EngineOptions options;
      options.planner.default_storage = *a.storage;
      m = RunDistributed(topo, program, options, link, work, "t");
    } else {
      m = RunCentralized(topo, program, link, work, "t");
    }
    table.Row({a.name, U64(m.max_node_messages), Dbl(m.p95_node_messages, 0),
               Dbl(m.avg_node_messages), Dbl(static_cast<double>(m.max_node_messages) /
                                             std::max(1.0, m.avg_node_messages)),
               U64(m.total_messages)});
  }
  return 0;
}
