// R-Fig-2: communication cost of the windowed join as the sliding-window
// range τ_w grows (§II-B / §III-A sliding-window machinery; the companion
// join paper [44] sweeps the window the same way).
//
// Expected shape: message cost grows with the window because each update
// joins more stored tuples (more partials, more results) and replicas live
// longer; with a tiny window almost nothing matches.

#include "bench_util.h"

using namespace deduce;
using namespace deduce::bench;

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf("# R-Fig-2: two-stream join on a 10x10 grid vs window range\n");
  std::printf("# workload: 3 tuples per node at one tuple per 40 ms\n\n");

  TablePrinter table({"window_ms", "messages", "bytes", "results",
                      "peak_repl", "errors"});
  Topology topo = Topology::Grid(10);
  LinkModel link;
  std::vector<WorkItem> work =
      UniformJoinWorkload(topo.node_count(), 3, 8, 77);

  for (Timestamp window_ms : {50, 200, 800, 3200, 12800}) {
    std::string program_text =
        "  .decl r/3 input window " + std::to_string(window_ms * 1000) +
        ".\n"
        "  .decl s/3 input window " +
        std::to_string(window_ms * 1000) +
        ".\n"
        "  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).\n";
    Program program = MustParse(program_text);
    RunMetrics m = RunDistributed(topo, program, EngineOptions{}, link, work,
                                  "t");
    table.Row({U64(static_cast<uint64_t>(window_ms)), U64(m.total_messages),
               U64(m.total_bytes), U64(m.result_count),
               U64(m.max_node_replicas), U64(m.errors)});
  }
  std::printf(
      "\n# note: 'results' counts alive t tuples at quiescence; windowed\n"
      "# derived tuples expire, so small windows end nearly empty.\n");
  return 0;
}
