// Scale wall: the two-stream join swept from 10k to ~100k nodes while the
// row-replicated live window holds on the order of a million stored
// replicas. This is the bench that motivated the arena/interning fact
// storage, the struct-of-arrays tuple buckets, batched frame delivery and
// the grid-bucketed spatial index: before those, the 100k point either
// thrashed (a heap allocation per replica) or never finished (O(n) scans
// per spatial lookup).
//
// Two outputs per run:
//   BENCH_bench_scale.json       deterministic counters + registry snapshot
//                                (byte-identical across --threads; gated by
//                                `bench_compare.py baseline check`)
//   BENCH_bench_scale.perf.json  wall time per point and process peak RSS
//                                (machine-dependent; gated with tolerances
//                                by `bench_compare.py perf check`)
//
// Flags: --threads N   parallel sweep points (report order is fixed)
//        --grids a,b   grid sides to sweep (default 100,178,316)
//        --window N    target live-window replicas per point (default 1M)
//        --smoke       CI profile: one 10k-node point, 200k-replica window

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deduce/common/parallel.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
)";

uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024ull;
}

/// Like UniformJoinWorkload but sized by total tuple count, not per-node
/// count: at 100k nodes the live window (tuples x sqrt(n) row replicas)
/// is the budgeted quantity, so the sweep injects window/m tuples per
/// point rather than a per-node constant.
std::vector<WorkItem> ScaleWorkload(int nodes, int total, uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkItem> out;
  std::vector<std::pair<NodeId, Fact>> alive;
  SimTime t = 10'000;
  int key_range = std::max(2, total / 2);
  for (int i = 0; i < total; ++i, t += 40'000) {
    if (!alive.empty() && rng.Bernoulli(0.2)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      out.push_back({t, alive[k].first, StreamOp::kDelete, alive[k].second});
      alive.erase(alive.begin() + static_cast<long>(k));
      continue;
    }
    NodeId node = static_cast<NodeId>(rng.Uniform(0, nodes - 1));
    Fact f(Intern(rng.Bernoulli(0.5) ? "r" : "s"),
           {Term::Int(rng.Uniform(0, key_range - 1)), Term::Int(node),
            Term::Int(i)});
    out.push_back({t, node, StreamOp::kInsert, f});
    alive.emplace_back(node, f);
  }
  return out;
}

struct PointResult {
  CollectedRun run;
  uint64_t frames_coalesced = 0;
  double wall_s = 0;
};

/// One sweep point: hand-rolled (vs CollectDistributed) so batched frame
/// delivery is switched on and the point's wall time is captured. Safe on
/// worker threads; only the reduce step touches the BenchReport.
PointResult RunPoint(int m, const std::vector<WorkItem>& work) {
  PointResult out;
  auto start = std::chrono::steady_clock::now();
  Network net(Topology::Grid(m), LinkModel{}, /*seed=*/1);
  net.EnableBatchedDelivery(true);
  EngineOptions options;
  options.planner.default_storage = StoragePolicy::kRow;
  if (BenchReport::Get().enabled()) options.metrics = &out.run.registry;
  Program program = MustParse(kProgram);
  auto engine = DistributedEngine::Create(&net, program, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::abort();
  }
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    Status st = (*engine)->Inject(item.node, item.op, item.fact);
    if (!st.ok()) std::fprintf(stderr, "inject: %s\n", st.ToString().c_str());
  }
  net.sim().Run();
  out.run.metrics = CollectRunMetrics(net, (*engine).get(), options.metrics);
  out.run.metrics.result_count = (*engine)->ResultFacts(Intern("t")).size();
  out.run.reportable = options.metrics != nullptr;
  out.frames_coalesced = net.stats().frames_coalesced;
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

/// Per-phase traffic rollup from the registry ("traffic" component,
/// msgs_<phase>/bytes_<phase> per node), printed after each point so the
/// sweep shows where the bytes go as n grows.
void PrintPhaseTraffic(const MetricsRegistry& registry) {
  std::map<std::string, std::pair<uint64_t, uint64_t>> phases;
  for (const auto& [key, entry] : registry.entries()) {
    const std::string& component = std::get<1>(key);
    const std::string& name = std::get<2>(key);
    if (component != "traffic") continue;
    if (name.rfind("msgs_", 0) == 0) {
      phases[name.substr(5)].first += entry.counter;
    } else if (name.rfind("bytes_", 0) == 0) {
      phases[name.substr(6)].second += entry.counter;
    }
  }
  for (const auto& [phase, traffic] : phases) {
    std::printf("    phase %-8s %12llu msgs %14llu bytes\n", phase.c_str(),
                static_cast<unsigned long long>(traffic.first),
                static_cast<unsigned long long>(traffic.second));
  }
}

std::vector<int> ParseGrids(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    int m = std::atoi(csv.substr(pos, comma - pos).c_str());
    if (m < 2 || m > 1000) {
      std::fprintf(stderr, "bad --grids entry: %s\n", csv.c_str());
      std::exit(64);
    }
    out.push_back(m);
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  deduce::bench::OpenBenchReport(argv[0]);
  int threads = ThreadsFromArgs(argc, argv);
  std::vector<int> grids = {100, 178, 316};
  int window = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      grids = {100};
      window = 200'000;
    } else if (arg == "--grids" && i + 1 < argc) {
      grids = ParseGrids(argv[++i]);
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::atoi(argv[++i]);
      if (window < 100) {
        std::fprintf(stderr, "bad --window value\n");
        return 64;
      }
    }
  }

  std::printf("# scale sweep: two-stream join (PA row storage), batched "
              "delivery on\n");
  std::printf("# live window target: %d replicas per point\n\n", window);

  struct Point {
    int m;
    int tuples;
    std::vector<WorkItem> work;
  };
  std::vector<Point> points;
  for (int m : grids) {
    int nodes = m * m;
    int tuples = std::max(64, window / m);
    points.push_back({m, tuples, ScaleWorkload(nodes, tuples, 9000 + m)});
  }

  TablePrinter table({"grid", "nodes", "tuples", "messages", "bytes",
                      "coalesced", "replicas", "results", "wall_s"});
  std::vector<double> walls(points.size(), 0);
  RunTrials(
      points.size(), threads,
      [&](size_t i) { return RunPoint(points[i].m, points[i].work); },
      [&](size_t i, PointResult r) {
        const Point& p = points[i];
        ReportCollected(r.run);
        walls[i] = r.wall_s;
        const RunMetrics& m = r.run.metrics;
        table.Row({std::to_string(p.m) + "x" + std::to_string(p.m),
                   U64(static_cast<uint64_t>(p.m) * p.m),
                   U64(static_cast<uint64_t>(p.tuples)),
                   U64(m.total_messages), U64(m.total_bytes),
                   U64(r.frames_coalesced), U64(m.total_replicas),
                   U64(m.result_count), Dbl(r.wall_s, 2)});
        PrintPhaseTraffic(r.run.registry);
      });

  uint64_t peak = PeakRssBytes();
  std::printf("\npeak RSS: %.1f MiB\n",
              static_cast<double>(peak) / (1024.0 * 1024.0));

  // Machine-dependent sidecar: wall time per point + process peak RSS.
  // Separate file so BENCH_bench_scale.json stays byte-identical across
  // --threads (the parallelism gate byte-compares it).
  std::ofstream perf("BENCH_bench_scale.perf.json");
  if (perf) {
    perf << "{\"bench\":\"bench_scale\",\"peak_rss_bytes\":" << peak
         << ",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"label\":\"%d\",\"nodes\":%d,\"tuples\":%d,"
                    "\"wall_time_s\":%.3f}",
                    i == 0 ? "" : ",", points[i].m,
                    points[i].m * points[i].m, points[i].tuples, walls[i]);
      perf << buf;
    }
    perf << "]}\n";
  }
  return 0;
}
