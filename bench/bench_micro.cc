// R-Micro: engineering microbenchmarks (google-benchmark) for the hot
// paths: parsing, term matching/unification, the wire codec, semi-naive
// fixpoints, incremental maintenance throughput, and the simulator event
// loop (calendar queue vs the pre-optimization binary-heap scheduler).

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>

#include "deduce/datalog/parser.h"
#include "deduce/eval/incremental.h"
#include "deduce/eval/seminaive.h"
#include "deduce/net/codec.h"
#include "deduce/net/simulator.h"

namespace deduce {
namespace {

void BM_ParseRule(benchmark::State& state) {
  const char* text =
      "cov(L1, T) :- veh(\"enemy\", L1, T), veh(\"friendly\", L2, T), "
      "dist(L1, L2) <= 5.";
  for (auto _ : state) {
    auto rule = ParseRule(text);
    benchmark::DoNotOptimize(rule);
  }
}
BENCHMARK(BM_ParseRule);

void BM_MatchTerm(benchmark::State& state) {
  Term pattern = ParseTerm("f(X, g(Y, 3), [A | B])").value();
  Term ground = ParseTerm("f(1, g(2, 3), [4, 5, 6])").value();
  for (auto _ : state) {
    Subst subst;
    bool ok = MatchTerm(pattern, ground, &subst);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MatchTerm);

void BM_Unify(benchmark::State& state) {
  Term a = ParseTerm("f(X, g(X, Z), h(W))").value();
  Term b = ParseTerm("f(g(1, 2), Y, h(3))").value();
  for (auto _ : state) {
    Subst subst;
    bool ok = Unify(a, b, &subst);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Unify);

void BM_CodecRoundTrip(benchmark::State& state) {
  Fact fact(Intern("veh"),
            {Term::Sym("enemy"),
             Term::Function("loc", {Term::Int(12), Term::Int(34)}),
             Term::Int(1000)});
  for (auto _ : state) {
    PayloadWriter w;
    w.WriteFact(fact);
    PayloadReader r(w.bytes());
    auto f = r.ReadFact();
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string text =
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
  Program program = ParseProgram(text).value();
  std::vector<Fact> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.emplace_back(Intern("edge"), std::vector<Term>{Term::Int(i),
                                                         Term::Int(i + 1)});
  }
  for (auto _ : state) {
    auto db = EvaluateProgram(program, edges);
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n) * (n - 1) / 2);
}
BENCHMARK(BM_TransitiveClosure)->Arg(16)->Arg(32)->Arg(64);

void BM_IncrementalApply(benchmark::State& state) {
  Program program = ParseProgram(R"(
    .decl r/2 input.
    .decl s/2 input.
    t(X, Z) :- r(X, Y), s(Y, Z).
  )").value();
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = IncrementalEngine::Create(program, IncrementalOptions{});
    state.ResumeTiming();
    Timestamp t = 1;
    uint32_t seq = 0;
    for (int i = 0; i < 100; ++i, ++t) {
      StreamEvent ev;
      ev.op = StreamOp::kInsert;
      ev.fact = Fact(Intern(i % 2 ? "r" : "s"),
                     {Term::Int(i % 10), Term::Int((i + 3) % 10)});
      ev.id = TupleId{0, t, seq++};
      ev.time = t;
      (void)(*engine)->Apply(ev, nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_IncrementalApply);

void BM_XYStagedLogicH(benchmark::State& state) {
  const char* text = R"(
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    h1(Y, D + 1) :- h(_, Y, D2), (D + 1) > D2, h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), NOT h1(Y, D + 1).
  )";
  Program program = ParseProgram(text).value();
  int n = static_cast<int>(state.range(0));
  std::vector<Fact> edges;
  for (int i = 0; i < n; ++i) {  // ring
    int j = (i + 1) % n;
    edges.emplace_back(Intern("g"), std::vector<Term>{Term::Int(i), Term::Int(j)});
    edges.emplace_back(Intern("g"), std::vector<Term>{Term::Int(j), Term::Int(i)});
  }
  for (auto _ : state) {
    auto db = EvaluateProgram(program, edges);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_XYStagedLogicH)->Arg(8)->Arg(16);

// --- simulator event loop: calendar queue vs pre-optimization heap ---
//
// The heap baseline below is a verbatim copy of the scheduler Simulator
// used before the calendar-queue rewrite (global std::priority_queue of
// std::function events). Benchmarking both in one binary makes the
// speedup ratio machine-independent: tools/bench_compare.py checks
// calendar/heap items_per_second >= 1.5 in the bench-smoke CI job.
class ReferenceHeapSimulator {
 public:
  SimTime now() const { return now_; }

  void ScheduleAt(SimTime t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  uint64_t Run(uint64_t max_events = UINT64_MAX) {
    uint64_t executed = 0;
    while (!queue_.empty() && executed < max_events) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ev.fn();
      ++executed;
    }
    return executed;
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// `sessions` concurrent self-rescheduling event chains, each hopping
/// `hops` times with pseudo-random 1..5000 us delays — the shape of a
/// simulated network's MAC/transport timers: a large steady pending set
/// with events clustered a few ms ahead of now.
template <typename Sim>
void DriveEventLoop(Sim* sim, int sessions, int hops) {
  struct Chain {
    static void Hop(Sim* sim, uint64_t rng_state, int left) {
      if (left == 0) return;
      uint64_t next = rng_state * 6364136223846793005ULL +
                      1442695040888963407ULL;
      SimTime delay = static_cast<SimTime>(1 + ((next >> 33) % 5000));
      sim->ScheduleAt(sim->now() + delay, [sim, next, left] {
        Hop(sim, next, left - 1);
      });
    }
  };
  for (int i = 0; i < sessions; ++i) {
    Chain::Hop(sim, 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1),
               hops);
  }
  sim->Run();
}

constexpr int kEventLoopHops = 32;

// Session counts bracket the pending-set sizes real engine simulations
// produce: a 14x14-grid distributed run keeps a few hundred timers and
// in-flight deliveries pending, so 256 is typical and 1024 is a
// generous upper bound.

void BM_SimulatorEventLoopCalendar(benchmark::State& state) {
  int sessions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    DriveEventLoop(&sim, sessions, kEventLoopHops);
  }
  state.SetItemsProcessed(state.iterations() * sessions * kEventLoopHops);
}
BENCHMARK(BM_SimulatorEventLoopCalendar)->Arg(256)->Arg(1024);

void BM_SimulatorEventLoopHeap(benchmark::State& state) {
  int sessions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ReferenceHeapSimulator sim;
    DriveEventLoop(&sim, sessions, kEventLoopHops);
  }
  state.SetItemsProcessed(state.iterations() * sessions * kEventLoopHops);
}
BENCHMARK(BM_SimulatorEventLoopHeap)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace deduce

BENCHMARK_MAIN();
