// R-Micro: engineering microbenchmarks (google-benchmark) for the hot
// paths: parsing, term matching/unification, the wire codec, semi-naive
// fixpoints and incremental maintenance throughput.

#include <benchmark/benchmark.h>

#include "deduce/datalog/parser.h"
#include "deduce/eval/incremental.h"
#include "deduce/eval/seminaive.h"
#include "deduce/net/codec.h"

namespace deduce {
namespace {

void BM_ParseRule(benchmark::State& state) {
  const char* text =
      "cov(L1, T) :- veh(\"enemy\", L1, T), veh(\"friendly\", L2, T), "
      "dist(L1, L2) <= 5.";
  for (auto _ : state) {
    auto rule = ParseRule(text);
    benchmark::DoNotOptimize(rule);
  }
}
BENCHMARK(BM_ParseRule);

void BM_MatchTerm(benchmark::State& state) {
  Term pattern = ParseTerm("f(X, g(Y, 3), [A | B])").value();
  Term ground = ParseTerm("f(1, g(2, 3), [4, 5, 6])").value();
  for (auto _ : state) {
    Subst subst;
    bool ok = MatchTerm(pattern, ground, &subst);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MatchTerm);

void BM_Unify(benchmark::State& state) {
  Term a = ParseTerm("f(X, g(X, Z), h(W))").value();
  Term b = ParseTerm("f(g(1, 2), Y, h(3))").value();
  for (auto _ : state) {
    Subst subst;
    bool ok = Unify(a, b, &subst);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Unify);

void BM_CodecRoundTrip(benchmark::State& state) {
  Fact fact(Intern("veh"),
            {Term::Sym("enemy"),
             Term::Function("loc", {Term::Int(12), Term::Int(34)}),
             Term::Int(1000)});
  for (auto _ : state) {
    PayloadWriter w;
    w.WriteFact(fact);
    PayloadReader r(w.bytes());
    auto f = r.ReadFact();
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string text =
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
  Program program = ParseProgram(text).value();
  std::vector<Fact> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.emplace_back(Intern("edge"), std::vector<Term>{Term::Int(i),
                                                         Term::Int(i + 1)});
  }
  for (auto _ : state) {
    auto db = EvaluateProgram(program, edges);
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n) * (n - 1) / 2);
}
BENCHMARK(BM_TransitiveClosure)->Arg(16)->Arg(32)->Arg(64);

void BM_IncrementalApply(benchmark::State& state) {
  Program program = ParseProgram(R"(
    .decl r/2 input.
    .decl s/2 input.
    t(X, Z) :- r(X, Y), s(Y, Z).
  )").value();
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = IncrementalEngine::Create(program, IncrementalOptions{});
    state.ResumeTiming();
    Timestamp t = 1;
    uint32_t seq = 0;
    for (int i = 0; i < 100; ++i, ++t) {
      StreamEvent ev;
      ev.op = StreamOp::kInsert;
      ev.fact = Fact(Intern(i % 2 ? "r" : "s"),
                     {Term::Int(i % 10), Term::Int((i + 3) % 10)});
      ev.id = TupleId{0, t, seq++};
      ev.time = t;
      (void)(*engine)->Apply(ev, nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_IncrementalApply);

void BM_XYStagedLogicH(benchmark::State& state) {
  const char* text = R"(
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    h1(Y, D + 1) :- h(_, Y, D2), (D + 1) > D2, h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), NOT h1(Y, D + 1).
  )";
  Program program = ParseProgram(text).value();
  int n = static_cast<int>(state.range(0));
  std::vector<Fact> edges;
  for (int i = 0; i < n; ++i) {  // ring
    int j = (i + 1) % n;
    edges.emplace_back(Intern("g"), std::vector<Term>{Term::Int(i), Term::Int(j)});
    edges.emplace_back(Intern("g"), std::vector<Term>{Term::Int(j), Term::Int(i)});
  }
  for (auto _ : state) {
    auto db = EvaluateProgram(program, edges);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_XYStagedLogicH)->Arg(8)->Arg(16);

}  // namespace
}  // namespace deduce

BENCHMARK_MAIN();
