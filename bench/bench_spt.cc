// R-Fig-5: the shortest-path-tree comparison of §II-B Example 3 / §VI —
// compiled logicH vs the improved logicJ vs a hand-written procedural
// protocol (the Kairos baseline), as the network grows.
//
// Expected shape: logicJ (one j tuple per node, §V memory discussion)
// clearly beats logicH (one h tuple per tree edge plus the edge argument in
// every derivation); both trail the hand-tuned procedural protocol by a
// constant factor — the price of generality the paper argues is worth
// paying. All three must produce identical trees.

#include <map>

#include "bench_util.h"
#include "deduce/baselines/procedural_spt.h"
#include "deduce/routing/routing.h"

using namespace deduce;
using namespace deduce::bench;

namespace {

constexpr char kLogicJ[] = R"(
  .decl g/2 input storage spatial 1.
  .decl j(y, d) home y stage d storage local.
  .decl j1(y, d) home y stage d storage local.
  j(0, 0).
  j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
  j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
)";

// logicH keeps the tree edge (X) in the head — Example 3 verbatim.
constexpr char kLogicH[] = R"(
  .decl g/2 input storage spatial 1.
  .decl h(x, y, d) home y stage d storage local.
  .decl h1(y, d) home y stage d storage local.
  h(0, 0, 0).
  h(0, X, 1) :- g(0, X).
  h1(Y, D + 1) :- h(X2, Y, D2), (D + 1) > D2, h(X3, X, D), g(X, Y).
  h(X, Y, D + 1) :- g(X, Y), h(X2, X, D), NOT h1(Y, D + 1).
)";

struct SptRun {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  bool correct = false;
  size_t facts = 0;
};

SptRun RunDeductive(const Topology& topo, const char* program_text,
                    const char* pred, size_t node_arg, size_t depth_arg) {
  Program program = MustParse(program_text);
  Network net(topo, LinkModel{}, 99);
  MetricsRegistry registry;
  EngineOptions options;
  options.metrics = &registry;
  auto engine = DistributedEngine::Create(&net, program, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    std::abort();
  }
  SimTime t = 50'000;
  for (int v = 0; v < topo.node_count(); ++v) {
    for (NodeId u : topo.neighbors(v)) {
      net.sim().RunUntil(t);
      (void)(*engine)->Inject(
          v, StreamOp::kInsert, Fact(Intern("g"), {Term::Int(v), Term::Int(u)}));
      t += 5'000;
    }
  }
  net.sim().Run();

  SptRun out;
  out.messages = net.stats().TotalMessages();
  out.bytes = net.stats().TotalBytes();
  RoutingTable rt(&topo);
  std::map<int, int> depth;
  std::vector<Fact> facts = (*engine)->ResultFacts(Intern(pred));
  out.facts = facts.size();
  for (const Fact& f : facts) {
    int y = static_cast<int>(f.args()[node_arg].value().as_int());
    int d = static_cast<int>(f.args()[depth_arg].value().as_int());
    auto [it, inserted] = depth.emplace(y, d);
    if (!inserted) it->second = std::min(it->second, d);
  }
  out.correct = depth.size() == static_cast<size_t>(topo.node_count());
  for (int v = 0; out.correct && v < topo.node_count(); ++v) {
    if (depth[v] != rt.HopDistance(v, 0)) out.correct = false;
  }
  ReportCustomRun(net, engine->get(), &registry);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  deduce::bench::OpenBenchReport(argv[0]);
  std::printf(
      "# R-Fig-5: shortest-path tree, compiled deductive vs procedural\n\n");
  TablePrinter table({"grid", "variant", "messages", "bytes", "msg/node",
                      "facts", "correct"});
  for (int m : {4, 6, 8, 10}) {
    Topology topo = Topology::Grid(m);
    double n = topo.node_count();

    SptRun j = RunDeductive(topo, kLogicJ, "j", 0, 1);
    table.Row({std::to_string(m) + "x" + std::to_string(m), "logicJ",
               U64(j.messages), U64(j.bytes), Dbl(j.messages / n),
               U64(j.facts), j.correct ? "yes" : "NO"});

    SptRun h = RunDeductive(topo, kLogicH, "h", 1, 2);
    table.Row({std::to_string(m) + "x" + std::to_string(m), "logicH",
               U64(h.messages), U64(h.bytes), Dbl(h.messages / n),
               U64(h.facts), h.correct ? "yes" : "NO"});

    Network net(topo, LinkModel{}, 99);
    ProceduralSptResult proc = RunProceduralSpt(&net, 0);
    RoutingTable rt(&topo);
    bool ok = true;
    for (int v = 0; v < topo.node_count(); ++v) {
      if (proc.distance[static_cast<size_t>(v)] != rt.HopDistance(v, 0)) {
        ok = false;
      }
    }
    table.Row({std::to_string(m) + "x" + std::to_string(m), "procedural",
               U64(proc.total_messages), U64(proc.total_bytes),
               Dbl(proc.total_messages / n),
               U64(static_cast<uint64_t>(topo.node_count())),
               ok ? "yes" : "NO"});
  }
  std::printf(
      "\n# logicJ stores one j tuple per node vs logicH's per-edge h tuples\n"
      "# (§V): fewer derived generations, fewer maintenance passes.\n");
  return 0;
}
