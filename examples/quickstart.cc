// Quickstart: programming a sensor network with a deductive program.
//
// A 6x6 grid of sensors measures temperature and humidity. We want an alert
// whenever some sensor sees high temperature while another sensor in the
// network simultaneously sees high humidity — a two-stream join that no
// single node can evaluate alone. The deductive program is three lines; the
// engine compiles it into distributed code (Perpendicular Approach storage
// and join phases) that runs on every node.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

using namespace deduce;

int main() {
  const char* program_text = R"(
    % Base streams: declared input; sensors generate them. 5-second windows.
    .decl temp(node, celsius) input window 5000000.
    .decl humid(node, percent) input window 5000000.

    % The collaborative part of the application, written declaratively:
    hot(N, C)       :- temp(N, C), C > 35.
    damp(N, P)      :- humid(N, P), P > 80.
    alert(N1, N2)   :- hot(N1, C), damp(N2, P).
  )";

  StatusOr<Program> program = ParseProgram(program_text);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  // A 6x6 grid of unit-radius sensor nodes with a realistic link model.
  Network network(Topology::Grid(6), LinkModel{}, /*seed=*/2009);
  StatusOr<std::unique_ptr<DistributedEngine>> engine =
      DistributedEngine::Create(&network, *program, EngineOptions{});
  if (!engine.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  std::printf("compiled plan:\n%s\n", (*engine)->plan().ToString().c_str());

  // Sensors report readings (the network simulator runs in microseconds).
  auto reading = [&](SimTime at, NodeId node, const char* stream,
                     int value) {
    network.sim().RunUntil(at);
    Status st = (*engine)->Inject(
        node, StreamOp::kInsert,
        Fact(Intern(stream), {Term::Int(node), Term::Int(value)}));
    if (!st.ok()) std::fprintf(stderr, "inject: %s\n", st.ToString().c_str());
  };

  reading(100'000, 7, "temp", 22);    // normal
  reading(200'000, 30, "humid", 60);  // normal
  reading(300'000, 14, "temp", 41);   // hot!
  reading(400'000, 28, "humid", 91);  // damp!

  network.sim().Run();  // quiesce

  std::printf("alerts:\n");
  for (const Fact& f : (*engine)->ResultFacts(Intern("alert"))) {
    std::printf("  %s\n", f.ToString().c_str());
  }
  std::printf(
      "network cost: %llu messages, %llu bytes, %.1f uJ radio energy\n",
      static_cast<unsigned long long>(network.stats().TotalMessages()),
      static_cast<unsigned long long>(network.stats().TotalBytes()),
      network.stats().TotalEnergyMicroJ());
  return 0;
}
