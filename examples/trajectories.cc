// Example 2 from the paper (§II-B): computing vehicle trajectories with
// function symbols (lists). Sensors report target detections report(r(x, y,
// t)); the program stitches consecutive reports into trajectory lists using
// the locally-evaluated built-in close/2, and marks trajectories complete
// when no further report extends them — recursion over lists plus
// stratified negation, the combination that motivates the *full* deductive
// framework over plain Datalog.
//
// Build & run:  ./examples/trajectories

#include <cmath>
#include <cstdio>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

using namespace deduce;

namespace {

// close(r(X1,Y1,T1), r(X2,Y2,T2)): consecutive in time, near in space —
// the paper's procedural built-in embedded in the deductive program.
StatusOr<bool> CloseReports(const std::vector<Term>& args) {
  const Term& a = args[0];
  const Term& b = args[1];
  if (!a.is_function() || !b.is_function() || a.args().size() != 3 ||
      b.args().size() != 3) {
    return Status::InvalidArgument("close expects r(x, y, t) reports");
  }
  double ax = a.args()[0].value().AsNumber();
  double ay = a.args()[1].value().AsNumber();
  int64_t at = a.args()[2].value().as_int();
  double bx = b.args()[0].value().AsNumber();
  double by = b.args()[1].value().AsNumber();
  int64_t bt = b.args()[2].value().as_int();
  double d = std::hypot(ax - bx, ay - by);
  return bt == at + 1 && d <= 1.6;
}

Fact Report(int x, int y, int t) {
  return Fact(Intern("report"),
              {Term::Function("r", {Term::Int(x), Term::Int(y), Term::Int(t)})});
}

}  // namespace

int main() {
  // The paper's Example 2, with trajectories built newest-first:
  // traj([Rk, ..., R1]) and completed when the newest report has no
  // successor.
  const char* program_text = R"(
    .decl report/1 input.
    notstartreport(R2) :- report(R1), report(R2), close(R1, R2).
    notlastreport(R1) :- report(R1), report(R2), close(R1, R2).
    traj([R2, R1]) :- report(R1), report(R2), close(R1, R2),
                      NOT notstartreport(R1).
    traj([R2, X | R]) :- traj([X | R]), report(R2), close(X, R2).
    completetraj([X | R]) :- traj([X | R]), NOT notlastreport(X).
  )";

  StatusOr<Program> program = ParseProgram(program_text);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }

  BuiltinRegistry registry = BuiltinRegistry::Default();
  registry.RegisterPredicate("close", 2, CloseReports);

  EngineOptions options;
  options.registry = &registry;
  Network network(Topology::Grid(7), LinkModel{}, /*seed=*/7);
  auto engine = DistributedEngine::Create(&network, *program, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "compile: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // A target crosses the field diagonally; each detection is reported by
  // the nearest sensor. A second, separate target moves along the top row.
  struct Det {
    int x, y, t;
  };
  std::vector<Det> target_a = {{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 3, 3},
                               {4, 4, 4}};
  std::vector<Det> target_b = {{6, 0, 10}, {5, 0, 11}, {4, 0, 12}};
  SimTime at = 100'000;
  for (const auto& list : {target_a, target_b}) {
    for (const Det& d : list) {
      network.sim().RunUntil(at);
      NodeId sensor = network.topology().ClosestNode(d.x, d.y);
      Status st =
          (*engine)->Inject(sensor, StreamOp::kInsert, Report(d.x, d.y, d.t));
      if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
      at += 150'000;
    }
  }
  network.sim().Run();

  std::printf("complete trajectories (newest report first):\n");
  for (const Fact& f : (*engine)->ResultFacts(Intern("completetraj"))) {
    std::printf("  %s\n", f.ToString().c_str());
  }
  std::printf("\nall partial trajectories derived: %zu\n",
              (*engine)->ResultFacts(Intern("traj")).size());
  std::printf("network cost: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(network.stats().TotalMessages()),
              static_cast<unsigned long long>(network.stats().TotalBytes()));
  return 0;
}
